#include "scenarios/srlg.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "util/json.h"

namespace dtr {

namespace {

std::string trim(std::string_view s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return std::string(s.substr(begin, end - begin + 1));
}

}  // namespace

std::vector<SrlgGroup> parse_srlg(std::istream& in) {
  std::vector<SrlgGroup> groups;
  SrlgGroup* group = nullptr;
  std::string line;
  int lineno = 0;
  const auto fail = [&](const std::string& message) -> void {
    throw std::runtime_error("srlg line " + std::to_string(lineno) + ": " + message);
  };
  const auto parse_weight = [&](const std::string& v) {
    std::size_t pos = 0;
    double out = 0.0;
    try {
      out = std::stod(v, &pos);
    } catch (const std::exception&) {
      fail("bad weight: " + v);
    }
    if (pos != v.size() || out < 0.0) fail("bad weight: " + v);
    return out;
  };
  const auto parse_ids = [&](const std::string& v) {
    std::vector<std::uint32_t> ids;
    std::istringstream tokens(v);
    std::string token;
    while (tokens >> token) {
      std::size_t pos = 0;
      long id = 0;
      try {
        id = std::stol(token, &pos);
      } catch (const std::exception&) {
        fail("bad id: " + token);
      }
      if (pos != token.size() || id < 0) fail("bad id: " + token);
      ids.push_back(static_cast<std::uint32_t>(id));
    }
    if (ids.empty()) fail("expected at least one id");
    return ids;
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line == "[srlg]") {
      groups.emplace_back();
      group = &groups.back();
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail("expected key = value or [srlg]");
    if (group == nullptr) fail("key before the first [srlg] section");
    const std::string key = trim(std::string_view(line).substr(0, eq));
    const std::string value = trim(std::string_view(line).substr(eq + 1));
    if (key.empty() || value.empty()) fail("expected key = value");

    if (key == "name") group->name = value;
    else if (key == "weight") group->weight = parse_weight(value);
    else if (key == "links") group->links = parse_ids(value);
    else if (key == "nodes") group->nodes = parse_ids(value);
    else fail("unknown srlg key: " + key);
  }

  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].name.empty()) groups[i].name = "srlg-" + std::to_string(i);
    if (groups[i].links.empty() && groups[i].nodes.empty()) {
      throw std::runtime_error("srlg group '" + groups[i].name +
                               "': no links or nodes");
    }
  }
  return groups;
}

void write_srlg(std::ostream& os, std::span<const SrlgGroup> groups) {
  const auto write_ids = [&](std::string_view key, std::span<const std::uint32_t> ids) {
    if (ids.empty()) return;
    os << key << " =";
    for (const std::uint32_t id : ids) os << " " << id;
    os << "\n";
  };
  for (std::size_t i = 0; i < groups.size(); ++i) {
    // The format cannot represent these names: '#' starts a comment on
    // parse, newlines would splice extra lines into the sidecar, an empty
    // value is rejected as malformed, and surrounding whitespace is trimmed
    // away. Refusing here keeps the parse(write(groups)) == groups identity
    // honest instead of silently corrupting the catalog.
    const std::string& name = groups[i].name;
    if (name.empty() || name.find_first_of("#\n\r") != std::string::npos ||
        name != trim(name))
      throw std::invalid_argument("write_srlg: unrepresentable group name '" + name +
                                  "'");
    if (i > 0) os << "\n";
    os << "[srlg]\n";
    os << "name = " << groups[i].name << "\n";
    // Shortest round-trip formatting so parse(write(groups)) == groups holds
    // for every representable weight.
    os << "weight = " << json_number(groups[i].weight) << "\n";
    write_ids("links", groups[i].links);
    write_ids("nodes", groups[i].nodes);
  }
}

std::vector<SrlgGroup> synthesize_geo_srlgs(const Graph& g,
                                            const GeoSrlgParams& params) {
  if (params.grid < 1)
    throw std::invalid_argument("synthesize_geo_srlgs: grid must be >= 1");
  if (g.num_links() == 0) return {};

  // Bounding box of the node positions (degenerate boxes collapse every
  // midpoint into cell 0, which is still deterministic).
  Point lo = g.position(0), hi = g.position(0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Point p = g.position(v);
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  const double extent_x = hi.x - lo.x;
  const double extent_y = hi.y - lo.y;

  const auto cell_of = [&](double value, double origin, double extent) -> int {
    if (extent <= 0.0) return 0;
    const auto cell = static_cast<int>((value - origin) / extent * params.grid);
    return std::clamp(cell, 0, params.grid - 1);
  };

  const auto cells = static_cast<std::size_t>(params.grid) *
                     static_cast<std::size_t>(params.grid);
  std::vector<std::vector<LinkId>> buckets(cells);
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Arc& arc = g.arc(g.link_arcs(l)[0]);
    const Point a = g.position(arc.src);
    const Point b = g.position(arc.dst);
    const Point mid{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
    const int cx = cell_of(mid.x, lo.x, extent_x);
    const int cy = cell_of(mid.y, lo.y, extent_y);
    buckets[static_cast<std::size_t>(cy) * params.grid + cx].push_back(l);
  }

  std::vector<SrlgGroup> groups;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    if (buckets[cell].size() < params.min_links) continue;
    SrlgGroup group;
    const auto cx = cell % static_cast<std::size_t>(params.grid);
    const auto cy = cell / static_cast<std::size_t>(params.grid);
    group.name = "geo-" + std::to_string(cx) + "-" + std::to_string(cy);
    group.links = std::move(buckets[cell]);  // filled in ascending link order
    group.weight = params.weight;
    groups.push_back(std::move(group));
  }
  return groups;
}

ScenarioSet srlg_scenario_set(const Graph& g, std::span<const SrlgGroup> groups) {
  ScenarioSet set;
  for (const SrlgGroup& group : groups) {
    for (const LinkId l : group.links)
      if (l >= g.num_links())
        throw std::out_of_range("srlg group '" + group.name + "': link id " +
                                std::to_string(l));
    for (const NodeId v : group.nodes)
      if (v >= g.num_nodes())
        throw std::out_of_range("srlg group '" + group.name + "': node id " +
                                std::to_string(v));
    set.add(FailureScenario::compound(group.links, group.nodes), group.weight,
            group.name);
  }
  return set;
}

}  // namespace dtr
