#include "scenarios/hardening.h"

#include <algorithm>
#include <stdexcept>

#include "routing/failures.h"

namespace dtr {

std::string_view to_string(AggregationMode mode) {
  switch (mode) {
    case AggregationMode::kExpectedCost: return "expected";
    case AggregationMode::kWeightedPercentile: return "percentile";
    case AggregationMode::kExpectedDowntime: return "downtime";
  }
  return "?";
}

std::optional<AggregationMode> parse_aggregation_mode(std::string_view text) {
  if (text == "expected") return AggregationMode::kExpectedCost;
  if (text == "percentile") return AggregationMode::kWeightedPercentile;
  if (text == "downtime") return AggregationMode::kExpectedDowntime;
  return std::nullopt;
}

void validate_objective(const HardeningObjective& objective, const Graph& g) {
  if (objective.set.empty())
    throw std::invalid_argument("HardeningObjective: empty scenario catalog");
  if (objective.percentile < 0.0 || objective.percentile > 1.0)
    throw std::invalid_argument("HardeningObjective: percentile outside [0, 1]");
  if (objective.period_minutes <= 0.0)
    throw std::invalid_argument("HardeningObjective: period_minutes must be > 0");
  for (const FailureScenario& s : objective.set.scenarios()) {
    for_each_failed_element(
        s,
        [&](LinkId l) {
          if (l >= g.num_links())
            throw std::invalid_argument("HardeningObjective: scenario link id out of range");
        },
        [&](NodeId v) {
          if (v >= g.num_nodes())
            throw std::invalid_argument("HardeningObjective: scenario node id out of range");
        });
  }
}

HardeningObjective objective_from_link_probabilities(
    const Graph& g, std::span<const double> probabilities) {
  if (probabilities.size() != g.num_links())
    throw std::invalid_argument(
        "objective_from_link_probabilities: probabilities size mismatch");
  HardeningObjective objective;
  objective.mode = AggregationMode::kExpectedCost;
  for (LinkId l = 0; l < g.num_links(); ++l)
    objective.set.add(FailureScenario::link(l), probabilities[l],
                      "link#" + std::to_string(l));
  return objective;
}

std::optional<std::vector<double>> as_per_link_probabilities(
    const HardeningObjective& objective, std::size_t num_links) {
  if (objective.mode != AggregationMode::kExpectedCost) return std::nullopt;
  if (objective.set.size() != num_links) return std::nullopt;
  for (std::size_t i = 0; i < num_links; ++i) {
    const FailureScenario& s = objective.set.scenario(i);
    if (s.kind != FailureScenario::Kind::kLink || s.id != i) return std::nullopt;
  }
  const std::span<const double> weights = objective.set.weights();
  return std::vector<double>(weights.begin(), weights.end());
}

double expected_downtime_minutes(std::span<const double> violations,
                                 std::span<const double> unavoidable,
                                 std::span<const double> weights,
                                 double period_minutes) {
  if (violations.size() != unavoidable.size() || violations.size() != weights.size())
    throw std::invalid_argument("expected_downtime_minutes: span size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < violations.size(); ++i)
    sum += weights[i] * std::max(0.0, violations[i] - unavoidable[i]) * period_minutes;
  return sum;
}

}  // namespace dtr
