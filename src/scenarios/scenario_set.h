#pragma once

/// Scenario-catalog subsystem: named, probability-weighted sets of compound
/// failure scenarios (single elements, k-link combinations, SRLGs) plus the
/// deterministic generators that build them. The catalogs are the currency
/// between workload specs and the evaluator — every availability-style
/// experiment describes WHAT can fail as a ScenarioSet and hands the
/// scenarios/weights to Evaluator::sweep / summarize_scenarios.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "routing/failures.h"
#include "util/rng.h"

namespace dtr {

/// An ordered catalog of failure scenarios with a stable name and a
/// non-negative weight per scenario (probability mass, conduit cut rate, or
/// plain 1.0 when unweighted). Parallel arrays rather than a struct-of-all
/// so the scenario/weight spans feed Evaluator::sweep without copying.
class ScenarioSet {
 public:
  void add(FailureScenario scenario, double weight = 1.0, std::string name = {});

  std::size_t size() const { return scenarios_.size(); }
  bool empty() const { return scenarios_.empty(); }

  std::span<const FailureScenario> scenarios() const { return scenarios_; }
  std::span<const double> weights() const { return weights_; }

  const FailureScenario& scenario(std::size_t i) const { return scenarios_[i]; }
  double weight(std::size_t i) const { return weights_[i]; }
  const std::string& name(std::size_t i) const { return names_[i]; }

  double total_weight() const;

  /// Replaces every weight (same size as the catalog, all non-negative;
  /// throws std::invalid_argument otherwise, leaving the set untouched).
  /// Scenarios and names are unaffected — reweighting passes use this
  /// instead of rebuilding the catalog.
  void replace_weights(std::vector<double> weights);

  /// Scales every weight so they sum to 1 (a probability distribution over
  /// scenarios). Throws std::invalid_argument when the total is not > 0.
  void normalize_weights();

  bool operator==(const ScenarioSet&) const = default;

 private:
  std::vector<FailureScenario> scenarios_;
  std::vector<double> weights_;
  std::vector<std::string> names_;
};

/// All single-link failures as a catalog (name = "link#i", weight 1).
ScenarioSet single_link_scenarios(const Graph& g);

/// All single-node failures as a catalog (name = "node#v", weight 1).
ScenarioSet single_node_scenarios(const Graph& g);

/// k-link enumeration with budget-capped sampling.
struct KLinkSpec {
  int k = 2;                 ///< simultaneous link failures per scenario
  std::size_t budget = 200;  ///< catalog size cap
  std::uint64_t seed = 1;    ///< sampling stream when the cap binds
};

/// Every k-combination of physical links when there are at most `budget` of
/// them (lexicographic order); otherwise `budget` distinct combinations
/// sampled from Rng(seed) (sample_k_link_failures). Purely sequential, so
/// the catalog is identical for any execution shape; scenario names are the
/// canonical to_string forms.
ScenarioSet enumerate_k_link_failures(const Graph& g, const KLinkSpec& spec);

/// Per-element steady-state failure probabilities, indexed by physical link
/// and by node.
struct FailureRates {
  std::vector<double> link;
  std::vector<double> node;
};

/// The availability model behind derive_failure_rates: a link's failure
/// probability grows with its propagation delay (fiber length is the classic
/// cut-rate driver), nodes fail at a flat rate.
struct RateModel {
  double link_base = 1e-3;         ///< length-independent link probability
  double link_per_delay_ms = 2e-4; ///< added probability per ms of prop delay
  double node_rate = 5e-4;         ///< flat node failure probability
};

FailureRates derive_failure_rates(const Graph& g, const RateModel& model = {});

/// Reweights every scenario to the product of its failed elements'
/// probabilities (independent failures, rare-event approximation: survivor
/// terms are dropped, so a scenario's weight is comparable across catalog
/// sizes). The empty (kNone) scenario keeps weight 1 — the empty product.
/// Throws std::out_of_range when a scenario references an element the rate
/// table doesn't cover.
void apply_rate_weights(ScenarioSet& set, const FailureRates& rates);

/// Weighted percentile of `values`: the smallest value v such that the
/// total weight of entries with value <= v reaches `p` (in [0, 1]) times the
/// total weight. Ties resolve by index order, so the result is deterministic
/// for any execution shape. Returns 0 for empty input; throws
/// std::invalid_argument on size mismatch, negative weights, zero total
/// weight, or p outside [0, 1].
double weighted_percentile(std::span<const double> values,
                           std::span<const double> weights, double p);

/// Writes the catalog as a deterministic `dtr.scenarios.v1` JSON document
/// (schema, label, count, total_weight, then one {name, kind, links, nodes,
/// weight} object per scenario, insertion order).
void write_scenario_set_json(std::ostream& os, const ScenarioSet& set,
                             std::string_view label);

inline constexpr std::string_view kScenarioSchema = "dtr.scenarios.v1";

std::string_view to_string(FailureScenario::Kind kind);

}  // namespace dtr
