#pragma once

/// Weighted scenario-set evaluation: the bridge between scenario catalogs
/// and the Evaluator. Extends the existing sum/max sweeps with the
/// probability-weighted aggregates of an availability model — expected cost
/// under the scenario distribution, the worst case, and a weighted
/// percentile between them.

#include <span>

#include "routing/evaluator.h"
#include "scenarios/scenario_set.h"

namespace dtr {

class ThreadPool;

/// Weighted aggregate of one routing's per-scenario costs over a catalog.
/// `expected_*` are weight-normalized means (an expectation when the weights
/// are a probability distribution), `worst_*` are unweighted maxima (the
/// robustness view: weights say how LIKELY a scenario is, not how much its
/// damage matters once it happens), `percentile_*` are weighted percentiles
/// (weighted_percentile at the requested p).
struct ScenarioSummary {
  std::size_t count = 0;
  double total_weight = 0.0;
  double percentile = 0.0;  ///< the p the percentile_* fields were taken at

  double expected_lambda = 0.0;
  double expected_phi = 0.0;
  double expected_violations = 0.0;

  double worst_lambda = 0.0;
  double worst_phi = 0.0;
  double worst_violations = 0.0;

  double percentile_lambda = 0.0;
  double percentile_phi = 0.0;
  double percentile_violations = 0.0;

  /// Expected avoidable SLA downtime in minutes per period (the
  /// kExpectedDowntime objective, reported for ANY routing):
  ///   Sum_s w_s * max(0, violations_s - unavoidable_s) * period_minutes
  /// with unavoidable_s = metrics::unavoidable_violations. RAW-weight sum
  /// (not normalized), matching what the optimizer minimizes.
  double expected_downtime_min = 0.0;
  /// The period the downtime was scaled by (echo of the argument).
  double period_minutes = 0.0;
};

/// Evaluates `w` under every scenario of `set` (batched across `pool` when
/// given; compound link-only scenarios ride the incremental base-patching
/// path) and reduces in catalog order — bit-identical for any worker count.
/// Zero-total-weight sets yield expected_* = 0; an empty set returns a
/// default summary.
ScenarioSummary summarize_scenarios(const Evaluator& evaluator, const WeightSetting& w,
                                    const ScenarioSet& set, double percentile = 0.95,
                                    ThreadPool* pool = nullptr,
                                    double period_minutes = 43200.0);

}  // namespace dtr
