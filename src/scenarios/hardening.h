#pragma once

/// Hardening objectives: WHAT Phase 2 optimizes against, as a first-class
/// value. A HardeningObjective pairs a scenario catalog (ScenarioSet, weights
/// = probabilities) with an aggregation mode — expected cost, weighted
/// percentile, or expected downtime. The per-link probabilistic failure
/// model is one shape of it (objective_from_link_probabilities). The
/// optimizer consumes it through the weighted Evaluator::sweep early-abort
/// path; campaigns and dtr_tool build it from `objective=` / `harden_set=`
/// spec keys.

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "scenarios/scenario_set.h"

namespace dtr {

/// How per-scenario costs reduce to the single objective Phase 2 minimizes.
enum class AggregationMode : std::uint8_t {
  /// Probability-weighted cost sums Sum_s w_s * (Lambda_s, Phi_s) — the
  /// Eq. (4) compound cost generalized to arbitrary weights (an expectation
  /// when the weights are failure probabilities). Early-aborts exactly like
  /// the classic critical-set sweep.
  kExpectedCost,
  /// Weighted percentile of the per-scenario (Lambda, Phi) distributions at
  /// HardeningObjective::percentile — the tail-risk view ("the cost the
  /// network stays under in p of failure-weighted states").
  kWeightedPercentile,
  /// Expected avoidable SLA downtime in minutes per period:
  ///   Sum_s w_s * max(0, violations_s - unavoidable_s) * period_minutes
  /// where unavoidable_s is metrics::unavoidable_violations — the floor no
  /// routing can beat — so the objective measures only the downtime weight
  /// search can actually remove. Ties lexicographically to the weighted Phi
  /// sum as the secondary criterion.
  kExpectedDowntime,
};

std::string_view to_string(AggregationMode mode);

/// Parses the campaign-spec / CLI spelling (expected|percentile|downtime).
std::optional<AggregationMode> parse_aggregation_mode(std::string_view text);

/// The Phase-2 objective: a scenario catalog plus an aggregation mode.
/// Weights are non-negative per-scenario masses (probabilities under the
/// availability model, 1.0 when unweighted).
struct HardeningObjective {
  ScenarioSet set;
  AggregationMode mode = AggregationMode::kExpectedCost;
  /// kWeightedPercentile only: the percentile p in [0, 1].
  double percentile = 0.95;
  /// kExpectedDowntime only: minutes per availability period (default: a
  /// 30-day month), the scale of "violation minutes".
  double period_minutes = 43200.0;

  bool operator==(const HardeningObjective&) const = default;
};

/// Throws std::invalid_argument when the objective is unusable against `g`:
/// empty catalog, out-of-range scenario elements, percentile outside [0, 1],
/// or a non-positive downtime period.
void validate_objective(const HardeningObjective& objective, const Graph& g);

/// The per-link probabilistic failure model as an objective: every
/// single-link failure of `g` in link order, weighted by `probabilities`
/// (size must equal num_links), expected-cost aggregation.
HardeningObjective objective_from_link_probabilities(
    const Graph& g, std::span<const double> probabilities);

/// Detects an objective the per-link optimizer pipeline handles natively: an
/// expected-cost objective whose catalog is exactly one single-link failure
/// per physical link, in link order (what objective_from_link_probabilities
/// builds). Returns the per-link weight vector then, nullopt otherwise —
/// nullopt routes the optimizer to the catalog-criticality path.
std::optional<std::vector<double>> as_per_link_probabilities(
    const HardeningObjective& objective, std::size_t num_links);

/// Expected avoidable downtime in minutes:
///   Sum_i weights[i] * max(0, violations[i] - unavoidable[i]) * period_minutes
/// accumulated in index order (bit-identical for any execution shape). All
/// three spans must have equal size (throws std::invalid_argument).
double expected_downtime_minutes(std::span<const double> violations,
                                 std::span<const double> unavoidable,
                                 std::span<const double> weights,
                                 double period_minutes);

}  // namespace dtr
