#include "scenarios/scenario_eval.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/metrics.h"
#include "scenarios/hardening.h"

namespace dtr {

ScenarioSummary summarize_scenarios(const Evaluator& evaluator, const WeightSetting& w,
                                    const ScenarioSet& set, double percentile,
                                    ThreadPool* pool, double period_minutes) {
  if (percentile < 0.0 || percentile > 1.0)
    throw std::invalid_argument("summarize_scenarios: percentile outside [0, 1]");
  if (period_minutes <= 0.0)
    throw std::invalid_argument("summarize_scenarios: period_minutes must be > 0");

  ScenarioSummary summary;
  summary.count = set.size();
  summary.percentile = percentile;
  summary.period_minutes = period_minutes;
  if (set.empty()) return summary;

  const std::vector<EvalResult> results =
      evaluator.evaluate_failures(w, set.scenarios(), pool);

  std::vector<double> lambda(results.size()), phi(results.size()),
      violations(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    lambda[i] = results[i].lambda;
    phi[i] = results[i].phi;
    violations[i] = static_cast<double>(results[i].sla_violations);

    const double weight = set.weight(i);
    summary.total_weight += weight;
    summary.expected_lambda += weight * lambda[i];
    summary.expected_phi += weight * phi[i];
    summary.expected_violations += weight * violations[i];

    summary.worst_lambda = std::max(summary.worst_lambda, lambda[i]);
    summary.worst_phi = std::max(summary.worst_phi, phi[i]);
    summary.worst_violations = std::max(summary.worst_violations, violations[i]);
  }
  if (summary.total_weight > 0.0) {
    summary.expected_lambda /= summary.total_weight;
    summary.expected_phi /= summary.total_weight;
    summary.expected_violations /= summary.total_weight;
    summary.percentile_lambda =
        weighted_percentile(lambda, set.weights(), percentile);
    summary.percentile_phi = weighted_percentile(phi, set.weights(), percentile);
    summary.percentile_violations =
        weighted_percentile(violations, set.weights(), percentile);
  } else {
    summary.expected_lambda = 0.0;
    summary.expected_phi = 0.0;
    summary.expected_violations = 0.0;
  }
  const std::vector<double> unavoidable =
      unavoidable_violation_profile(evaluator, set.scenarios(), pool);
  summary.expected_downtime_min =
      expected_downtime_minutes(violations, unavoidable, set.weights(), period_minutes);
  return summary;
}

}  // namespace dtr
