#include "scenarios/scenario_set.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/json.h"

namespace dtr {

void ScenarioSet::add(FailureScenario scenario, double weight, std::string name) {
  if (weight < 0.0) throw std::invalid_argument("ScenarioSet::add: negative weight");
  if (name.empty()) name = dtr::to_string(scenario);
  scenarios_.push_back(std::move(scenario));
  weights_.push_back(weight);
  names_.push_back(std::move(name));
}

double ScenarioSet::total_weight() const {
  double total = 0.0;
  for (const double w : weights_) total += w;
  return total;
}

void ScenarioSet::replace_weights(std::vector<double> weights) {
  if (weights.size() != scenarios_.size())
    throw std::invalid_argument("ScenarioSet::replace_weights: size mismatch");
  for (const double w : weights)
    if (w < 0.0)
      throw std::invalid_argument("ScenarioSet::replace_weights: negative weight");
  weights_ = std::move(weights);
}

void ScenarioSet::normalize_weights() {
  const double total = total_weight();
  if (!(total > 0.0))
    throw std::invalid_argument("ScenarioSet::normalize_weights: total weight not > 0");
  for (double& w : weights_) w /= total;
}

ScenarioSet single_link_scenarios(const Graph& g) {
  ScenarioSet set;
  for (LinkId l = 0; l < g.num_links(); ++l) set.add(FailureScenario::link(l));
  return set;
}

ScenarioSet single_node_scenarios(const Graph& g) {
  ScenarioSet set;
  for (NodeId v = 0; v < g.num_nodes(); ++v) set.add(FailureScenario::node(v));
  return set;
}

namespace {

/// C(n, k) saturating at `cap` so the budget comparison never overflows.
std::size_t combinations_capped(std::size_t n, std::size_t k, std::size_t cap) {
  if (k > n) return 0;
  std::size_t count = 1;
  for (std::size_t i = 0; i < k; ++i) {
    // count *= (n - i) / (i + 1), kept exact by multiplying first; saturate
    // before the multiply can overflow.
    if (count > cap) return cap + 1;
    count = count * (n - i) / (i + 1);
  }
  return std::min(count, cap + 1);
}

}  // namespace

ScenarioSet enumerate_k_link_failures(const Graph& g, const KLinkSpec& spec) {
  if (spec.k < 1)
    throw std::invalid_argument("enumerate_k_link_failures: k must be >= 1");
  if (g.num_links() < static_cast<std::size_t>(spec.k))
    throw std::invalid_argument("enumerate_k_link_failures: need >= k links");
  const auto k = static_cast<std::size_t>(spec.k);

  ScenarioSet set;
  if (combinations_capped(g.num_links(), k, spec.budget) <= spec.budget) {
    // Exact enumeration in lexicographic order.
    std::vector<LinkId> combo(k);
    for (std::size_t i = 0; i < k; ++i) combo[i] = static_cast<LinkId>(i);
    while (true) {
      set.add(FailureScenario::compound(combo));
      // Advance the rightmost index that can still move.
      std::size_t i = k;
      while (i > 0) {
        --i;
        if (combo[i] + (k - i) < g.num_links()) break;
        if (i == 0) return set;
      }
      ++combo[i];
      for (std::size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
    }
  }

  Rng rng(spec.seed);
  for (FailureScenario& s : sample_k_link_failures(g, spec.k, spec.budget, rng))
    set.add(std::move(s));
  return set;
}

FailureRates derive_failure_rates(const Graph& g, const RateModel& model) {
  FailureRates rates;
  rates.link.reserve(g.num_links());
  for (LinkId l = 0; l < g.num_links(); ++l) {
    // Both arcs of a link share the propagation delay; read the first.
    const double delay_ms = g.arc(g.link_arcs(l)[0]).prop_delay_ms;
    rates.link.push_back(model.link_base + model.link_per_delay_ms * delay_ms);
  }
  rates.node.assign(g.num_nodes(), model.node_rate);
  return rates;
}

void apply_rate_weights(ScenarioSet& set, const FailureRates& rates) {
  std::vector<double> weights(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    double w = 1.0;
    for_each_failed_element(
        set.scenario(i),
        [&](LinkId l) {
          if (l >= rates.link.size())
            throw std::out_of_range("apply_rate_weights: link id");
          w *= rates.link[l];
        },
        [&](NodeId v) {
          if (v >= rates.node.size())
            throw std::out_of_range("apply_rate_weights: node id");
          w *= rates.node[v];
        });
    weights[i] = w;
  }
  // Weights land in one move after every id validated, so a thrown id error
  // leaves the set untouched.
  set.replace_weights(std::move(weights));
}

double weighted_percentile(std::span<const double> values,
                           std::span<const double> weights, double p) {
  if (values.size() != weights.size())
    throw std::invalid_argument("weighted_percentile: size mismatch");
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("weighted_percentile: p outside [0, 1]");
  if (values.empty()) return 0.0;

  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_percentile: negative weight");
    total += w;
  }
  if (!(total > 0.0))
    throw std::invalid_argument("weighted_percentile: total weight not > 0");

  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });

  const double target = p * total;
  double cumulative = 0.0;
  for (const std::size_t i : order) {
    cumulative += weights[i];
    if (cumulative >= target) return values[i];
  }
  return values[order.back()];  // p == 1 with float residue
}

std::string_view to_string(FailureScenario::Kind kind) {
  switch (kind) {
    case FailureScenario::Kind::kNone: return "none";
    case FailureScenario::Kind::kLink: return "link";
    case FailureScenario::Kind::kNode: return "node";
    case FailureScenario::Kind::kLinkPair: return "link_pair";
    case FailureScenario::Kind::kCompound: return "compound";
  }
  return "?";
}

void write_scenario_set_json(std::ostream& os, const ScenarioSet& set,
                             std::string_view label) {
  JsonWriter json(os);
  json.begin_object();
  json.key("schema").value(kScenarioSchema);
  json.key("label").value(label);
  json.key("count").value(set.size());
  json.key("total_weight").value(set.total_weight());
  json.key("scenarios").begin_array();
  for (std::size_t i = 0; i < set.size(); ++i) {
    const FailureScenario& s = set.scenario(i);
    json.begin_object();
    json.key("name").value(set.name(i));
    json.key("kind").value(to_string(s.kind));
    json.key("links").begin_array();
    for_each_failed_element(
        s, [&](LinkId l) { json.value(l); }, [](NodeId) {});
    json.end_array();
    json.key("nodes").begin_array();
    for_each_failed_element(
        s, [](LinkId) {}, [&](NodeId v) { json.value(v); });
    json.end_array();
    json.key("weight").value(set.weight(i));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << "\n";
}

}  // namespace dtr
