#pragma once

/// Shared-risk link groups (SRLGs): sets of elements that fail together
/// because they share a physical risk — a conduit, a duct bank, a
/// geographic corridor. Catalogs come from a `.srlg` sidecar file (real
/// deployments know their conduits) or from the synthetic
/// conduit/geographic generator for synthesized topologies.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "scenarios/scenario_set.h"

namespace dtr {

/// One shared-risk group: every listed link and node fails simultaneously.
struct SrlgGroup {
  std::string name;
  std::vector<LinkId> links;
  std::vector<NodeId> nodes;
  double weight = 1.0;  ///< relative cut rate / probability mass

  bool operator==(const SrlgGroup&) const = default;
};

/// Parses the line-based `.srlg` sidecar format ('#' starts a comment):
///
///   [srlg]                  # one section per group
///   name = conduit-7        # optional; defaults to "srlg-<index>"
///   weight = 0.01           # optional; defaults to 1
///   links = 3 7 12          # whitespace-separated link ids
///   nodes = 2               # optional node ids
///
/// Throws std::runtime_error naming the offending line on malformed input.
/// Ids are validated against a graph later (srlg_scenario_set), not here, so
/// a catalog can be parsed independently of any topology.
std::vector<SrlgGroup> parse_srlg(std::istream& in);

/// Writes groups back in the canonical `.srlg` form parse_srlg reads
/// (round-trip identity: parse(write(groups)) == groups). Throws
/// std::invalid_argument on names the format cannot represent (empty, or
/// containing the '#' comment character) — parse_srlg never produces
/// those, so anything it returned round-trips.
void write_srlg(std::ostream& os, std::span<const SrlgGroup> groups);

/// Synthetic conduit catalog for synthesized topologies (node positions in
/// the unit square / projected km).
struct GeoSrlgParams {
  /// Grid resolution over the position bounding box: links whose midpoints
  /// share a grid cell are assumed to share a conduit.
  int grid = 4;
  /// Cells grouping fewer links than this are dropped (a one-link "group"
  /// is just that link's single failure).
  std::size_t min_links = 2;
  double weight = 1.0;  ///< weight assigned to every generated group
};

/// Groups links by the grid cell of their geometric midpoint — a
/// deterministic pure function of the positions (no RNG): same graph, same
/// params, same catalog. Groups are named "geo-<cx>-<cy>" and emitted in
/// cell-index order.
std::vector<SrlgGroup> synthesize_geo_srlgs(const Graph& g, const GeoSrlgParams& params);

/// One compound scenario per group (canonicalized element sets), carrying
/// the group's name and weight. Validates every id against `g` (throws
/// std::out_of_range naming the group).
ScenarioSet srlg_scenario_set(const Graph& g, std::span<const SrlgGroup> groups);

}  // namespace dtr
