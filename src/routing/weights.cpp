#include "routing/weights.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dtr {

WeightSetting::WeightSetting(std::size_t num_links, int initial_weight) {
  if (initial_weight < 1) throw std::invalid_argument("WeightSetting: weight must be >= 1");
  for (auto& w : weights_) w.assign(num_links, initial_weight);
}

void WeightSetting::set(TrafficClass c, LinkId l, int weight) {
  if (weight < 1) throw std::invalid_argument("WeightSetting::set: weight must be >= 1");
  weights_[idx(c)].at(l) = weight;
}

void WeightSetting::arc_costs(const Graph& g, TrafficClass c,
                              std::vector<double>& out) const {
  if (g.num_links() != num_links())
    throw std::invalid_argument("WeightSetting::arc_costs: graph size mismatch");
  out.resize(g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a)
    out[a] = static_cast<double>(weights_[idx(c)][g.arc(a).link]);
}

void randomize_weights(WeightSetting& w, int wmax, Rng& rng) {
  if (wmax < 1) throw std::invalid_argument("randomize_weights: wmax must be >= 1");
  for (TrafficClass c : kBothClasses)
    for (LinkId l = 0; l < w.num_links(); ++l)
      w.set(c, l, rng.uniform_int(1, wmax));
}

WeightSetting make_warm_start(const Graph& g, int wmax) {
  WeightSetting w(g.num_links(), 1);
  double max_delay = 0.0;
  for (LinkId l = 0; l < g.num_links(); ++l)
    max_delay = std::max(max_delay, g.arc(g.link_arcs(l).front()).prop_delay_ms);
  // Map delays onto [1, 0.6*wmax]: enough integer levels that distinct-delay
  // paths rarely tie (spurious ECMP ties inflate expected delay), while
  // failure-emulating weights (>= 0.7*wmax) stay clearly "off-path".
  const double scale = max_delay > 0.0 ? (0.6 * wmax) / max_delay : 1.0;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const double d = g.arc(g.link_arcs(l).front()).prop_delay_ms;
    const int weight = std::max(1, static_cast<int>(std::lround(d * scale)));
    w.set(TrafficClass::kDelay, l, std::min(weight, wmax));
    w.set(TrafficClass::kThroughput, l, 1);
  }
  return w;
}

}  // namespace dtr
