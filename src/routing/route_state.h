#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "cost/delay_model.h"
#include "graph/graph.h"
#include "graph/spf.h"
#include "traffic/traffic_matrix.h"

namespace dtr {

/// How an SD pair's end-to-end delay is summarized when ECMP spreads its
/// traffic over several shortest paths.
enum class SlaDelayMode : std::uint8_t {
  /// Expected delay under even splitting (probe averaging — paper's SLA
  /// measurement model). Default.
  kExpected,
  /// Maximum delay over all used paths (conservative).
  kWorstPath,
};

/// Per-destination slices of a no-failure base routing, recorded while
/// ClassRouting::compute runs so the incremental failure path can replay an
/// unaffected destination's contribution verbatim: same values added to the
/// same accumulators in the same destination order means the patched arc
/// loads and disconnection totals are bitwise identical to a full recompute.
struct RoutingBaseRecord {
  /// CSR over destinations: destination t's load contributions are
  /// [contrib_offset[t], contrib_offset[t+1]) in contrib_arc/contrib_val.
  /// Each arc appears at most once per destination (its source node is swept
  /// exactly once), so replay order within a destination is immaterial.
  std::vector<std::size_t> contrib_offset;
  std::vector<ArcId> contrib_arc;
  std::vector<double> contrib_val;
  /// Per-destination disconnected-demand subtotals.
  std::vector<std::uint32_t> disconnected;
  std::vector<double> disconnected_volume;

  void reset(std::size_t num_nodes);
};

/// Bucket upper bounds for the delta-SPF affected-region-size histogram
/// (telemetry `spf.affected_region`): powers of two up to 1024 nodes plus an
/// implicit overflow bucket. Shared by PatchStats and the telemetry registry
/// so per-worker bucket arrays merge 1:1.
inline constexpr std::array<std::uint64_t, 11> kAffectedBucketBounds = {
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};

/// Deterministic per-call counters of the incremental failure path,
/// accumulated by compute_from_base / end_to_end_delays_from_base into the
/// worker's FailureScratch. Every field is a pure function of graph + costs +
/// scenario (never of the execution shape), so callers may fold these into
/// the deterministic telemetry plane.
struct PatchStats {
  std::uint64_t dests_delta = 0;          ///< destinations patched by delta-SPF
  std::uint64_t dests_full_fallback = 0;  ///< delta overflow -> full Dijkstra
  std::uint64_t dests_resweep = 0;        ///< affected DAG -> load re-sweep
  std::uint64_t dests_replayed = 0;       ///< untouched DAG -> record replay
  std::uint64_t affected_nodes = 0;       ///< total delta-recomputed labels
  std::uint64_t boundary_seeds = 0;       ///< total phase-2 Dijkstra seeds
  std::uint64_t delay_cols_replayed = 0;  ///< delay DP columns copied verbatim
  std::uint64_t delay_cols_recomputed = 0;
  /// Pre-binned affected-region sizes (kAffectedBucketBounds + overflow).
  std::array<std::uint64_t, kAffectedBucketBounds.size() + 1> affected_buckets{};

  /// Bins one delta-patched destination's affected-node count. Must use the
  /// exact bucketing rule of telemetry::Histogram::observe (first bound >= v)
  /// so merge_buckets is a faithful batch of observe calls.
  void observe_affected(std::uint64_t n);
  void merge(const PatchStats& o);
};

/// Reusable per-worker scratch for ClassRouting::compute_from_base and
/// end_to_end_delays_from_base (delta-SPF buffers plus the incremental delay
/// DP's dirty bitmap and per-destination DP buffers). One instance per worker
/// thread, reused across scenario evaluations to keep the incremental hot
/// path allocation-free.
class FailureScratch {
 public:
  FailureScratch() = default;

  /// Counters accumulated since the last reset_stats(). The owner (the
  /// evaluator, which shares one scratch across the load + delay passes of a
  /// scenario) resets before a scenario and harvests after it.
  const PatchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PatchStats{}; }

 private:
  friend class ClassRouting;
  DeltaSpfScratch spf_;
  std::vector<std::uint8_t> dirty_;
  std::vector<double> node_delay_;
  std::vector<NodeId> order_;
  PatchStats stats_;
};

/// Routing state of ONE traffic class under a given arc-cost vector and arc
/// liveness mask: per-destination distance labels (defining the ECMP
/// shortest-path DAGs) and the per-arc loads of this class's demands.
///
/// Load aggregation is the standard Fortz–Thorup sweep: per destination,
/// process nodes in decreasing distance order and split each node's
/// accumulated flow evenly across its tight out-arcs.
class ClassRouting {
 public:
  /// `skip_nodes`: demands sourced or sunk at any of these nodes are ignored
  /// (node-failure semantics; compound scenarios may fail several nodes at
  /// once). Pass an empty span for none. The set is tiny, so membership is a
  /// linear scan (is_skipped).
  ClassRouting(const Graph& g, std::span<const double> arc_cost,
               const TrafficMatrix& demands, ArcAliveMask alive,
               std::span<const NodeId> skip_nodes = {});

  /// Empty routing; call `compute` before any accessor. Exists so scratch
  /// holders (per-worker evaluation buffers) can reuse one instance's
  /// allocations across many scenario evaluations.
  ClassRouting() = default;

  /// (Re)computes the routing, reusing previously allocated buffers. When
  /// `record` is given it is filled with the per-destination slices the
  /// incremental failure path (compute_from_base) replays.
  void compute(const Graph& g, std::span<const double> arc_cost,
               const TrafficMatrix& demands, ArcAliveMask alive,
               std::span<const NodeId> skip_nodes = {},
               RoutingBaseRecord* record = nullptr);

  /// Re-derives the RoutingBaseRecord that compute(..., record) would have
  /// produced, from this routing's EXISTING distance labels — the demand
  /// seeding and ECMP share arithmetic re-run over dist_, but no Dijkstra.
  /// The appended values are bitwise identical to an eagerly recorded
  /// base's (same labels, same float ops, same order; test-enforced via the
  /// incremental byte-identity suites). Used by the evaluator's lazy
  /// base-record materialization; `alive`/`skip_nodes` must match the
  /// compute() call that produced this routing.
  void record_contributions(const Graph& g, std::span<const double> arc_cost,
                            const TrafficMatrix& demands, ArcAliveMask alive,
                            std::span<const NodeId> skip_nodes,
                            RoutingBaseRecord& record) const;

  /// Incremental recompute of this routing under an arc-removal failure,
  /// patching from `base` — the same graph/costs/demands with every removed
  /// arc alive, computed WITH `record`. Produces bitwise-identical state to
  /// compute() under `alive`: per destination, distance labels are
  /// delta-updated (falling back to a full Dijkstra when the delta would
  /// touch more than `max_affected_fraction` of the nodes), and load /
  /// disconnection contributions are replayed from the record when the
  /// destination's DAG is untouched, re-swept otherwise.
  ///
  /// `alive` must be the base mask with exactly `removed_arcs` cleared.
  /// Node-failure scenarios (skip semantics) are not supported; use
  /// compute().
  void compute_from_base(const Graph& g, std::span<const double> arc_cost,
                         const TrafficMatrix& demands, const ClassRouting& base,
                         const RoutingBaseRecord& record,
                         std::span<const ArcId> removed_arcs, ArcAliveMask alive,
                         double max_affected_fraction, FailureScratch& scratch);

  /// Incremental recompute of this NO-FAILURE routing under an arc COST
  /// change, patching from `base` — the same graph/demands routed under
  /// `changes[i].old_cost` in place of arc_cost[changes[i].arc] (no failure
  /// mask on either side), with `record` its replay record. Produces
  /// bitwise-identical state to compute() under the new costs: per
  /// destination, distance labels are delta-updated (full-Dijkstra fallback
  /// past `max_affected_fraction`), and load / disconnection contributions
  /// are replayed from the record when the destination's labels AND tight-arc
  /// set are untouched (a changed arc tight under either cost vector churns
  /// the ECMP splits even when labels survive), re-swept otherwise.
  ///
  /// This is the optimizer's candidate-probing fast path: a probe that
  /// changes one link's weights differs from the incumbent by two arcs per
  /// class.
  void compute_from_weight_delta(const Graph& g, std::span<const double> arc_cost,
                                 const TrafficMatrix& demands,
                                 const ClassRouting& base,
                                 const RoutingBaseRecord& record,
                                 std::span<const ArcCostDelta> changes,
                                 double max_affected_fraction,
                                 FailureScratch& scratch);

  /// (Re)computes the routing from CALLER-PROVIDED distance labels
  /// (labels[t][u] = shortest cost u -> t under arc_cost/alive), skipping the
  /// per-destination Dijkstras: the labels are copied and the identical load
  /// sweep of compute() runs over them. With labels equal to what
  /// shortest_distances_to produces, the result is bitwise identical to
  /// compute() — the cross-trial sharing path of evaluate_fluctuations leans
  /// on this to build labels once per weight setting and reuse them across
  /// every perturbed traffic matrix.
  void compute_with_labels(const Graph& g, std::span<const double> arc_cost,
                           const TrafficMatrix& demands, ArcAliveMask alive,
                           const std::vector<std::vector<double>>& labels,
                           std::span<const NodeId> skip_nodes = {});

  std::span<const double> arc_loads() const { return arc_load_; }
  double arc_load(ArcId a) const { return arc_load_[a]; }

  /// dist[t][u] = shortest cost from u to t (kInfDist if unreachable).
  const std::vector<std::vector<double>>& distances() const { return dist_; }

  bool pair_connected(NodeId s, NodeId t) const { return dist_[t][s] != kInfDist; }

  /// Demands (s,t) with positive volume whose source cannot reach t.
  std::size_t disconnected_demand_count() const { return disconnected_; }
  double disconnected_demand_volume() const { return disconnected_volume_; }

  /// Per-destination replay outcome of the last compute_from_base: 1 where
  /// the destination's DAG survived the failure untouched (loads were
  /// replayed), 0 where it was re-swept. Empty unless this routing was
  /// produced by compute_from_base — the incremental delay DP keys off it.
  std::span<const std::uint8_t> replayed_destinations() const { return replayed_; }

  /// Per-SD-pair end-to-end delay xi(s,t) for this class's DAGs, given
  /// per-arc delays D_a (computed from TOTAL load across classes).
  /// out[s*n + t] = delay in ms; untouched entries are set to -1 (pairs with
  /// no demand). Disconnected pairs with demand get kInfDist.
  ///
  /// When `record` is given it is filled with the dirty-arc index (which
  /// destinations read which arc's delay) that end_to_end_delays_from_base
  /// consumes; the recording adds no float operations.
  void end_to_end_delays(const Graph& g, std::span<const double> arc_cost,
                         ArcAliveMask alive, std::span<const double> arc_delay_ms,
                         const TrafficMatrix& demands, SlaDelayMode mode,
                         std::span<const NodeId> skip_nodes, std::vector<double>& out,
                         DelayDpIndex* record = nullptr) const;

  /// Incremental end-to-end delay DP for a routing produced by
  /// compute_from_base under an arc-removal failure. Destinations whose DAG
  /// survived (replayed) AND whose recorded DP inputs are bitwise unchanged
  /// (`index` + base vs scenario arc delays) copy the base's delay column
  /// verbatim; every other destination runs the normal per-destination DP.
  /// Bit-identical to end_to_end_delays by construction: a skipped DP would
  /// have consumed the exact same distance labels, tight-arc set, and arc
  /// delays as the base DP that produced `base_sd_delay_ms`.
  ///
  /// `base_sd_delay_ms` / `base_arc_delay_ms` are the no-failure base's DP
  /// output and per-arc delays; `index` was recorded by the base's
  /// end_to_end_delays. Node-failure scenarios (skip semantics) are not
  /// supported; use end_to_end_delays.
  void end_to_end_delays_from_base(const Graph& g, std::span<const double> arc_cost,
                                   ArcAliveMask alive,
                                   std::span<const double> arc_delay_ms,
                                   const TrafficMatrix& demands, SlaDelayMode mode,
                                   std::span<const double> base_arc_delay_ms,
                                   std::span<const double> base_sd_delay_ms,
                                   const DelayDpIndex& index, FailureScratch& scratch,
                                   std::vector<double>& out) const;

 private:
  /// Seeds the demands toward `t` (counting its disconnected demand as a
  /// per-destination subtotal) and runs the decreasing-distance ECMP load
  /// sweep over dist_[t]. Appends the destination's slices to `record` when
  /// given. Shared by the full and incremental paths so their per-destination
  /// float operations are literally the same code.
  void sweep_destination(const Graph& g, std::span<const double> arc_cost,
                         const TrafficMatrix& demands, ArcAliveMask alive_mask,
                         std::span<const NodeId> skip_nodes, NodeId t,
                         RoutingBaseRecord* record);

  /// The one per-destination seed + ECMP share sweep every load path runs:
  /// `arc_load` / `disconnected` / `disconnected_volume` receive the results
  /// when non-null (compute / compute_from_base via sweep_destination), and
  /// `record` receives the replay slices (eager recording and the lazy
  /// record_contributions, which passes null accumulators). One body means
  /// one set of float ops — the recorded shares cannot drift from the
  /// applied ones.
  void sweep_destination_body(const Graph& g, std::span<const double> arc_cost,
                              const TrafficMatrix& demands, ArcAliveMask alive_mask,
                              std::span<const NodeId> skip_nodes, NodeId t,
                              RoutingBaseRecord* record, std::vector<double>* arc_load,
                              std::size_t* disconnected, double* disconnected_volume,
                              std::vector<double>& node_flow,
                              std::vector<NodeId>& order) const;

  /// One destination's delay DP (demand check, increasing-distance order,
  /// expected/worst accumulation). Shared by the full and incremental delay
  /// paths so their per-destination float operations are literally the same
  /// code. `node_delay` (size n) and `order` are caller scratch.
  void delay_dp_destination(const Graph& g, std::span<const double> arc_cost,
                            ArcAliveMask alive_mask,
                            std::span<const double> arc_delay_ms,
                            const TrafficMatrix& demands, SlaDelayMode mode,
                            std::span<const NodeId> skip_nodes, NodeId t,
                            std::vector<double>& node_delay, std::vector<NodeId>& order,
                            std::vector<double>& out, DelayDpIndex* record) const;

  std::vector<double> arc_load_;
  std::vector<std::vector<double>> dist_;
  std::size_t disconnected_ = 0;
  double disconnected_volume_ = 0.0;
  std::vector<std::uint8_t> replayed_;  ///< see replayed_destinations()
  // compute() scratch, kept to avoid reallocation across evaluations.
  std::vector<double> node_flow_;
  std::vector<NodeId> order_;
};

/// Tight-arc test: arc a lies on a shortest path toward t (distance labels
/// `dist`) iff it is alive and dist[src] == cost[a] + dist[dst]. Weights are
/// integers, so sums are exact in double; the epsilon only guards against
/// callers with fractional costs.
bool arc_is_tight(const Arc& arc, double cost, std::span<const double> dist);

/// Endpoint-index form of the same predicate for CSR/SoA iteration (the hot
/// loops read src/dst from the flat adjacency streams instead of the Arc
/// record). Bit-identical to the Arc& overload.
bool arc_is_tight(NodeId src, NodeId dst, double cost, std::span<const double> dist);

/// Enumerates the ECMP paths (node sequences s..t) a class would use for one
/// SD pair under `arc_cost` and the liveness mask, in deterministic
/// (lexicographic next-hop) order. Stops after `max_paths` (the DAG can hold
/// exponentially many); returns an empty vector when t is unreachable.
/// Diagnostic/reporting API — the load machinery never materializes paths.
std::vector<std::vector<NodeId>> enumerate_ecmp_paths(
    const Graph& g, std::span<const double> arc_cost, NodeId s, NodeId t,
    ArcAliveMask alive = {}, std::size_t max_paths = 64);

}  // namespace dtr
