#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/spf.h"
#include "traffic/traffic_matrix.h"

namespace dtr {

/// How an SD pair's end-to-end delay is summarized when ECMP spreads its
/// traffic over several shortest paths.
enum class SlaDelayMode : std::uint8_t {
  /// Expected delay under even splitting (probe averaging — paper's SLA
  /// measurement model). Default.
  kExpected,
  /// Maximum delay over all used paths (conservative).
  kWorstPath,
};

/// Routing state of ONE traffic class under a given arc-cost vector and arc
/// liveness mask: per-destination distance labels (defining the ECMP
/// shortest-path DAGs) and the per-arc loads of this class's demands.
///
/// Load aggregation is the standard Fortz–Thorup sweep: per destination,
/// process nodes in decreasing distance order and split each node's
/// accumulated flow evenly across its tight out-arcs.
class ClassRouting {
 public:
  /// `skip_node`: demands sourced or sunk at this node are ignored
  /// (node-failure semantics); pass kInvalidNode for none.
  ClassRouting(const Graph& g, std::span<const double> arc_cost,
               const TrafficMatrix& demands, ArcAliveMask alive,
               NodeId skip_node = kInvalidNode);

  /// Empty routing; call `compute` before any accessor. Exists so scratch
  /// holders (per-worker evaluation buffers) can reuse one instance's
  /// allocations across many scenario evaluations.
  ClassRouting() = default;

  /// (Re)computes the routing, reusing previously allocated buffers.
  void compute(const Graph& g, std::span<const double> arc_cost,
               const TrafficMatrix& demands, ArcAliveMask alive,
               NodeId skip_node = kInvalidNode);

  std::span<const double> arc_loads() const { return arc_load_; }
  double arc_load(ArcId a) const { return arc_load_[a]; }

  /// dist[t][u] = shortest cost from u to t (kInfDist if unreachable).
  const std::vector<std::vector<double>>& distances() const { return dist_; }

  bool pair_connected(NodeId s, NodeId t) const { return dist_[t][s] != kInfDist; }

  /// Demands (s,t) with positive volume whose source cannot reach t.
  std::size_t disconnected_demand_count() const { return disconnected_; }
  double disconnected_demand_volume() const { return disconnected_volume_; }

  /// Per-SD-pair end-to-end delay xi(s,t) for this class's DAGs, given
  /// per-arc delays D_a (computed from TOTAL load across classes).
  /// out[s*n + t] = delay in ms; untouched entries are set to -1 (pairs with
  /// no demand). Disconnected pairs with demand get kInfDist.
  void end_to_end_delays(const Graph& g, std::span<const double> arc_cost,
                         ArcAliveMask alive, std::span<const double> arc_delay_ms,
                         const TrafficMatrix& demands, SlaDelayMode mode,
                         NodeId skip_node, std::vector<double>& out) const;

 private:
  std::vector<double> arc_load_;
  std::vector<std::vector<double>> dist_;
  std::size_t disconnected_ = 0;
  double disconnected_volume_ = 0.0;
  // compute() scratch, kept to avoid reallocation across evaluations.
  std::vector<double> node_flow_;
  std::vector<NodeId> order_;
};

/// Tight-arc test: arc a lies on a shortest path toward t (distance labels
/// `dist`) iff it is alive and dist[src] == cost[a] + dist[dst]. Weights are
/// integers, so sums are exact in double; the epsilon only guards against
/// callers with fractional costs.
bool arc_is_tight(const Arc& arc, double cost, std::span<const double> dist);

/// Enumerates the ECMP paths (node sequences s..t) a class would use for one
/// SD pair under `arc_cost` and the liveness mask, in deterministic
/// (lexicographic next-hop) order. Stops after `max_paths` (the DAG can hold
/// exponentially many); returns an empty vector when t is unreachable.
/// Diagnostic/reporting API — the load machinery never materializes paths.
std::vector<std::vector<NodeId>> enumerate_ecmp_paths(
    const Graph& g, std::span<const double> arc_cost, NodeId s, NodeId t,
    ArcAliveMask alive = {}, std::size_t max_paths = 64);

}  // namespace dtr
