#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dtr {

/// A failure scenario. Link failures take down both directed arcs of a
/// physical link (fiber-cut semantics); node failures take down every arc
/// incident to the node AND remove the traffic it sources/sinks; link-pair
/// failures (Sec. V-F footnote: "other failure patterns, e.g., multiple link
/// failures") take down two physical links simultaneously.
struct FailureScenario {
  enum class Kind : std::uint8_t { kNone, kLink, kNode, kLinkPair };
  Kind kind = Kind::kNone;
  std::uint32_t id = 0;   ///< LinkId or NodeId depending on kind
  std::uint32_t id2 = 0;  ///< second LinkId (kLinkPair only)

  static FailureScenario none() { return {Kind::kNone, 0, 0}; }
  static FailureScenario link(LinkId l) { return {Kind::kLink, l, 0}; }
  static FailureScenario node(NodeId v) { return {Kind::kNode, v, 0}; }
  static FailureScenario link_pair(LinkId a, LinkId b) {
    return {Kind::kLinkPair, a, b};
  }

  bool operator==(const FailureScenario&) const = default;
};

std::string to_string(const FailureScenario& s);

/// All single-link failure scenarios (one per physical link).
std::vector<FailureScenario> all_link_failures(const Graph& g);

/// All single-node failure scenarios.
std::vector<FailureScenario> all_node_failures(const Graph& g);

/// `count` distinct random dual-link failure scenarios (a != b). Used by the
/// multiple-failure sensitivity study; enumerating all pairs is quadratic,
/// so the bench samples. Requires >= 2 physical links.
std::vector<FailureScenario> sample_dual_link_failures(const Graph& g,
                                                       std::size_t count, Rng& rng);

/// Builds the arc liveness mask for a scenario (1 = alive).
void build_alive_mask(const Graph& g, const FailureScenario& s,
                      std::vector<std::uint8_t>& mask);

/// The node whose traffic must be ignored under this scenario
/// (kInvalidNode except for node failures).
NodeId skipped_node(const FailureScenario& s);

}  // namespace dtr
