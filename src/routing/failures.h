#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dtr {

/// A failure scenario. Link failures take down both directed arcs of a
/// physical link (fiber-cut semantics); node failures take down every arc
/// incident to the node AND remove the traffic it sources/sinks; link-pair
/// failures (Sec. V-F footnote: "other failure patterns, e.g., multiple link
/// failures") take down two physical links simultaneously. Compound
/// scenarios generalize all of the above to ANY set of physical links and
/// nodes failing together — shared-risk link groups (conduit cuts), k-link
/// failures, and correlated outages all use this one representation.
struct FailureScenario {
  enum class Kind : std::uint8_t { kNone, kLink, kNode, kLinkPair, kCompound };
  Kind kind = Kind::kNone;
  std::uint32_t id = 0;   ///< LinkId or NodeId depending on kind
  std::uint32_t id2 = 0;  ///< second LinkId (kLinkPair only)
  /// kCompound payload; canonical form (what `compound` produces) is sorted
  /// ascending and deduplicated, so operator== is set equality.
  std::vector<LinkId> links;
  std::vector<NodeId> nodes;

  static FailureScenario none() { return {}; }
  static FailureScenario link(LinkId l) {
    FailureScenario s;
    s.kind = Kind::kLink;
    s.id = l;
    return s;
  }
  static FailureScenario node(NodeId v) {
    FailureScenario s;
    s.kind = Kind::kNode;
    s.id = v;
    return s;
  }
  static FailureScenario link_pair(LinkId a, LinkId b) {
    FailureScenario s;
    s.kind = Kind::kLinkPair;
    s.id = a;
    s.id2 = b;
    return s;
  }
  /// Canonical compound scenario: both element sets sorted and deduplicated.
  static FailureScenario compound(std::vector<LinkId> links,
                                  std::vector<NodeId> nodes = {});

  bool operator==(const FailureScenario&) const = default;
};

std::string to_string(const FailureScenario& s);

/// All single-link failure scenarios (one per physical link).
std::vector<FailureScenario> all_link_failures(const Graph& g);

/// All single-node failure scenarios.
std::vector<FailureScenario> all_node_failures(const Graph& g);

/// `count` distinct random k-link compound failure scenarios (canonical,
/// links sorted ascending). Draw pattern: k uniform link indices per
/// attempt, the attempt rejected on any duplicate, the combination rejected
/// if already sampled — for k == 2 this is the exact RNG stream of the
/// historical dual-link sampler. Requires >= k physical links; throws when
/// sampling stalls (count close to the number of combinations).
std::vector<FailureScenario> sample_k_link_failures(const Graph& g, int k,
                                                    std::size_t count, Rng& rng);

/// `count` distinct random dual-link failure scenarios (a != b). Thin shim
/// over `sample_k_link_failures(g, 2, count, rng)` — same RNG stream, same
/// samples — returning the legacy kLinkPair representation.
std::vector<FailureScenario> sample_dual_link_failures(const Graph& g,
                                                       std::size_t count, Rng& rng);

/// Invokes `on_link(LinkId)` / `on_node(NodeId)` for every element the
/// scenario takes down, in deterministic order (links before nodes, each in
/// stored order). The single dispatch point over scenario kinds: every
/// consumer — mask building, removed-arc collection, catalogs, probability
/// models — sees the legacy kinds and kCompound through the same compound
/// representation.
template <typename LinkFn, typename NodeFn>
void for_each_failed_element(const FailureScenario& s, LinkFn&& on_link,
                             NodeFn&& on_node) {
  switch (s.kind) {
    case FailureScenario::Kind::kNone:
      return;
    case FailureScenario::Kind::kLink:
      on_link(static_cast<LinkId>(s.id));
      return;
    case FailureScenario::Kind::kNode:
      on_node(static_cast<NodeId>(s.id));
      return;
    case FailureScenario::Kind::kLinkPair:
      on_link(static_cast<LinkId>(s.id));
      on_link(static_cast<LinkId>(s.id2));
      return;
    case FailureScenario::Kind::kCompound:
      for (const LinkId l : s.links) on_link(l);
      for (const NodeId v : s.nodes) on_node(v);
      return;
  }
}

/// Invokes `fn(ArcId)` for every arc the scenario takes down: both arcs of
/// each failed link, then every arc incident to each failed node, in
/// deterministic order. Validates element ids against `g`.
template <typename Fn>
void for_each_failed_arc(const Graph& g, const FailureScenario& s, Fn&& fn) {
  for_each_failed_element(
      s,
      [&](LinkId l) {
        if (l >= g.num_links()) throw std::out_of_range("for_each_failed_arc: link id");
        for (const ArcId a : g.link_arcs(l)) fn(a);
      },
      [&](NodeId v) {
        if (v >= g.num_nodes()) throw std::out_of_range("for_each_failed_arc: node id");
        for (const ArcId a : g.out_arcs(v)) fn(a);
        for (const ArcId a : g.in_arcs(v)) fn(a);
      });
}

/// Builds the arc liveness mask for a scenario (1 = alive).
void build_alive_mask(const Graph& g, const FailureScenario& s,
                      std::vector<std::uint8_t>& mask);

/// The nodes whose sourced/sunk traffic must be ignored under this scenario
/// (empty except for node failures and compound scenarios listing nodes).
/// The span aliases `s` and is invalidated with it.
std::span<const NodeId> skipped_nodes(const FailureScenario& s);

/// Membership test for the (tiny) skip sets `skipped_nodes` returns; a
/// linear scan beats any set structure at these sizes.
inline bool is_skipped(std::span<const NodeId> skip, NodeId v) {
  for (const NodeId u : skip)
    if (u == v) return true;
  return false;
}

}  // namespace dtr
