#include "routing/weights_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dtr {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("read_weights: " + what);
}

bool next_content_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void write_weights(std::ostream& os, const WeightSetting& w) {
  os << "dtr-weights 1\n";
  os << "links " << w.num_links() << "\n";
  for (LinkId l = 0; l < w.num_links(); ++l)
    os << w.get(TrafficClass::kDelay, l) << " " << w.get(TrafficClass::kThroughput, l)
       << "\n";
}

WeightSetting read_weights(std::istream& is) {
  std::string line, word;
  if (!next_content_line(is, line)) fail("empty input");
  {
    std::istringstream ss(line);
    int version = 0;
    ss >> word >> version;
    if (word != "dtr-weights" || version != 1) fail("bad header: " + line);
  }
  if (!next_content_line(is, line)) fail("missing links header");
  std::size_t num_links = 0;
  {
    std::istringstream ss(line);
    ss >> word >> num_links;
    if (word != "links" || ss.fail()) fail("bad links header: " + line);
  }
  WeightSetting w(num_links);
  for (std::size_t l = 0; l < num_links; ++l) {
    if (!next_content_line(is, line)) fail("missing weight line");
    std::istringstream ss(line);
    int delay_weight = 0, tput_weight = 0;
    ss >> delay_weight >> tput_weight;
    if (ss.fail()) fail("bad weight line: " + line);
    if (delay_weight < 1 || tput_weight < 1) fail("weights must be >= 1: " + line);
    w.set(TrafficClass::kDelay, static_cast<LinkId>(l), delay_weight);
    w.set(TrafficClass::kThroughput, static_cast<LinkId>(l), tput_weight);
  }
  return w;
}

}  // namespace dtr
