#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cost/cost_types.h"
#include "cost/delay_model.h"
#include "cost/sla.h"
#include "graph/graph.h"
#include "routing/failures.h"
#include "routing/route_state.h"
#include "routing/weights.h"
#include "traffic/traffic_matrix.h"

namespace dtr {

class ThreadPool;

/// Cost-model parameters shared by every evaluation (Sec. III / V-A3).
struct EvalParams {
  DelayModelParams delay_model;
  SlaParams sla;
  SlaDelayMode sla_delay_mode = SlaDelayMode::kExpected;
  /// A disconnected delay-sensitive pair is charged as a violation with this
  /// much excess delay over theta (it can never meet its SLA).
  double disconnect_delay_excess_ms = 100.0;
};

/// How much detail `evaluate` materializes. Costs-only keeps the search hot
/// path allocation-light; Full adds the per-arc and per-SD profiles the
/// figures need.
enum class EvalDetail : std::uint8_t { kCostsOnly, kFull };

/// Execution knobs for the incremental (delta-SPF) failure-evaluation fast
/// path. Separate from the cost-model EvalParams: these change HOW results
/// are computed, never WHAT — both paths produce bit-identical results
/// (test-enforced), so every incremental artifact can be cross-checked by
/// flipping `incremental` off.
struct EvaluatorConfig {
  /// Batched link-failure evaluation (evaluate_failures / sweep /
  /// sweep_detailed) computes one shared no-failure base routing per call
  /// and patches each arc-removal scenario from it: distance labels are
  /// delta-updated per destination and untouched destinations replay their
  /// recorded load contributions instead of re-aggregating. Node-failure
  /// scenarios always take the full path (their skip semantics change the
  /// demand set, not just arcs).
  bool incremental = true;
  /// Per-destination fallback: when a failure invalidates more than this
  /// fraction of one destination's distance labels, that destination is
  /// recomputed with a full Dijkstra — past this point the delta bookkeeping
  /// stops paying for itself.
  double incremental_max_affected_fraction = 0.25;
};

struct EvalResult {
  double lambda = 0.0;  ///< SLA cost of delay-sensitive traffic
  double phi = 0.0;     ///< Fortz congestion cost of throughput-sensitive traffic
  int sla_violations = 0;
  std::size_t disconnected_delay_pairs = 0;
  std::size_t disconnected_tput_pairs = 0;

  // Populated only with EvalDetail::kFull:
  std::vector<double> arc_total_load;   ///< per arc, Mbps
  std::vector<double> arc_utilization;  ///< per arc, load / capacity
  /// xi(s,t) at [s*n+t] for pairs with delay demand; -1 elsewhere; kInfDist
  /// when disconnected.
  std::vector<double> sd_delay_ms;
  /// Per arc: 1 if the arc carries delay-sensitive traffic.
  std::vector<std::uint8_t> carries_delay_traffic;

  CostPair cost() const { return {lambda, phi}; }
};

/// One unit of batched evaluation work: a weight setting under a failure
/// scenario. `weights` must outlive the batch call.
struct EvalJob {
  const WeightSetting* weights = nullptr;
  FailureScenario scenario = FailureScenario::none();
};

/// Aggregate over a scenario set (the Kfail sums of Eqs. (4)/(7)).
struct SweepResult {
  double lambda = 0.0;
  double phi = 0.0;
  bool aborted = false;  ///< true if the early-abort bound was exceeded
  std::size_t scenarios_evaluated = 0;

  CostPair cost() const { return {lambda, phi}; }
};

/// Evaluates DTR weight settings on a network instance: runs both class
/// routings (ECMP over each logical topology), derives total loads, link
/// delays, SLA costs and congestion costs — under normal conditions or any
/// failure scenario. The workhorse behind both optimization phases and all
/// experiment harnesses.
///
/// The evaluator never mutates the graph: failures are arc liveness masks.
class Evaluator {
 public:
  Evaluator(const Graph& g, const ClassedTraffic& traffic, EvalParams params,
            EvaluatorConfig config = {});

  const Graph& graph() const { return graph_; }
  const ClassedTraffic& traffic() const { return traffic_; }
  const EvalParams& params() const { return params_; }
  const EvaluatorConfig& config() const { return config_; }

  EvalResult evaluate(const WeightSetting& w,
                      const FailureScenario& scenario = FailureScenario::none(),
                      EvalDetail detail = EvalDetail::kCostsOnly) const;

  /// Sums Lambda/Phi over `scenarios`. When `abort_bound` is set, the sweep
  /// stops as soon as the partial sums are lexicographically worse than the
  /// bound (sound because per-scenario costs are non-negative); `aborted`
  /// reports that outcome. This prunes most rejected Phase 2 candidates after
  /// a handful of scenario evaluations.
  ///
  /// `scenario_weights` (optional, same length as `scenarios`, non-negative)
  /// turn the sums into expectations over a probabilistic failure model
  /// (the extension sketched in the paper's conclusion): each scenario's
  /// contribution is multiplied by its weight. Early abort stays sound since
  /// weighted terms remain non-negative.
  ///
  /// When `pool` is given (and has > 1 worker), scenarios are evaluated in
  /// parallel rounds of `chunk_size * workers` while sums accumulate in
  /// scenario order with the abort bound checked after every term — so the
  /// returned SweepResult (sums, aborted flag AND scenarios_evaluated) is
  /// bit-identical to the sequential sweep for any worker count or chunk
  /// size; parallelism only costs up to one round of wasted evaluations past
  /// an abort point. `chunk_size` trades round fan-out against that waste
  /// (default 1 = the historical one-scenario-per-worker rounds).
  SweepResult sweep(const WeightSetting& w, std::span<const FailureScenario> scenarios,
                    const CostPair* abort_bound = nullptr,
                    std::span<const double> scenario_weights = {},
                    ThreadPool* pool = nullptr, std::size_t chunk_size = 1) const;

  /// Per-scenario results (for the per-failure figures / metrics).
  std::vector<EvalResult> sweep_detailed(const WeightSetting& w,
                                         std::span<const FailureScenario> scenarios,
                                         EvalDetail detail = EvalDetail::kCostsOnly,
                                         ThreadPool* pool = nullptr) const;

  /// Batch failure-scenario evaluation: one EvalResult per scenario, all for
  /// the same weight setting. Arc costs are expanded once and shared across
  /// scenarios; each pool worker reuses its own SPF/routing scratch buffers.
  /// Results are bit-identical for any worker count (each scenario is an
  /// independent pure evaluation written to its own output slot).
  std::vector<EvalResult> evaluate_failures(const WeightSetting& w,
                                            std::span<const FailureScenario> scenarios,
                                            ThreadPool* pool = nullptr,
                                            EvalDetail detail = EvalDetail::kCostsOnly) const;

  /// Batch cost evaluation over heterogeneous (weights, scenario) jobs — the
  /// Phase 1b sampling workload. Same determinism contract as
  /// `evaluate_failures`.
  std::vector<CostPair> evaluate_costs(std::span<const EvalJob> jobs,
                                       ThreadPool* pool = nullptr) const;

  /// Uncapacitated min-hop reference cost: sum over demands of
  /// volume * hopcount. Figures report Phi / phi_uncap() (Fortz's Phi*
  /// normalization) so series are O(1).
  double phi_uncap() const { return phi_uncap_; }

  /// Number of SD pairs with positive delay-class demand.
  std::size_t delay_demand_pairs() const { return delay_pairs_; }

 private:
  /// Reusable per-evaluation buffers. One instance per worker thread; reusing
  /// it across scenario evaluations keeps the hot path allocation-free.
  struct Scratch {
    std::vector<std::uint8_t> mask;
    std::vector<double> cost_delay;
    std::vector<double> cost_tput;
    std::vector<double> total_load;
    std::vector<double> arc_delay;
    std::vector<double> sd_delay;
    std::vector<ArcId> removed;
    ClassRouting delay_routing;
    ClassRouting tput_routing;
    FailureScratch failure;
  };

  /// Shared no-failure base for the incremental path: both class routings
  /// plus their replay records, computed once per batch call on the calling
  /// thread and read concurrently by every worker.
  struct IncrementalBase;

  /// Core evaluation with pre-expanded arc costs and caller-owned scratch.
  /// A non-null `base` routes eligible scenarios through the incremental
  /// path (bit-identical to the full one).
  EvalResult evaluate_impl(std::span<const double> cost_delay,
                           std::span<const double> cost_tput,
                           const FailureScenario& scenario, EvalDetail detail,
                           Scratch& scratch, const IncrementalBase* base = nullptr) const;

  /// Fills `base` when the config and scenario mix warrant the incremental
  /// path; returns whether it did.
  bool prepare_incremental_base(std::span<const double> cost_delay,
                                std::span<const double> cost_tput,
                                std::span<const FailureScenario> scenarios,
                                IncrementalBase& base) const;

  /// The calling thread's persistent scratch. Pool workers are long-lived,
  /// so batched evaluations reuse buffers across calls, not just within one.
  static Scratch& worker_scratch();

  const Graph& graph_;
  ClassedTraffic traffic_;
  EvalParams params_;
  EvaluatorConfig config_;
  double phi_uncap_ = 0.0;
  std::size_t delay_pairs_ = 0;
};

}  // namespace dtr
