#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cost/cost_types.h"
#include "cost/delay_model.h"
#include "cost/sla.h"
#include "graph/graph.h"
#include "routing/failures.h"
#include "routing/route_state.h"
#include "routing/weights.h"
#include "traffic/traffic_matrix.h"

namespace dtr::telemetry {
class Registry;
}

namespace dtr {

class ThreadPool;

/// Cost-model parameters shared by every evaluation (Sec. III / V-A3).
struct EvalParams {
  DelayModelParams delay_model;
  SlaParams sla;
  SlaDelayMode sla_delay_mode = SlaDelayMode::kExpected;
  /// A disconnected delay-sensitive pair is charged as a violation with this
  /// much excess delay over theta (it can never meet its SLA).
  double disconnect_delay_excess_ms = 100.0;
};

/// How much detail `evaluate` materializes. Costs-only keeps the search hot
/// path allocation-light; Full adds the per-arc and per-SD profiles the
/// figures need.
enum class EvalDetail : std::uint8_t { kCostsOnly, kFull };

/// Execution knobs for the incremental (delta-SPF) failure-evaluation fast
/// path. Separate from the cost-model EvalParams: these change HOW results
/// are computed, never WHAT — both paths produce bit-identical results
/// (test-enforced), so every incremental artifact can be cross-checked by
/// flipping `incremental` off.
struct EvaluatorConfig {
  /// Batched link-failure evaluation (evaluate_failures / sweep /
  /// sweep_detailed) computes one shared no-failure base routing per call
  /// and patches each arc-removal scenario from it: distance labels are
  /// delta-updated per destination and untouched destinations replay their
  /// recorded load contributions instead of re-aggregating. This covers
  /// single links, link pairs, AND links-only compound scenarios (SRLGs,
  /// k-link failures) — any number of removed arcs flows through the same
  /// multi-arc delta-SPF + replay path. Scenarios that fail nodes always
  /// take the full path (their skip semantics change the demand set, not
  /// just arcs). Master switch: the two caches below only engage when this
  /// is on.
  bool incremental = true;
  /// Per-destination fallback: when a failure invalidates more than this
  /// fraction of one destination's distance labels, that destination is
  /// recomputed with a full Dijkstra — past this point the delta bookkeeping
  /// stops paying for itself.
  double incremental_max_affected_fraction = 0.25;
  /// Weights-keyed LRU cache of base-routing records across calls. A
  /// no-failure evaluate() builds and caches the base (routings + no-failure
  /// products), so the sweep / evaluate_failures / single-failure evaluate()
  /// calls the optimizer issues for the SAME weight vector reuse one record
  /// instead of recomputing the full Dijkstra + aggregation per call. The
  /// patch-only machinery (replay CSRs + delay-DP index) is materialized
  /// LAZILY on the first call that actually patches a failure from the
  /// record, so Phase-1 probes that build a base which is evicted unused
  /// never pay the recording cost. Keys are compared by VALUE (the whole
  /// weight vector), so mutating a caller's WeightSetting can never serve a
  /// stale record.
  bool base_routing_cache = true;
  /// LRU bound on cached base records. Sized for the optimizer's working
  /// set: the incumbent plus one batch of speculative Phase-1 probes.
  std::size_t base_cache_capacity = 16;
  /// Incremental end-to-end delay DP: the base records a dirty-arc index
  /// (which destinations' DPs read which arc's delay); a patched scenario
  /// marks the destinations whose DAG changed or whose recorded arc delays
  /// are not bitwise identical to the base, runs the DP for those only, and
  /// replays the base's delay column for the rest — bit-identical by
  /// construction (same float terms, same order).
  bool incremental_delay = true;
  /// Weight-delta donor patching: when a base-cache miss finds another cached
  /// base whose weight vector differs on at most this many links (either
  /// class), the new base's routings — labels, DAGs, loads, delay columns —
  /// are delta-patched from that donor (delta_spf_update_arcs + record
  /// replay) instead of rebuilt with full Dijkstras. Bit-identical to a
  /// scratch build by the same argument as the failure patch path, so cache
  /// contents stay pure acceleration state. This is the Phase-1 probe
  /// accelerator: probes perturb ONE link's weights off the incumbent. 0
  /// disables; only engages with incremental + base_routing_cache on.
  std::size_t weight_delta_max_links = 1;
  /// Optional telemetry sink (borrowed; may be null). The BATCH entry points
  /// (evaluate_failures, evaluate_costs, sweep) fold their deterministic
  /// counters into it, aggregated per-scenario-slot and merged on the calling
  /// thread — byte-identical across worker/thread shapes. Single evaluate()
  /// calls never publish deterministic counters: the optimizer's speculative
  /// Phase-1 probing issues a shape-dependent NUMBER of them, so per-call
  /// publication would break the cross-shape identity. Base-cache counters
  /// are shape-dependent by nature and flow to the process plane only, via
  /// flush_cache_stats_to_telemetry(). Ignored while telemetry::enabled() is
  /// off.
  telemetry::Registry* telemetry = nullptr;
};

/// Counters of the weights-keyed base-routing cache (monotonic; snapshot via
/// Evaluator::base_cache_stats).
struct EvaluatorCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Cache misses whose base was delta-patched from a donor entry (a cached
  /// base differing on <= weight_delta_max_links links) instead of rebuilt
  /// with full Dijkstras.
  std::uint64_t weight_patched = 0;
  /// Total arc-cost-change entries applied by those donor patches (both
  /// classes; 2 arcs per changed link on bidirectional topologies).
  std::uint64_t arcs_updated = 0;
};

/// Deterministic per-evaluation counters of one scenario evaluation, folded
/// per-slot into the telemetry registry by the batch entry points. Every
/// field is a pure function of (weights, scenario, config) — never of the
/// execution shape.
struct EvalStats {
  std::uint64_t scenarios_patched = 0;      ///< rode the delta-SPF patch path
  std::uint64_t scenarios_full = 0;         ///< full per-scenario recompute
  std::uint64_t scenarios_served_none = 0;  ///< no-failure served from base
  PatchStats patch;                         ///< delta-SPF / replay / delay-DP detail

  void merge(const EvalStats& o);
};

struct EvalResult {
  double lambda = 0.0;  ///< SLA cost of delay-sensitive traffic
  double phi = 0.0;     ///< Fortz congestion cost of throughput-sensitive traffic
  int sla_violations = 0;
  std::size_t disconnected_delay_pairs = 0;
  std::size_t disconnected_tput_pairs = 0;

  // Populated only with EvalDetail::kFull:
  std::vector<double> arc_total_load;   ///< per arc, Mbps
  std::vector<double> arc_utilization;  ///< per arc, load / capacity
  /// xi(s,t) at [s*n+t] for pairs with delay demand; -1 elsewhere; kInfDist
  /// when disconnected.
  std::vector<double> sd_delay_ms;
  /// Per arc: 1 if the arc carries delay-sensitive traffic.
  std::vector<std::uint8_t> carries_delay_traffic;

  CostPair cost() const { return {lambda, phi}; }
};

/// Per-class destination distance labels for one (weights, failure scenario)
/// pair, shared across evaluators that differ only in their traffic matrix —
/// the cross-trial fast path of evaluate_fluctuations. Labels are a pure
/// function of weights + topology + failure (never of traffic), so one SPF
/// solve serves every perturbed-TM trial; each trial re-runs only load
/// aggregation and the cost tail. `delay[t][u]` / `tput[t][u]` must equal
/// what shortest_distances_to(g, t, costs, alive) produces for that class,
/// bit for bit.
struct SharedScenarioLabels {
  std::vector<std::vector<double>> delay;
  std::vector<std::vector<double>> tput;
};

/// One unit of batched evaluation work: a weight setting under a failure
/// scenario. `weights` must outlive the batch call.
struct EvalJob {
  const WeightSetting* weights = nullptr;
  FailureScenario scenario = FailureScenario::none();
};

/// Aggregate over a scenario set (the Kfail sums of Eqs. (4)/(7)).
struct SweepResult {
  double lambda = 0.0;
  double phi = 0.0;
  /// Weighted sum of per-scenario SLA violation counts — the raw material of
  /// the expected-downtime objective (accumulated in the same ordered loop as
  /// lambda/phi, so it shares their determinism contract).
  double violations = 0.0;
  bool aborted = false;  ///< true if the early-abort bound was exceeded
  std::size_t scenarios_evaluated = 0;

  CostPair cost() const { return {lambda, phi}; }
};

/// Options of Evaluator::sweep, replacing its historical positional tail
/// (abort_bound, scenario_weights, pool, chunk_size). Spans and pointers are
/// borrowed — they must outlive the call, not the options object.
struct SweepOptions {
  /// Early-abort bound: the sweep stops as soon as the partial sums are
  /// lexicographically worse (sound because per-scenario terms are
  /// non-negative); SweepResult::aborted reports that outcome. This prunes
  /// most rejected Phase 2 candidates after a handful of evaluations.
  const CostPair* abort_bound = nullptr;
  /// Optional per-scenario weights (same length as the scenario span,
  /// non-negative): each scenario's contribution is multiplied by its weight,
  /// turning the sums into expectations over a probabilistic failure model.
  /// Early abort stays sound since weighted terms remain non-negative.
  std::span<const double> scenario_weights = {};
  /// When given (and > 1 worker), scenarios are evaluated in parallel rounds
  /// of `chunk_size * workers` while sums accumulate in scenario order with
  /// the abort bound checked after every term — so the returned SweepResult
  /// (sums, aborted flag AND scenarios_evaluated) is bit-identical to the
  /// sequential sweep for any worker count or chunk size; parallelism only
  /// costs up to one round of wasted evaluations past an abort point.
  ThreadPool* pool = nullptr;
  /// Round fan-out per worker; trades parallelism against post-abort waste
  /// (default 1 = the historical one-scenario-per-worker rounds).
  std::size_t chunk_size = 1;
  /// Reinterprets `abort_bound` for the expected-downtime objective: the
  /// lexicographic abort comparison runs on (violations, phi) instead of
  /// (lambda, phi) — abort_bound->lambda bounds the weighted violation sum.
  /// The lambda/phi/violations sums themselves are unchanged.
  bool abort_on_violations = false;
};

/// Evaluates DTR weight settings on a network instance: runs both class
/// routings (ECMP over each logical topology), derives total loads, link
/// delays, SLA costs and congestion costs — under normal conditions or any
/// failure scenario. The workhorse behind both optimization phases and all
/// experiment harnesses.
///
/// The evaluator never mutates the graph: failures are arc liveness masks.
class Evaluator {
 public:
  Evaluator(const Graph& g, const ClassedTraffic& traffic, EvalParams params,
            EvaluatorConfig config = {});
  ~Evaluator();

  const Graph& graph() const { return graph_; }
  const ClassedTraffic& traffic() const { return traffic_; }
  const EvalParams& params() const { return params_; }
  const EvaluatorConfig& config() const { return config_; }

  EvalResult evaluate(const WeightSetting& w,
                      const FailureScenario& scenario = FailureScenario::none(),
                      EvalDetail detail = EvalDetail::kCostsOnly) const;

  /// Evaluation with caller-provided distance labels (see
  /// SharedScenarioLabels) instead of running any SPF: both class routings
  /// load-sweep over the given labels under the scenario's alive mask, then
  /// the ordinary cost tail runs — the same float ops as evaluate(), so the
  /// result is bit-identical whenever the labels match what the scenario's
  /// SPF would produce. Node-failure scenarios are rejected (their skip
  /// semantics change the demand set, not just arc liveness).
  EvalResult evaluate_with_labels(const WeightSetting& w, const FailureScenario& scenario,
                                  const SharedScenarioLabels& labels,
                                  EvalDetail detail = EvalDetail::kCostsOnly) const;

  /// Sums weighted Lambda/Phi/violations over `scenarios` under the options'
  /// early-abort / weighting / parallelism knobs (see SweepOptions). The
  /// workhorse behind every catalog-aggregation objective.
  SweepResult sweep(const WeightSetting& w, std::span<const FailureScenario> scenarios,
                    const SweepOptions& options = {}) const;

  /// Per-scenario results (for the per-failure figures / metrics).
  std::vector<EvalResult> sweep_detailed(const WeightSetting& w,
                                         std::span<const FailureScenario> scenarios,
                                         EvalDetail detail = EvalDetail::kCostsOnly,
                                         ThreadPool* pool = nullptr) const;

  /// Batch failure-scenario evaluation: one EvalResult per scenario, all for
  /// the same weight setting. Arc costs are expanded once and shared across
  /// scenarios; each pool worker reuses its own SPF/routing scratch buffers.
  /// Results are bit-identical for any worker count (each scenario is an
  /// independent pure evaluation written to its own output slot).
  std::vector<EvalResult> evaluate_failures(const WeightSetting& w,
                                            std::span<const FailureScenario> scenarios,
                                            ThreadPool* pool = nullptr,
                                            EvalDetail detail = EvalDetail::kCostsOnly) const;

  /// Batch cost evaluation over heterogeneous (weights, scenario) jobs — the
  /// Phase 1b sampling workload. Same determinism contract as
  /// `evaluate_failures`.
  std::vector<CostPair> evaluate_costs(std::span<const EvalJob> jobs,
                                       ThreadPool* pool = nullptr) const;

  /// Uncapacitated min-hop reference cost: sum over demands of
  /// volume * hopcount. Figures report Phi / phi_uncap() (Fortz's Phi*
  /// normalization) so series are O(1).
  double phi_uncap() const { return phi_uncap_; }

  /// Number of SD pairs with positive delay-class demand.
  std::size_t delay_demand_pairs() const { return delay_pairs_; }

  /// Snapshot of the base-routing cache counters (all zero when the cache is
  /// disabled). Thread-safe.
  EvaluatorCacheStats base_cache_stats() const;

  /// Cached base records currently held (<= base_cache_capacity).
  std::size_t base_cache_size() const;

  /// Drops every cached base record (counters survive). The cache keys on
  /// weight-vector VALUES, so ordinary weight mutation can never serve a
  /// stale record; this exists for tests and for callers that want to
  /// release the memory between workloads. Thread-safe, and `const` like the
  /// evaluation entry points: the cache is pure acceleration state, never
  /// observable in results.
  void invalidate_base_cache() const;

  /// Publishes the base-routing cache LIFETIME totals into the process plane
  /// of config().telemetry (`evaluator.base_cache.*`). Hit/miss counts depend
  /// on the execution shape (LRU survivor sets, speculative lookups), so they
  /// never enter the deterministic plane. The evaluator's owner calls this
  /// exactly once, when done with it — repeated flushes would double-count.
  /// No-op when telemetry is disabled, unset, or the cache is off.
  void flush_cache_stats_to_telemetry() const;

 private:
  /// Reusable per-evaluation buffers. One instance per worker thread; reusing
  /// it across scenario evaluations keeps the hot path allocation-free.
  struct Scratch {
    std::vector<std::uint8_t> mask;
    std::vector<double> cost_delay;
    std::vector<double> cost_tput;
    std::vector<double> total_load;
    std::vector<double> arc_delay;
    std::vector<double> sd_delay;
    std::vector<ArcId> removed;
    ClassRouting delay_routing;
    ClassRouting tput_routing;
    FailureScratch failure;
  };

  /// Shared no-failure base for the incremental path: both class routings
  /// plus their replay records, and (when the delay DP / cache want it) the
  /// no-failure loads, arc delays, delay-DP output + dirty-arc index, and
  /// aggregated costs. Built once (per batch call, or once per weight vector
  /// when cached) on one thread, then read concurrently by every worker.
  struct IncrementalBase;

  /// Weights-keyed LRU cache of shared_ptr'd IncrementalBase records
  /// (mutex-guarded; defined in evaluator.cpp).
  class BaseCache;

  /// Core evaluation with pre-expanded arc costs and caller-owned scratch.
  /// A non-null `base` routes eligible scenarios through the incremental
  /// path (bit-identical to the full one). A non-null `stats` receives this
  /// one evaluation's deterministic counters (the caller owns aggregation
  /// order).
  EvalResult evaluate_impl(std::span<const double> cost_delay,
                           std::span<const double> cost_tput,
                           const FailureScenario& scenario, EvalDetail detail,
                           Scratch& scratch, const IncrementalBase* base = nullptr,
                           EvalStats* stats = nullptr) const;

  /// Everything downstream of the two class routings sitting in `scratch`:
  /// total loads, arc delays, the SLA delay path (incremental when `patched`
  /// and the base carries a DP index), cost aggregation, and the kFull
  /// detail. Shared by evaluate_impl and evaluate_with_labels so the float
  /// operations are literally the same code.
  EvalResult finish_scenario(std::span<const double> cost_delay,
                             std::span<const NodeId> skip, EvalDetail detail,
                             Scratch& s, bool patched,
                             const IncrementalBase* base) const;

  /// Builds the no-failure base for these arc costs: both routings, plus the
  /// delay-DP base (loads, delays, sd_delay, aggregated no-failure costs)
  /// when `with_delay_base`. With `with_records` the replay CSRs and the
  /// dirty-arc delay-DP index are recorded inline (the uncached path, which
  /// patches immediately); without, they are left for ensure_patch_records
  /// to materialize on first reuse.
  void build_base(std::span<const double> cost_delay, std::span<const double> cost_tput,
                  IncrementalBase& base, bool with_delay_base, bool with_records) const;

  /// Builds a base by delta-patching a donor base whose weights differ on at
  /// most weight_delta_max_links links: both routings run
  /// compute_from_weight_delta from the donor's labels + replay records, the
  /// delay columns replay the donor's via the dirty-arc index, and the
  /// no-failure products/aggregates are derived by the same shared helpers as
  /// build_base — bit-identical to a scratch build. Returns false (built
  /// untouched) when the donor cannot serve. Records of the NEW base stay
  /// lazy (ensure_patch_records).
  bool build_base_from_donor(const WeightSetting& w, const WeightSetting& donor_key,
                             const IncrementalBase& donor,
                             std::span<const double> cost_delay,
                             std::span<const double> cost_tput,
                             IncrementalBase& built) const;

  /// No-failure total loads + arc delays of a base whose routings are done.
  void compute_base_products(IncrementalBase& base) const;

  /// No-failure cost aggregation (SLA over base.sd_delay — mutating it in
  /// place like every evaluation does — plus the Fortz sum) into
  /// base.none_result. Requires products + sd_delay.
  void aggregate_none_result(IncrementalBase& base) const;

  /// Materializes the patch-only machinery of a lazily built base — the
  /// replay CSRs and (when the delay DP is on) the dirty-arc index — by
  /// re-running the deterministic base computation with recording enabled.
  /// Thread-safe (call_once); a no-op when the base already carries records.
  void ensure_patch_records(std::span<const double> cost_delay,
                            std::span<const double> cost_tput,
                            const IncrementalBase& base) const;

  /// Returns the base record to patch from, or nullptr when the incremental
  /// path is off / cannot pay for itself. Consults the cache first (hit =
  /// free reuse); on a miss, builds when at least one eligible scenario
  /// amortizes the build (cache on: >= 1, since the record is kept for later
  /// calls; cache off: >= 2, the build costs about one full evaluation).
  /// `eligible_scenarios` = 0 means "find only, never build".
  /// `patchable_scenarios` > 0 additionally guarantees the returned base
  /// carries patch records (ensure_patch_records has run).
  std::shared_ptr<const IncrementalBase> acquire_base(
      const WeightSetting& w, std::span<const double> cost_delay,
      std::span<const double> cost_tput, std::size_t eligible_scenarios,
      std::size_t patchable_scenarios) const;

  /// No-failure evaluation served from a cached base: returns the stored
  /// aggregate (and rebuilds the kFull detail vectors from the stored
  /// no-failure products) — bit-identical to recomputing, by purity.
  EvalResult serve_none_from_base(const IncrementalBase& base, EvalDetail detail) const;

  /// The calling thread's persistent scratch. Pool workers are long-lived,
  /// so batched evaluations reuse buffers across calls, not just within one.
  static Scratch& worker_scratch();

  const Graph& graph_;
  ClassedTraffic traffic_;
  EvalParams params_;
  EvaluatorConfig config_;
  double phi_uncap_ = 0.0;
  std::size_t delay_pairs_ = 0;
  /// Non-null iff config_.incremental && config_.base_routing_cache. The
  /// pointer is set once in the constructor; the cache itself is internally
  /// synchronized, so const evaluation entry points may touch it from any
  /// thread.
  std::unique_ptr<BaseCache> cache_;
};

}  // namespace dtr
