#include "routing/failures.h"

#include <algorithm>
#include <stdexcept>

namespace dtr {

std::string to_string(const FailureScenario& s) {
  switch (s.kind) {
    case FailureScenario::Kind::kNone: return "none";
    case FailureScenario::Kind::kLink: return "link#" + std::to_string(s.id);
    case FailureScenario::Kind::kNode: return "node#" + std::to_string(s.id);
    case FailureScenario::Kind::kLinkPair:
      return "links#" + std::to_string(s.id) + "+" + std::to_string(s.id2);
  }
  return "?";
}

std::vector<FailureScenario> all_link_failures(const Graph& g) {
  std::vector<FailureScenario> out;
  out.reserve(g.num_links());
  for (LinkId l = 0; l < g.num_links(); ++l) out.push_back(FailureScenario::link(l));
  return out;
}

std::vector<FailureScenario> all_node_failures(const Graph& g) {
  std::vector<FailureScenario> out;
  out.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) out.push_back(FailureScenario::node(v));
  return out;
}

std::vector<FailureScenario> sample_dual_link_failures(const Graph& g,
                                                       std::size_t count, Rng& rng) {
  if (g.num_links() < 2)
    throw std::invalid_argument("sample_dual_link_failures: need >= 2 links");
  std::vector<FailureScenario> out;
  out.reserve(count);
  std::size_t guard = 64 * count + 64;
  while (out.size() < count) {
    if (guard-- == 0)
      throw std::runtime_error("sample_dual_link_failures: sampling stalled");
    auto a = static_cast<LinkId>(rng.uniform_index(g.num_links()));
    auto b = static_cast<LinkId>(rng.uniform_index(g.num_links()));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    const FailureScenario s = FailureScenario::link_pair(a, b);
    if (std::find(out.begin(), out.end(), s) != out.end()) continue;
    out.push_back(s);
  }
  return out;
}

void build_alive_mask(const Graph& g, const FailureScenario& s,
                      std::vector<std::uint8_t>& mask) {
  mask.assign(g.num_arcs(), 1);
  switch (s.kind) {
    case FailureScenario::Kind::kNone:
      return;
    case FailureScenario::Kind::kLink:
      if (s.id >= g.num_links()) throw std::out_of_range("build_alive_mask: link id");
      for (ArcId a : g.link_arcs(s.id)) mask[a] = 0;
      return;
    case FailureScenario::Kind::kNode:
      if (s.id >= g.num_nodes()) throw std::out_of_range("build_alive_mask: node id");
      for (ArcId a : g.out_arcs(s.id)) mask[a] = 0;
      for (ArcId a : g.in_arcs(s.id)) mask[a] = 0;
      return;
    case FailureScenario::Kind::kLinkPair:
      if (s.id >= g.num_links() || s.id2 >= g.num_links())
        throw std::out_of_range("build_alive_mask: link pair id");
      for (ArcId a : g.link_arcs(s.id)) mask[a] = 0;
      for (ArcId a : g.link_arcs(s.id2)) mask[a] = 0;
      return;
  }
}

NodeId skipped_node(const FailureScenario& s) {
  return s.kind == FailureScenario::Kind::kNode ? static_cast<NodeId>(s.id) : kInvalidNode;
}

}  // namespace dtr
