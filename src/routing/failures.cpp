#include "routing/failures.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dtr {

namespace {

void sort_unique_u32(std::vector<std::uint32_t>& xs) {
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
}

std::string join_ids(std::span<const std::uint32_t> ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += "+";
    out += std::to_string(ids[i]);
  }
  return out;
}

}  // namespace

FailureScenario FailureScenario::compound(std::vector<LinkId> links,
                                          std::vector<NodeId> nodes) {
  FailureScenario s;
  s.kind = Kind::kCompound;
  sort_unique_u32(links);
  sort_unique_u32(nodes);
  s.links = std::move(links);
  s.nodes = std::move(nodes);
  return s;
}

std::string to_string(const FailureScenario& s) {
  switch (s.kind) {
    case FailureScenario::Kind::kNone: return "none";
    case FailureScenario::Kind::kLink: return "link#" + std::to_string(s.id);
    case FailureScenario::Kind::kNode: return "node#" + std::to_string(s.id);
    case FailureScenario::Kind::kLinkPair:
      return "links#" + std::to_string(s.id) + "+" + std::to_string(s.id2);
    case FailureScenario::Kind::kCompound: {
      if (s.links.empty() && s.nodes.empty()) return "compound#empty";
      std::string out;
      if (!s.links.empty()) out += "links#" + join_ids(s.links);
      if (!s.nodes.empty()) {
        if (!out.empty()) out += "|";
        out += "nodes#" + join_ids(s.nodes);
      }
      return out;
    }
  }
  return "?";
}

std::vector<FailureScenario> all_link_failures(const Graph& g) {
  std::vector<FailureScenario> out;
  out.reserve(g.num_links());
  for (LinkId l = 0; l < g.num_links(); ++l) out.push_back(FailureScenario::link(l));
  return out;
}

std::vector<FailureScenario> all_node_failures(const Graph& g) {
  std::vector<FailureScenario> out;
  out.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) out.push_back(FailureScenario::node(v));
  return out;
}

std::vector<FailureScenario> sample_k_link_failures(const Graph& g, int k,
                                                    std::size_t count, Rng& rng) {
  if (k < 1) throw std::invalid_argument("sample_k_link_failures: k must be >= 1");
  if (g.num_links() < static_cast<std::size_t>(k))
    throw std::invalid_argument("sample_k_link_failures: need >= k links");
  std::vector<FailureScenario> out;
  out.reserve(count);
  std::vector<LinkId> draw(static_cast<std::size_t>(k));
  std::size_t guard = 64 * count + 64;
  while (out.size() < count) {
    if (guard-- == 0)
      throw std::runtime_error("sample_k_link_failures: sampling stalled");
    for (LinkId& l : draw) l = static_cast<LinkId>(rng.uniform_index(g.num_links()));
    std::sort(draw.begin(), draw.end());
    if (std::adjacent_find(draw.begin(), draw.end()) != draw.end()) continue;
    FailureScenario s = FailureScenario::compound(draw);
    if (std::find(out.begin(), out.end(), s) != out.end()) continue;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<FailureScenario> sample_dual_link_failures(const Graph& g,
                                                       std::size_t count, Rng& rng) {
  if (g.num_links() < 2)
    throw std::invalid_argument("sample_dual_link_failures: need >= 2 links");
  std::vector<FailureScenario> out = sample_k_link_failures(g, 2, count, rng);
  for (FailureScenario& s : out) s = FailureScenario::link_pair(s.links[0], s.links[1]);
  return out;
}

void build_alive_mask(const Graph& g, const FailureScenario& s,
                      std::vector<std::uint8_t>& mask) {
  mask.assign(g.num_arcs(), 1);
  for_each_failed_arc(g, s, [&](ArcId a) { mask[a] = 0; });
}

std::span<const NodeId> skipped_nodes(const FailureScenario& s) {
  switch (s.kind) {
    case FailureScenario::Kind::kNode:
      return {&s.id, 1};
    case FailureScenario::Kind::kCompound:
      return s.nodes;
    default:
      return {};
  }
}

}  // namespace dtr
