#include "routing/evaluator.h"

#include <stdexcept>

#include "cost/fortz.h"
#include "graph/spf.h"

namespace dtr {

Evaluator::Evaluator(const Graph& g, const ClassedTraffic& traffic, EvalParams params)
    : graph_(g), traffic_(traffic), params_(params) {
  if (traffic.delay.num_nodes() != g.num_nodes() ||
      traffic.throughput.num_nodes() != g.num_nodes())
    throw std::invalid_argument("Evaluator: traffic/graph size mismatch");

  // Uncapacitated min-hop reference (for Phi normalization in figures).
  const TrafficMatrix total = traffic_.combined();
  std::vector<int> hops;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    hop_distances_from(g, s, {}, hops);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t) continue;
      const double v = total.at(s, t);
      if (v > 0.0 && hops[t] > 0) phi_uncap_ += v * hops[t];
    }
  }
  delay_pairs_ = traffic_.delay.num_positive_demands();
}

EvalResult Evaluator::evaluate(const WeightSetting& w, const FailureScenario& scenario,
                               EvalDetail detail) const {
  if (w.num_links() != graph_.num_links())
    throw std::invalid_argument("Evaluator::evaluate: weight setting size mismatch");

  std::vector<std::uint8_t> mask;
  build_alive_mask(graph_, scenario, mask);
  const NodeId skip = skipped_node(scenario);

  std::vector<double> cost_delay, cost_tput;
  w.arc_costs(graph_, TrafficClass::kDelay, cost_delay);
  w.arc_costs(graph_, TrafficClass::kThroughput, cost_tput);

  const ClassRouting delay_routing(graph_, cost_delay, traffic_.delay, mask, skip);
  const ClassRouting tput_routing(graph_, cost_tput, traffic_.throughput, mask, skip);

  // Total load and per-arc delay (classes share FIFO queues: D_a depends on
  // the SUM of both classes' loads).
  const std::size_t num_arcs = graph_.num_arcs();
  std::vector<double> total_load(num_arcs);
  std::vector<double> arc_delay(num_arcs);
  for (ArcId a = 0; a < num_arcs; ++a) {
    total_load[a] = delay_routing.arc_load(a) + tput_routing.arc_load(a);
    const Arc& arc = graph_.arc(a);
    arc_delay[a] =
        link_delay_ms(total_load[a], arc.capacity, arc.prop_delay_ms, params_.delay_model);
  }

  EvalResult result;

  // Lambda: SLA cost over delay-class SD pairs.
  std::vector<double> sd_delay;
  delay_routing.end_to_end_delays(graph_, cost_delay, mask, arc_delay, traffic_.delay,
                                  params_.sla_delay_mode, skip, sd_delay);
  const double disconnect_delay =
      params_.sla.theta_ms + params_.disconnect_delay_excess_ms;
  for (double& d : sd_delay) {
    if (d < 0.0) continue;  // no demand
    if (d == kInfDist) d = disconnect_delay;  // unreachable: charged, capped
    result.lambda += sla_cost(d, params_.sla);
    if (sla_violated(d, params_.sla)) ++result.sla_violations;
  }
  result.disconnected_delay_pairs = delay_routing.disconnected_demand_count();

  // Phi: Fortz cost over links carrying throughput-sensitive traffic, applied
  // to total load; unroutable throughput demand charged at the max slope.
  for (ArcId a = 0; a < num_arcs; ++a) {
    if (tput_routing.arc_load(a) <= 0.0) continue;
    result.phi += fortz_cost(total_load[a], graph_.arc(a).capacity);
  }
  result.phi += kFortzMaxSlope * tput_routing.disconnected_demand_volume();
  result.disconnected_tput_pairs = tput_routing.disconnected_demand_count();

  if (detail == EvalDetail::kFull) {
    result.arc_total_load = std::move(total_load);
    result.arc_utilization.resize(num_arcs);
    result.carries_delay_traffic.resize(num_arcs);
    for (ArcId a = 0; a < num_arcs; ++a) {
      result.arc_utilization[a] = result.arc_total_load[a] / graph_.arc(a).capacity;
      result.carries_delay_traffic[a] = delay_routing.arc_load(a) > 0.0 ? 1 : 0;
    }
    result.sd_delay_ms = std::move(sd_delay);
  }
  return result;
}

SweepResult Evaluator::sweep(const WeightSetting& w,
                             std::span<const FailureScenario> scenarios,
                             const CostPair* abort_bound,
                             std::span<const double> scenario_weights) const {
  if (!scenario_weights.empty() && scenario_weights.size() != scenarios.size())
    throw std::invalid_argument("Evaluator::sweep: scenario_weights size mismatch");
  SweepResult sum;
  const LexicographicOrder order;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const double weight = scenario_weights.empty() ? 1.0 : scenario_weights[i];
    if (weight < 0.0) throw std::invalid_argument("Evaluator::sweep: negative weight");
    const EvalResult r = evaluate(w, scenarios[i], EvalDetail::kCostsOnly);
    sum.lambda += weight * r.lambda;
    sum.phi += weight * r.phi;
    ++sum.scenarios_evaluated;
    if (abort_bound != nullptr) {
      // Partial sums only grow, so once they are lexicographically worse than
      // the bound the final sums must be too.
      const bool lambda_worse =
          sum.lambda > abort_bound->lambda && !order.values_equal(sum.lambda, abort_bound->lambda);
      const bool phi_worse_at_equal_lambda =
          order.values_equal(sum.lambda, abort_bound->lambda) &&
          sum.phi > abort_bound->phi && !order.values_equal(sum.phi, abort_bound->phi);
      if (lambda_worse || phi_worse_at_equal_lambda) {
        sum.aborted = true;
        return sum;
      }
    }
  }
  return sum;
}

std::vector<EvalResult> Evaluator::sweep_detailed(
    const WeightSetting& w, std::span<const FailureScenario> scenarios,
    EvalDetail detail) const {
  std::vector<EvalResult> out;
  out.reserve(scenarios.size());
  for (const FailureScenario& s : scenarios) out.push_back(evaluate(w, s, detail));
  return out;
}

}  // namespace dtr
