#include "routing/evaluator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "cost/fortz.h"
#include "graph/spf.h"
#include "util/thread_pool.h"

namespace dtr {

struct Evaluator::IncrementalBase {
  ClassRouting delay;
  ClassRouting tput;
  RoutingBaseRecord delay_record;
  RoutingBaseRecord tput_record;
};

namespace {

/// Arc-removal scenarios patch cleanly from the no-failure base; node
/// failures also drop the node's demands, which the replay records don't
/// capture — those take the full path.
bool incremental_eligible(const FailureScenario& s) {
  return s.kind != FailureScenario::Kind::kNode;
}

}  // namespace

Evaluator::Evaluator(const Graph& g, const ClassedTraffic& traffic, EvalParams params,
                     EvaluatorConfig config)
    : graph_(g), traffic_(traffic), params_(params), config_(config) {
  if (traffic.delay.num_nodes() != g.num_nodes() ||
      traffic.throughput.num_nodes() != g.num_nodes())
    throw std::invalid_argument("Evaluator: traffic/graph size mismatch");

  // Uncapacitated min-hop reference (for Phi normalization in figures).
  const TrafficMatrix total = traffic_.combined();
  std::vector<int> hops;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    hop_distances_from(g, s, {}, hops);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t) continue;
      const double v = total.at(s, t);
      if (v > 0.0 && hops[t] > 0) phi_uncap_ += v * hops[t];
    }
  }
  delay_pairs_ = traffic_.delay.num_positive_demands();
}

Evaluator::Scratch& Evaluator::worker_scratch() {
  thread_local Scratch scratch;
  return scratch;
}

EvalResult Evaluator::evaluate(const WeightSetting& w, const FailureScenario& scenario,
                               EvalDetail detail) const {
  if (w.num_links() != graph_.num_links())
    throw std::invalid_argument("Evaluator::evaluate: weight setting size mismatch");

  Scratch& scratch = worker_scratch();
  w.arc_costs(graph_, TrafficClass::kDelay, scratch.cost_delay);
  w.arc_costs(graph_, TrafficClass::kThroughput, scratch.cost_tput);
  return evaluate_impl(scratch.cost_delay, scratch.cost_tput, scenario, detail, scratch);
}

bool Evaluator::prepare_incremental_base(std::span<const double> cost_delay,
                                         std::span<const double> cost_tput,
                                         std::span<const FailureScenario> scenarios,
                                         IncrementalBase& base) const {
  if (!config_.incremental) return false;
  // The base costs about one full routing to build; with fewer than two
  // eligible scenarios to patch from it, it cannot pay for itself. The
  // threshold depends only on the scenario list, so results stay independent
  // of the execution shape.
  const auto eligible =
      std::count_if(scenarios.begin(), scenarios.end(), incremental_eligible);
  if (eligible < 2) return false;
  base.delay.compute(graph_, cost_delay, traffic_.delay, {}, kInvalidNode,
                     &base.delay_record);
  base.tput.compute(graph_, cost_tput, traffic_.throughput, {}, kInvalidNode,
                    &base.tput_record);
  return true;
}

EvalResult Evaluator::evaluate_impl(std::span<const double> cost_delay,
                                    std::span<const double> cost_tput,
                                    const FailureScenario& scenario, EvalDetail detail,
                                    Scratch& s, const IncrementalBase* base) const {
  build_alive_mask(graph_, scenario, s.mask);
  const NodeId skip = skipped_node(scenario);

  if (base != nullptr && incremental_eligible(scenario)) {
    s.removed.clear();
    if (scenario.kind != FailureScenario::Kind::kNone) {
      for (ArcId a : graph_.link_arcs(scenario.id)) s.removed.push_back(a);
      if (scenario.kind == FailureScenario::Kind::kLinkPair)
        for (ArcId a : graph_.link_arcs(scenario.id2)) s.removed.push_back(a);
    }
    const double fraction = config_.incremental_max_affected_fraction;
    s.delay_routing.compute_from_base(graph_, cost_delay, traffic_.delay, base->delay,
                                      base->delay_record, s.removed, s.mask, fraction,
                                      s.failure);
    s.tput_routing.compute_from_base(graph_, cost_tput, traffic_.throughput, base->tput,
                                     base->tput_record, s.removed, s.mask, fraction,
                                     s.failure);
  } else {
    s.delay_routing.compute(graph_, cost_delay, traffic_.delay, s.mask, skip);
    s.tput_routing.compute(graph_, cost_tput, traffic_.throughput, s.mask, skip);
  }
  const ClassRouting& delay_routing = s.delay_routing;
  const ClassRouting& tput_routing = s.tput_routing;

  // Total load and per-arc delay (classes share FIFO queues: D_a depends on
  // the SUM of both classes' loads).
  const std::size_t num_arcs = graph_.num_arcs();
  s.total_load.resize(num_arcs);
  s.arc_delay.resize(num_arcs);
  std::vector<double>& total_load = s.total_load;
  std::vector<double>& arc_delay = s.arc_delay;
  for (ArcId a = 0; a < num_arcs; ++a) {
    total_load[a] = delay_routing.arc_load(a) + tput_routing.arc_load(a);
    const Arc& arc = graph_.arc(a);
    arc_delay[a] =
        link_delay_ms(total_load[a], arc.capacity, arc.prop_delay_ms, params_.delay_model);
  }

  EvalResult result;

  // Lambda: SLA cost over delay-class SD pairs.
  std::vector<double>& sd_delay = s.sd_delay;
  delay_routing.end_to_end_delays(graph_, cost_delay, s.mask, arc_delay, traffic_.delay,
                                  params_.sla_delay_mode, skip, sd_delay);
  const double disconnect_delay =
      params_.sla.theta_ms + params_.disconnect_delay_excess_ms;
  for (double& d : sd_delay) {
    if (d < 0.0) continue;  // no demand
    if (d == kInfDist) d = disconnect_delay;  // unreachable: charged, capped
    result.lambda += sla_cost(d, params_.sla);
    if (sla_violated(d, params_.sla)) ++result.sla_violations;
  }
  result.disconnected_delay_pairs = delay_routing.disconnected_demand_count();

  // Phi: Fortz cost over links carrying throughput-sensitive traffic, applied
  // to total load; unroutable throughput demand charged at the max slope.
  for (ArcId a = 0; a < num_arcs; ++a) {
    if (tput_routing.arc_load(a) <= 0.0) continue;
    result.phi += fortz_cost(total_load[a], graph_.arc(a).capacity);
  }
  result.phi += kFortzMaxSlope * tput_routing.disconnected_demand_volume();
  result.disconnected_tput_pairs = tput_routing.disconnected_demand_count();

  if (detail == EvalDetail::kFull) {
    result.arc_total_load = total_load;
    result.arc_utilization.resize(num_arcs);
    result.carries_delay_traffic.resize(num_arcs);
    for (ArcId a = 0; a < num_arcs; ++a) {
      result.arc_utilization[a] = result.arc_total_load[a] / graph_.arc(a).capacity;
      result.carries_delay_traffic[a] = delay_routing.arc_load(a) > 0.0 ? 1 : 0;
    }
    result.sd_delay_ms = sd_delay;
  }
  return result;
}

std::vector<EvalResult> Evaluator::evaluate_failures(
    const WeightSetting& w, std::span<const FailureScenario> scenarios, ThreadPool* pool,
    EvalDetail detail) const {
  if (w.num_links() != graph_.num_links())
    throw std::invalid_argument("Evaluator::evaluate_failures: weight setting size mismatch");

  // Arc costs depend only on the weights: expand once, share across scenarios.
  std::vector<double> cost_delay, cost_tput;
  w.arc_costs(graph_, TrafficClass::kDelay, cost_delay);
  w.arc_costs(graph_, TrafficClass::kThroughput, cost_tput);

  IncrementalBase base;
  const IncrementalBase* base_ptr =
      prepare_incremental_base(cost_delay, cost_tput, scenarios, base) ? &base : nullptr;

  std::vector<EvalResult> out(scenarios.size());
  parallel_for(pool, scenarios.size(), [&](std::size_t, std::size_t i) {
    out[i] = evaluate_impl(cost_delay, cost_tput, scenarios[i], detail, worker_scratch(),
                           base_ptr);
  });
  return out;
}

std::vector<CostPair> Evaluator::evaluate_costs(std::span<const EvalJob> jobs,
                                                ThreadPool* pool) const {
  for (const EvalJob& job : jobs) {
    if (job.weights == nullptr || job.weights->num_links() != graph_.num_links())
      throw std::invalid_argument("Evaluator::evaluate_costs: bad job weights");
  }
  std::vector<CostPair> out(jobs.size());
  parallel_for(pool, jobs.size(), [&](std::size_t, std::size_t i) {
    Scratch& s = worker_scratch();
    jobs[i].weights->arc_costs(graph_, TrafficClass::kDelay, s.cost_delay);
    jobs[i].weights->arc_costs(graph_, TrafficClass::kThroughput, s.cost_tput);
    out[i] = evaluate_impl(s.cost_delay, s.cost_tput, jobs[i].scenario,
                           EvalDetail::kCostsOnly, s)
                 .cost();
  });
  return out;
}

SweepResult Evaluator::sweep(const WeightSetting& w,
                             std::span<const FailureScenario> scenarios,
                             const CostPair* abort_bound,
                             std::span<const double> scenario_weights,
                             ThreadPool* pool, std::size_t chunk_size) const {
  if (!scenario_weights.empty() && scenario_weights.size() != scenarios.size())
    throw std::invalid_argument("Evaluator::sweep: scenario_weights size mismatch");

  SweepResult sum;
  const LexicographicOrder order;

  // Accumulates scenario i's (already weighted) costs in order and applies
  // the abort bound; returns true to stop. Shared by both paths so the
  // parallel sweep is term-for-term identical to the sequential one.
  auto accumulate = [&](double lambda, double phi) -> bool {
    sum.lambda += lambda;
    sum.phi += phi;
    ++sum.scenarios_evaluated;
    if (abort_bound != nullptr) {
      // Partial sums only grow, so once they are lexicographically worse than
      // the bound the final sums must be too.
      const bool lambda_worse =
          sum.lambda > abort_bound->lambda && !order.values_equal(sum.lambda, abort_bound->lambda);
      const bool phi_worse_at_equal_lambda =
          order.values_equal(sum.lambda, abort_bound->lambda) &&
          sum.phi > abort_bound->phi && !order.values_equal(sum.phi, abort_bound->phi);
      if (lambda_worse || phi_worse_at_equal_lambda) {
        sum.aborted = true;
        return true;
      }
    }
    return false;
  };

  if (w.num_links() != graph_.num_links())
    throw std::invalid_argument("Evaluator::sweep: weight setting size mismatch");

  // Arc costs depend only on the weights: expand once, share across the sweep.
  std::vector<double> cost_delay, cost_tput;
  w.arc_costs(graph_, TrafficClass::kDelay, cost_delay);
  w.arc_costs(graph_, TrafficClass::kThroughput, cost_tput);

  IncrementalBase base;
  const IncrementalBase* base_ptr =
      prepare_incremental_base(cost_delay, cost_tput, scenarios, base) ? &base : nullptr;

  if (pool == nullptr || pool->num_workers() <= 1 || scenarios.size() <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const double weight = scenario_weights.empty() ? 1.0 : scenario_weights[i];
      if (weight < 0.0) throw std::invalid_argument("Evaluator::sweep: negative weight");
      const CostPair r = evaluate_impl(cost_delay, cost_tput, scenarios[i],
                                       EvalDetail::kCostsOnly, worker_scratch(), base_ptr)
                             .cost();
      if (accumulate(weight * r.lambda, weight * r.phi)) return sum;
    }
    return sum;
  }

  const std::size_t workers = pool->num_workers();
  const std::size_t round = workers * std::max<std::size_t>(1, chunk_size);
  std::vector<CostPair> chunk(round);
  for (std::size_t begin = 0; begin < scenarios.size(); begin += round) {
    const std::size_t count = std::min(round, scenarios.size() - begin);
    parallel_for(pool, count, [&](std::size_t, std::size_t i) {
      chunk[i] = evaluate_impl(cost_delay, cost_tput, scenarios[begin + i],
                               EvalDetail::kCostsOnly, worker_scratch(), base_ptr)
                     .cost();
    });
    for (std::size_t i = 0; i < count; ++i) {
      // Validated here, not upfront, so an invalid weight past an abort point
      // behaves exactly like the sequential path (abort wins over throw).
      const double weight = scenario_weights.empty() ? 1.0 : scenario_weights[begin + i];
      if (weight < 0.0) throw std::invalid_argument("Evaluator::sweep: negative weight");
      if (accumulate(weight * chunk[i].lambda, weight * chunk[i].phi)) return sum;
    }
  }
  return sum;
}

std::vector<EvalResult> Evaluator::sweep_detailed(
    const WeightSetting& w, std::span<const FailureScenario> scenarios,
    EvalDetail detail, ThreadPool* pool) const {
  return evaluate_failures(w, scenarios, pool, detail);
}

}  // namespace dtr
