#include "routing/evaluator.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "cost/fortz.h"
#include "graph/spf.h"
#include "telemetry/telemetry.h"
#include "util/thread_pool.h"

namespace dtr {

void EvalStats::merge(const EvalStats& o) {
  scenarios_patched += o.scenarios_patched;
  scenarios_full += o.scenarios_full;
  scenarios_served_none += o.scenarios_served_none;
  patch.merge(o.patch);
}

struct Evaluator::IncrementalBase {
  ClassRouting delay;
  ClassRouting tput;

  /// Patch-only machinery, lazily materialized (ensure_patch_records) on the
  /// first call that patches a failure from this record: Phase-1 probes
  /// build bases that are usually evicted unused, so they skip the recording
  /// cost. `records_once` guards the upgrade — cached bases are shared
  /// across speculative-evaluation threads; readers either ran the call_once
  /// themselves or the flags were set before the base was published, so the
  /// plain bools need no atomics.
  mutable std::once_flag records_once;
  mutable bool has_records = false;
  mutable bool has_dp_index = false;
  mutable RoutingBaseRecord delay_record;
  mutable RoutingBaseRecord tput_record;
  mutable DelayDpIndex dp_index;

  /// No-failure products, filled when with_delay_base (see build_base):
  /// `sd_delay` holds the POST-aggregation values (disconnected pairs capped
  /// at the disconnect charge), so a replayed column matches what the full
  /// path's aggregation would leave in place bit for bit.
  bool has_delay_base = false;
  std::vector<double> total_load;
  std::vector<double> arc_delay;
  std::vector<double> sd_delay;
  EvalResult none_result;  ///< costs-only fields of the no-failure evaluation
};

namespace {

/// Number of links on which two same-sized weight settings differ in EITHER
/// class — the donor-distance metric of the weight-delta patch path.
std::size_t differing_links(const WeightSetting& a, const WeightSetting& b) {
  std::size_t diff = 0;
  for (LinkId l = 0; l < a.num_links(); ++l) {
    for (TrafficClass c : kBothClasses) {
      if (a.get(c, l) != b.get(c, l)) {
        ++diff;
        break;
      }
    }
  }
  return diff;
}

}  // namespace

/// Weights-keyed LRU cache of base records. A handful of entries scanned
/// linearly under a mutex: lookups happen once per evaluation (not per
/// scenario), and the key compare on vector<int> fails fast, so contention
/// and scan cost are noise next to a single Dijkstra.
class Evaluator::BaseCache {
 public:
  explicit BaseCache(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {}

  std::shared_ptr<const IncrementalBase> find(const WeightSetting& w) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (Entry& e : entries_) {
      if (e.key == w) {
        e.last_used = ++tick_;
        ++stats_.hits;
        return e.base;
      }
    }
    ++stats_.misses;
    return nullptr;
  }

  void insert(const WeightSetting& w, std::shared_ptr<const IncrementalBase> base) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (Entry& e : entries_) {
      if (e.key == w) {
        // Another thread built the same base concurrently; both are pure
        // functions of w, so either copy serves identically.
        e.base = std::move(base);
        e.last_used = ++tick_;
        return;
      }
    }
    ++stats_.insertions;
    if (entries_.size() >= capacity_) {
      auto victim = std::min_element(
          entries_.begin(), entries_.end(),
          [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
      ++stats_.evictions;
      *victim = Entry{w, std::move(base), ++tick_};
    } else {
      entries_.push_back(Entry{w, std::move(base), ++tick_});
    }
  }

  /// Closest cached base within `max_links` differing links of `w` (ties
  /// broken toward the most recently used entry), or nullopt. Returns a COPY
  /// of the donor's key alongside the record — the entry may be evicted the
  /// moment the lock drops. Never counts a hit or miss: donor probes always
  /// follow a failed find(), which already counted the miss.
  std::optional<std::pair<WeightSetting, std::shared_ptr<const IncrementalBase>>>
  find_donor(const WeightSetting& w, std::size_t max_links) {
    const std::lock_guard<std::mutex> lock(mu_);
    const Entry* best = nullptr;
    std::size_t best_diff = max_links + 1;
    for (const Entry& e : entries_) {
      if (e.key.num_links() != w.num_links()) continue;
      const std::size_t diff = differing_links(e.key, w);
      if (diff == 0 || diff > max_links) continue;
      if (diff < best_diff || (diff == best_diff && e.last_used > best->last_used)) {
        best = &e;
        best_diff = diff;
      }
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(best->key, best->base);
  }

  void note_weight_patch(std::uint64_t arcs) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.weight_patched;
    stats_.arcs_updated += arcs;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

  EvaluatorCacheStats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    WeightSetting key;
    std::shared_ptr<const IncrementalBase> base;
    std::uint64_t last_used = 0;
  };

  mutable std::mutex mu_;
  const std::size_t capacity_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  EvaluatorCacheStats stats_;
};

namespace {

/// Arc-removal scenarios patch cleanly from the no-failure base; scenarios
/// that fail nodes (kNode, compound with nodes) also drop those nodes'
/// demands, which the replay records don't capture — those take the full
/// path.
bool incremental_eligible(const FailureScenario& s) {
  return skipped_nodes(s).empty();
}

/// Scenarios the base actually accelerates beyond a plain no-failure replay:
/// arc removals — single links, link pairs, and links-only compound
/// scenarios — that patch instead of recompute.
bool incremental_patchable(const FailureScenario& s) {
  switch (s.kind) {
    case FailureScenario::Kind::kLink:
    case FailureScenario::Kind::kLinkPair:
      return true;
    case FailureScenario::Kind::kCompound:
      return s.nodes.empty() && !s.links.empty();
    default:
      return false;
  }
}

/// Folds one batch call's merged deterministic stats into the registry. The
/// caller merged per-slot stats in index order on its own thread, so the
/// values (and therefore the registered names) are shape-independent.
void publish_eval_stats(telemetry::Registry& reg, const EvalStats& agg) {
  reg.counter("eval.patched").add(agg.scenarios_patched);
  reg.counter("eval.full").add(agg.scenarios_full);
  reg.counter("eval.served_none").add(agg.scenarios_served_none);
  const PatchStats& p = agg.patch;
  reg.counter("spf.dests_delta").add(p.dests_delta);
  reg.counter("spf.dests_full_fallback").add(p.dests_full_fallback);
  reg.counter("spf.affected_nodes").add(p.affected_nodes);
  reg.counter("spf.boundary_seeds").add(p.boundary_seeds);
  reg.counter("load.dests_replayed").add(p.dests_replayed);
  reg.counter("load.dests_resweep").add(p.dests_resweep);
  reg.counter("delay.cols_replayed").add(p.delay_cols_replayed);
  reg.counter("delay.cols_recomputed").add(p.delay_cols_recomputed);
  reg.histogram("spf.affected_region", kAffectedBucketBounds)
      .merge_buckets(p.affected_buckets, p.dests_delta, p.affected_nodes);
}

}  // namespace

Evaluator::Evaluator(const Graph& g, const ClassedTraffic& traffic, EvalParams params,
                     EvaluatorConfig config)
    : graph_(g), traffic_(traffic), params_(params), config_(config) {
  if (traffic.delay.num_nodes() != g.num_nodes() ||
      traffic.throughput.num_nodes() != g.num_nodes())
    throw std::invalid_argument("Evaluator: traffic/graph size mismatch");

  // Uncapacitated min-hop reference (for Phi normalization in figures).
  const TrafficMatrix total = traffic_.combined();
  std::vector<int> hops;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    hop_distances_from(g, s, {}, hops);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t) continue;
      const double v = total.at(s, t);
      if (v > 0.0 && hops[t] > 0) phi_uncap_ += v * hops[t];
    }
  }
  delay_pairs_ = traffic_.delay.num_positive_demands();

  if (config_.incremental && config_.base_routing_cache)
    cache_ = std::make_unique<BaseCache>(config_.base_cache_capacity);
}

Evaluator::~Evaluator() = default;

EvaluatorCacheStats Evaluator::base_cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : EvaluatorCacheStats{};
}

std::size_t Evaluator::base_cache_size() const {
  return cache_ != nullptr ? cache_->size() : 0;
}

void Evaluator::invalidate_base_cache() const {
  if (cache_ != nullptr) cache_->clear();
}

void Evaluator::flush_cache_stats_to_telemetry() const {
  telemetry::Registry* reg = telemetry::effective(config_.telemetry);
  if (reg == nullptr || cache_ == nullptr) return;
  const EvaluatorCacheStats s = cache_->stats();
  reg->counter("evaluator.base_cache.hits", telemetry::Plane::kProcess).add(s.hits);
  reg->counter("evaluator.base_cache.misses", telemetry::Plane::kProcess).add(s.misses);
  reg->counter("evaluator.base_cache.insertions", telemetry::Plane::kProcess)
      .add(s.insertions);
  reg->counter("evaluator.base_cache.evictions", telemetry::Plane::kProcess)
      .add(s.evictions);
  // Weight-delta donor patches: how many misses were served by patching a
  // near-neighbor base, and how many arc-cost changes those patches applied.
  // Donor availability depends on cache state (shape-dependent), so these
  // live on the process plane like every cache counter.
  reg->counter("eval.weight_patched", telemetry::Plane::kProcess).add(s.weight_patched);
  reg->counter("spf.arcs_updated", telemetry::Plane::kProcess).add(s.arcs_updated);
}

Evaluator::Scratch& Evaluator::worker_scratch() {
  thread_local Scratch scratch;
  return scratch;
}

EvalResult Evaluator::evaluate(const WeightSetting& w, const FailureScenario& scenario,
                               EvalDetail detail) const {
  if (w.num_links() != graph_.num_links())
    throw std::invalid_argument("Evaluator::evaluate: weight setting size mismatch");

  Scratch& scratch = worker_scratch();
  w.arc_costs(graph_, TrafficClass::kDelay, scratch.cost_delay);
  w.arc_costs(graph_, TrafficClass::kThroughput, scratch.cost_tput);

  // With the cache on, a single evaluation is worth a base record: the
  // optimizer's pattern is evaluate(w) followed by sweeps / failure
  // evaluations of the SAME weights, so the record built here is the one
  // those calls reuse (and a failure evaluation that finds the record
  // patches instead of recomputing).
  std::shared_ptr<const IncrementalBase> base;
  if (cache_ != nullptr && incremental_eligible(scenario))
    base = acquire_base(w, scratch.cost_delay, scratch.cost_tput, 1,
                        incremental_patchable(scenario) ? 1 : 0);
  return evaluate_impl(scratch.cost_delay, scratch.cost_tput, scenario, detail, scratch,
                       base.get());
}

void Evaluator::build_base(std::span<const double> cost_delay,
                           std::span<const double> cost_tput, IncrementalBase& base,
                           bool with_delay_base, bool with_records) const {
  base.delay.compute(graph_, cost_delay, traffic_.delay, {}, {},
                     with_records ? &base.delay_record : nullptr);
  base.tput.compute(graph_, cost_tput, traffic_.throughput, {}, {},
                    with_records ? &base.tput_record : nullptr);
  if (with_records) {
    // Mark the once_flag spent so ensure_patch_records never re-records a
    // base that was built eagerly. Runs before the base is published, so the
    // plain flag writes need no further synchronization.
    std::call_once(base.records_once, [] {});
    base.has_records = true;
  }
  if (!with_delay_base) return;

  compute_base_products(base);

  DelayDpIndex* record =
      with_records && config_.incremental_delay ? &base.dp_index : nullptr;
  base.delay.end_to_end_delays(graph_, cost_delay, {}, base.arc_delay, traffic_.delay,
                               params_.sla_delay_mode, {}, base.sd_delay, record);
  base.has_dp_index = record != nullptr;

  aggregate_none_result(base);
  base.has_delay_base = true;
}

void Evaluator::compute_base_products(IncrementalBase& base) const {
  const GraphCsr& csr = graph_.csr();
  const std::size_t num_arcs = graph_.num_arcs();
  base.total_load.resize(num_arcs);
  base.arc_delay.resize(num_arcs);
  for (ArcId a = 0; a < num_arcs; ++a) {
    base.total_load[a] = base.delay.arc_load(a) + base.tput.arc_load(a);
    base.arc_delay[a] = link_delay_ms(base.total_load[a], csr.capacity[a],
                                      csr.prop_delay_ms[a], params_.delay_model);
  }
}

// The same aggregation the full path runs, so a served no-failure result is
// bit-identical to a computed one.
void Evaluator::aggregate_none_result(IncrementalBase& base) const {
  EvalResult& none = base.none_result;
  none = EvalResult{};
  const double disconnect_delay =
      params_.sla.theta_ms + params_.disconnect_delay_excess_ms;
  const SlaAggregate sla = accumulate_sla_cost(base.sd_delay, params_.sla,
                                               disconnect_delay);
  none.lambda = sla.lambda;
  none.sla_violations = sla.violations;
  none.disconnected_delay_pairs = base.delay.disconnected_demand_count();
  const GraphCsr& csr = graph_.csr();
  const std::size_t num_arcs = graph_.num_arcs();
  for (ArcId a = 0; a < num_arcs; ++a) {
    if (base.tput.arc_load(a) <= 0.0) continue;
    none.phi += fortz_cost(base.total_load[a], csr.capacity[a]);
  }
  none.phi += kFortzMaxSlope * base.tput.disconnected_demand_volume();
  none.disconnected_tput_pairs = base.tput.disconnected_demand_count();
}

bool Evaluator::build_base_from_donor(const WeightSetting& w,
                                      const WeightSetting& donor_key,
                                      const IncrementalBase& donor,
                                      std::span<const double> cost_delay,
                                      std::span<const double> cost_tput,
                                      IncrementalBase& built) const {
  if (!donor.has_delay_base) return false;

  std::vector<double> donor_cost_delay, donor_cost_tput;
  donor_key.arc_costs(graph_, TrafficClass::kDelay, donor_cost_delay);
  donor_key.arc_costs(graph_, TrafficClass::kThroughput, donor_cost_tput);
  // The donor's replay records (and delay-DP index) materialize on first use
  // with the DONOR's own costs — exactly what its first failure patch would
  // have recorded.
  ensure_patch_records(donor_cost_delay, donor_cost_tput, donor);

  // Per-class arc-cost change lists: only the differing links' arcs, carrying
  // the donor's (old) cost. A class with identical weights gets an empty list
  // and replays the donor's routing wholesale.
  std::vector<ArcCostDelta> delay_changes, tput_changes;
  for (LinkId l = 0; l < graph_.num_links(); ++l) {
    if (w.get(TrafficClass::kDelay, l) != donor_key.get(TrafficClass::kDelay, l))
      for (ArcId a : graph_.link_arcs(l))
        delay_changes.push_back({a, donor_cost_delay[a]});
    if (w.get(TrafficClass::kThroughput, l) != donor_key.get(TrafficClass::kThroughput, l))
      for (ArcId a : graph_.link_arcs(l))
        tput_changes.push_back({a, donor_cost_tput[a]});
  }

  FailureScratch scratch;
  built.delay.compute_from_weight_delta(graph_, cost_delay, traffic_.delay, donor.delay,
                                        donor.delay_record, delay_changes,
                                        config_.incremental_max_affected_fraction,
                                        scratch);
  built.tput.compute_from_weight_delta(graph_, cost_tput, traffic_.throughput,
                                       donor.tput, donor.tput_record, tput_changes,
                                       config_.incremental_max_affected_fraction,
                                       scratch);

  compute_base_products(built);

  // Delay columns: replay the donor's for destinations whose DAG and read
  // arc-delays are bitwise unchanged, run the DP for the rest — the same
  // incremental-delay machinery the failure patch path rides.
  if (config_.incremental_delay && donor.has_dp_index) {
    built.delay.end_to_end_delays_from_base(
        graph_, cost_delay, {}, built.arc_delay, traffic_.delay, params_.sla_delay_mode,
        donor.arc_delay, donor.sd_delay, donor.dp_index, scratch, built.sd_delay);
  } else {
    built.delay.end_to_end_delays(graph_, cost_delay, {}, built.arc_delay,
                                  traffic_.delay, params_.sla_delay_mode, {},
                                  built.sd_delay);
  }
  aggregate_none_result(built);
  built.has_delay_base = true;
  // Records of the NEW base stay lazy (ensure_patch_records), like any cached
  // scratch build.
  cache_->note_weight_patch(delay_changes.size() + tput_changes.size());
  return true;
}

void Evaluator::ensure_patch_records(std::span<const double> cost_delay,
                                     std::span<const double> cost_tput,
                                     const IncrementalBase& base) const {
  std::call_once(base.records_once, [&] {
    // Replay the load sweeps over the base's EXISTING distance labels (no
    // Dijkstra) to capture the per-destination replay slices, and the delay
    // DP (which also reads only existing labels) to capture the dirty-arc
    // index: same labels, same float ops, so the recorded values are exactly
    // what an eager build would have recorded.
    base.delay.record_contributions(graph_, cost_delay, traffic_.delay, {}, {},
                                    base.delay_record);
    base.tput.record_contributions(graph_, cost_tput, traffic_.throughput, {}, {},
                                   base.tput_record);
    if (config_.incremental_delay && base.has_delay_base) {
      std::vector<double> sd_scratch;
      base.delay.end_to_end_delays(graph_, cost_delay, {}, base.arc_delay,
                                   traffic_.delay, params_.sla_delay_mode, {},
                                   sd_scratch, &base.dp_index);
      base.has_dp_index = true;
    }
    base.has_records = true;
  });
}

std::shared_ptr<const Evaluator::IncrementalBase> Evaluator::acquire_base(
    const WeightSetting& w, std::span<const double> cost_delay,
    std::span<const double> cost_tput, std::size_t eligible_scenarios,
    std::size_t patchable_scenarios) const {
  std::shared_ptr<const IncrementalBase> base;
  if (!config_.incremental) return base;
  if (cache_ != nullptr) {
    base = cache_->find(w);
    if (base == nullptr) {
      if (eligible_scenarios < 1) return base;
      auto built = std::make_shared<IncrementalBase>();
      // A cached record always carries the delay base (serving no-failure
      // evaluations from it is half the point of caching) but defers the
      // patch records to first reuse — most cached bases are Phase-1 probes
      // that are evicted without ever patching a failure. When a near
      // neighbor is cached (a probe differing from the incumbent on one
      // link), the build itself is delta-patched from it.
      bool from_donor = false;
      if (config_.weight_delta_max_links > 0) {
        if (auto donor = cache_->find_donor(w, config_.weight_delta_max_links))
          from_donor = build_base_from_donor(w, donor->first, *donor->second,
                                             cost_delay, cost_tput, *built);
      }
      if (!from_donor)
        build_base(cost_delay, cost_tput, *built, /*with_delay_base=*/true,
                   /*with_records=*/false);
      cache_->insert(w, built);
      base = std::move(built);
    }
  } else {
    // Uncached: the base costs about one full routing to build; with fewer
    // than two eligible scenarios it cannot pay for itself. The threshold
    // depends only on the scenario list, so results stay independent of the
    // execution shape. Records are built inline — an uncached base is
    // always consumed by the very call that built it.
    if (eligible_scenarios < 2) return base;
    auto built = std::make_shared<IncrementalBase>();
    build_base(cost_delay, cost_tput, *built, config_.incremental_delay,
               /*with_records=*/true);
    base = std::move(built);
  }
  if (patchable_scenarios > 0) ensure_patch_records(cost_delay, cost_tput, *base);
  return base;
}

EvalResult Evaluator::serve_none_from_base(const IncrementalBase& base,
                                           EvalDetail detail) const {
  EvalResult result = base.none_result;
  if (detail == EvalDetail::kFull) {
    const GraphCsr& csr = graph_.csr();
    const std::size_t num_arcs = graph_.num_arcs();
    result.arc_total_load = base.total_load;
    result.arc_utilization.resize(num_arcs);
    result.carries_delay_traffic.resize(num_arcs);
    for (ArcId a = 0; a < num_arcs; ++a) {
      result.arc_utilization[a] = result.arc_total_load[a] / csr.capacity[a];
      result.carries_delay_traffic[a] = base.delay.arc_load(a) > 0.0 ? 1 : 0;
    }
    result.sd_delay_ms = base.sd_delay;
  }
  return result;
}

EvalResult Evaluator::evaluate_impl(std::span<const double> cost_delay,
                                    std::span<const double> cost_tput,
                                    const FailureScenario& scenario, EvalDetail detail,
                                    Scratch& s, const IncrementalBase* base,
                                    EvalStats* stats) const {
  build_alive_mask(graph_, scenario, s.mask);
  const std::span<const NodeId> skip = skipped_nodes(scenario);

  // The shared scratch accumulates patch stats across this scenario's load +
  // delay passes; reset here so the harvest below sees this scenario only.
  if (stats != nullptr) s.failure.reset_stats();

  bool patched = false;
  if (base != nullptr && incremental_eligible(scenario)) {
    if (scenario.kind == FailureScenario::Kind::kNone && base->has_delay_base) {
      if (stats != nullptr) ++stats->scenarios_served_none;
      return serve_none_from_base(*base, detail);
    }
    if (incremental_patchable(scenario) && base->has_records) {
      // One compound representation internally: every patchable kind —
      // kLink, kLinkPair, kCompound — collects its dead arcs through the
      // same element dispatch and rides the same multi-arc delta update.
      s.removed.clear();
      for_each_failed_arc(graph_, scenario, [&](ArcId a) { s.removed.push_back(a); });
      const double fraction = config_.incremental_max_affected_fraction;
      s.delay_routing.compute_from_base(graph_, cost_delay, traffic_.delay, base->delay,
                                        base->delay_record, s.removed, s.mask, fraction,
                                        s.failure);
      s.tput_routing.compute_from_base(graph_, cost_tput, traffic_.throughput,
                                       base->tput, base->tput_record, s.removed, s.mask,
                                       fraction, s.failure);
      patched = true;
    }
  }
  if (!patched) {
    s.delay_routing.compute(graph_, cost_delay, traffic_.delay, s.mask, skip);
    s.tput_routing.compute(graph_, cost_tput, traffic_.throughput, s.mask, skip);
  }

  EvalResult result = finish_scenario(cost_delay, skip, detail, s, patched, base);
  if (stats != nullptr) {
    if (patched) {
      ++stats->scenarios_patched;
      stats->patch.merge(s.failure.stats());
    } else {
      ++stats->scenarios_full;
    }
  }
  return result;
}

EvalResult Evaluator::finish_scenario(std::span<const double> cost_delay,
                                      std::span<const NodeId> skip, EvalDetail detail,
                                      Scratch& s, bool patched,
                                      const IncrementalBase* base) const {
  const ClassRouting& delay_routing = s.delay_routing;
  const ClassRouting& tput_routing = s.tput_routing;

  // Total load and per-arc delay (classes share FIFO queues: D_a depends on
  // the SUM of both classes' loads).
  const GraphCsr& csr = graph_.csr();
  const std::size_t num_arcs = graph_.num_arcs();
  s.total_load.resize(num_arcs);
  s.arc_delay.resize(num_arcs);
  std::vector<double>& total_load = s.total_load;
  std::vector<double>& arc_delay = s.arc_delay;
  for (ArcId a = 0; a < num_arcs; ++a) {
    total_load[a] = delay_routing.arc_load(a) + tput_routing.arc_load(a);
    arc_delay[a] = link_delay_ms(total_load[a], csr.capacity[a], csr.prop_delay_ms[a],
                                 params_.delay_model);
  }

  EvalResult result;

  // Lambda: SLA cost over delay-class SD pairs. A patched routing with a
  // delay-DP base skips the DP for destinations whose recorded inputs are
  // bitwise unchanged (same float terms, same order as the full DP).
  std::vector<double>& sd_delay = s.sd_delay;
  if (patched && base->has_dp_index) {
    delay_routing.end_to_end_delays_from_base(
        graph_, cost_delay, s.mask, arc_delay, traffic_.delay, params_.sla_delay_mode,
        base->arc_delay, base->sd_delay, base->dp_index, s.failure, sd_delay);
  } else {
    delay_routing.end_to_end_delays(graph_, cost_delay, s.mask, arc_delay,
                                    traffic_.delay, params_.sla_delay_mode, skip,
                                    sd_delay);
  }
  const double disconnect_delay =
      params_.sla.theta_ms + params_.disconnect_delay_excess_ms;
  const SlaAggregate sla = accumulate_sla_cost(sd_delay, params_.sla, disconnect_delay);
  result.lambda = sla.lambda;
  result.sla_violations = sla.violations;
  result.disconnected_delay_pairs = delay_routing.disconnected_demand_count();

  // Phi: Fortz cost over links carrying throughput-sensitive traffic, applied
  // to total load; unroutable throughput demand charged at the max slope.
  for (ArcId a = 0; a < num_arcs; ++a) {
    if (tput_routing.arc_load(a) <= 0.0) continue;
    result.phi += fortz_cost(total_load[a], csr.capacity[a]);
  }
  result.phi += kFortzMaxSlope * tput_routing.disconnected_demand_volume();
  result.disconnected_tput_pairs = tput_routing.disconnected_demand_count();

  if (detail == EvalDetail::kFull) {
    result.arc_total_load = total_load;
    result.arc_utilization.resize(num_arcs);
    result.carries_delay_traffic.resize(num_arcs);
    for (ArcId a = 0; a < num_arcs; ++a) {
      result.arc_utilization[a] = result.arc_total_load[a] / csr.capacity[a];
      result.carries_delay_traffic[a] = delay_routing.arc_load(a) > 0.0 ? 1 : 0;
    }
    result.sd_delay_ms = sd_delay;
  }
  return result;
}

EvalResult Evaluator::evaluate_with_labels(const WeightSetting& w,
                                           const FailureScenario& scenario,
                                           const SharedScenarioLabels& labels,
                                           EvalDetail detail) const {
  if (w.num_links() != graph_.num_links())
    throw std::invalid_argument(
        "Evaluator::evaluate_with_labels: weight setting size mismatch");
  if (!skipped_nodes(scenario).empty())
    throw std::invalid_argument(
        "Evaluator::evaluate_with_labels: node-failure scenarios unsupported");

  Scratch& s = worker_scratch();
  w.arc_costs(graph_, TrafficClass::kDelay, s.cost_delay);
  w.arc_costs(graph_, TrafficClass::kThroughput, s.cost_tput);
  build_alive_mask(graph_, scenario, s.mask);
  s.delay_routing.compute_with_labels(graph_, s.cost_delay, traffic_.delay, s.mask,
                                      labels.delay);
  s.tput_routing.compute_with_labels(graph_, s.cost_tput, traffic_.throughput, s.mask,
                                     labels.tput);
  return finish_scenario(s.cost_delay, {}, detail, s, /*patched=*/false, nullptr);
}

std::vector<EvalResult> Evaluator::evaluate_failures(
    const WeightSetting& w, std::span<const FailureScenario> scenarios, ThreadPool* pool,
    EvalDetail detail) const {
  if (w.num_links() != graph_.num_links())
    throw std::invalid_argument("Evaluator::evaluate_failures: weight setting size mismatch");

  // Arc costs depend only on the weights: expand once, share across scenarios.
  std::vector<double> cost_delay, cost_tput;
  w.arc_costs(graph_, TrafficClass::kDelay, cost_delay);
  w.arc_costs(graph_, TrafficClass::kThroughput, cost_tput);

  const auto eligible =
      std::count_if(scenarios.begin(), scenarios.end(), incremental_eligible);
  const auto patchable =
      std::count_if(scenarios.begin(), scenarios.end(), incremental_patchable);
  const std::shared_ptr<const IncrementalBase> base =
      acquire_base(w, cost_delay, cost_tput, static_cast<std::size_t>(eligible),
                   static_cast<std::size_t>(patchable));
  const IncrementalBase* base_ptr = base.get();

  // Per-index stats slabs mirror the per-index result slots: each scenario's
  // deterministic counters land in their own slot and are merged on the
  // calling thread, so the published totals are shape-independent.
  telemetry::Registry* reg = telemetry::effective(config_.telemetry);
  std::vector<EvalStats> slabs(reg != nullptr ? scenarios.size() : 0);

  // Size-aware split: ISP-tier all-link catalogs cluster expensive backbone
  // scenarios at the front, so large sweeps use cyclic blocks (see
  // sweep_chunk_size) instead of the contiguous per-worker split.
  std::vector<EvalResult> out(scenarios.size());
  parallel_for(
      pool, scenarios.size(),
      [&](std::size_t, std::size_t i) {
        out[i] = evaluate_impl(cost_delay, cost_tput, scenarios[i], detail,
                               worker_scratch(), base_ptr,
                               slabs.empty() ? nullptr : &slabs[i]);
      },
      sweep_chunk_size(scenarios.size()));
  if (reg != nullptr) {
    EvalStats agg;
    for (const EvalStats& s : slabs) agg.merge(s);
    reg->counter("eval.batch_calls").add(1);
    reg->counter("eval.scenarios").add(scenarios.size());
    publish_eval_stats(*reg, agg);
  }
  return out;
}

std::vector<CostPair> Evaluator::evaluate_costs(std::span<const EvalJob> jobs,
                                                ThreadPool* pool) const {
  for (const EvalJob& job : jobs) {
    if (job.weights == nullptr || job.weights->num_links() != graph_.num_links())
      throw std::invalid_argument("Evaluator::evaluate_costs: bad job weights");
  }

  // Heterogeneous jobs usually reference a few distinct weight settings (the
  // Phase-1b acceptable pool) many times each. Group by pointer on the
  // calling thread and acquire one base per distinct setting that has
  // patchable failure jobs (or is already cached), so workers patch instead
  // of recomputing. Grouping happens before any parallelism, so which jobs
  // ride the incremental path is independent of the execution shape.
  std::vector<const IncrementalBase*> job_base(jobs.size(), nullptr);
  std::vector<std::shared_ptr<const IncrementalBase>> held;  // keeps bases alive
  if (config_.incremental && !jobs.empty()) {
    std::vector<const WeightSetting*> distinct;
    std::vector<std::size_t> patchable;
    std::vector<std::size_t> group(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      std::size_t d = 0;
      while (d < distinct.size() && distinct[d] != jobs[i].weights) ++d;
      if (d == distinct.size()) {
        distinct.push_back(jobs[i].weights);
        patchable.push_back(0);
      }
      group[i] = d;
      if (incremental_patchable(jobs[i].scenario)) ++patchable[d];
    }

    std::vector<double> cost_delay, cost_tput;
    std::vector<const IncrementalBase*> group_base(distinct.size(), nullptr);
    for (std::size_t d = 0; d < distinct.size(); ++d) {
      const WeightSetting& w = *distinct[d];
      w.arc_costs(graph_, TrafficClass::kDelay, cost_delay);
      w.arc_costs(graph_, TrafficClass::kThroughput, cost_tput);
      if (auto base = acquire_base(w, cost_delay, cost_tput, patchable[d],
                                   patchable[d])) {
        group_base[d] = base.get();
        held.push_back(std::move(base));
      }
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) job_base[i] = group_base[group[i]];
  }

  telemetry::Registry* reg = telemetry::effective(config_.telemetry);
  std::vector<EvalStats> slabs(reg != nullptr ? jobs.size() : 0);

  std::vector<CostPair> out(jobs.size());
  parallel_for(pool, jobs.size(), [&](std::size_t, std::size_t i) {
    Scratch& s = worker_scratch();
    jobs[i].weights->arc_costs(graph_, TrafficClass::kDelay, s.cost_delay);
    jobs[i].weights->arc_costs(graph_, TrafficClass::kThroughput, s.cost_tput);
    out[i] = evaluate_impl(s.cost_delay, s.cost_tput, jobs[i].scenario,
                           EvalDetail::kCostsOnly, s, job_base[i],
                           slabs.empty() ? nullptr : &slabs[i])
                 .cost();
  });
  if (reg != nullptr) {
    EvalStats agg;
    for (const EvalStats& s : slabs) agg.merge(s);
    reg->counter("eval.batch_calls").add(1);
    reg->counter("eval.scenarios").add(jobs.size());
    publish_eval_stats(*reg, agg);
  }
  return out;
}

SweepResult Evaluator::sweep(const WeightSetting& w,
                             std::span<const FailureScenario> scenarios,
                             const SweepOptions& options) const {
  const std::span<const double> scenario_weights = options.scenario_weights;
  const CostPair* abort_bound = options.abort_bound;
  ThreadPool* pool = options.pool;
  if (!scenario_weights.empty() && scenario_weights.size() != scenarios.size())
    throw std::invalid_argument("Evaluator::sweep: scenario_weights size mismatch");

  SweepResult sum;
  const LexicographicOrder order;

  // Accumulates scenario i's (already weighted) costs in order and applies
  // the abort bound; returns true to stop. Shared by both paths so the
  // parallel sweep is term-for-term identical to the sequential one.
  auto accumulate = [&](double lambda, double phi, double violations) -> bool {
    sum.lambda += lambda;
    sum.phi += phi;
    sum.violations += violations;
    ++sum.scenarios_evaluated;
    if (abort_bound != nullptr) {
      // Partial sums only grow, so once they are lexicographically worse than
      // the bound the final sums must be too. The primary axis is the lambda
      // sum, or the weighted violation sum for the downtime objective.
      const double primary =
          options.abort_on_violations ? sum.violations : sum.lambda;
      const bool primary_worse =
          primary > abort_bound->lambda && !order.values_equal(primary, abort_bound->lambda);
      const bool phi_worse_at_equal_primary =
          order.values_equal(primary, abort_bound->lambda) &&
          sum.phi > abort_bound->phi && !order.values_equal(sum.phi, abort_bound->phi);
      if (primary_worse || phi_worse_at_equal_primary) {
        sum.aborted = true;
        return true;
      }
    }
    return false;
  };

  if (w.num_links() != graph_.num_links())
    throw std::invalid_argument("Evaluator::sweep: weight setting size mismatch");

  // Arc costs depend only on the weights: expand once, share across the sweep.
  std::vector<double> cost_delay, cost_tput;
  w.arc_costs(graph_, TrafficClass::kDelay, cost_delay);
  w.arc_costs(graph_, TrafficClass::kThroughput, cost_tput);

  const auto eligible =
      std::count_if(scenarios.begin(), scenarios.end(), incremental_eligible);
  const auto patchable =
      std::count_if(scenarios.begin(), scenarios.end(), incremental_patchable);
  const std::shared_ptr<const IncrementalBase> base =
      acquire_base(w, cost_delay, cost_tput, static_cast<std::size_t>(eligible),
                   static_cast<std::size_t>(patchable));
  const IncrementalBase* base_ptr = base.get();

  // Per-scenario terms the ordered accumulation consumes: costs plus the SLA
  // violation count (the downtime objective's raw material) plus the
  // evaluation's deterministic stats.
  struct Term {
    CostPair cost;
    double violations = 0.0;
    EvalStats stats;
  };

  // Stats are merged ONLY for terms the ordered loop consumes — including
  // the aborting term (accumulate counts it in scenarios_evaluated before
  // the bound check) but never the parallel round's post-abort overshoot,
  // which the sequential sweep would not have evaluated. That keeps the
  // published counters identical for any worker count or chunk size.
  telemetry::Registry* reg = telemetry::effective(config_.telemetry);
  EvalStats agg;
  const auto finish = [&]() -> SweepResult {
    if (reg != nullptr) {
      reg->counter("sweep.calls").add(1);
      if (sum.aborted) reg->counter("sweep.aborts").add(1);
      reg->counter("eval.scenarios").add(sum.scenarios_evaluated);
      publish_eval_stats(*reg, agg);
    }
    return sum;
  };

  if (pool == nullptr || pool->num_workers() <= 1 || scenarios.size() <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const double weight = scenario_weights.empty() ? 1.0 : scenario_weights[i];
      if (weight < 0.0) throw std::invalid_argument("Evaluator::sweep: negative weight");
      EvalStats ts;
      const EvalResult r =
          evaluate_impl(cost_delay, cost_tput, scenarios[i], EvalDetail::kCostsOnly,
                        worker_scratch(), base_ptr, reg != nullptr ? &ts : nullptr);
      if (reg != nullptr) agg.merge(ts);
      if (accumulate(weight * r.lambda, weight * r.phi,
                     weight * static_cast<double>(r.sla_violations)))
        return finish();
    }
    return finish();
  }

  const std::size_t workers = pool->num_workers();
  const std::size_t round = workers * std::max<std::size_t>(1, options.chunk_size);
  std::vector<Term> chunk(round);
  for (std::size_t begin = 0; begin < scenarios.size(); begin += round) {
    const std::size_t count = std::min(round, scenarios.size() - begin);
    parallel_for(pool, count, [&](std::size_t, std::size_t i) {
      // The stats land in a local first: assigning to chunk[i] after the call
      // keeps the whole Term (including stats) one well-ordered write.
      EvalStats ts;
      const EvalResult r = evaluate_impl(cost_delay, cost_tput, scenarios[begin + i],
                                         EvalDetail::kCostsOnly, worker_scratch(),
                                         base_ptr, reg != nullptr ? &ts : nullptr);
      chunk[i] = Term{r.cost(), static_cast<double>(r.sla_violations), ts};
    });
    for (std::size_t i = 0; i < count; ++i) {
      // Validated here, not upfront, so an invalid weight past an abort point
      // behaves exactly like the sequential path (abort wins over throw).
      const double weight = scenario_weights.empty() ? 1.0 : scenario_weights[begin + i];
      if (weight < 0.0) throw std::invalid_argument("Evaluator::sweep: negative weight");
      if (reg != nullptr) agg.merge(chunk[i].stats);
      if (accumulate(weight * chunk[i].cost.lambda, weight * chunk[i].cost.phi,
                     weight * chunk[i].violations))
        return finish();
    }
  }
  return finish();
}

std::vector<EvalResult> Evaluator::sweep_detailed(
    const WeightSetting& w, std::span<const FailureScenario> scenarios,
    EvalDetail detail, ThreadPool* pool) const {
  return evaluate_failures(w, scenarios, pool, detail);
}

}  // namespace dtr
