#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dtr {

/// The two routed traffic classes of the DTR model.
enum class TrafficClass : std::uint8_t {
  kDelay = 0,       ///< delay-sensitive (SLA-bound, routing W^D)
  kThroughput = 1,  ///< throughput-sensitive (congestion cost, routing W^T)
};

inline constexpr std::size_t kNumClasses = 2;
inline constexpr TrafficClass kBothClasses[] = {TrafficClass::kDelay,
                                                TrafficClass::kThroughput};

/// A DTR weight setting W: two integer weights per physical link (both
/// directions of a link share the weight, as in symmetric IGP deployments).
/// Weights live in [1, wmax].
class WeightSetting {
 public:
  WeightSetting() = default;
  WeightSetting(std::size_t num_links, int initial_weight = 1);

  std::size_t num_links() const { return weights_[0].size(); }

  int get(TrafficClass c, LinkId l) const { return weights_[idx(c)][l]; }
  void set(TrafficClass c, LinkId l, int weight);

  std::span<const int> weights(TrafficClass c) const { return weights_[idx(c)]; }

  /// Expands link weights into a per-arc cost array for SPF.
  void arc_costs(const Graph& g, TrafficClass c, std::vector<double>& out) const;

  bool operator==(const WeightSetting& other) const = default;

 private:
  static std::size_t idx(TrafficClass c) { return static_cast<std::size_t>(c); }
  std::vector<int> weights_[kNumClasses];
};

/// Uniformly random weights in [1, wmax] for both classes.
void randomize_weights(WeightSetting& w, int wmax, Rng& rng);

/// Heuristic warm start: delay-class weights proportional to propagation
/// delay (shortest-delay routing), throughput-class weights uniform
/// (min-hop). Optional — the paper starts from random settings; this cuts
/// Phase 1 convergence time and is exercised by the ablation bench.
WeightSetting make_warm_start(const Graph& g, int wmax);

}  // namespace dtr
