#pragma once

#include <iosfwd>

#include "routing/weights.h"

namespace dtr {

/// Plain-text persistence for DTR weight settings — the artifact an operator
/// deploys (two IGP weights per link). Format (version 1, '#' comments):
///
///   dtr-weights 1
///   links <M>
///   <delay_weight> <throughput_weight>      (M lines, link id order)

void write_weights(std::ostream& os, const WeightSetting& w);

/// Parses the format above; throws std::runtime_error on malformed input.
WeightSetting read_weights(std::istream& is);

}  // namespace dtr
