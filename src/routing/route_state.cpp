#include "routing/route_state.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "routing/failures.h"

namespace dtr {

namespace {
constexpr double kTightEps = 1e-7;

inline bool alive(ArcAliveMask mask, ArcId a) { return mask.empty() || mask[a] != 0; }
}  // namespace

void PatchStats::observe_affected(std::uint64_t n) {
  const auto it =
      std::lower_bound(kAffectedBucketBounds.begin(), kAffectedBucketBounds.end(), n);
  ++affected_buckets[static_cast<std::size_t>(it - kAffectedBucketBounds.begin())];
}

void PatchStats::merge(const PatchStats& o) {
  dests_delta += o.dests_delta;
  dests_full_fallback += o.dests_full_fallback;
  dests_resweep += o.dests_resweep;
  dests_replayed += o.dests_replayed;
  affected_nodes += o.affected_nodes;
  boundary_seeds += o.boundary_seeds;
  delay_cols_replayed += o.delay_cols_replayed;
  delay_cols_recomputed += o.delay_cols_recomputed;
  for (std::size_t i = 0; i < affected_buckets.size(); ++i)
    affected_buckets[i] += o.affected_buckets[i];
}

bool arc_is_tight(NodeId src, NodeId dst, double cost, std::span<const double> dist) {
  const double du = dist[src];
  const double dv = dist[dst];
  if (du == kInfDist || dv == kInfDist) return false;
  return std::abs(du - (cost + dv)) <= kTightEps * std::max(1.0, std::abs(du));
}

bool arc_is_tight(const Arc& arc, double cost, std::span<const double> dist) {
  return arc_is_tight(arc.src, arc.dst, cost, dist);
}

std::vector<std::vector<NodeId>> enumerate_ecmp_paths(
    const Graph& g, std::span<const double> arc_cost, NodeId s, NodeId t,
    ArcAliveMask alive_mask, std::size_t max_paths) {
  if (s >= g.num_nodes() || t >= g.num_nodes())
    throw std::out_of_range("enumerate_ecmp_paths: node id");
  std::vector<std::vector<NodeId>> paths;
  if (s == t || max_paths == 0) return paths;

  std::vector<double> dist;
  shortest_distances_to(g, t, arc_cost, alive_mask, dist);
  if (dist[s] == kInfDist) return paths;

  // DFS over the shortest-path DAG; next hops visited in ascending node id
  // for deterministic output. The DAG is acyclic (distances strictly
  // decrease along tight arcs with positive costs), so no visited-set needed.
  std::vector<NodeId> current{s};
  // Pre-sorted tight successor lists keep the traversal simple.
  auto tight_successors = [&](NodeId u) {
    std::vector<NodeId> next;
    for (ArcId a : g.out_arcs(u)) {
      if (!alive_mask.empty() && alive_mask[a] == 0) continue;
      if (arc_is_tight(g.arc(a), arc_cost[a], dist)) next.push_back(g.arc(a).dst);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    return next;
  };

  struct Frame {
    std::vector<NodeId> successors;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({tight_successors(s), 0});
  while (!stack.empty() && paths.size() < max_paths) {
    Frame& frame = stack.back();
    if (frame.next >= frame.successors.size()) {
      stack.pop_back();
      current.pop_back();
      continue;
    }
    const NodeId v = frame.successors[frame.next++];
    current.push_back(v);
    if (v == t) {
      paths.push_back(current);
      current.pop_back();
    } else {
      stack.push_back({tight_successors(v), 0});
    }
  }
  return paths;
}

void RoutingBaseRecord::reset(std::size_t num_nodes) {
  contrib_offset.clear();
  contrib_offset.reserve(num_nodes + 1);
  contrib_offset.push_back(0);
  contrib_arc.clear();
  contrib_val.clear();
  disconnected.clear();
  disconnected.reserve(num_nodes);
  disconnected_volume.clear();
  disconnected_volume.reserve(num_nodes);
}

ClassRouting::ClassRouting(const Graph& g, std::span<const double> arc_cost,
                           const TrafficMatrix& demands, ArcAliveMask alive_mask,
                           std::span<const NodeId> skip_nodes) {
  compute(g, arc_cost, demands, alive_mask, skip_nodes);
}

void ClassRouting::compute(const Graph& g, std::span<const double> arc_cost,
                           const TrafficMatrix& demands, ArcAliveMask alive_mask,
                           std::span<const NodeId> skip_nodes,
                           RoutingBaseRecord* record) {
  if (demands.num_nodes() != g.num_nodes())
    throw std::invalid_argument("ClassRouting: traffic matrix / graph size mismatch");

  const std::size_t n = g.num_nodes();
  arc_load_.assign(g.num_arcs(), 0.0);
  dist_.resize(n);
  disconnected_ = 0;
  disconnected_volume_ = 0.0;
  replayed_.clear();  // not a patched routing
  if (record != nullptr) record->reset(n);

  for (NodeId t = 0; t < n; ++t) {
    shortest_distances_to(g, t, arc_cost, alive_mask, dist_[t]);
    if (!is_skipped(skip_nodes, t)) {
      sweep_destination(g, arc_cost, demands, alive_mask, skip_nodes, t, record);
    } else if (record != nullptr) {
      record->disconnected.push_back(0);
      record->disconnected_volume.push_back(0.0);
    }
    if (record != nullptr) record->contrib_offset.push_back(record->contrib_arc.size());
  }
}

void ClassRouting::sweep_destination(const Graph& g, std::span<const double> arc_cost,
                                     const TrafficMatrix& demands, ArcAliveMask alive_mask,
                                     std::span<const NodeId> skip_nodes, NodeId t,
                                     RoutingBaseRecord* record) {
  sweep_destination_body(g, arc_cost, demands, alive_mask, skip_nodes, t, record,
                         &arc_load_, &disconnected_, &disconnected_volume_, node_flow_,
                         order_);
}

void ClassRouting::sweep_destination_body(
    const Graph& g, std::span<const double> arc_cost, const TrafficMatrix& demands,
    ArcAliveMask alive_mask, std::span<const NodeId> skip_nodes, NodeId t,
    RoutingBaseRecord* record, std::vector<double>* arc_load,
    std::size_t* disconnected, double* disconnected_volume,
    std::vector<double>& node_flow, std::vector<NodeId>& order) const {
  const std::size_t n = g.num_nodes();
  const auto& dist = dist_[t];
  node_flow.assign(n, 0.0);

  // Seed node flows with the demands toward t. Disconnection is accumulated
  // as a per-destination subtotal so the incremental path's replay adds the
  // exact same float terms in the exact same grouping.
  bool any_flow = false;
  std::uint32_t dest_disconnected = 0;
  double dest_volume = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    if (s == t || is_skipped(skip_nodes, s)) continue;
    const double d = demands.at(s, t);
    if (d <= 0.0) continue;
    if (dist[s] == kInfDist) {
      ++dest_disconnected;
      dest_volume += d;
      continue;
    }
    node_flow[s] = d;
    any_flow = true;
  }
  if (disconnected != nullptr) *disconnected += dest_disconnected;
  if (disconnected_volume != nullptr) *disconnected_volume += dest_volume;
  if (record != nullptr) {
    record->disconnected.push_back(dest_disconnected);
    record->disconnected_volume.push_back(dest_volume);
  }
  if (!any_flow) return;

  // Process reachable nodes in decreasing distance; each node's flow splits
  // evenly over its tight out-arcs.
  order.clear();
  for (NodeId u = 0; u < n; ++u)
    if (u != t && dist[u] != kInfDist) order.push_back(u);
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return dist[a] > dist[b]; });

  // CSR sweep: both passes stream the contiguous out-arc span of u (same
  // ascending-arc-id order as the legacy per-node vectors — same float
  // accumulation order, bit-identical loads).
  const GraphCsr& csr = g.csr();
  for (NodeId u : order) {
    const double flow = node_flow[u];
    if (flow <= 0.0) continue;
    const std::uint32_t begin = csr.out_offset[u];
    const std::uint32_t end = csr.out_offset[u + 1];
    int tight_count = 0;
    for (std::uint32_t k = begin; k < end; ++k) {
      const ArcId a = csr.out_arc[k];
      if (alive(alive_mask, a) && arc_is_tight(u, csr.out_head[k], arc_cost[a], dist))
        ++tight_count;
    }
    if (tight_count == 0) {
      // Cannot happen for finite-dist nodes (a tight arc realizes dist),
      // but guard against inconsistent masks.
      throw std::logic_error("ClassRouting: node with flow has no tight out-arc");
    }
    const double share = flow / tight_count;
    for (std::uint32_t k = begin; k < end; ++k) {
      const ArcId a = csr.out_arc[k];
      const NodeId v = csr.out_head[k];
      if (!alive(alive_mask, a) || !arc_is_tight(u, v, arc_cost[a], dist)) continue;
      if (arc_load != nullptr) (*arc_load)[a] += share;
      node_flow[v] += share;
      if (record != nullptr) {
        record->contrib_arc.push_back(a);
        record->contrib_val.push_back(share);
      }
    }
    node_flow[u] = 0.0;
  }
}

void ClassRouting::record_contributions(const Graph& g, std::span<const double> arc_cost,
                                        const TrafficMatrix& demands,
                                        ArcAliveMask alive_mask,
                                        std::span<const NodeId> skip_nodes,
                                        RoutingBaseRecord& record) const {
  const std::size_t n = g.num_nodes();
  if (dist_.size() != n)
    throw std::logic_error("record_contributions: routing not computed for this graph");
  record.reset(n);

  // The same sweep_destination_body every load path runs — here with null
  // load/disconnection accumulators (this routing already holds the correct
  // totals), so only the record is written.
  std::vector<double> node_flow;
  std::vector<NodeId> order;
  for (NodeId t = 0; t < n; ++t) {
    if (is_skipped(skip_nodes, t)) {
      record.disconnected.push_back(0);
      record.disconnected_volume.push_back(0.0);
    } else {
      sweep_destination_body(g, arc_cost, demands, alive_mask, skip_nodes, t, &record,
                             nullptr, nullptr, nullptr, node_flow, order);
    }
    record.contrib_offset.push_back(record.contrib_arc.size());
  }
}

void ClassRouting::compute_from_base(const Graph& g, std::span<const double> arc_cost,
                                     const TrafficMatrix& demands,
                                     const ClassRouting& base,
                                     const RoutingBaseRecord& record,
                                     std::span<const ArcId> removed_arcs,
                                     ArcAliveMask alive_mask,
                                     double max_affected_fraction,
                                     FailureScratch& scratch) {
  if (demands.num_nodes() != g.num_nodes())
    throw std::invalid_argument("ClassRouting: traffic matrix / graph size mismatch");
  const std::size_t n = g.num_nodes();
  if (base.dist_.size() != n || record.contrib_offset.size() != n + 1)
    throw std::invalid_argument("compute_from_base: base/record don't match this graph");

  arc_load_.assign(g.num_arcs(), 0.0);
  dist_.resize(n);
  disconnected_ = 0;
  disconnected_volume_ = 0.0;
  replayed_.assign(n, 0);

  const std::size_t cap =
      max_affected_fraction >= 1.0
          ? n
          : static_cast<std::size_t>(std::max(0.0, max_affected_fraction) *
                                     static_cast<double>(n));

  for (NodeId t = 0; t < n; ++t) {
    dist_[t] = base.dist_[t];
    const std::ptrdiff_t touched = delta_spf_remove_arcs(
        g, arc_cost, alive_mask, removed_arcs, dist_[t], cap, scratch.spf_);
    bool affected = touched != 0;
    if (touched < 0) {
      // Delta would touch too much of this destination: full Dijkstra is
      // cheaper than the delta bookkeeping (dist_[t] is still the untouched
      // base copy here).
      shortest_distances_to(g, t, arc_cost, alive_mask, dist_[t]);
      ++scratch.stats_.dests_full_fallback;
    } else if (touched > 0) {
      ++scratch.stats_.dests_delta;
      scratch.stats_.affected_nodes += static_cast<std::uint64_t>(touched);
      scratch.stats_.boundary_seeds += scratch.spf_.last_boundary_seeds();
      scratch.stats_.observe_affected(static_cast<std::uint64_t>(touched));
    }
    if (!affected) {
      // Distances survived, but a removed arc that was tight (by the sweep's
      // epsilon predicate) still changes the ECMP splits at its source.
      const GraphCsr& csr = g.csr();
      for (ArcId a : removed_arcs) {
        if (arc_is_tight(csr.src[a], csr.dst[a], arc_cost[a], dist_[t])) {
          affected = true;
          break;
        }
      }
    }
    if (affected) {
      sweep_destination(g, arc_cost, demands, alive_mask, {}, t, nullptr);
      ++scratch.stats_.dests_resweep;
    } else {
      // Untouched DAG: replay the base contributions. Every accumulator
      // receives the same float terms in the same destination order as a
      // full recompute, so the patched state is bitwise identical.
      for (std::size_t i = record.contrib_offset[t]; i < record.contrib_offset[t + 1]; ++i)
        arc_load_[record.contrib_arc[i]] += record.contrib_val[i];
      disconnected_ += record.disconnected[t];
      disconnected_volume_ += record.disconnected_volume[t];
      replayed_[t] = 1;
      ++scratch.stats_.dests_replayed;
    }
  }
}

void ClassRouting::compute_from_weight_delta(const Graph& g,
                                             std::span<const double> arc_cost,
                                             const TrafficMatrix& demands,
                                             const ClassRouting& base,
                                             const RoutingBaseRecord& record,
                                             std::span<const ArcCostDelta> changes,
                                             double max_affected_fraction,
                                             FailureScratch& scratch) {
  if (demands.num_nodes() != g.num_nodes())
    throw std::invalid_argument("ClassRouting: traffic matrix / graph size mismatch");
  const std::size_t n = g.num_nodes();
  if (base.dist_.size() != n || record.contrib_offset.size() != n + 1)
    throw std::invalid_argument(
        "compute_from_weight_delta: base/record don't match this graph");

  arc_load_.assign(g.num_arcs(), 0.0);
  dist_.resize(n);
  disconnected_ = 0;
  disconnected_volume_ = 0.0;
  replayed_.assign(n, 0);

  const std::size_t cap =
      max_affected_fraction >= 1.0
          ? n
          : static_cast<std::size_t>(std::max(0.0, max_affected_fraction) *
                                     static_cast<double>(n));

  for (NodeId t = 0; t < n; ++t) {
    dist_[t] = base.dist_[t];
    const std::ptrdiff_t touched =
        delta_spf_update_arcs(g, arc_cost, {}, changes, dist_[t], cap, scratch.spf_);
    bool affected = touched != 0;
    if (touched < 0) {
      // Delta would touch too much of this destination: full Dijkstra is
      // cheaper than the delta bookkeeping (dist_[t] is still the untouched
      // base copy here).
      shortest_distances_to(g, t, arc_cost, {}, dist_[t]);
      ++scratch.stats_.dests_full_fallback;
    } else if (touched > 0) {
      ++scratch.stats_.dests_delta;
      scratch.stats_.affected_nodes += static_cast<std::uint64_t>(touched);
      scratch.stats_.boundary_seeds += scratch.spf_.last_boundary_seeds();
      scratch.stats_.observe_affected(static_cast<std::uint64_t>(touched));
    }
    if (!affected) {
      // Labels survived, but a changed arc that is tight (by the sweep's
      // epsilon predicate) under EITHER cost vector still churns the ECMP
      // splits at its source: tight under the old cost means the base's DAG
      // used it, tight under the new cost means ours does.
      const GraphCsr& csr = g.csr();
      for (const ArcCostDelta& c : changes) {
        const NodeId src = csr.src[c.arc];
        const NodeId dst = csr.dst[c.arc];
        if (arc_is_tight(src, dst, c.old_cost, dist_[t]) ||
            arc_is_tight(src, dst, arc_cost[c.arc], dist_[t])) {
          affected = true;
          break;
        }
      }
    }
    if (affected) {
      sweep_destination(g, arc_cost, demands, {}, {}, t, nullptr);
      ++scratch.stats_.dests_resweep;
    } else {
      // Untouched DAG: replay the base contributions. Every accumulator
      // receives the same float terms in the same destination order as a
      // full recompute, so the patched state is bitwise identical.
      for (std::size_t i = record.contrib_offset[t]; i < record.contrib_offset[t + 1]; ++i)
        arc_load_[record.contrib_arc[i]] += record.contrib_val[i];
      disconnected_ += record.disconnected[t];
      disconnected_volume_ += record.disconnected_volume[t];
      replayed_[t] = 1;
      ++scratch.stats_.dests_replayed;
    }
  }
}

void ClassRouting::compute_with_labels(const Graph& g, std::span<const double> arc_cost,
                                       const TrafficMatrix& demands,
                                       ArcAliveMask alive_mask,
                                       const std::vector<std::vector<double>>& labels,
                                       std::span<const NodeId> skip_nodes) {
  if (demands.num_nodes() != g.num_nodes())
    throw std::invalid_argument("ClassRouting: traffic matrix / graph size mismatch");
  const std::size_t n = g.num_nodes();
  if (labels.size() != n)
    throw std::invalid_argument("compute_with_labels: labels/graph size mismatch");

  arc_load_.assign(g.num_arcs(), 0.0);
  dist_.resize(n);
  disconnected_ = 0;
  disconnected_volume_ = 0.0;
  replayed_.clear();  // not a patched routing

  for (NodeId t = 0; t < n; ++t) {
    if (labels[t].size() != n)
      throw std::invalid_argument("compute_with_labels: label column size mismatch");
    dist_[t] = labels[t];
    if (!is_skipped(skip_nodes, t))
      sweep_destination(g, arc_cost, demands, alive_mask, skip_nodes, t, nullptr);
  }
}

void ClassRouting::delay_dp_destination(const Graph& g, std::span<const double> arc_cost,
                                        ArcAliveMask alive_mask,
                                        std::span<const double> arc_delay_ms,
                                        const TrafficMatrix& demands, SlaDelayMode mode,
                                        std::span<const NodeId> skip_nodes, NodeId t,
                                        std::vector<double>& node_delay,
                                        std::vector<NodeId>& order,
                                        std::vector<double>& out,
                                        DelayDpIndex* record) const {
  const std::size_t n = g.num_nodes();
  const auto& dist = dist_[t];

  bool any_demand = false;
  for (NodeId s = 0; s < n && !any_demand; ++s)
    any_demand = (s != t && !is_skipped(skip_nodes, s) && demands.at(s, t) > 0.0);
  if (!any_demand) return;

  // DP over the shortest-path DAG in increasing distance order:
  //   expected: E[u] = sum_k (1/k)(D_a + E[dst_a]) over tight arcs
  //   worst:    W[u] = max_a (D_a + W[dst_a])
  order.clear();
  for (NodeId u = 0; u < n; ++u)
    if (dist[u] != kInfDist) order.push_back(u);
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return dist[a] < dist[b]; });

  const GraphCsr& csr = g.csr();
  std::fill(node_delay.begin(), node_delay.end(), 0.0);
  for (NodeId u : order) {
    if (u == t) continue;
    int tight_count = 0;
    double acc = (mode == SlaDelayMode::kWorstPath) ? -kInfDist : 0.0;
    for (std::uint32_t k = csr.out_offset[u]; k < csr.out_offset[u + 1]; ++k) {
      const ArcId a = csr.out_arc[k];
      const NodeId v = csr.out_head[k];
      if (!alive(alive_mask, a) || !arc_is_tight(u, v, arc_cost[a], dist)) continue;
      ++tight_count;
      if (record != nullptr) record->add(t, a);
      const double through = arc_delay_ms[a] + node_delay[v];
      if (mode == SlaDelayMode::kWorstPath) {
        acc = std::max(acc, through);
      } else {
        acc += through;
      }
    }
    node_delay[u] = (mode == SlaDelayMode::kWorstPath)
                        ? acc
                        : (tight_count > 0 ? acc / tight_count : 0.0);
  }

  for (NodeId s = 0; s < n; ++s) {
    if (s == t || is_skipped(skip_nodes, s)) continue;
    if (demands.at(s, t) <= 0.0) continue;
    out[static_cast<std::size_t>(s) * n + t] =
        (dist[s] == kInfDist) ? kInfDist : node_delay[s];
  }
}

void ClassRouting::end_to_end_delays(const Graph& g, std::span<const double> arc_cost,
                                     ArcAliveMask alive_mask,
                                     std::span<const double> arc_delay_ms,
                                     const TrafficMatrix& demands, SlaDelayMode mode,
                                     std::span<const NodeId> skip_nodes,
                                     std::vector<double>& out,
                                     DelayDpIndex* record) const {
  const std::size_t n = g.num_nodes();
  if (arc_delay_ms.size() != g.num_arcs())
    throw std::invalid_argument("end_to_end_delays: arc_delay size mismatch");
  out.assign(n * n, -1.0);
  if (record != nullptr) record->reset(g.num_arcs());

  std::vector<double> node_delay(n);
  std::vector<NodeId> order(n);

  for (NodeId t = 0; t < n; ++t) {
    if (is_skipped(skip_nodes, t)) continue;
    delay_dp_destination(g, arc_cost, alive_mask, arc_delay_ms, demands, mode,
                         skip_nodes, t, node_delay, order, out, record);
  }
  if (record != nullptr) record->finalize();
}

void ClassRouting::end_to_end_delays_from_base(
    const Graph& g, std::span<const double> arc_cost, ArcAliveMask alive_mask,
    std::span<const double> arc_delay_ms, const TrafficMatrix& demands,
    SlaDelayMode mode, std::span<const double> base_arc_delay_ms,
    std::span<const double> base_sd_delay_ms, const DelayDpIndex& index,
    FailureScratch& scratch, std::vector<double>& out) const {
  const std::size_t n = g.num_nodes();
  if (arc_delay_ms.size() != g.num_arcs())
    throw std::invalid_argument("end_to_end_delays_from_base: arc_delay size mismatch");
  if (base_sd_delay_ms.size() != n * n)
    throw std::invalid_argument("end_to_end_delays_from_base: base delay size mismatch");
  if (replayed_.size() != n)
    throw std::logic_error(
        "end_to_end_delays_from_base: routing was not patched from a base");

  out.assign(n * n, -1.0);

  // Dirty destinations: every destination whose DAG changed (re-swept by
  // compute_from_base), plus — via the dirty-arc index — every destination
  // whose DP reads an arc whose delay is not bitwise identical to the base.
  scratch.dirty_.assign(n, 0);
  mark_dirty_destinations(index, base_arc_delay_ms, arc_delay_ms, scratch.dirty_);

  scratch.node_delay_.resize(n);
  for (NodeId t = 0; t < n; ++t) {
    if (replayed_[t] && !scratch.dirty_[t]) {
      // Clean destination: the DP would consume the exact distance labels,
      // tight-arc set, and arc delays the base DP consumed, so its output
      // column is replayed verbatim (removed arcs were not tight here, and
      // both paths skip them before any accumulation).
      for (NodeId s = 0; s < n; ++s)
        out[static_cast<std::size_t>(s) * n + t] =
            base_sd_delay_ms[static_cast<std::size_t>(s) * n + t];
      ++scratch.stats_.delay_cols_replayed;
    } else {
      delay_dp_destination(g, arc_cost, alive_mask, arc_delay_ms, demands, mode, {}, t,
                           scratch.node_delay_, scratch.order_, out, nullptr);
      ++scratch.stats_.delay_cols_recomputed;
    }
  }
}

}  // namespace dtr
