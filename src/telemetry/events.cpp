#include "telemetry/events.h"

#include <cassert>
#include <chrono>
#include <ostream>
#include <utility>

#include "util/json.h"

namespace dtr::telemetry {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t process_wall_ms() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - epoch).count());
}

}  // namespace

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSchema: return "schema";
    case EventKind::kPhaseStart: return "phase_start";
    case EventKind::kPhaseEnd: return "phase_end";
    case EventKind::kIteration: return "iter";
    case EventKind::kCellStart: return "cell_start";
    case EventKind::kCellFinish: return "cell_finish";
    case EventKind::kProgress: return "progress";
    case EventKind::kCounterDelta: return "counter_delta";
    case EventKind::kDrops: return "drops";
  }
  return "unknown";
}

EventBus::EventBus(std::size_t capacity) : slots_(round_up_pow2(capacity < 2 ? 2 : capacity)) {
  mask_ = slots_.size() - 1;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    slots_[i].seq.store(i, std::memory_order_relaxed);
}

bool EventBus::publish(Event e) {
  std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const std::int64_t dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        slot.event = std::move(e);
        slot.seq.store(pos + 1, std::memory_order_release);
        published_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS updated `pos`; retry against the new head.
    } else if (dif < 0) {
      // The slot one lap behind is still unconsumed: ring full.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

std::vector<Event> EventBus::drain() {
  std::vector<Event> out;
  std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != pos + 1) break;  // next slot not yet published
    out.push_back(std::move(slot.event));
    slot.event = Event{};
    slot.seq.store(pos + slots_.size(), std::memory_order_release);
    ++pos;
  }
  dequeue_pos_.store(pos, std::memory_order_relaxed);
  return out;
}

std::string event_json_line(const Event& e) {
  std::string line = "{\"event\":";
  line += json_escape(to_string(e.kind));
  line += ",\"plane\":";
  line += e.plane == Plane::kDeterministic ? "\"det\"" : "\"process\"";
  if (e.kind == EventKind::kSchema) {
    line += ",\"schema\":";
    line += json_escape(kEventsSchema);
    line += "}";
    return line;
  }
  if (!e.label.empty()) {
    line += ",\"label\":";
    line += json_escape(e.label);
  }
  switch (e.kind) {
    case EventKind::kIteration:
      line += ",\"iter\":" + std::to_string(e.iteration);
      line += ",\"evals\":" + std::to_string(e.evaluations);
      line += ",\"link\":" + std::to_string(e.link);
      line += ",\"lambda\":" + json_number(e.cost_lambda);
      line += ",\"phi\":" + json_number(e.cost_phi);
      line += ",\"restart\":";
      line += e.restart ? "true" : "false";
      break;
    case EventKind::kPhaseEnd:
      line += ",\"iter\":" + std::to_string(e.iteration);
      line += ",\"evals\":" + std::to_string(e.evaluations);
      line += ",\"lambda\":" + json_number(e.cost_lambda);
      line += ",\"phi\":" + json_number(e.cost_phi);
      break;
    case EventKind::kProgress:
      line += ",\"done\":" + std::to_string(e.done);
      line += ",\"total\":" + std::to_string(e.total);
      break;
    case EventKind::kCounterDelta:
      line += ",\"delta\":" + std::to_string(e.value);
      break;
    case EventKind::kDrops:
      line += ",\"dropped\":" + std::to_string(e.value);
      break;
    default:
      break;
  }
  if (e.plane == Plane::kProcess) line += ",\"wall_ms\":" + std::to_string(e.wall_ms);
  line += "}";
  return line;
}

void write_events_header(std::ostream& os) {
  Event header;
  header.kind = EventKind::kSchema;
  header.plane = Plane::kDeterministic;
  os << event_json_line(header) << '\n';
}

void write_events_jsonl(std::ostream& os, const std::vector<Event>& events) {
  for (const Event& e : events) os << event_json_line(e) << '\n';
}

void publish_process(EventBus* bus, Event e) {
  if (bus == nullptr) return;
  e.plane = Plane::kProcess;
  e.wall_ms = process_wall_ms();
  bus->publish(std::move(e));
}

void publish_deterministic(EventBus* bus, Event e) {
  if (bus == nullptr) return;
  e.plane = Plane::kDeterministic;
  assert(e.wall_ms == 0 && "deterministic events must not carry wall-clock data");
  bus->publish(std::move(e));
}

void publish_snapshot_delta(EventBus* bus, const Snapshot& before, const Snapshot& now) {
  if (bus == nullptr) return;
  for (const CounterValue& c : now.counters) {
    const std::uint64_t prior = before.counter(c.name);
    if (c.value <= prior) continue;
    Event e;
    e.kind = EventKind::kCounterDelta;
    e.label = c.name;
    e.value = c.value - prior;
    publish_process(bus, std::move(e));
  }
}

}  // namespace dtr::telemetry
