#pragma once

/// Observability layer: a registry of named counters, gauges, and histograms
/// plus scoped wall-clock spans, split into two planes with different
/// guarantees:
///
///  - Plane::kDeterministic — values that must be byte-identical across ANY
///    worker/thread shape (cache-path takes, delta-SPF region sizes, sweep
///    aborts, scenarios patched...). Instrumented code enforces this the same
///    way the rest of the repo does: per-worker accumulation into per-index
///    slots, merged on the calling thread in index order. The counters
///    themselves use relaxed atomic adds — integer addition commutes, so once
///    the SET of increments is shape-independent the totals are too.
///  - Plane::kProcess — values that legitimately depend on the execution
///    shape (LRU base-cache hits/misses, worker counts). Excluded from golden
///    artifacts and from deterministic snapshots by default.
///
/// Wall-clock spans (ScopedSpan) live outside both planes: they are exported
/// only through the Chrome-trace sink and the opt-in `spans` JSON section,
/// never into golden artifacts — the same rule PR 2 applied to timings.
///
/// Export is schema-versioned (`dtr.telemetry.v1`) through the deterministic
/// JsonWriter; spans additionally export in the Chrome trace-event format
/// (load the file in chrome://tracing or Perfetto).

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace dtr::telemetry {

inline constexpr std::string_view kTelemetrySchema = "dtr.telemetry.v1";

enum class Plane { kDeterministic, kProcess };

/// Monotonic counter. Relaxed atomic adds: safe to increment from any thread;
/// determinism is a property of WHICH increments happen (enforced at the
/// instrumentation sites), not of their order.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge (worker counts, catalog sizes). Snapshot merges
/// overwrite rather than add.
class Gauge {
 public:
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket histogram over unsigned observations. Bucket i counts
/// observations v with bounds[i-1] < v <= bounds[i]; one extra overflow
/// bucket counts v > bounds.back(). Bounds are fixed at registration, so
/// bucket contents merge across registries by plain addition.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v);
  /// Adds pre-binned observations (same bucketing rule, counts.size() must be
  /// bounds().size() + 1). Used to fold per-worker bucket arrays in.
  void merge_buckets(std::span<const std::uint64_t> counts, std::uint64_t count,
                     std::uint64_t sum);

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramValue {
  std::string name;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

/// Point-in-time copy of one plane of a registry, NAME-SORTED so that
/// concurrent registration order can never leak into exported bytes.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }
  /// Value of the named counter, 0 if absent.
  std::uint64_t counter(std::string_view name) const;
};

/// One closed wall-clock span. Timestamps are absolute steady-clock
/// nanoseconds; exporters normalize to the earliest span. `tid` is a small
/// per-registry thread index (stable within a registry, shifted on merge so
/// merged registries keep distinct lanes), `depth` the nesting level on that
/// thread.
struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  int tid = 0;
  int depth = 0;
};

/// Find-or-create registry of named instruments. Thread-safe: registration
/// takes a mutex, returned references stay valid for the registry's lifetime,
/// increments are lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, Plane plane = Plane::kDeterministic);
  Gauge& gauge(std::string_view name, Plane plane = Plane::kProcess);
  Histogram& histogram(std::string_view name, std::span<const std::uint64_t> bounds,
                       Plane plane = Plane::kDeterministic);

  /// Name-sorted copy of every instrument in `plane`.
  Snapshot snapshot(Plane plane) const;

  /// Folds a snapshot in: counters/histograms add, gauges overwrite.
  void merge_counters(const Snapshot& snap, Plane plane = Plane::kDeterministic);

  /// Appends closed spans from another registry, shifting their thread
  /// indices past this registry's so lanes stay distinct.
  void merge_spans(const std::vector<SpanRecord>& records);

  std::vector<SpanRecord> spans() const;

 private:
  friend class ScopedSpan;
  void record_span(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns,
                   int depth);
  int tid_for_current_thread_locked();

  template <typename T>
  struct Entry {
    std::string name;
    Plane plane;
    std::unique_ptr<T> instrument;
  };

  mutable std::mutex mutex_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
  std::vector<SpanRecord> spans_;
  std::vector<std::thread::id> thread_ids_;  // index = per-registry tid
  int next_tid_ = 0;
};

/// RAII wall-clock span; records into `registry` on destruction. A null
/// registry makes it a no-op, so call sites write
/// `ScopedSpan span(effective(config.telemetry), "phase2");` unconditionally.
class ScopedSpan {
 public:
  ScopedSpan(Registry* registry, std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Registry* registry_;
  std::string name_;
  std::uint64_t start_ns_ = 0;
  int depth_ = 0;
};

/// Global kill switch, initialized from the DTR_TELEMETRY_OFF environment
/// variable (set => disabled). Instrumented code reads it through
/// `effective()`, so disabling telemetry reduces the hot-path cost to one
/// relaxed load plus a null check.
bool enabled();
void set_enabled(bool on);
inline Registry* effective(Registry* registry) { return enabled() ? registry : nullptr; }

struct TelemetryJsonOptions {
  bool include_process = true;  // emit the shape-dependent process plane
  bool include_spans = false;   // emit raw span records (wall-time data)
};

/// dtr.telemetry.v1: { schema, name, counters{}, histograms{}, [gauges{}],
/// [process{counters,gauges}], [spans[]] }. The deterministic sections are
/// byte-identical across worker/thread shapes.
void write_telemetry_json(std::ostream& os, const Registry& registry,
                          std::string_view name, const TelemetryJsonOptions& options = {});

/// Chrome trace-event JSON ("X" complete events, microsecond timestamps
/// normalized to the earliest span) — loadable in chrome://tracing / Perfetto.
void write_chrome_trace(std::ostream& os, const Registry& registry);

}  // namespace dtr::telemetry
