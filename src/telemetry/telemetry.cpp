#include "telemetry/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ostream>

#include "util/json.h"

namespace dtr::telemetry {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local int tls_span_depth = 0;

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag(std::getenv("DTR_TELEMETRY_OFF") == nullptr);
  return flag;
}

template <typename Entry, typename Make>
auto& find_or_create(std::vector<Entry>& entries, std::string_view name, Plane plane,
                     const Make& make) {
  for (auto& entry : entries)
    if (entry.name == name) return *entry.instrument;
  entries.push_back(Entry{std::string(name), plane, make()});
  return *entries.back().instrument;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::observe(std::uint64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  counts_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::merge_buckets(std::span<const std::uint64_t> counts, std::uint64_t count,
                              std::uint64_t sum) {
  const std::size_t n = std::min(counts.size(), counts_.size());
  for (std::size_t i = 0; i < n; ++i)
    counts_[i].fetch_add(counts[i], std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

// ---------------------------------------------------------------------------
// Registry

Counter& Registry::counter(std::string_view name, Plane plane) {
  const std::lock_guard lock(mutex_);
  return find_or_create(counters_, name, plane,
                        [] { return std::make_unique<Counter>(); });
}

Gauge& Registry::gauge(std::string_view name, Plane plane) {
  const std::lock_guard lock(mutex_);
  return find_or_create(gauges_, name, plane, [] { return std::make_unique<Gauge>(); });
}

Histogram& Registry::histogram(std::string_view name, std::span<const std::uint64_t> bounds,
                               Plane plane) {
  const std::lock_guard lock(mutex_);
  return find_or_create(histograms_, name, plane, [&] {
    return std::make_unique<Histogram>(
        std::vector<std::uint64_t>(bounds.begin(), bounds.end()));
  });
}

Snapshot Registry::snapshot(Plane plane) const {
  Snapshot snap;
  {
    const std::lock_guard lock(mutex_);
    for (const auto& entry : counters_)
      if (entry.plane == plane)
        snap.counters.push_back({entry.name, entry.instrument->value()});
    for (const auto& entry : gauges_)
      if (entry.plane == plane)
        snap.gauges.push_back({entry.name, entry.instrument->value()});
    for (const auto& entry : histograms_)
      if (entry.plane == plane)
        snap.histograms.push_back({entry.name, entry.instrument->bounds(),
                                   entry.instrument->counts(), entry.instrument->count(),
                                   entry.instrument->sum()});
  }
  // Name-sorted: concurrent registration order must never leak into bytes.
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::merge_counters(const Snapshot& snap, Plane plane) {
  for (const auto& c : snap.counters) counter(c.name, plane).add(c.value);
  for (const auto& g : snap.gauges) gauge(g.name, plane).set(g.value);
  for (const auto& h : snap.histograms)
    histogram(h.name, h.bounds, plane).merge_buckets(h.counts, h.count, h.sum);
}

void Registry::merge_spans(const std::vector<SpanRecord>& records) {
  if (records.empty()) return;
  const std::lock_guard lock(mutex_);
  int max_tid = 0;
  for (const auto& r : records) max_tid = std::max(max_tid, r.tid);
  const int offset = next_tid_;
  for (const auto& r : records) {
    SpanRecord shifted = r;
    shifted.tid += offset;
    spans_.push_back(std::move(shifted));
  }
  next_tid_ = offset + max_tid + 1;
}

std::vector<SpanRecord> Registry::spans() const {
  const std::lock_guard lock(mutex_);
  return spans_;
}

int Registry::tid_for_current_thread_locked() {
  const std::thread::id id = std::this_thread::get_id();
  for (std::size_t i = 0; i < thread_ids_.size(); ++i)
    if (thread_ids_[i] == id) return static_cast<int>(i);
  thread_ids_.push_back(id);
  next_tid_ = std::max(next_tid_, static_cast<int>(thread_ids_.size()));
  return static_cast<int>(thread_ids_.size()) - 1;
}

void Registry::record_span(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns,
                           int depth) {
  const std::lock_guard lock(mutex_);
  spans_.push_back(
      {std::move(name), start_ns, dur_ns, tid_for_current_thread_locked(), depth});
}

// ---------------------------------------------------------------------------
// ScopedSpan

ScopedSpan::ScopedSpan(Registry* registry, std::string name)
    : registry_(registry), name_(std::move(name)) {
  if (!registry_) return;
  depth_ = tls_span_depth++;
  start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!registry_) return;
  --tls_span_depth;
  registry_->record_span(std::move(name_), start_ns_, now_ns() - start_ns_, depth_);
}

// ---------------------------------------------------------------------------
// Enable switch

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Export

namespace {

void write_counters_object(JsonWriter& w, const std::vector<CounterValue>& counters) {
  w.begin_object();
  for (const auto& c : counters) w.key(c.name).value(c.value);
  w.end_object();
}

void write_gauges_object(JsonWriter& w, const std::vector<GaugeValue>& gauges) {
  w.begin_object();
  for (const auto& g : gauges) w.key(g.name).value(g.value);
  w.end_object();
}

void write_histograms_object(JsonWriter& w, const std::vector<HistogramValue>& histograms) {
  w.begin_object();
  for (const auto& h : histograms) {
    w.key(h.name).begin_object();
    w.key("bounds").begin_array();
    for (const std::uint64_t b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.end_object();
  }
  w.end_object();
}

std::uint64_t min_start(const std::vector<SpanRecord>& spans) {
  std::uint64_t origin = ~std::uint64_t{0};
  for (const auto& s : spans) origin = std::min(origin, s.start_ns);
  return spans.empty() ? 0 : origin;
}

}  // namespace

void write_telemetry_json(std::ostream& os, const Registry& registry,
                          std::string_view name, const TelemetryJsonOptions& options) {
  const Snapshot det = registry.snapshot(Plane::kDeterministic);
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kTelemetrySchema);
  w.key("name").value(name);
  w.key("counters");
  write_counters_object(w, det.counters);
  w.key("histograms");
  write_histograms_object(w, det.histograms);
  if (!det.gauges.empty()) {
    w.key("gauges");
    write_gauges_object(w, det.gauges);
  }
  if (options.include_process) {
    const Snapshot proc = registry.snapshot(Plane::kProcess);
    w.key("process").begin_object();
    w.key("counters");
    write_counters_object(w, proc.counters);
    if (!proc.gauges.empty()) {
      w.key("gauges");
      write_gauges_object(w, proc.gauges);
    }
    if (!proc.histograms.empty()) {
      w.key("histograms");
      write_histograms_object(w, proc.histograms);
    }
    w.end_object();
  }
  if (options.include_spans) {
    const std::vector<SpanRecord> spans = registry.spans();
    const std::uint64_t origin = min_start(spans);
    w.key("spans").begin_array();
    for (const auto& s : spans) {
      w.begin_object();
      w.key("name").value(s.name);
      w.key("start_ns").value(s.start_ns - origin);
      w.key("dur_ns").value(s.dur_ns);
      w.key("tid").value(s.tid);
      w.key("depth").value(s.depth);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  os << "\n";
}

void write_chrome_trace(std::ostream& os, const Registry& registry) {
  const std::vector<SpanRecord> spans = registry.spans();
  const std::uint64_t origin = min_start(spans);
  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const auto& s : spans) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("cat").value("dtr");
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(s.start_ns - origin) / 1e3);
    w.key("dur").value(static_cast<double>(s.dur_ns) / 1e3);
    w.key("pid").value(1);
    w.key("tid").value(s.tid);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

}  // namespace dtr::telemetry
