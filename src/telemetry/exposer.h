#pragma once

/// Live metrics exposer: Prometheus text-format rendering of a telemetry
/// Registry plus a minimal poll-based HTTP listener that serves it — the
/// pull-model half of ROADMAP item 2's streaming front end. No dependencies
/// beyond POSIX sockets; one background thread, one connection at a time
/// (scrapes are rare and the response is small).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "telemetry/telemetry.h"

namespace dtr::telemetry {

/// Renders both planes of `registry` in Prometheus text exposition format
/// 0.0.4: counters as `dtr_<name>{plane="det|process"}` counter families,
/// gauges as gauges, histograms as cumulative `_bucket{le=...}` series with
/// `+Inf`, `_sum`, and `_count`. Metric names are the registry names with
/// non-alphanumeric characters mapped to '_' and a `dtr_` prefix.
std::string render_prometheus(const Registry& registry);

/// Serves `render_prometheus(registry)` over HTTP on 127.0.0.1:`port`
/// (port 0 binds an ephemeral port — read it back via port()). The listener
/// thread poll()s with a short timeout so stop()/destruction never hangs on
/// an idle socket. Every request gets the full current rendering regardless
/// of method or path; errors while serving a connection are swallowed (a
/// broken scrape must never take down the run).
class MetricsExposer {
 public:
  /// Throws std::runtime_error when the socket cannot be bound.
  explicit MetricsExposer(const Registry& registry, std::uint16_t port);
  ~MetricsExposer();

  MetricsExposer(const MetricsExposer&) = delete;
  MetricsExposer& operator=(const MetricsExposer&) = delete;

  /// The bound port (the ephemeral one when constructed with port 0).
  std::uint16_t port() const { return port_; }

  /// Idempotent; joins the listener thread.
  void stop();

 private:
  void serve();

  const Registry& registry_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace dtr::telemetry
