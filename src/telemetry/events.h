#pragma once

/// Streaming progress events: the front end the PR-7 registry was missing.
/// While a run is alive, instrumented code publishes typed events — optimizer
/// iteration records, campaign cell heartbeats, sweep progress, registry
/// snapshot deltas — onto a bounded MPSC ring (EventBus) that a consumer
/// drains into a schema-versioned `dtr.events.v1` JSONL sink.
///
/// Events carry the same two-plane contract as the registry:
///
///  - Plane::kDeterministic — iteration-indexed records with NO wall-clock
///    fields, byte-identical for any worker/thread shape. Producers publish
///    them on the calling thread in deterministic order (the LocalSearch
///    accept-hook contract), and the campaign engine gives each cell its own
///    bus, drained into the sink in campaign order after the parallel
///    barrier — exactly the per-cell-registry pattern.
///  - Plane::kProcess — timestamped heartbeats, progress ticks, and drop
///    counts. Excluded from golden diffs (`"plane":"process"` lines are
///    filtered out by the CI gate).
///
/// Overflow never blocks a producer: publish() on a full ring bumps an atomic
/// drop counter and returns false; the drain side reports the total as a
/// process-plane `drops` event so lossy streams are visible, not silent.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.h"

namespace dtr::telemetry {

inline constexpr std::string_view kEventsSchema = "dtr.events.v1";

enum class EventKind : std::uint8_t {
  kSchema,        ///< det: stream header carrying the schema version
  kPhaseStart,    ///< det: optimizer phase began (label = phase name)
  kPhaseEnd,      ///< det: optimizer phase ended (label, iteration/evaluation totals)
  kIteration,     ///< det: one accepted move / restart adoption of the search
  kCellStart,     ///< process: campaign cell heartbeat (label = cell id)
  kCellFinish,    ///< process: campaign cell heartbeat (label = cell id)
  kProgress,      ///< process: sweep progress, `done` of `total` units
  kCounterDelta,  ///< process: registry snapshot delta (label = counter name)
  kDrops,         ///< process: ring-overflow total emitted by the drain side
};

std::string_view to_string(EventKind kind);

/// One typed progress event. A single flat struct (not a variant) keeps the
/// ring slots trivially reusable; writers emit only the fields meaningful for
/// the kind. `wall_ms` stays 0 for deterministic-plane events by construction.
struct Event {
  EventKind kind = EventKind::kSchema;
  Plane plane = Plane::kDeterministic;
  std::string label;               ///< phase name / cell id / counter name
  std::uint64_t iteration = 0;     ///< kIteration/kPhaseEnd: search iteration index
  std::uint64_t evaluations = 0;   ///< kIteration/kPhaseEnd: objective evaluations so far
  std::int64_t link = -1;          ///< kIteration: changed link, -1 = restart/none
  double cost_lambda = 0.0;        ///< kIteration: incumbent cost after the move
  double cost_phi = 0.0;
  bool restart = false;            ///< kIteration: restart adoption, not a probe accept
  std::uint64_t done = 0;          ///< kProgress: units finished
  std::uint64_t total = 0;         ///< kProgress: units overall
  std::uint64_t value = 0;         ///< kCounterDelta: counter increment; kDrops: total
  std::uint64_t wall_ms = 0;       ///< process plane only: ms since an arbitrary epoch
};

/// Bounded multi-producer single-consumer ring (Vyukov-style sequence-numbered
/// slots). publish() is wait-free apart from the CAS loop; a full ring drops
/// the event (atomic drop count) instead of blocking the search hot path.
/// drain() must be called from one thread at a time.
class EventBus {
 public:
  /// Capacity is rounded up to a power of two; default holds a full smoke
  /// run's iteration records with headroom.
  explicit EventBus(std::size_t capacity = 1 << 16);

  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Enqueues a copy of `e`. Returns false (and counts a drop) when full.
  bool publish(Event e);

  /// Removes and returns every event currently in the ring, in FIFO order.
  std::vector<Event> drain();

  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::uint64_t published() const { return published_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq;
    Event event;
  };

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> published_{0};
};

/// Serializes one event as a single compact JSON line (no trailing newline):
/// insertion-ordered keys, shortest-round-trip doubles — deterministic-plane
/// lines are byte-stable across shapes because the fields are.
std::string event_json_line(const Event& e);

/// Appends events to `os` as `dtr.events.v1` JSONL, one line each.
/// `write_events_header` emits the deterministic schema line that starts
/// every stream.
void write_events_header(std::ostream& os);
void write_events_jsonl(std::ostream& os, const std::vector<Event>& events);

/// Convenience producers --------------------------------------------------

/// Publishes a process-plane event stamped with wall_ms (milliseconds since
/// the first call in this process — monotonic, not absolute). Null bus = no-op.
void publish_process(EventBus* bus, Event e);

/// Publishes a deterministic-plane event (asserts wall_ms stays 0). Null bus
/// = no-op.
void publish_deterministic(EventBus* bus, Event e);

/// Emits one kCounterDelta event per deterministic counter whose value in
/// `now` exceeds its value in `before` (process plane: the snapshot cadence
/// is time-driven even though the counters are deterministic).
void publish_snapshot_delta(EventBus* bus, const Snapshot& before, const Snapshot& now);

}  // namespace dtr::telemetry
