#include "telemetry/exposer.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace dtr::telemetry {

namespace {

std::string prometheus_name(std::string_view name) {
  std::string out = "dtr_";
  for (const char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  return out;
}

const char* plane_label(Plane plane) {
  return plane == Plane::kDeterministic ? "det" : "process";
}

void render_plane(std::string& out, const Snapshot& snap, Plane plane) {
  const char* label = plane_label(plane);
  for (const CounterValue& c : snap.counters) {
    const std::string name = prometheus_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + "{plane=\"" + label + "\"} " + std::to_string(c.value) + "\n";
  }
  for (const GaugeValue& g : snap.gauges) {
    const std::string name = prometheus_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + "{plane=\"" + label + "\"} " + std::to_string(g.value) + "\n";
  }
  for (const HistogramValue& h : snap.histograms) {
    const std::string name = prometheus_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += name + "_bucket{plane=\"" + label + "\",le=\"" +
             std::to_string(h.bounds[i]) + "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{plane=\"" + label + "\",le=\"+Inf\"} " +
           std::to_string(h.count) + "\n";
    out += name + "_sum{plane=\"" + label + "\"} " + std::to_string(h.sum) + "\n";
    out += name + "_count{plane=\"" + label + "\"} " + std::to_string(h.count) + "\n";
  }
}

}  // namespace

std::string render_prometheus(const Registry& registry) {
  std::string out;
  render_plane(out, registry.snapshot(Plane::kDeterministic), Plane::kDeterministic);
  render_plane(out, registry.snapshot(Plane::kProcess), Plane::kProcess);
  return out;
}

MetricsExposer::MetricsExposer(const Registry& registry, std::uint16_t port)
    : registry_(registry) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("MetricsExposer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 4) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("MetricsExposer: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve(); });
}

MetricsExposer::~MetricsExposer() { stop(); }

void MetricsExposer::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsExposer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Drain whatever request arrived (one read is enough for a scrape line;
    // we answer every method/path identically), then write the rendering.
    char buf[1024];
    (void)::read(conn, buf, sizeof(buf));
    const std::string body = render_prometheus(registry_);
    const std::string response =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n\r\n" + body;
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n = ::write(conn, response.data() + sent, response.size() - sent);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

}  // namespace dtr::telemetry
