#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "traffic/traffic_matrix.h"

namespace dtr {

/// Gravity-style synthetic traffic model (the Fortz–Thorup family used by the
/// paper's reference [13]): demand(s,t) = alpha * o_s * d_t * c_{s,t} *
/// exp(-dist(s,t) / (2 * Delta)), with o, d, c uniform in [0,1] and Delta the
/// largest inter-node distance. Every ordered pair receives strictly positive
/// demand, matching "each SD pair generates delay-sensitive traffic".
struct GravityParams {
  double alpha = 1.0;
  /// Distance-decay strength multiplier; 1.0 reproduces exp(-d/2Delta).
  double decay = 1.0;
  std::uint64_t seed = 1;
};

TrafficMatrix make_gravity_traffic(const Graph& g, const GravityParams& params);

}  // namespace dtr
