#include "traffic/gravity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace dtr {

TrafficMatrix make_gravity_traffic(const Graph& g, const GravityParams& params) {
  const std::size_t n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("make_gravity_traffic: need >= 2 nodes");
  if (!(params.alpha > 0.0)) throw std::invalid_argument("make_gravity_traffic: alpha");

  Rng rng(params.seed);
  std::vector<double> origin(n), destination(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Draws floored away from zero so every pair has positive demand.
    origin[i] = std::max(rng.uniform(), 1e-3);
    destination[i] = std::max(rng.uniform(), 1e-3);
  }

  double delta = 0.0;
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      delta = std::max(delta, euclidean_distance(g.position(u), g.position(v)));
  if (delta <= 0.0) delta = 1.0;  // co-located degenerate layouts

  TrafficMatrix tm(n);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const double pair_factor = std::max(rng.uniform(), 1e-3);
      const double dist = euclidean_distance(g.position(s), g.position(t));
      const double decay = std::exp(-params.decay * dist / (2.0 * delta));
      tm.set(s, t, params.alpha * origin[s] * destination[t] * pair_factor * decay);
    }
  }
  return tm;
}

}  // namespace dtr
