#pragma once

#include "graph/graph.h"
#include "traffic/traffic_matrix.h"

namespace dtr {

/// Load-level calibration (Sec. V-A: "different traffic patterns and
/// intensities used to generate heterogeneous load levels", e.g. average
/// utilization 0.43 or maximum utilization 0.74/0.90).
///
/// Utilization depends on routing, which is what the optimizer searches; as a
/// deterministic reference we scale demands so the target holds under
/// *min-hop ECMP routing* of the total demand (unit weights). The optimized
/// routings land close to this reference (asserted in integration tests).
struct UtilizationTarget {
  enum class Kind : unsigned char { kAverage, kMax };
  Kind kind = Kind::kAverage;
  double value = 0.43;
};

/// Scales `tm` in place; returns the factor applied.
double scale_to_utilization(const Graph& g, TrafficMatrix& tm,
                            const UtilizationTarget& target);

/// Scales both classes by the common factor that calibrates their sum.
double scale_to_utilization(const Graph& g, ClassedTraffic& traffic,
                            const UtilizationTarget& target);

/// Utilization of the total demand under min-hop ECMP routing (diagnostic).
struct UtilizationSummary {
  double average = 0.0;
  double max = 0.0;
};
UtilizationSummary min_hop_utilization(const Graph& g, const TrafficMatrix& tm);

}  // namespace dtr
