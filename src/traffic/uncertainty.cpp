#include "traffic/uncertainty.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dtr {

TrafficMatrix apply_gaussian_fluctuation(const TrafficMatrix& base,
                                         const GaussianFluctuation& model, Rng& rng) {
  if (model.epsilon < 0.0)
    throw std::invalid_argument("apply_gaussian_fluctuation: negative epsilon");
  TrafficMatrix out(base.num_nodes());
  base.for_each_demand([&](NodeId s, NodeId t, double v) {
    const double fluctuated = v + rng.normal(0.0, model.epsilon * v);
    out.set(s, t, std::max(fluctuated, 0.0));
  });
  return out;
}

ClassedTraffic apply_gaussian_fluctuation(const ClassedTraffic& base,
                                          const GaussianFluctuation& model, Rng& rng) {
  return {apply_gaussian_fluctuation(base.delay, model, rng),
          apply_gaussian_fluctuation(base.throughput, model, rng)};
}

ClassedTraffic apply_hot_spot(const ClassedTraffic& base, const HotSpotParams& params,
                              Rng& rng, HotSpotInstance* instance_out) {
  const std::size_t n = base.delay.num_nodes();
  if (n < 2) throw std::invalid_argument("apply_hot_spot: empty matrix");
  if (params.server_fraction <= 0.0 || params.server_fraction > 1.0 ||
      params.client_fraction <= 0.0 || params.client_fraction > 1.0)
    throw std::invalid_argument("apply_hot_spot: fractions outside (0,1]");
  if (!(params.scale_min > 1.0) || params.scale_max < params.scale_min)
    throw std::invalid_argument("apply_hot_spot: scale range (must be > 1)");

  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  std::shuffle(nodes.begin(), nodes.end(), rng.engine());

  const std::size_t num_servers =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(params.server_fraction * n)));
  const std::size_t num_clients = std::min(
      n - num_servers,
      std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(params.client_fraction * n))));

  HotSpotInstance instance;
  instance.servers.assign(nodes.begin(), nodes.begin() + num_servers);
  ClassedTraffic out = base;
  for (std::size_t i = 0; i < num_clients; ++i) {
    const NodeId client = nodes[num_servers + i];
    const NodeId server = instance.servers[rng.uniform_index(num_servers)];
    instance.client_server.emplace_back(client, server);

    const NodeId src = params.direction == HotSpotParams::Direction::kUpload ? client : server;
    const NodeId dst = params.direction == HotSpotParams::Direction::kUpload ? server : client;
    const double nu = rng.uniform(params.scale_min, params.scale_max);
    const double mu = rng.uniform(params.scale_min, params.scale_max);
    out.delay.set(src, dst, base.delay.at(src, dst) * nu);
    out.throughput.set(src, dst, base.throughput.at(src, dst) * mu);
  }
  if (instance_out != nullptr) *instance_out = std::move(instance);
  return out;
}

}  // namespace dtr
