#include "traffic/traffic_matrix.h"

#include <stdexcept>

namespace dtr {

TrafficMatrix::TrafficMatrix(std::size_t num_nodes)
    : n_(num_nodes), data_(num_nodes * num_nodes, 0.0) {}

void TrafficMatrix::set(NodeId s, NodeId t, double volume) {
  if (s >= n_ || t >= n_) throw std::out_of_range("TrafficMatrix::set: node id");
  if (s == t) throw std::invalid_argument("TrafficMatrix: diagonal demand");
  if (volume < 0.0) throw std::invalid_argument("TrafficMatrix: negative demand");
  data_[index(s, t)] = volume;
}

void TrafficMatrix::add(NodeId s, NodeId t, double volume) {
  set(s, t, at(s, t) + volume);
}

double TrafficMatrix::total() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

std::size_t TrafficMatrix::num_positive_demands() const {
  std::size_t count = 0;
  for (double v : data_)
    if (v > 0.0) ++count;
  return count;
}

void TrafficMatrix::scale(double factor) {
  if (factor < 0.0) throw std::invalid_argument("TrafficMatrix::scale: negative factor");
  for (double& v : data_) v *= factor;
}

TrafficMatrix TrafficMatrix::scaled(double factor) const {
  TrafficMatrix copy = *this;
  copy.scale(factor);
  return copy;
}

void TrafficMatrix::remove_node_traffic(NodeId node) {
  if (node >= n_) throw std::out_of_range("TrafficMatrix::remove_node_traffic");
  for (NodeId other = 0; other < n_; ++other) {
    if (other == node) continue;
    data_[index(node, other)] = 0.0;
    data_[index(other, node)] = 0.0;
  }
}

TrafficMatrix ClassedTraffic::combined() const {
  TrafficMatrix sum(delay.num_nodes());
  delay.for_each_demand([&](NodeId s, NodeId t, double v) { sum.add(s, t, v); });
  throughput.for_each_demand([&](NodeId s, NodeId t, double v) { sum.add(s, t, v); });
  return sum;
}

ClassedTraffic split_by_class(const TrafficMatrix& total, double delay_fraction) {
  if (delay_fraction < 0.0 || delay_fraction > 1.0)
    throw std::invalid_argument("split_by_class: fraction outside [0,1]");
  ClassedTraffic out{TrafficMatrix(total.num_nodes()), TrafficMatrix(total.num_nodes())};
  total.for_each_demand([&](NodeId s, NodeId t, double v) {
    out.delay.set(s, t, v * delay_fraction);
    out.throughput.set(s, t, v * (1.0 - delay_fraction));
  });
  return out;
}

}  // namespace dtr
