#pragma once

#include <cstdint>
#include <vector>

#include "traffic/traffic_matrix.h"
#include "util/rng.h"

namespace dtr {

/// Traffic-uncertainty models of Sec. V-F: a routing is computed against the
/// *base* matrices but the network carries *actual* matrices drawn from one
/// of these models.

/// Random fluctuation: r~(s,t) = r(s,t) + N(0, epsilon * r(s,t)), clamped at
/// zero. With epsilon = 0.2 actual intensities fluctuate by roughly +/-40%
/// with ~95% likelihood (the paper's setting).
struct GaussianFluctuation {
  double epsilon = 0.2;
};

TrafficMatrix apply_gaussian_fluctuation(const TrafficMatrix& base,
                                         const GaussianFluctuation& model, Rng& rng);

ClassedTraffic apply_gaussian_fluctuation(const ClassedTraffic& base,
                                          const GaussianFluctuation& model, Rng& rng);

/// Hot-spot surges: a few "server" nodes see their traffic to/from assigned
/// "client" nodes scaled by independent factors nu, mu ~ U[scale_min,
/// scale_max] per pair and class (100-500% surges at the paper defaults).
struct HotSpotParams {
  enum class Direction {
    kUpload,    ///< client -> server demands surge
    kDownload,  ///< server -> client demands surge
  };
  Direction direction = Direction::kDownload;
  double server_fraction = 0.1;
  double client_fraction = 0.5;
  double scale_min = 2.0;
  double scale_max = 6.0;
};

/// The sampled hot-spot instance (exposed for logging / assertions).
struct HotSpotInstance {
  std::vector<NodeId> servers;
  /// client_server[i] = (client node, its assigned server node)
  std::vector<std::pair<NodeId, NodeId>> client_server;
};

/// Draws servers/clients and returns the perturbed matrices.
ClassedTraffic apply_hot_spot(const ClassedTraffic& base, const HotSpotParams& params,
                              Rng& rng, HotSpotInstance* instance_out = nullptr);

}  // namespace dtr
