#include "traffic/scaling.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "routing/route_state.h"

namespace dtr {

UtilizationSummary min_hop_utilization(const Graph& g, const TrafficMatrix& tm) {
  const std::vector<double> unit_costs(g.num_arcs(), 1.0);
  const ClassRouting routing(g, unit_costs, tm, {});
  UtilizationSummary summary;
  if (g.num_arcs() == 0) return summary;
  double sum = 0.0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const double u = routing.arc_load(a) / g.arc(a).capacity;
    sum += u;
    summary.max = std::max(summary.max, u);
  }
  summary.average = sum / static_cast<double>(g.num_arcs());
  return summary;
}

double scale_to_utilization(const Graph& g, TrafficMatrix& tm,
                            const UtilizationTarget& target) {
  if (!(target.value > 0.0))
    throw std::invalid_argument("scale_to_utilization: target must be > 0");
  const UtilizationSummary current = min_hop_utilization(g, tm);
  const double reference =
      target.kind == UtilizationTarget::Kind::kAverage ? current.average : current.max;
  if (!(reference > 0.0))
    throw std::invalid_argument("scale_to_utilization: traffic matrix routes no load");
  const double factor = target.value / reference;  // utilization is linear in demand
  tm.scale(factor);
  return factor;
}

double scale_to_utilization(const Graph& g, ClassedTraffic& traffic,
                            const UtilizationTarget& target) {
  TrafficMatrix total = traffic.combined();
  const double factor = scale_to_utilization(g, total, target);
  traffic.delay.scale(factor);
  traffic.throughput.scale(factor);
  return factor;
}

}  // namespace dtr
