#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace dtr {

/// Dense source-destination demand matrix (volumes in Mbps). Diagonal is
/// always zero.
class TrafficMatrix {
 public:
  TrafficMatrix() = default;
  explicit TrafficMatrix(std::size_t num_nodes);

  std::size_t num_nodes() const { return n_; }

  double at(NodeId s, NodeId t) const { return data_[index(s, t)]; }
  void set(NodeId s, NodeId t, double volume);
  void add(NodeId s, NodeId t, double volume);

  /// Sum of all demands.
  double total() const;

  /// Number of SD pairs with strictly positive demand.
  std::size_t num_positive_demands() const;

  /// Multiplies every demand by `factor` (>= 0).
  void scale(double factor);

  /// Returns a copy scaled by `factor`.
  TrafficMatrix scaled(double factor) const;

  /// Zeroes every demand sourced or sunk at `node` (node-failure semantics:
  /// "the failure of a node triggers ... the removal of all the traffic it
  /// originates", Sec. V-F; we also remove traffic destined to it since it
  /// can no longer be delivered).
  void remove_node_traffic(NodeId node);

  /// Invokes fn(s, t, volume) for every strictly positive demand.
  template <typename Fn>
  void for_each_demand(Fn&& fn) const {
    for (NodeId s = 0; s < n_; ++s)
      for (NodeId t = 0; t < n_; ++t)
        if (data_[index(s, t)] > 0.0) fn(s, t, data_[index(s, t)]);
  }

 private:
  std::size_t index(NodeId s, NodeId t) const { return static_cast<std::size_t>(s) * n_ + t; }
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// The two traffic classes of the DTR model (Sec. III).
struct ClassedTraffic {
  TrafficMatrix delay;       ///< delay-sensitive demands R_D
  TrafficMatrix throughput;  ///< throughput-sensitive demands R_T

  /// Elementwise sum (total load x_l drivers share FIFO queues).
  TrafficMatrix combined() const;
};

/// Splits a total matrix into the two classes; `delay_fraction` of every
/// demand is delay-sensitive (paper default: 0.30, and every SD pair
/// generates delay-sensitive traffic).
ClassedTraffic split_by_class(const TrafficMatrix& total, double delay_fraction);

}  // namespace dtr
