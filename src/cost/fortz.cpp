#include "cost/fortz.h"

#include <stdexcept>

namespace dtr {

namespace {

struct Segment {
  double utilization;  ///< breakpoint where this slope starts
  double slope;
};

constexpr Segment kSegments[] = {
    {0.0, 1.0}, {1.0 / 3.0, 3.0}, {2.0 / 3.0, 10.0},
    {9.0 / 10.0, 70.0}, {1.0, 500.0}, {11.0 / 10.0, kFortzMaxSlope},
};

}  // namespace

double fortz_cost(double load_mbps, double capacity_mbps) {
  if (!(capacity_mbps > 0.0)) throw std::invalid_argument("fortz_cost: capacity");
  if (load_mbps < 0.0) throw std::invalid_argument("fortz_cost: negative load");
  const double u = load_mbps / capacity_mbps;
  double cost = 0.0;
  for (std::size_t i = 0; i < std::size(kSegments); ++i) {
    const double seg_start = kSegments[i].utilization;
    if (u <= seg_start) break;
    const double seg_end =
        (i + 1 < std::size(kSegments)) ? kSegments[i + 1].utilization : u;
    const double covered = (u < seg_end ? u : seg_end) - seg_start;
    cost += kSegments[i].slope * covered * capacity_mbps;
  }
  return cost;
}

double fortz_derivative(double load_mbps, double capacity_mbps) {
  if (!(capacity_mbps > 0.0)) throw std::invalid_argument("fortz_derivative: capacity");
  if (load_mbps < 0.0) throw std::invalid_argument("fortz_derivative: negative load");
  const double u = load_mbps / capacity_mbps;
  double slope = kSegments[0].slope;
  for (const Segment& s : kSegments)
    if (u >= s.utilization) slope = s.slope;
  return slope;
}

}  // namespace dtr
