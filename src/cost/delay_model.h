#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dtr {

/// Link-delay model of Eq. (1):
///
///   D_l = p_l                                     if x_l / C_l <= mu    (1a)
///   D_l = kappa/C_l * (x_l/(C_l - x_l) + 1) + p_l otherwise             (1b)
///
/// kappa is the average packet size; (1b) is the M/M/1 sojourn-time
/// approximation (queueing + transmission). Below utilization mu queueing is
/// treated as negligible relative to propagation (high-speed backbone
/// assumption; paper uses mu = 0.95). To avoid the 1/(C-x) blow-up, the
/// x/(C-x) term is replaced by its tangent line for x/C >= 0.99 (footnote 3),
/// which keeps D continuous, increasing and finite even for x > C.
struct DelayModelParams {
  double packet_size_bytes = 1500.0;  ///< kappa
  double utilization_threshold = 0.95;  ///< mu
  double linearization_utilization = 0.99;
};

/// Queueing + transmission component of (1b) in ms (zero load -> kappa/C).
/// Exposed separately for unit tests and diagnostics.
double queueing_delay_ms(double load_mbps, double capacity_mbps,
                         const DelayModelParams& params);

/// Full link delay D_l in ms.
double link_delay_ms(double load_mbps, double capacity_mbps, double prop_delay_ms,
                     const DelayModelParams& params);

/// Dirty-arc index for the incremental end-to-end delay DP: records, while
/// the no-failure base DP runs, which destinations read which arc's delay
/// (the alive tight arcs between reachable nodes of the destination's ECMP
/// DAG). Inverted into an arc -> destinations CSR, it answers the per-failure
/// question "whose DP inputs did these delay changes touch?" in time
/// proportional to the change, so untouched destinations skip the DP and
/// replay the base result verbatim.
class DelayDpIndex {
 public:
  /// Drops all recorded pairs and sizes the index for `num_arcs`.
  void reset(std::size_t num_arcs);

  /// Records that destination t's DP reads arc a's delay. Each (t, a) pair is
  /// recorded at most once (the DP visits every arc of a DAG once).
  void add(NodeId t, ArcId a) {
    pair_arc_.push_back(a);
    pair_dest_.push_back(t);
  }

  /// Builds the arc -> destinations CSR from the recorded pairs. Must be
  /// called once after the base DP finishes and before `users`.
  void finalize();

  bool ready() const { return !offset_.empty(); }

  /// Destinations whose DP reads arc a's delay (ascending order).
  std::span<const NodeId> users(ArcId a) const {
    return {user_.data() + offset_[a], offset_[a + 1] - offset_[a]};
  }

 private:
  std::size_t num_arcs_ = 0;
  std::vector<ArcId> pair_arc_;
  std::vector<NodeId> pair_dest_;
  std::vector<std::size_t> offset_;  ///< num_arcs + 1 once finalized
  std::vector<NodeId> user_;
};

/// Marks the destinations whose delay DP reads an arc whose delay changed:
/// for every arc with bits(delay_ms[a]) != bits(base_delay_ms[a]), sets
/// dirty[t] = 1 for each destination the index recorded for a. The
/// comparison is BITWISE, not ==: bit-equal inputs are what guarantee the
/// skipped DP would have produced bit-equal outputs.
void mark_dirty_destinations(const DelayDpIndex& index,
                             std::span<const double> base_delay_ms,
                             std::span<const double> delay_ms,
                             std::span<std::uint8_t> dirty);

}  // namespace dtr
