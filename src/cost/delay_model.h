#pragma once

namespace dtr {

/// Link-delay model of Eq. (1):
///
///   D_l = p_l                                     if x_l / C_l <= mu    (1a)
///   D_l = kappa/C_l * (x_l/(C_l - x_l) + 1) + p_l otherwise             (1b)
///
/// kappa is the average packet size; (1b) is the M/M/1 sojourn-time
/// approximation (queueing + transmission). Below utilization mu queueing is
/// treated as negligible relative to propagation (high-speed backbone
/// assumption; paper uses mu = 0.95). To avoid the 1/(C-x) blow-up, the
/// x/(C-x) term is replaced by its tangent line for x/C >= 0.99 (footnote 3),
/// which keeps D continuous, increasing and finite even for x > C.
struct DelayModelParams {
  double packet_size_bytes = 1500.0;  ///< kappa
  double utilization_threshold = 0.95;  ///< mu
  double linearization_utilization = 0.99;
};

/// Queueing + transmission component of (1b) in ms (zero load -> kappa/C).
/// Exposed separately for unit tests and diagnostics.
double queueing_delay_ms(double load_mbps, double capacity_mbps,
                         const DelayModelParams& params);

/// Full link delay D_l in ms.
double link_delay_ms(double load_mbps, double capacity_mbps, double prop_delay_ms,
                     const DelayModelParams& params);

}  // namespace dtr
