#pragma once

#include <string>

namespace dtr {

/// The global cost K := <Lambda, Phi> of Sec. III — delay-class SLA cost and
/// throughput-class congestion cost.
struct CostPair {
  double lambda = 0.0;
  double phi = 0.0;
};

/// Lexicographic ordering over CostPair: K1 > K2 iff Lambda1 > Lambda2, or
/// Lambda1 == Lambda2 and Phi1 > Phi2. Delay-sensitive traffic takes
/// precedence; a routing only "wins" on Phi when it ties on Lambda.
///
/// Comparisons use an absolute+relative tolerance so that floating-point
/// noise in Lambda (sums of B1/B2 penalties) does not flip the Phi
/// tie-breaking, and so constraint (5) "Lambda_normal = Lambda*" is testable.
class LexicographicOrder {
 public:
  explicit LexicographicOrder(double abs_tol = 1e-6, double rel_tol = 1e-9)
      : abs_tol_(abs_tol), rel_tol_(rel_tol) {}

  bool values_equal(double a, double b) const;

  /// Strictly better (smaller) in the lexicographic sense.
  bool less(const CostPair& a, const CostPair& b) const;

  bool equal(const CostPair& a, const CostPair& b) const;

  /// a improves on b by at least `fraction` (relative), on Lambda first, else
  /// on Phi at equal Lambda. Drives the c% stopping criterion of Sec. IV-A.
  bool improves_by_fraction(const CostPair& a, const CostPair& b, double fraction) const;

  double abs_tol() const { return abs_tol_; }
  double rel_tol() const { return rel_tol_; }

 private:
  double abs_tol_;
  double rel_tol_;
};

std::string to_string(const CostPair& k);

}  // namespace dtr
