#pragma once

#include <span>

namespace dtr {

/// SLA cost of Eq. (2) for one SD pair:
///
///   Lambda(s,t) = 0                                if xi(s,t) <= theta  (2a)
///   Lambda(s,t) = B1 + B2 * (xi(s,t) - theta)      otherwise            (2b)
///
/// B1 is a fixed penalty per violated pair; B2 scales with the excess delay.
/// Captures the threshold sensitivity of real-time traffic (e.g. VoIP).
struct SlaParams {
  double theta_ms = 25.0;  ///< end-to-end delay bound (U.S. coast-to-coast)
  double b1 = 100.0;
  double b2 = 1.0;  ///< per excess millisecond
};

bool sla_violated(double delay_ms, const SlaParams& params);

double sla_cost(double delay_ms, const SlaParams& params);

/// Eq. (2) summed over a per-pair delay vector (the evaluator's sd_delay
/// layout: entries < 0 mean "no demand" and are skipped; +infinity marks a
/// disconnected pair and is REPLACED in place by `disconnect_delay_ms`, then
/// charged like any other delay). One shared accumulation routine so the
/// full, incremental, and cached evaluation paths add the exact same float
/// terms in the exact same order — the byte-identity contract leans on it.
struct SlaAggregate {
  double lambda = 0.0;
  int violations = 0;
};

SlaAggregate accumulate_sla_cost(std::span<double> sd_delay_ms, const SlaParams& params,
                                 double disconnect_delay_ms);

}  // namespace dtr
