#pragma once

namespace dtr {

/// SLA cost of Eq. (2) for one SD pair:
///
///   Lambda(s,t) = 0                                if xi(s,t) <= theta  (2a)
///   Lambda(s,t) = B1 + B2 * (xi(s,t) - theta)      otherwise            (2b)
///
/// B1 is a fixed penalty per violated pair; B2 scales with the excess delay.
/// Captures the threshold sensitivity of real-time traffic (e.g. VoIP).
struct SlaParams {
  double theta_ms = 25.0;  ///< end-to-end delay bound (U.S. coast-to-coast)
  double b1 = 100.0;
  double b2 = 1.0;  ///< per excess millisecond
};

bool sla_violated(double delay_ms, const SlaParams& params);

double sla_cost(double delay_ms, const SlaParams& params);

}  // namespace dtr
