#pragma once

namespace dtr {

/// Fortz–Thorup piecewise-linear congestion cost f(x_l) ("Internet traffic
/// engineering by optimizing OSPF weights", INFOCOM 2000), the paper's cost
/// function for throughput-sensitive traffic. f(0) = 0 and the derivative
/// climbs at utilization breakpoints {1/3, 2/3, 9/10, 1, 11/10}:
///
///   f'(x) = 1, 3, 10, 70, 500, 5000
///
/// It is convex and finite for any load (including overload), which is what
/// lets the robust search reason about post-failure congestion.
double fortz_cost(double load_mbps, double capacity_mbps);

/// The slope of f at the given load (right-continuous at breakpoints).
double fortz_derivative(double load_mbps, double capacity_mbps);

/// Slope applied to unroutable (disconnected) demand — the steepest segment,
/// equivalent to carrying the demand on a >110%-utilized virtual link.
inline constexpr double kFortzMaxSlope = 5000.0;

}  // namespace dtr
