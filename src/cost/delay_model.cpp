#include "cost/delay_model.h"

#include <stdexcept>

namespace dtr {

namespace {

/// kappa / C in milliseconds: bytes * 8 bits / (C Mbit/s) = microseconds*8,
/// i.e. bytes * 0.008 / C_mbps milliseconds.
double kappa_over_capacity_ms(double packet_size_bytes, double capacity_mbps) {
  return packet_size_bytes * 0.008 / capacity_mbps;
}

}  // namespace

double queueing_delay_ms(double load_mbps, double capacity_mbps,
                         const DelayModelParams& params) {
  if (!(capacity_mbps > 0.0)) throw std::invalid_argument("queueing_delay_ms: capacity");
  if (load_mbps < 0.0) throw std::invalid_argument("queueing_delay_ms: negative load");

  const double knee = params.linearization_utilization * capacity_mbps;
  double occupancy;  // the x/(C-x) term, linearized past the knee
  if (load_mbps < knee) {
    occupancy = load_mbps / (capacity_mbps - load_mbps);
  } else {
    // Tangent-line extension at x = knee: value u/(1-u), slope C/(C-x)^2.
    const double u = params.linearization_utilization;
    const double value_at_knee = u / (1.0 - u);
    const double slope_at_knee = capacity_mbps / ((capacity_mbps - knee) * (capacity_mbps - knee));
    occupancy = value_at_knee + slope_at_knee * (load_mbps - knee);
  }
  return kappa_over_capacity_ms(params.packet_size_bytes, capacity_mbps) * (occupancy + 1.0);
}

double link_delay_ms(double load_mbps, double capacity_mbps, double prop_delay_ms,
                     const DelayModelParams& params) {
  if (prop_delay_ms < 0.0) throw std::invalid_argument("link_delay_ms: negative delay");
  if (load_mbps / capacity_mbps <= params.utilization_threshold) return prop_delay_ms;  // (1a)
  return queueing_delay_ms(load_mbps, capacity_mbps, params) + prop_delay_ms;           // (1b)
}

}  // namespace dtr
