#include "cost/delay_model.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace dtr {

namespace {

/// kappa / C in milliseconds: bytes * 8 bits / (C Mbit/s) = microseconds*8,
/// i.e. bytes * 0.008 / C_mbps milliseconds.
double kappa_over_capacity_ms(double packet_size_bytes, double capacity_mbps) {
  return packet_size_bytes * 0.008 / capacity_mbps;
}

}  // namespace

double queueing_delay_ms(double load_mbps, double capacity_mbps,
                         const DelayModelParams& params) {
  if (!(capacity_mbps > 0.0)) throw std::invalid_argument("queueing_delay_ms: capacity");
  if (load_mbps < 0.0) throw std::invalid_argument("queueing_delay_ms: negative load");

  const double knee = params.linearization_utilization * capacity_mbps;
  double occupancy;  // the x/(C-x) term, linearized past the knee
  if (load_mbps < knee) {
    occupancy = load_mbps / (capacity_mbps - load_mbps);
  } else {
    // Tangent-line extension at x = knee: value u/(1-u), slope C/(C-x)^2.
    const double u = params.linearization_utilization;
    const double value_at_knee = u / (1.0 - u);
    const double slope_at_knee = capacity_mbps / ((capacity_mbps - knee) * (capacity_mbps - knee));
    occupancy = value_at_knee + slope_at_knee * (load_mbps - knee);
  }
  return kappa_over_capacity_ms(params.packet_size_bytes, capacity_mbps) * (occupancy + 1.0);
}

double link_delay_ms(double load_mbps, double capacity_mbps, double prop_delay_ms,
                     const DelayModelParams& params) {
  if (prop_delay_ms < 0.0) throw std::invalid_argument("link_delay_ms: negative delay");
  if (load_mbps / capacity_mbps <= params.utilization_threshold) return prop_delay_ms;  // (1a)
  return queueing_delay_ms(load_mbps, capacity_mbps, params) + prop_delay_ms;           // (1b)
}

void DelayDpIndex::reset(std::size_t num_arcs) {
  num_arcs_ = num_arcs;
  pair_arc_.clear();
  pair_dest_.clear();
  offset_.clear();
  user_.clear();
}

void DelayDpIndex::finalize() {
  if (ready()) throw std::logic_error("DelayDpIndex::finalize: already finalized");
  // Counting sort into the arc -> destinations CSR (stable, so each arc's
  // destination list comes out ascending).
  offset_.assign(num_arcs_ + 1, 0);
  for (const ArcId a : pair_arc_) ++offset_[a + 1];
  for (std::size_t a = 0; a < num_arcs_; ++a) offset_[a + 1] += offset_[a];
  user_.resize(pair_arc_.size());
  std::vector<std::size_t> cursor(offset_.begin(), offset_.end() - 1);
  for (std::size_t i = 0; i < pair_arc_.size(); ++i)
    user_[cursor[pair_arc_[i]]++] = pair_dest_[i];
}

void mark_dirty_destinations(const DelayDpIndex& index,
                             std::span<const double> base_delay_ms,
                             std::span<const double> delay_ms,
                             std::span<std::uint8_t> dirty) {
  if (base_delay_ms.size() != delay_ms.size())
    throw std::invalid_argument("mark_dirty_destinations: delay size mismatch");
  if (!index.ready())
    throw std::logic_error("mark_dirty_destinations: index not finalized");
  for (std::size_t a = 0; a < delay_ms.size(); ++a) {
    if (std::bit_cast<std::uint64_t>(delay_ms[a]) ==
        std::bit_cast<std::uint64_t>(base_delay_ms[a]))
      continue;
    for (const NodeId t : index.users(static_cast<ArcId>(a))) dirty[t] = 1;
  }
}

}  // namespace dtr
