#include "cost/cost_types.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dtr {

bool LexicographicOrder::values_equal(double a, double b) const {
  const double tol = abs_tol_ + rel_tol_ * std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= tol;
}

bool LexicographicOrder::less(const CostPair& a, const CostPair& b) const {
  if (values_equal(a.lambda, b.lambda)) {
    return !values_equal(a.phi, b.phi) && a.phi < b.phi;
  }
  return a.lambda < b.lambda;
}

bool LexicographicOrder::equal(const CostPair& a, const CostPair& b) const {
  return values_equal(a.lambda, b.lambda) && values_equal(a.phi, b.phi);
}

bool LexicographicOrder::improves_by_fraction(const CostPair& a, const CostPair& b,
                                              double fraction) const {
  if (!less(a, b)) return false;
  if (!values_equal(a.lambda, b.lambda)) {
    const double base = std::max(std::abs(b.lambda), abs_tol_);
    return (b.lambda - a.lambda) / base >= fraction;
  }
  const double base = std::max(std::abs(b.phi), abs_tol_);
  return (b.phi - a.phi) / base >= fraction;
}

std::string to_string(const CostPair& k) {
  std::ostringstream ss;
  ss << "<Lambda=" << k.lambda << ", Phi=" << k.phi << ">";
  return ss.str();
}

}  // namespace dtr
