#include "cost/sla.h"

namespace dtr {

bool sla_violated(double delay_ms, const SlaParams& params) {
  return delay_ms > params.theta_ms;
}

double sla_cost(double delay_ms, const SlaParams& params) {
  if (!sla_violated(delay_ms, params)) return 0.0;
  return params.b1 + params.b2 * (delay_ms - params.theta_ms);
}

}  // namespace dtr
