#include "cost/sla.h"

#include <limits>

namespace dtr {

bool sla_violated(double delay_ms, const SlaParams& params) {
  return delay_ms > params.theta_ms;
}

double sla_cost(double delay_ms, const SlaParams& params) {
  if (!sla_violated(delay_ms, params)) return 0.0;
  return params.b1 + params.b2 * (delay_ms - params.theta_ms);
}

SlaAggregate accumulate_sla_cost(std::span<double> sd_delay_ms, const SlaParams& params,
                                 double disconnect_delay_ms) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  SlaAggregate agg;
  for (double& d : sd_delay_ms) {
    if (d < 0.0) continue;                      // no demand
    if (d == kInf) d = disconnect_delay_ms;     // unreachable: charged, capped
    agg.lambda += sla_cost(d, params);
    if (sla_violated(d, params)) ++agg.violations;
  }
  return agg;
}

}  // namespace dtr
