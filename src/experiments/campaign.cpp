#include "experiments/campaign.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/metrics.h"
#include "graph/spf.h"
#include "routing/failures.h"
#include "scenarios/scenario_eval.h"
#include "scenarios/srlg.h"
#include "telemetry/events.h"
#include "telemetry/telemetry.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dtr::experiments {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

CellResult run_cell(const CampaignCell& cell, Effort effort, CellContext ctx,
                    telemetry::Registry* reg, telemetry::EventBus* bus) {
  const auto start = std::chrono::steady_clock::now();
  ctx.telemetry = reg;
  ctx.events = bus;
  CellResult result;
  result.id = cell.id;
  result.label = cell.spec.label();
  const auto heartbeat = [&](telemetry::EventKind kind) {
    telemetry::Event e;
    e.kind = kind;
    e.label = cell.id;
    telemetry::publish_process(bus, std::move(e));  // null-safe
  };
  heartbeat(telemetry::EventKind::kCellStart);
  try {
    // The span covers every rep; campaign.* counters count the WORK the
    // schedule was given, so they merge to the same totals for any shape.
    telemetry::ScopedSpan cell_span(reg, "cell:" + cell.id);
    if (reg != nullptr) {
      reg->counter("campaign.cells").add(1);
      reg->counter("campaign.reps").add(static_cast<std::uint64_t>(cell.repeats));
    }
    telemetry::Snapshot last_snapshot;
    for (int rep = 0; rep < cell.repeats; ++rep) {
      const std::uint64_t rep_seed =
          cell.spec.seed + static_cast<std::uint64_t>(rep) * cell.seed_stride;
      result.reps.push_back(cell.body ? cell.body(cell, effort, rep_seed, ctx)
                                      : standard_cell_rep(cell, effort, rep_seed, ctx));
      if (bus != nullptr) {
        telemetry::Event e;
        e.kind = telemetry::EventKind::kProgress;
        e.label = cell.id;
        e.done = static_cast<std::uint64_t>(rep + 1);
        e.total = static_cast<std::uint64_t>(cell.repeats);
        telemetry::publish_process(bus, std::move(e));
        if (reg != nullptr) {
          // Per-rep registry snapshot delta: what this rep added to the
          // cell's deterministic counters (process plane — the cadence is
          // execution-driven, not part of the deterministic stream).
          telemetry::Snapshot now = reg->snapshot(telemetry::Plane::kDeterministic);
          telemetry::publish_snapshot_delta(bus, last_snapshot, now);
          last_snapshot = std::move(now);
        }
      }
    }
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown error";
  }
  heartbeat(telemetry::EventKind::kCellFinish);
  if (cell.telemetry && reg != nullptr) {
    // Deterministic counters only: the embedded block must keep the artifact
    // byte-identical across execution shapes.
    const telemetry::Snapshot snap = reg->snapshot(telemetry::Plane::kDeterministic);
    for (const auto& c : snap.counters) result.telemetry.emplace_back(c.name, c.value);
  }
  result.seconds = seconds_since(start);
  return result;
}

}  // namespace

std::string to_string(FluctuationSpec::Model m) {
  switch (m) {
    case FluctuationSpec::Model::kNone: return "none";
    case FluctuationSpec::Model::kGaussian: return "gaussian";
    case FluctuationSpec::Model::kHotSpot: return "hotspot";
  }
  return "?";
}

std::string to_string(ScenarioSpec::Kind kind) {
  switch (kind) {
    case ScenarioSpec::Kind::kNone: return "none";
    case ScenarioSpec::Kind::kAllLinks: return "all_links";
    case ScenarioSpec::Kind::kAllNodes: return "all_nodes";
    case ScenarioSpec::Kind::kKLink: return "k_link";
    case ScenarioSpec::Kind::kSrlgFile: return "srlg_file";
    case ScenarioSpec::Kind::kGeoSrlg: return "geo_srlg";
  }
  return "?";
}

ScenarioSet build_scenario_set(const ScenarioSpec& spec, const Graph& g,
                               std::uint64_t seed) {
  ScenarioSet set;
  switch (spec.kind) {
    case ScenarioSpec::Kind::kNone:
      return set;
    case ScenarioSpec::Kind::kAllLinks:
      set = single_link_scenarios(g);
      break;
    case ScenarioSpec::Kind::kAllNodes:
      set = single_node_scenarios(g);
      break;
    case ScenarioSpec::Kind::kKLink:
      set = enumerate_k_link_failures(g, {spec.k, spec.budget, seed});
      break;
    case ScenarioSpec::Kind::kSrlgFile: {
      std::ifstream in(spec.srlg_file);
      if (!in)
        throw std::runtime_error("build_scenario_set: cannot open srlg file: " +
                                 spec.srlg_file);
      set = srlg_scenario_set(g, parse_srlg(in));
      break;
    }
    case ScenarioSpec::Kind::kGeoSrlg:
      set = srlg_scenario_set(g, synthesize_geo_srlgs(g, {.grid = spec.geo_grid}));
      break;
  }
  if (spec.rate_weights) apply_rate_weights(set, derive_failure_rates(g));
  return set;
}

HardeningObjective build_hardening_objective(const HardenSpec& spec, const Graph& g,
                                             std::uint64_t seed) {
  ScenarioSpec catalog = spec.catalog;
  // `objective=` alone hardens against all single-link failures — the
  // baseline the SRLG-vs-single-link comparisons measure against.
  if (catalog.kind == ScenarioSpec::Kind::kNone)
    catalog.kind = ScenarioSpec::Kind::kAllLinks;
  HardeningObjective objective;
  objective.set = build_scenario_set(catalog, g, seed);
  objective.mode = spec.mode;
  objective.percentile = catalog.percentile;
  objective.period_minutes = spec.period_minutes;
  if (objective.set.empty())
    throw std::runtime_error("build_hardening_objective: empty hardening catalog");
  return objective;
}

CampaignResult run_campaign(const Campaign& campaign, const CampaignOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  if (options.workers < 0)
    throw std::invalid_argument("run_campaign: negative workers");
  if (options.inner_threads < 0)
    throw std::invalid_argument("run_campaign: negative inner_threads");

  const std::size_t requested_workers =
      options.workers == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : static_cast<std::size_t>(options.workers);
  // No point spinning up more shards than cells.
  const std::size_t workers = std::max<std::size_t>(
      1, std::min(requested_workers, campaign.cells.size()));

  // Nested-parallelism guard: exactly one level multi-threads. Cells in
  // parallel force the inner engine sequential; the inner pool below only
  // materializes when cells execute one at a time. Cell-level parallelism
  // the clamp left unused (fewer cells than requested workers) flows to the
  // inner engine instead of idling.
  int inner_threads = workers > 1 ? 1 : options.inner_threads;
  if (workers <= 1 && inner_threads == 1 && requested_workers > 1 &&
      !campaign.cells.empty())
    inner_threads = static_cast<int>(requested_workers);

  std::optional<ThreadPool> inner_pool;
  if (workers <= 1 && inner_threads != 1) {
    inner_pool.emplace(inner_threads);
    if (inner_pool->num_workers() <= 1) inner_pool.reset();
  }
  const CellContext ctx{inner_pool ? &*inner_pool : nullptr,
                        inner_pool ? static_cast<int>(inner_pool->num_workers()) : 1,
                        options.eval_config};

  CampaignResult out;
  out.name = campaign.name;
  out.effort = to_string(campaign.effort);
  out.seed = campaign.seed;
  out.cell_workers = static_cast<int>(workers);
  out.inner_threads = ctx.inner_threads;
  out.cells.resize(campaign.cells.size());

  // One registry PER CELL, merged in campaign order after the barrier: the
  // sink's counter totals are then independent of which shard ran which cell
  // and of cell-parallel vs inner-parallel execution. Allocated only for the
  // cells that need one (a sink is set, or the cell embeds its block).
  telemetry::Registry* sink = telemetry::effective(options.telemetry);
  std::vector<std::unique_ptr<telemetry::Registry>> cell_regs(campaign.cells.size());
  // Event buses mirror the registry pattern: one PER opted-in CELL, drained
  // into the sink in campaign order after the barrier, so the sink's
  // deterministic-plane line sequence is shape-independent.
  telemetry::EventBus* event_sink = telemetry::enabled() ? options.events : nullptr;
  std::vector<std::unique_ptr<telemetry::EventBus>> cell_buses(campaign.cells.size());
  if (telemetry::enabled()) {
    for (std::size_t i = 0; i < campaign.cells.size(); ++i) {
      if (sink != nullptr || campaign.cells[i].telemetry)
        cell_regs[i] = std::make_unique<telemetry::Registry>();
      if (event_sink != nullptr && campaign.cells[i].events)
        cell_buses[i] = std::make_unique<telemetry::EventBus>();
    }
  }

  ThreadPool cell_pool(static_cast<int>(workers));
  // Cells land in slot i regardless of which shard ran them, so the result
  // (and its JSON bytes) is independent of the execution schedule.
  parallel_for(&cell_pool, campaign.cells.size(), [&](std::size_t, std::size_t i) {
    out.cells[i] = run_cell(campaign.cells[i], campaign.effort, ctx, cell_regs[i].get(),
                            cell_buses[i].get());
  });

  if (sink != nullptr) {
    for (const auto& reg : cell_regs) {
      if (!reg) continue;
      sink->merge_counters(reg->snapshot(telemetry::Plane::kDeterministic));
      sink->merge_counters(reg->snapshot(telemetry::Plane::kProcess),
                           telemetry::Plane::kProcess);
      sink->merge_spans(reg->spans());
    }
  }
  if (event_sink != nullptr) {
    for (const auto& bus : cell_buses) {
      if (!bus) continue;
      for (telemetry::Event& e : bus->drain()) event_sink->publish(std::move(e));
      if (const std::uint64_t dropped = bus->dropped(); dropped > 0) {
        telemetry::Event e;
        e.kind = telemetry::EventKind::kDrops;
        e.value = dropped;
        telemetry::publish_process(event_sink, std::move(e));
      }
    }
  }

  out.seconds = seconds_since(start);
  return out;
}

std::vector<LinkId> worst_failure_links(const FailureProfile& profile, double fraction) {
  std::vector<std::size_t> order(profile.violations.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (profile.violations[a] != profile.violations[b])
      return profile.violations[a] > profile.violations[b];
    if (profile.phi[a] != profile.phi[b]) return profile.phi[a] > profile.phi[b];
    return a < b;
  });
  if (order.empty()) return {};
  const auto want = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(order.size())));
  const std::size_t count = std::min(order.size(), std::max<std::size_t>(2, want));
  std::vector<LinkId> top;
  top.reserve(count);
  for (std::size_t i = 0; i < count; ++i) top.push_back(static_cast<LinkId>(order[i]));
  return top;
}

std::vector<StressSeries> evaluate_fluctuations(const Workload& base,
                                                std::span<const WeightSetting> routings,
                                                std::span<const LinkId> top,
                                                const FluctuationSpec& fluct,
                                                std::uint64_t seed, ThreadPool* pool,
                                                const EvaluatorConfig& eval_config) {
  if (fluct.trials < 0)
    throw std::invalid_argument("evaluate_fluctuations: negative trials");
  const auto trials = static_cast<std::size_t>(fluct.trials);

  // One sequential stream draws every perturbed matrix, so the trial set is
  // identical however the evaluation below is sharded.
  std::vector<ClassedTraffic> actual;
  actual.reserve(trials);
  Rng rng(seed);
  for (std::size_t t = 0; t < trials; ++t) {
    switch (fluct.model) {
      case FluctuationSpec::Model::kGaussian:
        actual.push_back(apply_gaussian_fluctuation(base.traffic, fluct.gaussian, rng));
        break;
      case FluctuationSpec::Model::kHotSpot:
        actual.push_back(apply_hot_spot(base.traffic, fluct.hot_spot, rng));
        break;
      case FluctuationSpec::Model::kNone:
        actual.push_back(base.traffic);
        break;
    }
  }

  // Per-trial slabs: [trial][routing][top index].
  const std::size_t cols = routings.size() * top.size();
  std::vector<double> violations(trials * cols), phi(trials * cols);
  if (!eval_config.incremental || trials == 0 || top.empty()) {
    // Reference shape: each trial builds one Evaluator and reuses it for
    // every routing and failure, on top of the per-worker routing scratch
    // the Evaluator keeps thread-local.
    parallel_for(pool, trials, [&](std::size_t, std::size_t t) {
      // One evaluator (and thus one base cache) per trial: each routing's
      // base is built on the first failure evaluation and patched for the
      // rest.
      const Evaluator evaluator(base.graph, actual[t], base.params, eval_config);
      const double denom = std::max(evaluator.phi_uncap(), 1e-9);
      for (std::size_t r = 0; r < routings.size(); ++r) {
        for (std::size_t i = 0; i < top.size(); ++i) {
          const EvalResult res =
              evaluator.evaluate(routings[r], FailureScenario::link(top[i]));
          violations[t * cols + r * top.size() + i] =
              static_cast<double>(res.sla_violations);
          phi[t * cols + r * top.size() + i] = res.phi / denom;
        }
      }
    });
  } else {
    // Cross-trial base sharing: distance labels are a pure function of
    // weights + topology + failure — never of the traffic matrix — so the
    // per-(routing, failure) SPF solve is hoisted out of the trial loop.
    // Each routing's no-failure labels are built once with full Dijkstras,
    // each top-failure's labels are delta-patched from them, and every
    // perturbed-TM trial re-runs only load aggregation + the cost tail
    // (Evaluator::evaluate_with_labels) — bit-identical to the reference
    // shape above, which evaluates the same labels per trial from scratch.
    std::vector<std::unique_ptr<Evaluator>> evals(trials);
    parallel_for(pool, trials, [&](std::size_t, std::size_t t) {
      evals[t] = std::make_unique<Evaluator>(base.graph, actual[t], base.params,
                                             eval_config);
    });

    const std::size_t n = base.graph.num_nodes();
    const std::size_t cap =
        eval_config.incremental_max_affected_fraction >= 1.0
            ? n
            : static_cast<std::size_t>(
                  std::max(0.0, eval_config.incremental_max_affected_fraction) *
                  static_cast<double>(n));
    std::vector<double> cost_delay, cost_tput;
    std::vector<std::uint8_t> mask;
    std::vector<ArcId> removed;
    SharedScenarioLabels no_fail, labels;
    no_fail.delay.resize(n);
    no_fail.tput.resize(n);
    labels.delay.resize(n);
    labels.tput.resize(n);
    DeltaSpfScratch spf;
    for (std::size_t r = 0; r < routings.size(); ++r) {
      routings[r].arc_costs(base.graph, TrafficClass::kDelay, cost_delay);
      routings[r].arc_costs(base.graph, TrafficClass::kThroughput, cost_tput);
      for (NodeId t = 0; t < n; ++t) {
        shortest_distances_to(base.graph, t, cost_delay, {}, no_fail.delay[t]);
        shortest_distances_to(base.graph, t, cost_tput, {}, no_fail.tput[t]);
      }
      for (std::size_t i = 0; i < top.size(); ++i) {
        const FailureScenario scenario = FailureScenario::link(top[i]);
        build_alive_mask(base.graph, scenario, mask);
        removed.clear();
        for_each_failed_arc(base.graph, scenario,
                            [&](ArcId a) { removed.push_back(a); });
        for (NodeId t = 0; t < n; ++t) {
          labels.delay[t] = no_fail.delay[t];
          if (delta_spf_remove_arcs(base.graph, cost_delay, mask, removed,
                                    labels.delay[t], cap, spf) < 0)
            shortest_distances_to(base.graph, t, cost_delay, mask, labels.delay[t]);
          labels.tput[t] = no_fail.tput[t];
          if (delta_spf_remove_arcs(base.graph, cost_tput, mask, removed,
                                    labels.tput[t], cap, spf) < 0)
            shortest_distances_to(base.graph, t, cost_tput, mask, labels.tput[t]);
        }
        parallel_for(pool, trials, [&](std::size_t, std::size_t t) {
          const double denom = std::max(evals[t]->phi_uncap(), 1e-9);
          const EvalResult res =
              evals[t]->evaluate_with_labels(routings[r], scenario, labels);
          violations[t * cols + r * top.size() + i] =
              static_cast<double>(res.sla_violations);
          phi[t * cols + r * top.size() + i] = res.phi / denom;
        });
      }
    }
  }

  // Ordered reduction over trials keeps the statistics execution-shape
  // independent.
  std::vector<StressSeries> out(routings.size());
  for (std::size_t r = 0; r < routings.size(); ++r) {
    for (std::size_t i = 0; i < top.size(); ++i) {
      RunningStats v_stats, phi_stats;
      for (std::size_t t = 0; t < trials; ++t) {
        v_stats.add(violations[t * cols + r * top.size() + i]);
        phi_stats.add(phi[t * cols + r * top.size() + i]);
      }
      out[r].mean_violations.push_back(v_stats.mean());
      out[r].std_violations.push_back(v_stats.stddev());
      out[r].mean_phi.push_back(phi_stats.mean());
      out[r].std_phi.push_back(phi_stats.stddev());
    }
  }
  return out;
}

MetricRow standard_cell_rep(const CampaignCell& cell, Effort effort,
                            std::uint64_t rep_seed, const CellContext& ctx) {
  WorkloadSpec spec = cell.spec;
  spec.seed = rep_seed;
  Workload w = make_workload(spec);
  if (cell.graph_override != nullptr) w.graph = *cell.graph_override;
  EvaluatorConfig eval_config = ctx.eval_config;
  eval_config.telemetry = ctx.telemetry;
  const Evaluator evaluator(w.graph, w.traffic, w.params, eval_config);
  const OptimizeResult opt =
      run_optimizer(evaluator, effort, rep_seed, [&](OptimizerConfig& config) {
        config.num_threads = ctx.inner_threads;
        config.telemetry = ctx.telemetry;
        config.events = ctx.events;
        if (cell.critical_fraction > 0.0)
          config.critical_fraction = cell.critical_fraction;
        if (cell.phase1b_samples > 0)
          config.max_phase1b_samples = cell.phase1b_samples;
        if (cell.phase_iterations > 0) {
          config.phase1.max_iterations = cell.phase_iterations;
          config.phase2.max_iterations = cell.phase_iterations;
        }
        if (cell.harden.enabled)
          config.objective = build_hardening_objective(
              cell.harden, w.graph, rep_seed + cell.harden.seed_offset);
      });

  const std::vector<FailureScenario> scenarios = all_link_failures(w.graph);
  const FailureProfile robust =
      profile_failures(evaluator, opt.robust, scenarios, ctx.inner_pool);
  const FailureProfile regular =
      profile_failures(evaluator, opt.regular, scenarios, ctx.inner_pool);

  MetricRow row;
  row.seed = rep_seed;
  row.values = {
      {"nodes", static_cast<double>(w.graph.num_nodes())},
      {"links", static_cast<double>(w.graph.num_links())},
      {"arcs", static_cast<double>(w.graph.num_arcs())},
      {"beta_r", robust.beta()},
      {"beta_nr", regular.beta()},
      {"beta_top10_r", robust.beta_top(0.10)},
      {"beta_top10_nr", regular.beta_top(0.10)},
      {"phi_degradation_pct",
       (opt.robust_normal_cost.phi / std::max(opt.regular_cost.phi, 1e-9) - 1.0) *
           100.0},
  };
  if (cell.unavoidable_floor) {
    row.values.emplace_back(
        "beta_floor",
        mean(unavoidable_violation_profile(evaluator, scenarios, ctx.inner_pool)));
  }
  if (cell.harden.enabled) {
    // Hardening diagnostics: what the objective-driven optimizer saw. These
    // keys only appear for cells with an `objective=` directive, so existing
    // artifacts keep their bytes.
    row.values.emplace_back("opt_scn_count", static_cast<double>(opt.catalog_size));
    row.values.emplace_back("opt_scn_critical",
                            static_cast<double>(opt.critical_scenarios.size()));
    row.values.emplace_back("opt_scn_samples",
                            static_cast<double>(opt.scenario_samples));
    row.values.emplace_back("opt_scn_converged",
                            opt.scenario_rank_converged ? 1.0 : 0.0);
    if (std::isfinite(opt.robust_objective_value))
      row.values.emplace_back("opt_objective", opt.robust_objective_value);
  }

  if (cell.fluctuation.model != FluctuationSpec::Model::kNone &&
      cell.fluctuation.trials > 0) {
    // Stress the failures that hurt the UNPROTECTED routing most — ranking
    // by the robust routing's own worst failures would condition the
    // comparison against it.
    const std::vector<LinkId> top =
        worst_failure_links(regular, cell.fluctuation.top_fraction);
    const WeightSetting routings[] = {opt.robust, opt.regular};
    const std::vector<StressSeries> stress = evaluate_fluctuations(
        w, routings, top, cell.fluctuation, rep_seed + cell.fluctuation.seed_offset,
        ctx.inner_pool, ctx.eval_config);
    std::vector<double> base_violations, base_phi;
    const double denom = std::max(robust.phi_uncap, 1e-9);
    for (const LinkId l : top) {
      base_violations.push_back(robust.violations[l]);
      base_phi.push_back(robust.phi[l] / denom);
    }
    row.series = {
        {"pert_violations_r_mean", stress[0].mean_violations},
        {"pert_violations_r_std", stress[0].std_violations},
        {"pert_violations_nr_mean", stress[1].mean_violations},
        {"pert_violations_nr_std", stress[1].std_violations},
        {"pert_phi_r_mean", stress[0].mean_phi},
        {"pert_phi_r_std", stress[0].std_phi},
        {"pert_phi_nr_mean", stress[1].mean_phi},
        {"pert_phi_nr_std", stress[1].std_phi},
        {"base_violations_r", base_violations},
        {"base_phi_r", base_phi},
    };
    row.values.emplace_back("pert_beta_top_r", mean(stress[0].mean_violations));
    row.values.emplace_back("pert_beta_top_nr", mean(stress[1].mean_violations));
    row.values.emplace_back("base_beta_top_r", mean(base_violations));
  }

  if (cell.scenario.kind != ScenarioSpec::Kind::kNone) {
    // Weighted scenario-set profile over the cell's catalog (compound /
    // SRLG scenarios ride the incremental base-patching path). Metrics only
    // appear for cells that ask for a catalog, so existing artifacts are
    // untouched byte for byte.
    const ScenarioSet set = build_scenario_set(cell.scenario, w.graph,
                                               rep_seed + cell.scenario.seed_offset);
    row.values.emplace_back("scn_count", static_cast<double>(set.size()));
    row.values.emplace_back("scn_total_weight", set.total_weight());
    if (!set.empty()) {
      const double denom = std::max(evaluator.phi_uncap(), 1e-9);
      const ScenarioSummary r =
          summarize_scenarios(evaluator, opt.robust, set, cell.scenario.percentile,
                              ctx.inner_pool, cell.harden.period_minutes);
      const ScenarioSummary nr =
          summarize_scenarios(evaluator, opt.regular, set, cell.scenario.percentile,
                              ctx.inner_pool, cell.harden.period_minutes);
      row.values.emplace_back("scn_exp_viol_r", r.expected_violations);
      row.values.emplace_back("scn_exp_viol_nr", nr.expected_violations);
      row.values.emplace_back("scn_p_viol_r", r.percentile_violations);
      row.values.emplace_back("scn_p_viol_nr", nr.percentile_violations);
      row.values.emplace_back("scn_worst_viol_r", r.worst_violations);
      row.values.emplace_back("scn_worst_viol_nr", nr.worst_violations);
      row.values.emplace_back("scn_exp_phi_r", r.expected_phi / denom);
      row.values.emplace_back("scn_exp_phi_nr", nr.expected_phi / denom);
      row.values.emplace_back("scn_worst_phi_r", r.worst_phi / denom);
      row.values.emplace_back("scn_worst_phi_nr", nr.worst_phi / denom);
      if (cell.harden.enabled) {
        // Availability headline: expected avoidable downtime minutes of each
        // routing over the REPORTING catalog — the apples-to-apples number
        // the SLA-availability campaigns compare across hardening sets.
        // Hardening-gated so pre-existing scenario cells keep their bytes.
        row.values.emplace_back("scn_exp_downtime_r", r.expected_downtime_min);
        row.values.emplace_back("scn_exp_downtime_nr", nr.expected_downtime_min);
      }
    }
  }
  // This rep OWNS `evaluator`, so it publishes the cache totals — exactly
  // once, here (process plane; no-op when telemetry is off for the cell).
  evaluator.flush_cache_stats_to_telemetry();
  return row;
}

std::optional<int> parse_worker_count(const std::string& text) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 0 || v > 4096) return std::nullopt;
  return static_cast<int>(v);
}

void filter_cells(Campaign& campaign, std::string_view substr) {
  if (substr.empty()) return;
  std::erase_if(campaign.cells, [&](const CampaignCell& cell) {
    return cell.id.find(substr) == std::string::npos;
  });
}

namespace {

std::string trim(std::string_view s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return std::string(s.substr(begin, end - begin + 1));
}

}  // namespace

Campaign parse_campaign_spec(std::istream& in) {
  Campaign campaign;
  campaign.name = "campaign";
  CampaignCell* cell = nullptr;
  std::string line;
  int lineno = 0;
  const auto fail = [&](const std::string& message) -> void {
    throw std::runtime_error("campaign spec line " + std::to_string(lineno) + ": " +
                             message);
  };
  // All three insist the whole token parses: stod/stoi alone would accept
  // trailing garbage and silently truncate typos like "12x7". Error messages
  // name the offending KEY alongside the line number, so a typo deep in a
  // many-cell spec points straight at its directive.
  const auto parse_double = [&](const std::string& key, const std::string& v) {
    std::size_t pos = 0;
    double out = 0.0;
    try {
      out = std::stod(v, &pos);
    } catch (const std::exception&) {
      fail("bad number for key '" + key + "': " + v);
    }
    if (pos != v.size()) fail("bad number for key '" + key + "': " + v);
    return out;
  };
  const auto parse_int = [&](const std::string& key, const std::string& v) {
    std::size_t pos = 0;
    int out = 0;
    try {
      out = std::stoi(v, &pos);
    } catch (const std::exception&) {
      fail("bad integer for key '" + key + "': " + v);
    }
    if (pos != v.size()) fail("bad integer for key '" + key + "': " + v);
    return out;
  };
  const auto parse_u64 = [&](const std::string& key, const std::string& v) {
    std::size_t pos = 0;
    std::uint64_t out = 0;
    // stoull would silently wrap a leading minus modulo 2^64.
    if (!v.empty() && v[0] == '-') fail("bad seed for key '" + key + "': " + v);
    try {
      out = static_cast<std::uint64_t>(std::stoull(v, &pos));
    } catch (const std::exception&) {
      fail("bad seed for key '" + key + "': " + v);
    }
    if (pos != v.size()) fail("bad seed for key '" + key + "': " + v);
    return out;
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line == "[cell]") {
      campaign.cells.emplace_back();
      cell = &campaign.cells.back();
      cell->spec.seed = campaign.seed;  // inherit unless the cell overrides
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail("expected key = value or [cell]");
    const std::string key = trim(std::string_view(line).substr(0, eq));
    const std::string value = trim(std::string_view(line).substr(eq + 1));
    if (key.empty() || value.empty()) fail("expected key = value");

    // Shared by `scenario_set` and `harden_set`: the same catalog kinds name
    // WHAT is reported on and WHAT is hardened against.
    const auto parse_catalog_kind = [&](const std::string& k, const std::string& v) {
      if (v == "none") return ScenarioSpec::Kind::kNone;
      if (v == "all_links") return ScenarioSpec::Kind::kAllLinks;
      if (v == "all_nodes") return ScenarioSpec::Kind::kAllNodes;
      if (v == "k_link") return ScenarioSpec::Kind::kKLink;
      if (v == "srlg_file") return ScenarioSpec::Kind::kSrlgFile;
      if (v == "geo_srlg") return ScenarioSpec::Kind::kGeoSrlg;
      fail("unknown value for key '" + k + "': " + v);
      return ScenarioSpec::Kind::kNone;  // unreachable
    };

    if (cell == nullptr) {
      if (key == "name") campaign.name = value;
      else if (key == "seed") campaign.seed = parse_u64(key, value);
      else if (key == "effort") {
        if (value == "smoke") campaign.effort = Effort::kSmoke;
        else if (value == "quick") campaign.effort = Effort::kQuick;
        else if (value == "full") campaign.effort = Effort::kFull;
        else fail("unknown value for key 'effort': " + value);
      } else {
        fail("unknown campaign key: " + key);
      }
      continue;
    }

    if (key == "id") cell->id = value;
    else if (key == "topology") {
      if (value == "rand") cell->spec.kind = TopologyKind::kRand;
      else if (value == "near") cell->spec.kind = TopologyKind::kNear;
      else if (value == "pl") cell->spec.kind = TopologyKind::kPl;
      else if (value == "isp") cell->spec.kind = TopologyKind::kIsp;
      else if (value.rfind("isp:", 0) == 0) {
        // Scale axis: `isp:` selects the seeded Rocketfuel-style generator
        // (node count from `nodes`, seed from the cell seed), tuned by
        // comma-separated k=v args — pops, cores, backbone_degree,
        // avg_degree — or `isp:file=<path>` to load a dtr-graph file.
        cell->spec.kind = TopologyKind::kIsp;
        cell->spec.isp_source = IspSource::kGenerated;
        std::string rest = value.substr(4);
        while (!rest.empty()) {
          const auto comma = rest.find(',');
          const std::string item = trim(std::string_view(rest).substr(0, comma));
          rest = comma == std::string::npos ? std::string() : rest.substr(comma + 1);
          if (item.empty()) continue;
          const auto ieq = item.find('=');
          if (ieq == std::string::npos)
            fail("bad isp topology arg (expected k=v): " + item);
          const std::string ik = trim(std::string_view(item).substr(0, ieq));
          const std::string iv = trim(std::string_view(item).substr(ieq + 1));
          if (ik == "file") {
            cell->spec.isp_source = IspSource::kFile;
            cell->spec.isp_file = iv;
          } else if (ik == "pops") cell->spec.isp_pops = parse_int("topology:" + ik, iv);
          else if (ik == "cores")
            cell->spec.isp_cores_per_pop = parse_int("topology:" + ik, iv);
          else if (ik == "backbone_degree")
            cell->spec.isp_backbone_degree = parse_double("topology:" + ik, iv);
          else if (ik == "avg_degree")
            cell->spec.isp_avg_degree = parse_double("topology:" + ik, iv);
          else fail("unknown isp topology arg: " + ik);
        }
      }
      else fail("unknown value for key 'topology': " + value);
    } else if (key == "nodes") cell->spec.nodes = parse_int(key, value);
    else if (key == "degree") cell->spec.degree = parse_double(key, value);
    else if (key == "attachments") cell->spec.pl_attachments = parse_int(key, value);
    else if (key == "theta") cell->spec.theta_ms = parse_double(key, value);
    else if (key == "avg_util")
      cell->spec.util = {UtilizationTarget::Kind::kAverage, parse_double(key, value)};
    else if (key == "max_util")
      cell->spec.util = {UtilizationTarget::Kind::kMax, parse_double(key, value)};
    else if (key == "delay_fraction") cell->spec.delay_fraction = parse_double(key, value);
    else if (key == "seed") cell->spec.seed = parse_u64(key, value);
    else if (key == "repeats") {
      cell->repeats = parse_int(key, value);
      // Nothing downstream consumes repeats <= 0; it would just yield a cell
      // that "succeeds" with zero reps.
      if (cell->repeats < 1) fail("repeats must be >= 1, got " + value);
    }
    else if (key == "seed_stride") cell->seed_stride = parse_u64(key, value);
    else if (key == "critical_fraction")
      cell->critical_fraction = parse_double(key, value);
    else if (key == "phase1b_samples") {
      cell->phase1b_samples = parse_int(key, value);
      if (cell->phase1b_samples < 1) fail("phase1b_samples must be >= 1, got " + value);
    }
    else if (key == "phase_iterations") {
      cell->phase_iterations = parse_int(key, value);
      if (cell->phase_iterations < 1) fail("phase_iterations must be >= 1, got " + value);
    }
    else if (key == "floor") cell->unavoidable_floor = parse_int(key, value) != 0;
    else if (key == "fluctuation") {
      if (value == "none") cell->fluctuation.model = FluctuationSpec::Model::kNone;
      else if (value == "gaussian")
        cell->fluctuation.model = FluctuationSpec::Model::kGaussian;
      else if (value == "hotspot")
        cell->fluctuation.model = FluctuationSpec::Model::kHotSpot;
      else fail("unknown value for key 'fluctuation': " + value);
    } else if (key == "trials") cell->fluctuation.trials = parse_int(key, value);
    else if (key == "epsilon")
      cell->fluctuation.gaussian.epsilon = parse_double(key, value);
    else if (key == "top_fraction")
      cell->fluctuation.top_fraction = parse_double(key, value);
    else if (key == "direction") {
      if (value == "upload")
        cell->fluctuation.hot_spot.direction = HotSpotParams::Direction::kUpload;
      else if (value == "download")
        cell->fluctuation.hot_spot.direction = HotSpotParams::Direction::kDownload;
      else fail("unknown value for key 'direction': " + value);
    } else if (key == "server_fraction")
      cell->fluctuation.hot_spot.server_fraction = parse_double(key, value);
    else if (key == "client_fraction")
      cell->fluctuation.hot_spot.client_fraction = parse_double(key, value);
    else if (key == "scale_min")
      cell->fluctuation.hot_spot.scale_min = parse_double(key, value);
    else if (key == "scale_max")
      cell->fluctuation.hot_spot.scale_max = parse_double(key, value);
    else if (key == "scenario_set") cell->scenario.kind = parse_catalog_kind(key, value);
    else if (key == "k_link") {
      cell->scenario.k = parse_int(key, value);
      if (cell->scenario.k < 1) fail("k_link must be >= 1, got " + value);
    } else if (key == "scenario_budget") {
      const int budget = parse_int(key, value);
      if (budget < 1) fail("scenario_budget must be >= 1, got " + value);
      cell->scenario.budget = static_cast<std::size_t>(budget);
    } else if (key == "srlg_file") cell->scenario.srlg_file = value;
    else if (key == "geo_grid") {
      cell->scenario.geo_grid = parse_int(key, value);
      if (cell->scenario.geo_grid < 1) fail("geo_grid must be >= 1, got " + value);
    } else if (key == "percentile") {
      cell->scenario.percentile = parse_double(key, value);
      if (cell->scenario.percentile < 0.0 || cell->scenario.percentile > 1.0)
        fail("percentile must be in [0, 1], got " + value);
    } else if (key == "rate_weights")
      cell->scenario.rate_weights = parse_int(key, value) != 0;
    else if (key == "objective") {
      const std::optional<AggregationMode> mode = parse_aggregation_mode(value);
      if (!mode)
        fail("unknown value for key 'objective' "
             "(expected | percentile | downtime): " + value);
      cell->harden.enabled = true;
      cell->harden.mode = *mode;
    } else if (key == "harden_set")
      cell->harden.catalog.kind = parse_catalog_kind(key, value);
    else if (key == "harden_k") {
      cell->harden.catalog.k = parse_int(key, value);
      if (cell->harden.catalog.k < 1) fail("harden_k must be >= 1, got " + value);
    } else if (key == "harden_budget") {
      const int budget = parse_int(key, value);
      if (budget < 1) fail("harden_budget must be >= 1, got " + value);
      cell->harden.catalog.budget = static_cast<std::size_t>(budget);
    } else if (key == "harden_srlg_file") cell->harden.catalog.srlg_file = value;
    else if (key == "harden_geo_grid") {
      cell->harden.catalog.geo_grid = parse_int(key, value);
      if (cell->harden.catalog.geo_grid < 1)
        fail("harden_geo_grid must be >= 1, got " + value);
    } else if (key == "harden_rate_weights")
      cell->harden.catalog.rate_weights = parse_int(key, value) != 0;
    else if (key == "harden_percentile") {
      cell->harden.catalog.percentile = parse_double(key, value);
      if (cell->harden.catalog.percentile < 0.0 || cell->harden.catalog.percentile > 1.0)
        fail("harden_percentile must be in [0, 1], got " + value);
    } else if (key == "harden_period_min") {
      cell->harden.period_minutes = parse_double(key, value);
      if (cell->harden.period_minutes <= 0.0)
        fail("harden_period_min must be > 0, got " + value);
    } else if (key == "telemetry") cell->telemetry = parse_int(key, value) != 0;
    else if (key == "events") cell->events = parse_int(key, value) != 0;
    else fail("unknown cell key: " + key);
  }

  // Default ids so --filter / result lookup always has a handle. "/" (not
  // "#") keeps the generated id representable in a spec file, where "#"
  // starts a comment.
  for (std::size_t i = 0; i < campaign.cells.size(); ++i) {
    if (campaign.cells[i].id.empty())
      campaign.cells[i].id = campaign.cells[i].spec.label() + "/" + std::to_string(i);
  }
  return campaign;
}

}  // namespace dtr::experiments
