#include "experiments/workloads.h"

#include <ostream>
#include <sstream>

namespace dtr::experiments {

std::string to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kRand: return "RandTopo";
    case TopologyKind::kNear: return "NearTopo";
    case TopologyKind::kPl: return "PLTopo";
    case TopologyKind::kIsp: return "ISP";
  }
  return "?";
}

std::string WorkloadSpec::label() const {
  std::ostringstream ss;
  ss << to_string(kind);
  if (kind != TopologyKind::kIsp) {
    ss << "[" << nodes << "]";
  } else if (isp_source == IspSource::kGenerated) {
    ss << "[" << nodes << ",p" << isp_pops << "]";
  } else if (isp_source == IspSource::kFile) {
    // Basename only: cell ids should not depend on where the repo is checked
    // out, and "/" in ids collides with the generated "<label>/<index>" form.
    const auto slash = isp_file.find_last_of('/');
    ss << "[" << (slash == std::string::npos ? isp_file : isp_file.substr(slash + 1))
       << "]";
  }
  return ss.str();
}

Workload make_workload(const WorkloadSpec& spec) {
  Workload w;
  w.spec = spec;
  switch (spec.kind) {
    case TopologyKind::kRand:
      w.graph = make_rand_topo({spec.nodes, spec.degree, 500.0, spec.seed});
      break;
    case TopologyKind::kNear:
      w.graph = make_near_topo({spec.nodes, spec.degree, 500.0, spec.seed});
      break;
    case TopologyKind::kPl:
      w.graph = make_pl_topo({spec.nodes, spec.pl_attachments, 500.0, spec.seed});
      break;
    case TopologyKind::kIsp:
      switch (spec.isp_source) {
        case IspSource::kBackbone16:
          w.graph = make_isp_backbone().graph;
          break;
        case IspSource::kGenerated: {
          IspGenParams p;
          p.num_nodes = spec.nodes;
          p.num_pops = spec.isp_pops;
          p.cores_per_pop = spec.isp_cores_per_pop;
          p.backbone_degree = spec.isp_backbone_degree;
          p.avg_degree = spec.isp_avg_degree;
          p.seed = spec.seed;
          w.graph = make_isp_topo(p);
          break;
        }
        case IspSource::kFile:
          w.graph = load_isp_topo(spec.isp_file);
          break;
      }
      break;
  }
  w.params.sla.theta_ms = spec.theta_ms;
  // Synthesized delays calibrate to the SLA bound per Sec. V-A1. The embedded
  // ISP's geographic delays happen to leave only ~4% headroom against the
  // coast-to-coast SLA (tighter than the paper's proprietary topology, whose
  // regular routing still met the SLA normally); calibrating it the same way
  // keeps the failure experiments comparable across topologies (DESIGN.md §4).
  calibrate_delays_to_sla(w.graph, spec.theta_ms);
  w.traffic = split_by_class(
      make_gravity_traffic(w.graph, {1.0, 1.0, spec.seed + 1000}), spec.delay_fraction);
  scale_to_utilization(w.graph, w.traffic, spec.util);
  return w;
}

std::vector<WorkloadSpec> paper_topologies(Effort effort, std::uint64_t seed) {
  const bool full = effort == Effort::kFull;
  const int n = nodes_from_env(full ? 30 : 16);
  std::vector<WorkloadSpec> specs;
  const auto push = [&](TopologyKind kind, int num_nodes, double degree) {
    WorkloadSpec s;
    s.kind = kind;
    s.nodes = num_nodes;
    s.degree = degree;
    s.seed = seed;
    specs.push_back(std::move(s));
  };
  push(TopologyKind::kRand, n, 6.0);
  push(TopologyKind::kNear, n, 6.0);
  push(TopologyKind::kPl, n, 6.0);
  push(TopologyKind::kIsp, 16, 4.375);
  return specs;
}

WorkloadSpec default_rand_spec(Effort effort, std::uint64_t seed) {
  const bool full = effort == Effort::kFull;
  WorkloadSpec s;
  s.kind = TopologyKind::kRand;
  s.nodes = nodes_from_env(full ? 30 : 16);
  s.degree = full ? 6.0 : 5.0;
  s.seed = seed;
  return s;
}

BenchContext context_from_env() {
  BenchContext ctx;
  ctx.effort = effort_from_env(Effort::kQuick);
  ctx.repeats = repeats_from_env(ctx.effort == Effort::kFull ? 5 : 3);
  ctx.seed = seed_from_env(1);
  return ctx;
}

void print_context(std::ostream& os, const std::string& bench_name,
                   const BenchContext& ctx) {
  os << "# " << bench_name << "  (effort=" << to_string(ctx.effort)
     << ", repeats=" << ctx.repeats << ", seed=" << ctx.seed
     << "; override via DTR_EFFORT/DTR_REPEATS/DTR_SEED)\n";
}

OptimizeResult run_optimizer(const Evaluator& evaluator, Effort effort,
                             std::uint64_t seed,
                             const std::function<void(OptimizerConfig&)>& tweak) {
  OptimizerConfig config = default_optimizer_config(effort, seed);
  if (tweak) tweak(config);
  RobustOptimizer optimizer(evaluator, config);
  return optimizer.optimize();
}

FailureProfile link_failure_profile(const Evaluator& evaluator, const WeightSetting& w) {
  const auto scenarios = all_link_failures(evaluator.graph());
  return profile_failures(evaluator, w, scenarios);
}

}  // namespace dtr::experiments
