#pragma once

/// Campaign engine: shards whole experiment cells — a workload spec plus
/// optimizer/eval config, repetition seeds, and optional traffic-uncertainty
/// fluctuations — across the worker pool, producing the typed results of
/// results.h. This is the scaling layer above the intra-evaluation
/// parallelism of util/thread_pool: exactly one level runs parallel (cells
/// OR the inner engine, never both), cells land in deterministic campaign
/// order, and a throwing cell is captured in its CellResult instead of
/// aborting the run. Results are bit-identical for any execution shape.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "experiments/results.h"
#include "experiments/workloads.h"
#include "routing/evaluator.h"
#include "scenarios/hardening.h"
#include "scenarios/scenario_set.h"
#include "traffic/uncertainty.h"

namespace dtr {
class ThreadPool;
}  // namespace dtr

namespace dtr::telemetry {
class EventBus;
class Registry;
}  // namespace dtr::telemetry

namespace dtr::experiments {

/// Traffic-uncertainty stress attached to a cell (the Sec. V-F models).
struct FluctuationSpec {
  enum class Model : std::uint8_t { kNone, kGaussian, kHotSpot };
  Model model = Model::kNone;
  GaussianFluctuation gaussian{};
  HotSpotParams hot_spot{};
  int trials = 0;                 ///< perturbed matrices to draw (0 disables)
  double top_fraction = 0.10;     ///< stressed share of worst failure links
  std::uint64_t seed_offset = 7;  ///< fluctuation stream = rep seed + offset
};

std::string to_string(FluctuationSpec::Model m);

/// Scenario-catalog attachment (spec directives `scenario_set`, `k_link`,
/// `scenario_budget`, `srlg_file`, `geo_grid`, `percentile`, `rate_weights`):
/// when kind != kNone, the cell builds a ScenarioSet against the workload
/// graph and additionally profiles both routings over it, emitting the
/// weighted `scn_*` metrics (expected / percentile / worst).
struct ScenarioSpec {
  enum class Kind : std::uint8_t {
    kNone,      ///< no scenario catalog (the default; cell output unchanged)
    kAllLinks,  ///< every single-link failure
    kAllNodes,  ///< every single-node failure
    kKLink,     ///< k-link combinations, budget-capped (enumerate_k_link_failures)
    kSrlgFile,  ///< explicit SRLG catalog from a `.srlg` sidecar file
    kGeoSrlg,   ///< synthetic conduit catalog (synthesize_geo_srlgs)
  };
  Kind kind = Kind::kNone;
  int k = 2;                  ///< kKLink: simultaneous link failures
  std::size_t budget = 100;   ///< kKLink: catalog size cap
  std::string srlg_file;      ///< kSrlgFile: sidecar path (relative to the CWD)
  int geo_grid = 4;           ///< kGeoSrlg: grid resolution
  double percentile = 0.95;   ///< percentile for the scn_p_* metrics
  bool rate_weights = false;  ///< reweight by per-element failure rates
  /// kKLink sampling stream = rep seed + offset (decorrelated from the
  /// optimizer/fluctuation streams, like FluctuationSpec::seed_offset).
  std::uint64_t seed_offset = 17;
};

std::string to_string(ScenarioSpec::Kind kind);

/// Availability-aware hardening attachment (spec keys `objective`,
/// `harden_set`, `harden_k`, `harden_budget`, `harden_srlg_file`,
/// `harden_geo_grid`, `harden_rate_weights`, `harden_percentile`,
/// `harden_period_min`): when enabled, the optimizer runs against a
/// HardeningObjective built from this catalog — scenario-catalog criticality
/// plus the chosen aggregation — instead of the classic per-link pipeline,
/// and the cell emits the `opt_scn_*` / `scn_exp_downtime_*` metrics.
/// `objective=` alone defaults the catalog to all single-link failures, so
/// "objective=downtime" with no harden_set is the single-link-hardened
/// baseline the SRLG-vs-single-link comparisons measure against.
struct HardenSpec {
  bool enabled = false;  ///< set by the `objective=` key (the opt-in)
  AggregationMode mode = AggregationMode::kExpectedCost;
  /// WHAT can fail during optimization — reuses the catalog directives of
  /// ScenarioSpec under harden_-prefixed keys. kind == kNone (the default)
  /// means all single-link failures.
  ScenarioSpec catalog;
  double period_minutes = 43200.0;  ///< downtime scale (default: 30-day month)
  /// Hardening catalog sampling stream = rep seed + offset (decorrelated
  /// from the optimizer / fluctuation / reporting-scenario streams).
  std::uint64_t seed_offset = 23;
};

/// The HardeningObjective a cell's HardenSpec describes against `g`
/// (deterministic in `seed`; throws when the catalog comes out empty).
HardeningObjective build_hardening_objective(const HardenSpec& spec, const Graph& g,
                                             std::uint64_t seed);

/// Builds the catalog a spec describes against `g` (deterministic in
/// `seed`). kSrlgFile reads spec.srlg_file here, so a missing sidecar
/// surfaces as the cell error of the rep that needed it.
ScenarioSet build_scenario_set(const ScenarioSpec& spec, const Graph& g,
                               std::uint64_t seed);

/// Execution context handed to cell bodies: the inner pool is non-null only
/// when cells run sequentially; `inner_threads` is the matching
/// OptimizerConfig::num_threads value (1 when cells run in parallel).
/// `eval_config` carries the campaign-wide evaluator execution knobs
/// (incremental / base cache / delay DP) — pure HOW-knobs, so the artifact
/// bytes are identical for every setting (the CI golden gate runs the
/// config-corner matrix to prove it).
struct CellContext {
  ThreadPool* inner_pool = nullptr;
  int inner_threads = 1;
  EvaluatorConfig eval_config{};
  /// Per-cell telemetry registry (borrowed; null = telemetry off for the
  /// cell). run_campaign hands every cell its OWN registry and merges them
  /// in campaign order afterwards, so the merged counters are byte-identical
  /// for any execution shape.
  telemetry::Registry* telemetry = nullptr;
  /// Per-cell streaming event bus (borrowed; null = events off for the
  /// cell). Same pattern as `telemetry`: each cell publishes into its own
  /// bus and run_campaign drains them into the sink in campaign order after
  /// the barrier, keeping the sink's deterministic-plane lines
  /// byte-identical for any execution shape.
  telemetry::EventBus* events = nullptr;
};

struct CampaignCell {
  std::string id;     ///< unique within the campaign; the --filter target
  WorkloadSpec spec;  ///< base spec; rep r runs at spec.seed + r * seed_stride
  int repeats = 1;
  std::uint64_t seed_stride = 101;
  double critical_fraction = 0.0;  ///< > 0 overrides the optimizer default
  /// > 0 caps the Phase-1b criticality sample budget (optimizer default is
  /// 20*tau*|E|, which grows with link count — ISP-scale cells set an
  /// explicit cap so cell cost tracks the topology, not the budget formula).
  long phase1b_samples = 0;
  /// > 0 caps each phase's local-search iterations (the stall-based default
  /// runs to ~20*interval*diversifications probes, and every Phase-2 probe
  /// sweeps the critical set — unbounded, an ISP-scale cell takes tens of
  /// minutes; capped, its cost is a fixed number of probes).
  long phase_iterations = 0;
  bool unavoidable_floor = false;  ///< also compute the violation lower bound
  FluctuationSpec fluctuation;
  ScenarioSpec scenario;
  HardenSpec harden;
  /// Evaluate against this graph instead of the spec-built one (the NearTopo
  /// resize experiment); traffic/params still come from the spec workload.
  std::shared_ptr<const Graph> graph_override;
  /// Spec key `telemetry=1`: embed this cell's deterministic counter block
  /// in the artifact (CellResult::telemetry). Opt-in so existing artifacts
  /// keep their bytes.
  bool telemetry = false;
  /// Spec key `events=1`: stream this cell's progress events (cell
  /// heartbeats, optimizer iteration records, rep progress) to the
  /// campaign's event sink. No effect without CampaignOptions::events.
  bool events = false;
  /// Custom per-rep body (tests/extensions); empty = standard_cell_rep.
  std::function<MetricRow(const CampaignCell&, Effort, std::uint64_t,
                          const CellContext&)>
      body;
};

struct Campaign {
  std::string name;
  Effort effort = Effort::kQuick;
  std::uint64_t seed = 1;  ///< recorded in the artifact (cells carry their own)
  std::vector<CampaignCell> cells;
};

struct CampaignOptions {
  /// Cell-level shards; 0 = hardware concurrency. The nested-parallelism
  /// guard admits exactly one parallel level: when the resolved worker count
  /// exceeds 1, cells run with inner_threads forced to 1; inner parallelism
  /// only engages when cells execute sequentially.
  int workers = 1;
  /// Per-cell engine parallelism (optimizer + batched profiles); 0 = hw.
  int inner_threads = 1;
  /// Evaluator execution knobs applied to every cell (results are
  /// bit-identical for any setting; only wall-clock changes).
  EvaluatorConfig eval_config{};
  /// Optional campaign-wide telemetry sink (borrowed; may be null). Each
  /// cell collects into its own registry; run_campaign merges them into the
  /// sink in campaign order after the last cell finishes, so the sink's
  /// deterministic counters are byte-identical for any workers /
  /// inner_threads shape. Cell spans land here too (process plane).
  telemetry::Registry* telemetry = nullptr;
  /// Optional campaign-wide event sink (borrowed; may be null). Cells that
  /// opted in with `events=1` publish into per-cell buses which run_campaign
  /// drains into this sink in campaign order after the barrier — the
  /// deterministic plane is byte-identical for any workers / inner_threads
  /// shape. Appended last so brace-initialized call sites keep compiling.
  telemetry::EventBus* events = nullptr;
};

/// Runs every cell: sharded across the pool, deterministic result order,
/// per-cell failure capture (see CellResult::error).
CampaignResult run_campaign(const Campaign& campaign,
                            const CampaignOptions& options = {});

/// The standard cell body: workload -> two-phase optimization -> full
/// link-failure profiles (robust vs regular) -> scalar metrics
/// (beta/top-10%/Phi degradation), plus the optional unavoidable floor and
/// the fluctuated-TM stress block when the cell carries a FluctuationSpec.
MetricRow standard_cell_rep(const CampaignCell& cell, Effort effort,
                            std::uint64_t rep_seed, const CellContext& ctx);

/// Per-top-failure statistics over the fluctuation trials.
struct StressSeries {
  std::vector<double> mean_violations;
  std::vector<double> std_violations;
  std::vector<double> mean_phi;  ///< normalized by phi_uncap
  std::vector<double> std_phi;
};

/// Batched fluctuated-TM evaluation (the ROADMAP "batched TM uncertainty
/// sweep"): pre-draws `fluct.trials` perturbed matrices from one sequential
/// RNG stream (so the trial set is independent of the execution shape), then
/// shards trials across `pool` — one Evaluator per trial, reused for every
/// routing and failure in that trial, on top of the per-worker routing
/// scratch. Returns one series per routing over the `top` failure links,
/// reduced in trial order (bit-identical for any worker count).
std::vector<StressSeries> evaluate_fluctuations(const Workload& base,
                                                std::span<const WeightSetting> routings,
                                                std::span<const LinkId> top,
                                                const FluctuationSpec& fluct,
                                                std::uint64_t seed,
                                                ThreadPool* pool = nullptr,
                                                const EvaluatorConfig& eval_config = {});

/// The worst `fraction` of failures ranked by the damage done to the
/// profiled routing (violations, then Phi, then index — a total order, so
/// the stress set is deterministic). At least two failures when non-empty.
std::vector<LinkId> worst_failure_links(const FailureProfile& profile, double fraction);

/// Parses the line-based campaign spec format (see README "Campaign
/// subsystem"): top-level `key = value` lines (name/effort/seed), then one
/// `[cell]` section per cell. Throws std::runtime_error naming the offending
/// line on malformed input.
Campaign parse_campaign_spec(std::istream& in);

/// Keeps only cells whose id contains `substr` (empty keeps everything).
void filter_cells(Campaign& campaign, std::string_view substr);

/// Parses a --workers / --inner-threads style CLI value: the whole token
/// must be an integer in [0, 4096] (0 = hardware concurrency). nullopt on
/// anything else — shared by every campaign front end so the validation
/// can't drift.
std::optional<int> parse_worker_count(const std::string& text);

}  // namespace dtr::experiments
