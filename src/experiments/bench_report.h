#pragma once

/// Schema-versioned perf-trajectory artifact (BENCH_<sha>.json): a flat list
/// of named wall-clock samples written with the deterministic util/json
/// writer. The CI perf job emits one per commit, uploads it, and compares it
/// against the checked-in bench/baseline.json via scripts/check-bench.py —
/// timings are machine-dependent, so the artifact records them for trend
/// analysis and the gate only warns past a generous regression threshold.

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dtr::experiments {

/// Schema identifier embedded in every perf artifact; bump when the layout
/// changes incompatibly.
inline constexpr std::string_view kBenchSchema = "dtr.bench.v1";

/// One timed sample: a benchmark (or campaign cell) name, its per-iteration
/// wall-clock in milliseconds, and optional named counters.
struct BenchEntry {
  std::string name;
  double real_ms = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

struct BenchReport {
  std::string sha;     ///< commit identity; empty when unknown
  std::string effort;  ///< workload effort the samples ran at
  std::vector<BenchEntry> entries;
};

void write_bench_json(std::ostream& os, const BenchReport& report);

}  // namespace dtr::experiments
