#include "experiments/results.h"

#include <ostream>
#include <sstream>

#include "util/json.h"
#include "util/stats.h"

namespace dtr::experiments {

double MetricRow::get(std::string_view name, double fallback) const {
  for (const auto& [k, v] : values)
    if (k == name) return v;
  return fallback;
}

const std::vector<double>* MetricRow::get_series(std::string_view name) const {
  for (const auto& [k, v] : series)
    if (k == name) return &v;
  return nullptr;
}

const CellResult* CampaignResult::find(std::string_view id) const {
  for (const CellResult& cell : cells)
    if (cell.id == id) return &cell;
  return nullptr;
}

Aggregate aggregate_metric(const CellResult& cell, std::string_view name) {
  RunningStats stats;
  for (const MetricRow& rep : cell.reps)
    for (const auto& [k, v] : rep.values)
      if (k == name) stats.add(v);
  return {stats.count(), stats.mean(), stats.stddev()};
}

std::vector<std::pair<std::string, Aggregate>> aggregate_metrics(const CellResult& cell) {
  // Single pass: accumulate per name in first-appearance order.
  std::vector<std::pair<std::string, RunningStats>> stats;
  for (const MetricRow& rep : cell.reps) {
    for (const auto& [name, value] : rep.values) {
      RunningStats* entry = nullptr;
      for (auto& [existing, s] : stats) {
        if (existing == name) {
          entry = &s;
          break;
        }
      }
      if (entry == nullptr) entry = &stats.emplace_back(name, RunningStats{}).second;
      entry->add(value);
    }
  }
  std::vector<std::pair<std::string, Aggregate>> out;
  out.reserve(stats.size());
  for (const auto& [name, s] : stats)
    out.emplace_back(name, Aggregate{s.count(), s.mean(), s.stddev()});
  return out;
}

void write_campaign_json(std::ostream& os, const CampaignResult& result,
                         const CampaignJsonOptions& options) {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kCampaignSchema);
  w.key("name").value(result.name);
  w.key("effort").value(result.effort);
  w.key("seed").value(static_cast<unsigned long long>(result.seed));
  if (options.include_timings) {
    w.key("seconds").value(result.seconds);
    w.key("cell_workers").value(result.cell_workers);
    w.key("inner_threads").value(result.inner_threads);
  }
  w.key("cells").begin_array();
  for (const CellResult& cell : result.cells) {
    w.begin_object();
    w.key("id").value(cell.id);
    w.key("label").value(cell.label);
    if (cell.error.empty()) w.key("error").null();
    else w.key("error").value(cell.error);
    if (options.include_timings) w.key("seconds").value(cell.seconds);
    w.key("reps").begin_array();
    for (const MetricRow& rep : cell.reps) {
      w.begin_object();
      w.key("seed").value(static_cast<unsigned long long>(rep.seed));
      w.key("metrics").begin_object();
      for (const auto& [name, value] : rep.values) w.key(name).value(value);
      w.end_object();
      if (!rep.series.empty()) {
        w.key("series").begin_object();
        for (const auto& [name, xs] : rep.series) {
          w.key(name).begin_array();
          for (const double x : xs) w.value(x);
          w.end_array();
        }
        w.end_object();
      }
      w.end_object();
    }
    w.end_array();
    w.key("aggregates").begin_object();
    for (const auto& [name, agg] : aggregate_metrics(cell)) {
      w.key(name).begin_object();
      w.key("count").value(agg.count);
      w.key("mean").value(agg.mean);
      w.key("stddev").value(agg.stddev);
      w.end_object();
    }
    w.end_object();
    if (!cell.telemetry.empty()) {
      // Only cells with a `telemetry=1` directive carry the block, so every
      // pre-existing artifact keeps its exact bytes.
      w.key("telemetry").begin_object();
      for (const auto& [name, value] : cell.telemetry)
        w.key(name).value(static_cast<unsigned long long>(value));
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

std::string campaign_json(const CampaignResult& result,
                          const CampaignJsonOptions& options) {
  std::ostringstream ss;
  write_campaign_json(ss, result, options);
  return ss.str();
}

}  // namespace dtr::experiments
