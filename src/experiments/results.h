#pragma once

/// Typed campaign results and the schema-versioned JSON artifact writer.
/// Every sweep-style bench emits these so performance/quality trajectories
/// can be tracked machine-readably across PRs (BENCH_*.json artifacts).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dtr::experiments {

/// One repetition's output: insertion-ordered (name, value) scalars plus
/// optional named per-index series (e.g. fig6's per-top-failure curves).
/// Plain ordered pairs — not a map — so the JSON key order is stable.
struct MetricRow {
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, double>> values;
  std::vector<std::pair<std::string, std::vector<double>>> series;

  double get(std::string_view name, double fallback = 0.0) const;
  /// nullptr when the series is absent.
  const std::vector<double>* get_series(std::string_view name) const;
};

/// One campaign cell's outcome. `error` is non-empty if the cell threw; the
/// reps collected before the failure are preserved and the campaign runs on.
struct CellResult {
  std::string id;
  std::string label;
  std::string error;
  std::vector<MetricRow> reps;
  /// Deterministic telemetry counters of this cell (name-sorted), filled
  /// only when the cell opted in via the `telemetry=1` spec key. Emitted as
  /// the "telemetry" object — byte-identical across execution shapes.
  std::vector<std::pair<std::string, std::uint64_t>> telemetry;
  double seconds = 0.0;  ///< wall clock; excluded from deterministic JSON
};

/// Whole-campaign outcome. Cells appear in campaign order regardless of the
/// execution schedule (the sharding is invisible in the artifact).
struct CampaignResult {
  std::string name;
  std::string effort;
  std::uint64_t seed = 0;
  std::vector<CellResult> cells;
  double seconds = 0.0;   ///< wall clock; excluded from deterministic JSON
  int cell_workers = 1;   ///< execution shape; excluded from deterministic JSON
  int inner_threads = 1;  ///< execution shape; excluded from deterministic JSON

  /// nullptr when no cell has that id.
  const CellResult* find(std::string_view id) const;
};

/// Mean/stddev of one scalar metric across a cell's repetitions.
struct Aggregate {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

Aggregate aggregate_metric(const CellResult& cell, std::string_view name);

/// Every scalar metric aggregated across reps, names in first-appearance
/// order.
std::vector<std::pair<std::string, Aggregate>> aggregate_metrics(const CellResult& cell);

/// Schema identifier embedded in every artifact; bump when the layout
/// changes incompatibly.
inline constexpr std::string_view kCampaignSchema = "dtr.campaign.v1";

struct CampaignJsonOptions {
  /// Wall-clock and execution-shape fields are nondeterministic; keeping
  /// them out (the default) makes artifacts byte-identical across worker
  /// counts and across cell-parallel vs inner-parallel execution.
  bool include_timings = false;
};

void write_campaign_json(std::ostream& os, const CampaignResult& result,
                         const CampaignJsonOptions& options = {});

std::string campaign_json(const CampaignResult& result,
                          const CampaignJsonOptions& options = {});

}  // namespace dtr::experiments
