#include "experiments/bench_report.h"

#include <ostream>

#include "util/json.h"

namespace dtr::experiments {

void write_bench_json(std::ostream& os, const BenchReport& report) {
  JsonWriter json(os);
  json.begin_object();
  json.key("schema").value(kBenchSchema);
  json.key("sha").value(report.sha);
  json.key("effort").value(report.effort);
  json.key("benchmarks").begin_array();
  for (const BenchEntry& entry : report.entries) {
    json.begin_object();
    json.key("name").value(entry.name);
    json.key("real_ms").value(entry.real_ms);
    if (!entry.counters.empty()) {
      json.key("counters").begin_object();
      for (const auto& [name, value] : entry.counters) json.key(name).value(value);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << "\n";
}

}  // namespace dtr::experiments
