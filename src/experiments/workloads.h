#pragma once

/// Experiment-workload construction: the Sec. V-A evaluation settings
/// (topology families, traffic synthesis, SLA calibration, load scaling)
/// packaged as a reusable, tested library module. The bench binaries, the
/// examples and downstream users all build instances through this API.

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/optimizer.h"
#include "graph/isp.h"
#include "graph/topology.h"
#include "routing/evaluator.h"
#include "traffic/gravity.h"
#include "traffic/scaling.h"
#include "util/presets.h"
#include "util/table.h"

namespace dtr::experiments {

enum class TopologyKind { kRand, kNear, kPl, kIsp };

std::string to_string(TopologyKind k);

/// Source for TopologyKind::kIsp workloads (the `topology = isp[:...]`
/// campaign axis): the paper's embedded 16-city backbone, the seeded
/// Rocketfuel-style generator (scales to 1000+ nodes), or a `dtr-graph 1`
/// file on disk.
enum class IspSource { kBackbone16, kGenerated, kFile };

/// One experiment instance specification (Sec. V-A settings).
struct WorkloadSpec {
  TopologyKind kind = TopologyKind::kRand;
  int nodes = 30;
  double degree = 6.0;     ///< RandTopo/NearTopo mean degree
  int pl_attachments = 3;  ///< PLTopo BA attachments
  double theta_ms = 25.0;
  UtilizationTarget util{UtilizationTarget::Kind::kAverage, 0.43};
  double delay_fraction = 0.30;
  std::uint64_t seed = 1;

  // ISP scale axis (kind == kIsp only). kGenerated draws node count from
  // `nodes` and the generator shape from the isp_* fields; kFile loads
  // `isp_file` and ignores both.
  IspSource isp_source = IspSource::kBackbone16;
  int isp_pops = 12;
  int isp_cores_per_pop = 2;
  double isp_backbone_degree = 3.0;
  /// > 0 adds degree-skewed peering chords up to this mean node degree.
  double isp_avg_degree = 0.0;
  std::string isp_file;

  std::string label() const;
};

struct Workload {
  Graph graph;
  ClassedTraffic traffic;
  EvalParams params;
  WorkloadSpec spec;
};

/// Builds graph + traffic + eval params for a spec (deterministic per seed).
/// Synthesized AND ISP delays are calibrated against the SLA bound
/// (DESIGN.md §4/§4b); traffic is gravity-model, 30% delay-sensitive,
/// scaled to the spec's utilization target.
Workload make_workload(const WorkloadSpec& spec);

/// The paper's four evaluation topologies (Table I/II row set). At non-full
/// effort the synthesized topologies shrink (16 nodes instead of 30, or the
/// DTR_NODES override) so a full bench sweep stays in minutes; ratios
/// (degree, load, |Ec|/|E|) are unchanged.
std::vector<WorkloadSpec> paper_topologies(Effort effort, std::uint64_t seed);

/// RandTopo spec at the effort-scaled default size (honors DTR_NODES).
WorkloadSpec default_rand_spec(Effort effort, std::uint64_t seed);

/// Effort / repeats / seed pulled from DTR_EFFORT, DTR_REPEATS, DTR_SEED.
struct BenchContext {
  Effort effort = Effort::kQuick;
  int repeats = 3;  ///< paper: 5
  std::uint64_t seed = 1;
};

BenchContext context_from_env();

/// Prints the standard bench header (effort, repeats, seed).
void print_context(std::ostream& os, const std::string& bench_name,
                   const BenchContext& ctx);

/// Runs the two-phase optimizer with effort defaults; `tweak` may adjust the
/// config (selector, |Ec| fraction, ...) before the run.
OptimizeResult run_optimizer(const Evaluator& evaluator, Effort effort,
                             std::uint64_t seed,
                             const std::function<void(OptimizerConfig&)>& tweak = {});

/// Convenience: profile a routing across all single link failures.
FailureProfile link_failure_profile(const Evaluator& evaluator, const WeightSetting& w);

}  // namespace dtr::experiments
