#pragma once

#include <span>
#include <vector>

#include "routing/evaluator.h"

namespace dtr {

/// Per-scenario performance profile of one routing over a failure-scenario
/// set — the raw material behind every evaluation table/figure (Sec. IV-E/V).
struct FailureProfile {
  std::vector<double> violations;  ///< SLA violations per scenario
  std::vector<double> lambda;      ///< Lambda_fail per scenario
  std::vector<double> phi;         ///< Phi_fail per scenario
  double phi_uncap = 1.0;          ///< normalizer for figure series

  /// beta: average SLA violations across scenarios (Sec. IV-E1).
  double beta() const;
  /// Mean violations over the worst `fraction` of scenarios ("top-10%").
  double beta_top(double fraction = 0.10) const;
  double lambda_sum() const;
  double phi_sum() const;
  /// Per-scenario Phi normalized by the uncapacitated reference.
  std::vector<double> normalized_phi() const;
};

/// Evaluates `w` under every scenario and collects the profile. Scenarios
/// are batched across `pool` when given (bit-identical for any worker
/// count, like every pool consumer).
FailureProfile profile_failures(const Evaluator& evaluator, const WeightSetting& w,
                                std::span<const FailureScenario> scenarios,
                                ThreadPool* pool = nullptr);

/// |Phi_fail(a) - Phi_fail(b)| / Phi_fail(b) * 100 — the beta_Phi(%) accuracy
/// metric of Table I (b = reference = full search).
double beta_phi_percent(const FailureProfile& candidate, const FailureProfile& reference);

/// Load-redistribution statistics after a failure (Fig. 4): compares a
/// scenario's arc utilizations against the normal-condition ones.
struct LoadRedistribution {
  int links_with_increase = 0;   ///< physical links whose max-direction utilization rose
  double average_increase = 0.0; ///< mean utilization increase over those links
  double max_utilization = 0.0;  ///< max arc utilization in the failure state
};
LoadRedistribution compare_loads(const Graph& g, const EvalResult& normal,
                                 const EvalResult& failed);

/// Average and maximum arc utilization of an evaluation (needs kFull detail).
struct UtilizationStats {
  double average = 0.0;
  double max = 0.0;
};
UtilizationStats utilization_stats(const EvalResult& result);

/// Mean over SD pairs of the maximum arc utilization seen along the pair's
/// delay-class shortest-path DAG — Table V's "average max utilization".
double average_max_path_utilization(const Evaluator& evaluator, const WeightSetting& w);

/// Sorted descending copy (for "sorted failure id" figure series).
std::vector<double> sorted_desc(std::span<const double> xs);

/// Lower bound on SLA violations that NO routing can avoid under a scenario:
/// delay-demand pairs whose shortest-possible propagation delay (zero
/// queueing, best path) already exceeds theta, plus disconnected pairs.
/// Useful to separate "unavoidable" violations (a property of topology +
/// failure) from the avoidable ones robust optimization fights over.
int unavoidable_violations(const Evaluator& evaluator, const FailureScenario& scenario);

/// Per-scenario unavoidable-violation counts (pool-sharded when given).
std::vector<double> unavoidable_violation_profile(
    const Evaluator& evaluator, std::span<const FailureScenario> scenarios,
    ThreadPool* pool = nullptr);

}  // namespace dtr
