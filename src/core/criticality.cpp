#include "core/criticality.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace dtr {

std::string to_string(SamplingMode m) {
  switch (m) {
    case SamplingMode::kEmulatedWeights: return "emulated-weights";
    case SamplingMode::kExactFailure: return "exact-failure";
  }
  return "?";
}

CriticalityCollector::CriticalityCollector(std::size_t num_links, int wmax, double b1,
                                           const CriticalityParams& params,
                                           std::uint64_t seed)
    : params_(params),
      emulation_floor_(static_cast<int>(std::ceil(params.q * wmax))),
      b1_(b1),
      num_links_(num_links),
      lambda_samples_(num_links),
      phi_samples_(num_links),
      offered_(num_links, 0),
      lambda_tracker_(params.convergence_threshold),
      phi_tracker_(params.convergence_threshold),
      rng_(seed) {
  if (num_links == 0) throw std::invalid_argument("CriticalityCollector: no links");
  if (params.q <= 0.0 || params.q >= 1.0)
    throw std::invalid_argument("CriticalityCollector: q must be in (0,1)");
  if (params.tau < 1) throw std::invalid_argument("CriticalityCollector: tau must be >= 1");
  next_rank_update_at_ = static_cast<std::size_t>(params.tau) * num_links_;
}

bool CriticalityCollector::cost_acceptable(const CostPair& cost,
                                           const CostPair& best) const {
  return cost.lambda <= best.lambda + params_.z * b1_ + 1e-9 &&
         cost.phi <= (1.0 + params_.chi) * best.phi + 1e-9;
}

bool CriticalityCollector::should_sample(const PerturbationEvent& event) const {
  if (!event.cost_after.has_value()) return false;
  if (event.new_weight_delay < emulation_floor_ || event.new_weight_tput < emulation_floor_)
    return false;  // not failure-like: the link must look down for BOTH classes
  return cost_acceptable(event.cost_before, event.global_best);
}

void CriticalityCollector::on_perturbation(const PerturbationEvent& event) {
  if (!should_sample(event)) return;
  add_sample(event.link, *event.cost_after);
}

void CriticalityCollector::add_sample(LinkId link, const CostPair& cost) {
  if (link >= num_links_) throw std::out_of_range("CriticalityCollector::add_sample");
  auto& lambda = lambda_samples_[link];
  auto& phi = phi_samples_[link];
  ++offered_[link];
  if (lambda.size() < params_.max_samples_per_link) {
    lambda.push_back(cost.lambda);
    phi.push_back(cost.phi);
  } else {
    // Reservoir replacement keeps an unbiased subsample per link.
    const std::uint64_t slot = rng_.uniform_index(offered_[link]);
    if (slot < lambda.size()) {
      lambda[slot] = cost.lambda;
      phi[slot] = cost.phi;
    }
  }
  ++total_samples_;
  maybe_update_ranks();
}

void CriticalityCollector::maybe_update_ranks() {
  if (total_samples_ < next_rank_update_at_) return;
  next_rank_update_at_ += static_cast<std::size_t>(params_.tau) * num_links_;
  const CriticalityEstimates est = estimates();
  lambda_tracker_.update(est.rho_lambda);
  phi_tracker_.update(est.rho_phi);
}

std::size_t CriticalityCollector::sample_count(LinkId link) const {
  return lambda_samples_.at(link).size();
}

std::vector<LinkId> CriticalityCollector::links_by_sample_need() const {
  std::vector<LinkId> order(num_links_);
  std::iota(order.begin(), order.end(), LinkId{0});
  std::sort(order.begin(), order.end(), [&](LinkId a, LinkId b) {
    if (lambda_samples_[a].size() != lambda_samples_[b].size())
      return lambda_samples_[a].size() < lambda_samples_[b].size();
    return a < b;
  });
  return order;
}

std::span<const double> CriticalityCollector::lambda_samples(LinkId link) const {
  return lambda_samples_.at(link);
}

std::span<const double> CriticalityCollector::phi_samples(LinkId link) const {
  return phi_samples_.at(link);
}

CriticalityEstimates CriticalityCollector::estimates() const {
  CriticalityEstimates est;
  est.rho_lambda.resize(num_links_);
  est.rho_phi.resize(num_links_);
  est.mean_lambda.resize(num_links_);
  est.mean_phi.resize(num_links_);
  est.tail_lambda.resize(num_links_);
  est.tail_phi.resize(num_links_);
  for (LinkId l = 0; l < num_links_; ++l) {
    est.mean_lambda[l] = mean(lambda_samples_[l]);
    est.mean_phi[l] = mean(phi_samples_[l]);
    est.tail_lambda[l] = left_tail_mean(lambda_samples_[l], params_.left_tail_fraction);
    est.tail_phi[l] = left_tail_mean(phi_samples_[l], params_.left_tail_fraction);
    est.rho_lambda[l] = est.mean_lambda[l] - est.tail_lambda[l];
    est.rho_phi[l] = est.mean_phi[l] - est.tail_phi[l];
  }
  return est;
}

bool CriticalityCollector::converged() const {
  return lambda_tracker_.converged() && phi_tracker_.converged();
}

std::size_t CriticalityCollector::samples_until_next_rank_update() const {
  return next_rank_update_at_ > total_samples_ ? next_rank_update_at_ - total_samples_
                                               : 1;
}

long top_up_criticality_samples(const Evaluator& evaluator,
                                CriticalityCollector& collector,
                                std::span<const AcceptableStore::Entry* const> entries,
                                SamplingMode mode, int wmax, long budget, Rng& rng,
                                ThreadPool* pool) {
  if (entries.empty())
    throw std::invalid_argument("top_up_criticality_samples: empty entry pool");

  long generated = 0;
  const int floor = collector.emulation_weight_floor();

  // One pending sample: the link it belongs to plus the evaluation job that
  // produces its cost. Emulated mode evaluates a perturbed copy of the drawn
  // setting under normal conditions; exact mode evaluates the drawn setting
  // under the true failure of the link.
  struct PendingSample {
    LinkId link;
    WeightSetting perturbed;  // emulated mode only
  };
  std::vector<PendingSample> pending;
  std::vector<EvalJob> jobs;

  while (!collector.converged() && generated < budget) {
    const std::vector<LinkId> order = collector.links_by_sample_need();
    std::size_t pos = 0;
    while (pos < order.size()) {
      if (collector.converged() || generated >= budget) break;

      // Batch at most up to the next rank refresh: convergence cannot change
      // mid-batch, so drawing/evaluating these jobs ahead of time replays the
      // sequential loop exactly.
      const std::size_t batch =
          std::min({order.size() - pos, static_cast<std::size_t>(budget - generated),
                    collector.samples_until_next_rank_update()});
      pending.clear();
      jobs.clear();
      for (std::size_t i = 0; i < batch; ++i) {
        const LinkId link = order[pos + i];
        const AcceptableStore::Entry& entry = *entries[rng.uniform_index(entries.size())];
        if (mode == SamplingMode::kEmulatedWeights) {
          WeightSetting w = entry.setting;
          w.set(TrafficClass::kDelay, link, rng.uniform_int(floor, wmax));
          w.set(TrafficClass::kThroughput, link, rng.uniform_int(floor, wmax));
          pending.push_back({link, std::move(w)});
        } else {
          pending.push_back({link, WeightSetting()});
          jobs.push_back({&entry.setting, FailureScenario::link(link)});
        }
      }
      if (mode == SamplingMode::kEmulatedWeights) {
        for (const PendingSample& p : pending)
          jobs.push_back({&p.perturbed, FailureScenario::none()});
      }

      const std::vector<CostPair> costs = evaluator.evaluate_costs(jobs, pool);
      for (std::size_t i = 0; i < batch; ++i) {
        collector.add_sample(pending[i].link, costs[i]);
        ++generated;
      }
      pos += batch;
    }
  }
  return generated;
}

ScenarioCriticality estimate_scenario_criticality(
    const Evaluator& evaluator, std::span<const FailureScenario> scenarios,
    std::span<const AcceptableStore::Entry* const> entries,
    const CriticalityParams& params, long budget, Rng& rng, ThreadPool* pool) {
  if (scenarios.empty())
    throw std::invalid_argument("estimate_scenario_criticality: empty catalog");
  if (entries.empty())
    throw std::invalid_argument("estimate_scenario_criticality: empty entry pool");

  // The per-link collector machinery is index-generic: instantiate it over
  // catalog positions. wmax/b1 feed only the Phase-1a perturbation trigger,
  // which direct add_sample injection never consults.
  CriticalityCollector collector(scenarios.size(), /*wmax=*/100, /*b1=*/0.0, params,
                                 rng.split().seed());

  long generated = 0;
  std::vector<LinkId> order;
  std::vector<std::size_t> batch_index;
  std::vector<EvalJob> jobs;
  while (!collector.converged() && generated < budget) {
    order = collector.links_by_sample_need();
    std::size_t pos = 0;
    while (pos < order.size()) {
      if (collector.converged() || generated >= budget) break;
      // Batch at most up to the next rank refresh: convergence cannot change
      // mid-batch, so drawing/evaluating these jobs ahead of time replays the
      // sequential loop exactly.
      const std::size_t batch =
          std::min({order.size() - pos, static_cast<std::size_t>(budget - generated),
                    collector.samples_until_next_rank_update()});
      batch_index.clear();
      jobs.clear();
      for (std::size_t i = 0; i < batch; ++i) {
        const std::size_t index = order[pos + i];
        const AcceptableStore::Entry& entry = *entries[rng.uniform_index(entries.size())];
        batch_index.push_back(index);
        jobs.push_back({&entry.setting, scenarios[index]});
      }
      const std::vector<CostPair> costs = evaluator.evaluate_costs(jobs, pool);
      for (std::size_t i = 0; i < batch; ++i) {
        collector.add_sample(static_cast<LinkId>(batch_index[i]), costs[i]);
        ++generated;
      }
      pos += batch;
    }
  }

  ScenarioCriticality out;
  out.estimates = collector.estimates();
  out.samples = generated;
  out.converged = collector.converged();
  return out;
}

}  // namespace dtr
