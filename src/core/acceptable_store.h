#pragma once

#include <cstddef>
#include <vector>

#include "cost/cost_types.h"
#include "routing/weights.h"
#include "util/rng.h"

namespace dtr {

/// Bounded store of weight settings encountered during Phase 1 together with
/// their normal-condition costs. Phase 2 restarts its constrained search from
/// entries that satisfy Eqs. (5)/(6) once Lambda*/Phi* are known; Phase 1b
/// perturbs entries to generate additional failure-like cost samples.
///
/// Capacity-bounded via reservoir sampling so the retained entries are an
/// unbiased sample of everything offered — keeping diversity rather than just
/// the most recent trajectory.
class AcceptableStore {
 public:
  struct Entry {
    WeightSetting setting;
    CostPair cost;
  };

  AcceptableStore(std::size_t capacity, std::uint64_t seed);

  void offer(const WeightSetting& setting, const CostPair& cost);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Entry& entry(std::size_t i) const { return entries_[i]; }

  /// Entries satisfying Lambda == lambda_star (tolerance) and
  /// Phi <= (1+chi) * phi_star — the Phase 2 feasible starting points.
  std::vector<const Entry*> feasible_entries(double lambda_star, double phi_star,
                                             double chi) const;

  /// Uniformly random entry; requires !empty().
  const Entry& sample(Rng& rng) const;

 private:
  std::size_t capacity_;
  std::size_t offered_ = 0;
  std::vector<Entry> entries_;
  Rng rng_;
};

}  // namespace dtr
