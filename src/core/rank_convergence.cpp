#include "core/rank_convergence.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dtr {

std::vector<std::size_t> criticality_ranks(std::span<const double> criticality) {
  std::vector<std::size_t> order(criticality.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (criticality[a] != criticality[b]) return criticality[a] > criticality[b];
    return a < b;
  });
  std::vector<std::size_t> rank(criticality.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
  return rank;
}

RankTracker::RankTracker(double threshold_e) : threshold_(threshold_e) {
  if (threshold_ < 0.0) throw std::invalid_argument("RankTracker: negative threshold");
}

double RankTracker::update(std::span<const double> criticality) {
  auto rank = criticality_ranks(criticality);
  double index = 0.0;
  if (updates_ > 0) {
    if (rank.size() != previous_rank_.size())
      throw std::invalid_argument("RankTracker: vector size changed between updates");
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t l = 0; l < rank.size(); ++l) {
      const double change = std::abs(static_cast<double>(rank[l]) -
                                     static_cast<double>(previous_rank_[l]));
      sum += change;
      sum_sq += change * change;
    }
    // gamma_l = S_l / sum(S_l)  =>  S = sum(S_l^2) / sum(S_l); 0 if static.
    index = sum > 0.0 ? sum_sq / sum : 0.0;
  }
  previous_rank_ = std::move(rank);
  ++updates_;
  last_index_ = index;
  return index;
}

}  // namespace dtr
