#pragma once

#include <functional>
#include <optional>

#include "cost/cost_types.h"
#include "routing/weights.h"
#include "util/rng.h"

namespace dtr {

class ThreadPool;

/// Stopping/diversification parameters for one search phase (Sec. IV-A).
struct PhaseParams {
  /// Iterations without improvement before restarting from a fresh setting
  /// ("diversification"). Paper: 100 (Phase 1) / 30 (Phase 2).
  int diversification_interval = 100;
  /// Stop after this many consecutive diversifications whose best-cost
  /// improvement stayed below `improvement_threshold`. Paper: P1=20 / P2=10.
  int stall_diversifications = 20;
  /// The c% criterion (0.001 == 0.1%).
  double improvement_threshold = 0.001;
  /// Hard safety cap on total diversifications (<=0 means 4x stall budget).
  int max_diversifications = 0;
  /// Hard safety cap on total iterations (<=0 means
  /// 20 * diversification_interval * max_diversifications). Keeps runs
  /// bounded when marginal accepted moves trickle in indefinitely.
  long max_iterations = 0;
};

/// Objective evaluated by the local search. Phase 1 wraps K_normal; Phase 2
/// wraps K_fail over the critical set subject to constraints (5)/(6).
class SearchObjective {
 public:
  virtual ~SearchObjective() = default;

  /// Cost of `w`, or nullopt when `w` violates the phase's constraints.
  /// `incumbent` (may be null) is the currently accepted cost — objectives
  /// can use it as an early-abort bound; if they do, any returned cost that
  /// is not better than `incumbent` must still compare as not-better (partial
  /// sums satisfy this since per-scenario costs are non-negative).
  virtual std::optional<CostPair> evaluate(const WeightSetting& w,
                                           const CostPair* incumbent) = 0;
};

/// Everything an observer learns about one perturbation probe. Drives the
/// Phase 1a criticality sampling (Sec. IV-D1).
struct PerturbationEvent {
  LinkId link = kInvalidLink;
  int new_weight_delay = 0;
  int new_weight_tput = 0;
  CostPair cost_before;              ///< cost of the accepted setting being perturbed
  CostPair global_best;              ///< best cost discovered so far this phase
  std::optional<CostPair> cost_after;  ///< nullopt if candidate infeasible
  bool accepted = false;
  /// The probed setting (current setting with `link`'s weights replaced).
  /// Observers may evaluate it under other scenarios; note that for the
  /// failure of `link` itself the perturbed weights are immaterial (dead arcs
  /// have no cost), so evaluating the candidate equals evaluating the
  /// pre-perturbation setting.
  const WeightSetting* candidate = nullptr;
};

/// One committed change of the current setting: a probe accept or a restart
/// adoption. Fired on the calling thread in iteration order (bit-identical
/// for any worker count, like the observer), so it is safe to derive
/// deterministic-plane convergence traces and event streams from it.
struct MoveRecord {
  long iteration = 0;       ///< search iteration the move landed in
  long evaluations = 0;     ///< objective evaluations consumed so far
  LinkId link = kInvalidLink;  ///< changed link; kInvalidLink on restart adoption
  CostPair cost;            ///< incumbent cost after the move
  bool restart = false;     ///< diversification restart, not a probe accept
};

/// Per-link random-reassignment local search with diversification restarts —
/// the engine shared by both optimization phases. In every iteration each
/// link (random order) has BOTH its weights redrawn uniformly in [1, wmax];
/// the candidate is kept iff the objective deems it feasible and
/// lexicographically better than the current setting.
class LocalSearch {
 public:
  struct Config {
    PhaseParams phase;
    int wmax = 100;
    std::uint64_t seed = 1;
    /// Optional worker pool for speculative candidate scoring: the next
    /// `pool->num_workers()` probes are evaluated concurrently under the
    /// assumption that none is accepted; on an accept the stale tail is
    /// discarded and re-scored. Acceptance decisions, observer events and the
    /// RNG stream are bit-identical to the sequential search for any worker
    /// count — accepts are rare in descent, so most speculation pays off.
    /// Requires `objective.evaluate` to be safe to call concurrently
    /// (observers and accept hooks still run on the calling thread, in
    /// order). Evaluator-backed objectives satisfy this: its evaluation
    /// entry points are const and its base-routing cache is internally
    /// synchronized, so speculative probes may populate the cache from any
    /// worker. nullptr = sequential.
    ThreadPool* pool = nullptr;
  };

  struct Result {
    WeightSetting best;
    CostPair best_cost;
    long iterations = 0;
    int diversifications = 0;
    long evaluations = 0;
    long accepted_moves = 0;
  };

  explicit LocalSearch(Config config);

  /// Called for every probed candidate.
  void set_observer(std::function<void(const PerturbationEvent&)> observer);

  /// Called whenever a candidate is accepted (becomes the current setting).
  void set_on_accept(std::function<void(const WeightSetting&, const CostPair&)> on_accept);

  /// Called after every committed move (probe accepts AND restart adoptions)
  /// with its iteration-indexed record — the deterministic convergence feed.
  void set_on_move(std::function<void(const MoveRecord&)> on_move);

  /// Produces the setting a diversification restarts from. Defaults to
  /// uniformly random weights.
  void set_restart(std::function<WeightSetting(Rng&)> restart);

  /// Runs the search from `initial`. `initial` must be feasible under the
  /// objective (throws std::invalid_argument otherwise).
  Result run(SearchObjective& objective, const WeightSetting& initial);

 private:
  Config config_;
  std::function<void(const PerturbationEvent&)> observer_;
  std::function<void(const WeightSetting&, const CostPair&)> on_accept_;
  std::function<void(const MoveRecord&)> on_move_;
  std::function<WeightSetting(Rng&)> restart_;
};

}  // namespace dtr
