#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dtr {

/// Convergence test for the criticality ranking (Sec. IV-D1). Between two
/// updates t-1 and t of a criticality-sorted list, the per-link index is
/// S_l(t) = |Rank(l,t) - Rank(l,t-1)| and the overall change is
/// S = sum_l gamma_l * S_l with gamma_l proportional to S_l — i.e.
/// S = (sum S_l^2) / (sum S_l), emphasizing links whose rank moved most.
/// Estimates are "converged" once S <= e.
class RankTracker {
 public:
  /// `threshold_e`: the paper's e (default 2).
  explicit RankTracker(double threshold_e = 2.0);

  /// Feeds the next criticality vector (higher == more critical; ties broken
  /// by link id for determinism). Returns the S index relative to the
  /// previous update, or 0 for the first update.
  double update(std::span<const double> criticality);

  std::size_t updates() const { return updates_; }
  double last_index() const { return last_index_; }

  /// Requires at least two updates (a rank *change* needs two rankings) and
  /// the latest S <= e.
  bool converged() const { return updates_ >= 2 && last_index_ <= threshold_; }

 private:
  double threshold_;
  std::size_t updates_ = 0;
  double last_index_ = 0.0;
  std::vector<std::size_t> previous_rank_;
};

/// Rank positions (0 = most critical) of each entry, ties broken by index.
std::vector<std::size_t> criticality_ranks(std::span<const double> criticality);

}  // namespace dtr
