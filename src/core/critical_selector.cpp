#include "core/critical_selector.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dtr {

namespace {

constexpr double kEps = 1e-12;

std::vector<LinkId> descending_order(std::span<const double> value) {
  std::vector<LinkId> order(value.size());
  std::iota(order.begin(), order.end(), LinkId{0});
  std::sort(order.begin(), order.end(), [&](LinkId a, LinkId b) {
    if (value[a] != value[b]) return value[a] > value[b];
    return a < b;
  });
  return order;
}

/// suffix[m] = sum of values of links ranked m.. end  == expected error when
/// only the top-m links of this list are kept.
std::vector<double> suffix_errors(const std::vector<LinkId>& order,
                                  std::span<const double> value) {
  std::vector<double> suffix(order.size() + 1, 0.0);
  for (std::size_t i = order.size(); i-- > 0;)
    suffix[i] = suffix[i + 1] + value[order[i]];
  return suffix;
}

std::size_t union_size(const std::vector<LinkId>& order_a, std::size_t n1,
                       const std::vector<LinkId>& order_b, std::size_t n2,
                       std::vector<std::uint8_t>& scratch) {
  std::fill(scratch.begin(), scratch.end(), 0);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n1; ++i)
    if (!scratch[order_a[i]]) { scratch[order_a[i]] = 1; ++count; }
  for (std::size_t i = 0; i < n2; ++i)
    if (!scratch[order_b[i]]) { scratch[order_b[i]] = 1; ++count; }
  return count;
}

}  // namespace

std::vector<double> normalize_criticality(std::span<const double> rho,
                                          std::span<const double> tail,
                                          std::span<const double> mean) {
  if (rho.size() != tail.size() || rho.size() != mean.size())
    throw std::invalid_argument("normalize_criticality: size mismatch");
  double denom = std::accumulate(tail.begin(), tail.end(), 0.0);
  if (denom <= kEps) denom = std::accumulate(mean.begin(), mean.end(), 0.0);
  if (denom <= kEps) denom = 1.0;
  std::vector<double> out(rho.size());
  for (std::size_t i = 0; i < rho.size(); ++i) out[i] = rho[i] / denom;
  return out;
}

CriticalSelection select_critical_links(const CriticalityEstimates& estimates,
                                        std::size_t target_size) {
  const std::size_t num_links = estimates.rho_lambda.size();
  if (num_links == 0) throw std::invalid_argument("select_critical_links: no links");
  if (target_size == 0) throw std::invalid_argument("select_critical_links: target 0");
  if (estimates.rho_phi.size() != num_links)
    throw std::invalid_argument("select_critical_links: estimate size mismatch");

  CriticalSelection sel;
  sel.norm_rho_lambda = normalize_criticality(estimates.rho_lambda,
                                              estimates.tail_lambda, estimates.mean_lambda);
  sel.norm_rho_phi =
      normalize_criticality(estimates.rho_phi, estimates.tail_phi, estimates.mean_phi);
  sel.order_lambda = descending_order(sel.norm_rho_lambda);
  sel.order_phi = descending_order(sel.norm_rho_phi);

  const auto err_lambda = suffix_errors(sel.order_lambda, sel.norm_rho_lambda);
  const auto err_phi = suffix_errors(sel.order_phi, sel.norm_rho_phi);

  // Algorithm 1: shrink the list whose next truncation hurts LESS; i.e. if
  // truncating E_Lambda to n1-1 would leave error >= truncating E_Phi to
  // n2-1, drop from E_Phi instead.
  std::size_t n1 = num_links, n2 = num_links;
  std::vector<std::uint8_t> scratch(num_links);
  while (union_size(sel.order_lambda, n1, sel.order_phi, n2, scratch) > target_size) {
    if (n1 == 0 && n2 == 0) break;  // degenerate target < 1 union element
    if (n2 == 0) {
      --n1;
    } else if (n1 == 0) {
      --n2;
    } else if (err_lambda[n1 - 1] >= err_phi[n2 - 1]) {
      --n2;
    } else {
      --n1;
    }
  }

  sel.n1 = n1;
  sel.n2 = n2;
  sel.expected_error_lambda = err_lambda[n1];
  sel.expected_error_phi = err_phi[n2];

  std::fill(scratch.begin(), scratch.end(), 0);
  for (std::size_t i = 0; i < n1; ++i) scratch[sel.order_lambda[i]] = 1;
  for (std::size_t i = 0; i < n2; ++i) scratch[sel.order_phi[i]] = 1;
  for (LinkId l = 0; l < num_links; ++l)
    if (scratch[l]) sel.critical.push_back(l);
  return sel;
}

}  // namespace dtr
