#include "core/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "graph/spf.h"
#include "routing/route_state.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dtr {

double FailureProfile::beta() const { return mean(violations); }

double FailureProfile::beta_top(double fraction) const {
  return top_tail_mean(violations, fraction);
}

double FailureProfile::lambda_sum() const {
  double s = 0.0;
  for (double v : lambda) s += v;
  return s;
}

double FailureProfile::phi_sum() const {
  double s = 0.0;
  for (double v : phi) s += v;
  return s;
}

std::vector<double> FailureProfile::normalized_phi() const {
  std::vector<double> out(phi.size());
  const double denom = phi_uncap > 0.0 ? phi_uncap : 1.0;
  for (std::size_t i = 0; i < phi.size(); ++i) out[i] = phi[i] / denom;
  return out;
}

FailureProfile profile_failures(const Evaluator& evaluator, const WeightSetting& w,
                                std::span<const FailureScenario> scenarios,
                                ThreadPool* pool) {
  FailureProfile profile;
  profile.phi_uncap = evaluator.phi_uncap();
  profile.violations.reserve(scenarios.size());
  profile.lambda.reserve(scenarios.size());
  profile.phi.reserve(scenarios.size());
  const std::vector<EvalResult> results =
      evaluator.evaluate_failures(w, scenarios, pool, EvalDetail::kCostsOnly);
  for (const EvalResult& r : results) {
    profile.violations.push_back(static_cast<double>(r.sla_violations));
    profile.lambda.push_back(r.lambda);
    profile.phi.push_back(r.phi);
  }
  return profile;
}

double beta_phi_percent(const FailureProfile& candidate, const FailureProfile& reference) {
  const double ref = reference.phi_sum();
  if (ref <= 0.0) return 0.0;
  return std::abs(candidate.phi_sum() - ref) / ref * 100.0;
}

LoadRedistribution compare_loads(const Graph& g, const EvalResult& normal,
                                 const EvalResult& failed) {
  if (normal.arc_utilization.size() != g.num_arcs() ||
      failed.arc_utilization.size() != g.num_arcs())
    throw std::invalid_argument("compare_loads: results lack kFull detail");

  LoadRedistribution out;
  double total_increase = 0.0;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    double before = 0.0, after = 0.0;
    for (ArcId a : g.link_arcs(l)) {
      before = std::max(before, normal.arc_utilization[a]);
      after = std::max(after, failed.arc_utilization[a]);
    }
    if (after > before + 1e-12) {
      ++out.links_with_increase;
      total_increase += after - before;
    }
  }
  if (out.links_with_increase > 0)
    out.average_increase = total_increase / out.links_with_increase;
  out.max_utilization = max_value(failed.arc_utilization);
  return out;
}

UtilizationStats utilization_stats(const EvalResult& result) {
  if (result.arc_utilization.empty())
    throw std::invalid_argument("utilization_stats: result lacks kFull detail");
  return {mean(result.arc_utilization), max_value(result.arc_utilization)};
}

double average_max_path_utilization(const Evaluator& evaluator, const WeightSetting& w) {
  const Graph& g = evaluator.graph();
  const EvalResult normal = evaluator.evaluate(w, FailureScenario::none(), EvalDetail::kFull);

  std::vector<double> cost_delay;
  w.arc_costs(g, TrafficClass::kDelay, cost_delay);

  const std::size_t n = g.num_nodes();
  const TrafficMatrix& demands = evaluator.traffic().delay;
  double sum = 0.0;
  std::size_t count = 0;

  std::vector<double> dist;
  std::vector<double> max_util(n);
  std::vector<NodeId> order;
  for (NodeId t = 0; t < n; ++t) {
    shortest_distances_to(g, t, cost_delay, {}, dist);

    order.clear();
    for (NodeId u = 0; u < n; ++u)
      if (dist[u] != kInfDist) order.push_back(u);
    std::sort(order.begin(), order.end(),
              [&](NodeId a, NodeId b) { return dist[a] < dist[b]; });

    std::fill(max_util.begin(), max_util.end(), 0.0);
    const GraphCsr& csr = g.csr();
    for (NodeId u : order) {
      if (u == t) continue;
      double best = 0.0;
      for (std::uint32_t k = csr.out_offset[u]; k < csr.out_offset[u + 1]; ++k) {
        const ArcId a = csr.out_arc[k];
        const NodeId v = csr.out_head[k];
        if (!arc_is_tight(u, v, cost_delay[a], dist)) continue;
        best = std::max(best, std::max(normal.arc_utilization[a], max_util[v]));
      }
      max_util[u] = best;
    }
    for (NodeId s = 0; s < n; ++s) {
      if (s == t || demands.at(s, t) <= 0.0 || dist[s] == kInfDist) continue;
      sum += max_util[s];
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

std::vector<double> sorted_desc(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

int unavoidable_violations(const Evaluator& evaluator, const FailureScenario& scenario) {
  const Graph& g = evaluator.graph();
  std::vector<std::uint8_t> mask;
  build_alive_mask(g, scenario, mask);
  const std::span<const NodeId> skip = skipped_nodes(scenario);

  std::vector<double> prop_cost(g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) prop_cost[a] = g.arc(a).prop_delay_ms;

  const TrafficMatrix& demands = evaluator.traffic().delay;
  const double theta = evaluator.params().sla.theta_ms;
  int count = 0;
  std::vector<double> dist;
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    if (is_skipped(skip, t)) continue;
    bool any = false;
    for (NodeId s = 0; s < g.num_nodes() && !any; ++s)
      any = (s != t && !is_skipped(skip, s) && demands.at(s, t) > 0.0);
    if (!any) continue;
    shortest_distances_to(g, t, prop_cost, mask, dist);
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      if (s == t || is_skipped(skip, s) || demands.at(s, t) <= 0.0) continue;
      if (dist[s] > theta) ++count;  // includes kInfDist (disconnected)
    }
  }
  return count;
}

std::vector<double> unavoidable_violation_profile(
    const Evaluator& evaluator, std::span<const FailureScenario> scenarios,
    ThreadPool* pool) {
  std::vector<double> out(scenarios.size());
  parallel_for(
      pool, scenarios.size(),
      [&](std::size_t, std::size_t i) {
        out[i] = static_cast<double>(unavoidable_violations(evaluator, scenarios[i]));
      },
      sweep_chunk_size(scenarios.size()));
  return out;
}

}  // namespace dtr
