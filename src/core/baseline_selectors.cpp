#include "core/baseline_selectors.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/stats.h"

namespace dtr {

namespace {

std::vector<LinkId> top_k_by_score(std::span<const double> score, std::size_t k) {
  std::vector<LinkId> order(score.size());
  std::iota(order.begin(), order.end(), LinkId{0});
  std::sort(order.begin(), order.end(), [&](LinkId a, LinkId b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });
  order.resize(std::min(k, order.size()));
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

std::vector<LinkId> select_random_links(std::size_t num_links, std::size_t target_size,
                                        Rng& rng) {
  if (target_size > num_links)
    throw std::invalid_argument("select_random_links: target exceeds link count");
  std::vector<LinkId> all(num_links);
  std::iota(all.begin(), all.end(), LinkId{0});
  std::shuffle(all.begin(), all.end(), rng.engine());
  all.resize(target_size);
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<LinkId> select_by_load(const Evaluator& evaluator,
                                   const WeightSetting& regular_best,
                                   std::size_t target_size) {
  const EvalResult normal =
      evaluator.evaluate(regular_best, FailureScenario::none(), EvalDetail::kFull);
  const Graph& g = evaluator.graph();
  std::vector<double> link_util(g.num_links(), 0.0);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const LinkId l = g.arc(a).link;
    link_util[l] = std::max(link_util[l], normal.arc_utilization[a]);
  }
  return top_k_by_score(link_util, target_size);
}

std::vector<LinkId> select_by_threshold_crossings(const CriticalityCollector& collector,
                                                  std::size_t target_size,
                                                  const ThresholdSelectorParams& params) {
  if (params.bad_quantile <= 0.0 || params.bad_quantile >= 1.0)
    throw std::invalid_argument("select_by_threshold_crossings: quantile outside (0,1)");

  // Pool all samples per class to fix the global "bad" thresholds.
  const std::size_t num_links = collector.num_links();
  std::vector<double> all_lambda, all_phi;
  for (LinkId l = 0; l < num_links; ++l) {
    const auto ls = collector.lambda_samples(l);
    all_lambda.insert(all_lambda.end(), ls.begin(), ls.end());
    const auto ps = collector.phi_samples(l);
    all_phi.insert(all_phi.end(), ps.begin(), ps.end());
  }
  const double bad_lambda = quantile(all_lambda, params.bad_quantile);
  const double bad_phi = quantile(all_phi, params.bad_quantile);

  // Per-link crossing fractions, summed across classes.
  std::vector<double> score(num_links, 0.0);
  for (LinkId l = 0; l < num_links; ++l) {
    const auto ls = collector.lambda_samples(l);
    const auto ps = collector.phi_samples(l);
    if (!ls.empty()) {
      double crossings = 0.0;
      for (double v : ls)
        if (v > bad_lambda) crossings += 1.0;
      score[l] += crossings / static_cast<double>(ls.size());
    }
    if (!ps.empty()) {
      double crossings = 0.0;
      for (double v : ps)
        if (v > bad_phi) crossings += 1.0;
      score[l] += crossings / static_cast<double>(ps.size());
    }
  }
  return top_k_by_score(score, target_size);
}

}  // namespace dtr
