#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/acceptable_store.h"
#include "core/critical_selector.h"
#include "core/criticality.h"
#include "core/local_search.h"
#include "routing/evaluator.h"
#include "scenarios/hardening.h"
#include "telemetry/telemetry.h"
#include "util/presets.h"

namespace dtr {

namespace telemetry {
class EventBus;
}

/// Which critical-link selector drives Phase 2 (Sec. IV-C comparison).
enum class SelectorKind : std::uint8_t {
  kDistributionGap,    ///< this paper: mean minus left-tail mean + Algorithm 1
  kRandom,             ///< Yuan 2003
  kLoad,               ///< Fortz-Thorup 2003
  kThresholdCrossing,  ///< Sridharan-Guerin 2005
  kFullSearch,         ///< Ec = E (brute force reference)
};

std::string to_string(SelectorKind k);

struct OptimizerConfig {
  int wmax = 100;
  PhaseParams phase1{100, 20, 0.001, 0};
  PhaseParams phase2{30, 10, 0.001, 0};
  CriticalityParams criticality{};
  /// |Ec| = max(1, round(critical_fraction * |E|)) unless critical_count > 0.
  double critical_fraction = 0.15;
  std::size_t critical_count = 0;
  /// Constraint (6) relaxation: Phi_normal <= (1+chi) * Phi*.
  double chi = 0.2;
  std::uint64_t seed = 1;
  /// Start Phase 1 from the delay-proportional warm start instead of random.
  bool warm_start = true;
  std::size_t store_capacity = 128;
  /// Phase 1b sample budget; 0 = 20 * tau * |E|.
  long max_phase1b_samples = 0;
  SamplingMode sampling_mode = SamplingMode::kExactFailure;
  SelectorKind selector = SelectorKind::kDistributionGap;
  /// Failure-scenario evaluation parallelism: 0 = one worker per hardware
  /// thread, 1 = strictly sequential (the seed behavior), N = N workers.
  /// The engine is deterministic — results are bit-identical for ANY value;
  /// only wall-clock time changes. Parallelism covers Phase 1a candidate
  /// scoring (speculative probes), Phase 1b sampling batches, and the
  /// Phase 2 critical-scenario sweeps.
  int num_threads = 1;
  /// Hardening objective: WHAT Phase 2 optimizes against. When set, the
  /// catalog's scenarios replace the critical single-link set as the failure
  /// model and `objective->mode` picks the aggregation (expected cost /
  /// weighted percentile / expected downtime). Criticality generalizes with
  /// it: compound scenarios are ranked by distribution gap (scaled by their
  /// probability weight) through the same Algorithm 1 machinery that ranks
  /// links, and Phase 2 sweeps only the selected critical sub-catalog. One
  /// exception keeps the classic pipeline byte-compatible: an expected-cost
  /// objective over exactly the per-link single-failure set (what
  /// objective_from_link_probabilities builds) runs the per-link Phase
  /// 1a/1b/1c path with the catalog weights as link probabilities — the
  /// exact historical RNG stream of the pre-API per-link runs.
  std::optional<HardeningObjective> objective;
  /// Optional telemetry sink (borrowed; may be null). The run's deterministic
  /// optimizer.* counters and its phase spans are merged into it at the end
  /// of optimize(); the shape-dependent base-cache diff stays in
  /// OptimizeResult::process_counters only (the evaluator's OWNER publishes
  /// cache totals once, via Evaluator::flush_cache_stats_to_telemetry — a
  /// second publication here would double-count). Note the evaluator's own
  /// eval.*/spf.* counters flow through EvaluatorConfig::telemetry, fixed
  /// when the evaluator was constructed, not through this field.
  telemetry::Registry* telemetry = nullptr;
  /// Optional streaming event sink (borrowed; may be null). While optimize()
  /// runs it receives deterministic-plane phase markers and one iteration
  /// record per committed search move (published on the calling thread in
  /// iteration order — byte-identical for any num_threads) plus process-plane
  /// Phase-2 progress ticks. Honors the global telemetry kill switch.
  telemetry::EventBus* events = nullptr;
};

/// Paper-ratio configs at the given effort level (see DESIGN.md §7).
OptimizerConfig default_optimizer_config(Effort effort, std::uint64_t seed);

/// One committed search move of the convergence trace, tagged with the phase
/// it happened in (1 = regular optimization of K_normal, 2 = robust
/// optimization of the failure objective).
struct TraceMove {
  int phase = 1;
  MoveRecord move;
};

struct OptimizeResult {
  // Phase 1 ("regular optimization", Eq. (3)) output:
  WeightSetting regular;
  CostPair regular_cost;  ///< Lambda*, Phi*

  // Phase 2 ("robust optimization", Eq. (4) s.t. (5)(6)) output:
  WeightSetting robust;
  CostPair robust_normal_cost;  ///< normal-condition cost of the robust setting
  CostPair robust_kfail;        ///< K_fail-bar over the critical set

  std::vector<LinkId> critical;  ///< Ec
  CriticalityEstimates estimates;
  bool criticality_converged = false;
  std::size_t phase1a_samples = 0;  ///< failure-like samples from Phase 1a
  std::size_t phase1b_samples = 0;  ///< top-up samples from Phase 1b

  // Catalog-objective diagnostics (zero / empty when the run used the classic
  // per-link pipeline — i.e. no objective, or a per-link-shaped shim):
  std::size_t catalog_size = 0;  ///< |S| of the hardening catalog, 0 = per-link run
  std::vector<std::size_t> critical_scenarios;  ///< Sc: catalog positions, ascending
  CriticalityEstimates scenario_estimates;      ///< indexed by catalog position
  bool scenario_rank_converged = false;
  std::size_t scenario_samples = 0;  ///< Phase 1b' catalog-criticality samples
  /// Phase-2 objective value of `robust` under the catalog aggregation
  /// (expected cost / percentile cost / expected avoidable downtime minutes,
  /// by objective->mode). NaN for per-link runs.
  double robust_objective_value = std::numeric_limits<double>::quiet_NaN();

  /// Convergence trace: every committed move (probe accepts + restart
  /// adoptions) of both search phases, in execution order — cost-vs-iteration
  /// per phase. Deterministic: byte-identical for any worker/thread shape.
  std::vector<TraceMove> trace;
  /// Per-link change attribution over the trace: how many accepted moves
  /// changed each link (restart adoptions excluded). Ascending by link id;
  /// links never changed are omitted.
  std::vector<std::pair<LinkId, std::uint64_t>> link_changes;
  /// Critical-set churn: how many of the finally selected critical links were
  /// NOT in the top-|Ec| ranking before Phase 1b topped up samples — how much
  /// the top-up moved the selection (0 = 1b confirmed 1a's view). Computed
  /// for the per-link distribution-gap selector only.
  std::size_t critical_churn = 0;

  double phase1_seconds = 0.0;
  double phase1b_seconds = 0.0;
  double phase2_seconds = 0.0;
  long phase1_evaluations = 0;
  long phase2_evaluations = 0;
  long phase2_scenario_evaluations = 0;  ///< failure-scenario evals inside Phase 2
  int phase1_diversifications = 0;
  int phase2_diversifications = 0;

  /// Telemetry snapshots of this run, collected into a run-local registry
  /// regardless of OptimizerConfig::telemetry or the global enable switch:
  /// `counters` holds the deterministic optimizer.* counters (byte-identical
  /// across thread shapes), `process_counters` the shape-dependent
  /// base-routing-cache activity DIFF over the run (all zero when the cache
  /// is disabled).
  telemetry::Snapshot counters;
  telemetry::Snapshot process_counters;

  /// Base-cache activity during this run — compatibility accessors over
  /// `process_counters` (the former manually-maintained fields).
  std::uint64_t base_cache_hits() const {
    return process_counters.counter("evaluator.base_cache.hits");
  }
  std::uint64_t base_cache_misses() const {
    return process_counters.counter("evaluator.base_cache.misses");
  }
};

/// The paper's two-phase heuristic (Fig. 1): Phase 1 optimizes K_normal and
/// collects failure-like cost statistics; Phase 1b tops up statistics until
/// the criticality ranking converges; Phase 1c picks the critical set;
/// Phase 2 minimizes the compound failure cost over the critical set, subject
/// to not degrading delay-class performance (Eq. 5) and bounding the
/// throughput-class degradation (Eq. 6).
class RobustOptimizer {
 public:
  /// `evaluator` must outlive the optimizer.
  RobustOptimizer(const Evaluator& evaluator, OptimizerConfig config);

  OptimizeResult optimize();

  /// Critical-set size implied by the config for this instance.
  std::size_t critical_target_size() const;

 private:
  const Evaluator& evaluator_;
  OptimizerConfig config_;
};

}  // namespace dtr
