#include "core/local_search.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace dtr {

LocalSearch::LocalSearch(Config config) : config_(config) {
  if (config_.wmax < 2) throw std::invalid_argument("LocalSearch: wmax must be >= 2");
  if (config_.phase.diversification_interval < 1 || config_.phase.stall_diversifications < 1)
    throw std::invalid_argument("LocalSearch: phase parameters must be >= 1");
}

void LocalSearch::set_observer(std::function<void(const PerturbationEvent&)> observer) {
  observer_ = std::move(observer);
}

void LocalSearch::set_on_accept(
    std::function<void(const WeightSetting&, const CostPair&)> on_accept) {
  on_accept_ = std::move(on_accept);
}

void LocalSearch::set_on_move(std::function<void(const MoveRecord&)> on_move) {
  on_move_ = std::move(on_move);
}

void LocalSearch::set_restart(std::function<WeightSetting(Rng&)> restart) {
  restart_ = std::move(restart);
}

LocalSearch::Result LocalSearch::run(SearchObjective& objective,
                                     const WeightSetting& initial) {
  Rng rng(config_.seed);
  const LexicographicOrder order;
  const std::size_t num_links = initial.num_links();
  if (num_links == 0) throw std::invalid_argument("LocalSearch: empty weight setting");

  auto initial_cost = objective.evaluate(initial, nullptr);
  if (!initial_cost.has_value())
    throw std::invalid_argument("LocalSearch: initial setting is infeasible");

  Result result;
  result.best = initial;
  result.best_cost = *initial_cost;
  result.evaluations = 1;

  WeightSetting current = initial;
  CostPair current_cost = *initial_cost;

  const int max_divs = config_.phase.max_diversifications > 0
                           ? config_.phase.max_diversifications
                           : 4 * config_.phase.stall_diversifications;

  std::vector<LinkId> visit_order(num_links);
  std::iota(visit_order.begin(), visit_order.end(), LinkId{0});

  const long max_iterations =
      config_.phase.max_iterations > 0
          ? config_.phase.max_iterations
          : 20L * config_.phase.diversification_interval * max_divs;

  int stalled_divs = 0;      // consecutive diversifications below the c% bar
  int completed_divs = 0;
  int idle_iterations = 0;   // iterations since the global best last improved
  CostPair best_at_div_start = result.best_cost;

  // Speculative scoring state: up to `speculation` probes are evaluated
  // concurrently under the assumption that none is accepted; an accept
  // invalidates (and re-scores) the batch tail. All buffers are reused
  // across batches so the hot loop stays allocation-free.
  const std::size_t speculation = ThreadPool::workers_of(config_.pool);
  std::vector<int> probe_delay(num_links);
  std::vector<int> probe_tput(num_links);
  std::vector<std::size_t> evaluable;
  evaluable.reserve(num_links);
  std::vector<WeightSetting> candidates(speculation);
  std::vector<std::optional<CostPair>> probe_costs(speculation);

  while (stalled_divs < config_.phase.stall_diversifications &&
         completed_divs < max_divs && result.iterations < max_iterations) {
    ++result.iterations;
    std::shuffle(visit_order.begin(), visit_order.end(), rng.engine());
    const CostPair best_at_iteration_start = result.best_cost;

    // Pre-draw both weights for every link in visit order. The sequential
    // loop draws them per link regardless of acceptance, so this consumes
    // the RNG stream identically.
    for (std::size_t p = 0; p < num_links; ++p) {
      probe_delay[p] = rng.uniform_int(1, config_.wmax);
      probe_tput[p] = rng.uniform_int(1, config_.wmax);
    }

    // Positions whose probe actually changes the setting. Each link is
    // visited once per iteration and rejected probes are restored, so a
    // probe's no-op status cannot change mid-iteration.
    evaluable.clear();
    for (std::size_t p = 0; p < num_links; ++p) {
      const LinkId link = visit_order[p];
      if (probe_delay[p] != current.get(TrafficClass::kDelay, link) ||
          probe_tput[p] != current.get(TrafficClass::kThroughput, link))
        evaluable.push_back(p);
    }

    std::size_t next = 0;
    while (next < evaluable.size()) {
      const std::size_t batch = std::min(speculation, evaluable.size() - next);
      for (std::size_t i = 0; i < batch; ++i) {
        const std::size_t p = evaluable[next + i];
        candidates[i] = current;
        candidates[i].set(TrafficClass::kDelay, visit_order[p], probe_delay[p]);
        candidates[i].set(TrafficClass::kThroughput, visit_order[p], probe_tput[p]);
      }
      if (batch == 1) {
        probe_costs[0] = objective.evaluate(candidates[0], &current_cost);
      } else {
        parallel_for(config_.pool, batch, [&](std::size_t, std::size_t i) {
          probe_costs[i] = objective.evaluate(candidates[i], &current_cost);
        });
      }

      // Commit in probe order; stop at the first accept — later speculative
      // results were scored against a stale setting and are re-scored in the
      // next batch.
      std::size_t consumed = batch;
      for (std::size_t i = 0; i < batch; ++i) {
        const std::size_t p = evaluable[next + i];
        const LinkId link = visit_order[p];
        const int old_delay = current.get(TrafficClass::kDelay, link);
        const int old_tput = current.get(TrafficClass::kThroughput, link);
        current.set(TrafficClass::kDelay, link, probe_delay[p]);
        current.set(TrafficClass::kThroughput, link, probe_tput[p]);
        const std::optional<CostPair>& candidate_cost = probe_costs[i];
        ++result.evaluations;

        const bool accepted =
            candidate_cost.has_value() && order.less(*candidate_cost, current_cost);

        if (observer_) {
          observer_({link, probe_delay[p], probe_tput[p], current_cost, result.best_cost,
                     candidate_cost, accepted, &current});
        }

        if (accepted) {
          current_cost = *candidate_cost;
          ++result.accepted_moves;
          if (on_accept_) on_accept_(current, current_cost);
          if (on_move_)
            on_move_({result.iterations, result.evaluations, link, current_cost, false});
          if (order.less(current_cost, result.best_cost)) {
            result.best = current;
            result.best_cost = current_cost;
          }
          consumed = i + 1;
          break;
        }
        current.set(TrafficClass::kDelay, link, old_delay);
        current.set(TrafficClass::kThroughput, link, old_tput);
      }
      next += consumed;
    }

    // Only MEANINGFUL global-best progress (the c% criterion) resets the
    // clock: trajectories trickling in marginal accepts without real progress
    // still diversify ("the cost is not improved after a certain number of
    // iterations", Sec. IV-A). This also bounds the slow tail of descent.
    const bool meaningful_iteration = order.improves_by_fraction(
        result.best_cost, best_at_iteration_start, config_.phase.improvement_threshold);
    idle_iterations = meaningful_iteration ? 0 : idle_iterations + 1;
    if (idle_iterations < config_.phase.diversification_interval &&
        result.iterations < max_iterations)
      continue;

    // Diversification: score the round just finished, then restart.
    ++completed_divs;
    ++result.diversifications;
    const bool meaningful_improvement = order.improves_by_fraction(
        result.best_cost, best_at_div_start, config_.phase.improvement_threshold);
    stalled_divs = meaningful_improvement ? 0 : stalled_divs + 1;
    best_at_div_start = result.best_cost;
    idle_iterations = 0;

    if (stalled_divs >= config_.phase.stall_diversifications || completed_divs >= max_divs)
      break;

    // Restart from a fresh setting; keep drawing if the restart point is
    // infeasible (can happen for constrained Phase 2 objectives).
    bool restarted = false;
    for (int attempt = 0; attempt < 16 && !restarted; ++attempt) {
      WeightSetting fresh = restart_ ? restart_(rng) : [&] {
        WeightSetting w(num_links);
        randomize_weights(w, config_.wmax, rng);
        return w;
      }();
      const auto fresh_cost = objective.evaluate(fresh, nullptr);
      ++result.evaluations;
      if (fresh_cost.has_value()) {
        current = std::move(fresh);
        current_cost = *fresh_cost;
        if (on_accept_) on_accept_(current, current_cost);
        if (on_move_)
          on_move_({result.iterations, result.evaluations, kInvalidLink, current_cost, true});
        if (order.less(current_cost, result.best_cost)) {
          result.best = current;
          result.best_cost = current_cost;
        }
        restarted = true;
      }
    }
    if (!restarted) {
      // No feasible restart found: continue climbing from the incumbent best.
      current = result.best;
      current_cost = result.best_cost;
    }
  }
  return result;
}

}  // namespace dtr
