#pragma once

#include <cstddef>
#include <vector>

#include "core/criticality.h"
#include "graph/graph.h"

namespace dtr {

/// Output of Phase 1c (Sec. IV-D2): the critical link set plus the
/// diagnostics the ablation benches report.
struct CriticalSelection {
  std::vector<LinkId> critical;  ///< Ec, sorted by link id

  /// Normalized criticalities rho-bar (Eq. after Alg. 1 input): absolute rho
  /// divided by the class's lower-bound total cost sum_j tilde-cost_fail_j.
  std::vector<double> norm_rho_lambda;
  std::vector<double> norm_rho_phi;

  /// E_Lambda / E_Phi: link ids sorted by descending normalized criticality.
  std::vector<LinkId> order_lambda;
  std::vector<LinkId> order_phi;

  /// Final per-class list lengths n1, n2 chosen by Algorithm 1.
  std::size_t n1 = 0;
  std::size_t n2 = 0;

  /// Expected normalized errors rho(E_Lambda,n1), rho(E_Phi,n2) of the chosen
  /// truncation (sum of normalized criticality of the EXCLUDED links).
  double expected_error_lambda = 0.0;
  double expected_error_phi = 0.0;
};

/// Normalizes per-class criticalities so they are comparable across classes.
/// The paper divides by sum_j of the left-tail means (a lower bound on the
/// achievable compound failure cost). When that denominator vanishes (e.g.
/// zero SLA cost is achievable after every failure) we fall back to the sum
/// of means, then to 1 — preserving the ordering in degenerate cases.
std::vector<double> normalize_criticality(std::span<const double> rho,
                                          std::span<const double> tail,
                                          std::span<const double> mean);

/// Phase 1c: Algorithm 1. Starts from both full per-class lists and
/// repeatedly shortens the list whose next truncation induces the SMALLER
/// expected normalized error, until |Ec| = |top-n1 of E_Lambda  UNION
/// top-n2 of E_Phi| <= target_size.
CriticalSelection select_critical_links(const CriticalityEstimates& estimates,
                                        std::size_t target_size);

}  // namespace dtr
