#include "core/optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/baseline_selectors.h"
#include "core/metrics.h"
#include "telemetry/events.h"
#include "util/thread_pool.h"

namespace dtr {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Phase 1 objective: K_normal (always feasible).
class NormalObjective final : public SearchObjective {
 public:
  explicit NormalObjective(const Evaluator& evaluator) : evaluator_(evaluator) {}

  std::optional<CostPair> evaluate(const WeightSetting& w, const CostPair*) override {
    return evaluator_.evaluate(w).cost();
  }

 private:
  const Evaluator& evaluator_;
};

/// Shared Phase-2 scaffolding: every aggregation minimizes its own compound
/// cost subject to the SAME constraints (5) and (6) on normal-condition
/// performance, and reports how many failure-scenario evaluations it spent.
class Phase2Objective : public SearchObjective {
 public:
  Phase2Objective(const Evaluator& evaluator, std::vector<FailureScenario> scenarios,
                  std::vector<double> scenario_weights, CostPair star, double chi,
                  ThreadPool* pool)
      : evaluator_(evaluator),
        scenarios_(std::move(scenarios)),
        scenario_weights_(std::move(scenario_weights)),
        star_(star),
        chi_(chi),
        pool_(pool) {}

  long scenario_evaluations() const { return scenario_evaluations_; }

 protected:
  /// Constraint gate: Eq. (5) pins Lambda_normal to Lambda*, Eq. (6) bounds
  /// Phi_normal by (1+chi) * Phi*.
  bool normal_feasible(const WeightSetting& w) const {
    const CostPair normal = evaluator_.evaluate(w).cost();
    const LexicographicOrder order;
    if (!order.values_equal(normal.lambda, star_.lambda)) return false;  // Eq. (5)
    if (normal.phi > (1.0 + chi_) * star_.phi + order.abs_tol()) return false;  // Eq. (6)
    return true;
  }

  const Evaluator& evaluator_;
  std::vector<FailureScenario> scenarios_;
  std::vector<double> scenario_weights_;
  CostPair star_;
  double chi_;
  ThreadPool* pool_;
  long scenario_evaluations_ = 0;
};

/// Expected-cost aggregation: (weighted) K_fail-bar over the scenarios — the
/// Eq. (4) objective, and an expectation when the weights are probabilities.
/// Uses the incumbent cost as an early-abort bound for the failure sweep.
class ExpectedCostObjective final : public Phase2Objective {
 public:
  using Phase2Objective::Phase2Objective;

  std::optional<CostPair> evaluate(const WeightSetting& w,
                                   const CostPair* incumbent) override {
    if (!normal_feasible(w)) return std::nullopt;
    SweepOptions options;
    options.abort_bound = incumbent;
    options.scenario_weights = scenario_weights_;
    options.pool = pool_;
    const SweepResult sweep = evaluator_.sweep(w, scenarios_, options);
    scenario_evaluations_ += static_cast<long>(sweep.scenarios_evaluated);
    return sweep.cost();
  }
};

/// Weighted-percentile aggregation: the per-scenario (Lambda, Phi) costs
/// reduced to their weighted p-quantiles. Order statistics need every
/// scenario's cost, so there is no early abort — the catalog is swept in
/// full per candidate (parallelized across the pool).
class PercentileObjective final : public Phase2Objective {
 public:
  PercentileObjective(const Evaluator& evaluator, std::vector<FailureScenario> scenarios,
                      std::vector<double> scenario_weights, double percentile,
                      CostPair star, double chi, ThreadPool* pool)
      : Phase2Objective(evaluator, std::move(scenarios), std::move(scenario_weights),
                        star, chi, pool),
        percentile_(percentile) {}

  std::optional<CostPair> evaluate(const WeightSetting& w, const CostPair*) override {
    if (!normal_feasible(w)) return std::nullopt;
    const std::vector<EvalResult> results =
        evaluator_.evaluate_failures(w, scenarios_, pool_);
    scenario_evaluations_ += static_cast<long>(results.size());
    lambda_.clear();
    phi_.clear();
    for (const EvalResult& r : results) {
      lambda_.push_back(r.lambda);
      phi_.push_back(r.phi);
    }
    return CostPair{weighted_percentile(lambda_, scenario_weights_, percentile_),
                    weighted_percentile(phi_, scenario_weights_, percentile_)};
  }

 private:
  double percentile_;
  std::vector<double> lambda_;  // per-candidate scratch
  std::vector<double> phi_;
};

/// Expected-downtime aggregation: Sum_s w_s * (violations_s - unavoidable_s)
/// * period_minutes, with the routing-independent unavoidable floor
/// (metrics::unavoidable_violations) precomputed per scenario. Because the
/// floor does not depend on the weights being scored, minimizing the raw
/// weighted violation sum V is equivalent — so the sweep's early abort runs
/// on the violations axis (SweepOptions::abort_on_violations) with the
/// incumbent downtime translated into a violation-mass bound.
class DowntimeObjective final : public Phase2Objective {
 public:
  DowntimeObjective(const Evaluator& evaluator, std::vector<FailureScenario> scenarios,
                    std::vector<double> scenario_weights, double period_minutes,
                    CostPair star, double chi, ThreadPool* pool)
      : Phase2Objective(evaluator, std::move(scenarios), std::move(scenario_weights),
                        star, chi, pool),
        period_minutes_(period_minutes) {
    const std::vector<double> unavoidable =
        unavoidable_violation_profile(evaluator_, scenarios_, pool_);
    for (std::size_t i = 0; i < unavoidable.size(); ++i)
      unavoidable_mass_ += scenario_weights_[i] * unavoidable[i];
  }

  std::optional<CostPair> evaluate(const WeightSetting& w,
                                   const CostPair* incumbent) override {
    if (!normal_feasible(w)) return std::nullopt;
    SweepOptions options;
    options.scenario_weights = scenario_weights_;
    options.pool = pool_;
    options.abort_on_violations = true;
    CostPair bound;
    if (incumbent != nullptr) {
      // incumbent->lambda is avoidable downtime in minutes; the equivalent
      // bound on the weighted violation sum is U + D / period.
      bound = CostPair{unavoidable_mass_ + incumbent->lambda / period_minutes_,
                       incumbent->phi};
      options.abort_bound = &bound;
    }
    const SweepResult sweep = evaluator_.sweep(w, scenarios_, options);
    scenario_evaluations_ += static_cast<long>(sweep.scenarios_evaluated);
    // On abort, return the incumbent itself: partial violation mass already
    // exceeds the translated bound, but converting it back through the
    // division/multiplication round trip could round to "better" — the
    // incumbent is exactly not-better, which is all the contract needs.
    if (sweep.aborted) return *incumbent;
    const double avoidable = std::max(0.0, sweep.violations - unavoidable_mass_);
    return CostPair{avoidable * period_minutes_, sweep.phi};
  }

 private:
  double period_minutes_;
  double unavoidable_mass_ = 0.0;  ///< U = Sum_s w_s * unavoidable_s
};

}  // namespace

std::string to_string(SelectorKind k) {
  switch (k) {
    case SelectorKind::kDistributionGap: return "distribution-gap";
    case SelectorKind::kRandom: return "random";
    case SelectorKind::kLoad: return "load-based";
    case SelectorKind::kThresholdCrossing: return "threshold-crossing";
    case SelectorKind::kFullSearch: return "full-search";
  }
  return "?";
}

OptimizerConfig default_optimizer_config(Effort effort, std::uint64_t seed) {
  OptimizerConfig config;
  config.seed = seed;
  switch (effort) {
    case Effort::kFull:
      // Paper values (Sec. V-A3).
      config.phase1 = {100, 20, 0.001, 0};
      config.phase2 = {30, 10, 0.001, 0};
      config.criticality.tau = 30;
      break;
    case Effort::kQuick:
      // Phase 2 gets a proportionally larger budget than Phase 1: the
      // critical set makes its per-candidate cost small (the paper's core
      // economics), and Phase 2 quality is what the evaluation measures.
      config.phase1 = {30, 5, 0.005, 0};
      config.phase2 = {24, 6, 0.003, 0};
      config.criticality.tau = 8;
      break;
    case Effort::kSmoke:
      config.phase1 = {10, 2, 0.01, 0};
      config.phase2 = {8, 2, 0.01, 0};
      config.criticality.tau = 3;
      break;
  }
  return config;
}

RobustOptimizer::RobustOptimizer(const Evaluator& evaluator, OptimizerConfig config)
    : evaluator_(evaluator), config_(config) {
  if (config_.critical_count == 0 &&
      (config_.critical_fraction <= 0.0 || config_.critical_fraction > 1.0))
    throw std::invalid_argument("RobustOptimizer: critical_fraction outside (0,1]");
  if (config_.chi < 0.0) throw std::invalid_argument("RobustOptimizer: negative chi");
  // The criticality acceptability relaxation chi and constraint (6) chi are
  // the same knob in the paper; keep them consistent.
  config_.criticality.chi = config_.chi;
}

std::size_t RobustOptimizer::critical_target_size() const {
  // The selection universe is the physical link set — or the scenario
  // catalog, when a catalog-mode objective replaces it.
  std::size_t universe = evaluator_.graph().num_links();
  if (config_.objective &&
      !as_per_link_probabilities(*config_.objective, universe).has_value())
    universe = config_.objective->set.size();
  if (config_.critical_count > 0) return std::min(config_.critical_count, universe);
  const auto target = static_cast<std::size_t>(
      std::lround(config_.critical_fraction * static_cast<double>(universe)));
  return std::max<std::size_t>(1, std::min(target, universe));
}

OptimizeResult RobustOptimizer::optimize() {
  const Graph& graph = evaluator_.graph();
  const std::size_t num_links = graph.num_links();
  Rng rng(config_.seed);

  // ---- Objective resolution ----------------------------------------------
  // A per-link-shaped expected-cost objective (what
  // objective_from_link_probabilities builds) runs the classic per-link
  // pipeline with the catalog weights as link probabilities — the SAME code
  // and RNG stream as before the objective API existed. Anything else
  // (compound scenarios, percentile / downtime aggregation) takes the
  // catalog path.
  const std::optional<HardeningObjective>& objective = config_.objective;
  std::vector<double> link_probabilities;
  bool catalog_mode = false;
  if (objective) {
    validate_objective(*objective, graph);
    if (auto per_link = as_per_link_probabilities(*objective, num_links))
      link_probabilities = std::move(*per_link);
    else
      catalog_mode = true;
  }

  // Failure-scenario evaluation pool. num_threads == 1 keeps everything on
  // the calling thread (the seed's sequential path); the engine is
  // deterministic, so any other value changes wall-clock time only.
  if (config_.num_threads < 0)
    throw std::invalid_argument("RobustOptimizer: negative num_threads");
  std::unique_ptr<ThreadPool> pool;
  if (config_.num_threads != 1) {
    pool = std::make_unique<ThreadPool>(config_.num_threads);
    if (pool->num_workers() <= 1) pool.reset();
  }

  OptimizeResult result;
  const EvaluatorCacheStats cache_before = evaluator_.base_cache_stats();

  // Streaming events honor the global kill switch like every other sink.
  // Deterministic-plane publication rides the LocalSearch hook contract:
  // hooks run on the calling thread in iteration order, so the event stream
  // is byte-identical for any num_threads.
  telemetry::EventBus* events = telemetry::enabled() ? config_.events : nullptr;
  const auto phase_marker = [events](telemetry::EventKind kind, std::string_view label) {
    if (events == nullptr) return;
    telemetry::Event e;
    e.kind = kind;
    e.label = std::string(label);
    telemetry::publish_deterministic(events, std::move(e));
  };
  const auto phase_end = [events](std::string_view label, const LocalSearch::Result& r) {
    if (events == nullptr) return;
    telemetry::Event e;
    e.kind = telemetry::EventKind::kPhaseEnd;
    e.label = std::string(label);
    e.iteration = static_cast<std::uint64_t>(r.iterations);
    e.evaluations = static_cast<std::uint64_t>(r.evaluations);
    e.cost_lambda = r.best_cost.lambda;
    e.cost_phi = r.best_cost.phi;
    telemetry::publish_deterministic(events, std::move(e));
  };
  telemetry::Registry* live = telemetry::effective(config_.telemetry);
  const auto record_move = [events, live, &result](int phase, std::string_view label,
                                                   const MoveRecord& m) {
    result.trace.push_back({phase, m});
    if (live != nullptr) {
      // Live progress for the metrics exposer: the last accepted move is
      // scrapeable mid-run. Process plane — WHEN a scrape observes these is
      // shape-dependent even though the final values are not.
      live->gauge("optimizer.live.phase").set(static_cast<std::uint64_t>(phase));
      live->gauge("optimizer.live.iteration").set(static_cast<std::uint64_t>(m.iteration));
      live->gauge("optimizer.live.evaluations")
          .set(static_cast<std::uint64_t>(m.evaluations));
    }
    if (events == nullptr) return;
    telemetry::Event e;
    e.kind = telemetry::EventKind::kIteration;
    e.label = std::string(label);
    e.iteration = static_cast<std::uint64_t>(m.iteration);
    e.evaluations = static_cast<std::uint64_t>(m.evaluations);
    e.link = m.link == kInvalidLink ? -1 : static_cast<std::int64_t>(m.link);
    e.cost_lambda = m.cost.lambda;
    e.cost_phi = m.cost.phi;
    e.restart = m.restart;
    telemetry::publish_deterministic(events, std::move(e));
  };

  // ---------------- Phase 1: regular optimization (Eq. 3) -----------------
  const auto phase1_start = Clock::now();
  phase_marker(telemetry::EventKind::kPhaseStart, "phase1a");
  NormalObjective normal_objective(evaluator_);
  CriticalityCollector collector(num_links, config_.wmax, evaluator_.params().sla.b1,
                                 config_.criticality, rng.split().seed());
  AcceptableStore store(config_.store_capacity, rng.split().seed());

  // Catalog mode ranks scenarios in Phase 1b' instead of links in Phase
  // 1a/1b, so the per-link observer machinery stays detached there.
  const bool selector_needs_samples =
      !catalog_mode && (config_.selector == SelectorKind::kDistributionGap ||
                        config_.selector == SelectorKind::kThresholdCrossing);

  // Phase 1a probes score under NormalObjective, which is stateless and
  // therefore safe for LocalSearch's speculative parallel scoring.
  LocalSearch phase1_search({config_.phase1, config_.wmax, rng.split().seed(), pool.get()});
  if (selector_needs_samples) {
    if (config_.sampling_mode == SamplingMode::kEmulatedWeights) {
      // Paper-literal: the failure-emulating perturbation's own cost is the
      // sample (free, fidelity limited by wmax).
      phase1_search.set_observer(
          [&collector](const PerturbationEvent& e) { collector.on_perturbation(e); });
    } else {
      // Exact mode: the in-window perturbation only triggers sampling; the
      // recorded cost evaluates the TRUE failure of the link (the perturbed
      // weights are immaterial once its arcs are masked out), one extra
      // evaluation per trigger (~q-window hit rate of probes).
      phase1_search.set_observer([this, &collector](const PerturbationEvent& e) {
        if (!collector.should_sample(e)) return;
        collector.add_sample(
            e.link, evaluator_.evaluate(*e.candidate, FailureScenario::link(e.link)).cost());
      });
    }
  }
  phase1_search.set_on_accept([&store](const WeightSetting& w, const CostPair& cost) {
    store.offer(w, cost);
  });
  phase1_search.set_on_move(
      [&record_move](const MoveRecord& m) { record_move(1, "phase1", m); });

  WeightSetting initial(num_links);
  if (config_.warm_start) {
    initial = make_warm_start(graph, config_.wmax);
  } else {
    randomize_weights(initial, config_.wmax, rng);
  }
  const LocalSearch::Result phase1 = phase1_search.run(normal_objective, initial);

  result.regular = phase1.best;
  result.regular_cost = phase1.best_cost;
  result.phase1_evaluations = phase1.evaluations;
  result.phase1_diversifications = phase1.diversifications;
  result.phase1a_samples = collector.total_samples();
  store.offer(phase1.best, phase1.best_cost);
  result.phase1_seconds = seconds_since(phase1_start);
  phase_end("phase1a", phase1);

  // ------------- Phase 1b: top-up sampling until rank convergence ---------
  const auto phase1b_start = Clock::now();
  phase_marker(telemetry::EventKind::kPhaseStart, "phase1b");
  // Samples must stay conditioned on acceptable routings: the pool of
  // acceptable stored settings, shared by the per-link and catalog samplers.
  // The Phase 1 incumbent is acceptable by definition, so it is never empty.
  const AcceptableStore::Entry incumbent_entry{result.regular, result.regular_cost};
  const auto acceptable_entries = [&] {
    std::vector<const AcceptableStore::Entry*> entry_pool;
    entry_pool.push_back(&incumbent_entry);
    for (std::size_t i = 0; i < store.size(); ++i) {
      const AcceptableStore::Entry& entry = store.entry(i);
      if (collector.cost_acceptable(entry.cost, result.regular_cost))
        entry_pool.push_back(&entry);
    }
    return entry_pool;
  };
  // Churn baseline: the top-|Ec| selection Phase 1a's samples alone imply,
  // under the same probability scaling Phase 1c will apply. Compared against
  // the final selection to report how much the 1b top-up moved it.
  std::vector<LinkId> pre_critical;
  if (selector_needs_samples && config_.selector == SelectorKind::kDistributionGap) {
    CriticalityEstimates pre = collector.estimates();
    if (!link_probabilities.empty()) {
      for (LinkId l = 0; l < num_links; ++l) {
        pre.rho_lambda[l] *= link_probabilities[l];
        pre.rho_phi[l] *= link_probabilities[l];
      }
    }
    pre_critical = select_critical_links(pre, critical_target_size()).critical;
  }
  if (selector_needs_samples) {
    const long budget = config_.max_phase1b_samples > 0
                            ? config_.max_phase1b_samples
                            : 20L * config_.criticality.tau * static_cast<long>(num_links);
    const std::vector<const AcceptableStore::Entry*> entry_pool = acceptable_entries();
    const long generated = top_up_criticality_samples(
        evaluator_, collector, entry_pool, config_.sampling_mode, config_.wmax, budget,
        rng, pool.get());
    result.phase1b_samples = static_cast<std::size_t>(generated);
    result.criticality_converged = collector.converged();
    result.estimates = collector.estimates();
  } else if (catalog_mode && config_.selector == SelectorKind::kDistributionGap) {
    // Phase 1b': catalog criticality — the distribution-gap estimator over
    // compound scenarios instead of single links.
    const long budget =
        config_.max_phase1b_samples > 0
            ? config_.max_phase1b_samples
            : 20L * config_.criticality.tau * static_cast<long>(objective->set.size());
    const std::vector<const AcceptableStore::Entry*> entry_pool = acceptable_entries();
    const ScenarioCriticality crit = estimate_scenario_criticality(
        evaluator_, objective->set.scenarios(), entry_pool, config_.criticality, budget,
        rng, pool.get());
    result.scenario_estimates = crit.estimates;
    result.scenario_rank_converged = crit.converged;
    result.scenario_samples = static_cast<std::size_t>(crit.samples);
  }
  result.phase1b_seconds = seconds_since(phase1b_start);
  phase_marker(telemetry::EventKind::kPhaseEnd, "phase1b");

  // ---------------- Phase 1c: critical set selection ----------------------
  const auto phase1c_start = Clock::now();
  phase_marker(telemetry::EventKind::kPhaseStart, "phase1c");
  const std::size_t target = critical_target_size();
  if (catalog_mode) {
    result.catalog_size = objective->set.size();
    switch (config_.selector) {
      case SelectorKind::kDistributionGap: {
        // Expected regret: scale each scenario's distribution gap by its
        // probability mass before Algorithm 1 selection (the catalog
        // analogue of the per-link probabilistic scaling below).
        CriticalityEstimates estimates = result.scenario_estimates;
        const std::span<const double> catalog_weights = objective->set.weights();
        for (std::size_t i = 0; i < estimates.rho_lambda.size(); ++i) {
          estimates.rho_lambda[i] *= catalog_weights[i];
          estimates.rho_phi[i] *= catalog_weights[i];
        }
        const std::vector<LinkId> picked = select_critical_links(estimates, target).critical;
        result.critical_scenarios.assign(picked.begin(), picked.end());
        break;
      }
      case SelectorKind::kRandom: {
        Rng selector_rng = rng.split();
        const std::vector<LinkId> picked =
            select_random_links(objective->set.size(), target, selector_rng);
        result.critical_scenarios.assign(picked.begin(), picked.end());
        break;
      }
      case SelectorKind::kFullSearch:
        result.critical_scenarios.resize(objective->set.size());
        for (std::size_t i = 0; i < result.critical_scenarios.size(); ++i)
          result.critical_scenarios[i] = i;
        break;
      case SelectorKind::kLoad:
      case SelectorKind::kThresholdCrossing:
        throw std::invalid_argument(
            "RobustOptimizer: selector not supported with a scenario-catalog "
            "objective (use distribution-gap, random, or full-search)");
    }
    // Ec diagnostic: the physical links the selected scenarios can take down.
    std::vector<LinkId> links;
    for (const std::size_t i : result.critical_scenarios)
      for_each_failed_element(
          objective->set.scenario(i), [&](LinkId l) { links.push_back(l); },
          [](NodeId) {});
    std::sort(links.begin(), links.end());
    links.erase(std::unique(links.begin(), links.end()), links.end());
    result.critical = std::move(links);
  } else {
    switch (config_.selector) {
      case SelectorKind::kDistributionGap: {
        CriticalityEstimates estimates = result.estimates;
        if (!link_probabilities.empty()) {
          // Probabilistic extension: criticality becomes the expected regret
          // p_l * (mean - left-tail mean).
          for (LinkId l = 0; l < num_links; ++l) {
            estimates.rho_lambda[l] *= link_probabilities[l];
            estimates.rho_phi[l] *= link_probabilities[l];
          }
        }
        result.critical = select_critical_links(estimates, target).critical;
        break;
      }
      case SelectorKind::kRandom: {
        Rng selector_rng = rng.split();
        result.critical = select_random_links(num_links, target, selector_rng);
        break;
      }
      case SelectorKind::kLoad:
        result.critical = select_by_load(evaluator_, result.regular, target);
        break;
      case SelectorKind::kThresholdCrossing:
        result.critical = select_by_threshold_crossings(collector, target);
        break;
      case SelectorKind::kFullSearch:
        result.critical.resize(num_links);
        for (LinkId l = 0; l < num_links; ++l) result.critical[l] = l;
        break;
    }
  }
  if (!pre_critical.empty()) {
    std::vector<LinkId> pre = pre_critical;
    std::vector<LinkId> post = result.critical;
    std::sort(pre.begin(), pre.end());
    std::sort(post.begin(), post.end());
    std::vector<LinkId> gained;
    std::set_difference(post.begin(), post.end(), pre.begin(), pre.end(),
                        std::back_inserter(gained));
    result.critical_churn = gained.size();
  }
  phase_marker(telemetry::EventKind::kPhaseEnd, "phase1c");

  // ---------------- Phase 2: robust optimization (Eq. 4) ------------------
  const auto phase2_start = Clock::now();
  phase_marker(telemetry::EventKind::kPhaseStart, "phase2");
  std::vector<FailureScenario> scenarios;
  std::vector<double> scenario_weights;
  if (catalog_mode) {
    scenarios.reserve(result.critical_scenarios.size());
    scenario_weights.reserve(result.critical_scenarios.size());
    for (const std::size_t i : result.critical_scenarios) {
      scenarios.push_back(objective->set.scenario(i));
      scenario_weights.push_back(objective->set.weight(i));
    }
  } else {
    scenarios.reserve(result.critical.size());
    for (LinkId l : result.critical) {
      scenarios.push_back(FailureScenario::link(l));
      if (!link_probabilities.empty())
        scenario_weights.push_back(link_probabilities.at(l));
    }
  }

  // Phase 2 parallelism lives inside the scenario sweep (the objectives are
  // stateful, so their candidates are scored one at a time).
  std::unique_ptr<Phase2Objective> robust_objective;
  const AggregationMode mode =
      catalog_mode ? objective->mode : AggregationMode::kExpectedCost;
  switch (mode) {
    case AggregationMode::kExpectedCost:
      robust_objective = std::make_unique<ExpectedCostObjective>(
          evaluator_, std::move(scenarios), std::move(scenario_weights),
          result.regular_cost, config_.chi, pool.get());
      break;
    case AggregationMode::kWeightedPercentile:
      robust_objective = std::make_unique<PercentileObjective>(
          evaluator_, std::move(scenarios), std::move(scenario_weights),
          objective->percentile, result.regular_cost, config_.chi, pool.get());
      break;
    case AggregationMode::kExpectedDowntime:
      robust_objective = std::make_unique<DowntimeObjective>(
          evaluator_, std::move(scenarios), std::move(scenario_weights),
          objective->period_minutes, result.regular_cost, config_.chi, pool.get());
      break;
  }

  const auto feasible =
      store.feasible_entries(result.regular_cost.lambda, result.regular_cost.phi,
                             config_.chi);
  LocalSearch phase2_search({config_.phase2, config_.wmax, rng.split().seed()});
  const WeightSetting regular_best = result.regular;  // stable restart fallback
  const int wmax = config_.wmax;
  // Diversification restarts draw a recorded feasible setting and jitter a
  // random ~10% of links: the feasible pool is often small (constraints (5)
  // and (6) are tight), and unjittered restarts would keep replaying the
  // same trajectory. LocalSearch re-draws on infeasible restarts.
  phase2_search.set_restart([&feasible, regular_best, wmax](Rng& restart_rng) {
    WeightSetting w = feasible.empty()
                          ? regular_best
                          : feasible[restart_rng.uniform_index(feasible.size())]->setting;
    const std::size_t jitters = 1 + w.num_links() / 10;
    for (std::size_t j = 0; j < jitters; ++j) {
      const LinkId link = static_cast<LinkId>(restart_rng.uniform_index(w.num_links()));
      w.set(TrafficClass::kDelay, link, restart_rng.uniform_int(1, wmax));
      w.set(TrafficClass::kThroughput, link, restart_rng.uniform_int(1, wmax));
    }
    return w;
  });

  phase2_search.set_on_move(
      [&record_move](const MoveRecord& m) { record_move(2, "phase2", m); });
  if (events != nullptr) {
    // Process-plane progress heartbeat: a tick every 256 probes so a live
    // tail shows Phase 2 moving even between accepts. Total is unknown (the
    // stopping rule is stall-based), so it stays 0.
    phase2_search.set_observer([events, probes = 0L](const PerturbationEvent&) mutable {
      if (++probes % 256 != 0) return;
      telemetry::Event e;
      e.kind = telemetry::EventKind::kProgress;
      e.label = "phase2";
      e.done = static_cast<std::uint64_t>(probes);
      telemetry::publish_process(events, std::move(e));
    });
  }

  const LocalSearch::Result phase2 = phase2_search.run(*robust_objective, result.regular);
  result.robust = phase2.best;
  result.robust_kfail = phase2.best_cost;
  result.robust_normal_cost = evaluator_.evaluate(result.robust).cost();
  result.phase2_evaluations = phase2.evaluations;
  result.phase2_scenario_evaluations = robust_objective->scenario_evaluations();
  result.phase2_diversifications = phase2.diversifications;
  result.phase2_seconds = seconds_since(phase2_start);
  if (catalog_mode) result.robust_objective_value = phase2.best_cost.lambda;
  phase_end("phase2", phase2);

  // Per-link change attribution: which links the accepted moves touched.
  {
    std::vector<std::uint64_t> changes(num_links, 0);
    for (const TraceMove& t : result.trace)
      if (!t.move.restart && t.move.link != kInvalidLink) ++changes[t.move.link];
    for (LinkId l = 0; l < num_links; ++l)
      if (changes[l] > 0) result.link_changes.emplace_back(l, changes[l]);
  }

  // ---------------- Telemetry: run-local collection -----------------------
  // A run-local registry always collects (the snapshots back the
  // OptimizeResult accessors, enable switch or not); the config's sink gets
  // the deterministic plane + phase spans merged in at the end. The cache
  // diff stays process-plane-local: publishing evaluator cache numbers is
  // the evaluator OWNER's job (flush_cache_stats_to_telemetry), once.
  const auto phase2_end = Clock::now();
  telemetry::Registry run_reg;
  run_reg.counter("optimizer.runs").add(1);
  run_reg.counter("optimizer.phase1_evaluations")
      .add(static_cast<std::uint64_t>(result.phase1_evaluations));
  run_reg.counter("optimizer.phase1_diversifications")
      .add(static_cast<std::uint64_t>(result.phase1_diversifications));
  run_reg.counter("optimizer.phase1a_samples").add(result.phase1a_samples);
  run_reg.counter("optimizer.phase1b_samples").add(result.phase1b_samples);
  run_reg.counter("optimizer.scenario_samples").add(result.scenario_samples);
  run_reg.counter("optimizer.phase2_evaluations")
      .add(static_cast<std::uint64_t>(result.phase2_evaluations));
  run_reg.counter("optimizer.phase2_scenario_evaluations")
      .add(static_cast<std::uint64_t>(result.phase2_scenario_evaluations));
  run_reg.counter("optimizer.phase2_diversifications")
      .add(static_cast<std::uint64_t>(result.phase2_diversifications));
  run_reg.counter("optimizer.critical_links").add(result.critical.size());
  run_reg.counter("optimizer.critical_scenarios").add(result.critical_scenarios.size());

  const EvaluatorCacheStats cache_after = evaluator_.base_cache_stats();
  run_reg.counter("evaluator.base_cache.hits", telemetry::Plane::kProcess)
      .add(cache_after.hits - cache_before.hits);
  run_reg.counter("evaluator.base_cache.misses", telemetry::Plane::kProcess)
      .add(cache_after.misses - cache_before.misses);
  run_reg.counter("evaluator.base_cache.insertions", telemetry::Plane::kProcess)
      .add(cache_after.insertions - cache_before.insertions);
  run_reg.counter("evaluator.base_cache.evictions", telemetry::Plane::kProcess)
      .add(cache_after.evictions - cache_before.evictions);

  result.counters = run_reg.snapshot(telemetry::Plane::kDeterministic);
  result.process_counters = run_reg.snapshot(telemetry::Plane::kProcess);

  if (telemetry::Registry* sink = telemetry::effective(config_.telemetry)) {
    const auto ns = [](Clock::time_point tp) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch())
              .count());
    };
    sink->merge_counters(result.counters);
    sink->merge_spans(
        {{"optimizer.phase1a", ns(phase1_start), ns(phase1b_start) - ns(phase1_start), 0, 0},
         {"optimizer.phase1b", ns(phase1b_start), ns(phase1c_start) - ns(phase1b_start), 0,
          0},
         {"optimizer.phase1c", ns(phase1c_start), ns(phase2_start) - ns(phase1c_start), 0,
          0},
         {"optimizer.phase2", ns(phase2_start), ns(phase2_end) - ns(phase2_start), 0, 0}});
  }
  return result;
}

}  // namespace dtr
