#include "core/optimizer.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/baseline_selectors.h"
#include "util/thread_pool.h"

namespace dtr {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Phase 1 objective: K_normal (always feasible).
class NormalObjective final : public SearchObjective {
 public:
  explicit NormalObjective(const Evaluator& evaluator) : evaluator_(evaluator) {}

  std::optional<CostPair> evaluate(const WeightSetting& w, const CostPair*) override {
    return evaluator_.evaluate(w).cost();
  }

 private:
  const Evaluator& evaluator_;
};

/// Phase 2 objective: K_fail-bar over the critical scenarios, subject to
/// constraints (5) and (6) on normal-condition performance. Uses the
/// incumbent cost as an early-abort bound for the failure sweep.
class RobustObjective final : public SearchObjective {
 public:
  RobustObjective(const Evaluator& evaluator, std::vector<FailureScenario> scenarios,
                  std::vector<double> scenario_weights, CostPair star, double chi,
                  ThreadPool* pool)
      : evaluator_(evaluator),
        scenarios_(std::move(scenarios)),
        scenario_weights_(std::move(scenario_weights)),
        star_(star),
        chi_(chi),
        pool_(pool) {}

  std::optional<CostPair> evaluate(const WeightSetting& w,
                                   const CostPair* incumbent) override {
    const CostPair normal = evaluator_.evaluate(w).cost();
    const LexicographicOrder order;
    if (!order.values_equal(normal.lambda, star_.lambda)) return std::nullopt;  // Eq. (5)
    if (normal.phi > (1.0 + chi_) * star_.phi + order.abs_tol()) return std::nullopt;  // Eq. (6)
    const SweepResult sweep =
        evaluator_.sweep(w, scenarios_, incumbent, scenario_weights_, pool_);
    scenario_evaluations_ += static_cast<long>(sweep.scenarios_evaluated);
    return sweep.cost();
  }

  long scenario_evaluations() const { return scenario_evaluations_; }

 private:
  const Evaluator& evaluator_;
  std::vector<FailureScenario> scenarios_;
  std::vector<double> scenario_weights_;
  CostPair star_;
  double chi_;
  ThreadPool* pool_;
  long scenario_evaluations_ = 0;
};

}  // namespace

std::string to_string(SelectorKind k) {
  switch (k) {
    case SelectorKind::kDistributionGap: return "distribution-gap";
    case SelectorKind::kRandom: return "random";
    case SelectorKind::kLoad: return "load-based";
    case SelectorKind::kThresholdCrossing: return "threshold-crossing";
    case SelectorKind::kFullSearch: return "full-search";
  }
  return "?";
}

OptimizerConfig default_optimizer_config(Effort effort, std::uint64_t seed) {
  OptimizerConfig config;
  config.seed = seed;
  switch (effort) {
    case Effort::kFull:
      // Paper values (Sec. V-A3).
      config.phase1 = {100, 20, 0.001, 0};
      config.phase2 = {30, 10, 0.001, 0};
      config.criticality.tau = 30;
      break;
    case Effort::kQuick:
      // Phase 2 gets a proportionally larger budget than Phase 1: the
      // critical set makes its per-candidate cost small (the paper's core
      // economics), and Phase 2 quality is what the evaluation measures.
      config.phase1 = {30, 5, 0.005, 0};
      config.phase2 = {24, 6, 0.003, 0};
      config.criticality.tau = 8;
      break;
    case Effort::kSmoke:
      config.phase1 = {10, 2, 0.01, 0};
      config.phase2 = {8, 2, 0.01, 0};
      config.criticality.tau = 3;
      break;
  }
  return config;
}

RobustOptimizer::RobustOptimizer(const Evaluator& evaluator, OptimizerConfig config)
    : evaluator_(evaluator), config_(config) {
  if (config_.critical_count == 0 &&
      (config_.critical_fraction <= 0.0 || config_.critical_fraction > 1.0))
    throw std::invalid_argument("RobustOptimizer: critical_fraction outside (0,1]");
  if (config_.chi < 0.0) throw std::invalid_argument("RobustOptimizer: negative chi");
  // The criticality acceptability relaxation chi and constraint (6) chi are
  // the same knob in the paper; keep them consistent.
  config_.criticality.chi = config_.chi;
}

std::size_t RobustOptimizer::critical_target_size() const {
  const std::size_t num_links = evaluator_.graph().num_links();
  if (config_.critical_count > 0) return std::min(config_.critical_count, num_links);
  const auto target = static_cast<std::size_t>(
      std::lround(config_.critical_fraction * static_cast<double>(num_links)));
  return std::max<std::size_t>(1, std::min(target, num_links));
}

OptimizeResult RobustOptimizer::optimize() {
  const Graph& graph = evaluator_.graph();
  const std::size_t num_links = graph.num_links();
  Rng rng(config_.seed);

  // Failure-scenario evaluation pool. num_threads == 1 keeps everything on
  // the calling thread (the seed's sequential path); the engine is
  // deterministic, so any other value changes wall-clock time only.
  if (config_.num_threads < 0)
    throw std::invalid_argument("RobustOptimizer: negative num_threads");
  std::unique_ptr<ThreadPool> pool;
  if (config_.num_threads != 1) {
    pool = std::make_unique<ThreadPool>(config_.num_threads);
    if (pool->num_workers() <= 1) pool.reset();
  }

  OptimizeResult result;
  const EvaluatorCacheStats cache_before = evaluator_.base_cache_stats();

  // ---------------- Phase 1: regular optimization (Eq. 3) -----------------
  const auto phase1_start = Clock::now();
  NormalObjective normal_objective(evaluator_);
  CriticalityCollector collector(num_links, config_.wmax, evaluator_.params().sla.b1,
                                 config_.criticality, rng.split().seed());
  AcceptableStore store(config_.store_capacity, rng.split().seed());

  const bool selector_needs_samples =
      config_.selector == SelectorKind::kDistributionGap ||
      config_.selector == SelectorKind::kThresholdCrossing;

  // Phase 1a probes score under NormalObjective, which is stateless and
  // therefore safe for LocalSearch's speculative parallel scoring.
  LocalSearch phase1_search({config_.phase1, config_.wmax, rng.split().seed(), pool.get()});
  if (selector_needs_samples) {
    if (config_.sampling_mode == SamplingMode::kEmulatedWeights) {
      // Paper-literal: the failure-emulating perturbation's own cost is the
      // sample (free, fidelity limited by wmax).
      phase1_search.set_observer(
          [&collector](const PerturbationEvent& e) { collector.on_perturbation(e); });
    } else {
      // Exact mode: the in-window perturbation only triggers sampling; the
      // recorded cost evaluates the TRUE failure of the link (the perturbed
      // weights are immaterial once its arcs are masked out), one extra
      // evaluation per trigger (~q-window hit rate of probes).
      phase1_search.set_observer([this, &collector](const PerturbationEvent& e) {
        if (!collector.should_sample(e)) return;
        collector.add_sample(
            e.link, evaluator_.evaluate(*e.candidate, FailureScenario::link(e.link)).cost());
      });
    }
  }
  phase1_search.set_on_accept([&store](const WeightSetting& w, const CostPair& cost) {
    store.offer(w, cost);
  });

  WeightSetting initial(num_links);
  if (config_.warm_start) {
    initial = make_warm_start(graph, config_.wmax);
  } else {
    randomize_weights(initial, config_.wmax, rng);
  }
  const LocalSearch::Result phase1 = phase1_search.run(normal_objective, initial);

  result.regular = phase1.best;
  result.regular_cost = phase1.best_cost;
  result.phase1_evaluations = phase1.evaluations;
  result.phase1_diversifications = phase1.diversifications;
  result.phase1a_samples = collector.total_samples();
  store.offer(phase1.best, phase1.best_cost);
  result.phase1_seconds = seconds_since(phase1_start);

  // ------------- Phase 1b: top-up sampling until rank convergence ---------
  const auto phase1b_start = Clock::now();
  if (selector_needs_samples) {
    const long budget = config_.max_phase1b_samples > 0
                            ? config_.max_phase1b_samples
                            : 20L * config_.criticality.tau * static_cast<long>(num_links);
    // Samples must stay conditioned on acceptable routings: build the pool of
    // acceptable stored settings once. The Phase 1 incumbent is acceptable by
    // definition, so the pool is never empty.
    std::vector<const AcceptableStore::Entry*> entry_pool;
    const AcceptableStore::Entry incumbent{result.regular, result.regular_cost};
    entry_pool.push_back(&incumbent);
    for (std::size_t i = 0; i < store.size(); ++i) {
      const AcceptableStore::Entry& entry = store.entry(i);
      if (collector.cost_acceptable(entry.cost, result.regular_cost))
        entry_pool.push_back(&entry);
    }

    const long generated = top_up_criticality_samples(
        evaluator_, collector, entry_pool, config_.sampling_mode, config_.wmax, budget,
        rng, pool.get());
    result.phase1b_samples = static_cast<std::size_t>(generated);
    result.criticality_converged = collector.converged();
    result.estimates = collector.estimates();
  }
  result.phase1b_seconds = seconds_since(phase1b_start);

  // ---------------- Phase 1c: critical link selection ---------------------
  const std::size_t target = critical_target_size();
  switch (config_.selector) {
    case SelectorKind::kDistributionGap: {
      CriticalityEstimates estimates = result.estimates;
      if (!config_.link_failure_probabilities.empty()) {
        // Probabilistic extension: criticality becomes the expected regret
        // p_l * (mean - left-tail mean).
        if (config_.link_failure_probabilities.size() != num_links)
          throw std::invalid_argument(
              "RobustOptimizer: link_failure_probabilities size mismatch");
        for (LinkId l = 0; l < num_links; ++l) {
          estimates.rho_lambda[l] *= config_.link_failure_probabilities[l];
          estimates.rho_phi[l] *= config_.link_failure_probabilities[l];
        }
      }
      result.critical = select_critical_links(estimates, target).critical;
      break;
    }
    case SelectorKind::kRandom: {
      Rng selector_rng = rng.split();
      result.critical = select_random_links(num_links, target, selector_rng);
      break;
    }
    case SelectorKind::kLoad:
      result.critical = select_by_load(evaluator_, result.regular, target);
      break;
    case SelectorKind::kThresholdCrossing:
      result.critical = select_by_threshold_crossings(collector, target);
      break;
    case SelectorKind::kFullSearch:
      result.critical.resize(num_links);
      for (LinkId l = 0; l < num_links; ++l) result.critical[l] = l;
      break;
  }

  // ---------------- Phase 2: robust optimization (Eq. 4) ------------------
  const auto phase2_start = Clock::now();
  std::vector<FailureScenario> scenarios;
  std::vector<double> scenario_weights;
  scenarios.reserve(result.critical.size());
  for (LinkId l : result.critical) {
    scenarios.push_back(FailureScenario::link(l));
    if (!config_.link_failure_probabilities.empty())
      scenario_weights.push_back(config_.link_failure_probabilities.at(l));
  }

  // Phase 2 parallelism lives inside the critical-scenario sweep (RobustObjective
  // is stateful, so its candidates are scored one at a time).
  RobustObjective robust_objective(evaluator_, scenarios, scenario_weights,
                                   result.regular_cost, config_.chi, pool.get());

  const auto feasible =
      store.feasible_entries(result.regular_cost.lambda, result.regular_cost.phi,
                             config_.chi);
  LocalSearch phase2_search({config_.phase2, config_.wmax, rng.split().seed()});
  const WeightSetting regular_best = result.regular;  // stable restart fallback
  const int wmax = config_.wmax;
  // Diversification restarts draw a recorded feasible setting and jitter a
  // random ~10% of links: the feasible pool is often small (constraints (5)
  // and (6) are tight), and unjittered restarts would keep replaying the
  // same trajectory. LocalSearch re-draws on infeasible restarts.
  phase2_search.set_restart([&feasible, regular_best, wmax](Rng& restart_rng) {
    WeightSetting w = feasible.empty()
                          ? regular_best
                          : feasible[restart_rng.uniform_index(feasible.size())]->setting;
    const std::size_t jitters = 1 + w.num_links() / 10;
    for (std::size_t j = 0; j < jitters; ++j) {
      const LinkId link = static_cast<LinkId>(restart_rng.uniform_index(w.num_links()));
      w.set(TrafficClass::kDelay, link, restart_rng.uniform_int(1, wmax));
      w.set(TrafficClass::kThroughput, link, restart_rng.uniform_int(1, wmax));
    }
    return w;
  });

  const LocalSearch::Result phase2 = phase2_search.run(robust_objective, result.regular);
  result.robust = phase2.best;
  result.robust_kfail = phase2.best_cost;
  result.robust_normal_cost = evaluator_.evaluate(result.robust).cost();
  result.phase2_evaluations = phase2.evaluations;
  result.phase2_scenario_evaluations = robust_objective.scenario_evaluations();
  result.phase2_diversifications = phase2.diversifications;
  result.phase2_seconds = seconds_since(phase2_start);

  const EvaluatorCacheStats cache_after = evaluator_.base_cache_stats();
  result.base_cache_hits = cache_after.hits - cache_before.hits;
  result.base_cache_misses = cache_after.misses - cache_before.misses;
  return result;
}

}  // namespace dtr
