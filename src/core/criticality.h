#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/acceptable_store.h"
#include "core/local_search.h"
#include "core/rank_convergence.h"
#include "cost/cost_types.h"
#include "graph/graph.h"
#include "routing/evaluator.h"
#include "util/rng.h"

namespace dtr {

class ThreadPool;

/// How post-failure cost samples are generated for criticality estimation.
enum class SamplingMode : std::uint8_t {
  /// The paper's literal scheme: piggyback on Phase 1a weight perturbations
  /// that land both weights in [q*wmax, wmax] (failure emulation); Phase 1b
  /// tops up with the same kind of perturbations until the ranking converges.
  /// Fidelity depends on wmax dominating typical path costs.
  kEmulatedWeights,
  /// Default: same trigger points, but the recorded sample evaluates the
  /// TRUE link failure (the paper motivates emulation as approximating an
  /// "infinite weight"; this removes the approximation for one extra
  /// evaluation per trigger). bench_selector_ablation compares both.
  kExactFailure,
};

std::string to_string(SamplingMode m);

/// Parameters of the criticality estimation pipeline (Sec. IV-D1).
struct CriticalityParams {
  /// A perturbation emulates a failure when both new weights land in
  /// [q * wmax, wmax].
  double q = 0.7;
  /// Lambda acceptability relaxation: pre-perturbation Lambda may exceed the
  /// incumbent best by at most z * B1.
  double z = 0.5;
  /// Phi acceptability relaxation (the same chi as constraint (6)).
  double chi = 0.2;
  /// "Left tail" = the smallest `left_tail_fraction` of the samples.
  double left_tail_fraction = 0.10;
  /// Rank lists refresh every tau * |E| new samples (paper: 30).
  int tau = 30;
  /// Convergence threshold e on the weighted rank-change index (paper: 2).
  double convergence_threshold = 2.0;
  /// Reservoir cap per link (memory bound; the paper keeps all samples).
  std::size_t max_samples_per_link = 4000;
};

/// Per-link criticality estimates (Eqs. (8)/(9)):
///   rho_Lambda,l = mean(Lambda_fail,l) - left_tail_mean(Lambda_fail,l)
///   rho_Phi,l    = mean(Phi_fail,l)    - left_tail_mean(Phi_fail,l)
/// computed over the *acceptable-routing* conditional cost distributions.
struct CriticalityEstimates {
  std::vector<double> rho_lambda;
  std::vector<double> rho_phi;
  std::vector<double> mean_lambda;   ///< Lambda-hat_fail,l
  std::vector<double> mean_phi;      ///< Phi-hat_fail,l
  std::vector<double> tail_lambda;   ///< Lambda-tilde_fail,l (left-tail mean)
  std::vector<double> tail_phi;      ///< Phi-tilde_fail,l
};

/// Collects per-link post-"failure" cost samples and turns them into
/// criticality estimates. Samples arrive either from the Phase 1a observer
/// (failure-emulating weight perturbations) or are force-fed by Phase 1b /
/// the exact-failure sampling mode.
class CriticalityCollector {
 public:
  CriticalityCollector(std::size_t num_links, int wmax, double b1,
                       const CriticalityParams& params, std::uint64_t seed);

  /// Sampling trigger shared by both sampling modes: the candidate is
  /// feasible, (a) both new weights are in the emulation window and (b) the
  /// pre-perturbation costs are acceptable relative to the phase's
  /// best-so-far (the z/chi relaxations).
  bool should_sample(const PerturbationEvent& event) const;

  /// Observer hook for LocalSearch (Phase 1a), emulated-weights mode:
  /// records cost_after for the perturbed link when should_sample passes.
  void on_perturbation(const PerturbationEvent& event);

  /// Direct sample injection (Phase 1b top-up, exact-failure mode, tests).
  void add_sample(LinkId link, const CostPair& cost);

  std::size_t num_links() const { return num_links_; }
  std::size_t sample_count(LinkId link) const;
  std::size_t total_samples() const { return total_samples_; }
  /// Links with fewer samples first — Phase 1b prioritizes them.
  std::vector<LinkId> links_by_sample_need() const;

  std::span<const double> lambda_samples(LinkId link) const;
  std::span<const double> phi_samples(LinkId link) const;

  /// Recomputes Eq. (8)/(9) estimates from the current samples.
  CriticalityEstimates estimates() const;

  /// True once both classes' rank orders have stabilized (S <= e for both,
  /// with at least two tau-spaced updates).
  bool converged() const;
  /// Samples that can still be added before the next rank-list refresh (the
  /// only event that can change `converged()`). Phase 1b batches up to this
  /// many evaluations in parallel without altering the sequential semantics.
  std::size_t samples_until_next_rank_update() const;
  double last_lambda_index() const { return lambda_tracker_.last_index(); }
  double last_phi_index() const { return phi_tracker_.last_index(); }
  std::size_t rank_updates() const { return lambda_tracker_.updates(); }

  const CriticalityParams& params() const { return params_; }
  /// Lower edge of the failure-emulation weight window, ceil(q * wmax).
  int emulation_weight_floor() const { return emulation_floor_; }

  /// The acceptability predicate (exposed for Phase 1b and tests):
  /// Lambda <= best.lambda + z*B1 and Phi <= (1+chi) * best.phi.
  bool cost_acceptable(const CostPair& cost, const CostPair& best) const;

 private:
  void maybe_update_ranks();

  CriticalityParams params_;
  int emulation_floor_;
  double b1_;
  std::size_t num_links_;
  std::vector<std::vector<double>> lambda_samples_;
  std::vector<std::vector<double>> phi_samples_;
  std::vector<std::size_t> offered_;  ///< per link, for reservoir replacement
  std::size_t total_samples_ = 0;
  std::size_t next_rank_update_at_;
  RankTracker lambda_tracker_;
  RankTracker phi_tracker_;
  Rng rng_;
};

/// Phase 1b top-up sampling (Fig. 1): draws acceptable settings from
/// `entries`, generates failure(-like) cost samples for the least-sampled
/// links, and feeds the collector until the criticality ranking converges or
/// `budget` samples were generated. Returns the number generated.
///
/// The evaluation of each batch runs on `pool` (nullptr = sequential), but
/// the result stream is bit-identical for any worker count: jobs are drawn
/// from `rng` in exactly the order the sequential loop would draw them, and
/// a batch never crosses a rank-update boundary — the only point where
/// `collector.converged()` can flip.
long top_up_criticality_samples(const Evaluator& evaluator,
                                CriticalityCollector& collector,
                                std::span<const AcceptableStore::Entry* const> entries,
                                SamplingMode mode, int wmax, long budget, Rng& rng,
                                ThreadPool* pool = nullptr);

/// Catalog-aware criticality (the Phase-1b/1c generalization behind
/// HardeningObjective): the distribution-gap estimator applied to COMPOUND
/// scenarios instead of single links. Estimate index i describes
/// `scenarios[i]` — rank lists, convergence tracking and reservoir behavior
/// are exactly the per-link machinery with "link l" replaced by
/// "catalog entry i".
struct ScenarioCriticality {
  CriticalityEstimates estimates;  ///< indexed by catalog position
  long samples = 0;                ///< cost evaluations fed to the estimator
  bool converged = false;          ///< rank order stabilized before the budget ran out
};

/// Samples acceptable routings from `entries` under the catalog's scenarios
/// (least-sampled scenario first, exact-failure evaluation) until the
/// criticality rank order converges or `budget` samples were generated —
/// the scenario-space analogue of top_up_criticality_samples, sharing its
/// determinism contract: jobs are drawn from `rng` in the order the
/// sequential loop would draw them and batches never cross a rank-update
/// boundary, so the estimates are bit-identical for any worker count.
ScenarioCriticality estimate_scenario_criticality(
    const Evaluator& evaluator, std::span<const FailureScenario> scenarios,
    std::span<const AcceptableStore::Entry* const> entries,
    const CriticalityParams& params, long budget, Rng& rng,
    ThreadPool* pool = nullptr);

}  // namespace dtr
