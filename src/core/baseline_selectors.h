#pragma once

#include <cstddef>
#include <vector>

#include "core/criticality.h"
#include "graph/graph.h"
#include "routing/evaluator.h"
#include "util/rng.h"

namespace dtr {

/// Critical-link selectors from prior (single-routing) work, reimplemented
/// for the Sec. IV-C comparison. The paper reports that none of them carries
/// over to DTR; bench_selector_ablation quantifies that claim.

/// Yuan (IPOM 2003): uniformly random critical set.
std::vector<LinkId> select_random_links(std::size_t num_links, std::size_t target_size,
                                        Rng& rng);

/// Fortz–Thorup (INOC 2003): links ranked by their impact on network
/// utilization — here, by the maximum utilization of their arcs under the
/// regular-optimized routing.
std::vector<LinkId> select_by_load(const Evaluator& evaluator,
                                   const WeightSetting& regular_best,
                                   std::size_t target_size);

/// Sridharan–Guérin (Networking 2005): links ranked by how often their
/// failure-emulating cost samples cross a global "bad performance" threshold
/// (wild-fluctuation counting). Thresholds are quantiles of the pooled
/// per-class sample distributions; per-link counts are normalized per class
/// and summed.
struct ThresholdSelectorParams {
  double bad_quantile = 0.75;
};
std::vector<LinkId> select_by_threshold_crossings(const CriticalityCollector& collector,
                                                  std::size_t target_size,
                                                  const ThresholdSelectorParams& params = {});

}  // namespace dtr
