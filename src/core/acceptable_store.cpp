#include "core/acceptable_store.h"

#include <stdexcept>

namespace dtr {

AcceptableStore::AcceptableStore(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  if (capacity_ == 0) throw std::invalid_argument("AcceptableStore: zero capacity");
  entries_.reserve(capacity_);
}

void AcceptableStore::offer(const WeightSetting& setting, const CostPair& cost) {
  ++offered_;
  if (entries_.size() < capacity_) {
    entries_.push_back({setting, cost});
    return;
  }
  // Reservoir sampling: keep each offered element with probability cap/seen.
  const std::uint64_t slot = rng_.uniform_index(offered_);
  if (slot < capacity_) entries_[slot] = {setting, cost};
}

std::vector<const AcceptableStore::Entry*> AcceptableStore::feasible_entries(
    double lambda_star, double phi_star, double chi) const {
  const LexicographicOrder order;
  std::vector<const Entry*> out;
  for (const Entry& e : entries_) {
    if (order.values_equal(e.cost.lambda, lambda_star) &&
        e.cost.phi <= (1.0 + chi) * phi_star + order.abs_tol()) {
      out.push_back(&e);
    }
  }
  return out;
}

const AcceptableStore::Entry& AcceptableStore::sample(Rng& rng) const {
  if (entries_.empty()) throw std::logic_error("AcceptableStore::sample: empty store");
  return entries_[rng.uniform_index(entries_.size())];
}

}  // namespace dtr
