#pragma once

#include <vector>

#include "graph/graph.h"

namespace dtr {

/// Connectivity analysis over the *undirected* view of a Graph (each physical
/// link treated as one undirected edge). Used by topology generators to
/// guarantee that single-link failures cannot partition the network, and by
/// the evaluator's disconnection tests.

/// Component label per node (labels are dense, starting at 0).
std::vector<int> connected_components(const Graph& g);

/// Number of connected components (0 for an empty graph).
int component_count(const Graph& g);

bool is_connected(const Graph& g);

/// Physical links whose removal disconnects the graph (Tarjan bridge search).
std::vector<LinkId> find_bridges(const Graph& g);

/// Connected and bridge-free.
bool is_two_edge_connected(const Graph& g);

/// True if removing the undirected link `skip` leaves the graph connected.
bool connected_without_link(const Graph& g, LinkId skip);

/// True if removing node `skip` (and all its links) leaves the rest connected.
bool connected_without_node(const Graph& g, NodeId skip);

}  // namespace dtr
