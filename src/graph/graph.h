#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace dtr {

using NodeId = std::uint32_t;
/// Directed arc index (the unit routing operates on).
using ArcId = std::uint32_t;
/// Undirected link index: one physical link == two directed arcs. Failure
/// scenarios and the critical-link machinery work at this granularity.
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr ArcId kInvalidArc = static_cast<ArcId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

/// Planar position (unit square for synthesized topologies, projected
/// kilometres for the ISP map). Used to derive propagation delays.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

double euclidean_distance(Point a, Point b);

/// One direction of a physical link.
struct Arc {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double capacity = 0.0;       ///< Mbps
  double prop_delay_ms = 0.0;  ///< propagation delay p_l
  LinkId link = kInvalidLink;  ///< owning physical link
  ArcId reverse = kInvalidArc; ///< opposite direction, if the link is bidirectional
};

/// Flat CSR/SoA view of the graph, sized for 1000+-node / 10k-arc
/// topologies where the per-node `std::vector<std::vector<ArcId>>`
/// adjacency and the AoS `Arc` records dominate cache misses in the SPF /
/// load-sweep inner loops.
///
/// Adjacency is compressed-sparse-row: node u's out-arcs occupy
/// `out_arc[out_offset[u] .. out_offset[u+1])`, with `out_head[k]` the head
/// (dst) of `out_arc[k]` so relaxations never touch the 40-byte Arc struct.
/// The per-node order is ascending arc id — exactly the order the legacy
/// per-node vectors held (add_link appends, ids are monotone) — so every
/// float accumulation that iterates the CSR visits terms in the same order
/// and stays bit-identical to the pointer-chasing layout it replaced.
///
/// The SoA mirrors (`src`/`dst`/`capacity`/`prop_delay_ms`/`link`) are
/// indexed by ArcId and carry the attributes the hot paths read one at a
/// time (a capacity sweep over 20k arcs reads a dense 8-byte stream instead
/// of striding 48-byte records).
struct GraphCsr {
  std::vector<std::uint32_t> out_offset;  ///< size n+1
  std::vector<ArcId> out_arc;             ///< ascending arc id within each node
  std::vector<NodeId> out_head;           ///< dst of out_arc[k]
  std::vector<std::uint32_t> in_offset;   ///< size n+1
  std::vector<ArcId> in_arc;              ///< ascending arc id within each node
  std::vector<NodeId> in_tail;            ///< src of in_arc[k]

  std::vector<NodeId> src;            ///< by ArcId
  std::vector<NodeId> dst;            ///< by ArcId
  std::vector<double> capacity;       ///< by ArcId, Mbps
  std::vector<double> prop_delay_ms;  ///< by ArcId
  std::vector<LinkId> link;           ///< by ArcId
};

/// Directed multigraph with paired arcs, the substrate for both logical
/// routing topologies. Node/arc/link ids are dense indices, stable across the
/// lifetime of the graph (no removal; failures are expressed as alive-masks,
/// never by mutating the graph).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_nodes);

  // The lazily-built CSR cache makes the mutex/atomic members non-copyable;
  // copies carry the structural state and rebuild the CSR on first use.
  Graph(const Graph& o);
  Graph& operator=(const Graph& o);
  Graph(Graph&& o) noexcept;
  Graph& operator=(Graph&& o) noexcept;

  NodeId add_node(Point position = {});

  /// Adds a bidirectional link (two arcs, each the other's reverse).
  /// Both directions share capacity value and propagation delay.
  LinkId add_link(NodeId u, NodeId v, double capacity_mbps, double prop_delay_ms);

  /// Adds a single directed arc with no reverse (used by adversarial tests).
  ArcId add_arc(NodeId u, NodeId v, double capacity_mbps, double prop_delay_ms);

  std::size_t num_nodes() const { return positions_.size(); }
  std::size_t num_arcs() const { return arcs_.size(); }
  /// Number of physical links. The paper's "# links" counts directed arcs
  /// (e.g. "30 nodes, 180 links" == 90 physical links); see `num_arcs()`.
  std::size_t num_links() const { return links_.size(); }

  const Arc& arc(ArcId a) const { return arcs_[a]; }
  std::span<const Arc> arcs() const { return arcs_; }

  std::span<const ArcId> out_arcs(NodeId u) const { return out_arcs_[u]; }
  std::span<const ArcId> in_arcs(NodeId u) const { return in_arcs_[u]; }
  /// The 1 or 2 arcs composing a physical link.
  std::span<const ArcId> link_arcs(LinkId l) const { return links_[l]; }

  /// Flat CSR/SoA view for hot iteration (SPF, load sweeps, patch paths).
  /// Built lazily on first call and cached until the next mutation;
  /// thread-safe (double-checked lock), so concurrent read-only users — the
  /// fluctuation sweep constructs evaluators on pool workers over one shared
  /// graph — all see the same build. Mutating the graph concurrently with
  /// readers was never supported and still isn't.
  const GraphCsr& csr() const;

  Point position(NodeId u) const { return positions_[u]; }
  void set_position(NodeId u, Point p) { positions_[u] = p; }

  /// True if some arc u->v exists.
  bool has_arc_between(NodeId u, NodeId v) const;

  /// Undirected degree of u (number of physical links incident to u).
  std::size_t link_degree(NodeId u) const;

  /// Mean undirected degree: 2 * num_links / num_nodes.
  double average_link_degree() const;

  /// Multiplies every arc's propagation delay by `factor` (> 0).
  void scale_prop_delays(double factor);

  /// Sets the propagation delay of both arcs of link `l`.
  void set_link_prop_delay(LinkId l, double prop_delay_ms);

  /// Sets every arc's capacity to `capacity_mbps` (> 0).
  void set_uniform_capacity(double capacity_mbps);

  /// Multiplies the capacity of both arcs of link `l` by `factor` (> 0).
  /// Used by the Sec. V-B "resize congested core links" experiment.
  void scale_link_capacity(LinkId l, double factor);

 private:
  void invalidate_csr() { csr_valid_.store(false, std::memory_order_release); }
  void build_csr() const;

  std::vector<Point> positions_;
  std::vector<Arc> arcs_;
  std::vector<std::vector<ArcId>> out_arcs_;
  std::vector<std::vector<ArcId>> in_arcs_;
  std::vector<std::vector<ArcId>> links_;

  mutable GraphCsr csr_;
  mutable std::atomic<bool> csr_valid_{false};
  mutable std::mutex csr_mutex_;
};

}  // namespace dtr
