#include "graph/spf.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace dtr {

namespace {

struct HeapEntry {
  double dist;
  NodeId node;
  bool operator>(const HeapEntry& o) const { return dist > o.dist; }
};

inline bool arc_is_alive(ArcAliveMask mask, ArcId a) {
  return mask.empty() || mask[a] != 0;
}

enum class Direction { kForward, kReverse };

/// Dijkstra with lazy deletion. For kReverse, relaxes in-arcs so the labels
/// are "distance to t"; for kForward, out-arcs ("distance from s").
void dijkstra(const Graph& g, NodeId origin, std::span<const double> arc_cost,
              ArcAliveMask alive, Direction dir, std::vector<double>& dist) {
  if (arc_cost.size() != g.num_arcs())
    throw std::invalid_argument("dijkstra: arc_cost size mismatch");
  if (!alive.empty() && alive.size() != g.num_arcs())
    throw std::invalid_argument("dijkstra: alive mask size mismatch");
  if (origin >= g.num_nodes()) throw std::out_of_range("dijkstra: origin node");

  dist.assign(g.num_nodes(), kInfDist);
  dist[origin] = 0.0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  heap.push({0.0, origin});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    const auto arcs = (dir == Direction::kReverse) ? g.in_arcs(u) : g.out_arcs(u);
    for (ArcId a : arcs) {
      if (!arc_is_alive(alive, a)) continue;
      const Arc& arc = g.arc(a);
      const NodeId next = (dir == Direction::kReverse) ? arc.src : arc.dst;
      const double nd = d + arc_cost[a];
      if (nd < dist[next]) {
        dist[next] = nd;
        heap.push({nd, next});
      }
    }
  }
}

}  // namespace

void shortest_distances_to(const Graph& g, NodeId t,
                           std::span<const double> arc_cost,
                           ArcAliveMask arc_alive, std::vector<double>& dist) {
  dijkstra(g, t, arc_cost, arc_alive, Direction::kReverse, dist);
}

void shortest_distances_from(const Graph& g, NodeId s,
                             std::span<const double> arc_cost,
                             ArcAliveMask arc_alive, std::vector<double>& dist) {
  dijkstra(g, s, arc_cost, arc_alive, Direction::kForward, dist);
}

std::vector<std::vector<double>> all_pairs_distances_to(
    const Graph& g, std::span<const double> arc_cost) {
  std::vector<std::vector<double>> d(g.num_nodes());
  for (NodeId t = 0; t < g.num_nodes(); ++t)
    shortest_distances_to(g, t, arc_cost, {}, d[t]);
  return d;
}

void hop_distances_from(const Graph& g, NodeId s, ArcAliveMask arc_alive,
                        std::vector<int>& hops) {
  if (s >= g.num_nodes()) throw std::out_of_range("hop_distances_from: source");
  hops.assign(g.num_nodes(), -1);
  hops[s] = 0;
  std::queue<NodeId> q;
  q.push(s);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (ArcId a : g.out_arcs(u)) {
      if (!arc_is_alive(arc_alive, a)) continue;
      const NodeId v = g.arc(a).dst;
      if (hops[v] == -1) {
        hops[v] = hops[u] + 1;
        q.push(v);
      }
    }
  }
}

double propagation_diameter_ms(const Graph& g) {
  if (g.num_nodes() < 2) return 0.0;
  std::vector<double> costs(g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) costs[a] = g.arc(a).prop_delay_ms;
  double diameter = 0.0;
  std::vector<double> dist;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    shortest_distances_from(g, s, costs, {}, dist);
    for (double d : dist)
      if (d != kInfDist) diameter = std::max(diameter, d);
  }
  return diameter;
}

}  // namespace dtr
