#include "graph/spf.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace dtr {

namespace {

struct HeapEntry {
  double dist;
  NodeId node;
  bool operator>(const HeapEntry& o) const { return dist > o.dist; }
};

inline bool arc_is_alive(ArcAliveMask mask, ArcId a) {
  return mask.empty() || mask[a] != 0;
}

enum class Direction { kForward, kReverse };

/// Dijkstra with lazy deletion. For kReverse, relaxes in-arcs so the labels
/// are "distance to t"; for kForward, out-arcs ("distance from s").
void dijkstra(const Graph& g, NodeId origin, std::span<const double> arc_cost,
              ArcAliveMask alive, Direction dir, std::vector<double>& dist) {
  if (arc_cost.size() != g.num_arcs())
    throw std::invalid_argument("dijkstra: arc_cost size mismatch");
  if (!alive.empty() && alive.size() != g.num_arcs())
    throw std::invalid_argument("dijkstra: alive mask size mismatch");
  if (origin >= g.num_nodes()) throw std::out_of_range("dijkstra: origin node");

  // CSR adjacency: one contiguous offset/arc/endpoint stream per direction,
  // visited in the same per-node ascending-arc-id order as the legacy
  // per-node vectors, so relaxation order (and float results) are unchanged.
  const GraphCsr& csr = g.csr();
  const bool rev = dir == Direction::kReverse;
  const std::uint32_t* offset = (rev ? csr.in_offset : csr.out_offset).data();
  const ArcId* arc_of = (rev ? csr.in_arc : csr.out_arc).data();
  const NodeId* node_of = (rev ? csr.in_tail : csr.out_head).data();

  dist.assign(g.num_nodes(), kInfDist);
  dist[origin] = 0.0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  heap.push({0.0, origin});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    const std::uint32_t end = offset[u + 1];
    for (std::uint32_t k = offset[u]; k < end; ++k) {
      const ArcId a = arc_of[k];
      if (!arc_is_alive(alive, a)) continue;
      const NodeId next = node_of[k];
      const double nd = d + arc_cost[a];
      if (nd < dist[next]) {
        dist[next] = nd;
        heap.push({nd, next});
      }
    }
  }
}

}  // namespace

void shortest_distances_to(const Graph& g, NodeId t,
                           std::span<const double> arc_cost,
                           ArcAliveMask arc_alive, std::vector<double>& dist) {
  dijkstra(g, t, arc_cost, arc_alive, Direction::kReverse, dist);
}

void shortest_distances_from(const Graph& g, NodeId s,
                             std::span<const double> arc_cost,
                             ArcAliveMask arc_alive, std::vector<double>& dist) {
  dijkstra(g, s, arc_cost, arc_alive, Direction::kForward, dist);
}

std::vector<std::vector<double>> all_pairs_distances_to(
    const Graph& g, std::span<const double> arc_cost) {
  std::vector<std::vector<double>> d(g.num_nodes());
  for (NodeId t = 0; t < g.num_nodes(); ++t)
    shortest_distances_to(g, t, arc_cost, {}, d[t]);
  return d;
}

std::ptrdiff_t delta_spf_update_arcs(const Graph& g, std::span<const double> arc_cost,
                                     ArcAliveMask alive,
                                     std::span<const ArcCostDelta> changes,
                                     std::vector<double>& dist,
                                     std::size_t max_affected, DeltaSpfScratch& scratch) {
  if (arc_cost.size() != g.num_arcs())
    throw std::invalid_argument("delta_spf_update_arcs: arc_cost size mismatch");
  if (!alive.empty() && alive.size() != g.num_arcs())
    throw std::invalid_argument("delta_spf_update_arcs: alive mask size mismatch");
  if (dist.size() != g.num_nodes())
    throw std::invalid_argument("delta_spf_update_arcs: dist size mismatch");
  if (changes.empty()) return 0;
  scratch.boundary_seeds_ = 0;
  const GraphCsr& csr = g.csr();

  // Effective new cost: a dead arc is an increase to +infinity.
  const auto eff_cost = [&](ArcId a) -> double {
    return arc_is_alive(alive, a) ? arc_cost[a] : kInfDist;
  };
  // Old cost of an arc under the labeled state. The change list is tiny (a
  // handful of arcs), so a linear scan beats any index.
  const auto old_cost_of = [&](ArcId a) -> double {
    for (const ArcCostDelta& c : changes)
      if (c.arc == a) return c.old_cost;
    return arc_cost[a];
  };

  // Node states this epoch. Undecided nodes (stale stamp) are, for the
  // support checks below, indistinguishable from unaffected ones — which is
  // exactly right: a node that never becomes a candidate keeps its distance.
  // kImproving marks nodes whose label can only DECREASE (reached through a
  // cost decrease); their old label stays a valid upper bound throughout.
  enum : std::uint8_t { kUnaffected = 1, kAffected = 2, kImproving = 3, kFinalized = 4 };
  ++scratch.epoch_;
  scratch.stamp_.resize(g.num_nodes(), 0);
  scratch.state_.resize(g.num_nodes(), 0);
  scratch.label_.resize(g.num_nodes(), 0.0);
  const auto state_of = [&](NodeId u) -> std::uint8_t {
    return scratch.stamp_[u] == scratch.epoch_ ? scratch.state_[u] : 0;
  };
  const auto set_state = [&](NodeId u, std::uint8_t s) {
    scratch.stamp_[u] = scratch.epoch_;
    scratch.state_[u] = s;
  };

  auto& heap = scratch.heap_;  // min-heap of (old dist, node) candidates
  heap.clear();
  scratch.affected_.clear();
  const auto push = [&](double key, NodeId u) {
    heap.emplace_back(key, u);
    std::push_heap(heap.begin(), heap.end(), std::greater<>());
  };
  const auto pop = [&] {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>());
    const auto top = heap.back();
    heap.pop_back();
    return top;
  };

  // Phase 1 — identify the invalidated region. An INCREASED (or removed) arc
  // mattered for its source u only if it realized u's label EXACTLY
  // (Dijkstra's output always has at least one out-arc with
  // dist[u] == cost + dist[head], in the very float arithmetic this
  // repeats). Candidates are processed in increasing old-distance order;
  // positive costs make every exact support strictly distance-decreasing, so
  // a candidate's supports are already decided when it is popped. Decreases
  // never invalidate — they are phase-2 improvement seeds.
  for (const ArcCostDelta& c : changes) {
    const NodeId src = csr.src[c.arc];
    const NodeId dst = csr.dst[c.arc];
    if (dist[src] == kInfDist || dist[dst] == kInfDist) continue;
    if (!(eff_cost(c.arc) > c.old_cost)) continue;
    if (dist[src] == c.old_cost + dist[dst]) push(dist[src], src);
  }
  while (!heap.empty()) {
    const auto [d, u] = pop();
    if (state_of(u) != 0) continue;  // already decided
    bool supported = false;
    for (std::uint32_t k = csr.out_offset[u]; k < csr.out_offset[u + 1]; ++k) {
      const ArcId a = csr.out_arc[k];
      if (!arc_is_alive(alive, a)) continue;
      const NodeId v = csr.out_head[k];
      if (dist[v] == kInfDist || state_of(v) == kAffected) continue;
      // <= instead of ==: a decreased out-arc can hold the label up with room
      // to spare (the label then only improves — phase 2's business). For
      // unchanged arcs old-label optimality makes the sum >= dist[u], so this
      // is the exact-support equality of the removal-only update.
      if (arc_cost[a] + dist[v] <= dist[u]) {
        supported = true;
        break;
      }
    }
    if (supported) {
      set_state(u, kUnaffected);
      continue;
    }
    set_state(u, kAffected);
    scratch.affected_.push_back(u);
    if (scratch.affected_.size() > max_affected) return -1;  // dist untouched so far
    for (std::uint32_t k = csr.in_offset[u]; k < csr.in_offset[u + 1]; ++k) {
      const ArcId b = csr.in_arc[k];
      if (!arc_is_alive(alive, b)) continue;
      const NodeId w = csr.in_tail[k];
      if (dist[w] == kInfDist || state_of(w) != 0) continue;
      // Tightness under the OLD cost: w's label was formed before the change.
      if (dist[w] == old_cost_of(b) + dist[u]) push(dist[w], w);
    }
  }

  // Phase 2 — Dijkstra restricted to the affected region, seeded from the
  // unaffected boundary (whose labels are final upper bounds) and from the
  // decreased arcs. Sums are formed tail-first exactly like the full
  // Dijkstra, so recomputed labels are the same min over the same float path
  // sums. Label writes into `dist` are deferred to the write-back loop below
  // so an over-cap abort (improvement seeds also count) leaves `dist`
  // untouched.
  heap.clear();
  const std::size_t invalidated = scratch.affected_.size();
  for (std::size_t i = 0; i < invalidated; ++i) {
    const NodeId u = scratch.affected_[i];
    double best = kInfDist;
    for (std::uint32_t k = csr.out_offset[u]; k < csr.out_offset[u + 1]; ++k) {
      const ArcId a = csr.out_arc[k];
      if (!arc_is_alive(alive, a)) continue;
      const NodeId v = csr.out_head[k];
      if (dist[v] == kInfDist || state_of(v) == kAffected) continue;
      const double cand = dist[v] + arc_cost[a];
      if (cand < best) best = cand;
    }
    scratch.label_[u] = best;
    if (best != kInfDist) {
      push(best, u);
      ++scratch.boundary_seeds_;
    }
  }
  for (const ArcCostDelta& c : changes) {
    if (!arc_is_alive(alive, c.arc)) continue;
    if (!(arc_cost[c.arc] < c.old_cost)) continue;  // only decreases improve
    const NodeId u = csr.src[c.arc];
    const NodeId v = csr.dst[c.arc];
    if (dist[v] == kInfDist || state_of(v) == kAffected) continue;
    const std::uint8_t su = state_of(u);
    if (su == kAffected) continue;  // its boundary seed already saw this arc
    const double cand = dist[v] + arc_cost[c.arc];
    if (su == kImproving) {
      if (cand < scratch.label_[u]) {
        scratch.label_[u] = cand;
        push(cand, u);
        ++scratch.boundary_seeds_;
      }
    } else if (cand < dist[u]) {
      set_state(u, kImproving);
      scratch.label_[u] = cand;
      scratch.affected_.push_back(u);
      if (scratch.affected_.size() > max_affected) return -1;  // dist untouched
      push(cand, u);
      ++scratch.boundary_seeds_;
    }
  }
  while (!heap.empty()) {
    const auto [d, u] = pop();
    if (state_of(u) == kFinalized || d > scratch.label_[u]) continue;  // stale entry
    set_state(u, kFinalized);
    // label_[u] == d here (the stale check rejects anything else), so the
    // deferred write-back below writes exactly this value.
    for (std::uint32_t k = csr.in_offset[u]; k < csr.in_offset[u + 1]; ++k) {
      const ArcId b = csr.in_arc[k];
      if (!arc_is_alive(alive, b)) continue;
      const NodeId w = csr.in_tail[k];
      const std::uint8_t sw = state_of(w);
      const double cand = d + arc_cost[b];
      if (sw == kAffected || sw == kImproving) {  // pending region node
        if (cand < scratch.label_[w]) {
          scratch.label_[w] = cand;
          push(cand, w);
        }
      } else if (sw != kFinalized && cand < dist[w]) {
        // A finalized improvement undercut a label outside the region: the
        // improvement front grows through u's predecessors.
        set_state(w, kImproving);
        scratch.label_[w] = cand;
        scratch.affected_.push_back(w);
        if (scratch.affected_.size() > max_affected) return -1;  // dist untouched
        push(cand, w);
      }
    }
  }
  for (NodeId u : scratch.affected_) {
    const std::uint8_t st = state_of(u);
    if (st == kFinalized) {
      dist[u] = scratch.label_[u];
    } else if (st == kAffected) {
      dist[u] = kInfDist;  // cut off entirely (improving nodes always finalize)
    }
  }
  return static_cast<std::ptrdiff_t>(scratch.affected_.size());
}

std::ptrdiff_t delta_spf_remove_arcs(const Graph& g, std::span<const double> arc_cost,
                                     ArcAliveMask new_alive,
                                     std::span<const ArcId> removed_arcs,
                                     std::vector<double>& dist,
                                     std::size_t max_affected, DeltaSpfScratch& scratch) {
  // Removal is a cost increase to +infinity (the arc is dead in new_alive).
  // With no decreases in the change set the general update degenerates to
  // the historical removal algorithm: no improvement seeds, the <= support
  // check collapses to the exact equality, and the phase-2 region/labels are
  // the same mins over the same float sums — bit-identical output.
  auto& changes = scratch.changes_;
  changes.clear();
  changes.reserve(removed_arcs.size());
  for (ArcId a : removed_arcs) changes.push_back({a, arc_cost[a]});
  return delta_spf_update_arcs(g, arc_cost, new_alive, changes, dist, max_affected,
                               scratch);
}

void hop_distances_from(const Graph& g, NodeId s, ArcAliveMask arc_alive,
                        std::vector<int>& hops) {
  if (s >= g.num_nodes()) throw std::out_of_range("hop_distances_from: source");
  const GraphCsr& csr = g.csr();
  hops.assign(g.num_nodes(), -1);
  hops[s] = 0;
  std::queue<NodeId> q;
  q.push(s);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (std::uint32_t k = csr.out_offset[u]; k < csr.out_offset[u + 1]; ++k) {
      const ArcId a = csr.out_arc[k];
      if (!arc_is_alive(arc_alive, a)) continue;
      const NodeId v = csr.out_head[k];
      if (hops[v] == -1) {
        hops[v] = hops[u] + 1;
        q.push(v);
      }
    }
  }
}

double propagation_diameter_ms(const Graph& g) {
  if (g.num_nodes() < 2) return 0.0;
  // SoA mirror: the delay vector is already laid out by ArcId.
  std::vector<double> costs(g.csr().prop_delay_ms.begin(), g.csr().prop_delay_ms.end());
  double diameter = 0.0;
  std::vector<double> dist;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    shortest_distances_from(g, s, costs, {}, dist);
    for (double d : dist)
      if (d != kInfDist) diameter = std::max(diameter, d);
  }
  return diameter;
}

}  // namespace dtr
