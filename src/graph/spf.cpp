#include "graph/spf.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace dtr {

namespace {

struct HeapEntry {
  double dist;
  NodeId node;
  bool operator>(const HeapEntry& o) const { return dist > o.dist; }
};

inline bool arc_is_alive(ArcAliveMask mask, ArcId a) {
  return mask.empty() || mask[a] != 0;
}

enum class Direction { kForward, kReverse };

/// Dijkstra with lazy deletion. For kReverse, relaxes in-arcs so the labels
/// are "distance to t"; for kForward, out-arcs ("distance from s").
void dijkstra(const Graph& g, NodeId origin, std::span<const double> arc_cost,
              ArcAliveMask alive, Direction dir, std::vector<double>& dist) {
  if (arc_cost.size() != g.num_arcs())
    throw std::invalid_argument("dijkstra: arc_cost size mismatch");
  if (!alive.empty() && alive.size() != g.num_arcs())
    throw std::invalid_argument("dijkstra: alive mask size mismatch");
  if (origin >= g.num_nodes()) throw std::out_of_range("dijkstra: origin node");

  dist.assign(g.num_nodes(), kInfDist);
  dist[origin] = 0.0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  heap.push({0.0, origin});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    const auto arcs = (dir == Direction::kReverse) ? g.in_arcs(u) : g.out_arcs(u);
    for (ArcId a : arcs) {
      if (!arc_is_alive(alive, a)) continue;
      const Arc& arc = g.arc(a);
      const NodeId next = (dir == Direction::kReverse) ? arc.src : arc.dst;
      const double nd = d + arc_cost[a];
      if (nd < dist[next]) {
        dist[next] = nd;
        heap.push({nd, next});
      }
    }
  }
}

}  // namespace

void shortest_distances_to(const Graph& g, NodeId t,
                           std::span<const double> arc_cost,
                           ArcAliveMask arc_alive, std::vector<double>& dist) {
  dijkstra(g, t, arc_cost, arc_alive, Direction::kReverse, dist);
}

void shortest_distances_from(const Graph& g, NodeId s,
                             std::span<const double> arc_cost,
                             ArcAliveMask arc_alive, std::vector<double>& dist) {
  dijkstra(g, s, arc_cost, arc_alive, Direction::kForward, dist);
}

std::vector<std::vector<double>> all_pairs_distances_to(
    const Graph& g, std::span<const double> arc_cost) {
  std::vector<std::vector<double>> d(g.num_nodes());
  for (NodeId t = 0; t < g.num_nodes(); ++t)
    shortest_distances_to(g, t, arc_cost, {}, d[t]);
  return d;
}

std::ptrdiff_t delta_spf_remove_arcs(const Graph& g, std::span<const double> arc_cost,
                                     ArcAliveMask new_alive,
                                     std::span<const ArcId> removed_arcs,
                                     std::vector<double>& dist,
                                     std::size_t max_affected, DeltaSpfScratch& scratch) {
  if (arc_cost.size() != g.num_arcs())
    throw std::invalid_argument("delta_spf_remove_arcs: arc_cost size mismatch");
  if (!new_alive.empty() && new_alive.size() != g.num_arcs())
    throw std::invalid_argument("delta_spf_remove_arcs: alive mask size mismatch");
  if (dist.size() != g.num_nodes())
    throw std::invalid_argument("delta_spf_remove_arcs: dist size mismatch");
  if (removed_arcs.empty()) return 0;
  scratch.boundary_seeds_ = 0;

  // Node states this epoch. Undecided nodes (stale stamp) are, for the
  // support checks below, indistinguishable from unaffected ones — which is
  // exactly right: a node that never becomes a candidate keeps its distance.
  enum : std::uint8_t { kUnaffected = 1, kAffected = 2, kFinalized = 3 };
  ++scratch.epoch_;
  scratch.stamp_.resize(g.num_nodes(), 0);
  scratch.state_.resize(g.num_nodes(), 0);
  scratch.label_.resize(g.num_nodes(), 0.0);
  const auto state_of = [&](NodeId u) -> std::uint8_t {
    return scratch.stamp_[u] == scratch.epoch_ ? scratch.state_[u] : 0;
  };
  const auto set_state = [&](NodeId u, std::uint8_t s) {
    scratch.stamp_[u] = scratch.epoch_;
    scratch.state_[u] = s;
  };

  auto& heap = scratch.heap_;  // min-heap of (old dist, node) candidates
  heap.clear();
  scratch.affected_.clear();
  const auto push = [&](double key, NodeId u) {
    heap.emplace_back(key, u);
    std::push_heap(heap.begin(), heap.end(), std::greater<>());
  };
  const auto pop = [&] {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>());
    const auto top = heap.back();
    heap.pop_back();
    return top;
  };

  // Phase 1 — identify the affected region. A removed arc mattered for its
  // source u only if it realized u's label EXACTLY (Dijkstra's output always
  // has at least one out-arc with dist[u] == cost + dist[head], in the very
  // float arithmetic this repeats). Candidates are processed in increasing
  // old-distance order; positive costs make every exact support strictly
  // distance-decreasing, so a candidate's supports are already decided when
  // it is popped.
  for (ArcId a : removed_arcs) {
    const Arc& arc = g.arc(a);
    if (dist[arc.src] == kInfDist || dist[arc.dst] == kInfDist) continue;
    if (dist[arc.src] == arc_cost[a] + dist[arc.dst]) push(dist[arc.src], arc.src);
  }
  while (!heap.empty()) {
    const auto [d, u] = pop();
    if (state_of(u) != 0) continue;  // already decided
    bool supported = false;
    for (ArcId a : g.out_arcs(u)) {
      if (!arc_is_alive(new_alive, a)) continue;
      const NodeId v = g.arc(a).dst;
      if (dist[v] == kInfDist || state_of(v) == kAffected) continue;
      if (dist[u] == arc_cost[a] + dist[v]) {
        supported = true;
        break;
      }
    }
    if (supported) {
      set_state(u, kUnaffected);
      continue;
    }
    set_state(u, kAffected);
    scratch.affected_.push_back(u);
    if (scratch.affected_.size() > max_affected) return -1;  // dist untouched so far
    for (ArcId b : g.in_arcs(u)) {
      if (!arc_is_alive(new_alive, b)) continue;
      const NodeId w = g.arc(b).src;
      if (dist[w] == kInfDist || state_of(w) != 0) continue;
      if (dist[w] == arc_cost[b] + dist[u]) push(dist[w], w);
    }
  }
  if (scratch.affected_.empty()) return 0;

  // Phase 2 — Dijkstra restricted to the affected region, seeded from the
  // unaffected boundary (whose labels are final and unchanged). Sums are
  // formed tail-first exactly like the full Dijkstra, so recomputed labels
  // are the same min over the same float path sums.
  heap.clear();
  for (NodeId u : scratch.affected_) {
    double best = kInfDist;
    for (ArcId a : g.out_arcs(u)) {
      if (!arc_is_alive(new_alive, a)) continue;
      const NodeId v = g.arc(a).dst;
      if (dist[v] == kInfDist || state_of(v) == kAffected) continue;
      const double cand = dist[v] + arc_cost[a];
      if (cand < best) best = cand;
    }
    scratch.label_[u] = best;
    if (best != kInfDist) {
      push(best, u);
      ++scratch.boundary_seeds_;
    }
  }
  while (!heap.empty()) {
    const auto [d, u] = pop();
    if (state_of(u) == kFinalized || d > scratch.label_[u]) continue;  // stale entry
    set_state(u, kFinalized);
    dist[u] = d;
    for (ArcId b : g.in_arcs(u)) {
      if (!arc_is_alive(new_alive, b)) continue;
      const NodeId w = g.arc(b).src;
      if (state_of(w) != kAffected) continue;  // only pending affected nodes
      const double cand = d + arc_cost[b];
      if (cand < scratch.label_[w]) {
        scratch.label_[w] = cand;
        push(cand, w);
      }
    }
  }
  for (NodeId u : scratch.affected_)
    if (state_of(u) != kFinalized) dist[u] = kInfDist;  // cut off entirely
  return static_cast<std::ptrdiff_t>(scratch.affected_.size());
}

void hop_distances_from(const Graph& g, NodeId s, ArcAliveMask arc_alive,
                        std::vector<int>& hops) {
  if (s >= g.num_nodes()) throw std::out_of_range("hop_distances_from: source");
  hops.assign(g.num_nodes(), -1);
  hops[s] = 0;
  std::queue<NodeId> q;
  q.push(s);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (ArcId a : g.out_arcs(u)) {
      if (!arc_is_alive(arc_alive, a)) continue;
      const NodeId v = g.arc(a).dst;
      if (hops[v] == -1) {
        hops[v] = hops[u] + 1;
        q.push(v);
      }
    }
  }
}

double propagation_diameter_ms(const Graph& g) {
  if (g.num_nodes() < 2) return 0.0;
  std::vector<double> costs(g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) costs[a] = g.arc(a).prop_delay_ms;
  double diameter = 0.0;
  std::vector<double> dist;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    shortest_distances_from(g, s, costs, {}, dist);
    for (double d : dist)
      if (d != kInfDist) diameter = std::max(diameter, d);
  }
  return diameter;
}

}  // namespace dtr
