#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace dtr {

/// The paper evaluates a (proprietary) "North American ISP backbone network
/// of 16 nodes and 70 links". We substitute a hand-built 16-city US backbone
/// with the same size: 16 PoPs, 35 bidirectional links (70 directed arcs),
/// geographic propagation delays in the paper's ~5-20 ms range
/// (fiber at 5 µs/km over great-circle-ish planar distances).
/// See DESIGN.md §4 for the substitution rationale.
struct IspTopology {
  Graph graph;
  std::vector<std::string> city_names;  ///< indexed by NodeId
};

/// Builds the backbone. All links are `capacity_mbps` (paper: 500 Mbps).
IspTopology make_isp_backbone(double capacity_mbps = 500.0);

}  // namespace dtr
