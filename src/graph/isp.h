#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace dtr {

/// The paper evaluates a (proprietary) "North American ISP backbone network
/// of 16 nodes and 70 links". We substitute a hand-built 16-city US backbone
/// with the same size: 16 PoPs, 35 bidirectional links (70 directed arcs),
/// geographic propagation delays in the paper's ~5-20 ms range
/// (fiber at 5 µs/km over great-circle-ish planar distances).
/// See DESIGN.md §4 for the substitution rationale.
struct IspTopology {
  Graph graph;
  std::vector<std::string> city_names;  ///< indexed by NodeId
};

/// Builds the backbone. All links are `capacity_mbps` (paper: 500 Mbps).
IspTopology make_isp_backbone(double capacity_mbps = 500.0);

/// Rocketfuel-style synthetic ISP generator (deterministic, seeded): the
/// scale axis beyond the 16-city map. Structure:
///
///  - `num_pops` PoPs placed uniformly on a continental-scale plane
///    (~4800 x 2900 km, positions in km so delays and geo-SRLG synthesis
///    work unchanged);
///  - each PoP holds `cores_per_pop` fully-meshed core routers jittered
///    around the PoP center;
///  - a backbone over the PoPs: a random ring (2-edge-connectivity — no
///    single link failure partitions the network) plus preferential
///    (degree-skewed) inter-PoP adjacencies up to mean PoP degree
///    `backbone_degree`, each realized between seeded-random core routers;
///  - the remaining `num_nodes - num_pops * cores_per_pop` routers form the
///    access tier: each is assigned to a PoP preferentially by PoP degree
///    (big PoPs grow bigger — the Rocketfuel degree skew) and dual-homed to
///    two distinct cores of its PoP;
///  - if `avg_degree` > 0, preferential router-to-router peering chords are
///    added until the mean undirected degree reaches it (models dense
///    peering/parallel adjacencies; how 1000-node/10k-link fixtures are
///    built).
///
/// Propagation delays are geographic (fiber ~5 µs/km); backbone and
/// intra-PoP links carry `backbone_capacity_mbps`, access uplinks and
/// peering chords `access_capacity_mbps`. Same params + seed => the same
/// graph, byte for byte.
struct IspGenParams {
  int num_nodes = 300;   ///< total routers (cores + access)
  int num_pops = 12;     ///< >= 3
  int cores_per_pop = 2; ///< >= 2 (dual-homing needs two cores)
  /// Target mean inter-PoP backbone degree (>= 2; 2 is the bare ring).
  double backbone_degree = 3.0;
  /// If > 0, add degree-skewed peering chords until the mean undirected
  /// node degree reaches this value.
  double avg_degree = 0.0;
  double backbone_capacity_mbps = 10000.0;
  double access_capacity_mbps = 2500.0;
  std::uint64_t seed = 1;
};

Graph make_isp_topo(const IspGenParams& params);

/// Loads a topology from a `dtr-graph 1` text file (see graph_io.h) — the
/// `topology = isp:file=...` campaign axis for measured/Rocketfuel maps.
/// Throws std::runtime_error if the file is missing or malformed.
Graph load_isp_topo(const std::string& path);

}  // namespace dtr
