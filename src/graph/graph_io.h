#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "graph/graph.h"

namespace dtr {

/// Plain-text graph persistence and Graphviz export.
///
/// Text format (version 1, whitespace separated, '#' comments allowed):
///
///   dtr-graph 1
///   nodes <N>
///   node <id> <x> <y>            (N lines, ids 0..N-1 in order)
///   links <M>
///   link <u> <v> <capacity_mbps> <prop_delay_ms>   (M lines)
///
/// Only bidirectional links are serialized (the library's generators produce
/// nothing else); one-directional arcs are rejected on write.

void write_graph(std::ostream& os, const Graph& g);

/// Parses the format above. Throws std::runtime_error with a line-oriented
/// message on malformed input.
Graph read_graph(std::istream& is);

/// Graphviz (dot) export for visualization: undirected edges labelled with
/// "delay ms / capacity". Optional node names (size == num_nodes).
std::string to_dot(const Graph& g, std::span<const std::string> node_names = {});

}  // namespace dtr
