#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace dtr {

/// Synthesized-topology parameters (Sec. V-A1). Nodes are placed uniformly at
/// random in a unit square; propagation delays derive from Euclidean distance
/// and are then calibrated against the SLA bound via
/// `calibrate_delays_to_sla`.
struct SynthTopoParams {
  int num_nodes = 30;
  /// Target mean undirected degree (the paper's "30 nodes, 180 links" is a
  /// degree-6 graph: 90 physical links == 180 directed arcs).
  double avg_degree = 6.0;
  double capacity_mbps = 500.0;
  std::uint64_t seed = 1;
};

/// RandTopo: random graph of given average node degree. Built as a random
/// cycle (guaranteeing 2-edge-connectivity, so no single link failure can
/// partition the network) plus uniformly random chords up to the target link
/// count.
Graph make_rand_topo(const SynthTopoParams& params);

/// NearTopo: nodes connect to their closest neighbors (round-robin
/// nearest-neighbor attachment), then minimal geographic fix-ups for
/// connectivity and 2-edge-connectivity. Deliberately yields the paper's
/// low-path-diversity outlier: long paths funnel through a small core.
Graph make_near_topo(const SynthTopoParams& params);

struct PowerLawParams {
  int num_nodes = 30;
  /// Attachments per new node (Barabási–Albert "m"). With m seed nodes and no
  /// seed edges, the link count is m * (num_nodes - m): n=30, m=3 gives 81
  /// physical links == the paper's "PLTopo [30,162]" arcs.
  int attachments = 3;
  double capacity_mbps = 500.0;
  std::uint64_t seed = 1;
};

/// PLTopo: power-law topology via preferential attachment [Barabási–Albert].
Graph make_pl_topo(const PowerLawParams& params);

/// Sets every link's propagation delay to geometric distance * ms_per_unit.
void set_delays_from_positions(Graph& g, double ms_per_unit);

/// Scales all propagation delays so the propagation diameter (longest
/// shortest-propagation path) equals `ratio * theta_ms`. The paper scales
/// synthesized-topology delays "to ensure a reasonable match between the
/// target SLA bound and the network diameter"; ratio defaults to 0.85 so the
/// SLA is attainable but tight for the most distant pairs.
void calibrate_delays_to_sla(Graph& g, double theta_ms, double ratio = 0.85);

}  // namespace dtr
