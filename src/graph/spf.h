#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dtr {

/// Distance assigned to unreachable nodes.
inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// Arc liveness mask: arc `a` participates iff mask is empty or mask[a] != 0.
using ArcAliveMask = std::span<const std::uint8_t>;

/// Fills dist[u] with the cost of the shortest u -> t path over alive arcs
/// (Dijkstra on the reverse graph). Costs must be non-negative.
///
/// This is the orientation the routing engine needs: per-destination distance
/// labels define the ECMP shortest-path DAG (arc (u,v) is "tight" iff
/// dist[u] == cost(u,v) + dist[v]).
void shortest_distances_to(const Graph& g, NodeId t,
                           std::span<const double> arc_cost,
                           ArcAliveMask arc_alive,
                           std::vector<double>& dist);

/// Fills dist[v] with the cost of the shortest s -> v path over alive arcs.
void shortest_distances_from(const Graph& g, NodeId s,
                             std::span<const double> arc_cost,
                             ArcAliveMask arc_alive,
                             std::vector<double>& dist);

/// All-pairs matrix d[t][u] = shortest distance from u to t (no mask).
std::vector<std::vector<double>> all_pairs_distances_to(
    const Graph& g, std::span<const double> arc_cost);

/// Minimum hop counts from s over alive arcs (BFS); -1 when unreachable.
void hop_distances_from(const Graph& g, NodeId s, ArcAliveMask arc_alive,
                        std::vector<int>& hops);

/// Longest shortest-path (by arc propagation delay) over all connected pairs;
/// 0 for graphs with < 2 nodes. Used to calibrate synthesized-topology delays
/// against the SLA bound (Sec. V-A1).
double propagation_diameter_ms(const Graph& g);

}  // namespace dtr
