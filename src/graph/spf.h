#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dtr {

/// Distance assigned to unreachable nodes.
inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// Arc liveness mask: arc `a` participates iff mask is empty or mask[a] != 0.
using ArcAliveMask = std::span<const std::uint8_t>;

/// Fills dist[u] with the cost of the shortest u -> t path over alive arcs
/// (Dijkstra on the reverse graph). Costs must be non-negative.
///
/// This is the orientation the routing engine needs: per-destination distance
/// labels define the ECMP shortest-path DAG (arc (u,v) is "tight" iff
/// dist[u] == cost(u,v) + dist[v]).
void shortest_distances_to(const Graph& g, NodeId t,
                           std::span<const double> arc_cost,
                           ArcAliveMask arc_alive,
                           std::vector<double>& dist);

/// Fills dist[v] with the cost of the shortest s -> v path over alive arcs.
void shortest_distances_from(const Graph& g, NodeId s,
                             std::span<const double> arc_cost,
                             ArcAliveMask arc_alive,
                             std::vector<double>& dist);

/// All-pairs matrix d[t][u] = shortest distance from u to t (no mask).
std::vector<std::vector<double>> all_pairs_distances_to(
    const Graph& g, std::span<const double> arc_cost);

/// One arc whose cost changed between the labeled state and the target state
/// of delta_spf_update_arcs. The NEW cost lives in the caller's arc_cost /
/// alive mask; only the OLD cost needs carrying.
struct ArcCostDelta {
  ArcId arc = 0;
  double old_cost = 0.0;
};

/// Reusable buffers for delta_spf_update_arcs / delta_spf_remove_arcs. The
/// incremental failure path calls the delta update once per destination per
/// scenario, so the scratch keeps every allocation alive across calls
/// (epoch-stamped state array, no O(n) clears).
class DeltaSpfScratch {
 public:
  DeltaSpfScratch() = default;

  /// Boundary-seed count of the most recent delta update: the number of
  /// seeds (boundary arcs into the unaffected region plus improved-arc
  /// candidates) that started the phase-2 Dijkstra. Deterministic — a pure
  /// function of graph + costs + changes, so it feeds the deterministic
  /// telemetry plane.
  std::uint64_t last_boundary_seeds() const { return boundary_seeds_; }

 private:
  friend std::ptrdiff_t delta_spf_update_arcs(const Graph& g,
                                              std::span<const double> arc_cost,
                                              ArcAliveMask alive,
                                              std::span<const ArcCostDelta> changes,
                                              std::vector<double>& dist,
                                              std::size_t max_affected,
                                              DeltaSpfScratch& scratch);
  friend std::ptrdiff_t delta_spf_remove_arcs(const Graph& g,
                                              std::span<const double> arc_cost,
                                              ArcAliveMask new_alive,
                                              std::span<const ArcId> removed_arcs,
                                              std::vector<double>& dist,
                                              std::size_t max_affected,
                                              DeltaSpfScratch& scratch);

  std::vector<std::uint64_t> stamp_;  ///< state_/label_ valid iff == epoch_
  std::vector<std::uint8_t> state_;
  std::vector<double> label_;
  std::vector<std::pair<double, NodeId>> heap_;
  std::vector<NodeId> affected_;
  std::vector<ArcCostDelta> changes_;  ///< delta_spf_remove_arcs wrapper buffer
  std::uint64_t epoch_ = 0;
  std::uint64_t boundary_seeds_ = 0;
};

/// Incremental (Ramalingam–Reps-style) update of destination distance labels
/// when a set of arcs CHANGES COST — increase, decrease, or removal (a dead
/// arc in `alive` is an increase to +infinity). Identifies the exact affected
/// region in increasing old-distance order, then runs a regional Dijkstra
/// seeded from the unaffected boundary and the improved arcs.
///
/// `dist` must be valid labels for the OLD costs (each changes[i].old_cost in
/// place of arc_cost[changes[i].arc], every changed arc alive); `arc_cost` /
/// `alive` describe the NEW state. Alive arc costs must be positive. On
/// return, `dist` equals what shortest_distances_to would produce under the
/// new state, bit for bit: untouched labels keep their old bytes, recomputed
/// ones are the same min-of-float-sums a full Dijkstra evaluates.
///
/// Returns the number of recomputed nodes, or -1 when that count would exceed
/// `max_affected` — `dist` is then left fully unchanged (all label writes are
/// deferred past the last abort point) so the caller can fall back to a full
/// recompute.
std::ptrdiff_t delta_spf_update_arcs(const Graph& g, std::span<const double> arc_cost,
                                     ArcAliveMask alive,
                                     std::span<const ArcCostDelta> changes,
                                     std::vector<double>& dist,
                                     std::size_t max_affected,
                                     DeltaSpfScratch& scratch);

/// Incremental (Ramalingam–Reps-style) update of destination distance labels
/// when a set of arcs is removed: identifies the nodes whose shortest path
/// relied on a removed arc and re-runs Dijkstra over that region only,
/// seeding from the unaffected boundary.
///
/// `dist` must be the output of shortest_distances_to under the pre-removal
/// mask (every removed arc alive); `new_alive` is the post-removal mask
/// (every removed arc dead). Alive arc costs must be positive. On return,
/// `dist` equals what shortest_distances_to would produce under `new_alive`,
/// bit for bit: distances of unaffected nodes are untouched, and recomputed
/// ones are the same min-of-float-sums a full Dijkstra evaluates.
///
/// Returns the number of recomputed nodes, or -1 when that count would
/// exceed `max_affected` — `dist` is then left fully unchanged so the caller
/// can fall back to a full recompute.
std::ptrdiff_t delta_spf_remove_arcs(const Graph& g, std::span<const double> arc_cost,
                                     ArcAliveMask new_alive,
                                     std::span<const ArcId> removed_arcs,
                                     std::vector<double>& dist,
                                     std::size_t max_affected,
                                     DeltaSpfScratch& scratch);

/// Minimum hop counts from s over alive arcs (BFS); -1 when unreachable.
void hop_distances_from(const Graph& g, NodeId s, ArcAliveMask arc_alive,
                        std::vector<int>& hops);

/// Longest shortest-path (by arc propagation delay) over all connected pairs;
/// 0 for graphs with < 2 nodes. Used to calibrate synthesized-topology delays
/// against the SLA bound (Sec. V-A1).
double propagation_diameter_ms(const Graph& g);

}  // namespace dtr
