#include "graph/connectivity.h"

#include <algorithm>
#include <functional>

namespace dtr {

namespace {

/// Undirected neighbor iteration: for node u yields (neighbor, link id).
template <typename Fn>
void for_each_neighbor(const Graph& g, NodeId u, Fn&& fn) {
  for (ArcId a : g.out_arcs(u)) fn(g.arc(a).dst, g.arc(a).link);
  // One-directional arcs (no reverse) must also be walkable backwards in the
  // undirected view.
  for (ArcId a : g.in_arcs(u)) {
    if (g.arc(a).reverse == kInvalidArc) fn(g.arc(a).src, g.arc(a).link);
  }
}

}  // namespace

std::vector<int> connected_components(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<int> label(n, -1);
  int next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (label[s] != -1) continue;
    label[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for_each_neighbor(g, u, [&](NodeId v, LinkId) {
        if (label[v] == -1) {
          label[v] = next;
          stack.push_back(v);
        }
      });
    }
    ++next;
  }
  return label;
}

int component_count(const Graph& g) {
  const auto label = connected_components(g);
  return label.empty() ? 0 : *std::max_element(label.begin(), label.end()) + 1;
}

bool is_connected(const Graph& g) { return component_count(g) <= 1; }

std::vector<LinkId> find_bridges(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<int> disc(n, -1), low(n, 0);
  std::vector<LinkId> bridges;
  int timer = 0;

  // Iterative DFS; `via` is the link used to enter a node so that parallel
  // links and the link back to the parent are handled correctly (a link is
  // only ignored as "parent edge" once).
  struct Frame {
    NodeId node;
    LinkId via;
    bool parent_skipped = false;
    std::size_t next_out = 0;
  };

  auto neighbors = [&](NodeId u) {
    std::vector<std::pair<NodeId, LinkId>> result;
    for_each_neighbor(g, u, [&](NodeId v, LinkId l) { result.emplace_back(v, l); });
    return result;
  };

  std::vector<Frame> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    disc[root] = low[root] = timer++;
    stack.push_back({root, kInvalidLink});
    // Cache each frame's neighbor list (small graphs, clarity over tuning).
    std::vector<std::vector<std::pair<NodeId, LinkId>>> adj_stack;
    adj_stack.push_back(neighbors(root));
    while (!stack.empty()) {
      Frame& f = stack.back();
      auto& adj = adj_stack.back();
      bool descended = false;
      while (f.next_out < adj.size()) {
        const auto [v, l] = adj[f.next_out++];
        if (l == f.via && !f.parent_skipped) {
          f.parent_skipped = true;  // ignore the parent link exactly once
          continue;
        }
        if (disc[v] == -1) {
          disc[v] = low[v] = timer++;
          stack.push_back({v, l});
          adj_stack.push_back(neighbors(v));
          descended = true;
          break;
        }
        low[f.node] = std::min(low[f.node], disc[v]);
      }
      if (descended) continue;
      // Post-order: propagate low to parent and test the bridge condition.
      const Frame done = stack.back();
      stack.pop_back();
      adj_stack.pop_back();
      if (!stack.empty()) {
        Frame& parent = stack.back();
        low[parent.node] = std::min(low[parent.node], low[done.node]);
        if (low[done.node] > disc[parent.node]) bridges.push_back(done.via);
      }
    }
  }
  std::sort(bridges.begin(), bridges.end());
  return bridges;
}

bool is_two_edge_connected(const Graph& g) {
  return is_connected(g) && find_bridges(g).empty();
}

bool connected_without_link(const Graph& g, LinkId skip) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return true;
  std::vector<char> seen(n, 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for_each_neighbor(g, u, [&](NodeId v, LinkId l) {
      if (l == skip || seen[v]) return;
      seen[v] = 1;
      ++visited;
      stack.push_back(v);
    });
  }
  return visited == n;
}

bool connected_without_node(const Graph& g, NodeId skip) {
  const std::size_t n = g.num_nodes();
  if (n <= 2) return true;
  NodeId start = (skip == 0) ? 1 : 0;
  std::vector<char> seen(n, 0);
  seen[skip] = 1;  // pretend visited so we never expand it
  seen[start] = 1;
  std::vector<NodeId> stack{start};
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for_each_neighbor(g, u, [&](NodeId v, LinkId) {
      if (seen[v]) return;
      seen[v] = 1;
      ++visited;
      stack.push_back(v);
    });
  }
  return visited == n - 1;
}

}  // namespace dtr
