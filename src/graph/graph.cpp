#include "graph/graph.h"

#include <cmath>
#include <stdexcept>

namespace dtr {

double euclidean_distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Graph::Graph(std::size_t num_nodes) {
  positions_.resize(num_nodes);
  out_arcs_.resize(num_nodes);
  in_arcs_.resize(num_nodes);
}

Graph::Graph(const Graph& o)
    : positions_(o.positions_),
      arcs_(o.arcs_),
      out_arcs_(o.out_arcs_),
      in_arcs_(o.in_arcs_),
      links_(o.links_) {}

Graph& Graph::operator=(const Graph& o) {
  if (this == &o) return *this;
  positions_ = o.positions_;
  arcs_ = o.arcs_;
  out_arcs_ = o.out_arcs_;
  in_arcs_ = o.in_arcs_;
  links_ = o.links_;
  invalidate_csr();
  return *this;
}

Graph::Graph(Graph&& o) noexcept
    : positions_(std::move(o.positions_)),
      arcs_(std::move(o.arcs_)),
      out_arcs_(std::move(o.out_arcs_)),
      in_arcs_(std::move(o.in_arcs_)),
      links_(std::move(o.links_)) {}

Graph& Graph::operator=(Graph&& o) noexcept {
  if (this == &o) return *this;
  positions_ = std::move(o.positions_);
  arcs_ = std::move(o.arcs_);
  out_arcs_ = std::move(o.out_arcs_);
  in_arcs_ = std::move(o.in_arcs_);
  links_ = std::move(o.links_);
  invalidate_csr();
  return *this;
}

NodeId Graph::add_node(Point position) {
  positions_.push_back(position);
  out_arcs_.emplace_back();
  in_arcs_.emplace_back();
  invalidate_csr();
  return static_cast<NodeId>(positions_.size() - 1);
}

namespace {
void check_endpoints(std::size_t n, NodeId u, NodeId v) {
  if (u >= n || v >= n) throw std::out_of_range("Graph: endpoint out of range");
  if (u == v) throw std::invalid_argument("Graph: self-loops are not allowed");
}
void check_positive(double value, const char* what) {
  if (!(value > 0.0)) throw std::invalid_argument(std::string("Graph: ") + what + " must be > 0");
}
}  // namespace

LinkId Graph::add_link(NodeId u, NodeId v, double capacity_mbps, double prop_delay_ms) {
  check_endpoints(num_nodes(), u, v);
  check_positive(capacity_mbps, "capacity");
  if (prop_delay_ms < 0.0) throw std::invalid_argument("Graph: negative delay");

  const LinkId link = static_cast<LinkId>(links_.size());
  const ArcId fwd = static_cast<ArcId>(arcs_.size());
  const ArcId bwd = fwd + 1;
  arcs_.push_back({u, v, capacity_mbps, prop_delay_ms, link, bwd});
  arcs_.push_back({v, u, capacity_mbps, prop_delay_ms, link, fwd});
  out_arcs_[u].push_back(fwd);
  in_arcs_[v].push_back(fwd);
  out_arcs_[v].push_back(bwd);
  in_arcs_[u].push_back(bwd);
  links_.push_back({fwd, bwd});
  invalidate_csr();
  return link;
}

ArcId Graph::add_arc(NodeId u, NodeId v, double capacity_mbps, double prop_delay_ms) {
  check_endpoints(num_nodes(), u, v);
  check_positive(capacity_mbps, "capacity");
  if (prop_delay_ms < 0.0) throw std::invalid_argument("Graph: negative delay");

  const LinkId link = static_cast<LinkId>(links_.size());
  const ArcId a = static_cast<ArcId>(arcs_.size());
  arcs_.push_back({u, v, capacity_mbps, prop_delay_ms, link, kInvalidArc});
  out_arcs_[u].push_back(a);
  in_arcs_[v].push_back(a);
  links_.push_back({a});
  invalidate_csr();
  return a;
}

void Graph::build_csr() const {
  const std::size_t n = num_nodes();
  const std::size_t m = num_arcs();

  csr_.out_offset.assign(n + 1, 0);
  csr_.in_offset.assign(n + 1, 0);
  csr_.out_arc.resize(m);
  csr_.out_head.resize(m);
  csr_.in_arc.resize(m);
  csr_.in_tail.resize(m);
  csr_.src.resize(m);
  csr_.dst.resize(m);
  csr_.capacity.resize(m);
  csr_.prop_delay_ms.resize(m);
  csr_.link.resize(m);

  // The per-node construction vectors already hold arcs in ascending-arc-id
  // order (ids are append-only); copying them verbatim keeps CSR iteration
  // order — and every float-accumulation order downstream — identical to
  // the legacy layout.
  std::size_t out_k = 0;
  std::size_t in_k = 0;
  for (NodeId u = 0; u < n; ++u) {
    csr_.out_offset[u] = static_cast<std::uint32_t>(out_k);
    for (ArcId a : out_arcs_[u]) {
      csr_.out_arc[out_k] = a;
      csr_.out_head[out_k] = arcs_[a].dst;
      ++out_k;
    }
    csr_.in_offset[u] = static_cast<std::uint32_t>(in_k);
    for (ArcId a : in_arcs_[u]) {
      csr_.in_arc[in_k] = a;
      csr_.in_tail[in_k] = arcs_[a].src;
      ++in_k;
    }
  }
  csr_.out_offset[n] = static_cast<std::uint32_t>(out_k);
  csr_.in_offset[n] = static_cast<std::uint32_t>(in_k);

  for (ArcId a = 0; a < m; ++a) {
    const Arc& arc = arcs_[a];
    csr_.src[a] = arc.src;
    csr_.dst[a] = arc.dst;
    csr_.capacity[a] = arc.capacity;
    csr_.prop_delay_ms[a] = arc.prop_delay_ms;
    csr_.link[a] = arc.link;
  }
}

const GraphCsr& Graph::csr() const {
  if (!csr_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(csr_mutex_);
    if (!csr_valid_.load(std::memory_order_relaxed)) {
      build_csr();
      csr_valid_.store(true, std::memory_order_release);
    }
  }
  return csr_;
}

bool Graph::has_arc_between(NodeId u, NodeId v) const {
  for (ArcId a : out_arcs_[u])
    if (arcs_[a].dst == v) return true;
  return false;
}

std::size_t Graph::link_degree(NodeId u) const {
  // With paired arcs every incident link contributes exactly one out-arc.
  return out_arcs_[u].size();
}

double Graph::average_link_degree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_links()) / static_cast<double>(num_nodes());
}

void Graph::scale_prop_delays(double factor) {
  check_positive(factor, "delay scale factor");
  for (Arc& a : arcs_) a.prop_delay_ms *= factor;
  invalidate_csr();
}

void Graph::set_link_prop_delay(LinkId l, double prop_delay_ms) {
  if (prop_delay_ms < 0.0) throw std::invalid_argument("Graph: negative delay");
  for (ArcId a : links_.at(l)) arcs_[a].prop_delay_ms = prop_delay_ms;
  invalidate_csr();
}

void Graph::set_uniform_capacity(double capacity_mbps) {
  check_positive(capacity_mbps, "capacity");
  for (Arc& a : arcs_) a.capacity = capacity_mbps;
  invalidate_csr();
}

void Graph::scale_link_capacity(LinkId l, double factor) {
  check_positive(factor, "capacity scale factor");
  for (ArcId a : links_.at(l)) arcs_[a].capacity *= factor;
  invalidate_csr();
}

}  // namespace dtr
