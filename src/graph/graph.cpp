#include "graph/graph.h"

#include <cmath>
#include <stdexcept>

namespace dtr {

double euclidean_distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Graph::Graph(std::size_t num_nodes) {
  positions_.resize(num_nodes);
  out_arcs_.resize(num_nodes);
  in_arcs_.resize(num_nodes);
}

NodeId Graph::add_node(Point position) {
  positions_.push_back(position);
  out_arcs_.emplace_back();
  in_arcs_.emplace_back();
  return static_cast<NodeId>(positions_.size() - 1);
}

namespace {
void check_endpoints(std::size_t n, NodeId u, NodeId v) {
  if (u >= n || v >= n) throw std::out_of_range("Graph: endpoint out of range");
  if (u == v) throw std::invalid_argument("Graph: self-loops are not allowed");
}
void check_positive(double value, const char* what) {
  if (!(value > 0.0)) throw std::invalid_argument(std::string("Graph: ") + what + " must be > 0");
}
}  // namespace

LinkId Graph::add_link(NodeId u, NodeId v, double capacity_mbps, double prop_delay_ms) {
  check_endpoints(num_nodes(), u, v);
  check_positive(capacity_mbps, "capacity");
  if (prop_delay_ms < 0.0) throw std::invalid_argument("Graph: negative delay");

  const LinkId link = static_cast<LinkId>(links_.size());
  const ArcId fwd = static_cast<ArcId>(arcs_.size());
  const ArcId bwd = fwd + 1;
  arcs_.push_back({u, v, capacity_mbps, prop_delay_ms, link, bwd});
  arcs_.push_back({v, u, capacity_mbps, prop_delay_ms, link, fwd});
  out_arcs_[u].push_back(fwd);
  in_arcs_[v].push_back(fwd);
  out_arcs_[v].push_back(bwd);
  in_arcs_[u].push_back(bwd);
  links_.push_back({fwd, bwd});
  return link;
}

ArcId Graph::add_arc(NodeId u, NodeId v, double capacity_mbps, double prop_delay_ms) {
  check_endpoints(num_nodes(), u, v);
  check_positive(capacity_mbps, "capacity");
  if (prop_delay_ms < 0.0) throw std::invalid_argument("Graph: negative delay");

  const LinkId link = static_cast<LinkId>(links_.size());
  const ArcId a = static_cast<ArcId>(arcs_.size());
  arcs_.push_back({u, v, capacity_mbps, prop_delay_ms, link, kInvalidArc});
  out_arcs_[u].push_back(a);
  in_arcs_[v].push_back(a);
  links_.push_back({a});
  return a;
}

bool Graph::has_arc_between(NodeId u, NodeId v) const {
  for (ArcId a : out_arcs_[u])
    if (arcs_[a].dst == v) return true;
  return false;
}

std::size_t Graph::link_degree(NodeId u) const {
  // With paired arcs every incident link contributes exactly one out-arc.
  return out_arcs_[u].size();
}

double Graph::average_link_degree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_links()) / static_cast<double>(num_nodes());
}

void Graph::scale_prop_delays(double factor) {
  check_positive(factor, "delay scale factor");
  for (Arc& a : arcs_) a.prop_delay_ms *= factor;
}

void Graph::set_link_prop_delay(LinkId l, double prop_delay_ms) {
  if (prop_delay_ms < 0.0) throw std::invalid_argument("Graph: negative delay");
  for (ArcId a : links_.at(l)) arcs_[a].prop_delay_ms = prop_delay_ms;
}

void Graph::set_uniform_capacity(double capacity_mbps) {
  check_positive(capacity_mbps, "capacity");
  for (Arc& a : arcs_) a.capacity = capacity_mbps;
}

void Graph::scale_link_capacity(LinkId l, double factor) {
  check_positive(factor, "capacity scale factor");
  for (ArcId a : links_.at(l)) arcs_[a].capacity *= factor;
}

}  // namespace dtr
