#include "graph/topology.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/connectivity.h"
#include "graph/spf.h"
#include "util/rng.h"

namespace dtr {

namespace {

using NodePair = std::pair<NodeId, NodeId>;

NodePair canonical(NodeId u, NodeId v) { return u < v ? NodePair{u, v} : NodePair{v, u}; }

void place_nodes_uniformly(Graph& g, int n, Rng& rng) {
  for (int i = 0; i < n; ++i) g.add_node({rng.uniform(), rng.uniform()});
}

int target_link_count(const SynthTopoParams& p) {
  if (p.num_nodes < 3) throw std::invalid_argument("topology: need >= 3 nodes");
  if (p.avg_degree < 2.0) throw std::invalid_argument("topology: avg_degree must be >= 2");
  const int m = static_cast<int>(std::lround(p.avg_degree * p.num_nodes / 2.0));
  return std::max(m, p.num_nodes);  // at least a cycle
}

/// Adds link u-v with placeholder delay (distances applied afterwards).
void add_raw_link(Graph& g, std::set<NodePair>& used, NodeId u, NodeId v,
                  double capacity) {
  used.insert(canonical(u, v));
  g.add_link(u, v, capacity, /*prop_delay_ms=*/1.0);
}

/// Component labels when link `skip` is removed.
std::vector<int> components_without_link(const Graph& g, LinkId skip) {
  const std::size_t n = g.num_nodes();
  std::vector<int> label(n, -1);
  int next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (label[s] != -1) continue;
    label[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (ArcId a : g.out_arcs(u)) {
        if (g.arc(a).link == skip) continue;
        const NodeId v = g.arc(a).dst;
        if (label[v] == -1) {
          label[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return label;
}

/// Repeatedly removes bridges by adding the geometrically closest
/// non-adjacent pair spanning the two sides of a bridge. Keeps NearTopo's
/// local structure while guaranteeing single-link-failure survivability.
void ensure_two_edge_connected(Graph& g, std::set<NodePair>& used, double capacity) {
  const std::size_t guard = 4 * g.num_nodes() + 16;
  for (std::size_t round = 0; round < guard; ++round) {
    const auto bridges = find_bridges(g);
    if (bridges.empty() && is_connected(g)) return;

    std::vector<int> label;
    if (!is_connected(g)) {
      label = connected_components(g);
    } else {
      label = components_without_link(g, bridges.front());
    }
    // Closest pair across different components, not already linked.
    double best = std::numeric_limits<double>::infinity();
    NodeId bu = kInvalidNode, bv = kInvalidNode;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
        if (label[u] == label[v]) continue;
        if (used.count(canonical(u, v)) != 0) continue;
        const double d = euclidean_distance(g.position(u), g.position(v));
        if (d < best) {
          best = d;
          bu = u;
          bv = v;
        }
      }
    }
    if (bu == kInvalidNode) return;  // nothing addable (pathological tiny graph)
    add_raw_link(g, used, bu, bv, capacity);
  }
  throw std::runtime_error("topology: 2-edge-connectivity augmentation did not converge");
}

}  // namespace

Graph make_rand_topo(const SynthTopoParams& params) {
  Rng rng(params.seed);
  Graph g;
  place_nodes_uniformly(g, params.num_nodes, rng);
  const int n = params.num_nodes;
  const int target = target_link_count(params);

  std::set<NodePair> used;
  // Random cycle: 2-edge-connected backbone touching every node.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::shuffle(order.begin(), order.end(), rng.engine());
  for (int i = 0; i < n; ++i) {
    const NodeId u = order[i];
    const NodeId v = order[(i + 1) % n];
    if (used.count(canonical(u, v)) == 0) add_raw_link(g, used, u, v, params.capacity_mbps);
  }
  // Uniform random chords up to the target count.
  const std::size_t max_links = static_cast<std::size_t>(n) * (n - 1) / 2;
  std::size_t guard = 64 * max_links;
  while (g.num_links() < static_cast<std::size_t>(target) && used.size() < max_links) {
    if (guard-- == 0) throw std::runtime_error("make_rand_topo: chord sampling stalled");
    const NodeId u = static_cast<NodeId>(rng.uniform_index(n));
    const NodeId v = static_cast<NodeId>(rng.uniform_index(n));
    if (u == v || used.count(canonical(u, v)) != 0) continue;
    add_raw_link(g, used, u, v, params.capacity_mbps);
  }
  set_delays_from_positions(g, /*ms_per_unit=*/20.0);
  return g;
}

Graph make_near_topo(const SynthTopoParams& params) {
  Rng rng(params.seed);
  Graph g;
  place_nodes_uniformly(g, params.num_nodes, rng);
  const int n = params.num_nodes;
  const int target = target_link_count(params);

  std::set<NodePair> used;
  // Round-robin nearest-neighbor attachment: in each round every node links
  // to its closest not-yet-adjacent neighbor, until the link budget is spent.
  bool progress = true;
  while (g.num_links() < static_cast<std::size_t>(target) && progress) {
    progress = false;
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
      if (g.num_links() >= static_cast<std::size_t>(target)) break;
      double best = std::numeric_limits<double>::infinity();
      NodeId bv = kInvalidNode;
      for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
        if (v == u || used.count(canonical(u, v)) != 0) continue;
        const double d = euclidean_distance(g.position(u), g.position(v));
        if (d < best) {
          best = d;
          bv = v;
        }
      }
      if (bv != kInvalidNode) {
        add_raw_link(g, used, u, bv, params.capacity_mbps);
        progress = true;
      }
    }
  }
  ensure_two_edge_connected(g, used, params.capacity_mbps);
  set_delays_from_positions(g, /*ms_per_unit=*/20.0);
  return g;
}

Graph make_pl_topo(const PowerLawParams& params) {
  if (params.num_nodes <= params.attachments)
    throw std::invalid_argument("make_pl_topo: need num_nodes > attachments");
  if (params.attachments < 2)
    throw std::invalid_argument("make_pl_topo: attachments must be >= 2");
  Rng rng(params.seed);
  Graph g;
  place_nodes_uniformly(g, params.num_nodes, rng);

  std::set<NodePair> used;
  std::vector<int> degree(params.num_nodes, 0);
  // Seed: `attachments` isolated nodes; each newcomer attaches to m distinct
  // existing nodes with probability proportional to degree+1 (the +1
  // bootstraps the zero-degree seeds, preserving the paper's link count
  // m*(n-m): 3*(30-3)=81 links == 162 arcs).
  for (int i = params.attachments; i < params.num_nodes; ++i) {
    std::set<NodeId> chosen;
    std::size_t guard = 4096;
    while (chosen.size() < static_cast<std::size_t>(params.attachments)) {
      if (guard-- == 0) throw std::runtime_error("make_pl_topo: attachment sampling stalled");
      // Weighted draw over existing nodes by degree+1.
      long total = 0;
      for (int v = 0; v < i; ++v) total += degree[v] + 1;
      long pick = static_cast<long>(rng.uniform_index(static_cast<std::uint64_t>(total)));
      NodeId v = 0;
      for (int cand = 0; cand < i; ++cand) {
        pick -= degree[cand] + 1;
        if (pick < 0) {
          v = static_cast<NodeId>(cand);
          break;
        }
      }
      chosen.insert(v);
    }
    for (NodeId v : chosen) {
      add_raw_link(g, used, static_cast<NodeId>(i), v, params.capacity_mbps);
      ++degree[i];
      ++degree[v];
    }
  }
  ensure_two_edge_connected(g, used, params.capacity_mbps);
  set_delays_from_positions(g, /*ms_per_unit=*/20.0);
  return g;
}

void set_delays_from_positions(Graph& g, double ms_per_unit) {
  if (!(ms_per_unit > 0.0)) throw std::invalid_argument("set_delays_from_positions: scale");
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Arc& a = g.arc(g.link_arcs(l).front());
    const double d = euclidean_distance(g.position(a.src), g.position(a.dst));
    // Floor keeps degenerate co-located nodes from producing zero-delay links.
    g.set_link_prop_delay(l, std::max(d * ms_per_unit, 1e-3));
  }
}

void calibrate_delays_to_sla(Graph& g, double theta_ms, double ratio) {
  if (!(theta_ms > 0.0) || !(ratio > 0.0))
    throw std::invalid_argument("calibrate_delays_to_sla: bad parameters");
  const double diameter = propagation_diameter_ms(g);
  if (diameter <= 0.0) return;
  g.scale_prop_delays(ratio * theta_ms / diameter);
}

}  // namespace dtr
