#include "graph/isp.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <numbers>
#include <set>
#include <stdexcept>
#include <utility>

#include "graph/connectivity.h"
#include "graph/graph_io.h"
#include "util/rng.h"

namespace dtr {

namespace {

struct City {
  const char* name;
  double lon;
  double lat;
};

// 16 PoPs spanning the continental US (approximate city coordinates).
constexpr City kCities[] = {
    {"Seattle", -122.33, 47.61},      // 0
    {"Sunnyvale", -122.04, 37.37},    // 1
    {"LosAngeles", -118.24, 34.05},   // 2
    {"Phoenix", -112.07, 33.45},      // 3
    {"SaltLakeCity", -111.89, 40.76}, // 4
    {"Denver", -104.99, 39.74},       // 5
    {"Dallas", -96.80, 32.78},        // 6
    {"Houston", -95.37, 29.76},       // 7
    {"KansasCity", -94.58, 39.10},    // 8
    {"Chicago", -87.63, 41.88},       // 9
    {"StLouis", -90.20, 38.63},       // 10
    {"Atlanta", -84.39, 33.75},       // 11
    {"Orlando", -81.38, 28.54},       // 12
    {"WashingtonDC", -77.04, 38.91},  // 13
    {"NewYork", -74.01, 40.71},       // 14
    {"Boston", -71.06, 42.36},        // 15
};

// 35 bidirectional links (70 arcs), degrees 2..7, average 4.375 — matching
// the paper's [16 nodes, 70 links] with a realistic mesh-of-rings structure.
constexpr std::pair<int, int> kLinks[] = {
    {0, 1},  {0, 4},  {0, 5},  {0, 9},          // Seattle
    {1, 2},  {1, 4},  {1, 5},                   // Sunnyvale
    {2, 3},  {2, 4},  {2, 6},                   // Los Angeles
    {3, 5},  {3, 6},  {3, 7},                   // Phoenix
    {4, 5},                                     // Salt Lake City
    {5, 8},  {5, 6},                            // Denver
    {6, 7},  {6, 8},  {6, 11}, {6, 10},         // Dallas
    {7, 11}, {7, 12},                           // Houston
    {8, 9},  {8, 10},                           // Kansas City
    {9, 10}, {9, 14}, {9, 13}, {9, 15},         // Chicago
    {10, 11}, {10, 13},                         // St Louis
    {11, 12}, {11, 13},                         // Atlanta
    {12, 13},                                   // Orlando
    {13, 14},                                   // Washington DC
    {14, 15},                                   // New York
};

/// Equirectangular projection to kilometres around the map's mean latitude.
Point project(double lon, double lat, double mean_lat_deg) {
  constexpr double kKmPerDegLat = 110.57;
  constexpr double kKmPerDegLonAtEquator = 111.32;
  const double scale = std::cos(mean_lat_deg * std::numbers::pi / 180.0);
  return {lon * kKmPerDegLonAtEquator * scale, lat * kKmPerDegLat};
}

// Fiber propagation: ~5 µs per km.
constexpr double kMsPerKm = 0.005;

}  // namespace

IspTopology make_isp_backbone(double capacity_mbps) {
  IspTopology topo;
  double mean_lat = 0.0;
  for (const City& c : kCities) mean_lat += c.lat;
  mean_lat /= static_cast<double>(std::size(kCities));

  for (const City& c : kCities) {
    topo.graph.add_node(project(c.lon, c.lat, mean_lat));
    topo.city_names.emplace_back(c.name);
  }

  for (const auto& [u, v] : kLinks) {
    const double km = euclidean_distance(topo.graph.position(static_cast<NodeId>(u)),
                                         topo.graph.position(static_cast<NodeId>(v)));
    topo.graph.add_link(static_cast<NodeId>(u), static_cast<NodeId>(v), capacity_mbps,
                        km * kMsPerKm);
  }
  return topo;
}

namespace {

using NodePair = std::pair<NodeId, NodeId>;

NodePair canonical(NodeId u, NodeId v) { return u < v ? NodePair{u, v} : NodePair{v, u}; }

/// Geographic link: fiber delay from planar distance, floored so co-located
/// routers (two cores in one rack) never produce a zero-delay link.
void add_geo_link(Graph& g, std::set<NodePair>& used, NodeId u, NodeId v,
                  double capacity_mbps) {
  used.insert(canonical(u, v));
  const double km = euclidean_distance(g.position(u), g.position(v));
  g.add_link(u, v, capacity_mbps, std::max(km * kMsPerKm, 1e-3));
}

/// Weighted pick over [0, n) with weight w[i] + 1 (the +1 bootstraps
/// zero-degree entries, same preferential-attachment idiom as make_pl_topo).
std::size_t preferential_pick(Rng& rng, std::span<const int> w) {
  long total = 0;
  for (int x : w) total += x + 1;
  long pick = static_cast<long>(rng.uniform_index(static_cast<std::uint64_t>(total)));
  for (std::size_t i = 0; i < w.size(); ++i) {
    pick -= w[i] + 1;
    if (pick < 0) return i;
  }
  return w.size() - 1;  // unreachable for total > 0
}

}  // namespace

Graph make_isp_topo(const IspGenParams& p) {
  if (p.num_pops < 3) throw std::invalid_argument("make_isp_topo: need >= 3 PoPs");
  if (p.cores_per_pop < 2)
    throw std::invalid_argument("make_isp_topo: need >= 2 cores per PoP");
  const int num_cores = p.num_pops * p.cores_per_pop;
  if (p.num_nodes < num_cores)
    throw std::invalid_argument("make_isp_topo: num_nodes < num_pops * cores_per_pop");
  if (p.backbone_degree < 2.0)
    throw std::invalid_argument("make_isp_topo: backbone_degree must be >= 2");
  if (!(p.backbone_capacity_mbps > 0.0) || !(p.access_capacity_mbps > 0.0))
    throw std::invalid_argument("make_isp_topo: capacities must be > 0");

  Rng rng(p.seed);
  Graph g;

  // PoP centers on a continental-scale plane (km); cores jitter inside the
  // metro (~25 km), access routers a bit wider (~60 km).
  constexpr double kMapWidthKm = 4800.0;
  constexpr double kMapHeightKm = 2900.0;
  constexpr double kCoreJitterKm = 25.0;
  constexpr double kAccessJitterKm = 60.0;

  std::vector<Point> pop_center(static_cast<std::size_t>(p.num_pops));
  for (Point& c : pop_center)
    c = {rng.uniform(0.0, kMapWidthKm), rng.uniform(0.0, kMapHeightKm)};

  // Node ids: cores first (PoP-major), then the access tier.
  const auto core_id = [&](int pop, int j) {
    return static_cast<NodeId>(pop * p.cores_per_pop + j);
  };
  for (int pop = 0; pop < p.num_pops; ++pop)
    for (int j = 0; j < p.cores_per_pop; ++j)
      g.add_node({pop_center[pop].x + rng.uniform(-kCoreJitterKm, kCoreJitterKm),
                  pop_center[pop].y + rng.uniform(-kCoreJitterKm, kCoreJitterKm)});

  std::set<NodePair> used;

  // Intra-PoP core mesh.
  for (int pop = 0; pop < p.num_pops; ++pop)
    for (int j = 0; j < p.cores_per_pop; ++j)
      for (int k = j + 1; k < p.cores_per_pop; ++k)
        add_geo_link(g, used, core_id(pop, j), core_id(pop, k),
                     p.backbone_capacity_mbps);

  // Backbone ring over the PoPs in a random order (2-edge-connected at the
  // PoP level), each span realized between random cores of the two PoPs.
  std::vector<int> pop_degree(static_cast<std::size_t>(p.num_pops), 0);
  std::vector<int> order(static_cast<std::size_t>(p.num_pops));
  for (int i = 0; i < p.num_pops; ++i) order[static_cast<std::size_t>(i)] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());
  const auto link_pops = [&](int a, int b) {
    const NodeId u = core_id(a, static_cast<int>(rng.uniform_index(
                                    static_cast<std::uint64_t>(p.cores_per_pop))));
    const NodeId v = core_id(b, static_cast<int>(rng.uniform_index(
                                    static_cast<std::uint64_t>(p.cores_per_pop))));
    if (used.count(canonical(u, v)) != 0) return false;
    add_geo_link(g, used, u, v, p.backbone_capacity_mbps);
    ++pop_degree[static_cast<std::size_t>(a)];
    ++pop_degree[static_cast<std::size_t>(b)];
    return true;
  };
  for (int i = 0; i < p.num_pops; ++i)
    link_pops(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>((i + 1) % p.num_pops)]);

  // Degree-skewed extra inter-PoP adjacencies up to the target mean degree.
  const long extra_backbone =
      std::lround(p.backbone_degree * p.num_pops / 2.0) - p.num_pops;
  long added = 0;
  std::size_t guard = 256 * static_cast<std::size_t>(p.num_pops) + 4096;
  while (added < extra_backbone) {
    if (guard-- == 0) break;  // dense small backbones can saturate; keep what fits
    const int a = static_cast<int>(preferential_pick(rng, pop_degree));
    const int b = static_cast<int>(preferential_pick(rng, pop_degree));
    if (a == b) continue;
    if (link_pops(a, b)) ++added;
  }

  // Access tier: PoP membership drawn preferentially by PoP backbone degree
  // (the Rocketfuel skew: hub PoPs host the most routers), dual-homed to two
  // distinct cores of the PoP.
  for (int i = num_cores; i < p.num_nodes; ++i) {
    const int pop = static_cast<int>(preferential_pick(rng, pop_degree));
    const NodeId r =
        g.add_node({pop_center[pop].x + rng.uniform(-kAccessJitterKm, kAccessJitterKm),
                    pop_center[pop].y + rng.uniform(-kAccessJitterKm, kAccessJitterKm)});
    const int h1 = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(p.cores_per_pop)));
    int h2 = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(p.cores_per_pop - 1)));
    if (h2 >= h1) ++h2;
    add_geo_link(g, used, r, core_id(pop, h1), p.access_capacity_mbps);
    add_geo_link(g, used, r, core_id(pop, h2), p.access_capacity_mbps);
  }

  // 2-edge-connectivity fix-up (deterministic, RNG-free): access routers are
  // dual-homed, but a random core pick can leave a core reachable only
  // through its PoP mesh edge, making that edge a bridge. Same closest-pair
  // augmentation as topology.cpp's generators.
  std::size_t fix_guard = 4 * static_cast<std::size_t>(p.num_nodes) + 16;
  while (fix_guard-- > 0) {
    const auto bridges = find_bridges(g);
    if (bridges.empty()) break;
    const LinkId bridge = bridges.front();
    std::vector<int> label(g.num_nodes(), -1);
    int next = 0;
    std::vector<NodeId> stack;
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      if (label[s] != -1) continue;
      label[s] = next;
      stack.push_back(s);
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (ArcId a : g.out_arcs(u)) {
          if (g.arc(a).link == bridge) continue;
          const NodeId v = g.arc(a).dst;
          if (label[v] == -1) {
            label[v] = next;
            stack.push_back(v);
          }
        }
      }
      ++next;
    }
    double best = std::numeric_limits<double>::infinity();
    NodeId bu = kInvalidNode, bv = kInvalidNode;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
        if (label[u] == label[v] || used.count(canonical(u, v)) != 0) continue;
        const double d = euclidean_distance(g.position(u), g.position(v));
        if (d < best) {
          best = d;
          bu = u;
          bv = v;
        }
      }
    }
    if (bu == kInvalidNode) break;  // pathological tiny graph: nothing addable
    add_geo_link(g, used, bu, bv, p.access_capacity_mbps);
  }

  // Optional dense-peering chords (how the 10k-link scale fixtures are
  // built): preferential router-to-router attachment until the mean
  // undirected degree reaches avg_degree.
  if (p.avg_degree > 0.0) {
    const std::size_t target = static_cast<std::size_t>(
        std::lround(p.avg_degree * p.num_nodes / 2.0));
    std::vector<int> degree(static_cast<std::size_t>(p.num_nodes), 0);
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      degree[u] = static_cast<int>(g.link_degree(u));
    std::size_t chord_guard = 64 * target + 4096;
    while (g.num_links() < target) {
      if (chord_guard-- == 0)
        throw std::runtime_error("make_isp_topo: chord sampling stalled");
      const NodeId u = static_cast<NodeId>(preferential_pick(rng, degree));
      const NodeId v = static_cast<NodeId>(preferential_pick(rng, degree));
      if (u == v || used.count(canonical(u, v)) != 0) continue;
      add_geo_link(g, used, u, v, p.access_capacity_mbps);
      ++degree[u];
      ++degree[v];
    }
  }
  return g;
}

Graph load_isp_topo(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_isp_topo: cannot open " + path);
  return read_graph(in);
}

}  // namespace dtr
