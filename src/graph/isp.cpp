#include "graph/isp.h"

#include <cmath>
#include <numbers>

namespace dtr {

namespace {

struct City {
  const char* name;
  double lon;
  double lat;
};

// 16 PoPs spanning the continental US (approximate city coordinates).
constexpr City kCities[] = {
    {"Seattle", -122.33, 47.61},      // 0
    {"Sunnyvale", -122.04, 37.37},    // 1
    {"LosAngeles", -118.24, 34.05},   // 2
    {"Phoenix", -112.07, 33.45},      // 3
    {"SaltLakeCity", -111.89, 40.76}, // 4
    {"Denver", -104.99, 39.74},       // 5
    {"Dallas", -96.80, 32.78},        // 6
    {"Houston", -95.37, 29.76},       // 7
    {"KansasCity", -94.58, 39.10},    // 8
    {"Chicago", -87.63, 41.88},       // 9
    {"StLouis", -90.20, 38.63},       // 10
    {"Atlanta", -84.39, 33.75},       // 11
    {"Orlando", -81.38, 28.54},       // 12
    {"WashingtonDC", -77.04, 38.91},  // 13
    {"NewYork", -74.01, 40.71},       // 14
    {"Boston", -71.06, 42.36},        // 15
};

// 35 bidirectional links (70 arcs), degrees 2..7, average 4.375 — matching
// the paper's [16 nodes, 70 links] with a realistic mesh-of-rings structure.
constexpr std::pair<int, int> kLinks[] = {
    {0, 1},  {0, 4},  {0, 5},  {0, 9},          // Seattle
    {1, 2},  {1, 4},  {1, 5},                   // Sunnyvale
    {2, 3},  {2, 4},  {2, 6},                   // Los Angeles
    {3, 5},  {3, 6},  {3, 7},                   // Phoenix
    {4, 5},                                     // Salt Lake City
    {5, 8},  {5, 6},                            // Denver
    {6, 7},  {6, 8},  {6, 11}, {6, 10},         // Dallas
    {7, 11}, {7, 12},                           // Houston
    {8, 9},  {8, 10},                           // Kansas City
    {9, 10}, {9, 14}, {9, 13}, {9, 15},         // Chicago
    {10, 11}, {10, 13},                         // St Louis
    {11, 12}, {11, 13},                         // Atlanta
    {12, 13},                                   // Orlando
    {13, 14},                                   // Washington DC
    {14, 15},                                   // New York
};

/// Equirectangular projection to kilometres around the map's mean latitude.
Point project(double lon, double lat, double mean_lat_deg) {
  constexpr double kKmPerDegLat = 110.57;
  constexpr double kKmPerDegLonAtEquator = 111.32;
  const double scale = std::cos(mean_lat_deg * std::numbers::pi / 180.0);
  return {lon * kKmPerDegLonAtEquator * scale, lat * kKmPerDegLat};
}

}  // namespace

IspTopology make_isp_backbone(double capacity_mbps) {
  IspTopology topo;
  double mean_lat = 0.0;
  for (const City& c : kCities) mean_lat += c.lat;
  mean_lat /= static_cast<double>(std::size(kCities));

  for (const City& c : kCities) {
    topo.graph.add_node(project(c.lon, c.lat, mean_lat));
    topo.city_names.emplace_back(c.name);
  }

  // Fiber propagation: ~5 µs per km.
  constexpr double kMsPerKm = 0.005;
  for (const auto& [u, v] : kLinks) {
    const double km = euclidean_distance(topo.graph.position(static_cast<NodeId>(u)),
                                         topo.graph.position(static_cast<NodeId>(v)));
    topo.graph.add_link(static_cast<NodeId>(u), static_cast<NodeId>(v), capacity_mbps,
                        km * kMsPerKm);
  }
  return topo;
}

}  // namespace dtr
