#include "graph/graph_io.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dtr {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("read_graph: " + what);
}

/// Reads one non-empty, non-comment line.
bool next_content_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void write_graph(std::ostream& os, const Graph& g) {
  // Round-trip exactness: doubles print with max_digits10 significant digits.
  const auto saved_precision = os.precision();
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "dtr-graph 1\n";
  os << "nodes " << g.num_nodes() << "\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    os << "node " << u << " " << g.position(u).x << " " << g.position(u).y << "\n";
  os << "links " << g.num_links() << "\n";
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto arcs = g.link_arcs(l);
    if (arcs.size() != 2)
      throw std::invalid_argument("write_graph: one-directional arcs not serializable");
    const Arc& a = g.arc(arcs.front());
    os << "link " << a.src << " " << a.dst << " " << a.capacity << " "
       << a.prop_delay_ms << "\n";
  }
  os.precision(saved_precision);
}

Graph read_graph(std::istream& is) {
  std::string line, word;
  if (!next_content_line(is, line)) fail("empty input");
  {
    std::istringstream ss(line);
    int version = 0;
    ss >> word >> version;
    if (word != "dtr-graph" || version != 1) fail("bad header: " + line);
  }
  if (!next_content_line(is, line)) fail("missing nodes header");
  std::size_t num_nodes = 0;
  {
    std::istringstream ss(line);
    ss >> word >> num_nodes;
    if (word != "nodes" || ss.fail()) fail("bad nodes header: " + line);
  }
  Graph g(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    if (!next_content_line(is, line)) fail("missing node line");
    std::istringstream ss(line);
    std::size_t id = 0;
    Point p;
    ss >> word >> id >> p.x >> p.y;
    if (word != "node" || ss.fail()) fail("bad node line: " + line);
    if (id != i) fail("node ids must be dense and in order: " + line);
    g.set_position(static_cast<NodeId>(id), p);
  }
  if (!next_content_line(is, line)) fail("missing links header");
  std::size_t num_links = 0;
  {
    std::istringstream ss(line);
    ss >> word >> num_links;
    if (word != "links" || ss.fail()) fail("bad links header: " + line);
  }
  for (std::size_t i = 0; i < num_links; ++i) {
    if (!next_content_line(is, line)) fail("missing link line");
    std::istringstream ss(line);
    std::size_t u = 0, v = 0;
    double capacity = 0.0, delay = 0.0;
    ss >> word >> u >> v >> capacity >> delay;
    if (word != "link" || ss.fail()) fail("bad link line: " + line);
    if (u >= num_nodes || v >= num_nodes) fail("link endpoint out of range: " + line);
    g.add_link(static_cast<NodeId>(u), static_cast<NodeId>(v), capacity, delay);
  }
  return g;
}

std::string to_dot(const Graph& g, std::span<const std::string> node_names) {
  if (!node_names.empty() && node_names.size() != g.num_nodes())
    throw std::invalid_argument("to_dot: node_names size mismatch");
  std::ostringstream os;
  os << "graph dtr {\n  node [shape=circle];\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    os << "  n" << u;
    if (!node_names.empty()) os << " [label=\"" << node_names[u] << "\"]";
    os << ";\n";
  }
  os.setf(std::ios::fixed);
  os.precision(1);
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Arc& a = g.arc(g.link_arcs(l).front());
    os << "  n" << a.src << " -- n" << a.dst << " [label=\"" << a.prop_delay_ms
       << "ms/" << a.capacity << "M\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dtr
