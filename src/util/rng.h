#pragma once

#include <cstdint>
#include <random>

namespace dtr {

/// Deterministic pseudo-random generator used throughout the library.
///
/// Every stochastic component (topology generation, traffic synthesis, local
/// search, uncertainty models) receives its own Rng instance so that
/// experiments are reproducible from a single top-level seed and components
/// never interleave draws. `split()` derives an independent child stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform 64-bit unsigned in [0, n) . Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Derives a statistically independent child generator. Successive calls
  /// yield distinct streams; the parent advances by one draw per call.
  Rng split();

  /// Seed this generator was constructed with (for logging/repro).
  std::uint64_t seed() const { return seed_; }

  /// Access to the raw engine for std:: distributions and std::shuffle.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace dtr
