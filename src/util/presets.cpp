#include "util/presets.h"

#include <cstdlib>
#include <string>

namespace dtr {

namespace {
const char* getenv_or_null(const char* name) { return std::getenv(name); }
}  // namespace

Effort effort_from_env(Effort fallback) {
  const char* raw = getenv_or_null("DTR_EFFORT");
  if (raw == nullptr) return fallback;
  const std::string v(raw);
  if (v == "smoke") return Effort::kSmoke;
  if (v == "quick") return Effort::kQuick;
  if (v == "full") return Effort::kFull;
  return fallback;
}

int repeats_from_env(int fallback) {
  const char* raw = getenv_or_null("DTR_REPEATS");
  if (raw == nullptr) return fallback;
  const int v = std::atoi(raw);
  return v > 0 ? v : fallback;
}

unsigned long long seed_from_env(unsigned long long fallback) {
  const char* raw = getenv_or_null("DTR_SEED");
  if (raw == nullptr) return fallback;
  const unsigned long long v = std::strtoull(raw, nullptr, 10);
  return v != 0 ? v : fallback;
}

int nodes_from_env(int fallback) {
  const char* raw = getenv_or_null("DTR_NODES");
  if (raw == nullptr) return fallback;
  const int v = std::atoi(raw);
  return v >= 4 ? v : fallback;
}

std::string to_string(Effort e) {
  switch (e) {
    case Effort::kSmoke: return "smoke";
    case Effort::kQuick: return "quick";
    case Effort::kFull: return "full";
  }
  return "quick";
}

}  // namespace dtr
