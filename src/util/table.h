#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dtr {

/// Minimal aligned-text table writer used by the benchmark harnesses to print
/// paper-style tables. Cells are strings; numeric helpers format consistently.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent add_* calls fill it left to right.
  Table& row();

  Table& cell(std::string text);
  Table& num(double value, int precision = 2);
  /// "mean (stddev)" cell, the paper's convention for repeated experiments.
  Table& mean_std(double mean, double stddev, int precision = 2);
  Table& integer(long long value);

  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Renders as comma-separated values (for EXPERIMENTS.md / plotting).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with log output).
std::string format_double(double value, int precision = 2);

/// Prints a section banner ("== title ==") used to delimit bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace dtr
