#include "util/rng.h"

#include <stdexcept>

namespace dtr {

int Rng::uniform_int(int lo, int hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n == 0");
  return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  if (stddev <= 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

Rng Rng::split() {
  // SplitMix-style scramble of a fresh draw keeps child streams decorrelated
  // even for adjacent parent states.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

}  // namespace dtr
