#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dtr {

/// Descriptive statistics helpers shared by the criticality machinery and the
/// experiment harnesses. All functions tolerate empty input by returning 0.

/// Arithmetic mean.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs);

/// Mean of the smallest `fraction` of the samples (the paper's "left tail",
/// fraction = 0.10). At least one sample is always included when xs is
/// non-empty. Does not modify the input.
double left_tail_mean(std::span<const double> xs, double fraction);

/// Mean of the largest `fraction` of the samples (used for "top-10% worst
/// failures" metrics). At least one sample is included when non-empty.
double top_tail_mean(std::span<const double> xs, double fraction);

/// `q`-quantile (0 <= q <= 1) using linear interpolation between order
/// statistics. Does not modify the input.
double quantile(std::span<const double> xs, double q);

/// Largest element; 0 for empty input.
double max_value(std::span<const double> xs);

/// Accumulates mean/stddev across experiment repetitions.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample standard deviation; 0 for fewer than two samples.
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dtr
