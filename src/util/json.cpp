#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace dtr {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) throw std::runtime_error("json_number: to_chars failed");
  return std::string(buf, ptr);
}

JsonWriter::JsonWriter(std::ostream& os, int indent) : os_(os), indent_(indent) {}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i)
    os_ << ' ';
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;  // root value
  Level& top = stack_.back();
  if (!top.is_array)
    throw std::logic_error("JsonWriter: object member emitted without a key");
  if (top.has_items) os_ << ',';
  top.has_items = true;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back().is_array || after_key_)
    throw std::logic_error("JsonWriter: key() outside an object member position");
  if (stack_.back().has_items) os_ << ',';
  stack_.back().has_items = true;
  newline_indent();
  os_ << json_escape(k) << (indent_ > 0 ? ": " : ":");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back({false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().is_array || after_key_)
    throw std::logic_error("JsonWriter: unbalanced end_object");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back({true, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || !stack_.back().is_array || after_key_)
    throw std::logic_error("JsonWriter: unbalanced end_array");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  os_ << json_escape(s);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << json_number(v);
  return *this;
}

namespace {

// Integers go through to_chars like doubles: stream operator<< would
// inherit the global locale (e.g. "1,000,000") and fmtflags, breaking both
// JSON validity and the byte-determinism contract.
template <typename Int>
std::string int_text(Int v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) throw std::runtime_error("JsonWriter: to_chars failed");
  return std::string(buf, ptr);
}

}  // namespace

JsonWriter& JsonWriter::value_int(long long v) {
  before_value();
  os_ << int_text(v);
  return *this;
}

JsonWriter& JsonWriter::value_uint(unsigned long long v) {
  before_value();
  os_ << int_text(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

}  // namespace dtr
