#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace dtr {

/// Minimal streaming JSON writer with fully deterministic output: object keys
/// render in the order the caller emits them, doubles use shortest
/// round-trip formatting (std::to_chars), and strings are escaped per
/// RFC 8259. The campaign artifacts are diffed byte-for-byte across thread
/// counts, so nothing here may depend on locale, platform printf behavior,
/// or hash ordering.
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 = compact single-line output.
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next object member; must be followed by exactly one
  /// value (or begin_object/begin_array).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  /// Non-finite doubles have no JSON representation and render as null.
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  /// One template for every integer width; a per-type overload set would
  /// collide where size_t aliases unsigned long long (e.g. Windows x64).
  template <typename Int>
    requires(std::is_integral_v<Int> && !std::is_same_v<Int, bool>)
  JsonWriter& value(Int v) {
    if constexpr (std::is_signed_v<Int>) return value_int(static_cast<long long>(v));
    else return value_uint(static_cast<unsigned long long>(v));
  }
  JsonWriter& null();

 private:
  JsonWriter& value_int(long long v);
  JsonWriter& value_uint(unsigned long long v);
  void before_value();
  void newline_indent();

  std::ostream& os_;
  int indent_;
  struct Level {
    bool is_array = false;
    bool has_items = false;
  };
  std::vector<Level> stack_;
  bool after_key_ = false;
};

/// Quotes and escapes `s` per JSON string rules.
std::string json_escape(std::string_view s);

/// Shortest round-trip decimal text for `v`; "null" for non-finite values.
std::string json_number(double v);

}  // namespace dtr
