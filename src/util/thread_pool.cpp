#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace dtr {

namespace {
/// Set while a thread executes a pool chunk; nested `run` calls detect it and
/// fall back to inline execution rather than waiting on their own pool.
thread_local bool t_inside_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 0) throw std::invalid_argument("ThreadPool: negative num_threads");
  std::size_t workers = num_threads == 0
                            ? std::max(1u, std::thread::hardware_concurrency())
                            : static_cast<std::size_t>(num_threads);
  errors_.resize(workers);
  threads_.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run_inline(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n > 0) body(0, 0, n);
}

void ThreadPool::run(std::size_t n,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || t_inside_pool_worker) {
    run_inline(n, body);
    return;
  }

  const std::size_t workers = num_workers();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    job_n_ = n;
    pending_ = threads_.size();
    std::fill(errors_.begin(), errors_.end(), nullptr);
    ++job_id_;
  }
  start_cv_.notify_all();

  // The caller is worker 0.
  t_inside_pool_worker = true;
  try {
    const std::size_t begin = chunk_begin(n, workers, 0);
    const std::size_t end = chunk_begin(n, workers, 1);
    if (begin < end) body(0, begin, end);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  t_inside_pool_worker = false;

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  body_ = nullptr;
  for (const std::exception_ptr& e : errors_) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  t_inside_pool_worker = true;
  std::uint64_t last_job = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stopping_ || job_id_ != last_job; });
      if (stopping_) return;
      last_job = job_id_;
      body = body_;
      n = job_n_;
    }
    const std::size_t workers = num_workers();
    try {
      const std::size_t begin = chunk_begin(n, workers, worker);
      const std::size_t end = chunk_begin(n, workers, worker + 1);
      if (begin < end) (*body)(worker, begin, end);
    } catch (...) {
      errors_[worker] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace dtr
