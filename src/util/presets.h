#pragma once

#include <string>

namespace dtr {

/// Experiment effort levels. The paper's search budgets take hours-to-days per
/// table cell; presets scale iteration counts while keeping every parameter
/// *ratio* (q, z, chi, tail fraction, |Ec|/|E|, ...) at its paper value.
enum class Effort {
  kSmoke,  ///< seconds per cell — CI / ctest integration level
  kQuick,  ///< default for bench binaries — minutes per table
  kFull,   ///< paper-scale budgets — hours
};

/// Reads DTR_EFFORT (smoke|quick|full) from the environment; defaults to
/// `fallback` when unset or unrecognized.
Effort effort_from_env(Effort fallback = Effort::kQuick);

/// Reads DTR_REPEATS; defaults to `fallback` (the paper repeats 5x).
int repeats_from_env(int fallback);

/// Reads DTR_SEED; defaults to `fallback`.
unsigned long long seed_from_env(unsigned long long fallback);

/// Reads DTR_NODES (synthesized-topology size override); defaults to
/// `fallback`. Lets benches run paper-size topologies (30 nodes) under
/// quick search budgets, or tiny ones for smoke runs.
int nodes_from_env(int fallback);

std::string to_string(Effort e);

}  // namespace dtr
