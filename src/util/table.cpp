#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dtr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::num(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::mean_std(double mean, double stddev, int precision) {
  return cell(format_double(mean, precision) + " (" +
              format_double(stddev, precision) + ")");
}

Table& Table::integer(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell << " | ";
    }
    os << '\n';
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace dtr
