#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dtr {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

namespace {

std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

std::size_t tail_count(std::size_t n, double fraction) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("tail fraction must be in [0,1]");
  auto k = static_cast<std::size_t>(std::floor(fraction * static_cast<double>(n)));
  return std::max<std::size_t>(k, 1);
}

}  // namespace

double left_tail_mean(std::span<const double> xs, double fraction) {
  if (xs.empty()) return 0.0;
  auto v = sorted_copy(xs);
  const std::size_t k = tail_count(v.size(), fraction);
  return mean(std::span<const double>(v.data(), k));
}

double top_tail_mean(std::span<const double> xs, double fraction) {
  if (xs.empty()) return 0.0;
  auto v = sorted_copy(xs);
  const std::size_t k = tail_count(v.size(), fraction);
  return mean(std::span<const double>(v.data() + (v.size() - k), k));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  auto v = sorted_copy(xs);
  if (v.size() == 1) return v[0];
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::add(double x) {
  // Welford's online update.
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace dtr
