#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace dtr {

/// Deterministic fork-join worker pool.
///
/// Work submitted through `run` is split into one contiguous chunk per worker
/// (static partitioning, no work stealing), so the index->worker assignment is
/// a pure function of (n, num_workers). Combined with callers that write only
/// to per-index slots and reduce in index order, every computation built on
/// this pool produces bit-identical results for ANY worker count — the
/// contract the optimizer's `num_threads` knob relies on.
///
/// The calling thread participates as worker 0, so a pool with W workers uses
/// W-1 spawned threads and `ThreadPool(1)` runs everything inline on the
/// caller. `run` invoked from inside a worker (nested parallelism) degrades
/// gracefully to inline execution instead of deadlocking.
class ThreadPool {
 public:
  /// `num_threads`: total workers including the calling thread;
  /// 0 = std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return threads_.size() + 1; }

  /// Worker `w`'s chunk of [0, n): [n*w/W, n*(w+1)/W).
  static std::size_t chunk_begin(std::size_t n, std::size_t workers, std::size_t w) {
    return n * w / workers;
  }

  /// Invokes body(worker, begin, end) once per worker over its chunk of
  /// [0, n). Blocks until every chunk finished. If any invocation throws, the
  /// lowest-numbered worker's exception is rethrown on the caller.
  void run(std::size_t n,
           const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// Total workers a (possibly null) pool provides.
  static std::size_t workers_of(const ThreadPool* pool) {
    return pool == nullptr ? 1 : pool->num_workers();
  }

 private:
  void worker_loop(std::size_t worker);
  void run_inline(std::size_t n,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t job_id_ = 0;
  std::size_t job_n_ = 0;
  std::size_t pending_ = 0;
  bool stopping_ = false;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body_ = nullptr;
  std::vector<std::exception_ptr> errors_;
};

/// Runs fn(worker, i) for every i in [0, n) across the pool's workers
/// (`pool == nullptr` or a single worker = plain sequential loop). `worker`
/// indexes per-worker scratch state; `fn` must only touch index-i output
/// slots and worker-`worker` scratch for the determinism contract to hold.
///
/// `chunk_size == 0` (the default) keeps the one-contiguous-chunk-per-worker
/// static split. A positive `chunk_size` switches to cyclic chunk
/// assignment: the range is cut into blocks of `chunk_size` indices and
/// worker w processes blocks {w, w+W, w+2W, ...} — better load balance when
/// per-index cost varies (and the NUMA/chunk tuning knob the sweep callers
/// profile with). Either way the index->worker map stays a pure function of
/// (n, W, chunk_size), so the determinism contract is unchanged.
/// Chunk-size policy for whole-catalog scenario sweeps (evaluate_failures,
/// unavoidable_violation_profile). Both splits dispatch once per sweep, so
/// this is purely an assignment-pattern choice:
///
///   - Small catalogs keep the contiguous per-worker split (0): with fewer
///     than ~2 blocks per worker a cyclic split would idle workers, and at
///     paper-table sizes imbalance is noise anyway.
///   - Large catalogs (the ISP tier: an all-link catalog has one scenario
///     per link, 10^3..10^4 of them) switch to 32-index cyclic blocks.
///     Generated and real ISP link orders cluster expensive scenarios at the
///     front — backbone failures reroute far more demand than access-link
///     failures, and backbone links are emitted first — so a contiguous
///     split hands worker 0 most of the costly deltas. Cyclic blocks spread
///     that skew across workers; 32 keeps enough locality on the shared
///     incremental base while giving a 4-worker pool ~8+ blocks each to
///     smooth over.
///
/// Either split is bit-identical by the parallel_for contract; this knob only
/// moves wall-clock. 1024 = 32 blocks of 32, so pools up to 16 wide still get
/// >= 2 blocks per worker at the switchover point.
inline std::size_t sweep_chunk_size(std::size_t n) {
  return n >= 1024 ? 32 : 0;
}

template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn, std::size_t chunk_size = 0) {
  if (pool == nullptr || pool->num_workers() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(std::size_t{0}, i);
    return;
  }
  if (chunk_size == 0) {
    pool->run(n, [&fn](std::size_t worker, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(worker, i);
    });
    return;
  }
  const std::size_t workers = pool->num_workers();
  const std::size_t blocks = (n + chunk_size - 1) / chunk_size;
  // run over [0, W) hands each worker exactly its own index; the body then
  // walks that worker's cyclic block set.
  pool->run(workers, [&fn, n, blocks, chunk_size, workers](
                         std::size_t worker, std::size_t begin, std::size_t end) {
    for (std::size_t w = begin; w < end; ++w) {
      for (std::size_t b = w; b < blocks; b += workers) {
        const std::size_t lo = b * chunk_size;
        const std::size_t hi = std::min(n, lo + chunk_size);
        for (std::size_t i = lo; i < hi; ++i) fn(worker, i);
      }
    }
  });
}

}  // namespace dtr
