#!/usr/bin/env bash
# Regenerates the CI golden campaign artifacts (tests/golden/campaign_smoke.json,
# tests/golden/scenario_smoke.json, tests/golden/availability_smoke.json,
# tests/golden/isp_smoke.json, tests/golden/events_smoke.jsonl) from the specs
# next to them.
#
# The CI bench-smoke job runs the same campaigns and `diff`s their output
# against the checked-in JSON, so silent metric regressions fail CI. Only
# regenerate after an INTENTIONAL metric change, commit the new JSON together
# with the change that caused it, and explain the diff in the PR. CI's
# golden-drift guard additionally reruns this script into a throwaway
# directory (--out-dir) on every push and fails if the checked-in goldens are
# stale relative to the specs + binary.
#
# The artifact is byte-identical across worker counts and execution shapes by
# design (dtr.campaign.v1 determinism contract). It is also expected to be
# byte-identical across x86-64 Linux toolchains: all metric arithmetic is
# IEEE-754 +-*/ (no FMA contraction at the default targets) and the JSON
# writer emits shortest-round-trip doubles. If a toolchain ever breaks that
# expectation, regenerate on an environment matching CI (ubuntu-latest, gcc,
# Release) and note it here.
#
# Usage: scripts/regen-golden.sh [build-dir] [--out-dir DIR]
#   build-dir  defaults to "build"
#   --out-dir  write the regenerated JSON into DIR instead of tests/golden/
#              (the drift-guard mode: nothing under the tree is touched)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
OUT_DIR="tests/golden"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out-dir)
      OUT_DIR="$2"
      shift 2
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done
mkdir -p "$OUT_DIR"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target dtr_tool

"$BUILD_DIR"/examples/dtr_tool campaign \
  --spec tests/golden/campaign_smoke.spec \
  --json "$OUT_DIR"/campaign_smoke.json \
  --workers 2

# Scenario-catalog gate artifact (weighted SRLG / k-link / geo-conduit
# campaign; the spec's srlg_file path is repo-root relative, matching CI).
"$BUILD_DIR"/examples/dtr_tool campaign \
  --spec tests/golden/scenario_smoke.spec \
  --json "$OUT_DIR"/scenario_smoke.json \
  --workers 2

# SLA-availability gate artifact (hardening-objective campaign). Besides
# byte-identity, CI asserts the headline: the SRLG-hardened cell's
# scn_exp_downtime_r is strictly lower than the single-link-hardened
# cell's. If a regeneration flips that ordering, the change broke the
# catalog objective — don't just commit the new bytes.
"$BUILD_DIR"/examples/dtr_tool campaign \
  --spec tests/golden/availability_smoke.spec \
  --json "$OUT_DIR"/availability_smoke.json \
  --workers 2

# ISP-scale gate artifact (~300-router generated Rocketfuel-style cell with
# pinned search budgets; see the spec header). This is the slowest golden —
# about a minute of optimizer + two all-link profile sweeps — which is exactly
# the point: it exercises the CSR core and the incremental engine an order of
# magnitude past the paper tables.
"$BUILD_DIR"/examples/dtr_tool campaign \
  --spec tests/golden/isp_smoke.spec \
  --json "$OUT_DIR"/isp_smoke.json \
  --workers 2

# Streaming-events gate artifact: the ci-smoke cells with events = 1. Only
# the deterministic plane is golden — iteration records and phase markers,
# byte-identical for any --workers / --inner-threads shape. The full stream
# (with process-plane heartbeats) goes to a scratch file.
EVENTS_SCRATCH="$(mktemp)"
trap 'rm -f "$EVENTS_SCRATCH"' EXIT
"$BUILD_DIR"/examples/dtr_tool campaign \
  --spec tests/golden/events_smoke.spec \
  --json /dev/null \
  --workers 2 \
  --events-out "$EVENTS_SCRATCH"
grep '"plane":"det"' "$EVENTS_SCRATCH" > "$OUT_DIR"/events_smoke.jsonl

if [[ "$OUT_DIR" == "tests/golden" ]]; then
  echo "regenerated golden campaign artifacts:"
  git --no-pager diff --stat -- tests/golden/campaign_smoke.json \
    tests/golden/scenario_smoke.json tests/golden/availability_smoke.json \
    tests/golden/isp_smoke.json tests/golden/events_smoke.jsonl
else
  echo "regenerated golden campaign artifacts into $OUT_DIR (tree untouched)"
fi
