#!/usr/bin/env bash
# Regenerates the CI golden campaign artifacts (tests/golden/campaign_smoke.json
# and tests/golden/scenario_smoke.json) from the specs next to them.
#
# The CI bench-smoke job runs the same campaign and `diff`s its output against
# the checked-in JSON, so silent metric regressions fail CI. Only regenerate
# after an INTENTIONAL metric change, commit the new JSON together with the
# change that caused it, and explain the diff in the PR.
#
# The artifact is byte-identical across worker counts and execution shapes by
# design (dtr.campaign.v1 determinism contract). It is also expected to be
# byte-identical across x86-64 Linux toolchains: all metric arithmetic is
# IEEE-754 +-*/ (no FMA contraction at the default targets) and the JSON
# writer emits shortest-round-trip doubles. If a toolchain ever breaks that
# expectation, regenerate on an environment matching CI (ubuntu-latest, gcc,
# Release) and note it here.
#
# Usage: scripts/regen-golden.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target dtr_tool

"$BUILD_DIR"/examples/dtr_tool campaign \
  --spec tests/golden/campaign_smoke.spec \
  --json tests/golden/campaign_smoke.json \
  --workers 2

# Scenario-catalog gate artifact (weighted SRLG / k-link / geo-conduit
# campaign; the spec's srlg_file path is repo-root relative, matching CI).
"$BUILD_DIR"/examples/dtr_tool campaign \
  --spec tests/golden/scenario_smoke.spec \
  --json tests/golden/scenario_smoke.json \
  --workers 2

# SLA-availability gate artifact (hardening-objective campaign). Besides
# byte-identity, CI asserts the headline: the SRLG-hardened cell's
# scn_exp_downtime_r is strictly lower than the single-link-hardened
# cell's. If a regeneration flips that ordering, the change broke the
# catalog objective — don't just commit the new bytes.
"$BUILD_DIR"/examples/dtr_tool campaign \
  --spec tests/golden/availability_smoke.spec \
  --json tests/golden/availability_smoke.json \
  --workers 2

echo "regenerated golden campaign artifacts:"
git --no-pager diff --stat -- tests/golden/campaign_smoke.json \
  tests/golden/scenario_smoke.json tests/golden/availability_smoke.json
