#!/usr/bin/env python3
"""Perf-trajectory gate for the CI perf job.

Merges the bench_timing dtr.bench.v1 artifact with the (timing-enabled)
campaign_smoke dtr.campaign.v1 artifact into one BENCH_<sha>.json, then
compares it against the checked-in bench/baseline.json:

- STRUCTURAL problems are BLOCKING (exit 1): missing/malformed inputs, a
  wrong schema, or baseline benchmarks that vanished from the current run
  (a silently dropped benchmark would blind the trajectory).
- SLOWDOWNS are ADVISORY by default: entries slower than --threshold (x)
  times their baseline emit ::warning annotations but exit 0 — CI-runner
  timing noise must not block merges. Pass --strict to make them fail.
- TELEMETRY (--telemetry, a dtr.telemetry.v1 artifact) is merged under the
  output's "telemetry" key so counter trajectories (cache hit rates,
  delta-vs-full takes) ride the same BENCH_<sha>.json series. A base-cache
  hit-rate drop beyond --hit-rate-drop vs the baseline's telemetry section
  is always ADVISORY (::warning, never blocking).

Regenerate the baseline after an intentional perf change by copying the
merged artifact over it:  cp BENCH_<sha>.json bench/baseline.json

--self-test re-invokes this script against synthetic fixtures and asserts
the gate's behavior on each failure mode (structural block, advisory
slowdown, strict mode, hit-rate drop) — run by CI before the real compare
so a refactor here can't silently neuter the gate.
"""

import argparse
import json
import sys

SCHEMA_BENCH = "dtr.bench.v1"
SCHEMA_CAMPAIGN = "dtr.campaign.v1"
SCHEMA_TELEMETRY = "dtr.telemetry.v1"


def base_cache_hit_rate(telemetry: dict) -> float | None:
    """Hit rate of the evaluator base-routing cache, None when unmeasured."""
    counters = telemetry.get("process", {}).get("counters", {})
    hits = counters.get("evaluator.base_cache.hits", 0)
    misses = counters.get("evaluator.base_cache.misses", 0)
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def fail(message: str) -> None:
    print(f"::error::check-bench: {message}")
    sys.exit(1)


def load_json(path: str, schema: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    if data.get("schema") != schema:
        fail(f"{path}: expected schema {schema}, got {data.get('schema')!r}")
    return data


def self_test() -> int:
    """Fixture-driven test of the compare logic via real CLI invocations."""
    import os
    import subprocess
    import tempfile

    def invoke(tmp, bench, baseline=None, telemetry=None, extra=()):
        cmd = [sys.executable, os.path.abspath(__file__)]
        for flag, data in (("--bench", bench), ("--baseline", baseline),
                           ("--telemetry", telemetry)):
            if data is None:
                continue
            path = os.path.join(tmp, flag.lstrip("-") + ".json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump(data, f)
            cmd += [flag, path]
        cmd += list(extra)
        proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout + proc.stderr

    def tele(rate):
        hits = int(round(rate * 1000))
        return {"schema": SCHEMA_TELEMETRY,
                "counters": {},
                "process": {"counters": {"evaluator.base_cache.hits": hits,
                                         "evaluator.base_cache.misses": 1000 - hits}}}

    def bench(entries, telemetry_rate=None):
        data = {"schema": SCHEMA_BENCH, "benchmarks": entries}
        if telemetry_rate is not None:
            data["telemetry"] = tele(telemetry_rate)
        return data

    fast = [{"name": "BM_A", "real_ms": 1.0}, {"name": "BM_B", "real_ms": 5.0}]
    slow = [{"name": "BM_A", "real_ms": 3.0}, {"name": "BM_B", "real_ms": 5.0}]
    failures = 0

    def check(label, got, want_code, want_text):
        nonlocal failures
        code, out = got
        ok = code == want_code and want_text in out
        print(f"  {'PASS' if ok else 'FAIL'}: {label}")
        if not ok:
            print(f"    expected exit {want_code} with {want_text!r}, got exit {code}:")
            print("    " + "\n    ".join(out.strip().splitlines()))
            failures += 1

    with tempfile.TemporaryDirectory() as tmp:
        check("identical run passes",
              invoke(tmp, bench(fast), bench(fast)),
              0, "within 2.0x of baseline")
        check("wrong schema blocks",
              invoke(tmp, {"schema": "bogus.v0", "benchmarks": fast}),
              1, "expected schema")
        check("empty benchmark list blocks",
              invoke(tmp, {"schema": SCHEMA_BENCH, "benchmarks": []}),
              1, "no benchmarks recorded")
        check("vanished baseline entry blocks",
              invoke(tmp, bench(fast),
                     bench(fast + [{"name": "BM_GONE", "real_ms": 2.0}])),
              1, "missing from this run: BM_GONE")
        # Scale-tier entries carry benchmark args and counters in their names
        # and payloads ("BM_IspScaleSweep/nodes:300", counters nodes/links);
        # the gate must treat them like any other row: presence is structural
        # (a vanished scale entry means the scale tier silently stopped
        # running), speed is advisory.
        scale_base = fast + [{"name": "BM_IspScaleSweep/nodes:300",
                              "real_ms": 8000.0,
                              "counters": {"nodes": 300.0, "links": 582.0}}]
        scale_slow = fast + [{"name": "BM_IspScaleSweep/nodes:300",
                              "real_ms": 24000.0,
                              "counters": {"nodes": 300.0, "links": 582.0}}]
        check("vanished scale-tier entry blocks",
              invoke(tmp, bench(fast), bench(scale_base)),
              1, "missing from this run: BM_IspScaleSweep/nodes:300")
        check("scale-tier slowdown is advisory",
              invoke(tmp, bench(scale_slow), bench(scale_base)),
              0, "::warning::check-bench: BM_IspScaleSweep/nodes:300 is 3.00x slower")
        # Toggle-pair guard rows (events on vs off) compare each arm against
        # its own baseline entry, so an events:1 regression trips the advisory
        # even when events:0 is unchanged — the overhead guard rides the same
        # per-row machinery as everything else.
        ebus_base = fast + [
            {"name": "BM_EventBusOverhead/events:0", "real_ms": 1.0,
             "counters": {"links": 40.0, "events_per_iter": 0.0}},
            {"name": "BM_EventBusOverhead/events:1", "real_ms": 1.0,
             "counters": {"links": 40.0, "events_per_iter": 40.0}}]
        ebus_slow = fast + [
            {"name": "BM_EventBusOverhead/events:0", "real_ms": 1.0,
             "counters": {"links": 40.0, "events_per_iter": 0.0}},
            {"name": "BM_EventBusOverhead/events:1", "real_ms": 3.0,
             "counters": {"links": 40.0, "events_per_iter": 40.0}}]
        check("vanished event-bus toggle arm blocks",
              invoke(tmp, bench(fast), bench(ebus_base)),
              1, "missing from this run: BM_EventBusOverhead/events:0")
        check("event-bus events:1 slowdown is advisory",
              invoke(tmp, bench(ebus_slow), bench(ebus_base)),
              0, "::warning::check-bench: BM_EventBusOverhead/events:1 is 3.00x slower")
        check("3x slowdown is advisory",
              invoke(tmp, bench(slow), bench(fast)),
              0, "::warning::check-bench: BM_A is 3.00x slower")
        check("3x slowdown blocks under --strict",
              invoke(tmp, bench(slow), bench(fast), extra=["--strict"]),
              1, "--strict")
        check("new entry is reported, not blocking",
              invoke(tmp, bench(fast + [{"name": "BM_NEW", "real_ms": 1.0}]),
                     bench(fast)),
              0, "BM_NEW: 1.000 ms (new")
        check("hit-rate drop warns (advisory)",
              invoke(tmp, bench(fast), bench(fast, telemetry_rate=0.90),
                     telemetry=tele(0.50)),
              0, "::warning::check-bench: base-cache hit rate dropped")
        check("small hit-rate wobble stays quiet",
              invoke(tmp, bench(fast), bench(fast, telemetry_rate=0.90),
                     telemetry=tele(0.88)),
              0, "all 2 benchmarks within")

    if failures:
        print(f"::error::check-bench --self-test: {failures} case(s) failed")
        return 1
    print("check-bench --self-test: all cases passed")
    return 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True, help="bench_timing dtr.bench.v1 JSON")
    parser.add_argument("--campaign", help="campaign JSON written with --timings")
    parser.add_argument("--baseline", help="checked-in baseline (dtr.bench.v1)")
    parser.add_argument("--out", help="write the merged dtr.bench.v1 artifact here")
    parser.add_argument("--sha", default="", help="override the artifact's sha field")
    parser.add_argument("--telemetry", help="dtr.telemetry.v1 counter snapshot to merge")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="advisory slowdown ratio (default 2.0)")
    parser.add_argument("--hit-rate-drop", type=float, default=0.10,
                        help="advisory absolute base-cache hit-rate drop (default 0.10)")
    parser.add_argument("--strict", action="store_true",
                        help="treat slowdowns beyond the threshold as failures")
    args = parser.parse_args()

    report = load_json(args.bench, SCHEMA_BENCH)
    entries = report.get("benchmarks")
    if not isinstance(entries, list) or not entries:
        fail(f"{args.bench}: no benchmarks recorded")
    for entry in entries:
        if "name" not in entry or "real_ms" not in entry:
            fail(f"{args.bench}: malformed benchmark entry {entry!r}")

    if args.campaign:
        campaign = load_json(args.campaign, SCHEMA_CAMPAIGN)
        cells = campaign.get("cells", [])
        if not cells:
            fail(f"{args.campaign}: campaign has no cells")
        for cell in cells:
            if cell.get("error"):
                fail(f"{args.campaign}: cell {cell.get('id')} failed: {cell['error']}")
            if "seconds" not in cell:
                fail(f"{args.campaign}: cell {cell.get('id')} has no timings "
                     "(run the campaign with --timings)")
            entries.append({"name": f"campaign/{cell['id']}",
                            "real_ms": cell["seconds"] * 1e3})
        if "seconds" in campaign:
            entries.append({"name": "campaign/total",
                            "real_ms": campaign["seconds"] * 1e3})

    telemetry = None
    if args.telemetry:
        telemetry = load_json(args.telemetry, SCHEMA_TELEMETRY)
        if not isinstance(telemetry.get("counters"), dict):
            fail(f"{args.telemetry}: no counters section")
        report["telemetry"] = telemetry

    if args.sha:
        report["sha"] = args.sha
    report["benchmarks"] = entries

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"wrote merged perf artifact to {args.out}")

    if not args.baseline:
        return 0

    baseline = load_json(args.baseline, SCHEMA_BENCH)
    current = {e["name"]: e["real_ms"] for e in entries}
    slow, missing = [], []
    for entry in baseline.get("benchmarks", []):
        name, base_ms = entry["name"], entry["real_ms"]
        if name not in current:
            missing.append(name)
            continue
        cur_ms = current[name]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        marker = " <-- SLOW" if ratio > args.threshold else ""
        print(f"  {name}: {cur_ms:.3f} ms vs baseline {base_ms:.3f} ms "
              f"({ratio:.2f}x){marker}")
        if ratio > args.threshold:
            slow.append((name, ratio))
    for name in sorted(set(current) - {e["name"] for e in baseline.get("benchmarks", [])}):
        print(f"  {name}: {current[name]:.3f} ms (new — not in baseline; "
              "refresh bench/baseline.json to start tracking it)")

    if telemetry is not None:
        # Cache-effectiveness trajectory: a hit-rate drop means the optimizer
        # started rebuilding bases it used to reuse — worth a look, but runner
        # variance keeps this advisory regardless of --strict.
        cur_rate = base_cache_hit_rate(telemetry)
        base_rate = base_cache_hit_rate(baseline.get("telemetry", {}))
        if cur_rate is not None and base_rate is not None:
            print(f"  base-cache hit rate: {cur_rate:.3f} vs baseline {base_rate:.3f}")
            if base_rate - cur_rate > args.hit_rate_drop:
                print(f"::warning::check-bench: base-cache hit rate dropped "
                      f"{base_rate - cur_rate:.3f} vs baseline "
                      f"({cur_rate:.3f} < {base_rate:.3f}; advisory)")
        elif cur_rate is not None:
            print(f"  base-cache hit rate: {cur_rate:.3f} (no baseline telemetry; "
                  "refresh bench/baseline.json to start tracking it)")

    if missing:
        fail("benchmarks present in the baseline but missing from this run: "
             + ", ".join(missing))
    if slow:
        for name, ratio in slow:
            print(f"::warning::check-bench: {name} is {ratio:.2f}x slower than "
                  f"baseline (advisory threshold {args.threshold}x)")
        if args.strict:
            fail(f"{len(slow)} benchmark(s) beyond the threshold in --strict mode")
    else:
        print(f"all {len(current)} benchmarks within {args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
