#!/usr/bin/env python3
"""Perf-trajectory gate for the CI perf job.

Merges the bench_timing dtr.bench.v1 artifact with the (timing-enabled)
campaign_smoke dtr.campaign.v1 artifact into one BENCH_<sha>.json, then
compares it against the checked-in bench/baseline.json:

- STRUCTURAL problems are BLOCKING (exit 1): missing/malformed inputs, a
  wrong schema, or baseline benchmarks that vanished from the current run
  (a silently dropped benchmark would blind the trajectory).
- SLOWDOWNS are ADVISORY by default: entries slower than --threshold (x)
  times their baseline emit ::warning annotations but exit 0 — CI-runner
  timing noise must not block merges. Pass --strict to make them fail.
- TELEMETRY (--telemetry, a dtr.telemetry.v1 artifact) is merged under the
  output's "telemetry" key so counter trajectories (cache hit rates,
  delta-vs-full takes) ride the same BENCH_<sha>.json series. A base-cache
  hit-rate drop beyond --hit-rate-drop vs the baseline's telemetry section
  is always ADVISORY (::warning, never blocking).

Regenerate the baseline after an intentional perf change by copying the
merged artifact over it:  cp BENCH_<sha>.json bench/baseline.json
"""

import argparse
import json
import sys

SCHEMA_BENCH = "dtr.bench.v1"
SCHEMA_CAMPAIGN = "dtr.campaign.v1"
SCHEMA_TELEMETRY = "dtr.telemetry.v1"


def base_cache_hit_rate(telemetry: dict) -> float | None:
    """Hit rate of the evaluator base-routing cache, None when unmeasured."""
    counters = telemetry.get("process", {}).get("counters", {})
    hits = counters.get("evaluator.base_cache.hits", 0)
    misses = counters.get("evaluator.base_cache.misses", 0)
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def fail(message: str) -> None:
    print(f"::error::check-bench: {message}")
    sys.exit(1)


def load_json(path: str, schema: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    if data.get("schema") != schema:
        fail(f"{path}: expected schema {schema}, got {data.get('schema')!r}")
    return data


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True, help="bench_timing dtr.bench.v1 JSON")
    parser.add_argument("--campaign", help="campaign JSON written with --timings")
    parser.add_argument("--baseline", help="checked-in baseline (dtr.bench.v1)")
    parser.add_argument("--out", help="write the merged dtr.bench.v1 artifact here")
    parser.add_argument("--sha", default="", help="override the artifact's sha field")
    parser.add_argument("--telemetry", help="dtr.telemetry.v1 counter snapshot to merge")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="advisory slowdown ratio (default 2.0)")
    parser.add_argument("--hit-rate-drop", type=float, default=0.10,
                        help="advisory absolute base-cache hit-rate drop (default 0.10)")
    parser.add_argument("--strict", action="store_true",
                        help="treat slowdowns beyond the threshold as failures")
    args = parser.parse_args()

    report = load_json(args.bench, SCHEMA_BENCH)
    entries = report.get("benchmarks")
    if not isinstance(entries, list) or not entries:
        fail(f"{args.bench}: no benchmarks recorded")
    for entry in entries:
        if "name" not in entry or "real_ms" not in entry:
            fail(f"{args.bench}: malformed benchmark entry {entry!r}")

    if args.campaign:
        campaign = load_json(args.campaign, SCHEMA_CAMPAIGN)
        cells = campaign.get("cells", [])
        if not cells:
            fail(f"{args.campaign}: campaign has no cells")
        for cell in cells:
            if cell.get("error"):
                fail(f"{args.campaign}: cell {cell.get('id')} failed: {cell['error']}")
            if "seconds" not in cell:
                fail(f"{args.campaign}: cell {cell.get('id')} has no timings "
                     "(run the campaign with --timings)")
            entries.append({"name": f"campaign/{cell['id']}",
                            "real_ms": cell["seconds"] * 1e3})
        if "seconds" in campaign:
            entries.append({"name": "campaign/total",
                            "real_ms": campaign["seconds"] * 1e3})

    telemetry = None
    if args.telemetry:
        telemetry = load_json(args.telemetry, SCHEMA_TELEMETRY)
        if not isinstance(telemetry.get("counters"), dict):
            fail(f"{args.telemetry}: no counters section")
        report["telemetry"] = telemetry

    if args.sha:
        report["sha"] = args.sha
    report["benchmarks"] = entries

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"wrote merged perf artifact to {args.out}")

    if not args.baseline:
        return 0

    baseline = load_json(args.baseline, SCHEMA_BENCH)
    current = {e["name"]: e["real_ms"] for e in entries}
    slow, missing = [], []
    for entry in baseline.get("benchmarks", []):
        name, base_ms = entry["name"], entry["real_ms"]
        if name not in current:
            missing.append(name)
            continue
        cur_ms = current[name]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        marker = " <-- SLOW" if ratio > args.threshold else ""
        print(f"  {name}: {cur_ms:.3f} ms vs baseline {base_ms:.3f} ms "
              f"({ratio:.2f}x){marker}")
        if ratio > args.threshold:
            slow.append((name, ratio))
    for name in sorted(set(current) - {e["name"] for e in baseline.get("benchmarks", [])}):
        print(f"  {name}: {current[name]:.3f} ms (new — not in baseline; "
              "refresh bench/baseline.json to start tracking it)")

    if telemetry is not None:
        # Cache-effectiveness trajectory: a hit-rate drop means the optimizer
        # started rebuilding bases it used to reuse — worth a look, but runner
        # variance keeps this advisory regardless of --strict.
        cur_rate = base_cache_hit_rate(telemetry)
        base_rate = base_cache_hit_rate(baseline.get("telemetry", {}))
        if cur_rate is not None and base_rate is not None:
            print(f"  base-cache hit rate: {cur_rate:.3f} vs baseline {base_rate:.3f}")
            if base_rate - cur_rate > args.hit_rate_drop:
                print(f"::warning::check-bench: base-cache hit rate dropped "
                      f"{base_rate - cur_rate:.3f} vs baseline "
                      f"({cur_rate:.3f} < {base_rate:.3f}; advisory)")
        elif cur_rate is not None:
            print(f"  base-cache hit rate: {cur_rate:.3f} (no baseline telemetry; "
                  "refresh bench/baseline.json to start tracking it)")

    if missing:
        fail("benchmarks present in the baseline but missing from this run: "
             + ", ".join(missing))
    if slow:
        for name, ratio in slow:
            print(f"::warning::check-bench: {name} is {ratio:.2f}x slower than "
                  f"baseline (advisory threshold {args.threshold}x)")
        if args.strict:
            fail(f"{len(slow)} benchmark(s) beyond the threshold in --strict mode")
    else:
        print(f"all {len(current)} benchmarks within {args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
