/// Table III — "SLA violations in RandTopo (different network sizes)".
///
/// RandTopo with mean degree 5 at increasing node counts; robust ("R") vs.
/// regular ("NR") average and top-10% SLA violations across all single link
/// failures. Paper claim: the benefits of robust optimization persist or
/// grow with network size (more path diversity to exploit).
///
/// Scaling: paper sizes are {30, 50, 100}; at smoke/quick effort we run
/// {12, 16, 24} so the sweep finishes in minutes (DTR_EFFORT=full restores
/// the paper's sizes). Full effort additionally extends the axis with
/// generated Rocketfuel-style ISP cells at {500, 1000, 2000} nodes — the
/// scale tier the CSR graph core exists for; these share the campaign's
/// determinism contract but take hours at the paper's search budget, so
/// they only run when explicitly filtered in (--filter ISP) or when the
/// whole full-effort campaign is requested. Runs as a campaign — one cell
/// per size, sharded across workers; see bench_common.h for the standard
/// flags.

#include <algorithm>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchArgs args = parse_bench_args(argc, argv);
  const BenchContext ctx = context_from_env();

  const std::vector<int> sizes = ctx.effort == Effort::kFull
                                     ? std::vector<int>{30, 50, 100}
                                     : std::vector<int>{12, 16, 24};

  Campaign campaign;
  campaign.name = "table3_network_size";
  campaign.effort = ctx.effort;
  campaign.seed = ctx.seed;
  for (int n : sizes) {
    CampaignCell cell;
    cell.spec = default_rand_spec(ctx.effort, ctx.seed);
    cell.spec.nodes = n;
    cell.spec.degree = 5.0;
    cell.spec.seed = ctx.seed + static_cast<std::uint64_t>(n);
    cell.id = cell.spec.label();
    cell.repeats = ctx.repeats;
    campaign.cells.push_back(std::move(cell));
  }
  if (ctx.effort == Effort::kFull) {
    for (int n : {500, 1000, 2000}) {
      CampaignCell cell;
      cell.spec.kind = TopologyKind::kIsp;
      cell.spec.isp_source = IspSource::kGenerated;
      cell.spec.nodes = n;
      cell.spec.isp_pops = std::max(6, n / 25);
      cell.spec.seed = ctx.seed + static_cast<std::uint64_t>(n);
      cell.id = cell.spec.label();
      cell.repeats = 1;  // one trial per size: the axis is scale, not variance
      campaign.cells.push_back(std::move(cell));
    }
  }
  if (!apply_bench_args(args, campaign)) return 0;

  print_context(std::cout, "Table III: SLA violations vs. network size", ctx);
  const CampaignResult result = run_bench_campaign(args, campaign);
  const int failed_cells = report_cell_errors(result);

  Table table({"Nodes", "links(arcs)", "avg R", "avg NR", "top-10% R", "top-10% NR"});
  for (const CellResult& cell : result.cells) {
    if (!cell.error.empty()) continue;
    const auto agg = [&](const char* name) { return aggregate_metric(cell, name); };
    table.row()
        .integer(static_cast<long long>(agg("nodes").mean))
        .integer(static_cast<long long>(agg("arcs").mean))
        .mean_std(agg("beta_r").mean, agg("beta_r").stddev)
        .mean_std(agg("beta_nr").mean, agg("beta_nr").stddev)
        .mean_std(agg("beta_top10_r").mean, agg("beta_top10_r").stddev)
        .mean_std(agg("beta_top10_nr").mean, agg("beta_top10_nr").stddev);
  }
  print_banner(std::cout,
               "Table III (paper: R << NR at every size; NR's violations grow "
               "faster with size than R's)");
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return failed_cells > 0 ? 1 : 0;
}
