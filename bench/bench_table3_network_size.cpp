/// Table III — "SLA violations in RandTopo (different network sizes)".
///
/// RandTopo with mean degree 5 at increasing node counts; robust ("R") vs.
/// regular ("NR") average and top-10% SLA violations across all single link
/// failures. Paper claim: the benefits of robust optimization persist or
/// grow with network size (more path diversity to exploit).
///
/// Scaling: paper sizes are {30, 50, 100}; at smoke/quick effort we run
/// {12, 16, 24} so the sweep finishes in minutes (DTR_EFFORT=full restores
/// the paper's sizes).

#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Table III: SLA violations vs. network size", ctx);

  const std::vector<int> sizes = ctx.effort == Effort::kFull
                                     ? std::vector<int>{30, 50, 100}
                                     : std::vector<int>{12, 16, 24};

  Table table({"Nodes", "links(arcs)", "avg R", "avg NR", "top-10% R", "top-10% NR"});
  for (int n : sizes) {
    RunningStats beta_r, beta_nr, top_r, top_nr;
    std::size_t arcs = 0;
    for (int rep = 0; rep < ctx.repeats; ++rep) {
      WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
      spec.nodes = n;
      spec.degree = 5.0;
      spec.seed = ctx.seed + static_cast<std::uint64_t>(rep) * 101 + n;
      const Workload w = make_workload(spec);
      arcs = w.graph.num_arcs();
      const Evaluator evaluator(w.graph, w.traffic, w.params);
      const OptimizeResult r = run_optimizer(evaluator, ctx.effort, spec.seed);
      const FailureProfile robust = link_failure_profile(evaluator, r.robust);
      const FailureProfile regular = link_failure_profile(evaluator, r.regular);
      beta_r.add(robust.beta());
      beta_nr.add(regular.beta());
      top_r.add(robust.beta_top(0.10));
      top_nr.add(regular.beta_top(0.10));
    }
    table.row()
        .integer(n)
        .integer(static_cast<long long>(arcs))
        .mean_std(beta_r.mean(), beta_r.stddev())
        .mean_std(beta_nr.mean(), beta_nr.stddev())
        .mean_std(top_r.mean(), top_r.stddev())
        .mean_std(top_nr.mean(), top_nr.stddev());
  }
  print_banner(std::cout,
               "Table III (paper: R << NR at every size; NR's violations grow "
               "faster with size than R's)");
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
