/// Table V — "SLA violations in RandTopo as a function of SLA bound", the
/// Sec. V-E question: is a looser SLA a substitute for robust optimization?
///
/// Sweeps theta over {25, 30, 45, 60, 100} ms with the propagation diameter
/// FIXED (calibrated against 25 ms as footnote 14 prescribes), reporting per
/// optimization mode: average SLA violations across failures, average link
/// utilization, and average max utilization on delay-traffic paths.
/// Paper claims: (i) robust stays far ahead at every bound; (ii) regular
/// optimization often gets WORSE as theta loosens (delays grow to match, and
/// longer paths raise utilization).

#include <iostream>

#include "bench_common.h"
#include "core/metrics.h"
#include "util/stats.h"

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Table V: SLA-bound sweep (regular vs. robust)", ctx);

  const std::vector<double> bounds{25.0, 30.0, 45.0, 60.0, 100.0};

  struct Row {
    RunningStats violations, avg_util, max_path_util;
  };
  std::vector<Row> regular_rows(bounds.size()), robust_rows(bounds.size());

  for (int rep = 0; rep < ctx.repeats; ++rep) {
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
      spec.seed = ctx.seed + static_cast<std::uint64_t>(rep) * 101;
      spec.theta_ms = bounds[b];
      // Footnote 14: the network's maximum propagation delay stays fixed at
      // the 25ms calibration while theta alone is relaxed.
      Workload w = make_workload(spec);
      w.params.sla.theta_ms = bounds[b];
      Graph recalibrated = w.graph;
      calibrate_delays_to_sla(recalibrated, 25.0);
      w.graph = recalibrated;

      const Evaluator evaluator(w.graph, w.traffic, w.params);
      const OptimizeResult r = run_optimizer(evaluator, ctx.effort, spec.seed);

      const FailureProfile reg_profile = link_failure_profile(evaluator, r.regular);
      const FailureProfile rob_profile = link_failure_profile(evaluator, r.robust);
      const EvalResult reg_normal =
          evaluator.evaluate(r.regular, FailureScenario::none(), EvalDetail::kFull);
      const EvalResult rob_normal =
          evaluator.evaluate(r.robust, FailureScenario::none(), EvalDetail::kFull);

      regular_rows[b].violations.add(reg_profile.beta());
      regular_rows[b].avg_util.add(utilization_stats(reg_normal).average);
      regular_rows[b].max_path_util.add(average_max_path_utilization(evaluator, r.regular));
      robust_rows[b].violations.add(rob_profile.beta());
      robust_rows[b].avg_util.add(utilization_stats(rob_normal).average);
      robust_rows[b].max_path_util.add(average_max_path_utilization(evaluator, r.robust));
    }
  }

  auto emit = [&](const char* title, std::vector<Row>& rows) {
    Table table({"SLA bound (ms)", "avg SLA violations", "avg link util",
                 "avg max path util"});
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      table.row()
          .num(bounds[b], 0)
          .mean_std(rows[b].violations.mean(), rows[b].violations.stddev())
          .num(rows[b].avg_util.mean(), 2)
          .num(rows[b].max_path_util.mean(), 2);
    }
    print_banner(std::cout, title);
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.print_csv(std::cout);
  };

  emit("Table V — regular optimization (paper: violations do NOT fall as theta "
       "loosens; utilization creeps up)",
       regular_rows);
  emit("Table V — robust optimization (paper: violations shrink toward zero as "
       "theta loosens)",
       robust_rows);
  return 0;
}
