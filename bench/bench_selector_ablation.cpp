/// Sec. IV-C ablation — critical-link selector comparison under DTR.
///
/// The paper argues the prior single-routing selectors (random [Yuan 03],
/// load-based [Fortz 03], threshold-crossing [Sridharan 05]) "failed to
/// produce consistent results when applied to DTR". This bench quantifies
/// that: each selector picks |Ec| = 15% of links; Phase 2 then optimizes
/// against that set; we score the resulting routing across ALL link failures
/// against the full-search reference. Also compares the two sampling modes
/// of this implementation (paper-literal weight emulation vs. exact-failure
/// evaluation at the same trigger points).

#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  BenchContext ctx = context_from_env();
  // Seven optimizer runs per repeat (incl. the full-search reference) make
  // this bench heavy; cap repeats below paper effort.
  if (ctx.effort != Effort::kFull) ctx.repeats = std::min(ctx.repeats, 2);
  print_context(std::cout, "Sec. IV-C ablation: critical-link selectors", ctx);

  struct Variant {
    const char* name;
    SelectorKind selector;
    SamplingMode sampling;
  };
  const Variant variants[] = {
      {"full-search (reference)", SelectorKind::kFullSearch, SamplingMode::kExactFailure},
      {"distribution-gap + exact (ours)", SelectorKind::kDistributionGap,
       SamplingMode::kExactFailure},
      {"distribution-gap + emulated (paper-literal)", SelectorKind::kDistributionGap,
       SamplingMode::kEmulatedWeights},
      {"threshold-crossing [Sridharan 05]", SelectorKind::kThresholdCrossing,
       SamplingMode::kExactFailure},
      {"load-based [Fortz 03]", SelectorKind::kLoad, SamplingMode::kExactFailure},
      {"random [Yuan 03]", SelectorKind::kRandom, SamplingMode::kExactFailure},
      {"no robust opt (regular)", SelectorKind::kFullSearch, SamplingMode::kExactFailure},
  };

  struct Outcome {
    RunningStats beta, top, phi_gap_pct;
  };
  std::vector<Outcome> outcomes(std::size(variants));

  for (int rep = 0; rep < ctx.repeats; ++rep) {
    WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
    spec.util = {UtilizationTarget::Kind::kAverage, 0.50};
    spec.seed = ctx.seed + static_cast<std::uint64_t>(rep) * 101;
    const Workload w = make_workload(spec);
    const Evaluator evaluator(w.graph, w.traffic, w.params);

    // Reference run (index 0) provides beta_full and the Phi baseline.
    FailureProfile full_profile;
    for (std::size_t v = 0; v < std::size(variants); ++v) {
      const OptimizeResult r =
          run_optimizer(evaluator, ctx.effort, spec.seed, [&](OptimizerConfig& c) {
            c.selector = variants[v].selector;
            c.sampling_mode = variants[v].sampling;
          });
      const bool is_regular_row = std::string(variants[v].name).rfind("no robust", 0) == 0;
      const WeightSetting& routing = is_regular_row ? r.regular : r.robust;
      const FailureProfile profile = link_failure_profile(evaluator, routing);
      if (v == 0) full_profile = profile;
      outcomes[v].beta.add(profile.beta());
      outcomes[v].top.add(profile.beta_top(0.10));
      outcomes[v].phi_gap_pct.add(beta_phi_percent(profile, full_profile));
    }
  }

  Table table({"selector", "beta (avg violations)", "top-10%", "|Phi - Phi_full| (%)"});
  for (std::size_t v = 0; v < std::size(variants); ++v) {
    table.row()
        .cell(variants[v].name)
        .mean_std(outcomes[v].beta.mean(), outcomes[v].beta.stddev())
        .mean_std(outcomes[v].top.mean(), outcomes[v].top.stddev())
        .mean_std(outcomes[v].phi_gap_pct.mean(), outcomes[v].phi_gap_pct.stddev());
  }
  print_banner(std::cout,
               "Selector ablation at |Ec|/|E|=15% (paper: prior selectors are "
               "inconsistent under DTR; distribution-gap tracks full search)");
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
