/// Fig. 5 — network load and SLA-bound effects:
///   (a) per-failure SLA violations at medium (max util 0.74) and high (0.90)
///       load, robust vs. regular (sorted series)
///   (b) sorted end-to-end delays per SD pair under regular optimization in
///       RandTopo for SLA bounds {25, 45, 100} ms
///   (c) same as (b) for NearTopo
///   (d) max utilization of links carrying delay traffic per failure, under
///       regular optimization, theta in {30, 100} ms (RandTopo)
/// Paper shapes: (a) robust wins at both loads, less at 0.90; (b) delays grow
/// to track the loosened bound; (c) NearTopo's delay growth is muted;
/// (d) looser theta -> higher post-failure utilization on delay paths.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/metrics.h"
#include "graph/spf.h"

namespace {

using namespace dtr;
using namespace dtr::bench;

Workload loaded_workload(const BenchContext& ctx, double max_util, double theta) {
  WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
  spec.util = {UtilizationTarget::Kind::kMax, max_util};
  spec.theta_ms = theta;
  Workload w = make_workload(spec);
  // Keep the propagation diameter fixed to the 25ms calibration regardless
  // of theta (footnote 14).
  calibrate_delays_to_sla(w.graph, 25.0);
  return w;
}

std::vector<double> sorted_delay_series(const Evaluator& evaluator,
                                        const WeightSetting& w) {
  const EvalResult normal =
      evaluator.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  std::vector<double> delays;
  for (double d : normal.sd_delay_ms)
    if (d >= 0.0 && d != kInfDist) delays.push_back(d);
  std::sort(delays.begin(), delays.end());
  return delays;
}

}  // namespace

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Fig. 5: load levels and SLA-bound effects", ctx);

  // ---------------- (a): medium vs high load, robust vs regular ----------
  {
    Table table({"sorted failure idx", "R (0.74)", "NR (0.74)", "R (0.90)", "NR (0.90)"});
    std::vector<std::vector<double>> series;
    for (double max_util : {0.74, 0.90}) {
      const Workload w = loaded_workload(ctx, max_util, 25.0);
      const Evaluator evaluator(w.graph, w.traffic, w.params);
      const OptimizeResult r = run_optimizer(
          evaluator, ctx.effort, ctx.seed, [&](OptimizerConfig& c) {
            // Sec. V-D: the highly-loaded network uses a larger critical set.
            if (max_util > 0.8) c.critical_fraction = 0.25;
          });
      series.push_back(sorted_desc(link_failure_profile(evaluator, r.robust).violations));
      series.push_back(sorted_desc(link_failure_profile(evaluator, r.regular).violations));
    }
    for (std::size_t i = 0; i < series[0].size(); ++i) {
      table.row().integer(static_cast<long long>(i));
      for (const auto& s : series) table.num(i < s.size() ? s[i] : 0.0, 0);
    }
    print_banner(std::cout,
                 "Fig. 5(a): sorted per-failure SLA violations (paper: robust "
                 "wins at both loads; margins shrink at 0.90)");
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.print_csv(std::cout);
  }

  // ---------------- (b)/(c): sorted SD delays vs theta, regular opt ------
  for (const bool near : {false, true}) {
    std::vector<std::vector<double>> series;
    const std::vector<double> thetas{25.0, 45.0, 100.0};
    for (double theta : thetas) {
      WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
      if (near) spec.kind = TopologyKind::kNear;
      spec.theta_ms = theta;
      Workload w = make_workload(spec);
      calibrate_delays_to_sla(w.graph, 25.0);
      const Evaluator evaluator(w.graph, w.traffic, w.params);
      const OptimizeResult r = run_optimizer(evaluator, ctx.effort, ctx.seed);
      series.push_back(sorted_delay_series(evaluator, r.regular));
    }
    Table table({"sorted SD pair", "delay (theta=25)", "delay (theta=45)",
                 "delay (theta=100)"});
    for (std::size_t i = 0; i < series[0].size(); ++i) {
      table.row().integer(static_cast<long long>(i));
      for (const auto& s : series) table.num(i < s.size() ? s[i] : 0.0, 1);
    }
    print_banner(std::cout, near ? "Fig. 5(c): NearTopo sorted end-to-end delays "
                                   "(paper: growth muted by low diversity)"
                                 : "Fig. 5(b): RandTopo sorted end-to-end delays "
                                   "(paper: delays expand to track theta)");
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.print_csv(std::cout);
  }

  // ---------------- (d): max util of delay-carrying links per failure ----
  {
    std::vector<std::vector<double>> series;
    for (double theta : {30.0, 100.0}) {
      const Workload w = loaded_workload(ctx, 0.74, theta);
      const Evaluator evaluator(w.graph, w.traffic, w.params);
      const OptimizeResult r = run_optimizer(evaluator, ctx.effort, ctx.seed);
      std::vector<double> max_utils;
      for (LinkId l = 0; l < w.graph.num_links(); ++l) {
        const EvalResult failed =
            evaluator.evaluate(r.regular, FailureScenario::link(l), EvalDetail::kFull);
        double max_util = 0.0;
        for (ArcId a = 0; a < w.graph.num_arcs(); ++a)
          if (failed.carries_delay_traffic[a])
            max_util = std::max(max_util, failed.arc_utilization[a]);
        max_utils.push_back(max_util);
      }
      series.push_back(std::move(max_utils));
    }
    Table table({"failure link id", "max util (theta=30)", "max util (theta=100)"});
    for (std::size_t i = 0; i < series[0].size(); ++i) {
      table.row()
          .integer(static_cast<long long>(i))
          .num(series[0][i], 3)
          .num(i < series[1].size() ? series[1][i] : 0.0, 3);
    }
    print_banner(std::cout,
                 "Fig. 5(d): max utilization of delay-carrying links after each "
                 "failure, regular opt (paper: looser theta -> higher peaks)");
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.print_csv(std::cout);
  }
  return 0;
}
