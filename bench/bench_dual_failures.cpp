/// Extension bench — multiple (dual) link failures (Sec. V-F footnote 16:
/// the single-link-robust routing's advantage "was also observed for other
/// types of failure patterns, e.g., multiple link failures").
///
/// Samples random pairs of simultaneous link failures and compares the
/// regular and (single-link-)robust routings on violations. Disconnections
/// are possible under dual failures even in 2-edge-connected graphs, so the
/// unavoidable floor is reported alongside.

#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Extension: dual-link failures (footnote 16)", ctx);

  const std::size_t pair_samples = ctx.effort == Effort::kFull ? 200 : 60;
  RunningStats beta_r, beta_nr, top_r, top_nr, floor;

  for (int rep = 0; rep < ctx.repeats; ++rep) {
    WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
    spec.util = {UtilizationTarget::Kind::kAverage, 0.50};
    spec.seed = ctx.seed + static_cast<std::uint64_t>(rep) * 101;
    const Workload w = make_workload(spec);
    const Evaluator evaluator(w.graph, w.traffic, w.params);
    const OptimizeResult r = run_optimizer(evaluator, ctx.effort, spec.seed);

    Rng rng(spec.seed + 13);
    const auto scenarios = sample_dual_link_failures(w.graph, pair_samples, rng);
    const FailureProfile robust = profile_failures(evaluator, r.robust, scenarios);
    const FailureProfile regular = profile_failures(evaluator, r.regular, scenarios);
    beta_r.add(robust.beta());
    beta_nr.add(regular.beta());
    top_r.add(robust.beta_top(0.10));
    top_nr.add(regular.beta_top(0.10));
    floor.add(mean(unavoidable_violation_profile(evaluator, scenarios)));
  }

  Table table({"routing", "avg violations", "top-10%"});
  table.row().cell("robust (single-link-optimized)").mean_std(beta_r.mean(),
                                                              beta_r.stddev())
      .mean_std(top_r.mean(), top_r.stddev());
  table.row().cell("regular").mean_std(beta_nr.mean(), beta_nr.stddev())
      .mean_std(top_nr.mean(), top_nr.stddev());
  print_banner(std::cout,
               "Dual-link failures (paper: single-link robustness carries over; "
               "no added fragility)");
  table.print(std::cout);
  std::cout << "\nUnavoidable floor (propagation/disconnection lower bound): "
            << format_double(floor.mean()) << " (std " << format_double(floor.stddev())
            << ")\n";
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
