/// Table IV — "SLA violations in 30-node RandTopo (different mean degrees)".
///
/// Fixed node count, mean degree swept over {4, 6, 8}: more links means more
/// path diversity for the robust search to exploit. Paper claim: robust
/// gains persist/increase with degree; the regular routing stays fragile.

#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Table IV: SLA violations vs. mean node degree", ctx);

  const std::vector<double> degrees{4.0, 6.0, 8.0};
  Table table({"Mean degree", "links(arcs)", "avg R", "avg NR", "top-10% R",
               "top-10% NR"});
  for (double degree : degrees) {
    RunningStats beta_r, beta_nr, top_r, top_nr;
    std::size_t arcs = 0;
    for (int rep = 0; rep < ctx.repeats; ++rep) {
      WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
      spec.degree = degree;
      spec.seed = ctx.seed + static_cast<std::uint64_t>(rep) * 101 +
                  static_cast<std::uint64_t>(degree * 10);
      const Workload w = make_workload(spec);
      arcs = w.graph.num_arcs();
      const Evaluator evaluator(w.graph, w.traffic, w.params);
      const OptimizeResult r = run_optimizer(evaluator, ctx.effort, spec.seed);
      const FailureProfile robust = link_failure_profile(evaluator, r.robust);
      const FailureProfile regular = link_failure_profile(evaluator, r.regular);
      beta_r.add(robust.beta());
      beta_nr.add(regular.beta());
      top_r.add(robust.beta_top(0.10));
      top_nr.add(regular.beta_top(0.10));
    }
    table.row()
        .num(degree, 0)
        .integer(static_cast<long long>(arcs))
        .mean_std(beta_r.mean(), beta_r.stddev())
        .mean_std(beta_nr.mean(), beta_nr.stddev())
        .mean_std(top_r.mean(), top_r.stddev())
        .mean_std(top_nr.mean(), top_nr.stddev());
  }
  print_banner(std::cout,
               "Table IV (paper: higher degree -> more alternate paths -> "
               "robust routing approaches zero violations)");
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
