/// Table IV — "SLA violations in 30-node RandTopo (different mean degrees)".
///
/// Fixed node count, mean degree swept over {4, 6, 8}: more links means more
/// path diversity for the robust search to exploit. Paper claim: robust
/// gains persist/increase with degree; the regular routing stays fragile.
///
/// Runs as a campaign — one cell per degree, sharded across workers; see
/// bench_common.h for the standard flags.

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchArgs args = parse_bench_args(argc, argv);
  const BenchContext ctx = context_from_env();

  const std::vector<double> degrees{4.0, 6.0, 8.0};

  Campaign campaign;
  campaign.name = "table4_node_degree";
  campaign.effort = ctx.effort;
  campaign.seed = ctx.seed;
  for (double degree : degrees) {
    CampaignCell cell;
    cell.spec = default_rand_spec(ctx.effort, ctx.seed);
    cell.spec.degree = degree;
    cell.spec.seed = ctx.seed + static_cast<std::uint64_t>(degree * 10);
    cell.id = "degree=" + format_double(degree, 0);
    cell.repeats = ctx.repeats;
    campaign.cells.push_back(std::move(cell));
  }
  if (!apply_bench_args(args, campaign)) return 0;

  print_context(std::cout, "Table IV: SLA violations vs. mean node degree", ctx);
  const CampaignResult result = run_bench_campaign(args, campaign);
  const int failed_cells = report_cell_errors(result);

  Table table({"Mean degree", "links(arcs)", "avg R", "avg NR", "top-10% R",
               "top-10% NR"});
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& cell = result.cells[i];
    if (!cell.error.empty()) continue;
    const auto agg = [&](const char* name) { return aggregate_metric(cell, name); };
    table.row()
        .num(campaign.cells[i].spec.degree, 0)
        .integer(static_cast<long long>(agg("arcs").mean))
        .mean_std(agg("beta_r").mean, agg("beta_r").stddev)
        .mean_std(agg("beta_nr").mean, agg("beta_nr").stddev)
        .mean_std(agg("beta_top10_r").mean, agg("beta_top10_r").stddev)
        .mean_std(agg("beta_top10_nr").mean, agg("beta_top10_nr").stddev);
  }
  print_banner(std::cout,
               "Table IV (paper: higher degree -> more alternate paths -> "
               "robust routing approaches zero violations)");
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return failed_cells > 0 ? 1 : 0;
}
