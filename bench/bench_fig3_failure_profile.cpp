/// Fig. 3 — "Network performance with and without robust optimization":
/// per-failure-link series on RandTopo.
///   (a) number of SLA violations per failed link, robust vs. regular
///   (b) (normalized) throughput-sensitive traffic cost per failed link
/// Paper shape: the regular curve has tall spikes the robust curve flattens;
/// throughput cost is also protected on the worst failures.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Fig. 3: per-failure-link performance (RandTopo)", ctx);

  const WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
  const Workload w = make_workload(spec);
  const Evaluator evaluator(w.graph, w.traffic, w.params);
  const OptimizeResult r = run_optimizer(evaluator, ctx.effort, spec.seed);

  const FailureProfile robust = link_failure_profile(evaluator, r.robust);
  const FailureProfile regular = link_failure_profile(evaluator, r.regular);
  const auto robust_phi = robust.normalized_phi();
  const auto regular_phi = regular.normalized_phi();

  Table table({"failure link id", "violations robust", "violations regular",
               "phi* robust", "phi* regular"});
  for (std::size_t l = 0; l < robust.violations.size(); ++l) {
    table.row()
        .integer(static_cast<long long>(l))
        .num(robust.violations[l], 0)
        .num(regular.violations[l], 0)
        .num(robust_phi[l], 3)
        .num(regular_phi[l], 3);
  }
  print_banner(std::cout, "Fig. 3(a)+(b) series (phi* = Phi / uncapacitated bound)");
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);

  std::cout << "\nSummary: max violations regular="
            << format_double(*std::max_element(regular.violations.begin(),
                                               regular.violations.end()), 0)
            << " robust="
            << format_double(*std::max_element(robust.violations.begin(),
                                               robust.violations.end()), 0)
            << "; links where robust strictly wins: ";
  int wins = 0, losses = 0;
  for (std::size_t l = 0; l < robust.violations.size(); ++l) {
    if (robust.violations[l] < regular.violations[l]) ++wins;
    if (robust.violations[l] > regular.violations[l]) ++losses;
  }
  std::cout << wins << ", loses: " << losses << " of " << robust.violations.size()
            << "\n";
  return 0;
}
