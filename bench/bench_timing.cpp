/// Sec. IV-E2 — computational savings of the critical search
/// (google-benchmark binary).
///
/// The paper reports Phase 1 / Phase 2 wall-clock for critical vs. full
/// search on a 30-node, 240-arc RandTopo with |Ec|/|E| = 0.1: the critical
/// search trades a slightly longer Phase 1 (sampling) for an order-of-
/// magnitude shorter Phase 2 (56h -> 4h on their hardware). Absolute times
/// differ on modern machines; the claim is the RATIO, which this bench
/// reproduces, plus the |Ec| knob's proportional effect.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "experiments/bench_report.h"
#include "routing/failures.h"
#include "scenarios/scenario_set.h"
#include "telemetry/events.h"
#include "telemetry/telemetry.h"
#include "util/thread_pool.h"

namespace {

using namespace dtr;
using namespace dtr::bench;

struct TimingFixture {
  Workload workload;
  std::unique_ptr<Evaluator> evaluator;

  explicit TimingFixture(Effort effort, std::uint64_t seed) {
    WorkloadSpec spec = default_rand_spec(effort, seed);
    spec.degree = effort == Effort::kFull ? 8.0 : 5.0;  // paper: 30 nodes, 240 arcs
    workload = make_workload(spec);
    evaluator = std::make_unique<Evaluator>(workload.graph, workload.traffic,
                                            workload.params);
  }
};

TimingFixture& fixture() {
  static TimingFixture f(effort_from_env(Effort::kQuick), seed_from_env(1));
  return f;
}

void report_phases(benchmark::State& state, const OptimizeResult& r) {
  state.counters["phase1_s"] = r.phase1_seconds + r.phase1b_seconds;
  state.counters["phase2_s"] = r.phase2_seconds;
  state.counters["phase2_scenario_evals"] =
      static_cast<double>(r.phase2_scenario_evaluations);
  state.counters["Ec"] = static_cast<double>(r.critical.size());
}

void BM_CriticalSearch(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  const Effort effort = effort_from_env(Effort::kQuick);
  OptimizeResult last;
  for (auto _ : state) {
    last = run_optimizer(*fixture().evaluator, effort, seed_from_env(1),
                         [&](OptimizerConfig& c) { c.critical_fraction = fraction; });
  }
  report_phases(state, last);
}
BENCHMARK(BM_CriticalSearch)->Arg(10)->Arg(15)->Arg(25)->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_FullSearch(benchmark::State& state) {
  const Effort effort = effort_from_env(Effort::kQuick);
  OptimizeResult last;
  for (auto _ : state) {
    last = run_optimizer(*fixture().evaluator, effort, seed_from_env(1),
                         [](OptimizerConfig& c) { c.selector = SelectorKind::kFullSearch; });
  }
  report_phases(state, last);
}
BENCHMARK(BM_FullSearch)->Unit(benchmark::kSecond)->Iterations(1);

// ---------------------------------------------------------------------------
// Parallel scenario-evaluation engine scaling (OptimizerConfig::num_threads).
// Results are bit-identical across thread counts; only wall-clock changes.
// Arg(1) = the seed's sequential path, Arg(0) = one worker per hardware
// thread. On a >= 4-core machine the full failure sweep should scale ~linearly
// until memory bandwidth saturates.
// ---------------------------------------------------------------------------

void BM_FailureSweepThreads(benchmark::State& state) {
  const Evaluator& ev = *fixture().evaluator;
  WeightSetting w(ev.graph().num_links());
  Rng rng(seed_from_env(1));
  randomize_weights(w, 30, rng);
  const std::vector<FailureScenario> scenarios = all_link_failures(ev.graph());

  const int num_threads = static_cast<int>(state.range(0));
  ThreadPool pool(num_threads);
  double checksum = 0.0;
  for (auto _ : state) {
    const auto results = ev.evaluate_failures(w, scenarios, &pool);
    checksum += results.front().phi;
  }
  benchmark::DoNotOptimize(checksum);
  state.counters["links"] = static_cast<double>(ev.graph().num_links());
  state.counters["workers"] = static_cast<double>(pool.num_workers());
}
BENCHMARK(BM_FailureSweepThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Incremental (delta-SPF) failure evaluation vs full recompute
// (EvaluatorConfig::incremental), with and without the incremental delay DP
// (EvaluatorConfig::incremental_delay). Results are bit-identical — the
// acceptance metric is the wall-clock ratio on the all-link-failures sweep
// that dominates the optimizer's Phase 2 and every campaign profile.
// ---------------------------------------------------------------------------

void BM_FailureSweepIncremental(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  const bool delay_dp = state.range(1) != 0;
  const Workload& workload = fixture().workload;
  EvaluatorConfig config;
  config.incremental = incremental;
  config.incremental_delay = delay_dp;
  config.base_routing_cache = false;  // isolate the per-call cost
  const Evaluator ev(workload.graph, workload.traffic, workload.params, config);
  WeightSetting w(ev.graph().num_links());
  Rng rng(seed_from_env(1));
  randomize_weights(w, 30, rng);
  const std::vector<FailureScenario> scenarios = all_link_failures(ev.graph());

  double checksum = 0.0;
  for (auto _ : state) {
    const auto results = ev.evaluate_failures(w, scenarios);
    checksum += results.front().phi;
  }
  benchmark::DoNotOptimize(checksum);
  state.SetLabel(!incremental ? "full" : (delay_dp ? "incremental+delay-dp" : "incremental"));
  state.counters["links"] = static_cast<double>(ev.graph().num_links());
}
BENCHMARK(BM_FailureSweepIncremental)
    ->ArgNames({"incremental", "delay_dp"})
    ->Args({0, 0})->Args({1, 0})->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Telemetry overhead guard: the SAME all-link-failures sweep as
// BM_FailureSweepIncremental's fastest shape, once with a live counter
// registry attached (telemetry:1) and once with collection globally disabled
// (telemetry:0, what DTR_TELEMETRY_OFF gives). The acceptance target is
// <2% overhead on the instrumented run — counters are per-worker slab
// accumulation plus one relaxed-atomic publish per batch, so the two rows
// should be indistinguishable beyond noise.
// ---------------------------------------------------------------------------

void BM_FailureSweepTelemetry(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(instrumented);
  const Workload& workload = fixture().workload;
  telemetry::Registry registry;
  EvaluatorConfig config;
  config.base_routing_cache = false;  // isolate the per-call cost
  config.telemetry = &registry;
  const Evaluator ev(workload.graph, workload.traffic, workload.params, config);
  WeightSetting w(ev.graph().num_links());
  Rng rng(seed_from_env(1));
  randomize_weights(w, 30, rng);
  const std::vector<FailureScenario> scenarios = all_link_failures(ev.graph());

  double checksum = 0.0;
  for (auto _ : state) {
    const auto results = ev.evaluate_failures(w, scenarios);
    checksum += results.front().phi;
  }
  benchmark::DoNotOptimize(checksum);
  telemetry::set_enabled(was_enabled);
  state.SetLabel(instrumented ? "instrumented" : "telemetry-off");
  state.counters["links"] = static_cast<double>(ev.graph().num_links());
  state.counters["dests_delta"] = static_cast<double>(
      registry.snapshot(telemetry::Plane::kDeterministic).counter("spf.dests_delta"));
}
BENCHMARK(BM_FailureSweepTelemetry)
    ->ArgNames({"telemetry"})
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Event-bus overhead guard: the same all-link sweep, publishing one
// deterministic iteration record PER SCENARIO onto a live EventBus and
// draining it (events:1) vs the bare sweep (events:0). That is a far higher
// event rate than production — the optimizer publishes per ACCEPTED MOVE,
// orders of magnitude rarer than evaluations — so the <2% acceptance target
// here bounds the real overhead from well above. Serialization to JSONL is
// deliberately absent: it happens at export time, off the hot path.
// ---------------------------------------------------------------------------

void BM_EventBusOverhead(benchmark::State& state) {
  const bool events_on = state.range(0) != 0;
  const Workload& workload = fixture().workload;
  EvaluatorConfig config;
  config.base_routing_cache = false;  // isolate the per-call cost
  const Evaluator ev(workload.graph, workload.traffic, workload.params, config);
  WeightSetting w(ev.graph().num_links());
  Rng rng(seed_from_env(1));
  randomize_weights(w, 30, rng);
  const std::vector<FailureScenario> scenarios = all_link_failures(ev.graph());

  telemetry::EventBus bus(1 << 12);
  std::uint64_t published = 0;
  double checksum = 0.0;
  for (auto _ : state) {
    const auto results = ev.evaluate_failures(w, scenarios);
    checksum += results.front().phi;
    if (events_on) {
      for (std::size_t i = 0; i < results.size(); ++i) {
        telemetry::Event e;
        e.kind = telemetry::EventKind::kIteration;
        e.label = "phase2";
        e.iteration = static_cast<std::uint64_t>(i);
        e.evaluations = static_cast<std::uint64_t>(i);
        e.link = static_cast<std::int64_t>(i);
        e.cost_lambda = results[i].sla_violations;
        e.cost_phi = results[i].phi;
        telemetry::publish_deterministic(&bus, std::move(e));
      }
      published += bus.drain().size();
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetLabel(events_on ? "events-on" : "events-off");
  state.counters["links"] = static_cast<double>(ev.graph().num_links());
  state.counters["events_per_iter"] =
      events_on ? static_cast<double>(scenarios.size()) : 0.0;
  if (events_on && bus.dropped() > 0) state.SkipWithError("event bus overflowed");
  benchmark::DoNotOptimize(published);
}
BENCHMARK(BM_EventBusOverhead)
    ->ArgNames({"events"})
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Compound-failure (scenario-catalog) sweep: a budget-capped 2-link catalog
// with rate-derived weights, aggregated through the weighted Evaluator::sweep.
// Compound scenarios remove 4 arcs each, so this measures the multi-arc
// delta-SPF patching path the SRLG/k-link workloads lean on. Results are
// bit-identical across the toggle; the acceptance metric is the ratio.
// ---------------------------------------------------------------------------

void BM_CompoundFailureSweep(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  const Workload& workload = fixture().workload;
  EvaluatorConfig config;
  config.incremental = incremental;
  config.base_routing_cache = false;  // isolate the per-call cost
  const Evaluator ev(workload.graph, workload.traffic, workload.params, config);
  WeightSetting w(ev.graph().num_links());
  Rng rng(seed_from_env(1));
  randomize_weights(w, 30, rng);
  ScenarioSet set = enumerate_k_link_failures(
      ev.graph(), {2, 2 * ev.graph().num_links(), seed_from_env(1)});
  apply_rate_weights(set, derive_failure_rates(ev.graph()));

  double checksum = 0.0;
  for (auto _ : state) {
    const SweepResult r = ev.sweep(w, set.scenarios(), {.scenario_weights = set.weights()});
    checksum += r.phi;
  }
  benchmark::DoNotOptimize(checksum);
  state.SetLabel(incremental ? "incremental" : "full");
  state.counters["scenarios"] = static_cast<double>(set.size());
}
BENCHMARK(BM_CompoundFailureSweep)
    ->ArgNames({"incremental"})
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Base-routing cache (EvaluatorConfig::base_routing_cache) on the Phase-2
// local-search workload: every candidate is a normal evaluation followed by
// a critical-scenario sweep of the SAME weights, so the cache turns two full
// base routings per candidate into one (plus delay-DP skips inside the
// sweep). Results are bit-identical; this bench is the PR's before/after
// acceptance number.
// ---------------------------------------------------------------------------

void BM_Phase2BaseCache(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  const Effort effort = effort_from_env(Effort::kQuick);
  const Workload& workload = fixture().workload;
  EvaluatorConfig config;
  config.base_routing_cache = cached;
  const Evaluator ev(workload.graph, workload.traffic, workload.params, config);
  OptimizeResult last;
  for (auto _ : state) {
    last = run_optimizer(ev, effort, seed_from_env(1), [](OptimizerConfig&) {});
  }
  report_phases(state, last);
  state.SetLabel(cached ? "base-cache" : "no-cache");
  state.counters["cache_hits"] = static_cast<double>(last.base_cache_hits());
  state.counters["cache_misses"] = static_cast<double>(last.base_cache_misses());
}
BENCHMARK(BM_Phase2BaseCache)->Arg(0)->Arg(1)->Unit(benchmark::kSecond)->Iterations(1);

// ---------------------------------------------------------------------------
// Weight-delta donor patching on the Phase-1 probe shape: a cached incumbent,
// then a batch of candidates each differing on ONE link. With patching on
// (max_links:1) every probe's base — labels, DAGs, loads, delay columns — is
// delta-patched from the incumbent via delta_spf_update_arcs + record replay;
// with it off (max_links:0) every probe pays two full all-destination
// Dijkstra builds. Results are bit-identical; the ratio is this PR's Phase-1
// acceptance number. Evaluator construction + incumbent seeding sit outside
// the timed region so only the probe evaluations are measured.
// ---------------------------------------------------------------------------

void BM_Phase1ProbePatching(benchmark::State& state) {
  const auto max_links = static_cast<std::size_t>(state.range(0));
  const Workload& workload = fixture().workload;
  EvaluatorConfig config;
  config.weight_delta_max_links = max_links;
  config.base_cache_capacity = 64;  // incumbent stays resident across the batch
  const std::size_t num_links = workload.graph.num_links();
  WeightSetting incumbent(num_links);
  Rng rng(seed_from_env(1));
  randomize_weights(incumbent, 30, rng);
  const std::size_t num_probes = std::min<std::size_t>(16, num_links);
  std::vector<WeightSetting> probes;
  for (std::size_t p = 0; p < num_probes; ++p) {
    WeightSetting probe = incumbent;
    // 31 + p is above the randomize_weights range, so every probe is a
    // guaranteed single-link diff from the incumbent (a fresh cache miss).
    probe.set(TrafficClass::kDelay, static_cast<LinkId>(p),
              31 + static_cast<int>(p));
    probes.push_back(std::move(probe));
  }

  double checksum = 0.0;
  std::uint64_t patched = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Evaluator ev(workload.graph, workload.traffic, workload.params, config);
    checksum += ev.evaluate(incumbent, FailureScenario::none()).phi;
    state.ResumeTiming();
    for (const WeightSetting& probe : probes)
      checksum += ev.evaluate(probe, FailureScenario::none()).phi;
    state.PauseTiming();
    patched = ev.base_cache_stats().weight_patched;
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(checksum);
  state.SetLabel(max_links > 0 ? "donor-patched" : "full-build");
  state.counters["probes"] = static_cast<double>(num_probes);
  state.counters["weight_patched"] = static_cast<double>(patched);
}
BENCHMARK(BM_Phase1ProbePatching)
    ->ArgNames({"max_links"})
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Cross-trial base sharing in the fluctuated-TM stress sweep: shared:1 runs
// evaluate_fluctuations' shared-labels path (SPF labels + failure patching
// computed once per weight setting, reused across every perturbed trial —
// only load aggregation reruns per trial); shared:0 forces the per-trial
// reference shape where each of the `trials` evaluators rebuilds routing
// from scratch for every (routing, failure) pair. Series are bit-identical;
// the ratio is this PR's fluctuation acceptance number.
// ---------------------------------------------------------------------------

void BM_FluctuationSweep(benchmark::State& state) {
  const bool shared = state.range(0) != 0;
  const Workload& workload = fixture().workload;
  EvaluatorConfig config;
  config.incremental = shared;  // the shared-labels path rides the HOW-knob
  Rng rng(seed_from_env(1));
  std::vector<WeightSetting> routings(2, WeightSetting(workload.graph.num_links()));
  for (WeightSetting& w : routings) randomize_weights(w, 30, rng);
  std::vector<LinkId> top;
  for (LinkId l = 0; l < std::min<std::size_t>(6, workload.graph.num_links()); ++l)
    top.push_back(l);
  FluctuationSpec fluct;
  fluct.model = FluctuationSpec::Model::kGaussian;
  fluct.trials = 8;

  double checksum = 0.0;
  for (auto _ : state) {
    const auto series = evaluate_fluctuations(workload, routings, top, fluct,
                                              seed_from_env(1), nullptr, config);
    checksum += series.front().mean_phi.front();
  }
  benchmark::DoNotOptimize(checksum);
  state.SetLabel(shared ? "shared-labels" : "per-trial-full");
  state.counters["trials"] = static_cast<double>(fluct.trials);
  state.counters["routings"] = static_cast<double>(routings.size());
}
BENCHMARK(BM_FluctuationSweep)
    ->ArgNames({"shared"})
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Catalog-objective Phase 2 (HardeningObjective): the optimizer hardened
// against a rate-weighted 2-link catalog under each aggregation mode, vs.
// the classic per-link pipeline of BM_CriticalSearch. Expected cost rides
// the weighted early-abort sweep, downtime the violation-bound abort,
// percentile pays full sweeps — the counters expose how many scenario
// evaluations each mode needed for the same phase structure.
// ---------------------------------------------------------------------------

void BM_Phase2CatalogObjective(benchmark::State& state) {
  const auto mode = static_cast<AggregationMode>(state.range(0));
  const Effort effort = effort_from_env(Effort::kQuick);
  const Evaluator& ev = *fixture().evaluator;

  ScenarioSet set = enumerate_k_link_failures(
      ev.graph(), {2, 2 * ev.graph().num_links(), seed_from_env(1)});
  apply_rate_weights(set, derive_failure_rates(ev.graph()));
  HardeningObjective objective;
  objective.set = std::move(set);
  objective.mode = mode;

  OptimizeResult last;
  for (auto _ : state) {
    last = run_optimizer(ev, effort, seed_from_env(1),
                         [&](OptimizerConfig& c) { c.objective = objective; });
  }
  report_phases(state, last);
  state.SetLabel(std::string(to_string(mode)));
  state.counters["catalog"] = static_cast<double>(last.catalog_size);
  state.counters["Sc"] = static_cast<double>(last.critical_scenarios.size());
}
BENCHMARK(BM_Phase2CatalogObjective)
    ->Arg(static_cast<int>(AggregationMode::kExpectedCost))
    ->Arg(static_cast<int>(AggregationMode::kWeightedPercentile))
    ->Arg(static_cast<int>(AggregationMode::kExpectedDowntime))
    ->Unit(benchmark::kSecond)->Iterations(1);

// ---------------------------------------------------------------------------
// ISP-scale tier: the generated Rocketfuel-style topology axis at network
// sizes far beyond the paper tables, iterating the CSR graph core. The sweep
// row tracks the production campaign profile (incremental + base cache) on an
// all-link failure sweep; the optimize row tracks end-to-end robust search
// cost growth. Search effort is pinned to kSmoke so the rows measure
// per-candidate cost scaling, not search quality, and stay minutes-bounded
// in the CI perf job.
// ---------------------------------------------------------------------------

const Workload& isp_workload(int nodes) {
  static std::map<int, Workload> cache;
  auto [it, inserted] = cache.try_emplace(nodes);
  if (inserted) {
    WorkloadSpec spec;
    spec.kind = TopologyKind::kIsp;
    spec.isp_source = IspSource::kGenerated;
    spec.nodes = nodes;
    spec.isp_pops = std::max(6, nodes / 25);
    spec.seed = seed_from_env(1);
    it->second = make_workload(spec);
  }
  return it->second;
}

void BM_IspScaleSweep(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const Workload& workload = isp_workload(nodes);
  const Evaluator ev(workload.graph, workload.traffic, workload.params);
  WeightSetting w(ev.graph().num_links());
  Rng rng(seed_from_env(1));
  randomize_weights(w, 30, rng);
  const std::vector<FailureScenario> scenarios = all_link_failures(ev.graph());

  double checksum = 0.0;
  for (auto _ : state) {
    const auto results = ev.evaluate_failures(w, scenarios);
    checksum += results.front().phi;
  }
  benchmark::DoNotOptimize(checksum);
  state.counters["nodes"] = static_cast<double>(ev.graph().num_nodes());
  state.counters["links"] = static_cast<double>(ev.graph().num_links());
}
BENCHMARK(BM_IspScaleSweep)
    ->ArgNames({"nodes"})
    ->Arg(300)->Arg(1000)
    ->Unit(benchmark::kSecond)->Iterations(1);

void BM_IspScaleOptimize(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const Workload& workload = isp_workload(nodes);
  const Evaluator ev(workload.graph, workload.traffic, workload.params);
  OptimizeResult last;
  for (auto _ : state) {
    last = run_optimizer(ev, Effort::kSmoke, seed_from_env(1),
                         [](OptimizerConfig& c) {
                           // Every default search budget grows with |E|: one
                           // local-search iteration probes EVERY link, the
                           // stall-based phases run to ~1600 such passes, the
                           // Phase-1b sample budget is 20*tau*|E|, and every
                           // Phase-2 probe sweeps the critical set. Pin all
                           // of them so this row measures per-probe cost
                           // growth along the size axis, not a budget formula
                           // that grows with the axis itself.
                           c.max_phase1b_samples = 500;
                           c.phase1.max_iterations = 2;
                           c.phase2.max_iterations = 1;
                           c.critical_count = 8;
                         });
  }
  report_phases(state, last);
  state.counters["nodes"] = static_cast<double>(ev.graph().num_nodes());
  state.counters["links"] = static_cast<double>(ev.graph().num_links());
}
BENCHMARK(BM_IspScaleOptimize)
    ->ArgNames({"nodes"})
    ->Arg(300)
    ->Unit(benchmark::kSecond)->Iterations(1);

void BM_CriticalSearchThreads(benchmark::State& state) {
  const Effort effort = effort_from_env(Effort::kQuick);
  const int num_threads = static_cast<int>(state.range(0));
  OptimizeResult last;
  for (auto _ : state) {
    last = run_optimizer(*fixture().evaluator, effort, seed_from_env(1),
                         [&](OptimizerConfig& c) { c.num_threads = num_threads; });
  }
  report_phases(state, last);
  state.counters["workers"] = static_cast<double>(
      num_threads == 0 ? std::thread::hardware_concurrency() : num_threads);
}
BENCHMARK(BM_CriticalSearchThreads)->Arg(1)->Arg(0)->Unit(benchmark::kSecond)
    ->Iterations(1);

/// Console reporter that also collects every run for the dtr.bench.v1
/// perf-trajectory artifact (--bench-json). Only fields stable across
/// google-benchmark 1.7-1.8 are touched.
class CollectingReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      dtr::experiments::BenchEntry entry;
      entry.name = run.benchmark_name();
      if (run.iterations > 0)
        entry.real_ms =
            run.real_accumulated_time / static_cast<double>(run.iterations) * 1e3;
      for (const auto& [name, counter] : run.counters)
        entry.counters.emplace_back(name, counter.value);
      entries.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<dtr::experiments::BenchEntry> entries;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip the artifact flags before google-benchmark parses the rest.
  std::string bench_json, bench_sha;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--bench-json") bench_json = next();
    else if (arg == "--bench-sha") bench_sha = next();
    else passthrough.push_back(argv[i]);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!bench_json.empty()) {
    dtr::experiments::BenchReport report;
    report.sha = bench_sha;
    report.effort = to_string(effort_from_env(Effort::kQuick));
    report.entries = std::move(reporter.entries);
    std::ofstream out(bench_json);
    if (!out) {
      std::cerr << "cannot write " << bench_json << "\n";
      return 1;
    }
    dtr::experiments::write_bench_json(out, report);
    std::cout << "wrote bench JSON to " << bench_json << "\n";
  }
  return 0;
}
