#pragma once

/// Shared harness for the bench binaries: brings the tested experiment /
/// campaign modules (src/experiments) into the dtr::bench namespace and
/// implements the standard campaign CLI every sweep-style bench supports:
///
///   --json PATH        write the campaign's schema-versioned JSON artifact
///   --filter SUBSTR    run only cells whose id contains SUBSTR
///   --list             print the cell ids and exit
///   --workers N        cell-level shards (default 0 = hardware concurrency)
///   --inner-threads N  per-cell engine threads when cells run sequentially
///   --no-incremental   disable the delta-SPF failure-evaluation fast path
///   --no-base-cache    disable the weights-keyed base-routing cache
///   --no-delay-dp      disable the incremental end-to-end delay DP
///
/// The JSON artifact is byte-identical for any --workers/--inner-threads
/// combination (the campaign engine's determinism contract), so artifacts
/// from different machines/shard counts diff clean.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "experiments/campaign.h"
#include "experiments/results.h"
#include "experiments/workloads.h"

namespace dtr::bench {
using namespace dtr::experiments;  // NOLINT(google-build-using-namespace)

struct BenchArgs {
  std::string json_path;
  std::string filter;
  bool list = false;
  int workers = 0;
  int inner_threads = 1;
  EvaluatorConfig eval_config{};
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    const auto next_count = [&]() -> int {
      const std::string text = next();
      if (const auto count = parse_worker_count(text); count.has_value())
        return *count;
      std::cerr << argv[0] << ": " << arg << " needs a count in [0, 4096], got '"
                << text << "'\n";
      std::exit(2);
    };
    if (arg == "--list") args.list = true;
    else if (arg == "--json") args.json_path = next();
    else if (arg == "--filter") args.filter = next();
    else if (arg == "--workers") args.workers = next_count();
    else if (arg == "--inner-threads") args.inner_threads = next_count();
    else if (arg == "--no-incremental") args.eval_config.incremental = false;
    else if (arg == "--no-base-cache") args.eval_config.base_routing_cache = false;
    else if (arg == "--no-delay-dp") args.eval_config.incremental_delay = false;
    else {
      std::cerr << argv[0] << ": unknown flag " << arg
                << " (flags: --json PATH, --filter SUBSTR, --list, --workers N, "
                   "--inner-threads N, --no-incremental, --no-base-cache, "
                   "--no-delay-dp)\n";
      std::exit(2);
    }
  }
  return args;
}

/// Applies --filter/--list to the campaign. Returns false when the binary
/// should exit immediately (list mode; the ids were printed).
inline bool apply_bench_args(const BenchArgs& args, Campaign& campaign) {
  filter_cells(campaign, args.filter);
  if (args.list) {
    for (const CampaignCell& cell : campaign.cells) std::cout << cell.id << "\n";
    return false;
  }
  return true;
}

/// Runs the campaign sharded per the CLI args and writes the JSON artifact
/// when --json was given.
inline CampaignResult run_bench_campaign(const BenchArgs& args, const Campaign& campaign) {
  CampaignResult result =
      run_campaign(campaign, {args.workers, args.inner_threads, args.eval_config});
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cerr << "cannot write " << args.json_path << "\n";
      std::exit(1);
    }
    write_campaign_json(out, result);
    std::cout << "wrote campaign JSON to " << args.json_path << "\n";
  }
  return result;
}

/// Prints "cell X failed: ..." for failed cells; returns the failure count.
inline int report_cell_errors(const CampaignResult& result) {
  int failures = 0;
  for (const CellResult& cell : result.cells) {
    if (!cell.error.empty()) {
      std::cerr << "cell " << cell.id << " failed: " << cell.error << "\n";
      ++failures;
    }
  }
  return failures;
}

}  // namespace dtr::bench
