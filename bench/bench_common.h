#pragma once

/// Bench binaries build their instances through the tested library module
/// src/experiments/workloads.h; this header just brings that API into the
/// dtr::bench namespace the binaries use.

#include "experiments/workloads.h"

namespace dtr::bench {
using namespace dtr::experiments;  // NOLINT(google-build-using-namespace)
}  // namespace dtr::bench
