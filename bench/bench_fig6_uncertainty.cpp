/// Fig. 6 — sensitivity to traffic uncertainty (Sec. V-F):
///   (a)/(b) Gaussian random-fluctuation model (epsilon = 0.2), base TM at
///           90% max utilization under robust optimization
///   (c)/(d) download hot-spot model (10% servers, 50% clients, x2-6), base
///           TM at 74% max utilization
/// Series: SLA violations and normalized Phi over the top-10% worst failure
/// links, for Robust(perturbed TM), NoRobust(perturbed TM), Robust(base TM).
/// Paper claims: robust's advantage survives TM error; performance under
/// perturbed traffic stays close to the base-TM curve.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.h"
#include "traffic/uncertainty.h"
#include "util/stats.h"

namespace {

using namespace dtr;
using namespace dtr::bench;

struct TopSeries {
  std::vector<double> mean_violations;  // per top-failure index
  std::vector<double> std_violations;
  std::vector<double> mean_phi;
  std::vector<double> std_phi;
};

/// Evaluates routing `w` under `trials` perturbed matrices, on the failure
/// set `top` (indices into the link-failure scenario list).
template <typename MakeTraffic>
TopSeries stress_series(const Workload& base, const WeightSetting& w,
                        const std::vector<LinkId>& top, int trials,
                        std::uint64_t seed, MakeTraffic&& make_traffic) {
  Rng rng(seed);
  std::vector<RunningStats> violations(top.size()), phi(top.size());
  for (int t = 0; t < trials; ++t) {
    const ClassedTraffic actual = make_traffic(rng);
    const Evaluator evaluator(base.graph, actual, base.params);
    for (std::size_t i = 0; i < top.size(); ++i) {
      const EvalResult r = evaluator.evaluate(w, FailureScenario::link(top[i]));
      violations[i].add(static_cast<double>(r.sla_violations));
      phi[i].add(r.phi / std::max(evaluator.phi_uncap(), 1e-9));
    }
  }
  TopSeries out;
  for (std::size_t i = 0; i < top.size(); ++i) {
    out.mean_violations.push_back(violations[i].mean());
    out.std_violations.push_back(violations[i].stddev());
    out.mean_phi.push_back(phi[i].mean());
    out.std_phi.push_back(phi[i].stddev());
  }
  return out;
}

template <typename MakeTraffic>
void run_model(const BenchContext& ctx, const char* name, double max_util,
               int trials, MakeTraffic&& make_traffic_for) {
  WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
  spec.util = {UtilizationTarget::Kind::kMax, max_util};
  const Workload w = make_workload(spec);
  const Evaluator base_evaluator(w.graph, w.traffic, w.params);
  const OptimizeResult opt =
      run_optimizer(base_evaluator, ctx.effort, ctx.seed, [&](OptimizerConfig& c) {
        // Sec. V-D: highly-loaded networks use a larger critical set.
        if (max_util > 0.8) c.critical_fraction = 0.25;
      });

  // Top-10% worst failure links, ranked by the damage they do to the
  // UNPROTECTED (regular) routing on the base TM — the stress cases the
  // paper's figure magnifies. (Ranking by the robust routing's own worst
  // failures would condition the comparison against it.)
  const FailureProfile regular_base = link_failure_profile(base_evaluator, opt.regular);
  const FailureProfile base_profile = link_failure_profile(base_evaluator, opt.robust);
  std::vector<std::size_t> order(regular_base.violations.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (regular_base.violations[a] != regular_base.violations[b])
      return regular_base.violations[a] > regular_base.violations[b];
    return regular_base.phi[a] > regular_base.phi[b];
  });
  const std::size_t top_count =
      std::max<std::size_t>(2, order.size() / 10 + (order.size() % 10 ? 1 : 0));
  std::vector<LinkId> top;
  for (std::size_t i = 0; i < top_count; ++i) top.push_back(static_cast<LinkId>(order[i]));

  auto make_traffic = make_traffic_for(w);
  const TopSeries robust_pert =
      stress_series(w, opt.robust, top, trials, ctx.seed + 7, make_traffic);
  const TopSeries regular_pert =
      stress_series(w, opt.regular, top, trials, ctx.seed + 7, make_traffic);

  Table table({"top failure idx", "R perturbed (std)", "NR perturbed (std)", "R base",
               "phi* R perturbed (std)", "phi* NR perturbed (std)", "phi* R base"});
  for (std::size_t i = 0; i < top.size(); ++i) {
    table.row()
        .integer(static_cast<long long>(i))
        .mean_std(robust_pert.mean_violations[i], robust_pert.std_violations[i], 1)
        .mean_std(regular_pert.mean_violations[i], regular_pert.std_violations[i], 1)
        .num(base_profile.violations[top[i]], 0)
        .mean_std(robust_pert.mean_phi[i], robust_pert.std_phi[i], 3)
        .mean_std(regular_pert.mean_phi[i], regular_pert.std_phi[i], 3)
        .num(base_profile.phi[top[i]] / std::max(base_profile.phi_uncap, 1e-9), 3);
  }
  print_banner(std::cout, name);
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\nAggregates: R-perturbed beta_top="
            << format_double(mean(robust_pert.mean_violations))
            << "  NR-perturbed beta_top="
            << format_double(mean(regular_pert.mean_violations)) << "\n";
}

}  // namespace

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Fig. 6: robustness to traffic uncertainty", ctx);
  const int trials = ctx.effort == Effort::kFull ? 100
                     : ctx.effort == Effort::kQuick ? 25
                                                    : 5;

  run_model(ctx,
            "Fig. 6(a)(b): Gaussian fluctuation model, epsilon=0.2, base at 90% "
            "max util (paper: robust stays ahead; perturbed ~= base)",
            0.90, trials, [](const Workload& w) {
              return [&w](Rng& rng) {
                return apply_gaussian_fluctuation(w.traffic, {0.2}, rng);
              };
            });

  run_model(ctx,
            "Fig. 6(c)(d): download hot-spot model (10% servers, 50% clients, "
            "x2-6), base at 74% max util",
            0.74, trials, [](const Workload& w) {
              return [&w](Rng& rng) {
                return apply_hot_spot(w.traffic,
                                      {HotSpotParams::Direction::kDownload, 0.1, 0.5,
                                       2.0, 6.0},
                                      rng);
              };
            });
  return 0;
}
