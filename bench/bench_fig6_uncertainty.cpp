/// Fig. 6 — sensitivity to traffic uncertainty (Sec. V-F):
///   (a)/(b) Gaussian random-fluctuation model (epsilon = 0.2), base TM at
///           90% max utilization under robust optimization
///   (c)/(d) download hot-spot model (10% servers, 50% clients, x2-6), base
///           TM at 74% max utilization
/// Series: SLA violations and normalized Phi over the top-10% worst failure
/// links, for Robust(perturbed TM), NoRobust(perturbed TM), Robust(base TM).
/// Paper claims: robust's advantage survives TM error; performance under
/// perturbed traffic stays close to the base-TM curve.
///
/// Runs as a campaign: one cell per uncertainty model. The fluctuated-TM
/// loop is the campaign engine's batched `evaluate_fluctuations` — trials
/// are drawn from one sequential stream, then sharded with a per-trial
/// Evaluator on top of per-worker routing scratch. See bench_common.h for
/// the standard flags.

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "util/stats.h"

namespace {

using namespace dtr;
using namespace dtr::bench;

void print_cell(const CellResult& cell, const std::string& banner) {
  if (!cell.error.empty()) return;
  const MetricRow& rep = cell.reps.front();
  const std::vector<double>& vr = *rep.get_series("pert_violations_r_mean");
  const std::vector<double>& vr_std = *rep.get_series("pert_violations_r_std");
  const std::vector<double>& vnr = *rep.get_series("pert_violations_nr_mean");
  const std::vector<double>& vnr_std = *rep.get_series("pert_violations_nr_std");
  const std::vector<double>& pr = *rep.get_series("pert_phi_r_mean");
  const std::vector<double>& pr_std = *rep.get_series("pert_phi_r_std");
  const std::vector<double>& pnr = *rep.get_series("pert_phi_nr_mean");
  const std::vector<double>& pnr_std = *rep.get_series("pert_phi_nr_std");
  const std::vector<double>& base_v = *rep.get_series("base_violations_r");
  const std::vector<double>& base_phi = *rep.get_series("base_phi_r");

  Table table({"top failure idx", "R perturbed (std)", "NR perturbed (std)", "R base",
               "phi* R perturbed (std)", "phi* NR perturbed (std)", "phi* R base"});
  for (std::size_t i = 0; i < vr.size(); ++i) {
    table.row()
        .integer(static_cast<long long>(i))
        .mean_std(vr[i], vr_std[i], 1)
        .mean_std(vnr[i], vnr_std[i], 1)
        .num(base_v[i], 0)
        .mean_std(pr[i], pr_std[i], 3)
        .mean_std(pnr[i], pnr_std[i], 3)
        .num(base_phi[i], 3);
  }
  print_banner(std::cout, banner);
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\nAggregates: R-perturbed beta_top="
            << format_double(rep.get("pert_beta_top_r"))
            << "  NR-perturbed beta_top=" << format_double(rep.get("pert_beta_top_nr"))
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  const BenchContext ctx = context_from_env();
  const int trials = ctx.effort == Effort::kFull ? 100
                     : ctx.effort == Effort::kQuick ? 25
                                                    : 5;

  Campaign campaign;
  campaign.name = "fig6_uncertainty";
  campaign.effort = ctx.effort;
  campaign.seed = ctx.seed;
  {
    CampaignCell cell;
    cell.id = "gaussian";
    cell.spec = default_rand_spec(ctx.effort, ctx.seed);
    cell.spec.util = {UtilizationTarget::Kind::kMax, 0.90};
    // Sec. V-D: highly-loaded networks use a larger critical set.
    cell.critical_fraction = 0.25;
    cell.fluctuation.model = FluctuationSpec::Model::kGaussian;
    cell.fluctuation.gaussian = {0.2};
    cell.fluctuation.trials = trials;
    campaign.cells.push_back(std::move(cell));
  }
  {
    CampaignCell cell;
    cell.id = "hotspot";
    cell.spec = default_rand_spec(ctx.effort, ctx.seed);
    cell.spec.util = {UtilizationTarget::Kind::kMax, 0.74};
    cell.fluctuation.model = FluctuationSpec::Model::kHotSpot;
    cell.fluctuation.hot_spot = {HotSpotParams::Direction::kDownload, 0.1, 0.5, 2.0, 6.0};
    cell.fluctuation.trials = trials;
    campaign.cells.push_back(std::move(cell));
  }
  if (!apply_bench_args(args, campaign)) return 0;

  print_context(std::cout, "Fig. 6: robustness to traffic uncertainty", ctx);
  const CampaignResult result = run_bench_campaign(args, campaign);
  const int failed_cells = report_cell_errors(result);

  if (const CellResult* cell = result.find("gaussian"); cell != nullptr)
    print_cell(*cell,
               "Fig. 6(a)(b): Gaussian fluctuation model, epsilon=0.2, base at 90% "
               "max util (paper: robust stays ahead; perturbed ~= base)");
  if (const CellResult* cell = result.find("hotspot"); cell != nullptr)
    print_cell(*cell,
               "Fig. 6(c)(d): download hot-spot model (10% servers, 50% clients, "
               "x2-6), base at 74% max util");
  return failed_cells > 0 ? 1 : 0;
}
