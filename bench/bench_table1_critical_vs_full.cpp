/// Table I — "Critical vs. full search for different topologies", plus the
/// high-load variant discussed in Sec. IV-E1.
///
/// For each topology: run the robust optimization with the brute-force
/// critical set (Ec = E, "full search") and with the paper's distribution-gap
/// selection at |Ec|/|E| in {5%, 10%, 15%}; report
///   beta_full, beta_crt  — average SLA violations across ALL single link
///                          failures under each robust routing
///   beta_Phi (%)         — relative difference in compound Phi_fail
/// Accuracy claim: beta_crt tracks beta_full at a fraction of the cost.

#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

namespace {

using namespace dtr;
using namespace dtr::bench;

struct CellStats {
  RunningStats beta_crt;
  RunningStats beta_phi_pct;
};

void run_topology_family(const BenchContext& ctx, const WorkloadSpec& base_spec,
                         const std::vector<double>& fractions, Table& table,
                         const char* note) {
  RunningStats avg_util, beta_full;
  std::vector<CellStats> cells(fractions.size());

  for (int rep = 0; rep < ctx.repeats; ++rep) {
    WorkloadSpec spec = base_spec;
    spec.seed = ctx.seed + static_cast<std::uint64_t>(rep) * 101;
    const Workload w = make_workload(spec);
    const Evaluator evaluator(w.graph, w.traffic, w.params);

    // Brute force reference: Ec = E.
    const OptimizeResult full = run_optimizer(
        evaluator, ctx.effort, spec.seed,
        [](OptimizerConfig& c) { c.selector = SelectorKind::kFullSearch; });
    const FailureProfile full_profile = link_failure_profile(evaluator, full.robust);
    beta_full.add(full_profile.beta());

    const EvalResult normal =
        evaluator.evaluate(full.regular, FailureScenario::none(), EvalDetail::kFull);
    avg_util.add(utilization_stats(normal).average);

    for (std::size_t f = 0; f < fractions.size(); ++f) {
      const double fraction = fractions[f];
      const OptimizeResult crt =
          run_optimizer(evaluator, ctx.effort, spec.seed, [&](OptimizerConfig& c) {
            c.selector = SelectorKind::kDistributionGap;
            c.critical_fraction = fraction;
          });
      const FailureProfile crt_profile = link_failure_profile(evaluator, crt.robust);
      cells[f].beta_crt.add(crt_profile.beta());
      cells[f].beta_phi_pct.add(beta_phi_percent(crt_profile, full_profile));
    }
  }

  table.row()
      .cell(std::string(base_spec.label()) + (note ? note : ""))
      .num(avg_util.mean(), 2)
      .mean_std(beta_full.mean(), beta_full.stddev());
  for (auto& cell : cells) {
    table.mean_std(cell.beta_crt.mean(), cell.beta_crt.stddev());
    table.mean_std(cell.beta_phi_pct.mean(), cell.beta_phi_pct.stddev());
  }
}

}  // namespace

int main() {
  BenchContext ctx = context_from_env();
  // The full-search reference makes this the heaviest bench; cap repeats
  // below paper effort (DTR_EFFORT=full restores DTR_REPEATS).
  if (ctx.effort != Effort::kFull) ctx.repeats = std::min(ctx.repeats, 2);
  print_context(std::cout, "Table I: critical vs. full search", ctx);

  const std::vector<double> fractions{0.05, 0.10, 0.15};
  Table table({"Topology", "avg util", "beta_full", "beta_crt 5%", "betaPhi% 5%",
               "beta_crt 10%", "betaPhi% 10%", "beta_crt 15%", "betaPhi% 15%"});
  for (const WorkloadSpec& spec : paper_topologies(ctx.effort, ctx.seed))
    run_topology_family(ctx, spec, fractions, table, nullptr);

  print_banner(std::cout, "Table I (paper: beta_crt tracks beta_full; betaPhi small)");
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);

  // High-load variant (Sec. IV-E1, second experiment): RandTopo at max link
  // utilization 0.9 needs a slightly larger critical set.
  WorkloadSpec high = default_rand_spec(ctx.effort, ctx.seed);
  high.util = {UtilizationTarget::Kind::kMax, 0.90};
  Table high_table({"Topology", "avg util", "beta_full", "beta_crt 10%", "betaPhi% 10%",
                    "beta_crt 20%", "betaPhi% 20%", "beta_crt 25%", "betaPhi% 25%"});
  run_topology_family(ctx, high, {0.10, 0.20, 0.25}, high_table, " (high load)");
  print_banner(std::cout,
               "High-load variant (paper: good accuracy needs ~20-25% of links)");
  high_table.print(std::cout);
  std::cout << "\nCSV:\n";
  high_table.print_csv(std::cout);
  return 0;
}
