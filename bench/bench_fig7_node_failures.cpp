/// Fig. 7 — single NODE failures vs. single link failures (Sec. V-F):
/// three routings on RandTopo at 80% max utilization:
///   NR         — regular optimization (failure-oblivious)
///   R(link)    — robust against all single LINK failures (the paper's method)
///   R(node)    — robust against all single NODE failures ("exhaustive"
///                heuristic: the critical set is every node scenario)
/// Series:
///   (a)/(b) all single node failures, sorted: violations and phi*
///   (c)/(d) top-10% link failures under R(node) vs R(link)
/// Paper claims: R(link) also protects against node failures (no added
/// fragility); R(node) does NOT substitute for R(link) on link failures.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.h"

namespace {

using namespace dtr;
using namespace dtr::bench;

FailureProfile node_failure_profile(const Evaluator& evaluator, const WeightSetting& w) {
  const auto scenarios = all_node_failures(evaluator.graph());
  return profile_failures(evaluator, w, scenarios);
}

}  // namespace

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Fig. 7: node-failure robustness", ctx);

  WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
  spec.util = {UtilizationTarget::Kind::kMax, 0.80};
  const Workload w = make_workload(spec);
  const Evaluator evaluator(w.graph, w.traffic, w.params);

  // R(link): the paper's robust optimization.
  const OptimizeResult link_opt = run_optimizer(evaluator, ctx.effort, ctx.seed);

  // R(node): Phase 2 target = all single node failures (linear scenario
  // count makes the exhaustive variant feasible, as in the paper). We reuse
  // the optimizer's Phase 1 via selector=kFullSearch then re-run Phase 2 by
  // swapping the scenario set — expressed here by running a dedicated
  // optimizer whose "critical" failures are node scenarios.
  OptimizeResult node_opt = link_opt;  // same Phase 1 output
  {
    // Constrained local search over node-failure scenarios.
    const auto scenarios = all_node_failures(w.graph);
    // Reuse the robust machinery by evaluating manually: run a Phase-2-style
    // search seeded from the regular routing.
    OptimizerConfig config = default_optimizer_config(ctx.effort, ctx.seed);
    class NodeObjective final : public SearchObjective {
     public:
      NodeObjective(const Evaluator& ev, std::vector<FailureScenario> scen,
                    CostPair star, double chi)
          : ev_(ev), scen_(std::move(scen)), star_(star), chi_(chi) {}
      std::optional<CostPair> evaluate(const WeightSetting& ws,
                                       const CostPair* incumbent) override {
        const CostPair normal = ev_.evaluate(ws).cost();
        const LexicographicOrder ord;
        if (!ord.values_equal(normal.lambda, star_.lambda)) return std::nullopt;
        if (normal.phi > (1.0 + chi_) * star_.phi + ord.abs_tol()) return std::nullopt;
        return ev_.sweep(ws, scen_, {.abort_bound = incumbent}).cost();
      }
     private:
      const Evaluator& ev_;
      std::vector<FailureScenario> scen_;
      CostPair star_;
      double chi_;
    } objective(evaluator, scenarios, link_opt.regular_cost, config.chi);

    LocalSearch search({config.phase2, config.wmax, ctx.seed + 5});
    const auto result = search.run(objective, link_opt.regular);
    node_opt.robust = result.best;
  }

  // ---------------- (a)/(b): all single node failures --------------------
  const FailureProfile nr_nodes = node_failure_profile(evaluator, link_opt.regular);
  const FailureProfile rlink_nodes = node_failure_profile(evaluator, link_opt.robust);
  const FailureProfile rnode_nodes = node_failure_profile(evaluator, node_opt.robust);
  {
    const auto nr_v = sorted_desc(nr_nodes.violations);
    const auto rl_v = sorted_desc(rlink_nodes.violations);
    const auto rn_v = sorted_desc(rnode_nodes.violations);
    const auto nr_p = sorted_desc(nr_nodes.normalized_phi());
    const auto rl_p = sorted_desc(rlink_nodes.normalized_phi());
    const auto rn_p = sorted_desc(rnode_nodes.normalized_phi());
    Table table({"sorted node idx", "R(node)", "R(link)", "NR", "phi* R(node)",
                 "phi* R(link)", "phi* NR"});
    for (std::size_t i = 0; i < nr_v.size(); ++i) {
      table.row()
          .integer(static_cast<long long>(i))
          .num(rn_v[i], 0)
          .num(rl_v[i], 0)
          .num(nr_v[i], 0)
          .num(rn_p[i], 3)
          .num(rl_p[i], 3)
          .num(nr_p[i], 3);
    }
    print_banner(std::cout,
                 "Fig. 7(a)(b): all single node failures (paper: R(node) best, "
                 "R(link) close behind, NR far worse)");
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.print_csv(std::cout);
    std::cout << "\nbeta over node failures: R(node)=" << format_double(rnode_nodes.beta())
              << " R(link)=" << format_double(rlink_nodes.beta())
              << " NR=" << format_double(nr_nodes.beta()) << "\n";
  }

  // ---------------- (c)/(d): top-10% link failures -----------------------
  {
    const FailureProfile rlink_links = link_failure_profile(evaluator, link_opt.robust);
    const FailureProfile rnode_links = link_failure_profile(evaluator, node_opt.robust);
    // Top-10% worst link failures by R(node)'s violations (the exposure the
    // paper highlights).
    std::vector<std::size_t> order(rnode_links.violations.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return rnode_links.violations[a] > rnode_links.violations[b];
    });
    const std::size_t top = std::max<std::size_t>(2, order.size() / 10 + 1);
    Table table({"top link-failure idx", "R(node)", "R(link)", "phi* R(node)",
                 "phi* R(link)"});
    const double denom = std::max(rnode_links.phi_uncap, 1e-9);
    for (std::size_t i = 0; i < top; ++i) {
      const std::size_t s = order[i];
      table.row()
          .integer(static_cast<long long>(i))
          .num(rnode_links.violations[s], 0)
          .num(rlink_links.violations[s], 0)
          .num(rnode_links.phi[s] / denom, 3)
          .num(rlink_links.phi[s] / denom, 3);
    }
    print_banner(std::cout,
                 "Fig. 7(c)(d): worst link failures (paper: R(node) can fail "
                 "badly on link failures; R(link) stays protected)");
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.print_csv(std::cout);
    std::cout << "\nbeta over link failures: R(node)=" << format_double(rnode_links.beta())
              << " R(link)=" << format_double(rlink_links.beta()) << "\n";
  }
  return 0;
}
