/// Fig. 4 — "Link loads after failure under robust optimization":
///   (a) number of links experiencing a load increase after each failure
///   (b) average increase of link utilization over those links
/// RandTopo vs. NearTopo. Paper shape: RandTopo spreads post-failure load
/// over MANY links with SMALL increases; NearTopo concentrates it on few
/// links with large increases — the path-diversity story behind Table II.

#include <iostream>

#include "bench_common.h"
#include "core/metrics.h"
#include "util/stats.h"

namespace {

using namespace dtr;
using namespace dtr::bench;

struct Series {
  std::vector<double> links_increased;
  std::vector<double> avg_increase;
};

Series profile_redistribution(const Workload& w, Effort effort, std::uint64_t seed) {
  const Evaluator evaluator(w.graph, w.traffic, w.params);
  const OptimizeResult r = run_optimizer(evaluator, effort, seed);
  const EvalResult normal =
      evaluator.evaluate(r.robust, FailureScenario::none(), EvalDetail::kFull);
  Series s;
  for (LinkId l = 0; l < w.graph.num_links(); ++l) {
    const EvalResult failed =
        evaluator.evaluate(r.robust, FailureScenario::link(l), EvalDetail::kFull);
    const LoadRedistribution lr = compare_loads(w.graph, normal, failed);
    s.links_increased.push_back(static_cast<double>(lr.links_with_increase));
    s.avg_increase.push_back(lr.average_increase);
  }
  return s;
}

}  // namespace

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Fig. 4: post-failure load redistribution", ctx);

  WorkloadSpec rand_spec = default_rand_spec(ctx.effort, ctx.seed);
  rand_spec.degree = 6.0;
  WorkloadSpec near_spec = rand_spec;
  near_spec.kind = TopologyKind::kNear;

  const Series rand_series =
      profile_redistribution(make_workload(rand_spec), ctx.effort, ctx.seed);
  const Series near_series =
      profile_redistribution(make_workload(near_spec), ctx.effort, ctx.seed);

  // Sorted descending per the paper's "sorted failure link ID" axis.
  const auto rand_count = sorted_desc(rand_series.links_increased);
  const auto near_count = sorted_desc(near_series.links_increased);
  const auto rand_inc = sorted_desc(rand_series.avg_increase);
  const auto near_inc = sorted_desc(near_series.avg_increase);

  Table table({"sorted failure idx", "links increased (Rand)", "links increased (Near)",
               "avg util increase (Rand)", "avg util increase (Near)"});
  const std::size_t rows = std::min(rand_count.size(), near_count.size());
  for (std::size_t i = 0; i < rows; ++i) {
    table.row()
        .integer(static_cast<long long>(i))
        .num(rand_count[i], 0)
        .num(near_count[i], 0)
        .num(rand_inc[i], 3)
        .num(near_inc[i], 3);
  }
  print_banner(std::cout,
               "Fig. 4 series (paper: RandTopo -> many links, small increases; "
               "NearTopo -> few links, large increases)");
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);

  std::cout << "\nMeans: links-with-increase Rand="
            << format_double(mean(rand_series.links_increased), 1)
            << " Near=" << format_double(mean(near_series.links_increased), 1)
            << "; avg-increase Rand=" << format_double(mean(rand_series.avg_increase), 3)
            << " Near=" << format_double(mean(near_series.avg_increase), 3) << "\n";
  return 0;
}
