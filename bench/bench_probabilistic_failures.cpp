/// Extension bench — probabilistic failure model (the paper's Sec. VI
/// future-work sketch: "a probabilistic failure model can be formulated as
/// part of a robust optimization framework, and ... the critical link
/// technique ... can be extended to that model").
///
/// Setup: each physical link gets a failure probability; a few "flaky" links
/// are 20x more likely to fail than the rest (aging fiber / construction
/// zones). We compare three routings on EXPECTED post-failure SLA violations
/// (the probability-weighted beta):
///   NR          — regular optimization
///   R(uniform)  — the paper's robust optimization (all failures equal)
///   R(prob)     — the extension: expected-cost objective + probability-
///                 scaled criticality in Phase 1c
/// Expected shape: R(prob) <= R(uniform) <= NR on the weighted metric, with
/// R(prob)'s critical set concentrating on the flaky links.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace dtr;
  using namespace dtr::bench;
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Extension: probabilistic failure model", ctx);

  RunningStats nr_exp, runi_exp, rprob_exp, flaky_in_ec;

  for (int rep = 0; rep < ctx.repeats; ++rep) {
    WorkloadSpec spec = default_rand_spec(ctx.effort, ctx.seed);
    spec.util = {UtilizationTarget::Kind::kAverage, 0.50};
    spec.seed = ctx.seed + static_cast<std::uint64_t>(rep) * 101;
    const Workload w = make_workload(spec);
    const Evaluator evaluator(w.graph, w.traffic, w.params);

    // Failure model: 10% of links are flaky (20x base hazard).
    Rng rng(spec.seed + 77);
    std::vector<double> probability(w.graph.num_links(), 1.0);
    std::vector<LinkId> flaky;
    const std::size_t num_flaky = std::max<std::size_t>(1, w.graph.num_links() / 10);
    while (flaky.size() < num_flaky) {
      const LinkId l = static_cast<LinkId>(rng.uniform_index(w.graph.num_links()));
      if (std::find(flaky.begin(), flaky.end(), l) == flaky.end()) {
        flaky.push_back(l);
        probability[l] = 20.0;
      }
    }
    double total = 0.0;
    for (double p : probability) total += p;
    for (double& p : probability) p /= total;  // normalize to a distribution

    const OptimizeResult uniform = run_optimizer(evaluator, ctx.effort, spec.seed);
    const OptimizeResult prob =
        run_optimizer(evaluator, ctx.effort, spec.seed, [&](OptimizerConfig& c) {
          c.objective = objective_from_link_probabilities(w.graph, probability);
        });

    // Expected violations under the failure distribution.
    auto expected_beta = [&](const WeightSetting& routing) {
      double sum = 0.0;
      for (LinkId l = 0; l < w.graph.num_links(); ++l) {
        const EvalResult r = evaluator.evaluate(routing, FailureScenario::link(l));
        sum += probability[l] * r.sla_violations;
      }
      return sum;
    };
    nr_exp.add(expected_beta(uniform.regular));
    runi_exp.add(expected_beta(uniform.robust));
    rprob_exp.add(expected_beta(prob.robust));

    int hits = 0;
    for (LinkId l : flaky)
      if (std::find(prob.critical.begin(), prob.critical.end(), l) != prob.critical.end())
        ++hits;
    flaky_in_ec.add(static_cast<double>(hits) / static_cast<double>(flaky.size()));
  }

  Table table({"routing", "expected violations per failure draw"});
  table.row().cell("regular (NR)").mean_std(nr_exp.mean(), nr_exp.stddev());
  table.row().cell("robust, uniform model (paper)").mean_std(runi_exp.mean(),
                                                             runi_exp.stddev());
  table.row().cell("robust, probabilistic model (extension)")
      .mean_std(rprob_exp.mean(), rprob_exp.stddev());
  print_banner(std::cout,
               "Probabilistic failure model (expected shape: prob <= uniform <= NR)");
  table.print(std::cout);
  std::cout << "\nFraction of flaky links captured in Ec by the probability-scaled "
               "criticality: "
            << format_double(flaky_in_ec.mean(), 2) << " (std "
            << format_double(flaky_in_ec.stddev(), 2) << ")\n";
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
