/// Table II — "Number of SLA violations across topologies", plus Fig. 3's
/// per-failure profiles and the Sec. V-B NearTopo link-resizing experiment.
///
/// For each topology: compare robust ("R") vs. regular ("NR") routings on
///   - average SLA violations across all single link failures
///   - average violations over the worst top-10% of failures
///   - normal-condition cost degradation of throughput-sensitive traffic.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

namespace {

using namespace dtr;
using namespace dtr::bench;

struct TopologyOutcome {
  RunningStats beta_r, beta_nr, top_r, top_nr, phi_degradation_pct, beta_floor;
};

TopologyOutcome evaluate_topology(const BenchContext& ctx, const WorkloadSpec& base_spec,
                                  Graph* graph_override = nullptr) {
  TopologyOutcome out;
  for (int rep = 0; rep < ctx.repeats; ++rep) {
    WorkloadSpec spec = base_spec;
    spec.seed = ctx.seed + static_cast<std::uint64_t>(rep) * 101;
    Workload w = make_workload(spec);
    if (graph_override != nullptr) w.graph = *graph_override;
    const Evaluator evaluator(w.graph, w.traffic, w.params);
    const OptimizeResult r = run_optimizer(evaluator, ctx.effort, spec.seed);

    const FailureProfile robust = link_failure_profile(evaluator, r.robust);
    const FailureProfile regular = link_failure_profile(evaluator, r.regular);
    out.beta_r.add(robust.beta());
    out.beta_nr.add(regular.beta());
    out.top_r.add(robust.beta_top(0.10));
    out.top_nr.add(regular.beta_top(0.10));
    out.phi_degradation_pct.add(
        (r.robust_normal_cost.phi / std::max(r.regular_cost.phi, 1e-9) - 1.0) * 100.0);
    // Extension beyond the paper: the propagation-limited lower bound — SLA
    // violations NO routing could avoid (topology + failure property).
    const auto floor_profile =
        unavoidable_violation_profile(evaluator, all_link_failures(w.graph));
    out.beta_floor.add(mean(floor_profile));
  }
  return out;
}

}  // namespace

int main() {
  const BenchContext ctx = context_from_env();
  print_context(std::cout, "Table II: SLA violations across topologies", ctx);

  Table table({"Topology", "avg violations R", "avg violations NR", "top-10% R",
               "top-10% NR", "Phi degradation (%)", "unavoidable floor"});
  for (const WorkloadSpec& spec : paper_topologies(ctx.effort, ctx.seed)) {
    const TopologyOutcome o = evaluate_topology(ctx, spec);
    table.row()
        .cell(spec.label())
        .mean_std(o.beta_r.mean(), o.beta_r.stddev())
        .mean_std(o.beta_nr.mean(), o.beta_nr.stddev())
        .mean_std(o.top_r.mean(), o.top_r.stddev())
        .mean_std(o.top_nr.mean(), o.top_nr.stddev())
        .mean_std(o.phi_degradation_pct.mean(), o.phi_degradation_pct.stddev())
        .mean_std(o.beta_floor.mean(), o.beta_floor.stddev());
  }
  print_banner(std::cout,
               "Table II (paper: R beats NR 2-7x; NearTopo is the outlier; "
               "Phi degradation well under the 20% allowance)");
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);

  // ---- Sec. V-B extension: resize NearTopo's congested core links so that
  // normal-condition utilization drops below 90%, then re-optimize.
  WorkloadSpec near_spec = paper_topologies(ctx.effort, ctx.seed)[1];
  Workload near_w = make_workload(near_spec);
  {
    const Evaluator evaluator(near_w.graph, near_w.traffic, near_w.params);
    const OptimizeResult r = run_optimizer(evaluator, ctx.effort, near_spec.seed);
    const EvalResult normal =
        evaluator.evaluate(r.regular, FailureScenario::none(), EvalDetail::kFull);
    int resized = 0;
    for (LinkId l = 0; l < near_w.graph.num_links(); ++l) {
      double util = 0.0;
      for (ArcId a : near_w.graph.link_arcs(l))
        util = std::max(util, normal.arc_utilization[a]);
      if (util > 0.90) {
        near_w.graph.scale_link_capacity(l, util / 0.90 * 1.05);
        ++resized;
      }
    }
    std::cout << "\nNearTopo resize: upgraded " << resized
              << " congested links (>90% normal-condition utilization)\n";
  }
  const TopologyOutcome resized = evaluate_topology(ctx, near_spec, &near_w.graph);
  Table resize_table({"Topology", "avg violations R", "avg violations NR"});
  resize_table.row()
      .cell("NearTopo (resized)")
      .mean_std(resized.beta_r.mean(), resized.beta_r.stddev())
      .mean_std(resized.beta_nr.mean(), resized.beta_nr.stddev());
  print_banner(std::cout,
               "NearTopo after capacity resize (paper: violations drop, but the "
               "limited path diversity still caps robust gains)");
  resize_table.print(std::cout);
  std::cout << "\nCSV:\n";
  resize_table.print_csv(std::cout);
  return 0;
}
