/// Table II — "Number of SLA violations across topologies", plus Fig. 3's
/// per-failure profiles and the Sec. V-B NearTopo link-resizing experiment.
///
/// For each topology: compare robust ("R") vs. regular ("NR") routings on
///   - average SLA violations across all single link failures
///   - average violations over the worst top-10% of failures
///   - normal-condition cost degradation of throughput-sensitive traffic.
///
/// Runs as a campaign: one cell per topology (plus the resized-NearTopo
/// extension cell), sharded across workers; --json emits the
/// schema-versioned artifact (see bench_common.h for the standard flags).

#include <algorithm>
#include <iostream>
#include <memory>
#include <utility>

#include "bench_common.h"

namespace {

using namespace dtr;
using namespace dtr::bench;

constexpr const char* kResizedSuffix = "-resized";

/// Sec. V-B extension setup: upgrade NearTopo's congested core links so
/// normal-condition utilization drops below 90%, then let the campaign
/// re-optimize against the resized graph.
std::shared_ptr<const Graph> make_resized_near(const BenchContext& ctx,
                                               const WorkloadSpec& near_spec) {
  Workload w = make_workload(near_spec);
  const Evaluator evaluator(w.graph, w.traffic, w.params);
  const OptimizeResult r = run_optimizer(evaluator, ctx.effort, near_spec.seed);
  const EvalResult normal =
      evaluator.evaluate(r.regular, FailureScenario::none(), EvalDetail::kFull);
  int resized = 0;
  for (LinkId l = 0; l < w.graph.num_links(); ++l) {
    double util = 0.0;
    for (ArcId a : w.graph.link_arcs(l))
      util = std::max(util, normal.arc_utilization[a]);
    if (util > 0.90) {
      w.graph.scale_link_capacity(l, util / 0.90 * 1.05);
      ++resized;
    }
  }
  std::cout << "NearTopo resize: upgraded " << resized
            << " congested links (>90% normal-condition utilization)\n";
  return std::make_shared<Graph>(std::move(w.graph));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  const BenchContext ctx = context_from_env();

  Campaign campaign;
  campaign.name = "table2_topologies";
  campaign.effort = ctx.effort;
  campaign.seed = ctx.seed;
  for (const WorkloadSpec& spec : paper_topologies(ctx.effort, ctx.seed)) {
    CampaignCell cell;
    cell.id = spec.label();
    cell.spec = spec;
    cell.repeats = ctx.repeats;
    cell.unavoidable_floor = true;
    campaign.cells.push_back(std::move(cell));
  }
  {
    const WorkloadSpec near_spec = paper_topologies(ctx.effort, ctx.seed)[1];
    CampaignCell cell;
    cell.id = near_spec.label() + kResizedSuffix;
    cell.spec = near_spec;
    cell.repeats = ctx.repeats;
    campaign.cells.push_back(std::move(cell));
  }
  if (!apply_bench_args(args, campaign)) return 0;

  print_context(std::cout, "Table II: SLA violations across topologies", ctx);
  // The resize setup costs one optimizer run; only pay it if the extension
  // cell survived the filter.
  for (CampaignCell& cell : campaign.cells)
    if (cell.id.ends_with(kResizedSuffix))
      cell.graph_override = make_resized_near(ctx, cell.spec);

  const CampaignResult result = run_bench_campaign(args, campaign);
  const int failed_cells = report_cell_errors(result);

  Table table({"Topology", "avg violations R", "avg violations NR", "top-10% R",
               "top-10% NR", "Phi degradation (%)", "unavoidable floor"});
  Table resize_table({"Topology", "avg violations R", "avg violations NR"});
  for (const CellResult& cell : result.cells) {
    if (!cell.error.empty()) continue;
    const auto agg = [&](const char* name) { return aggregate_metric(cell, name); };
    if (cell.id.ends_with(kResizedSuffix)) {
      resize_table.row()
          .cell(cell.label + " (resized)")
          .mean_std(agg("beta_r").mean, agg("beta_r").stddev)
          .mean_std(agg("beta_nr").mean, agg("beta_nr").stddev);
    } else {
      table.row()
          .cell(cell.label)
          .mean_std(agg("beta_r").mean, agg("beta_r").stddev)
          .mean_std(agg("beta_nr").mean, agg("beta_nr").stddev)
          .mean_std(agg("beta_top10_r").mean, agg("beta_top10_r").stddev)
          .mean_std(agg("beta_top10_nr").mean, agg("beta_top10_nr").stddev)
          .mean_std(agg("phi_degradation_pct").mean, agg("phi_degradation_pct").stddev)
          .mean_std(agg("beta_floor").mean, agg("beta_floor").stddev);
    }
  }
  if (table.row_count() > 0) {
    print_banner(std::cout,
                 "Table II (paper: R beats NR 2-7x; NearTopo is the outlier; "
                 "Phi degradation well under the 20% allowance)");
    table.print(std::cout);
    std::cout << "\nCSV:\n";
    table.print_csv(std::cout);
  }
  if (resize_table.row_count() > 0) {
    print_banner(std::cout,
                 "NearTopo after capacity resize (paper: violations drop, but the "
                 "limited path diversity still caps robust gains)");
    resize_table.print(std::cout);
    std::cout << "\nCSV:\n";
    resize_table.print_csv(std::cout);
  }
  return failed_cells > 0 ? 1 : 0;
}
