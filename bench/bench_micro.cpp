/// Micro-benchmarks of the simulator substrate (google-benchmark): SPF,
/// ECMP load aggregation, single evaluation, and failure sweeps — the unit
/// costs that Sec. IV's complexity argument is built from.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "graph/spf.h"
#include "routing/route_state.h"

namespace {

using namespace dtr;
using namespace dtr::bench;

struct MicroFixture {
  Workload w;
  std::unique_ptr<Evaluator> evaluator;
  WeightSetting weights;
  std::vector<double> costs;

  explicit MicroFixture(int nodes) {
    WorkloadSpec spec;
    spec.nodes = nodes;
    spec.degree = 6.0;
    spec.seed = 1;
    w = make_workload(spec);
    evaluator = std::make_unique<Evaluator>(w.graph, w.traffic, w.params);
    weights = WeightSetting(w.graph.num_links());
    weights.arc_costs(w.graph, TrafficClass::kDelay, costs);
  }
};

MicroFixture& fixture(int nodes) {
  static std::map<int, std::unique_ptr<MicroFixture>> cache;
  auto& slot = cache[nodes];
  if (!slot) slot = std::make_unique<MicroFixture>(nodes);
  return *slot;
}

void BM_Dijkstra(benchmark::State& state) {
  MicroFixture& f = fixture(static_cast<int>(state.range(0)));
  std::vector<double> dist;
  NodeId t = 0;
  for (auto _ : state) {
    shortest_distances_to(f.w.graph, t, f.costs, {}, dist);
    benchmark::DoNotOptimize(dist.data());
    t = (t + 1) % f.w.graph.num_nodes();
  }
}
BENCHMARK(BM_Dijkstra)->Arg(16)->Arg(30)->Arg(50);

void BM_ClassRouting(benchmark::State& state) {
  MicroFixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const ClassRouting r(f.w.graph, f.costs, f.w.traffic.throughput, {});
    benchmark::DoNotOptimize(r.arc_loads().data());
  }
}
BENCHMARK(BM_ClassRouting)->Arg(16)->Arg(30)->Arg(50);

void BM_EvaluateNormal(benchmark::State& state) {
  MicroFixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const EvalResult r = f.evaluator->evaluate(f.weights);
    benchmark::DoNotOptimize(r.lambda);
  }
}
BENCHMARK(BM_EvaluateNormal)->Arg(16)->Arg(30)->Arg(50);

void BM_EvaluateWithFullDetail(benchmark::State& state) {
  MicroFixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const EvalResult r =
        f.evaluator->evaluate(f.weights, FailureScenario::none(), EvalDetail::kFull);
    benchmark::DoNotOptimize(r.arc_utilization.data());
  }
}
BENCHMARK(BM_EvaluateWithFullDetail)->Arg(16)->Arg(30);

void BM_FailureSweep(benchmark::State& state) {
  MicroFixture& f = fixture(static_cast<int>(state.range(0)));
  const auto scenarios = all_link_failures(f.w.graph);
  for (auto _ : state) {
    const SweepResult r = f.evaluator->sweep(f.weights, scenarios);
    benchmark::DoNotOptimize(r.lambda);
  }
  state.counters["scenarios"] = static_cast<double>(scenarios.size());
}
BENCHMARK(BM_FailureSweep)->Arg(16)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_FailureSweepWithAbort(benchmark::State& state) {
  MicroFixture& f = fixture(static_cast<int>(state.range(0)));
  const auto scenarios = all_link_failures(f.w.graph);
  // A tight bound: the sweep aborts early, as Phase 2 candidates mostly do.
  const SweepResult full = f.evaluator->sweep(f.weights, scenarios);
  const CostPair bound{full.lambda * 0.25, full.phi * 0.25};
  for (auto _ : state) {
    const SweepResult r = f.evaluator->sweep(f.weights, scenarios, {.abort_bound = &bound});
    benchmark::DoNotOptimize(r.aborted);
  }
}
BENCHMARK(BM_FailureSweepWithAbort)->Arg(16)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
