/// Traffic-uncertainty study (the Sec. V-F scenario as an API walkthrough):
/// compute regular and robust routings against BASE traffic matrices, then
/// stress both with (a) Gaussian estimation noise and (b) download hot-spot
/// surges, and report how post-failure SLA violations hold up.
///
///   ./traffic_uncertainty [seed] [trials]

#include <iostream>
#include <string>

#include "core/metrics.h"
#include "core/optimizer.h"
#include "graph/topology.h"
#include "traffic/gravity.h"
#include "traffic/scaling.h"
#include "traffic/uncertainty.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dtr;
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 11;
  const int trials = argc > 2 ? std::stoi(argv[2]) : 20;

  Graph graph = make_rand_topo({.num_nodes = 16, .avg_degree = 5.0,
                                .capacity_mbps = 500.0, .seed = seed});
  EvalParams params;
  calibrate_delays_to_sla(graph, params.sla.theta_ms);
  ClassedTraffic base =
      split_by_class(make_gravity_traffic(graph, {.alpha = 1.0, .seed = seed + 1}), 0.30);
  scale_to_utilization(graph, base, {UtilizationTarget::Kind::kMax, 0.74});

  // Optimize against the BASE matrices only.
  const Evaluator base_evaluator(graph, base, params);
  RobustOptimizer optimizer(base_evaluator, default_optimizer_config(Effort::kQuick, seed));
  const OptimizeResult opt = optimizer.optimize();
  const auto scenarios = all_link_failures(graph);

  auto stress = [&](auto&& make_traffic, const char* label) {
    Rng rng(seed + 99);
    RunningStats regular_beta, robust_beta;
    for (int t = 0; t < trials; ++t) {
      const ClassedTraffic actual = make_traffic(rng);
      const Evaluator actual_evaluator(graph, actual, params);
      regular_beta.add(profile_failures(actual_evaluator, opt.regular, scenarios).beta());
      robust_beta.add(profile_failures(actual_evaluator, opt.robust, scenarios).beta());
    }
    std::cout << label << ": avg post-failure SLA violations over " << trials
              << " traffic draws\n";
    Table table({"routing", "mean (stddev)"});
    table.row().cell("regular").mean_std(regular_beta.mean(), regular_beta.stddev());
    table.row().cell("robust").mean_std(robust_beta.mean(), robust_beta.stddev());
    table.print(std::cout);
    std::cout << "\n";
  };

  // Baseline: the traffic actually matches the estimate.
  const FailureProfile reg_base = profile_failures(base_evaluator, opt.regular, scenarios);
  const FailureProfile rob_base = profile_failures(base_evaluator, opt.robust, scenarios);
  std::cout << "Base matrices: regular beta=" << format_double(reg_base.beta())
            << ", robust beta=" << format_double(rob_base.beta()) << "\n\n";

  stress(
      [&](Rng& rng) { return apply_gaussian_fluctuation(base, {.epsilon = 0.2}, rng); },
      "Gaussian fluctuation (epsilon=0.2, ~±40%)");

  stress(
      [&](Rng& rng) {
        return apply_hot_spot(base,
                              {.direction = HotSpotParams::Direction::kDownload,
                               .server_fraction = 0.1, .client_fraction = 0.5,
                               .scale_min = 2.0, .scale_max = 6.0},
                              rng);
      },
      "Download hot-spot (10% servers, 50% clients, x2-6 surges)");

  std::cout << "Robustness to failures computed from estimated matrices carries over\n"
               "to perturbed actual traffic — the paper's Sec. V-F conclusion.\n";
  return 0;
}
