/// dtr_tool — command-line front end for the library: build (or load) a
/// topology, synthesize traffic, run the two-phase robust optimization, and
/// export the deployable artifacts (weight file, Graphviz map, failure
/// report). The `campaign` subcommand runs a whole sharded experiment
/// campaign from a spec file and writes the schema-versioned JSON artifact;
/// the `scenarios` subcommand generates a failure-scenario catalog (k-link
/// combinations, SRLG files, synthetic conduits) and lists/describes/exports
/// it as dtr.scenarios.v1 JSON; the `tail` subcommand pretty-prints a
/// dtr.events.v1 JSONL event stream as a live progress view.
///
/// Usage:
///   dtr_tool [--topology rand|near|pl|isp] [--nodes N] [--degree D]
///            [--seed S] [--avg-util U | --max-util U] [--theta MS]
///            [--effort smoke|quick|full] [--fraction F]
///            [--objective expected|percentile|downtime]
///            [--harden-set all_links|all_nodes|k_link|srlg_file|geo_srlg]
///            [--harden-k N] [--harden-budget N] [--harden-srlg-file FILE]
///            [--harden-geo-grid N] [--harden-rates] [--harden-percentile P]
///            [--harden-period MIN]
///            [--in-graph FILE] [--out-graph FILE] [--out-weights FILE]
///            [--out-dot FILE] [--report]
///            [--telemetry-json FILE] [--trace-out FILE]
///            [--events-out FILE] [--trace-events FILE] [--metrics-port N]
///   dtr_tool campaign --spec FILE [--json FILE] [--workers N]
///            [--inner-threads N] [--filter SUBSTR] [--list] [--timings]
///            [--no-incremental] [--no-base-cache] [--no-delay-dp]
///            [--telemetry-json FILE] [--trace-out FILE]
///            [--events-out FILE] [--metrics-port N]
///   dtr_tool scenarios --set all_links|all_nodes|k_link|srlg_file|geo_srlg
///            [--k N] [--budget N] [--srlg-file FILE] [--geo-grid N]
///            [--rates] [--topology rand|near|pl|isp] [--nodes N]
///            [--degree D] [--seed S] [--theta MS] [--in-graph FILE]
///            [--json FILE] [--list] [--describe]
///   dtr_tool tail FILE [--follow]
///   dtr_tool --version
///
/// Examples:
///   dtr_tool --topology isp --report --out-weights isp.weights
///   dtr_tool --topology rand --nodes 24 --degree 6 --out-dot net.dot
///   dtr_tool --topology rand --objective downtime --harden-set geo_srlg
///            --harden-rates --report
///   dtr_tool campaign --spec sweep.campaign --json sweep.json --workers 0
///   dtr_tool scenarios --set k_link --k 2 --budget 50 --rates --json k2.json
///   dtr_tool scenarios --set geo_srlg --topology rand --nodes 30 --describe
///
/// Hardening (availability-aware optimization): --objective switches Phase 2
/// to a HardeningObjective — a scenario catalog (--harden-set, defaulting to
/// all single-link failures) aggregated as expected cost, weighted
/// percentile, or expected downtime minutes. --harden-rates weights the
/// catalog by per-element failure probabilities; --harden-period sets the
/// downtime period (minutes, default 43200 = one month).
///
/// Observability: --telemetry-json exports the run's counter registry as a
/// dtr.telemetry.v1 artifact (deterministic counters byte-identical for any
/// --workers / --inner-threads shape, wall-time data in a separate process
/// section); --trace-out exports the recorded phase/cell spans in Chrome
/// trace-event format (open in chrome://tracing or Perfetto). The campaign
/// JSON artifact itself is byte-identical with or without these flags.
/// DTR_TELEMETRY_OFF=1 disables all collection.
///
/// Streaming: --events-out attaches an event bus to the run and writes the
/// stream as dtr.events.v1 JSONL — deterministic-plane lines (iteration
/// records, phase markers) are byte-identical for any --workers /
/// --inner-threads shape; process-plane lines (heartbeats, progress, drops)
/// carry wall_ms and are excluded from golden diffs. Campaign cells opt in
/// with the `events = 1` spec key. --trace-events replays the recorded
/// convergence trace (OptimizeResult::trace) of a one-shot run as a purely
/// deterministic event file after the run completes. --metrics-port N serves
/// the live registry in Prometheus text format on 127.0.0.1:N for the
/// duration of the run (port 0 picks an ephemeral port, printed at startup).
/// `dtr_tool tail FILE` pretty-prints an events file; --follow keeps reading
/// as the producer appends.
///
/// Campaign spec format (line-based; '#' starts a comment):
///   name = demo            # top-level keys: name, effort, seed
///   effort = quick
///   seed = 1
///   [cell]                 # one section per cell
///   id = rand16            # cell keys: id, topology, nodes, degree,
///   topology = rand        #   attachments, theta, avg_util|max_util,
///   nodes = 16             #   delay_fraction, seed, repeats, seed_stride,
///   degree = 5             #   critical_fraction, phase1b_samples,
///                          #   phase_iterations, floor,
///   repeats = 3            #   fluctuation (none|gaussian|hotspot), trials,
///                          #   epsilon,
///                          # topology also takes isp:k=v,... with keys pops,
///                          #   cores, backbone_degree, avg_degree (generated
///                          #   Rocketfuel-style ISP at `nodes` routers) or
///                          #   isp:file=PATH (load a dtr-graph file)
///   scenario_set = k_link  #   top_fraction, direction, server_fraction,
///   k_link = 2             #   client_fraction, scale_min, scale_max, and
///   rate_weights = 1       #   the scenario-catalog keys: scenario_set
///   objective = downtime   #   (none|all_links|all_nodes|k_link|srlg_file|
///   harden_set = geo_srlg  #   geo_srlg), k_link, scenario_budget,
///   harden_rate_weights=1  #   srlg_file, geo_grid, percentile, rate_weights
///                          # hardening keys (availability-aware Phase 2):
///                          #   objective (expected|percentile|downtime),
///                          #   harden_set (same kinds as scenario_set),
///                          #   harden_k, harden_budget, harden_srlg_file,
///                          #   harden_geo_grid, harden_rate_weights,
///                          #   harden_percentile, harden_period_min
///                          # telemetry = 1 embeds the cell's deterministic
///                          #   counter block in the artifact
///                          # events = 1 streams the cell's optimizer events
///                          #   when the run has an --events-out sink

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/metrics.h"
#include "core/optimizer.h"
#include "experiments/campaign.h"
#include "experiments/results.h"
#include "graph/graph_io.h"
#include "graph/isp.h"
#include "graph/topology.h"
#include "routing/weights_io.h"
#include "scenarios/scenario_set.h"
#include "telemetry/events.h"
#include "telemetry/exposer.h"
#include "telemetry/telemetry.h"
#include "traffic/gravity.h"
#include "traffic/scaling.h"
#include "util/table.h"

namespace {

using namespace dtr;

struct Options {
  std::string topology = "rand";
  int nodes = 16;
  double degree = 5.0;
  std::uint64_t seed = 1;
  UtilizationTarget util{UtilizationTarget::Kind::kAverage, 0.43};
  double theta_ms = 25.0;
  Effort effort = Effort::kQuick;
  double fraction = 0.15;
  std::string in_graph, out_graph, out_weights, out_dot;
  std::string telemetry_json, trace_out, events_out, trace_events;
  int metrics_port = -1;  ///< -1 = no exposer; 0 = ephemeral port
  bool report = false;
  /// Availability-aware hardening (the --objective / --harden-* flags);
  /// harden.enabled is set by --objective, mirroring the campaign spec's
  /// `objective=` opt-in.
  dtr::experiments::HardenSpec harden;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "dtr_tool: " << message << "\n(see the header comment for usage)\n";
  std::exit(2);
}

struct BuiltTopology {
  Graph graph;
  std::vector<std::string> names;  ///< city names (ISP topology only)
};

/// Flush-and-check after streaming into an export file: an open() that
/// succeeded can still lose the bytes (full disk, write error on a special
/// file), and ofstream reports that silently unless someone asks.
void finish_write(std::ofstream& out, const std::string& path) {
  out.flush();
  if (!out) usage_error("failed writing " + path);
}

/// Writes the telemetry artifacts a run collected; empty paths skip that
/// export. Valid (possibly empty-countered) files are still produced when
/// DTR_TELEMETRY_OFF suppressed collection.
void export_telemetry(const telemetry::Registry& registry, const std::string& name,
                      const std::string& telemetry_json, const std::string& trace_out) {
  if (!telemetry_json.empty()) {
    std::ofstream out(telemetry_json);
    if (!out) usage_error("cannot write " + telemetry_json);
    telemetry::TelemetryJsonOptions options;
    options.include_spans = true;
    write_telemetry_json(out, registry, name, options);
    finish_write(out, telemetry_json);
    std::cout << "wrote telemetry JSON to " << telemetry_json << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) usage_error("cannot write " + trace_out);
    write_chrome_trace(out, registry);
    finish_write(out, trace_out);
    std::cout << "wrote Chrome trace to " << trace_out << "\n";
  }
}

/// Drains `bus` into a dtr.events.v1 JSONL file: schema header, every queued
/// event in FIFO order, and a trailing process-plane drops record when the
/// ring overflowed (lossy streams must say so).
void export_events(telemetry::EventBus& bus, const std::string& path) {
  std::ofstream out(path);
  if (!out) usage_error("cannot write " + path);
  telemetry::write_events_header(out);
  const std::vector<telemetry::Event> events = bus.drain();
  telemetry::write_events_jsonl(out, events);
  if (bus.dropped() > 0) {
    telemetry::Event drops;
    drops.kind = telemetry::EventKind::kDrops;
    drops.plane = telemetry::Plane::kProcess;
    drops.value = bus.dropped();
    out << telemetry::event_json_line(drops) << "\n";
  }
  finish_write(out, path);
  std::cout << "wrote " << events.size() << " events to " << path << "\n";
}

/// Replays the recorded convergence trace as a purely deterministic
/// dtr.events.v1 file — the same iteration records the live bus carries, but
/// reconstructed after the fact from OptimizeResult::trace.
void export_trace_events(const OptimizeResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) usage_error("cannot write " + path);
  telemetry::write_events_header(out);
  std::vector<telemetry::Event> events;
  events.reserve(result.trace.size());
  for (const TraceMove& tm : result.trace) {
    telemetry::Event e;
    e.kind = telemetry::EventKind::kIteration;
    e.label = tm.phase == 1 ? "phase1" : "phase2";
    e.iteration = static_cast<std::uint64_t>(tm.move.iteration);
    e.evaluations = static_cast<std::uint64_t>(tm.move.evaluations);
    e.link = tm.move.link == kInvalidLink ? -1 : static_cast<std::int64_t>(tm.move.link);
    e.cost_lambda = tm.move.cost.lambda;
    e.cost_phi = tm.move.cost.phi;
    e.restart = tm.move.restart;
    events.push_back(std::move(e));
  }
  telemetry::write_events_jsonl(out, events);
  finish_write(out, path);
  std::cout << "wrote " << events.size() << " trace events to " << path << "\n";
}

/// Starts a metrics exposer when `port` >= 0, announcing the bound address
/// (meaningful with port 0, where the kernel picks). Bind failures are usage
/// errors: the user asked for an endpoint we cannot provide.
std::unique_ptr<telemetry::MetricsExposer> start_exposer(const telemetry::Registry& registry,
                                                         int port) {
  if (port < 0) return nullptr;
  if (port > 65535) usage_error("--metrics-port must be in [0, 65535]");
  try {
    auto exposer = std::make_unique<telemetry::MetricsExposer>(
        registry, static_cast<std::uint16_t>(port));
    std::cout << "serving metrics on http://127.0.0.1:" << exposer->port() << "/\n";
    return exposer;
  } catch (const std::exception& e) {
    usage_error(e.what());
  }
}

/// The one topology-construction path for every subcommand, so scenario
/// catalogs, campaigns, and the optimizer front end all agree on element
/// ids for the same flags. Synthesized AND ISP delays are SLA-calibrated
/// like make_workload's (DESIGN §4/§4b), so rate-derived catalog weights
/// match what a campaign cell computes for the same topology; only loaded
/// graph files keep their delays verbatim.
BuiltTopology build_topology(const std::string& topology, const std::string& in_graph,
                             int nodes, double degree, std::uint64_t seed,
                             double theta_ms) {
  BuiltTopology built;
  if (!in_graph.empty()) {
    std::ifstream in(in_graph);
    if (!in) usage_error("cannot open " + in_graph);
    built.graph = read_graph(in);
    return built;
  }
  if (topology == "isp") {
    IspTopology isp = make_isp_backbone();
    built.graph = std::move(isp.graph);
    built.names = std::move(isp.city_names);
    calibrate_delays_to_sla(built.graph, theta_ms);
    return built;
  }
  if (topology == "rand") {
    built.graph = make_rand_topo({nodes, degree, 500.0, seed});
  } else if (topology == "near") {
    built.graph = make_near_topo({nodes, degree, 500.0, seed});
  } else if (topology == "pl") {
    built.graph = make_pl_topo({nodes, 3, 500.0, seed});
  } else {
    usage_error("unknown topology: " + topology);
  }
  calibrate_delays_to_sla(built.graph, theta_ms);
  return built;
}

Options parse_args(int argc, char** argv) {
  namespace exp = dtr::experiments;
  Options opt;
  bool harden_flag_seen = false;
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report") {
      opt.report = true;
      continue;
    }
    if (arg == "--harden-rates") {
      opt.harden.catalog.rate_weights = true;
      harden_flag_seen = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0 || i + 1 >= argc) usage_error("bad argument: " + arg);
    flags[arg] = argv[++i];
  }
  for (const auto& [flag, value] : flags) {
    if (flag == "--topology") opt.topology = value;
    else if (flag == "--objective") {
      const auto mode = parse_aggregation_mode(value);
      if (!mode.has_value()) usage_error("unknown objective: " + value);
      opt.harden.mode = *mode;
      opt.harden.enabled = true;
    } else if (flag == "--harden-set") {
      if (value == "all_links") opt.harden.catalog.kind = exp::ScenarioSpec::Kind::kAllLinks;
      else if (value == "all_nodes") opt.harden.catalog.kind = exp::ScenarioSpec::Kind::kAllNodes;
      else if (value == "k_link") opt.harden.catalog.kind = exp::ScenarioSpec::Kind::kKLink;
      else if (value == "srlg_file") opt.harden.catalog.kind = exp::ScenarioSpec::Kind::kSrlgFile;
      else if (value == "geo_srlg") opt.harden.catalog.kind = exp::ScenarioSpec::Kind::kGeoSrlg;
      else usage_error("unknown hardening set: " + value);
      harden_flag_seen = true;
    } else if (flag == "--harden-k") {
      opt.harden.catalog.k = std::stoi(value);
      harden_flag_seen = true;
    } else if (flag == "--harden-budget") {
      const long budget = std::stol(value);
      if (budget < 1) usage_error("--harden-budget must be >= 1");
      opt.harden.catalog.budget = static_cast<std::size_t>(budget);
      harden_flag_seen = true;
    } else if (flag == "--harden-srlg-file") {
      opt.harden.catalog.srlg_file = value;
      harden_flag_seen = true;
    } else if (flag == "--harden-geo-grid") {
      opt.harden.catalog.geo_grid = std::stoi(value);
      harden_flag_seen = true;
    } else if (flag == "--harden-percentile") {
      const double p = std::stod(value);
      if (p < 0.0 || p > 1.0) usage_error("--harden-percentile must be in [0, 1]");
      opt.harden.catalog.percentile = p;
      harden_flag_seen = true;
    } else if (flag == "--harden-period") {
      const double minutes = std::stod(value);
      if (minutes <= 0.0) usage_error("--harden-period must be > 0 minutes");
      opt.harden.period_minutes = minutes;
      harden_flag_seen = true;
    }
    else if (flag == "--nodes") opt.nodes = std::stoi(value);
    else if (flag == "--degree") opt.degree = std::stod(value);
    else if (flag == "--seed") opt.seed = std::stoull(value);
    else if (flag == "--avg-util")
      opt.util = {UtilizationTarget::Kind::kAverage, std::stod(value)};
    else if (flag == "--max-util")
      opt.util = {UtilizationTarget::Kind::kMax, std::stod(value)};
    else if (flag == "--theta") opt.theta_ms = std::stod(value);
    else if (flag == "--fraction") opt.fraction = std::stod(value);
    else if (flag == "--effort") {
      if (value == "smoke") opt.effort = Effort::kSmoke;
      else if (value == "quick") opt.effort = Effort::kQuick;
      else if (value == "full") opt.effort = Effort::kFull;
      else usage_error("unknown effort: " + value);
    } else if (flag == "--in-graph") opt.in_graph = value;
    else if (flag == "--out-graph") opt.out_graph = value;
    else if (flag == "--out-weights") opt.out_weights = value;
    else if (flag == "--out-dot") opt.out_dot = value;
    else if (flag == "--telemetry-json") opt.telemetry_json = value;
    else if (flag == "--trace-out") opt.trace_out = value;
    else if (flag == "--events-out") opt.events_out = value;
    else if (flag == "--trace-events") opt.trace_events = value;
    else if (flag == "--metrics-port") {
      opt.metrics_port = std::stoi(value);
      if (opt.metrics_port < 0 || opt.metrics_port > 65535)
        usage_error("--metrics-port must be in [0, 65535]");
    }
    else usage_error("unknown flag: " + flag);
  }
  if (harden_flag_seen && !opt.harden.enabled)
    usage_error("--harden-* flags need --objective expected|percentile|downtime");
  if (opt.harden.enabled &&
      opt.harden.catalog.kind == exp::ScenarioSpec::Kind::kSrlgFile &&
      opt.harden.catalog.srlg_file.empty())
    usage_error("--harden-set srlg_file needs --harden-srlg-file FILE");
  return opt;
}

int run_campaign_command(int argc, char** argv) {
  namespace exp = dtr::experiments;
  std::string spec_path, json_path, filter, telemetry_json, trace_out, events_out;
  int workers = 0, inner_threads = 1, metrics_port = -1;
  bool list = false, timings = false;
  // Evaluator execution knobs: results are bit-identical for every setting
  // (the CI golden gate proves it across the config corners); these exist to
  // cross-check the fast paths and to time them.
  dtr::EvaluatorConfig eval_config;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    const auto next_count = [&]() -> int {
      const std::string text = next();
      const auto count = exp::parse_worker_count(text);
      if (!count.has_value())
        usage_error(arg + " needs a count in [0, 4096], got '" + text + "'");
      return *count;
    };
    if (arg == "--spec") spec_path = next();
    else if (arg == "--json") json_path = next();
    else if (arg == "--filter") filter = next();
    else if (arg == "--workers") workers = next_count();
    else if (arg == "--inner-threads") inner_threads = next_count();
    else if (arg == "--list") list = true;
    else if (arg == "--timings") timings = true;
    else if (arg == "--no-incremental") eval_config.incremental = false;
    else if (arg == "--no-base-cache") eval_config.base_routing_cache = false;
    else if (arg == "--no-delay-dp") eval_config.incremental_delay = false;
    else if (arg == "--telemetry-json") telemetry_json = next();
    else if (arg == "--trace-out") trace_out = next();
    else if (arg == "--events-out") events_out = next();
    else if (arg == "--metrics-port") {
      metrics_port = std::stoi(next());
      if (metrics_port < 0 || metrics_port > 65535)
        usage_error("--metrics-port must be in [0, 65535]");
    }
    else usage_error("unknown campaign flag: " + arg);
  }
  if (spec_path.empty()) usage_error("campaign needs --spec FILE");
  std::ifstream in(spec_path);
  if (!in) usage_error("cannot open " + spec_path);

  exp::Campaign campaign;
  try {
    campaign = exp::parse_campaign_spec(in);
  } catch (const std::exception& e) {
    usage_error(e.what());
  }
  exp::filter_cells(campaign, filter);
  if (list) {
    for (const exp::CampaignCell& cell : campaign.cells) std::cout << cell.id << "\n";
    return 0;
  }

  // The registry only becomes a sink when an export was requested; the
  // campaign artifact's bytes are identical either way (test-enforced).
  telemetry::Registry registry;
  exp::CampaignOptions options{workers, inner_threads, eval_config};
  if (!telemetry_json.empty() || !trace_out.empty() || metrics_port >= 0)
    options.telemetry = &registry;
  // Sized for every cell's full smoke/quick stream at once: per-cell buses
  // are drained into this sink in one burst after the parallel barrier.
  telemetry::EventBus event_sink(1 << 18);
  if (!events_out.empty()) options.events = &event_sink;
  const auto exposer = start_exposer(registry, metrics_port);
  const exp::CampaignResult result = exp::run_campaign(campaign, options);

  exp::CampaignJsonOptions json_options;
  json_options.include_timings = timings;
  if (json_path.empty()) {
    // Artifact on stdout, human summary suppressed (pipe-friendly).
    exp::write_campaign_json(std::cout, result, json_options);
  } else {
    std::ofstream out(json_path);
    if (!out) usage_error("cannot write " + json_path);
    exp::write_campaign_json(out, result, json_options);
    finish_write(out, json_path);
    std::cout << "wrote campaign JSON to " << json_path << "\n";
    Table table({"cell", "reps", "error", "beta R", "beta NR"});
    for (const exp::CellResult& cell : result.cells) {
      table.row()
          .cell(cell.id)
          .integer(static_cast<long long>(cell.reps.size()))
          .cell(cell.error.empty() ? "-" : cell.error)
          .num(exp::aggregate_metric(cell, "beta_r").mean)
          .num(exp::aggregate_metric(cell, "beta_nr").mean);
    }
    table.print(std::cout);
  }
  export_telemetry(registry, campaign.name, telemetry_json, trace_out);
  if (!events_out.empty()) export_events(event_sink, events_out);
  int failures = 0;
  for (const exp::CellResult& cell : result.cells)
    if (!cell.error.empty()) ++failures;
  return failures > 0 ? 1 : 0;
}

int run_scenarios_command(int argc, char** argv) {
  namespace exp = dtr::experiments;
  exp::ScenarioSpec spec;
  spec.kind = exp::ScenarioSpec::Kind::kAllLinks;
  spec.budget = 100;
  std::string set_name = "all_links", topology = "rand", in_graph, json_path;
  int nodes = 16;
  double degree = 5.0, theta_ms = 25.0;
  std::uint64_t seed = 1;
  bool list = false, describe = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--set") {
      set_name = next();
      if (set_name == "all_links") spec.kind = exp::ScenarioSpec::Kind::kAllLinks;
      else if (set_name == "all_nodes") spec.kind = exp::ScenarioSpec::Kind::kAllNodes;
      else if (set_name == "k_link") spec.kind = exp::ScenarioSpec::Kind::kKLink;
      else if (set_name == "srlg_file") spec.kind = exp::ScenarioSpec::Kind::kSrlgFile;
      else if (set_name == "geo_srlg") spec.kind = exp::ScenarioSpec::Kind::kGeoSrlg;
      else usage_error("unknown scenario set: " + set_name);
    } else if (arg == "--k") spec.k = std::stoi(next());
    else if (arg == "--budget") {
      // Same floor as the campaign spec's scenario_budget: a zero budget
      // would silently emit an empty catalog.
      const long budget = std::stol(next());
      if (budget < 1) usage_error("--budget must be >= 1");
      spec.budget = static_cast<std::size_t>(budget);
    } else if (arg == "--srlg-file") spec.srlg_file = next();
    else if (arg == "--geo-grid") spec.geo_grid = std::stoi(next());
    else if (arg == "--rates") spec.rate_weights = true;
    else if (arg == "--topology") topology = next();
    else if (arg == "--nodes") nodes = std::stoi(next());
    else if (arg == "--degree") degree = std::stod(next());
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--theta") theta_ms = std::stod(next());
    else if (arg == "--in-graph") in_graph = next();
    else if (arg == "--json") json_path = next();
    else if (arg == "--list") list = true;
    else if (arg == "--describe") describe = true;
    else usage_error("unknown scenarios flag: " + arg);
  }
  if (spec.kind == exp::ScenarioSpec::Kind::kSrlgFile && spec.srlg_file.empty())
    usage_error("scenarios --set srlg_file needs --srlg-file FILE");

  const Graph graph =
      build_topology(topology, in_graph, nodes, degree, seed, theta_ms).graph;

  ScenarioSet set;
  try {
    set = exp::build_scenario_set(spec, graph, seed);
  } catch (const std::exception& e) {
    usage_error(e.what());
  }

  if (list) {
    for (std::size_t i = 0; i < set.size(); ++i) std::cout << set.name(i) << "\n";
    return 0;
  }
  if (describe) {
    Table table({"scenario", "kind", "links", "nodes", "weight"});
    for (std::size_t i = 0; i < set.size(); ++i) {
      std::size_t num_links = 0, num_nodes = 0;
      for_each_failed_element(
          set.scenario(i), [&](LinkId) { ++num_links; }, [&](NodeId) { ++num_nodes; });
      table.row()
          .cell(set.name(i))
          .cell(std::string(to_string(set.scenario(i).kind)))
          .integer(static_cast<long long>(num_links))
          .integer(static_cast<long long>(num_nodes))
          .num(set.weight(i));
    }
    std::cout << "scenario catalog '" << set_name << "': " << set.size()
              << " scenarios, total weight " << set.total_weight() << "\n";
    table.print(std::cout);
    return 0;
  }
  if (json_path.empty()) {
    write_scenario_set_json(std::cout, set, set_name);
  } else {
    std::ofstream out(json_path);
    if (!out) usage_error("cannot write " + json_path);
    write_scenario_set_json(out, set, set_name);
    finish_write(out, json_path);
    std::cout << "wrote " << set.size() << " scenarios to " << json_path << "\n";
  }
  return 0;
}

/// Extracts the raw value of `key` from one compact JSON line the repo's own
/// writers produced (string values lose their quotes; nested escapes are
/// un-escaped only for \" and \\). Returns "" when the key is absent. This is
/// a reader for OUR schema, not a JSON parser — the repo deliberately has no
/// general-purpose one.
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t i = at + needle.size();
  if (i >= line.size()) return "";
  if (line[i] == '"') {
    std::string value;
    for (++i; i < line.size() && line[i] != '"'; ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      value.push_back(line[i]);
    }
    return value;
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(i, end - i);
}

/// One pretty-printed line per event, aligned for terminal reading:
///   [  det] iter          phase2 iter=41 evals=1930 link=7 cost=(0,8.125e6)
///   [ proc] progress      smoke-rand 1/2 (+142ms)
void print_event_line(const std::string& line, std::ostream& os) {
  if (line.empty()) return;
  const std::string event = json_field(line, "event");
  if (event.empty()) return;  // not an event line; skip silently
  const std::string plane = json_field(line, "plane");
  os << (plane == "det" ? "[  det] " : "[ proc] ");
  os << event;
  for (std::size_t pad = event.size(); pad < 14; ++pad) os << ' ';  // longest kind + 1
  const std::string label = json_field(line, "label");
  if (event == "schema") {
    os << json_field(line, "schema");
  } else if (event == "iter") {
    os << label << " iter=" << json_field(line, "iter")
       << " evals=" << json_field(line, "evals");
    if (json_field(line, "restart") == "true") os << " restart";
    else os << " link=" << json_field(line, "link");
    os << " cost=(" << json_field(line, "lambda") << "," << json_field(line, "phi")
       << ")";
  } else if (event == "phase_end") {
    os << label << " iter=" << json_field(line, "iter")
       << " evals=" << json_field(line, "evals") << " cost=("
       << json_field(line, "lambda") << "," << json_field(line, "phi") << ")";
  } else if (event == "progress") {
    os << label << " " << json_field(line, "done");
    const std::string total = json_field(line, "total");
    if (!total.empty() && total != "0") os << "/" << total;
  } else if (event == "counter_delta") {
    os << label << " +" << json_field(line, "delta");
  } else if (event == "drops") {
    os << json_field(line, "dropped") << " events dropped";
  } else {
    os << label;  // phase_start / cell_start / cell_finish carry only a label
  }
  const std::string wall = json_field(line, "wall_ms");
  if (!wall.empty()) os << " (+" << wall << "ms)";
  os << "\n";
}

/// `dtr_tool tail FILE [--follow]` — live progress view over an events file.
/// --follow keeps polling for appended lines (reader-side tail -f; the writer
/// needs no cooperation) until interrupted.
int run_tail_command(int argc, char** argv) {
  std::string path;
  bool follow = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--follow") follow = true;
    else if (arg.rfind("--", 0) == 0) usage_error("unknown tail flag: " + arg);
    else if (path.empty()) path = arg;
    else usage_error("tail takes one FILE");
  }
  if (path.empty()) usage_error("tail needs an events FILE");
  std::ifstream in(path);
  if (!in) usage_error("cannot open " + path);
  std::string line;
  for (;;) {
    while (std::getline(in, line)) print_event_line(line, std::cout);
    if (!follow) break;
    std::cout.flush();
    in.clear();  // getline hit EOF; clear so appended bytes become readable
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--version") {
    std::cout << "dtr_tool schemas: " << dtr::experiments::kCampaignSchema << " "
              << telemetry::kTelemetrySchema << " " << telemetry::kEventsSchema << "\n";
    return 0;
  }
  if (argc >= 2 && std::string(argv[1]) == "campaign")
    return run_campaign_command(argc, argv);
  if (argc >= 2 && std::string(argv[1]) == "scenarios")
    return run_scenarios_command(argc, argv);
  if (argc >= 2 && std::string(argv[1]) == "tail")
    return run_tail_command(argc, argv);
  const Options opt = parse_args(argc, argv);

  // ---- topology
  BuiltTopology built = build_topology(opt.topology, opt.in_graph, opt.nodes,
                                       opt.degree, opt.seed, opt.theta_ms);
  Graph& graph = built.graph;
  const std::vector<std::string>& names = built.names;
  EvalParams params;
  params.sla.theta_ms = opt.theta_ms;

  // ---- traffic
  ClassedTraffic traffic =
      split_by_class(make_gravity_traffic(graph, {1.0, 1.0, opt.seed + 1}), 0.30);
  scale_to_utilization(graph, traffic, opt.util);

  // ---- optimize
  telemetry::Registry registry;
  telemetry::Registry* telemetry_sink =
      (opt.telemetry_json.empty() && opt.trace_out.empty() && opt.metrics_port < 0)
          ? nullptr
          : &registry;
  EvaluatorConfig eval_config;
  eval_config.telemetry = telemetry_sink;
  const Evaluator evaluator(graph, traffic, params, eval_config);
  OptimizerConfig config = default_optimizer_config(opt.effort, opt.seed);
  config.critical_fraction = opt.fraction;
  config.telemetry = telemetry_sink;
  telemetry::EventBus events;
  if (!opt.events_out.empty()) config.events = &events;
  const auto exposer = start_exposer(registry, opt.metrics_port);
  if (opt.harden.enabled) {
    try {
      config.objective = dtr::experiments::build_hardening_objective(
          opt.harden, graph, opt.seed + opt.harden.seed_offset);
    } catch (const std::exception& e) {
      usage_error(e.what());
    }
  }
  RobustOptimizer optimizer(evaluator, config);
  const OptimizeResult result = optimizer.optimize();

  std::cout << "topology: " << (opt.in_graph.empty() ? opt.topology : opt.in_graph)
            << "  nodes=" << graph.num_nodes() << " links=" << graph.num_links()
            << " (arcs=" << graph.num_arcs() << ")\n";
  std::cout << "normal cost regular: " << to_string(result.regular_cost)
            << "\nnormal cost robust:  " << to_string(result.robust_normal_cost)
            << "\ncritical set |Ec| = " << result.critical.size() << "\n";
  if (opt.harden.enabled) {
    std::cout << "hardening objective: " << to_string(opt.harden.mode)
              << "  catalog=" << result.catalog_size
              << " |Sc|=" << result.critical_scenarios.size()
              << " samples=" << result.scenario_samples << "\n";
    if (std::isfinite(result.robust_objective_value))
      std::cout << "robust objective value: " << result.robust_objective_value << "\n";
  }

  // ---- exports
  if (!opt.out_graph.empty()) {
    std::ofstream out(opt.out_graph);
    write_graph(out, graph);
    std::cout << "wrote graph to " << opt.out_graph << "\n";
  }
  if (!opt.out_weights.empty()) {
    std::ofstream out(opt.out_weights);
    out << "# robust DTR weights (delay throughput), seed " << opt.seed << "\n";
    write_weights(out, result.robust);
    std::cout << "wrote robust weights to " << opt.out_weights << "\n";
  }
  if (!opt.out_dot.empty()) {
    std::ofstream out(opt.out_dot);
    out << to_dot(graph, names);
    std::cout << "wrote Graphviz map to " << opt.out_dot << "\n";
  }

  // ---- failure report
  if (opt.report) {
    const auto scenarios = all_link_failures(graph);
    const FailureProfile regular = profile_failures(evaluator, result.regular, scenarios);
    const FailureProfile robust = profile_failures(evaluator, result.robust, scenarios);
    Table table({"routing", "avg violations", "top-10%", "sum Phi_fail"});
    table.row().cell("regular").num(regular.beta()).num(regular.beta_top()).num(
        regular.phi_sum(), 0);
    table.row().cell("robust").num(robust.beta()).num(robust.beta_top()).num(
        robust.phi_sum(), 0);
    std::cout << "\nAll single-link failures:\n";
    table.print(std::cout);
  }

  // ---- telemetry export (main owns the evaluator, so it flushes the cache
  // totals — exactly once, after every consumer above is done with it)
  if (telemetry_sink != nullptr) {
    evaluator.flush_cache_stats_to_telemetry();
    export_telemetry(registry, "dtr_tool", opt.telemetry_json, opt.trace_out);
  }
  if (!opt.events_out.empty()) export_events(events, opt.events_out);
  if (!opt.trace_events.empty()) export_trace_events(result, opt.trace_events);
  return 0;
}
