/// Critical-link explorer: exposes the paper's core methodology step by step.
/// Shows, for every link, the post-failure cost distribution statistics
/// (mean, left-tail mean), the resulting criticality rho (Eq. 8/9), the
/// normalized global ranking, and which links Algorithm 1 selects — plus how
/// the distribution-gap selection compares with random/load-based baselines.
///
///   ./critical_link_explorer [seed]

#include <algorithm>
#include <iostream>
#include <string>

#include "core/baseline_selectors.h"
#include "core/critical_selector.h"
#include "core/optimizer.h"
#include "graph/topology.h"
#include "traffic/gravity.h"
#include "traffic/scaling.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dtr;
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 5;

  Graph graph = make_rand_topo({.num_nodes = 14, .avg_degree = 5.0,
                                .capacity_mbps = 500.0, .seed = seed});
  EvalParams params;
  calibrate_delays_to_sla(graph, params.sla.theta_ms);
  ClassedTraffic traffic =
      split_by_class(make_gravity_traffic(graph, {.alpha = 1.0, .seed = seed + 1}), 0.30);
  scale_to_utilization(graph, traffic, {UtilizationTarget::Kind::kAverage, 0.55});
  const Evaluator evaluator(graph, traffic, params);

  // Run the optimizer once to drive Phases 1a/1b/1c and keep its estimates.
  OptimizerConfig config = default_optimizer_config(Effort::kQuick, seed);
  RobustOptimizer optimizer(evaluator, config);
  const OptimizeResult result = optimizer.optimize();

  const CriticalityEstimates& est = result.estimates;
  const CriticalSelection selection =
      select_critical_links(est, optimizer.critical_target_size());

  std::cout << "Per-link criticality (Eq. 8/9): rho = mean - left-tail mean of the\n"
               "post-failure cost distribution over acceptable routings.\n\n";
  Table table({"link", "endpoints", "mean Lambda", "tail Lambda", "rho_Lambda",
               "mean Phi", "tail Phi", "rho_Phi", "in Ec?"});
  for (LinkId l = 0; l < graph.num_links(); ++l) {
    const Arc& a = graph.arc(graph.link_arcs(l).front());
    const bool in_ec = std::find(selection.critical.begin(), selection.critical.end(),
                                 l) != selection.critical.end();
    table.row()
        .integer(l)
        .cell(std::to_string(a.src) + "-" + std::to_string(a.dst))
        .num(est.mean_lambda[l], 1)
        .num(est.tail_lambda[l], 1)
        .num(est.rho_lambda[l], 1)
        .num(est.mean_phi[l], 0)
        .num(est.tail_phi[l], 0)
        .num(est.rho_phi[l], 0)
        .cell(in_ec ? "YES" : "");
  }
  table.print(std::cout);

  std::cout << "\nAlgorithm 1 kept n1=" << selection.n1 << " Lambda-ranked and n2="
            << selection.n2 << " Phi-ranked links; expected normalized errors: "
            << format_double(selection.expected_error_lambda, 4) << " (Lambda), "
            << format_double(selection.expected_error_phi, 4) << " (Phi)\n";

  // Contrast with the prior-work selectors on the same instance.
  Rng rng(seed + 3);
  const auto random_sel =
      select_random_links(graph.num_links(), selection.critical.size(), rng);
  const auto load_sel = select_by_load(evaluator, result.regular, selection.critical.size());

  auto show = [&](const char* name, const std::vector<LinkId>& sel) {
    std::cout << name << ": {";
    for (std::size_t i = 0; i < sel.size(); ++i)
      std::cout << (i ? ", " : "") << sel[i];
    std::cout << "}\n";
  };
  std::cout << "\nSelector comparison (|Ec| = " << selection.critical.size() << "):\n";
  show("distribution-gap (ours)", selection.critical);
  show("random  [Yuan 03]      ", random_sel);
  show("load    [Fortz 03]     ", load_sel);
  std::cout << "\nRun bench_selector_ablation for the quantitative comparison.\n";
  return 0;
}
