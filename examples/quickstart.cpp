/// Quickstart: build a small network, generate two-class traffic, run the
/// two-phase robust DTR optimization and compare the regular vs. robust
/// routings across all single link failures.
///
///   ./quickstart [seed]
///
/// This is the 60-second tour of the public API:
///   topology  ->  traffic  ->  Evaluator  ->  RobustOptimizer  ->  metrics

#include <cstdio>
#include <iostream>
#include <string>

#include "core/metrics.h"
#include "core/optimizer.h"
#include "graph/topology.h"
#include "traffic/gravity.h"
#include "traffic/scaling.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dtr;
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 42;

  // 1. A 16-node random topology with 2-edge-connectivity (no single link
  //    failure can partition it), delays calibrated to the 25 ms SLA bound.
  Graph graph = make_rand_topo({.num_nodes = 16, .avg_degree = 5.0,
                                .capacity_mbps = 500.0, .seed = seed});
  EvalParams params;  // theta=25ms, B1=100, B2=1, mu=0.95, kappa=1500B
  calibrate_delays_to_sla(graph, params.sla.theta_ms);

  // 2. Gravity-model traffic, 30% delay-sensitive, scaled so min-hop routing
  //    averages 43% link utilization (the paper's baseline load).
  ClassedTraffic traffic =
      split_by_class(make_gravity_traffic(graph, {.alpha = 1.0, .seed = seed + 1}), 0.30);
  scale_to_utilization(graph, traffic, {UtilizationTarget::Kind::kAverage, 0.43});

  // 3. The evaluator maps (weight setting, failure scenario) -> costs.
  const Evaluator evaluator(graph, traffic, params);

  // 4. Two-phase optimization: Phase 1 minimizes K_normal = <Lambda, Phi>;
  //    Phase 2 minimizes the compound failure cost over the critical links,
  //    without degrading normal-condition performance.
  RobustOptimizer optimizer(evaluator, default_optimizer_config(Effort::kQuick, seed));
  const OptimizeResult result = optimizer.optimize();

  std::cout << "Regular (Phase 1) normal cost:  " << to_string(result.regular_cost) << "\n";
  std::cout << "Robust  (Phase 2) normal cost:  " << to_string(result.robust_normal_cost)
            << "\n";
  std::cout << "Critical links |Ec| = " << result.critical.size() << " of "
            << graph.num_links() << " (ranking converged: "
            << (result.criticality_converged ? "yes" : "no") << ")\n";

  // 5. Judge both routings across ALL single link failures.
  const auto scenarios = all_link_failures(graph);
  const FailureProfile regular = profile_failures(evaluator, result.regular, scenarios);
  const FailureProfile robust = profile_failures(evaluator, result.robust, scenarios);

  Table table({"routing", "avg SLA violations", "top-10% violations", "sum Phi_fail"});
  table.row().cell("regular").num(regular.beta()).num(regular.beta_top()).num(
      regular.phi_sum(), 0);
  table.row().cell("robust").num(robust.beta()).num(robust.beta_top()).num(
      robust.phi_sum(), 0);
  table.print(std::cout);

  std::cout << "\nRobust optimization cut average post-failure SLA violations from "
            << format_double(regular.beta()) << " to " << format_double(robust.beta())
            << " while keeping normal-condition throughput cost within "
            << format_double(
                   (result.robust_normal_cost.phi / std::max(result.regular_cost.phi, 1e-9) -
                    1.0) * 100.0, 1)
            << "% of optimal.\n";
  return 0;
}
