/// ISP backbone case study: runs robust DTR optimization on the embedded
/// 16-city / 70-arc North-American backbone and prints a per-failure report
/// naming the cities on each end of every link — the view a network operator
/// would act on.
///
///   ./isp_case_study [seed]

#include <algorithm>
#include <iostream>
#include <numeric>
#include <string>

#include "core/metrics.h"
#include "core/optimizer.h"
#include "graph/isp.h"
#include "traffic/gravity.h"
#include "traffic/scaling.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dtr;
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 7;

  IspTopology isp = make_isp_backbone();
  EvalParams params;  // theta = 25ms: coast-to-coast SLA

  ClassedTraffic traffic = split_by_class(
      make_gravity_traffic(isp.graph, {.alpha = 1.0, .seed = seed}), 0.30);
  scale_to_utilization(isp.graph, traffic, {UtilizationTarget::Kind::kAverage, 0.43});

  const Evaluator evaluator(isp.graph, traffic, params);
  RobustOptimizer optimizer(evaluator, default_optimizer_config(Effort::kQuick, seed));
  const OptimizeResult result = optimizer.optimize();

  auto link_name = [&](LinkId l) {
    const Arc& a = isp.graph.arc(isp.graph.link_arcs(l).front());
    return isp.city_names[a.src] + "--" + isp.city_names[a.dst];
  };

  std::cout << "ISP backbone: " << isp.graph.num_nodes() << " PoPs, "
            << isp.graph.num_arcs() << " directed links\n";
  std::cout << "Regular normal cost: " << to_string(result.regular_cost) << "\n";
  std::cout << "Robust  normal cost: " << to_string(result.robust_normal_cost) << "\n\n";

  std::cout << "Critical links (Phase 1c):\n";
  for (LinkId l : result.critical) std::cout << "  " << link_name(l) << "\n";

  const auto scenarios = all_link_failures(isp.graph);
  const FailureProfile regular = profile_failures(evaluator, result.regular, scenarios);
  const FailureProfile robust = profile_failures(evaluator, result.robust, scenarios);

  // Per-failure report sorted by regular-routing damage.
  std::vector<std::size_t> order(scenarios.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return regular.violations[a] > regular.violations[b];
  });

  Table table({"failed link", "violations (regular)", "violations (robust)",
               "Phi_fail (regular)", "Phi_fail (robust)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(order.size(), 12); ++i) {
    const std::size_t s = order[i];
    table.row()
        .cell(link_name(scenarios[s].id))
        .num(regular.violations[s], 0)
        .num(robust.violations[s], 0)
        .num(regular.phi[s], 0)
        .num(robust.phi[s], 0);
  }
  std::cout << "\nWorst link failures (by regular-routing SLA violations):\n";
  table.print(std::cout);

  std::cout << "\nSummary: avg violations regular=" << format_double(regular.beta())
            << " robust=" << format_double(robust.beta())
            << "; top-10% regular=" << format_double(regular.beta_top())
            << " robust=" << format_double(robust.beta_top()) << "\n";
  return 0;
}
