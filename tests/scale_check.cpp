/// ISP-scale determinism gate (own main, like differential_fuzz).
///
/// Generates a Rocketfuel-style ISP workload, runs the all-link-failures
/// incremental sweep, and proves two invariants at a size the unit suites
/// never touch:
///
///   1. Thread-shape byte identity: the sweep's results with a 1-thread pool
///      and an N-thread pool are bit-identical (exact double equality on
///      every field of every scenario).
///   2. Incremental == full: a deterministic sample of scenarios recomputed
///      with the incremental path disabled reproduces the sweep's results
///      bit for bit.
///
/// ctest registers a small smoke invocation; the CI scale-smoke job runs the
/// 1000-node / ~10k-link shape:
///
///   ./build/tests/scale_check --nodes 1000 --pops 40 --avg-degree 20
///       --threads 4 --full-sample 32
///
/// Any mismatch prints the scenario index and fields and exits 1.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiments/workloads.h"
#include "routing/failures.h"
#include "util/thread_pool.h"

namespace {

using namespace dtr;
using namespace dtr::experiments;
using Clock = std::chrono::steady_clock;

struct Args {
  int nodes = 120;
  int pops = 8;
  double avg_degree = 0.0;  // 0 = pure hierarchy
  int threads = 4;
  int full_sample = 8;
  std::uint64_t seed = 1;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") args.nodes = std::atoi(next());
    else if (arg == "--pops") args.pops = std::atoi(next());
    else if (arg == "--avg-degree") args.avg_degree = std::atof(next());
    else if (arg == "--threads") args.threads = std::atoi(next());
    else if (arg == "--full-sample") args.full_sample = std::atoi(next());
    else if (arg == "--seed") args.seed = std::strtoull(next(), nullptr, 10);
    else {
      std::fprintf(stderr,
                   "unknown flag %s (flags: --nodes N, --pops N, --avg-degree D, "
                   "--threads N, --full-sample N, --seed S)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

/// Exact-equality comparison of the scalar result fields; the sweep runs at
/// EvalDetail::kScalar so the vectors stay empty.
bool identical(const EvalResult& a, const EvalResult& b) {
  return a.lambda == b.lambda && a.phi == b.phi &&
         a.sla_violations == b.sla_violations &&
         a.disconnected_delay_pairs == b.disconnected_delay_pairs &&
         a.disconnected_tput_pairs == b.disconnected_tput_pairs;
}

int report_mismatch(const char* what, std::size_t scenario, const EvalResult& a,
                    const EvalResult& b) {
  std::fprintf(stderr,
               "MISMATCH (%s) at scenario %zu:\n"
               "  lambda %.17g vs %.17g\n  phi %.17g vs %.17g\n"
               "  violations %d vs %d\n",
               what, scenario, a.lambda, b.lambda, a.phi, b.phi,
               a.sla_violations, b.sla_violations);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  auto t0 = Clock::now();
  WorkloadSpec spec;
  spec.kind = TopologyKind::kIsp;
  spec.isp_source = IspSource::kGenerated;
  spec.nodes = args.nodes;
  spec.isp_pops = args.pops;
  spec.isp_avg_degree = args.avg_degree;
  spec.seed = args.seed;
  const Workload workload = make_workload(spec);
  const auto secs = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  std::printf("workload %s: %zu nodes, %zu links (%.1fs)\n",
              spec.label().c_str(), workload.graph.num_nodes(),
              workload.graph.num_links(), secs());

  const Evaluator ev(workload.graph, workload.traffic, workload.params);
  WeightSetting w(ev.graph().num_links());
  Rng rng(args.seed);
  randomize_weights(w, 30, rng);
  const std::vector<FailureScenario> scenarios = all_link_failures(ev.graph());

  t0 = Clock::now();
  ThreadPool seq(1);
  const std::vector<EvalResult> sweep1 = ev.evaluate_failures(w, scenarios, &seq);
  std::printf("incremental sweep, 1 thread: %zu scenarios in %.1fs\n",
              scenarios.size(), secs());

  t0 = Clock::now();
  ThreadPool pool(args.threads);
  const std::vector<EvalResult> sweepN = ev.evaluate_failures(w, scenarios, &pool);
  std::printf("incremental sweep, %d threads: %.1fs\n", args.threads, secs());

  for (std::size_t i = 0; i < scenarios.size(); ++i)
    if (!identical(sweep1[i], sweepN[i]))
      return report_mismatch("1-thread vs N-thread", i, sweep1[i], sweepN[i]);

  // Full-recompute cross-check on a deterministic stride of scenarios: the
  // incremental path is a pure HOW-knob, so the sampled results must match
  // bit for bit.
  EvaluatorConfig full_config;
  full_config.incremental = false;
  full_config.incremental_delay = false;
  const Evaluator full(workload.graph, workload.traffic, workload.params,
                       full_config);
  const std::size_t sample =
      std::min<std::size_t>(scenarios.size(),
                            static_cast<std::size_t>(std::max(args.full_sample, 1)));
  const std::size_t stride = scenarios.size() / sample;
  t0 = Clock::now();
  for (std::size_t k = 0; k < sample; ++k) {
    const std::size_t i = k * stride;
    const EvalResult r = full.evaluate(w, scenarios[i]);
    if (!identical(sweep1[i], r))
      return report_mismatch("incremental vs full", i, sweep1[i], r);
  }
  std::printf("full-path cross-check: %zu sampled scenarios in %.1fs\n", sample,
              secs());
  std::printf("scale_check OK: %zu scenarios byte-identical across thread "
              "shapes and against the full path\n",
              scenarios.size());
  return 0;
}
