#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.h"
#include "graph/isp.h"
#include "graph/spf.h"
#include "graph/topology.h"

namespace dtr {
namespace {

// ------------------------------------------------ parameterized generators

struct GenCase {
  const char* name;
  int nodes;
  double degree;
};

class SynthTopoTest : public ::testing::TestWithParam<std::tuple<GenCase, int>> {
 protected:
  Graph build(bool near) const {
    const auto& [c, seed] = GetParam();
    SynthTopoParams p{c.nodes, c.degree, 500.0, static_cast<std::uint64_t>(seed)};
    return near ? make_near_topo(p) : make_rand_topo(p);
  }
};

TEST_P(SynthTopoTest, RandTopoBasicInvariants) {
  const auto& [c, seed] = GetParam();
  const Graph g = build(false);
  EXPECT_EQ(g.num_nodes(), static_cast<std::size_t>(c.nodes));
  // Target link count reached (+/- nothing: rand topo hits it exactly unless
  // the complete graph is smaller).
  const auto target = static_cast<std::size_t>(std::lround(c.degree * c.nodes / 2.0));
  EXPECT_GE(g.num_links(), std::min<std::size_t>(target, g.num_nodes()));
  EXPECT_TRUE(is_two_edge_connected(g));
  EXPECT_EQ(g.num_arcs(), 2 * g.num_links());
  (void)seed;
}

TEST_P(SynthTopoTest, NearTopoBasicInvariants) {
  const auto& [c, seed] = GetParam();
  const Graph g = build(true);
  EXPECT_EQ(g.num_nodes(), static_cast<std::size_t>(c.nodes));
  EXPECT_TRUE(is_two_edge_connected(g));
  (void)seed;
}

TEST_P(SynthTopoTest, PositionsInsideUnitSquare) {
  const Graph g = build(false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(g.position(u).x, 0.0);
    EXPECT_LE(g.position(u).x, 1.0);
    EXPECT_GE(g.position(u).y, 0.0);
    EXPECT_LE(g.position(u).y, 1.0);
  }
}

TEST_P(SynthTopoTest, DelaysArePositive) {
  const Graph g = build(false);
  for (const Arc& a : g.arcs()) EXPECT_GT(a.prop_delay_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SynthTopoTest,
    ::testing::Combine(::testing::Values(GenCase{"small", 10, 4.0},
                                         GenCase{"paper30", 30, 6.0},
                                         GenCase{"dense", 15, 6.0}),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------ specific generator facts

TEST(RandTopoTest, PaperSizeHasExactLinkCount) {
  const Graph g = make_rand_topo({30, 6.0, 500.0, 11});
  EXPECT_EQ(g.num_links(), 90u);   // "30 nodes, 180 links" = 180 arcs
  EXPECT_EQ(g.num_arcs(), 180u);
}

TEST(RandTopoTest, DeterministicForSeed) {
  const Graph a = make_rand_topo({12, 4.0, 500.0, 5});
  const Graph b = make_rand_topo({12, 4.0, 500.0, 5});
  ASSERT_EQ(a.num_links(), b.num_links());
  for (ArcId i = 0; i < a.num_arcs(); ++i) {
    EXPECT_EQ(a.arc(i).src, b.arc(i).src);
    EXPECT_EQ(a.arc(i).dst, b.arc(i).dst);
  }
}

TEST(RandTopoTest, DifferentSeedsDiffer) {
  const Graph a = make_rand_topo({12, 4.0, 500.0, 5});
  const Graph b = make_rand_topo({12, 4.0, 500.0, 6});
  bool differs = a.num_links() != b.num_links();
  for (ArcId i = 0; !differs && i < a.num_arcs(); ++i)
    differs = a.arc(i).src != b.arc(i).src || a.arc(i).dst != b.arc(i).dst;
  EXPECT_TRUE(differs);
}

TEST(RandTopoTest, RejectsBadParameters) {
  EXPECT_THROW(make_rand_topo({2, 4.0, 500.0, 1}), std::invalid_argument);
  EXPECT_THROW(make_rand_topo({10, 1.0, 500.0, 1}), std::invalid_argument);
}

TEST(NearTopoTest, HasLowerPathDiversityThanRandTopo) {
  // The paper's core observation about NearTopo: nearest-neighbor wiring
  // produces longer shortest paths (hops) than a random graph of equal size.
  const SynthTopoParams p{30, 6.0, 500.0, 17};
  const Graph rand_g = make_rand_topo(p);
  const Graph near_g = make_near_topo(p);
  auto mean_hops = [](const Graph& g) {
    std::vector<double> unit(g.num_arcs(), 1.0);
    const auto d = all_pairs_distances_to(g, unit);
    double sum = 0.0;
    int count = 0;
    for (NodeId t = 0; t < g.num_nodes(); ++t)
      for (NodeId u = 0; u < g.num_nodes(); ++u)
        if (u != t) {
          sum += d[t][u];
          ++count;
        }
    return sum / count;
  };
  EXPECT_GT(mean_hops(near_g), mean_hops(rand_g));
}

TEST(PlTopoTest, PaperSizeHasExpectedLinkCount) {
  const Graph g = make_pl_topo({30, 3, 500.0, 7});
  // m*(n-m) = 3*27 = 81 links (162 arcs) unless 2-edge augmentation added a
  // couple: the paper's "PLTopo [30,162]".
  EXPECT_GE(g.num_links(), 81u);
  EXPECT_LE(g.num_links(), 84u);
  EXPECT_TRUE(is_two_edge_connected(g));
}

TEST(PlTopoTest, DegreeDistributionIsSkewed) {
  const Graph g = make_pl_topo({60, 2, 500.0, 3});
  std::size_t max_degree = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    max_degree = std::max(max_degree, g.link_degree(u));
  // Preferential attachment grows hubs: max degree far above the mean (~4).
  EXPECT_GE(max_degree, 8u);
}

TEST(PlTopoTest, RejectsBadParameters) {
  EXPECT_THROW(make_pl_topo({3, 3, 500.0, 1}), std::invalid_argument);
  EXPECT_THROW(make_pl_topo({10, 1, 500.0, 1}), std::invalid_argument);
}

// ------------------------------------------------ delays and calibration

TEST(DelayTest, SetDelaysFromPositionsUsesDistance) {
  Graph g(2);
  g.set_position(0, {0.0, 0.0});
  g.set_position(1, {0.3, 0.4});
  g.add_link(0, 1, 100.0, 1.0);
  set_delays_from_positions(g, 10.0);
  EXPECT_NEAR(g.arc(0).prop_delay_ms, 5.0, 1e-9);
}

TEST(DelayTest, CalibrationHitsTargetDiameter) {
  Graph g = make_rand_topo({20, 4.0, 500.0, 9});
  calibrate_delays_to_sla(g, 25.0, 0.85);
  EXPECT_NEAR(propagation_diameter_ms(g), 0.85 * 25.0, 1e-6);
}

TEST(DelayTest, CalibrationValidation) {
  Graph g = make_rand_topo({10, 4.0, 500.0, 9});
  EXPECT_THROW(calibrate_delays_to_sla(g, -5.0), std::invalid_argument);
}

// ------------------------------------------------ ISP backbone

TEST(IspTest, MatchesPaperDimensions) {
  const IspTopology isp = make_isp_backbone();
  EXPECT_EQ(isp.graph.num_nodes(), 16u);
  EXPECT_EQ(isp.graph.num_arcs(), 70u);  // "16 nodes and 70 links"
  EXPECT_EQ(isp.graph.num_links(), 35u);
  EXPECT_EQ(isp.city_names.size(), 16u);
}

TEST(IspTest, IsTwoEdgeConnected) {
  const IspTopology isp = make_isp_backbone();
  EXPECT_TRUE(is_two_edge_connected(isp.graph));
}

TEST(IspTest, DelaysInPaperRange) {
  const IspTopology isp = make_isp_backbone();
  for (const Arc& a : isp.graph.arcs()) {
    EXPECT_GT(a.prop_delay_ms, 0.5);
    EXPECT_LT(a.prop_delay_ms, 21.0);  // "roughly from 5ms to 20ms"
  }
  // Longest single link should be a true long-haul hop (>10 ms).
  double max_delay = 0.0;
  for (const Arc& a : isp.graph.arcs()) max_delay = std::max(max_delay, a.prop_delay_ms);
  EXPECT_GT(max_delay, 10.0);
}

TEST(IspTest, CoastToCoastNearSlaBound) {
  // theta = 25ms approximates US coast-to-coast: the propagation diameter
  // should be tight against but below that bound.
  const IspTopology isp = make_isp_backbone();
  const double diameter = propagation_diameter_ms(isp.graph);
  EXPECT_GT(diameter, 15.0);
  EXPECT_LT(diameter, 25.0);
}

TEST(IspTest, CapacityParameterRespected) {
  const IspTopology isp = make_isp_backbone(1234.0);
  for (const Arc& a : isp.graph.arcs()) EXPECT_DOUBLE_EQ(a.capacity, 1234.0);
}

}  // namespace
}  // namespace dtr
