#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "util/presets.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace dtr {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(2);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 2000; ++i) ++seen[rng.uniform_int(0, 4)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(6, 5), std::invalid_argument);
}

TEST(RngTest, UniformIndexBounds) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.uniform_index(7), 7u);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, UniformRealInHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform_int(0, 1 << 20) != b.uniform_int(0, 1 << 20)) ++differences;
  EXPECT_GT(differences, 40);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(9);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Children should have distinct streams from each other and the parent.
  int same12 = 0;
  for (int i = 0; i < 50; ++i)
    if (child1.uniform_int(0, 1 << 20) == child2.uniform_int(0, 1 << 20)) ++same12;
  EXPECT_LT(same12, 5);
}

TEST(RngTest, SplitDeterministicFromSeed) {
  Rng a(77), b(77);
  Rng ca = a.split(), cb = b.split();
  EXPECT_EQ(ca.uniform_int(0, 1 << 30), cb.uniform_int(0, 1 << 30));
}

TEST(RngTest, NormalMeanApproximately) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, NormalZeroStddevReturnsMean) {
  Rng rng(6);
  EXPECT_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(8);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

// ---------------------------------------------------------------- stats

TEST(StatsTest, MeanBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, StddevKnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stddev with n-1: variance = 32/7.
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, StddevDegenerate) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
}

TEST(StatsTest, LeftTailMeanTakesSmallestFraction) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  // Smallest 10% of 100 samples = {1..10}, mean 5.5.
  EXPECT_DOUBLE_EQ(left_tail_mean(xs, 0.10), 5.5);
}

TEST(StatsTest, LeftTailMeanAtLeastOneSample) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  // floor(0.1*3)=0 -> clamped to 1 sample -> min element.
  EXPECT_DOUBLE_EQ(left_tail_mean(xs, 0.10), 1.0);
}

TEST(StatsTest, LeftTailDoesNotMutateInput) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  auto copy = xs;
  left_tail_mean(xs, 0.5);
  EXPECT_EQ(xs, copy);
}

TEST(StatsTest, TopTailMeanTakesLargestFraction) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(top_tail_mean(xs, 0.10), 95.5);
}

TEST(StatsTest, TailFractionValidation) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(left_tail_mean(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(left_tail_mean(xs, 1.1), std::invalid_argument);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(StatsTest, QuantileValidation) {
  EXPECT_THROW(quantile(std::vector<double>{1.0}, 1.5), std::invalid_argument);
}

TEST(StatsTest, MaxValue) {
  EXPECT_DOUBLE_EQ(max_value(std::vector<double>{1.0, 9.0, 3.0}), 9.0);
  EXPECT_DOUBLE_EQ(max_value(std::vector<double>{}), 0.0);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
}

TEST(StatsTest, RunningStatsEmpty) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

// ---------------------------------------------------------------- table

TEST(TableTest, PrintsAlignedColumnsAndSeparator) {
  Table t({"name", "value"});
  t.row().cell("alpha").num(1.5, 1);
  t.row().cell("b").integer(42);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableTest, MeanStdFormatting) {
  Table t({"x"});
  t.row().mean_std(1.234, 0.567, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23 (0.57)"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("x").cell("y");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(TableTest, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell("1");
  t.row().cell("2");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

// ---------------------------------------------------------------- presets

TEST(PresetsTest, EffortFromEnvDefaults) {
  unsetenv("DTR_EFFORT");
  EXPECT_EQ(effort_from_env(Effort::kQuick), Effort::kQuick);
  EXPECT_EQ(effort_from_env(Effort::kSmoke), Effort::kSmoke);
}

TEST(PresetsTest, EffortFromEnvParses) {
  setenv("DTR_EFFORT", "full", 1);
  EXPECT_EQ(effort_from_env(Effort::kQuick), Effort::kFull);
  setenv("DTR_EFFORT", "smoke", 1);
  EXPECT_EQ(effort_from_env(Effort::kQuick), Effort::kSmoke);
  setenv("DTR_EFFORT", "bogus", 1);
  EXPECT_EQ(effort_from_env(Effort::kQuick), Effort::kQuick);
  unsetenv("DTR_EFFORT");
}

TEST(PresetsTest, RepeatsFromEnv) {
  unsetenv("DTR_REPEATS");
  EXPECT_EQ(repeats_from_env(5), 5);
  setenv("DTR_REPEATS", "3", 1);
  EXPECT_EQ(repeats_from_env(5), 3);
  setenv("DTR_REPEATS", "-2", 1);
  EXPECT_EQ(repeats_from_env(5), 5);
  unsetenv("DTR_REPEATS");
}

TEST(PresetsTest, SeedFromEnv) {
  unsetenv("DTR_SEED");
  EXPECT_EQ(seed_from_env(11ull), 11ull);
  setenv("DTR_SEED", "123", 1);
  EXPECT_EQ(seed_from_env(11ull), 123ull);
  unsetenv("DTR_SEED");
}

TEST(PresetsTest, NodesFromEnv) {
  unsetenv("DTR_NODES");
  EXPECT_EQ(nodes_from_env(16), 16);
  setenv("DTR_NODES", "30", 1);
  EXPECT_EQ(nodes_from_env(16), 30);
  setenv("DTR_NODES", "2", 1);  // below minimum -> fallback
  EXPECT_EQ(nodes_from_env(16), 16);
  unsetenv("DTR_NODES");
}

TEST(PresetsTest, ToString) {
  EXPECT_EQ(to_string(Effort::kSmoke), "smoke");
  EXPECT_EQ(to_string(Effort::kQuick), "quick");
  EXPECT_EQ(to_string(Effort::kFull), "full");
}

}  // namespace
}  // namespace dtr
