#include <gtest/gtest.h>

#include "routing/evaluator.h"
#include "test_helpers.h"
#include "traffic/gravity.h"

namespace dtr {
namespace {

/// Two-node instance with a known single path: everything computable by hand.
struct TinyFixture {
  Graph g{2};
  ClassedTraffic traffic{TrafficMatrix(2), TrafficMatrix(2)};
  EvalParams params;

  TinyFixture(double delay_demand, double tput_demand, double prop_ms = 10.0,
              double capacity = 100.0) {
    g.add_link(0, 1, capacity, prop_ms);
    if (delay_demand > 0.0) traffic.delay.set(0, 1, delay_demand);
    if (tput_demand > 0.0) traffic.throughput.set(0, 1, tput_demand);
  }
};

TEST(EvaluatorTest, UncongestedPathMeetsSla) {
  TinyFixture f(3.0, 7.0);  // total 10 on capacity 100 — no queueing
  const Evaluator ev(f.g, f.traffic, f.params);
  WeightSetting w(f.g.num_links());
  const EvalResult r = ev.evaluate(w);
  EXPECT_DOUBLE_EQ(r.lambda, 0.0);  // 10ms < theta=25ms
  EXPECT_EQ(r.sla_violations, 0);
  // Phi: Fortz cost of 10 Mbps at 100 Mbps capacity = 10 (unit slope).
  EXPECT_NEAR(r.phi, 10.0, 1e-9);
}

TEST(EvaluatorTest, SlaViolationFromPropagationDelay) {
  TinyFixture f(1.0, 0.0, /*prop_ms=*/30.0);
  const Evaluator ev(f.g, f.traffic, f.params);
  WeightSetting w(f.g.num_links());
  const EvalResult r = ev.evaluate(w);
  EXPECT_EQ(r.sla_violations, 1);
  EXPECT_NEAR(r.lambda, 100.0 + (30.0 - 25.0), 1e-9);  // B1 + B2*(30-25)
}

TEST(EvaluatorTest, QueueingPushesDelayOverSla) {
  // 24ms propagation; queueing above 95% load adds ~0.5ms -> violation.
  TinyFixture f(29.0, 67.0, /*prop_ms=*/24.9);  // 96% load
  const Evaluator ev(f.g, f.traffic, f.params);
  WeightSetting w(f.g.num_links());
  const EvalResult r = ev.evaluate(w);
  EXPECT_EQ(r.sla_violations, 1);
  EXPECT_GT(r.lambda, 100.0);
}

TEST(EvaluatorTest, PhiOnlyOnThroughputCarryingLinks) {
  // Delay traffic on link 0-1; throughput demand zero => Phi == 0 even
  // though the link is loaded.
  TinyFixture f(10.0, 0.0);
  const Evaluator ev(f.g, f.traffic, f.params);
  WeightSetting w(f.g.num_links());
  const EvalResult r = ev.evaluate(w);
  EXPECT_DOUBLE_EQ(r.phi, 0.0);
}

TEST(EvaluatorTest, PhiUsesTotalLoad) {
  // Throughput 10 + delay 50 share the link: Phi charged on 60 total.
  TinyFixture f(50.0, 10.0);
  const Evaluator ev(f.g, f.traffic, f.params);
  WeightSetting w(f.g.num_links());
  const EvalResult r = ev.evaluate(w);
  // Fortz at 60% of 100Mbps: f(60) = 33.33 + 3*26.67 = 113.33...
  EXPECT_NEAR(r.phi, 100.0 / 3.0 + 3.0 * (60.0 - 100.0 / 3.0), 1e-6);
}

TEST(EvaluatorTest, FullDetailPopulatesProfiles) {
  const test::TestInstance inst = test::make_test_instance(8, 4.0, 3);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  WeightSetting w(inst.graph.num_links());
  const EvalResult r = ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  EXPECT_EQ(r.arc_total_load.size(), inst.graph.num_arcs());
  EXPECT_EQ(r.arc_utilization.size(), inst.graph.num_arcs());
  EXPECT_EQ(r.sd_delay_ms.size(), inst.graph.num_nodes() * inst.graph.num_nodes());
  EXPECT_EQ(r.carries_delay_traffic.size(), inst.graph.num_arcs());
  const EvalResult cheap = ev.evaluate(w);
  EXPECT_TRUE(cheap.arc_total_load.empty());
  EXPECT_DOUBLE_EQ(cheap.lambda, r.lambda);
  EXPECT_DOUBLE_EQ(cheap.phi, r.phi);
}

TEST(EvaluatorTest, LinkFailureCannotShortenPaths) {
  // Under min-hop (unit-weight) routing, removing a link can only lengthen
  // shortest paths, so the total carried load (sum over arcs of load ==
  // sum over demands of volume * hops) must not decrease. Phi itself is NOT
  // monotone (convex link costs + ECMP rebalancing can lower it), which is
  // exactly why the robust search is non-trivial.
  const test::TestInstance inst = test::make_test_instance(10, 4.0, 5, 0.5);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  WeightSetting w(inst.graph.num_links());
  const EvalResult normal = ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  double normal_load = 0.0;
  for (double x : normal.arc_total_load) normal_load += x;
  for (LinkId l = 0; l < inst.graph.num_links(); ++l) {
    const EvalResult failed = ev.evaluate(w, FailureScenario::link(l), EvalDetail::kFull);
    ASSERT_EQ(failed.disconnected_delay_pairs, 0u);  // 2-edge-connected input
    double failed_load = 0.0;
    for (double x : failed.arc_total_load) failed_load += x;
    EXPECT_GE(failed_load, normal_load - 1e-6) << "link " << l;
  }
}

TEST(EvaluatorTest, DisconnectionChargedNotCrashing) {
  // Diamond minus redundancy: chain 0-1-2; failing middle link disconnects.
  Graph g(3);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(1, 2, 100.0, 1.0);
  ClassedTraffic traffic{TrafficMatrix(3), TrafficMatrix(3)};
  traffic.delay.set(0, 2, 3.0);
  traffic.throughput.set(0, 2, 7.0);
  EvalParams params;
  const Evaluator ev(g, traffic, params);
  WeightSetting w(g.num_links());
  const EvalResult r = ev.evaluate(w, FailureScenario::link(1));
  EXPECT_EQ(r.disconnected_delay_pairs, 1u);
  EXPECT_EQ(r.disconnected_tput_pairs, 1u);
  EXPECT_EQ(r.sla_violations, 1);
  // Lambda: B1 + B2 * disconnect_excess (100ms default).
  EXPECT_NEAR(r.lambda, 100.0 + 100.0, 1e-9);
  // Phi: max slope * unrouted volume.
  EXPECT_NEAR(r.phi, 5000.0 * 7.0, 1e-9);
}

TEST(EvaluatorTest, NodeFailureRemovesItsTraffic) {
  const Graph g = test::make_ring(4);
  ClassedTraffic traffic{TrafficMatrix(4), TrafficMatrix(4)};
  traffic.delay.set(0, 2, 5.0);
  traffic.delay.set(1, 3, 5.0);  // sourced at the failing node
  EvalParams params;
  const Evaluator ev(g, traffic, params);
  WeightSetting w(g.num_links());
  const EvalResult r = ev.evaluate(w, FailureScenario::node(1), EvalDetail::kFull);
  // Node 1's traffic is gone; 0->2 must route around via 3.
  EXPECT_EQ(r.disconnected_delay_pairs, 0u);
  double total_load = 0.0;
  for (double x : r.arc_total_load) total_load += x;
  EXPECT_NEAR(total_load, 5.0 * 2.0, 1e-9);  // 0-3-2 two hops
}

TEST(EvaluatorTest, SweepSumsMatchDetailed) {
  const test::TestInstance inst = test::make_test_instance(9, 4.0, 6, 0.5);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  WeightSetting w(inst.graph.num_links());
  const auto scenarios = all_link_failures(inst.graph);
  const SweepResult sum = ev.sweep(w, scenarios);
  const auto detailed = ev.sweep_detailed(w, scenarios);
  double lambda = 0.0, phi = 0.0;
  for (const EvalResult& r : detailed) {
    lambda += r.lambda;
    phi += r.phi;
  }
  EXPECT_NEAR(sum.lambda, lambda, 1e-9);
  EXPECT_NEAR(sum.phi, phi, 1e-9);
  EXPECT_FALSE(sum.aborted);
  EXPECT_EQ(sum.scenarios_evaluated, scenarios.size());
}

TEST(EvaluatorTest, SweepEarlyAbortsAgainstBound) {
  const test::TestInstance inst = test::make_test_instance(9, 4.0, 6, 0.5);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  WeightSetting w(inst.graph.num_links());
  const auto scenarios = all_link_failures(inst.graph);
  const SweepResult full = ev.sweep(w, scenarios);
  // A bound well below the true sum must trigger an abort before the end.
  const CostPair tight{full.lambda / 2.0, full.phi / 2.0};
  const SweepResult aborted = ev.sweep(w, scenarios, {.abort_bound = &tight});
  EXPECT_TRUE(aborted.aborted);
  EXPECT_LE(aborted.scenarios_evaluated, scenarios.size());
  // A very loose bound must not abort.
  const CostPair loose{full.lambda * 2.0 + 1.0, full.phi * 2.0 + 1.0};
  const SweepResult kept = ev.sweep(w, scenarios, {.abort_bound = &loose});
  EXPECT_FALSE(kept.aborted);
  EXPECT_NEAR(kept.lambda, full.lambda, 1e-9);
}

TEST(EvaluatorTest, WeightedSweepComputesExpectation) {
  const test::TestInstance inst = test::make_test_instance(9, 4.0, 6, 0.5);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  WeightSetting w(inst.graph.num_links());
  const auto scenarios = all_link_failures(inst.graph);
  std::vector<double> weights(scenarios.size(), 0.0);
  weights[0] = 2.0;
  weights[1] = 0.5;
  const SweepResult weighted = ev.sweep(w, scenarios, {.scenario_weights = weights});
  const EvalResult r0 = ev.evaluate(w, scenarios[0]);
  const EvalResult r1 = ev.evaluate(w, scenarios[1]);
  EXPECT_NEAR(weighted.lambda, 2.0 * r0.lambda + 0.5 * r1.lambda, 1e-9);
  EXPECT_NEAR(weighted.phi, 2.0 * r0.phi + 0.5 * r1.phi, 1e-9);
}

TEST(EvaluatorTest, WeightedSweepValidation) {
  const test::TestInstance inst = test::make_test_instance(8, 4.0, 6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  WeightSetting w(inst.graph.num_links());
  const auto scenarios = all_link_failures(inst.graph);
  const std::vector<double> short_weights(2, 1.0);
  EXPECT_THROW(ev.sweep(w, scenarios, {.scenario_weights = short_weights}),
               std::invalid_argument);
  std::vector<double> negative(scenarios.size(), -1.0);
  EXPECT_THROW(ev.sweep(w, scenarios, {.scenario_weights = negative}),
               std::invalid_argument);
}

TEST(EvaluatorTest, PhiUncapPositiveAndStable) {
  const test::TestInstance inst = test::make_test_instance(8, 4.0, 7);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  EXPECT_GT(ev.phi_uncap(), 0.0);
  EXPECT_EQ(ev.delay_demand_pairs(), inst.traffic.delay.num_positive_demands());
}

TEST(EvaluatorTest, WorstPathModeNeverBelowExpected) {
  test::TestInstance inst = test::make_test_instance(10, 4.0, 8, 0.6);
  const Evaluator expected_ev(inst.graph, inst.traffic, inst.params);
  EvalParams worst_params = inst.params;
  worst_params.sla_delay_mode = SlaDelayMode::kWorstPath;
  const Evaluator worst_ev(inst.graph, inst.traffic, worst_params);
  WeightSetting w(inst.graph.num_links());
  const EvalResult e = expected_ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  const EvalResult wr = worst_ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  for (std::size_t i = 0; i < e.sd_delay_ms.size(); ++i) {
    if (e.sd_delay_ms[i] < 0.0) continue;
    EXPECT_GE(wr.sd_delay_ms[i], e.sd_delay_ms[i] - 1e-9);
  }
  EXPECT_GE(wr.sla_violations, e.sla_violations);
}

TEST(EvaluatorTest, SizeMismatchValidation) {
  const test::TestInstance inst = test::make_test_instance(8, 4.0, 9);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  WeightSetting wrong(3);
  EXPECT_THROW(ev.evaluate(wrong), std::invalid_argument);
  ClassedTraffic mismatched{TrafficMatrix(3), TrafficMatrix(3)};
  EXPECT_THROW(Evaluator(inst.graph, mismatched, inst.params), std::invalid_argument);
}

TEST(EvaluatorTest, DeterministicAcrossCalls) {
  const test::TestInstance inst = test::make_test_instance(10, 4.0, 10, 0.5);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  WeightSetting w(inst.graph.num_links());
  Rng rng(1);
  randomize_weights(w, 40, rng);
  const EvalResult a = ev.evaluate(w);
  const EvalResult b = ev.evaluate(w);
  EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
  EXPECT_DOUBLE_EQ(a.phi, b.phi);
  EXPECT_EQ(a.sla_violations, b.sla_violations);
}

}  // namespace
}  // namespace dtr
