#include <gtest/gtest.h>

#include <algorithm>

#include "core/baseline_selectors.h"
#include "test_helpers.h"

namespace dtr {
namespace {

TEST(RandomSelectorTest, SizeAndUniqueness) {
  Rng rng(1);
  const auto sel = select_random_links(20, 5, rng);
  EXPECT_EQ(sel.size(), 5u);
  EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
  EXPECT_EQ(std::adjacent_find(sel.begin(), sel.end()), sel.end());
  for (LinkId l : sel) EXPECT_LT(l, 20u);
}

TEST(RandomSelectorTest, CoversAllLinksOverDraws) {
  Rng rng(2);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 200; ++i)
    for (LinkId l : select_random_links(10, 3, rng)) ++hits[l];
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(RandomSelectorTest, TargetTooLargeThrows) {
  Rng rng(3);
  EXPECT_THROW(select_random_links(5, 6, rng), std::invalid_argument);
}

TEST(LoadSelectorTest, PicksHighestUtilizationLinks) {
  // Chain with a bottleneck: middle link carries everything and has smaller
  // capacity; it must rank first.
  Graph g(4);
  g.add_link(0, 1, 1000.0, 1.0);
  const LinkId bottleneck = g.add_link(1, 2, 50.0, 1.0);
  g.add_link(2, 3, 1000.0, 1.0);
  ClassedTraffic traffic{TrafficMatrix(4), TrafficMatrix(4)};
  traffic.throughput.set(0, 3, 30.0);
  const Evaluator ev(g, traffic, EvalParams{});
  const WeightSetting w(g.num_links());
  const auto sel = select_by_load(ev, w, 1);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], bottleneck);
}

TEST(LoadSelectorTest, SizeRespected) {
  const test::TestInstance inst = test::make_test_instance(10, 4.0, 4);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const WeightSetting w(inst.graph.num_links());
  const auto sel = select_by_load(ev, w, 4);
  EXPECT_EQ(sel.size(), 4u);
}

TEST(ThresholdSelectorTest, RanksFrequentBadPerformers) {
  CriticalityParams p;
  p.tau = 1000;  // no rank updates needed here
  CriticalityCollector collector(3, 100, 100.0, p, 1);
  // Link 0: always terrible. Link 1: mixed. Link 2: always good.
  for (int i = 0; i < 40; ++i) {
    collector.add_sample(0, {1000.0, 1000.0});
    collector.add_sample(1, {i % 2 ? 1000.0 : 0.0, 0.0});
    collector.add_sample(2, {0.0, 0.0});
  }
  const auto sel = select_by_threshold_crossings(collector, 2);
  EXPECT_EQ(sel.size(), 2u);
  EXPECT_NE(std::find(sel.begin(), sel.end(), 0u), sel.end());
  EXPECT_NE(std::find(sel.begin(), sel.end(), 1u), sel.end());
}

TEST(ThresholdSelectorTest, HandlesEmptySamples) {
  CriticalityParams p;
  CriticalityCollector collector(3, 100, 100.0, p, 1);
  const auto sel = select_by_threshold_crossings(collector, 2);
  EXPECT_EQ(sel.size(), 2u);  // degenerate but well-defined (ties by id)
}

TEST(ThresholdSelectorTest, QuantileValidation) {
  CriticalityParams p;
  CriticalityCollector collector(2, 100, 100.0, p, 1);
  EXPECT_THROW(select_by_threshold_crossings(collector, 1, {1.5}), std::invalid_argument);
}

}  // namespace
}  // namespace dtr
