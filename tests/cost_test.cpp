#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cost/cost_types.h"
#include "cost/delay_model.h"
#include "cost/fortz.h"
#include "cost/sla.h"

namespace dtr {
namespace {

// ---------------------------------------------------------- delay model

TEST(DelayModelTest, PropagationOnlyBelowThreshold) {
  const DelayModelParams p;
  // mu = 0.95: at 94% utilization, delay == propagation (Eq. 1a).
  EXPECT_DOUBLE_EQ(link_delay_ms(470.0, 500.0, 7.0, p), 7.0);
  EXPECT_DOUBLE_EQ(link_delay_ms(0.0, 500.0, 7.0, p), 7.0);
  EXPECT_DOUBLE_EQ(link_delay_ms(475.0, 500.0, 7.0, p), 7.0);  // exactly mu
}

TEST(DelayModelTest, QueueingAppearsAboveThreshold) {
  const DelayModelParams p;
  const double d = link_delay_ms(480.0, 500.0, 7.0, p);  // 96% > mu
  EXPECT_GT(d, 7.0);
}

TEST(DelayModelTest, PaperCalibration95PercentUnderHalfMs) {
  // Paper: "a 95% link load corresponds to an average queueing delay of less
  // than 0.5ms" at kappa=1500B, C=500Mbps.
  const DelayModelParams p;
  const double q = queueing_delay_ms(475.0, 500.0, p);
  EXPECT_LT(q, 0.5);
  EXPECT_GT(q, 0.4);  // M/M/1: 0.024ms * (19+1) = 0.48ms
  EXPECT_NEAR(q, 0.48, 1e-9);
}

TEST(DelayModelTest, MM1ExactValueMidRange) {
  const DelayModelParams p;
  // x/C = 0.5: x/(C-x) = 1 -> (kappa/C)*2. kappa/C = 1500*0.008/100 = 0.12ms.
  EXPECT_NEAR(queueing_delay_ms(50.0, 100.0, p), 0.12 * 2.0, 1e-12);
}

TEST(DelayModelTest, MonotoneInLoad) {
  const DelayModelParams p;
  double prev = 0.0;
  for (double load = 0.0; load <= 130.0; load += 1.0) {
    const double q = queueing_delay_ms(load, 100.0, p);
    EXPECT_GE(q, prev) << "load " << load;
    prev = q;
  }
}

TEST(DelayModelTest, ContinuousAtLinearizationKnee) {
  const DelayModelParams p;
  const double knee = 0.99 * 100.0;
  const double below = queueing_delay_ms(knee - 1e-7, 100.0, p);
  const double above = queueing_delay_ms(knee + 1e-7, 100.0, p);
  EXPECT_NEAR(below, above, 1e-4);
}

TEST(DelayModelTest, FiniteAboveCapacity) {
  const DelayModelParams p;
  const double d = link_delay_ms(150.0, 100.0, 5.0, p);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GT(d, 5.0);
}

TEST(DelayModelTest, LinearizedSlopeMatchesTangent) {
  const DelayModelParams p;
  // Past the knee the occupancy term is linear with slope C/(C-knee)^2.
  const double c = 100.0;
  const double q1 = queueing_delay_ms(110.0, c, p);
  const double q2 = queueing_delay_ms(111.0, c, p);
  const double kappa_over_c = 1500.0 * 0.008 / c;
  const double expected_slope = kappa_over_c * (c / (1.0 * 1.0));  // (C-0.99C)^2 = 1
  EXPECT_NEAR(q2 - q1, expected_slope, 1e-9);
}

TEST(DelayModelTest, Validation) {
  const DelayModelParams p;
  EXPECT_THROW(queueing_delay_ms(10.0, 0.0, p), std::invalid_argument);
  EXPECT_THROW(queueing_delay_ms(-1.0, 10.0, p), std::invalid_argument);
  EXPECT_THROW(link_delay_ms(1.0, 10.0, -1.0, p), std::invalid_argument);
}

TEST(DelayModelTest, CustomThreshold) {
  DelayModelParams p;
  p.utilization_threshold = 0.5;
  EXPECT_DOUBLE_EQ(link_delay_ms(49.0, 100.0, 3.0, p), 3.0);
  EXPECT_GT(link_delay_ms(51.0, 100.0, 3.0, p), 3.0);
}

// ---------------------------------------------------------- SLA cost

TEST(SlaTest, ZeroBelowBound) {
  const SlaParams p;  // theta=25, B1=100, B2=1
  EXPECT_DOUBLE_EQ(sla_cost(10.0, p), 0.0);
  EXPECT_DOUBLE_EQ(sla_cost(25.0, p), 0.0);  // boundary: <= theta is fine
  EXPECT_FALSE(sla_violated(25.0, p));
}

TEST(SlaTest, PenaltyAboveBound) {
  const SlaParams p;
  EXPECT_TRUE(sla_violated(25.001, p));
  EXPECT_NEAR(sla_cost(30.0, p), 100.0 + 5.0, 1e-12);
  EXPECT_NEAR(sla_cost(125.0, p), 100.0 + 100.0, 1e-12);
}

TEST(SlaTest, B1JumpAtBoundary) {
  const SlaParams p;
  // Even an infinitesimal violation costs at least B1.
  EXPECT_GE(sla_cost(25.0 + 1e-9, p), 100.0);
}

TEST(SlaTest, CustomParameters) {
  const SlaParams p{50.0, 10.0, 2.0};
  EXPECT_DOUBLE_EQ(sla_cost(49.0, p), 0.0);
  EXPECT_DOUBLE_EQ(sla_cost(60.0, p), 10.0 + 2.0 * 10.0);
}

TEST(SlaTest, AccumulateSkipsCapsAndCounts) {
  const SlaParams p;  // theta=25, B1=100, B2=1
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Layout mirrors the evaluator's sd_delay: -1 = no demand, +inf =
  // disconnected (replaced in place by the disconnect charge).
  std::vector<double> delays{-1.0, 10.0, 30.0, kInf, -1.0, 25.0};
  const SlaAggregate agg = accumulate_sla_cost(delays, p, 125.0);
  EXPECT_EQ(agg.violations, 2);  // 30ms and the capped disconnect
  EXPECT_DOUBLE_EQ(agg.lambda, (100.0 + 5.0) + (100.0 + 100.0));
  EXPECT_DOUBLE_EQ(delays[3], 125.0);  // inf replaced in place
  EXPECT_DOUBLE_EQ(delays[0], -1.0);   // no-demand entries untouched
}

// ----------------------------------------------- delay-DP dirty-arc index

TEST(DelayDpIndexTest, MarksExactlyTheRecordedUsers) {
  DelayDpIndex index;
  index.reset(4);
  // Destination 0 reads arcs 0 and 2; destination 1 reads arc 2; arc 1 and
  // arc 3 have no users.
  index.add(0, 0);
  index.add(0, 2);
  index.add(1, 2);
  index.finalize();
  ASSERT_TRUE(index.ready());
  EXPECT_EQ(index.users(0).size(), 1u);
  EXPECT_EQ(index.users(1).size(), 0u);
  EXPECT_EQ(index.users(2).size(), 2u);

  const std::vector<double> base{1.0, 2.0, 3.0, 4.0};
  std::vector<std::uint8_t> dirty(3, 0);

  // Arc 1 changes: nobody reads it, nothing dirty.
  std::vector<double> now{1.0, 2.5, 3.0, 4.0};
  mark_dirty_destinations(index, base, now, dirty);
  EXPECT_EQ(dirty, (std::vector<std::uint8_t>{0, 0, 0}));

  // Arc 2 changes: both its users go dirty; destination 2 never does.
  now = {1.0, 2.0, 3.5, 4.0};
  mark_dirty_destinations(index, base, now, dirty);
  EXPECT_EQ(dirty, (std::vector<std::uint8_t>{1, 1, 0}));

  // The comparison is bitwise: -0.0 vs 0.0 compares EQUAL under == but must
  // still be treated as a change.
  std::fill(dirty.begin(), dirty.end(), 0);
  const std::vector<double> zero_base{0.0, 2.0, 3.0, 4.0};
  const std::vector<double> neg_zero{-0.0, 2.0, 3.0, 4.0};
  mark_dirty_destinations(index, zero_base, neg_zero, dirty);
  EXPECT_EQ(dirty, (std::vector<std::uint8_t>{1, 0, 0}));
}

// ---------------------------------------------------------- Fortz cost

TEST(FortzTest, ZeroLoadZeroCost) { EXPECT_DOUBLE_EQ(fortz_cost(0.0, 100.0), 0.0); }

TEST(FortzTest, UnitSlopeLowLoad) {
  // Below 1/3 utilization, f(x) = x.
  EXPECT_NEAR(fortz_cost(20.0, 100.0), 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(fortz_derivative(20.0, 100.0), 1.0);
}

TEST(FortzTest, BreakpointValuesMatchClosedForm) {
  const double c = 300.0;  // breakpoints at 100, 200, 270, 300, 330
  // f(100) = 100 (slope 1 up to 1/3).
  EXPECT_NEAR(fortz_cost(100.0, c), 100.0, 1e-9);
  // f(200) = 100 + 3*100 = 400.
  EXPECT_NEAR(fortz_cost(200.0, c), 400.0, 1e-9);
  // f(270) = 400 + 10*70 = 1100.
  EXPECT_NEAR(fortz_cost(270.0, c), 1100.0, 1e-9);
  // f(300) = 1100 + 70*30 = 3200.
  EXPECT_NEAR(fortz_cost(300.0, c), 3200.0, 1e-9);
  // f(330) = 3200 + 500*30 = 18200.
  EXPECT_NEAR(fortz_cost(330.0, c), 18200.0, 1e-9);
  // f(400) = 18200 + 5000*70 = 368200.
  EXPECT_NEAR(fortz_cost(400.0, c), 368200.0, 1e-9);
}

TEST(FortzTest, DerivativeSegments) {
  const double c = 100.0;
  EXPECT_DOUBLE_EQ(fortz_derivative(0.0, c), 1.0);
  EXPECT_DOUBLE_EQ(fortz_derivative(34.0, c), 3.0);
  EXPECT_DOUBLE_EQ(fortz_derivative(67.0, c), 10.0);
  EXPECT_DOUBLE_EQ(fortz_derivative(91.0, c), 70.0);
  EXPECT_DOUBLE_EQ(fortz_derivative(101.0, c), 500.0);
  EXPECT_DOUBLE_EQ(fortz_derivative(120.0, c), 5000.0);
}

TEST(FortzTest, ConvexityProperty) {
  // f((a+b)/2) <= (f(a)+f(b))/2 over a sweep including overload.
  const double c = 100.0;
  for (double a = 0.0; a <= 140.0; a += 7.0) {
    for (double b = a; b <= 140.0; b += 11.0) {
      const double mid = fortz_cost((a + b) / 2.0, c);
      const double avg = (fortz_cost(a, c) + fortz_cost(b, c)) / 2.0;
      EXPECT_LE(mid, avg + 1e-9);
    }
  }
}

TEST(FortzTest, StrictlyIncreasing) {
  const double c = 100.0;
  double prev = -1.0;
  for (double x = 1.0; x <= 140.0; x += 1.0) {
    const double f = fortz_cost(x, c);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(FortzTest, ScalesWithCapacity) {
  // Same utilization, doubled capacity => doubled cost (cost is in Mbps).
  EXPECT_NEAR(fortz_cost(100.0, 200.0), 2.0 * fortz_cost(50.0, 100.0), 1e-9);
}

TEST(FortzTest, Validation) {
  EXPECT_THROW(fortz_cost(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(fortz_cost(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(fortz_derivative(-1.0, 10.0), std::invalid_argument);
}

// ---------------------------------------------------------- lexicographic K

TEST(LexOrderTest, LambdaDominates) {
  const LexicographicOrder ord;
  EXPECT_TRUE(ord.less({1.0, 100.0}, {2.0, 0.0}));
  EXPECT_FALSE(ord.less({2.0, 0.0}, {1.0, 100.0}));
}

TEST(LexOrderTest, PhiBreaksTies) {
  const LexicographicOrder ord;
  EXPECT_TRUE(ord.less({1.0, 5.0}, {1.0, 6.0}));
  EXPECT_FALSE(ord.less({1.0, 6.0}, {1.0, 5.0}));
  EXPECT_FALSE(ord.less({1.0, 5.0}, {1.0, 5.0}));
}

TEST(LexOrderTest, ToleranceTreatsNoiseAsEqual) {
  const LexicographicOrder ord;
  EXPECT_TRUE(ord.values_equal(100.0, 100.0 + 1e-8));
  // Lambda noise must not block a Phi improvement.
  EXPECT_TRUE(ord.less({100.0 + 1e-8, 5.0}, {100.0, 6.0}));
}

TEST(LexOrderTest, EqualPairs) {
  const LexicographicOrder ord;
  EXPECT_TRUE(ord.equal({1.0, 2.0}, {1.0, 2.0}));
  EXPECT_FALSE(ord.equal({1.0, 2.0}, {1.0, 3.0}));
}

TEST(LexOrderTest, StrictWeakOrderingLaws) {
  const LexicographicOrder ord;
  // Values spaced far beyond the tolerance.
  const CostPair pairs[] = {{0.0, 0.0}, {0.0, 10.0}, {5.0, 0.0}, {5.0, 10.0}, {9.0, 3.0}};
  for (const auto& a : pairs) {
    EXPECT_FALSE(ord.less(a, a));  // irreflexive
    for (const auto& b : pairs) {
      if (ord.less(a, b)) {
        EXPECT_FALSE(ord.less(b, a));  // asymmetric
      }
      for (const auto& c : pairs) {
        if (ord.less(a, b) && ord.less(b, c)) {
          EXPECT_TRUE(ord.less(a, c));  // transitive
        }
      }
    }
  }
}

TEST(LexOrderTest, ImprovesByFraction) {
  const LexicographicOrder ord;
  // 10% Lambda improvement.
  EXPECT_TRUE(ord.improves_by_fraction({90.0, 0.0}, {100.0, 0.0}, 0.05));
  EXPECT_FALSE(ord.improves_by_fraction({99.9, 0.0}, {100.0, 0.0}, 0.05));
  // Equal Lambda: judged on Phi.
  EXPECT_TRUE(ord.improves_by_fraction({100.0, 80.0}, {100.0, 100.0}, 0.1));
  EXPECT_FALSE(ord.improves_by_fraction({100.0, 99.95}, {100.0, 100.0}, 0.1));
  // Not an improvement at all.
  EXPECT_FALSE(ord.improves_by_fraction({110.0, 0.0}, {100.0, 0.0}, 0.0));
}

TEST(LexOrderTest, ToString) {
  const std::string s = to_string(CostPair{1.5, 2.5});
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

}  // namespace
}  // namespace dtr
