#pragma once

#include <gtest/gtest.h>

#include <cstdint>

#include "graph/graph.h"
#include "graph/topology.h"
#include "routing/evaluator.h"
#include "routing/weights.h"
#include "traffic/gravity.h"
#include "traffic/scaling.h"
#include "traffic/traffic_matrix.h"
#include "util/rng.h"

namespace dtr::test {

/// Diamond: 0 -(1)- 1 -(1)- 3 and 0 -(1)- 2 -(1)- 3, plus nothing else.
/// With unit weights there are two equal-cost 0->3 paths (ECMP splits 50/50).
inline Graph make_diamond(double capacity = 100.0, double delay_ms = 1.0) {
  Graph g(4);
  g.set_position(0, {0.0, 0.5});
  g.set_position(1, {0.5, 1.0});
  g.set_position(2, {0.5, 0.0});
  g.set_position(3, {1.0, 0.5});
  g.add_link(0, 1, capacity, delay_ms);
  g.add_link(0, 2, capacity, delay_ms);
  g.add_link(1, 3, capacity, delay_ms);
  g.add_link(2, 3, capacity, delay_ms);
  return g;
}

/// Cycle of n nodes (2-edge-connected, exactly two paths between any pair).
inline Graph make_ring(int n, double capacity = 100.0, double delay_ms = 1.0) {
  Graph g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    g.set_position(static_cast<NodeId>(i), {static_cast<double>(i), 0.0});
  for (int i = 0; i < n; ++i)
    g.add_link(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n), capacity, delay_ms);
  return g;
}

/// Ring + chords: enough path diversity for optimizer integration tests.
inline Graph make_ring_with_chords(int n, double capacity = 100.0) {
  Graph g = make_ring(n, capacity);
  for (int i = 0; i + n / 2 < n; ++i)
    g.add_link(static_cast<NodeId>(i), static_cast<NodeId>(i + n / 2), capacity, 1.0);
  return g;
}

/// A complete small-network instance: RandTopo graph, gravity traffic scaled
/// to a target average utilization, SLA-calibrated delays.
struct TestInstance {
  Graph graph;
  ClassedTraffic traffic;
  EvalParams params;
};

inline TestInstance make_test_instance(int nodes = 10, double degree = 4.0,
                                       std::uint64_t seed = 7,
                                       double avg_utilization = 0.4,
                                       double theta_ms = 25.0) {
  TestInstance inst;
  inst.graph = make_rand_topo({nodes, degree, 500.0, seed});
  inst.params.sla.theta_ms = theta_ms;
  calibrate_delays_to_sla(inst.graph, theta_ms);
  TrafficMatrix total = make_gravity_traffic(inst.graph, {1.0, 1.0, seed + 1});
  inst.traffic = split_by_class(total, 0.30);
  scale_to_utilization(inst.graph, inst.traffic,
                       {UtilizationTarget::Kind::kAverage, avg_utilization});
  return inst;
}

/// Uniformly random weight setting for `g` (deterministic in `seed`).
inline WeightSetting random_weights(const Graph& g, int wmax, std::uint64_t seed) {
  WeightSetting w(g.num_links());
  Rng rng(seed);
  randomize_weights(w, wmax, rng);
  return w;
}

/// The authoritative EvalResult comparator for byte-identity contracts
/// (incremental path, base cache): every field, exact equality. Extend HERE
/// when EvalResult grows so no identity test silently narrows.
inline void expect_results_identical(const EvalResult& a, const EvalResult& b) {
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.sla_violations, b.sla_violations);
  EXPECT_EQ(a.disconnected_delay_pairs, b.disconnected_delay_pairs);
  EXPECT_EQ(a.disconnected_tput_pairs, b.disconnected_tput_pairs);
  EXPECT_EQ(a.arc_total_load, b.arc_total_load);
  EXPECT_EQ(a.arc_utilization, b.arc_utilization);
  EXPECT_EQ(a.sd_delay_ms, b.sd_delay_ms);
  EXPECT_EQ(a.carries_delay_traffic, b.carries_delay_traffic);
}

}  // namespace dtr::test
