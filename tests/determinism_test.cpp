#include <gtest/gtest.h>

#include <vector>

#include "core/optimizer.h"
#include "routing/failures.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace dtr {
namespace {

using test::make_diamond;
using test::make_ring;
using test::make_ring_with_chords;

ClassedTraffic make_traffic(const Graph& g, std::uint64_t seed) {
  TrafficMatrix total = make_gravity_traffic(g, {1.0, 1.0, seed});
  ClassedTraffic traffic = split_by_class(total, 0.30);
  return traffic;
}

void expect_results_identical(const EvalResult& a, const EvalResult& b) {
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.sla_violations, b.sla_violations);
  EXPECT_EQ(a.disconnected_delay_pairs, b.disconnected_delay_pairs);
  EXPECT_EQ(a.disconnected_tput_pairs, b.disconnected_tput_pairs);
  EXPECT_EQ(a.arc_total_load, b.arc_total_load);
  EXPECT_EQ(a.arc_utilization, b.arc_utilization);
  EXPECT_EQ(a.sd_delay_ms, b.sd_delay_ms);
  EXPECT_EQ(a.carries_delay_traffic, b.carries_delay_traffic);
}

TEST(DeterminismTest, EvaluateFailuresBitIdenticalAcrossWorkerCounts) {
  for (const Graph& g : {make_diamond(), make_ring(8), make_ring_with_chords(12)}) {
    const ClassedTraffic traffic = make_traffic(g, 3);
    const Evaluator ev(g, traffic, {});
    WeightSetting w(g.num_links());
    Rng rng(11);
    randomize_weights(w, 30, rng);
    const std::vector<FailureScenario> scenarios = all_link_failures(g);

    ThreadPool one(1);
    ThreadPool eight(8);
    const auto seq = ev.evaluate_failures(w, scenarios, &one, EvalDetail::kFull);
    const auto par = ev.evaluate_failures(w, scenarios, &eight, EvalDetail::kFull);
    const auto none = ev.evaluate_failures(w, scenarios, nullptr, EvalDetail::kFull);
    ASSERT_EQ(seq.size(), scenarios.size());
    ASSERT_EQ(par.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      expect_results_identical(seq[i], par[i]);
      expect_results_identical(seq[i], none[i]);
      // The batch API must also match the one-at-a-time entry point.
      expect_results_identical(seq[i], ev.evaluate(w, scenarios[i], EvalDetail::kFull));
    }
  }
}

TEST(DeterminismTest, SweepBitIdenticalIncludingEarlyAbort) {
  const Graph g = make_ring_with_chords(12);
  const ClassedTraffic traffic = make_traffic(g, 5);
  const Evaluator ev(g, traffic, {});
  WeightSetting w(g.num_links());
  Rng rng(17);
  randomize_weights(w, 30, rng);
  const std::vector<FailureScenario> scenarios = all_link_failures(g);

  ThreadPool eight(8);
  const SweepResult seq = ev.sweep(w, scenarios);
  const SweepResult par = ev.sweep(w, scenarios, {.pool = &eight});
  EXPECT_EQ(seq.lambda, par.lambda);
  EXPECT_EQ(seq.phi, par.phi);
  EXPECT_EQ(seq.aborted, par.aborted);
  EXPECT_EQ(seq.scenarios_evaluated, par.scenarios_evaluated);

  // A bound between 0 and the full sum forces an early abort: the parallel
  // sweep must stop at the same scenario with the same partial sums.
  const CostPair bound{seq.lambda / 2.0, seq.phi / 2.0};
  const SweepResult seq_aborted = ev.sweep(w, scenarios, {.abort_bound = &bound});
  const SweepResult par_aborted =
      ev.sweep(w, scenarios, {.abort_bound = &bound, .pool = &eight});
  EXPECT_EQ(seq_aborted.aborted, par_aborted.aborted);
  EXPECT_EQ(seq_aborted.lambda, par_aborted.lambda);
  EXPECT_EQ(seq_aborted.phi, par_aborted.phi);
  EXPECT_EQ(seq_aborted.scenarios_evaluated, par_aborted.scenarios_evaluated);

  // The round-size knob only trades wasted-work for fan-out; sums, abort
  // flag and scenarios_evaluated stay bit-identical at every chunk size.
  for (const std::size_t chunk_size : {std::size_t{2}, std::size_t{5}, std::size_t{64}}) {
    const SweepResult chunked =
        ev.sweep(w, scenarios, {.pool = &eight, .chunk_size = chunk_size});
    EXPECT_EQ(seq.lambda, chunked.lambda);
    EXPECT_EQ(seq.phi, chunked.phi);
    EXPECT_EQ(seq.scenarios_evaluated, chunked.scenarios_evaluated);
    const SweepResult chunked_aborted = ev.sweep(
        w, scenarios, {.abort_bound = &bound, .pool = &eight, .chunk_size = chunk_size});
    EXPECT_EQ(seq_aborted.aborted, chunked_aborted.aborted);
    EXPECT_EQ(seq_aborted.lambda, chunked_aborted.lambda);
    EXPECT_EQ(seq_aborted.phi, chunked_aborted.phi);
    EXPECT_EQ(seq_aborted.scenarios_evaluated, chunked_aborted.scenarios_evaluated);
  }
}

OptimizeResult run_optimizer(const Evaluator& ev, int num_threads, SamplingMode mode) {
  OptimizerConfig config = default_optimizer_config(Effort::kSmoke, /*seed=*/42);
  config.num_threads = num_threads;
  config.sampling_mode = mode;
  RobustOptimizer opt(ev, config);
  return opt.optimize();
}

void expect_optimizer_output_identical(const OptimizeResult& a, const OptimizeResult& b) {
  // Everything except wall-clock timings must match bit-for-bit.
  EXPECT_EQ(a.regular, b.regular);
  EXPECT_EQ(a.regular_cost.lambda, b.regular_cost.lambda);
  EXPECT_EQ(a.regular_cost.phi, b.regular_cost.phi);
  EXPECT_EQ(a.robust, b.robust);
  EXPECT_EQ(a.robust_normal_cost.lambda, b.robust_normal_cost.lambda);
  EXPECT_EQ(a.robust_normal_cost.phi, b.robust_normal_cost.phi);
  EXPECT_EQ(a.robust_kfail.lambda, b.robust_kfail.lambda);
  EXPECT_EQ(a.robust_kfail.phi, b.robust_kfail.phi);
  EXPECT_EQ(a.critical, b.critical);
  EXPECT_EQ(a.criticality_converged, b.criticality_converged);
  EXPECT_EQ(a.estimates.rho_lambda, b.estimates.rho_lambda);
  EXPECT_EQ(a.estimates.rho_phi, b.estimates.rho_phi);
  EXPECT_EQ(a.phase1a_samples, b.phase1a_samples);
  EXPECT_EQ(a.phase1b_samples, b.phase1b_samples);
  EXPECT_EQ(a.phase1_evaluations, b.phase1_evaluations);
  EXPECT_EQ(a.phase2_evaluations, b.phase2_evaluations);
  EXPECT_EQ(a.phase2_scenario_evaluations, b.phase2_scenario_evaluations);
  EXPECT_EQ(a.phase1_diversifications, b.phase1_diversifications);
  EXPECT_EQ(a.phase2_diversifications, b.phase2_diversifications);
}

TEST(DeterminismTest, OptimizerBitIdenticalAcrossThreadCountsExactMode) {
  const Graph g = make_ring_with_chords(10);
  const ClassedTraffic traffic = make_traffic(g, 7);
  const Evaluator ev(g, traffic, {});
  const OptimizeResult seq = run_optimizer(ev, 1, SamplingMode::kExactFailure);
  const OptimizeResult par = run_optimizer(ev, 8, SamplingMode::kExactFailure);
  expect_optimizer_output_identical(seq, par);
}

TEST(DeterminismTest, OptimizerBitIdenticalAcrossThreadCountsEmulatedMode) {
  const Graph g = make_diamond();
  const ClassedTraffic traffic = make_traffic(g, 9);
  const Evaluator ev(g, traffic, {});
  const OptimizeResult seq = run_optimizer(ev, 1, SamplingMode::kEmulatedWeights);
  const OptimizeResult par = run_optimizer(ev, 4, SamplingMode::kEmulatedWeights);
  expect_optimizer_output_identical(seq, par);
}

}  // namespace
}  // namespace dtr
