#include <gtest/gtest.h>

#include <algorithm>

#include "graph/topology.h"
#include "traffic/gravity.h"
#include "traffic/traffic_matrix.h"
#include "traffic/uncertainty.h"

namespace dtr {
namespace {

ClassedTraffic make_base(int nodes = 12, std::uint64_t seed = 4) {
  const Graph g = make_rand_topo({nodes, 4.0, 500.0, seed});
  return split_by_class(make_gravity_traffic(g, {10.0, 1.0, seed + 1}), 0.3);
}

// ------------------------------------------------ Gaussian fluctuation

TEST(GaussianFluctuationTest, ZeroEpsilonIsIdentity) {
  const ClassedTraffic base = make_base();
  Rng rng(1);
  const TrafficMatrix out = apply_gaussian_fluctuation(base.delay, {0.0}, rng);
  base.delay.for_each_demand(
      [&](NodeId s, NodeId t, double v) { EXPECT_DOUBLE_EQ(out.at(s, t), v); });
}

TEST(GaussianFluctuationTest, NeverNegative) {
  const ClassedTraffic base = make_base();
  Rng rng(2);
  const TrafficMatrix out = apply_gaussian_fluctuation(base.delay, {2.0}, rng);
  out.for_each_demand([&](NodeId, NodeId, double v) { EXPECT_GE(v, 0.0); });
  for (NodeId s = 0; s < out.num_nodes(); ++s) {
    for (NodeId t = 0; t < out.num_nodes(); ++t) {
      if (s != t) {
        EXPECT_GE(out.at(s, t), 0.0);
      }
    }
  }
}

TEST(GaussianFluctuationTest, MeanPreservedApproximately) {
  const ClassedTraffic base = make_base();
  Rng rng(3);
  double sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i)
    sum += apply_gaussian_fluctuation(base.delay, {0.2}, rng).total();
  EXPECT_NEAR(sum / trials, base.delay.total(), 0.02 * base.delay.total());
}

TEST(GaussianFluctuationTest, EpsilonControlsSpread) {
  const ClassedTraffic base = make_base();
  Rng rng_small(4), rng_large(4);
  double dev_small = 0.0, dev_large = 0.0;
  for (int i = 0; i < 50; ++i) {
    const auto s = apply_gaussian_fluctuation(base.delay, {0.05}, rng_small);
    const auto l = apply_gaussian_fluctuation(base.delay, {0.5}, rng_large);
    base.delay.for_each_demand([&](NodeId a, NodeId b, double v) {
      dev_small += std::abs(s.at(a, b) - v);
      dev_large += std::abs(l.at(a, b) - v);
    });
  }
  EXPECT_GT(dev_large, 3.0 * dev_small);
}

TEST(GaussianFluctuationTest, ClassedVariantPerturbsBoth) {
  const ClassedTraffic base = make_base();
  Rng rng(5);
  const ClassedTraffic out = apply_gaussian_fluctuation(base, {0.3}, rng);
  EXPECT_NE(out.delay.total(), base.delay.total());
  EXPECT_NE(out.throughput.total(), base.throughput.total());
}

TEST(GaussianFluctuationTest, RejectsNegativeEpsilon) {
  const ClassedTraffic base = make_base();
  Rng rng(6);
  EXPECT_THROW(apply_gaussian_fluctuation(base.delay, {-0.1}, rng), std::invalid_argument);
}

// ------------------------------------------------ hot spots

TEST(HotSpotTest, OnlySurgedPairsChange) {
  const ClassedTraffic base = make_base();
  Rng rng(7);
  HotSpotInstance instance;
  const ClassedTraffic out =
      apply_hot_spot(base, {HotSpotParams::Direction::kDownload, 0.1, 0.5, 2.0, 6.0},
                     rng, &instance);

  // Build the set of surged (src,dst) pairs.
  std::vector<std::pair<NodeId, NodeId>> surged;
  for (const auto& [client, server] : instance.client_server)
    surged.emplace_back(server, client);  // download: server -> client

  const std::size_t n = base.delay.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const bool is_surged =
          std::find(surged.begin(), surged.end(), std::make_pair(s, t)) != surged.end();
      if (is_surged) {
        EXPECT_GE(out.delay.at(s, t), 2.0 * base.delay.at(s, t) - 1e-9);
        EXPECT_LE(out.delay.at(s, t), 6.0 * base.delay.at(s, t) + 1e-9);
        EXPECT_GE(out.throughput.at(s, t), 2.0 * base.throughput.at(s, t) - 1e-9);
      } else {
        EXPECT_DOUBLE_EQ(out.delay.at(s, t), base.delay.at(s, t));
        EXPECT_DOUBLE_EQ(out.throughput.at(s, t), base.throughput.at(s, t));
      }
    }
  }
}

TEST(HotSpotTest, UploadDirectionSurgesClientToServer) {
  const ClassedTraffic base = make_base();
  Rng rng(8);
  HotSpotInstance instance;
  const ClassedTraffic out = apply_hot_spot(
      base, {HotSpotParams::Direction::kUpload, 0.1, 0.5, 2.0, 6.0}, rng, &instance);
  ASSERT_FALSE(instance.client_server.empty());
  for (const auto& [client, server] : instance.client_server) {
    EXPECT_GT(out.delay.at(client, server), base.delay.at(client, server));
  }
}

TEST(HotSpotTest, ServerAndClientCountsMatchFractions) {
  const ClassedTraffic base = make_base(20, 10);
  Rng rng(9);
  HotSpotInstance instance;
  apply_hot_spot(base, {HotSpotParams::Direction::kDownload, 0.1, 0.5, 2.0, 6.0}, rng,
                 &instance);
  EXPECT_EQ(instance.servers.size(), 2u);        // 10% of 20
  EXPECT_EQ(instance.client_server.size(), 10u); // 50% of 20
  // Clients and servers are disjoint.
  for (const auto& [client, server] : instance.client_server) {
    EXPECT_EQ(std::count(instance.servers.begin(), instance.servers.end(), client), 0);
    EXPECT_EQ(std::count(instance.servers.begin(), instance.servers.end(), server), 1);
  }
}

TEST(HotSpotTest, TotalTrafficIncreases) {
  const ClassedTraffic base = make_base();
  Rng rng(11);
  const ClassedTraffic out = apply_hot_spot(base, {}, rng);
  EXPECT_GT(out.delay.total(), base.delay.total());
  EXPECT_GT(out.throughput.total(), base.throughput.total());
}

TEST(HotSpotTest, Validation) {
  const ClassedTraffic base = make_base();
  Rng rng(12);
  EXPECT_THROW(
      apply_hot_spot(base, {HotSpotParams::Direction::kDownload, 0.0, 0.5, 2.0, 6.0}, rng),
      std::invalid_argument);
  EXPECT_THROW(
      apply_hot_spot(base, {HotSpotParams::Direction::kDownload, 0.1, 0.5, 0.5, 6.0}, rng),
      std::invalid_argument);
  EXPECT_THROW(
      apply_hot_spot(base, {HotSpotParams::Direction::kDownload, 0.1, 0.5, 6.0, 2.0}, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace dtr
