/// End-to-end integration tests pinning the paper's qualitative claims at
/// smoke scale (seconds, deterministic seeds). These are the invariants that
/// must survive any scaling of search budgets (DESIGN.md §7).

#include <gtest/gtest.h>

#include <memory>

#include "core/metrics.h"
#include "core/optimizer.h"
#include "graph/isp.h"
#include "test_helpers.h"
#include "traffic/uncertainty.h"
#include "util/stats.h"

namespace dtr {
namespace {

OptimizerConfig smoke(std::uint64_t seed) {
  return default_optimizer_config(Effort::kSmoke, seed);
}

TEST(IntegrationTest, IspBackboneEndToEnd) {
  const IspTopology isp = make_isp_backbone();
  EvalParams params;
  ClassedTraffic traffic =
      split_by_class(make_gravity_traffic(isp.graph, {1.0, 1.0, 3}), 0.30);
  scale_to_utilization(isp.graph, traffic, {UtilizationTarget::Kind::kAverage, 0.43});
  const Evaluator ev(isp.graph, traffic, params);
  RobustOptimizer opt(ev, smoke(3));
  const OptimizeResult r = opt.optimize();

  const auto scenarios = all_link_failures(isp.graph);
  const FailureProfile regular = profile_failures(ev, r.regular, scenarios);
  const FailureProfile robust = profile_failures(ev, r.robust, scenarios);
  // Robust never worse on average, constraints hold.
  EXPECT_LE(robust.beta(), regular.beta() + 1e-9);
  EXPECT_LE(r.robust_normal_cost.phi, 1.2 * r.regular_cost.phi + 1e-6);
  const LexicographicOrder ord;
  EXPECT_TRUE(ord.values_equal(r.robust_normal_cost.lambda, r.regular_cost.lambda));
}

TEST(IntegrationTest, UnavoidableFloorBoundsEveryRouting) {
  const auto inst = test::make_test_instance(12, 5.0, 7, 0.6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  RobustOptimizer opt(ev, smoke(7));
  const OptimizeResult r = opt.optimize();
  const auto scenarios = all_link_failures(inst.graph);
  const auto floor = unavoidable_violation_profile(ev, scenarios);
  const FailureProfile robust = profile_failures(ev, r.robust, scenarios);
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    EXPECT_GE(robust.violations[i], floor[i]) << "scenario " << i;
}

TEST(IntegrationTest, RobustHelpsUnderTrafficUncertainty) {
  // Sec. V-F claim: the robust routing's advantage survives TM perturbation.
  const auto inst = test::make_test_instance(12, 5.0, 9, 0.7);
  const Evaluator base_ev(inst.graph, inst.traffic, inst.params);
  RobustOptimizer opt(base_ev, smoke(9));
  const OptimizeResult r = opt.optimize();
  const auto scenarios = all_link_failures(inst.graph);

  Rng rng(99);
  RunningStats regular_beta, robust_beta;
  for (int trial = 0; trial < 5; ++trial) {
    const ClassedTraffic actual = apply_gaussian_fluctuation(inst.traffic, {0.2}, rng);
    const Evaluator ev(inst.graph, actual, inst.params);
    regular_beta.add(profile_failures(ev, r.regular, scenarios).beta());
    robust_beta.add(profile_failures(ev, r.robust, scenarios).beta());
  }
  EXPECT_LE(robust_beta.mean(), regular_beta.mean() + 1e-9);
}

TEST(IntegrationTest, LinkRobustAlsoHelpsAgainstNodeFailures) {
  // Sec. V-F claim: robustness to link failures is not bought with added
  // fragility to node failures.
  const auto inst = test::make_test_instance(12, 5.0, 13, 0.6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  RobustOptimizer opt(ev, smoke(13));
  const OptimizeResult r = opt.optimize();
  const auto node_scenarios = all_node_failures(inst.graph);
  const FailureProfile regular = profile_failures(ev, r.regular, node_scenarios);
  const FailureProfile robust = profile_failures(ev, r.robust, node_scenarios);
  // Weak form of the claim (smoke budgets): no catastrophic degradation.
  EXPECT_LE(robust.beta(), regular.beta() * 1.5 + 1.0);
}

TEST(IntegrationTest, CriticalSearchTracksFullSearch) {
  // Table I's claim at smoke scale: beta_crt lands between beta_full and
  // beta_regular (and far from regular when diversity allows).
  const auto inst = test::make_test_instance(12, 5.0, 17, 0.55);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const auto scenarios = all_link_failures(inst.graph);

  OptimizerConfig full_config = smoke(17);
  full_config.selector = SelectorKind::kFullSearch;
  RobustOptimizer full_opt(ev, full_config);
  const OptimizeResult full = full_opt.optimize();

  OptimizerConfig crt_config = smoke(17);
  crt_config.critical_fraction = 0.25;
  RobustOptimizer crt_opt(ev, crt_config);
  const OptimizeResult crt = crt_opt.optimize();

  const double beta_full = profile_failures(ev, full.robust, scenarios).beta();
  const double beta_crt = profile_failures(ev, crt.robust, scenarios).beta();
  const double beta_reg = profile_failures(ev, full.regular, scenarios).beta();
  EXPECT_LE(beta_crt, beta_reg + 1e-9);
  // Allow smoke-budget noise: crt within a generous factor of full.
  EXPECT_LE(beta_full, beta_crt + beta_reg);
}

TEST(IntegrationTest, WorstPathSlaModeEndToEnd) {
  auto inst = test::make_test_instance(10, 4.0, 21, 0.5);
  inst.params.sla_delay_mode = SlaDelayMode::kWorstPath;
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  RobustOptimizer opt(ev, smoke(21));
  const OptimizeResult r = opt.optimize();
  const auto scenarios = all_link_failures(inst.graph);
  const FailureProfile regular = profile_failures(ev, r.regular, scenarios);
  const FailureProfile robust = profile_failures(ev, r.robust, scenarios);
  EXPECT_LE(robust.beta(), regular.beta() + 1e-9);
}

TEST(IntegrationTest, HotSpotSurgeDoesNotBreakEvaluation) {
  const auto inst = test::make_test_instance(12, 5.0, 23, 0.7);
  Rng rng(5);
  const ClassedTraffic surged = apply_hot_spot(
      inst.traffic, {HotSpotParams::Direction::kDownload, 0.1, 0.5, 2.0, 6.0}, rng);
  const Evaluator ev(inst.graph, surged, inst.params);
  const WeightSetting w(inst.graph.num_links());
  const auto scenarios = all_link_failures(inst.graph);
  const FailureProfile p = profile_failures(ev, w, scenarios);
  EXPECT_EQ(p.violations.size(), scenarios.size());
  for (double v : p.lambda) EXPECT_GE(v, 0.0);
  for (double v : p.phi) EXPECT_GE(v, 0.0);
}

}  // namespace
}  // namespace dtr
