/// Differential fuzzer for the incremental evaluation engine.
///
/// Every accelerated path in the repo carries the same contract: results must
/// be BYTE-identical to the full recompute. The unit suites pin that contract
/// on fixed seeds; this harness hammers it with fresh randomness under a time
/// budget — CI passes a per-run seed (echoed below for replay) so every run
/// explores new instances.
///
/// Three layers are fuzzed against their reference implementations:
///   1. delta_spf_update_arcs (weight deltas: increases, decreases, and
///      dead-arc removals, multi-link change lists) vs a full Dijkstra;
///   2. failure-scenario evaluation (single links, link pairs, links-only
///      compound scenarios, node failures) incremental vs full;
///   3. weight-delta donor patching (Phase-1 probe shape: neighbors of a
///      cached incumbent) vs scratch-built bases, plus the cross-trial
///      shared-labels path of evaluate_fluctuations vs per-trial evaluators.
///
/// Usage: differential_fuzz [--seed N] [--budget-seconds S]
/// Exit code 0 = no divergence inside the budget; 1 = divergence (a repro
/// line with the seed and iteration is printed first).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiments/campaign.h"
#include "experiments/workloads.h"
#include "graph/spf.h"
#include "graph/topology.h"
#include "routing/evaluator.h"
#include "routing/failures.h"
#include "routing/weights.h"
#include "util/rng.h"

namespace dtr {
namespace {

std::uint64_t g_seed = 0;
std::uint64_t g_iteration = 0;
int g_failures = 0;

void report_divergence(const char* layer, const std::string& detail) {
  std::fprintf(stderr,
               "DIVERGENCE in %s at iteration %llu (replay with --seed %llu)\n  %s\n",
               layer, static_cast<unsigned long long>(g_iteration),
               static_cast<unsigned long long>(g_seed), detail.c_str());
  ++g_failures;
}

bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool results_identical(const EvalResult& a, const EvalResult& b) {
  return std::memcmp(&a.lambda, &b.lambda, sizeof(double)) == 0 &&
         std::memcmp(&a.phi, &b.phi, sizeof(double)) == 0 &&
         a.sla_violations == b.sla_violations &&
         a.disconnected_delay_pairs == b.disconnected_delay_pairs &&
         a.disconnected_tput_pairs == b.disconnected_tput_pairs &&
         bytes_equal(a.arc_total_load, b.arc_total_load) &&
         bytes_equal(a.arc_utilization, b.arc_utilization) &&
         bytes_equal(a.sd_delay_ms, b.sd_delay_ms) &&
         a.carries_delay_traffic == b.carries_delay_traffic;
}

Graph random_graph(Rng& rng) {
  SynthTopoParams params;
  params.num_nodes = rng.uniform_int(8, 18);
  params.avg_degree = 3.0 + static_cast<double>(rng.uniform_int(0, 20)) / 10.0;
  params.capacity_mbps = 500.0;
  params.seed = rng.split().seed();
  return make_rand_topo(params);
}

/// Layer 1: raw delta-SPF weight updates vs full Dijkstra, every destination.
void fuzz_delta_spf(Rng& rng) {
  const Graph g = random_graph(rng);
  std::vector<double> costs(g.num_arcs());
  std::vector<double> link_weight(g.num_links());
  for (double& w : link_weight) w = static_cast<double>(rng.uniform_int(1, 20));
  for (ArcId a = 0; a < g.num_arcs(); ++a) costs[a] = link_weight[g.arc(a).link];

  // Change 1-3 links: new random weight, or removal via the alive mask.
  const int changed = rng.uniform_int(1, 3);
  std::vector<double> new_costs = costs;
  std::vector<std::uint8_t> alive(g.num_arcs(), 1);
  std::vector<ArcCostDelta> changes;
  for (int c = 0; c < changed; ++c) {
    const LinkId l = static_cast<LinkId>(
        rng.uniform_int(0, static_cast<int>(g.num_links()) - 1));
    if (!changes.empty() && g.link_arcs(l)[0] == changes[0].arc) continue;
    const bool remove = rng.uniform_int(0, 3) == 0;
    const double w = static_cast<double>(rng.uniform_int(1, 40));
    for (ArcId a : g.link_arcs(l)) {
      changes.push_back({a, costs[a]});
      if (remove)
        alive[a] = 0;
      else
        new_costs[a] = w;
    }
  }

  DeltaSpfScratch scratch;
  std::vector<double> base, delta, full;
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    shortest_distances_to(g, t, costs, {}, base);
    delta = base;
    const std::ptrdiff_t touched = delta_spf_update_arcs(g, new_costs, alive, changes,
                                                         delta, g.num_nodes(), scratch);
    if (touched < 0) {
      if (delta != base)
        report_divergence("delta_spf_update_arcs",
                          "abort left dist modified, dest " + std::to_string(t));
      continue;
    }
    shortest_distances_to(g, t, new_costs, alive, full);
    if (!bytes_equal(delta, full))
      report_divergence("delta_spf_update_arcs", "dest " + std::to_string(t));
  }
}

/// Layers 2+3: full evaluation stack — scenarios and weight-delta donors.
void fuzz_evaluator(Rng& rng) {
  experiments::WorkloadSpec spec;
  spec.kind = experiments::TopologyKind::kRand;
  spec.nodes = rng.uniform_int(8, 14);
  spec.degree = 3.0 + static_cast<double>(rng.uniform_int(0, 15)) / 10.0;
  spec.seed = rng.split().seed();
  const experiments::Workload w = experiments::make_workload(spec);
  const int num_links = static_cast<int>(w.graph.num_links());

  EvaluatorConfig fast_cfg;  // defaults: incremental + cache + donor patching
  EvaluatorConfig full_cfg;
  full_cfg.incremental = false;
  const Evaluator fast(w.graph, w.traffic, w.params, fast_cfg);
  const Evaluator full(w.graph, w.traffic, w.params, full_cfg);

  WeightSetting incumbent(w.graph.num_links());
  randomize_weights(incumbent, 20, rng);

  // Scenario soup: the none case, random links, a pair, a links-only
  // compound, and a node failure (always full path — both sides must agree
  // there too).
  std::vector<FailureScenario> scenarios;
  scenarios.push_back(FailureScenario::none());
  for (int i = 0; i < 4; ++i)
    scenarios.push_back(FailureScenario::link(
        static_cast<LinkId>(rng.uniform_int(0, num_links - 1))));
  scenarios.push_back(
      FailureScenario::link_pair(static_cast<LinkId>(rng.uniform_int(0, num_links - 1)),
                                 static_cast<LinkId>(rng.uniform_int(0, num_links - 1))));
  {
    std::vector<LinkId> links;
    for (int i = 0, k = rng.uniform_int(2, 4); i < k; ++i)
      links.push_back(static_cast<LinkId>(rng.uniform_int(0, num_links - 1)));
    scenarios.push_back(FailureScenario::compound(std::move(links)));
  }
  scenarios.push_back(FailureScenario::node(
      static_cast<NodeId>(rng.uniform_int(0, static_cast<int>(w.graph.num_nodes()) - 1))));

  // The incumbent, then Phase-1-probe-shaped neighbors (1-2 changed links):
  // after the first evaluation the fast evaluator's misses ride the donor
  // patch path.
  std::vector<WeightSetting> settings;
  settings.push_back(incumbent);
  for (int p = 0; p < 3; ++p) {
    WeightSetting probe = incumbent;
    for (int c = 0, k = rng.uniform_int(1, 2); c < k; ++c) {
      const LinkId l = static_cast<LinkId>(rng.uniform_int(0, num_links - 1));
      const TrafficClass cls =
          rng.uniform_int(0, 1) == 0 ? TrafficClass::kDelay : TrafficClass::kThroughput;
      probe.set(cls, l, rng.uniform_int(1, 20));
    }
    settings.push_back(probe);
  }

  for (std::size_t s = 0; s < settings.size(); ++s) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const EvalResult a = fast.evaluate(settings[s], scenarios[i], EvalDetail::kFull);
      const EvalResult b = full.evaluate(settings[s], scenarios[i], EvalDetail::kFull);
      if (!results_identical(a, b))
        report_divergence("evaluate", "setting " + std::to_string(s) + " scenario " +
                                          std::to_string(i) + " (" +
                                          to_string(scenarios[i]) + ")");
    }
  }

  // Cross-trial shared-labels path of evaluate_fluctuations vs the per-trial
  // reference, on a small stress block.
  experiments::FluctuationSpec fluct;
  fluct.model = experiments::FluctuationSpec::Model::kGaussian;
  fluct.trials = rng.uniform_int(2, 4);
  std::vector<LinkId> top;
  for (int i = 0, k = rng.uniform_int(2, 4); i < k; ++i)
    top.push_back(static_cast<LinkId>(rng.uniform_int(0, num_links - 1)));
  const std::uint64_t fluct_seed = rng.split().seed();
  const auto shared = experiments::evaluate_fluctuations(w, settings, top, fluct,
                                                         fluct_seed, nullptr, fast_cfg);
  const auto reference = experiments::evaluate_fluctuations(w, settings, top, fluct,
                                                            fluct_seed, nullptr, full_cfg);
  for (std::size_t r = 0; r < shared.size(); ++r) {
    if (!bytes_equal(shared[r].mean_violations, reference[r].mean_violations) ||
        !bytes_equal(shared[r].std_violations, reference[r].std_violations) ||
        !bytes_equal(shared[r].mean_phi, reference[r].mean_phi) ||
        !bytes_equal(shared[r].std_phi, reference[r].std_phi))
      report_divergence("evaluate_fluctuations", "routing " + std::to_string(r));
  }
}

}  // namespace
}  // namespace dtr

int main(int argc, char** argv) {
  std::uint64_t seed = 0;
  double budget_seconds = 20.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--budget-seconds" && i + 1 < argc) {
      budget_seconds = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--budget-seconds S]\n", argv[0]);
      return 2;
    }
  }
  if (seed == 0) seed = 0x9e3779b97f4a7c15ull;  // fixed default for local runs
  dtr::g_seed = seed;
  std::printf("differential_fuzz: seed=%llu budget=%.1fs (replay: --seed %llu)\n",
              static_cast<unsigned long long>(seed), budget_seconds,
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);

  dtr::Rng rng(seed);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(budget_seconds);
  while (std::chrono::steady_clock::now() < deadline && dtr::g_failures == 0) {
    ++dtr::g_iteration;
    dtr::fuzz_delta_spf(rng);
    dtr::fuzz_evaluator(rng);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::printf("differential_fuzz: %llu iterations in %.1fs, %d divergences\n",
              static_cast<unsigned long long>(dtr::g_iteration), elapsed,
              dtr::g_failures);
  return dtr::g_failures == 0 ? 0 : 1;
}
