#include <gtest/gtest.h>

#include <numeric>

#include "graph/topology.h"
#include "routing/failures.h"
#include "routing/route_state.h"
#include "routing/weights.h"
#include "test_helpers.h"
#include "traffic/gravity.h"
#include "util/rng.h"

namespace dtr {
namespace {

// ------------------------------------------------------------ weights

TEST(WeightSettingTest, InitialValue) {
  const WeightSetting w(5, 3);
  for (LinkId l = 0; l < 5; ++l)
    for (TrafficClass c : kBothClasses) EXPECT_EQ(w.get(c, l), 3);
}

TEST(WeightSettingTest, SetPerClassIndependent) {
  WeightSetting w(3);
  w.set(TrafficClass::kDelay, 1, 7);
  w.set(TrafficClass::kThroughput, 1, 9);
  EXPECT_EQ(w.get(TrafficClass::kDelay, 1), 7);
  EXPECT_EQ(w.get(TrafficClass::kThroughput, 1), 9);
  EXPECT_EQ(w.get(TrafficClass::kDelay, 0), 1);
}

TEST(WeightSettingTest, RejectsNonPositiveWeights) {
  WeightSetting w(2);
  EXPECT_THROW(w.set(TrafficClass::kDelay, 0, 0), std::invalid_argument);
  EXPECT_THROW(WeightSetting(2, 0), std::invalid_argument);
}

TEST(WeightSettingTest, ArcCostsShareLinkWeight) {
  const Graph g = test::make_diamond();
  WeightSetting w(g.num_links());
  w.set(TrafficClass::kDelay, 2, 11);
  std::vector<double> costs;
  w.arc_costs(g, TrafficClass::kDelay, costs);
  ASSERT_EQ(costs.size(), g.num_arcs());
  for (ArcId a : g.link_arcs(2)) EXPECT_DOUBLE_EQ(costs[a], 11.0);
  for (ArcId a : g.link_arcs(0)) EXPECT_DOUBLE_EQ(costs[a], 1.0);
}

TEST(WeightSettingTest, ArcCostsSizeMismatchThrows) {
  const Graph g = test::make_diamond();
  WeightSetting w(2);  // wrong size
  std::vector<double> costs;
  EXPECT_THROW(w.arc_costs(g, TrafficClass::kDelay, costs), std::invalid_argument);
}

TEST(WeightSettingTest, EqualityComparison) {
  WeightSetting a(3), b(3);
  EXPECT_EQ(a, b);
  b.set(TrafficClass::kDelay, 0, 5);
  EXPECT_NE(a, b);
}

TEST(WeightSettingTest, RandomizeStaysInRange) {
  WeightSetting w(20);
  Rng rng(5);
  randomize_weights(w, 64, rng);
  for (LinkId l = 0; l < 20; ++l)
    for (TrafficClass c : kBothClasses) {
      EXPECT_GE(w.get(c, l), 1);
      EXPECT_LE(w.get(c, l), 64);
    }
}

TEST(WeightSettingTest, WarmStartTracksDelay) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 2.0);
  g.add_link(1, 2, 100.0, 20.0);
  const WeightSetting w = make_warm_start(g, 100);
  EXPECT_LT(w.get(TrafficClass::kDelay, 0), w.get(TrafficClass::kDelay, 1));
  EXPECT_EQ(w.get(TrafficClass::kThroughput, 0), 1);
  EXPECT_LE(w.get(TrafficClass::kDelay, 1), 100);
}

// ------------------------------------------------------------ routing / loads

TEST(ClassRoutingTest, SinglePathCarriesFullDemand) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(1, 2, 100.0, 1.0);
  TrafficMatrix tm(3);
  tm.set(0, 2, 10.0);
  const std::vector<double> costs(g.num_arcs(), 1.0);
  const ClassRouting r(g, costs, tm, {});
  // Arc 0 is 0->1, arc 2 is 1->2.
  EXPECT_DOUBLE_EQ(r.arc_load(0), 10.0);
  EXPECT_DOUBLE_EQ(r.arc_load(2), 10.0);
  EXPECT_DOUBLE_EQ(r.arc_load(1), 0.0);  // reverse arcs unused
}

TEST(ClassRoutingTest, EcmpSplitsEvenly) {
  const Graph g = test::make_diamond();
  TrafficMatrix tm(4);
  tm.set(0, 3, 8.0);
  const std::vector<double> costs(g.num_arcs(), 1.0);
  const ClassRouting r(g, costs, tm, {});
  // Two equal paths 0-1-3 and 0-2-3: 4 units each.
  EXPECT_DOUBLE_EQ(r.arc_load(0), 4.0);  // 0->1
  EXPECT_DOUBLE_EQ(r.arc_load(2), 4.0);  // 0->2
  EXPECT_DOUBLE_EQ(r.arc_load(4), 4.0);  // 1->3
  EXPECT_DOUBLE_EQ(r.arc_load(6), 4.0);  // 2->3
}

TEST(ClassRoutingTest, WeightsSteerTraffic) {
  const Graph g = test::make_diamond();
  TrafficMatrix tm(4);
  tm.set(0, 3, 8.0);
  WeightSetting w(g.num_links());
  w.set(TrafficClass::kDelay, 0, 10);  // make 0-1 expensive
  std::vector<double> costs;
  w.arc_costs(g, TrafficClass::kDelay, costs);
  const ClassRouting r(g, costs, tm, {});
  EXPECT_DOUBLE_EQ(r.arc_load(0), 0.0);
  EXPECT_DOUBLE_EQ(r.arc_load(2), 8.0);  // all via 0-2-3
}

TEST(ClassRoutingTest, FlowConservationProperty) {
  // Property: at every node, inflow + sourced == outflow + sunk (per class).
  for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
    const Graph g = make_rand_topo({14, 4.0, 500.0, seed});
    const TrafficMatrix tm = make_gravity_traffic(g, {3.0, 1.0, seed + 1});
    WeightSetting w(g.num_links());
    Rng rng(seed);
    randomize_weights(w, 50, rng);
    std::vector<double> costs;
    w.arc_costs(g, TrafficClass::kDelay, costs);
    const ClassRouting r(g, costs, tm, {});

    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      double in = 0.0, out = 0.0, sourced = 0.0, sunk = 0.0;
      for (ArcId a : g.in_arcs(u)) in += r.arc_load(a);
      for (ArcId a : g.out_arcs(u)) out += r.arc_load(a);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (v == u) continue;
        sourced += tm.at(u, v);
        sunk += tm.at(v, u);
      }
      EXPECT_NEAR(in + sourced, out + sunk, 1e-6) << "node " << u << " seed " << seed;
    }
  }
}

TEST(ClassRoutingTest, TotalLoadEqualsDemandTimesPathLength) {
  // Sum of arc loads == sum over demands of (demand * SP length in hops)
  // under unit weights (ECMP paths all have equal length).
  const Graph g = make_rand_topo({12, 4.0, 500.0, 3});
  const TrafficMatrix tm = make_gravity_traffic(g, {2.0, 1.0, 4});
  const std::vector<double> costs(g.num_arcs(), 1.0);
  const ClassRouting r(g, costs, tm, {});
  double load_sum = 0.0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) load_sum += r.arc_load(a);
  double expected = 0.0;
  tm.for_each_demand(
      [&](NodeId s, NodeId t, double v) { expected += v * r.distances()[t][s]; });
  EXPECT_NEAR(load_sum, expected, 1e-6);
}

TEST(ClassRoutingTest, DisconnectedDemandCounted) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 1.0);
  TrafficMatrix tm(3);
  tm.set(0, 2, 5.0);  // node 2 unreachable
  tm.set(0, 1, 1.0);
  const std::vector<double> costs(g.num_arcs(), 1.0);
  const ClassRouting r(g, costs, tm, {});
  EXPECT_EQ(r.disconnected_demand_count(), 1u);
  EXPECT_DOUBLE_EQ(r.disconnected_demand_volume(), 5.0);
  EXPECT_FALSE(r.pair_connected(0, 2));
  EXPECT_TRUE(r.pair_connected(0, 1));
}

TEST(ClassRoutingTest, SkipNodeIgnoresItsTraffic) {
  const Graph g = test::make_ring(4);
  TrafficMatrix tm(4);
  tm.set(0, 2, 10.0);
  tm.set(1, 2, 4.0);
  const std::vector<double> costs(g.num_arcs(), 1.0);
  const NodeId skip[] = {1};
  const ClassRouting r(g, costs, tm, {}, skip);
  double total = 0.0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) total += r.arc_load(a);
  // Only the 0->2 demand routes (2 hops around the ring either way).
  EXPECT_NEAR(total, 10.0 * 2.0, 1e-9);
}

TEST(ClassRoutingTest, AliveMaskReroutes) {
  const Graph g = test::make_diamond();
  TrafficMatrix tm(4);
  tm.set(0, 3, 8.0);
  const std::vector<double> costs(g.num_arcs(), 1.0);
  std::vector<std::uint8_t> alive(g.num_arcs(), 1);
  for (ArcId a : g.link_arcs(0)) alive[a] = 0;  // fail 0-1
  const ClassRouting r(g, costs, tm, alive);
  EXPECT_DOUBLE_EQ(r.arc_load(2), 8.0);
  EXPECT_DOUBLE_EQ(r.arc_load(0), 0.0);
}

// ------------------------------------------------------------ end-to-end delays

TEST(EndToEndDelayTest, SumsArcDelaysOnSinglePath) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 2.0);
  g.add_link(1, 2, 100.0, 3.0);
  TrafficMatrix tm(3);
  tm.set(0, 2, 1.0);
  const std::vector<double> costs(g.num_arcs(), 1.0);
  const ClassRouting r(g, costs, tm, {});
  std::vector<double> arc_delay(g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) arc_delay[a] = g.arc(a).prop_delay_ms;
  std::vector<double> out;
  r.end_to_end_delays(g, costs, {}, arc_delay, tm, SlaDelayMode::kExpected, {},
                      out);
  EXPECT_DOUBLE_EQ(out[0 * 3 + 2], 5.0);
  EXPECT_DOUBLE_EQ(out[1 * 3 + 2], -1.0);  // no demand
}

TEST(EndToEndDelayTest, ExpectedVsWorstPath) {
  // Diamond with asymmetric delays: 0-1-3 takes 2ms, 0-2-3 takes 8ms.
  Graph g(4);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(0, 2, 100.0, 4.0);
  g.add_link(1, 3, 100.0, 1.0);
  g.add_link(2, 3, 100.0, 4.0);
  TrafficMatrix tm(4);
  tm.set(0, 3, 1.0);
  const std::vector<double> costs(g.num_arcs(), 1.0);
  const ClassRouting r(g, costs, tm, {});
  std::vector<double> arc_delay(g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) arc_delay[a] = g.arc(a).prop_delay_ms;

  std::vector<double> expected, worst;
  r.end_to_end_delays(g, costs, {}, arc_delay, tm, SlaDelayMode::kExpected, {},
                      expected);
  r.end_to_end_delays(g, costs, {}, arc_delay, tm, SlaDelayMode::kWorstPath, {},
                      worst);
  EXPECT_DOUBLE_EQ(expected[3], 5.0);  // (2+8)/2
  EXPECT_DOUBLE_EQ(worst[3], 8.0);
}

TEST(EndToEndDelayTest, DisconnectedIsInfinite) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 1.0);
  TrafficMatrix tm(3);
  tm.set(0, 2, 1.0);
  const std::vector<double> costs(g.num_arcs(), 1.0);
  const ClassRouting r(g, costs, tm, {});
  std::vector<double> arc_delay(g.num_arcs(), 1.0);
  std::vector<double> out;
  r.end_to_end_delays(g, costs, {}, arc_delay, tm, SlaDelayMode::kExpected, {},
                      out);
  EXPECT_EQ(out[0 * 3 + 2], kInfDist);
}

// ------------------------------------------------------------ path enumeration

TEST(EcmpPathsTest, DiamondYieldsBothPaths) {
  const Graph g = test::make_diamond();
  const std::vector<double> costs(g.num_arcs(), 1.0);
  const auto paths = enumerate_ecmp_paths(g, costs, 0, 3);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(paths[1], (std::vector<NodeId>{0, 2, 3}));
}

TEST(EcmpPathsTest, WeightsPruneToUniquePath) {
  const Graph g = test::make_diamond();
  WeightSetting w(g.num_links());
  w.set(TrafficClass::kDelay, 0, 5);  // 0-1 expensive
  std::vector<double> costs;
  w.arc_costs(g, TrafficClass::kDelay, costs);
  const auto paths = enumerate_ecmp_paths(g, costs, 0, 3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<NodeId>{0, 2, 3}));
}

TEST(EcmpPathsTest, RespectsMaskAndUnreachable) {
  const Graph g = test::make_diamond();
  const std::vector<double> costs(g.num_arcs(), 1.0);
  std::vector<std::uint8_t> alive(g.num_arcs(), 1);
  for (ArcId a : g.link_arcs(0)) alive[a] = 0;  // no 0-1
  const auto paths = enumerate_ecmp_paths(g, costs, 0, 3, alive);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<NodeId>{0, 2, 3}));

  for (ArcId a : g.link_arcs(1)) alive[a] = 0;  // no 0-2 either
  EXPECT_TRUE(enumerate_ecmp_paths(g, costs, 0, 3, alive).empty());
}

TEST(EcmpPathsTest, MaxPathsCap) {
  // Chain of diamonds: 2^k paths; cap must bound the enumeration.
  Graph g(7);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(0, 2, 100.0, 1.0);
  g.add_link(1, 3, 100.0, 1.0);
  g.add_link(2, 3, 100.0, 1.0);
  g.add_link(3, 4, 100.0, 1.0);
  g.add_link(3, 5, 100.0, 1.0);
  g.add_link(4, 6, 100.0, 1.0);
  g.add_link(5, 6, 100.0, 1.0);
  const std::vector<double> costs(g.num_arcs(), 1.0);
  EXPECT_EQ(enumerate_ecmp_paths(g, costs, 0, 6).size(), 4u);
  EXPECT_EQ(enumerate_ecmp_paths(g, costs, 0, 6, {}, 3).size(), 3u);
}

TEST(EcmpPathsTest, EveryPathIsShortelyTight) {
  // All enumerated paths must have equal cost == dist(s,t).
  const test::TestInstance inst = test::make_test_instance(10, 4.0, 19);
  WeightSetting w(inst.graph.num_links());
  Rng rng(4);
  randomize_weights(w, 30, rng);
  std::vector<double> costs;
  w.arc_costs(inst.graph, TrafficClass::kThroughput, costs);
  std::vector<double> dist;
  shortest_distances_to(inst.graph, 7, costs, {}, dist);
  const auto paths = enumerate_ecmp_paths(inst.graph, costs, 0, 7);
  ASSERT_FALSE(paths.empty());
  for (const auto& path : paths) {
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 7u);
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      bool found = false;
      for (ArcId a : inst.graph.out_arcs(path[i])) {
        if (inst.graph.arc(a).dst == path[i + 1]) {
          cost += costs[a];
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found);
    }
    EXPECT_DOUBLE_EQ(cost, dist[0]);
  }
}

TEST(EcmpPathsTest, Validation) {
  const Graph g = test::make_diamond();
  const std::vector<double> costs(g.num_arcs(), 1.0);
  EXPECT_THROW(enumerate_ecmp_paths(g, costs, 99, 0), std::out_of_range);
  EXPECT_TRUE(enumerate_ecmp_paths(g, costs, 2, 2).empty());  // s == t
}

// ------------------------------------------------------------ failures

TEST(FailuresTest, EnumerationCounts) {
  const Graph g = test::make_diamond();
  EXPECT_EQ(all_link_failures(g).size(), g.num_links());
  EXPECT_EQ(all_node_failures(g).size(), g.num_nodes());
}

TEST(FailuresTest, LinkMaskKillsBothArcs) {
  const Graph g = test::make_diamond();
  std::vector<std::uint8_t> mask;
  build_alive_mask(g, FailureScenario::link(1), mask);
  int dead = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a)
    if (!mask[a]) {
      ++dead;
      EXPECT_EQ(g.arc(a).link, 1u);
    }
  EXPECT_EQ(dead, 2);
}

TEST(FailuresTest, NodeMaskKillsIncidentArcs) {
  const Graph g = test::make_diamond();
  std::vector<std::uint8_t> mask;
  build_alive_mask(g, FailureScenario::node(0), mask);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const bool incident = g.arc(a).src == 0 || g.arc(a).dst == 0;
    EXPECT_EQ(mask[a] == 0, incident);
  }
}

TEST(FailuresTest, NoneMaskAllAlive) {
  const Graph g = test::make_diamond();
  std::vector<std::uint8_t> mask;
  build_alive_mask(g, FailureScenario::none(), mask);
  for (auto m : mask) EXPECT_EQ(m, 1);
}

TEST(FailuresTest, SkippedNodes) {
  const auto node = FailureScenario::node(3);
  ASSERT_EQ(skipped_nodes(node).size(), 1u);
  EXPECT_EQ(skipped_nodes(node)[0], 3u);
  EXPECT_TRUE(skipped_nodes(FailureScenario::link(3)).empty());
  EXPECT_TRUE(skipped_nodes(FailureScenario::none()).empty());
  EXPECT_TRUE(skipped_nodes(FailureScenario::link_pair(1, 2)).empty());
  const auto compound = FailureScenario::compound({0}, {5, 2, 5});
  ASSERT_EQ(skipped_nodes(compound).size(), 2u);  // canonical: sorted, deduped
  EXPECT_EQ(skipped_nodes(compound)[0], 2u);
  EXPECT_EQ(skipped_nodes(compound)[1], 5u);
  EXPECT_TRUE(is_skipped(skipped_nodes(compound), 5));
  EXPECT_FALSE(is_skipped(skipped_nodes(compound), 3));
}

TEST(FailuresTest, LinkPairMaskKillsBothLinks) {
  const Graph g = test::make_diamond();
  std::vector<std::uint8_t> mask;
  build_alive_mask(g, FailureScenario::link_pair(0, 2), mask);
  int dead = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (mask[a]) continue;
    ++dead;
    EXPECT_TRUE(g.arc(a).link == 0 || g.arc(a).link == 2);
  }
  EXPECT_EQ(dead, 4);
}

TEST(FailuresTest, SampleDualLinkFailuresDistinct) {
  const Graph g = test::make_ring(8);
  Rng rng(3);
  const auto scenarios = sample_dual_link_failures(g, 10, rng);
  EXPECT_EQ(scenarios.size(), 10u);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].kind, FailureScenario::Kind::kLinkPair);
    EXPECT_NE(scenarios[i].id, scenarios[i].id2);
    EXPECT_LT(scenarios[i].id, scenarios[i].id2);  // canonical order
    for (std::size_t j = i + 1; j < scenarios.size(); ++j)
      EXPECT_FALSE(scenarios[i] == scenarios[j]);
  }
}

TEST(FailuresTest, SampleDualLinkFailuresValidation) {
  Graph g(2);
  g.add_link(0, 1, 100.0, 1.0);
  Rng rng(1);
  EXPECT_THROW(sample_dual_link_failures(g, 3, rng), std::invalid_argument);
}

TEST(FailuresTest, ToStringAndValidation) {
  EXPECT_EQ(to_string(FailureScenario::link(2)), "link#2");
  EXPECT_EQ(to_string(FailureScenario::node(7)), "node#7");
  EXPECT_EQ(to_string(FailureScenario::none()), "none");
  EXPECT_EQ(to_string(FailureScenario::link_pair(1, 3)), "links#1+3");
  const Graph g = test::make_diamond();
  std::vector<std::uint8_t> mask;
  EXPECT_THROW(build_alive_mask(g, FailureScenario::link(99), mask), std::out_of_range);
  EXPECT_THROW(build_alive_mask(g, FailureScenario::node(99), mask), std::out_of_range);
}

}  // namespace
}  // namespace dtr
