#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/topology.h"
#include "test_helpers.h"

namespace dtr {
namespace {

TEST(ConnectivityTest, EmptyGraphHasZeroComponents) {
  Graph g;
  EXPECT_EQ(component_count(g), 0);
}

TEST(ConnectivityTest, IsolatedNodesAreSeparateComponents) {
  Graph g(3);
  EXPECT_EQ(component_count(g), 3);
  EXPECT_FALSE(is_connected(g));
}

TEST(ConnectivityTest, RingIsConnected) {
  const Graph g = test::make_ring(6);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(component_count(g), 1);
}

TEST(ConnectivityTest, TwoComponentsLabeled) {
  Graph g(4);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(2, 3, 100.0, 1.0);
  const auto label = connected_components(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[2], label[3]);
  EXPECT_NE(label[0], label[2]);
  EXPECT_EQ(component_count(g), 2);
}

TEST(ConnectivityTest, RingHasNoBridges) {
  const Graph g = test::make_ring(5);
  EXPECT_TRUE(find_bridges(g).empty());
  EXPECT_TRUE(is_two_edge_connected(g));
}

TEST(ConnectivityTest, ChainIsAllBridges) {
  Graph g(4);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(1, 2, 100.0, 1.0);
  g.add_link(2, 3, 100.0, 1.0);
  const auto bridges = find_bridges(g);
  EXPECT_EQ(bridges.size(), 3u);
  EXPECT_FALSE(is_two_edge_connected(g));
}

TEST(ConnectivityTest, BarbellBridgeDetected) {
  // Two triangles joined by one link: only the joiner is a bridge.
  Graph g(6);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(1, 2, 100.0, 1.0);
  g.add_link(2, 0, 100.0, 1.0);
  g.add_link(3, 4, 100.0, 1.0);
  g.add_link(4, 5, 100.0, 1.0);
  g.add_link(5, 3, 100.0, 1.0);
  const LinkId bridge = g.add_link(0, 3, 100.0, 1.0);
  const auto bridges = find_bridges(g);
  ASSERT_EQ(bridges.size(), 1u);
  EXPECT_EQ(bridges[0], bridge);
}

TEST(ConnectivityTest, ParallelLinksAreNotBridges) {
  Graph g(2);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(0, 1, 100.0, 1.0);
  EXPECT_TRUE(find_bridges(g).empty());
}

TEST(ConnectivityTest, SingleLinkIsBridge) {
  Graph g(2);
  g.add_link(0, 1, 100.0, 1.0);
  EXPECT_EQ(find_bridges(g).size(), 1u);
}

TEST(ConnectivityTest, ConnectedWithoutLink) {
  const Graph ring = test::make_ring(4);
  for (LinkId l = 0; l < ring.num_links(); ++l)
    EXPECT_TRUE(connected_without_link(ring, l));

  Graph chain(3);
  const LinkId l0 = chain.add_link(0, 1, 100.0, 1.0);
  chain.add_link(1, 2, 100.0, 1.0);
  EXPECT_FALSE(connected_without_link(chain, l0));
}

TEST(ConnectivityTest, ConnectedWithoutNode) {
  const Graph ring = test::make_ring(5);
  for (NodeId v = 0; v < ring.num_nodes(); ++v)
    EXPECT_TRUE(connected_without_node(ring, v));

  // Star: removing the hub disconnects the leaves.
  Graph star(4);
  star.add_link(0, 1, 100.0, 1.0);
  star.add_link(0, 2, 100.0, 1.0);
  star.add_link(0, 3, 100.0, 1.0);
  EXPECT_FALSE(connected_without_node(star, 0));
  EXPECT_TRUE(connected_without_node(star, 1));
}

TEST(ConnectivityTest, DirectedArcWalkableBothWaysInUndirectedView) {
  Graph g(2);
  g.add_arc(0, 1, 100.0, 1.0);
  EXPECT_TRUE(is_connected(g));
}

TEST(ConnectivityTest, GeneratedTopologiesAreTwoEdgeConnected) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = make_rand_topo({20, 4.0, 500.0, seed});
    EXPECT_TRUE(is_two_edge_connected(g)) << "rand seed " << seed;
  }
}

}  // namespace
}  // namespace dtr
