#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "experiments/workloads.h"
#include "graph/connectivity.h"
#include "graph/spf.h"

namespace dtr::experiments {
namespace {

TEST(WorkloadsTest, LabelsAndNames) {
  EXPECT_EQ(to_string(TopologyKind::kRand), "RandTopo");
  EXPECT_EQ(to_string(TopologyKind::kIsp), "ISP");
  WorkloadSpec spec;
  spec.nodes = 30;
  EXPECT_EQ(spec.label(), "RandTopo[30]");
  spec.kind = TopologyKind::kIsp;
  EXPECT_EQ(spec.label(), "ISP");
}

TEST(WorkloadsTest, MakeWorkloadIsDeterministic) {
  WorkloadSpec spec;
  spec.nodes = 12;
  spec.degree = 4.0;
  spec.seed = 5;
  const Workload a = make_workload(spec);
  const Workload b = make_workload(spec);
  EXPECT_EQ(a.graph.num_links(), b.graph.num_links());
  EXPECT_DOUBLE_EQ(a.traffic.delay.total(), b.traffic.delay.total());
}

TEST(WorkloadsTest, CalibratesDiameterToSla) {
  for (TopologyKind kind : {TopologyKind::kRand, TopologyKind::kNear,
                            TopologyKind::kPl, TopologyKind::kIsp}) {
    WorkloadSpec spec;
    spec.kind = kind;
    spec.nodes = 12;
    spec.degree = 4.0;
    const Workload w = make_workload(spec);
    EXPECT_NEAR(propagation_diameter_ms(w.graph), 0.85 * 25.0, 1e-6)
        << to_string(kind);
  }
}

TEST(WorkloadsTest, HitsUtilizationTarget) {
  WorkloadSpec spec;
  spec.nodes = 12;
  spec.degree = 4.0;
  spec.util = {UtilizationTarget::Kind::kMax, 0.74};
  const Workload w = make_workload(spec);
  const UtilizationSummary s =
      min_hop_utilization(w.graph, w.traffic.combined());
  EXPECT_NEAR(s.max, 0.74, 1e-9);
}

TEST(WorkloadsTest, DelayFractionApplied) {
  WorkloadSpec spec;
  spec.nodes = 10;
  spec.degree = 4.0;
  spec.delay_fraction = 0.30;
  const Workload w = make_workload(spec);
  const double total = w.traffic.delay.total() + w.traffic.throughput.total();
  EXPECT_NEAR(w.traffic.delay.total() / total, 0.30, 1e-9);
}

TEST(WorkloadsTest, PaperTopologiesCoverAllFamilies) {
  const auto specs = paper_topologies(Effort::kQuick, 1);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].kind, TopologyKind::kRand);
  EXPECT_EQ(specs[1].kind, TopologyKind::kNear);
  EXPECT_EQ(specs[2].kind, TopologyKind::kPl);
  EXPECT_EQ(specs[3].kind, TopologyKind::kIsp);
  for (const auto& spec : specs) {
    const Workload w = make_workload(spec);
    EXPECT_TRUE(is_two_edge_connected(w.graph)) << spec.label();
  }
}

TEST(WorkloadsTest, FullEffortUsesPaperSizes) {
  unsetenv("DTR_NODES");
  EXPECT_EQ(paper_topologies(Effort::kFull, 1)[0].nodes, 30);
  EXPECT_EQ(paper_topologies(Effort::kQuick, 1)[0].nodes, 16);
  EXPECT_EQ(default_rand_spec(Effort::kFull, 1).degree, 6.0);
}

TEST(WorkloadsTest, NodesEnvOverride) {
  setenv("DTR_NODES", "20", 1);
  EXPECT_EQ(paper_topologies(Effort::kQuick, 1)[0].nodes, 20);
  EXPECT_EQ(default_rand_spec(Effort::kQuick, 1).nodes, 20);
  unsetenv("DTR_NODES");
}

TEST(WorkloadsTest, ContextFromEnvDefaults) {
  unsetenv("DTR_EFFORT");
  unsetenv("DTR_REPEATS");
  unsetenv("DTR_SEED");
  const BenchContext ctx = context_from_env();
  EXPECT_EQ(ctx.effort, Effort::kQuick);
  EXPECT_EQ(ctx.repeats, 3);
  EXPECT_EQ(ctx.seed, 1u);
}

TEST(WorkloadsTest, PrintContextMentionsSettings) {
  std::ostringstream os;
  print_context(os, "my bench", {Effort::kSmoke, 2, 7});
  EXPECT_NE(os.str().find("my bench"), std::string::npos);
  EXPECT_NE(os.str().find("smoke"), std::string::npos);
  EXPECT_NE(os.str().find("repeats=2"), std::string::npos);
}

TEST(WorkloadsTest, RunOptimizerAppliesTweak) {
  WorkloadSpec spec;
  spec.nodes = 8;
  spec.degree = 4.0;
  const Workload w = make_workload(spec);
  const Evaluator ev(w.graph, w.traffic, w.params);
  const OptimizeResult r = run_optimizer(
      ev, Effort::kSmoke, 1,
      [](OptimizerConfig& c) { c.selector = SelectorKind::kFullSearch; });
  EXPECT_EQ(r.critical.size(), w.graph.num_links());
}

TEST(WorkloadsTest, LinkFailureProfileCoversAllLinks) {
  WorkloadSpec spec;
  spec.nodes = 8;
  spec.degree = 4.0;
  const Workload w = make_workload(spec);
  const Evaluator ev(w.graph, w.traffic, w.params);
  const WeightSetting weights(w.graph.num_links());
  const FailureProfile p = link_failure_profile(ev, weights);
  EXPECT_EQ(p.violations.size(), w.graph.num_links());
}

}  // namespace
}  // namespace dtr::experiments
