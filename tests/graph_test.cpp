#include <gtest/gtest.h>

#include "graph/graph.h"
#include "test_helpers.h"

namespace dtr {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_EQ(g.num_links(), 0u);
}

TEST(GraphTest, ConstructorReservesNodes) {
  Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(GraphTest, AddNodeReturnsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_node({1.0, 2.0}), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.position(0).x, 1.0);
  EXPECT_EQ(g.position(0).y, 2.0);
}

TEST(GraphTest, AddLinkCreatesPairedArcs) {
  Graph g(2);
  const LinkId l = g.add_link(0, 1, 500.0, 3.0);
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.num_links(), 1u);
  const auto arcs = g.link_arcs(l);
  ASSERT_EQ(arcs.size(), 2u);
  const Arc& fwd = g.arc(arcs[0]);
  const Arc& bwd = g.arc(arcs[1]);
  EXPECT_EQ(fwd.src, 0u);
  EXPECT_EQ(fwd.dst, 1u);
  EXPECT_EQ(bwd.src, 1u);
  EXPECT_EQ(bwd.dst, 0u);
  EXPECT_EQ(fwd.reverse, arcs[1]);
  EXPECT_EQ(bwd.reverse, arcs[0]);
  EXPECT_EQ(fwd.link, l);
  EXPECT_EQ(bwd.link, l);
  EXPECT_DOUBLE_EQ(fwd.capacity, 500.0);
  EXPECT_DOUBLE_EQ(bwd.prop_delay_ms, 3.0);
}

TEST(GraphTest, AdjacencyListsConsistent) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(1, 2, 100.0, 1.0);
  EXPECT_EQ(g.out_arcs(1).size(), 2u);
  EXPECT_EQ(g.in_arcs(1).size(), 2u);
  EXPECT_EQ(g.out_arcs(0).size(), 1u);
  for (ArcId a : g.out_arcs(1)) EXPECT_EQ(g.arc(a).src, 1u);
  for (ArcId a : g.in_arcs(1)) EXPECT_EQ(g.arc(a).dst, 1u);
}

TEST(GraphTest, AddArcIsOneDirectional) {
  Graph g(2);
  const ArcId a = g.add_arc(0, 1, 100.0, 1.0);
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_EQ(g.arc(a).reverse, kInvalidArc);
  EXPECT_TRUE(g.has_arc_between(0, 1));
  EXPECT_FALSE(g.has_arc_between(1, 0));
}

TEST(GraphTest, RejectsSelfLoops) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 0, 100.0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_arc(1, 1, 100.0, 1.0), std::invalid_argument);
}

TEST(GraphTest, RejectsOutOfRangeEndpoints) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 5, 100.0, 1.0), std::out_of_range);
}

TEST(GraphTest, RejectsNonPositiveCapacity) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 1, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_link(0, 1, -5.0, 1.0), std::invalid_argument);
}

TEST(GraphTest, RejectsNegativeDelay) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 1, 100.0, -1.0), std::invalid_argument);
}

TEST(GraphTest, ParallelLinksAllowed) {
  Graph g(2);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(0, 1, 200.0, 2.0);
  EXPECT_EQ(g.num_links(), 2u);
  EXPECT_EQ(g.out_arcs(0).size(), 2u);
}

TEST(GraphTest, LinkDegreeCountsIncidentLinks) {
  Graph g = test::make_diamond();
  EXPECT_EQ(g.link_degree(0), 2u);
  EXPECT_EQ(g.link_degree(3), 2u);
  EXPECT_DOUBLE_EQ(g.average_link_degree(), 2.0);
}

TEST(GraphTest, ScalePropDelays) {
  Graph g(2);
  g.add_link(0, 1, 100.0, 4.0);
  g.scale_prop_delays(2.5);
  EXPECT_DOUBLE_EQ(g.arc(0).prop_delay_ms, 10.0);
  EXPECT_DOUBLE_EQ(g.arc(1).prop_delay_ms, 10.0);
  EXPECT_THROW(g.scale_prop_delays(0.0), std::invalid_argument);
}

TEST(GraphTest, SetLinkPropDelay) {
  Graph g(2);
  const LinkId l = g.add_link(0, 1, 100.0, 4.0);
  g.set_link_prop_delay(l, 7.0);
  for (ArcId a : g.link_arcs(l)) EXPECT_DOUBLE_EQ(g.arc(a).prop_delay_ms, 7.0);
  EXPECT_THROW(g.set_link_prop_delay(l, -1.0), std::invalid_argument);
}

TEST(GraphTest, SetUniformCapacity) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(1, 2, 200.0, 1.0);
  g.set_uniform_capacity(750.0);
  for (const Arc& a : g.arcs()) EXPECT_DOUBLE_EQ(a.capacity, 750.0);
}

TEST(GraphTest, ScaleLinkCapacity) {
  Graph g(2);
  const LinkId l = g.add_link(0, 1, 100.0, 1.0);
  g.scale_link_capacity(l, 3.0);
  for (ArcId a : g.link_arcs(l)) EXPECT_DOUBLE_EQ(g.arc(a).capacity, 300.0);
  EXPECT_THROW(g.scale_link_capacity(l, -1.0), std::invalid_argument);
}

TEST(GraphTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(euclidean_distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(euclidean_distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

// The CSR and the legacy per-node vectors must present the exact same arcs
// in the exact same order — the byte-identity of every float accumulation
// downstream rides on it.
void expect_csr_matches_legacy(const Graph& g) {
  const GraphCsr& csr = g.csr();
  ASSERT_EQ(csr.out_offset.size(), g.num_nodes() + 1);
  ASSERT_EQ(csr.in_offset.size(), g.num_nodes() + 1);
  ASSERT_EQ(csr.out_arc.size(), g.num_arcs());
  ASSERT_EQ(csr.in_arc.size(), g.num_arcs());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto out = g.out_arcs(u);
    ASSERT_EQ(csr.out_offset[u + 1] - csr.out_offset[u], out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::size_t k = csr.out_offset[u] + i;
      EXPECT_EQ(csr.out_arc[k], out[i]);
      EXPECT_EQ(csr.out_head[k], g.arc(out[i]).dst);
    }
    const auto in = g.in_arcs(u);
    ASSERT_EQ(csr.in_offset[u + 1] - csr.in_offset[u], in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      const std::size_t k = csr.in_offset[u] + i;
      EXPECT_EQ(csr.in_arc[k], in[i]);
      EXPECT_EQ(csr.in_tail[k], g.arc(in[i]).src);
    }
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    EXPECT_EQ(csr.src[a], arc.src);
    EXPECT_EQ(csr.dst[a], arc.dst);
    EXPECT_EQ(csr.link[a], arc.link);
    EXPECT_EQ(csr.capacity[a], arc.capacity);
    EXPECT_EQ(csr.prop_delay_ms[a], arc.prop_delay_ms);
  }
}

Graph csr_fixture() {
  Graph g(5);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(1, 2, 200.0, 2.0);
  g.add_link(2, 3, 300.0, 3.0);
  g.add_link(3, 0, 400.0, 4.0);
  g.add_link(1, 3, 500.0, 5.0);
  g.add_arc(4, 0, 600.0, 6.0);  // one-directional arc, no reverse
  return g;
}

TEST(GraphCsrTest, MatchesLegacyAdjacencyAndAttributes) {
  expect_csr_matches_legacy(csr_fixture());
}

TEST(GraphCsrTest, RebuildsAfterMutation) {
  Graph g = csr_fixture();
  (void)g.csr();  // force a build, then invalidate through every mutator
  g.set_uniform_capacity(42.0);
  EXPECT_EQ(g.csr().capacity[0], 42.0);
  g.scale_prop_delays(2.0);
  EXPECT_EQ(g.csr().prop_delay_ms[0], g.arc(0).prop_delay_ms);
  g.set_link_prop_delay(0, 9.0);
  EXPECT_EQ(g.csr().prop_delay_ms[0], 9.0);
  g.scale_link_capacity(0, 0.5);
  EXPECT_EQ(g.csr().capacity[0], 21.0);
  const NodeId n = g.add_node();
  g.add_link(n, 0, 50.0, 1.0);
  expect_csr_matches_legacy(g);
}

TEST(GraphCsrTest, CopiesRebuildIndependently) {
  Graph g = csr_fixture();
  (void)g.csr();
  Graph copy = g;
  copy.set_uniform_capacity(7.0);
  expect_csr_matches_legacy(copy);
  // The original's cached CSR is untouched by the copy's mutation.
  EXPECT_EQ(g.csr().capacity[0], 100.0);
  Graph assigned;
  assigned = g;
  expect_csr_matches_legacy(assigned);
  const Graph moved = std::move(copy);
  expect_csr_matches_legacy(moved);
}

}  // namespace
}  // namespace dtr
