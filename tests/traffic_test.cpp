#include <gtest/gtest.h>

#include "graph/isp.h"
#include "graph/topology.h"
#include "test_helpers.h"
#include "traffic/gravity.h"
#include "traffic/scaling.h"
#include "traffic/traffic_matrix.h"

namespace dtr {
namespace {

// ------------------------------------------------------- TrafficMatrix

TEST(TrafficMatrixTest, StartsEmpty) {
  TrafficMatrix tm(4);
  EXPECT_EQ(tm.num_nodes(), 4u);
  EXPECT_DOUBLE_EQ(tm.total(), 0.0);
  EXPECT_EQ(tm.num_positive_demands(), 0u);
}

TEST(TrafficMatrixTest, SetAddAt) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 5.0);
  tm.add(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(tm.at(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(tm.at(1, 0), 0.0);
  EXPECT_EQ(tm.num_positive_demands(), 1u);
}

TEST(TrafficMatrixTest, RejectsDiagonalAndNegative) {
  TrafficMatrix tm(3);
  EXPECT_THROW(tm.set(1, 1, 5.0), std::invalid_argument);
  EXPECT_THROW(tm.set(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(tm.set(0, 9, 1.0), std::out_of_range);
}

TEST(TrafficMatrixTest, ScaleAndScaled) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 4.0);
  tm.set(2, 0, 6.0);
  const TrafficMatrix half = tm.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.at(0, 1), 2.0);
  tm.scale(2.0);
  EXPECT_DOUBLE_EQ(tm.at(2, 0), 12.0);
  EXPECT_THROW(tm.scale(-1.0), std::invalid_argument);
}

TEST(TrafficMatrixTest, RemoveNodeTraffic) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 1.0);
  tm.set(1, 2, 2.0);
  tm.set(2, 0, 3.0);
  tm.remove_node_traffic(1);
  EXPECT_DOUBLE_EQ(tm.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(tm.at(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(tm.at(2, 0), 3.0);
}

TEST(TrafficMatrixTest, ForEachDemandVisitsPositivesOnly) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 1.5);
  tm.set(2, 1, 2.5);
  double sum = 0.0;
  int count = 0;
  tm.for_each_demand([&](NodeId, NodeId, double v) {
    sum += v;
    ++count;
  });
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sum, 4.0);
}

TEST(ClassedTrafficTest, SplitPreservesTotals) {
  TrafficMatrix total(3);
  total.set(0, 1, 10.0);
  total.set(1, 2, 20.0);
  const ClassedTraffic ct = split_by_class(total, 0.30);
  EXPECT_DOUBLE_EQ(ct.delay.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(ct.throughput.at(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(ct.delay.total() + ct.throughput.total(), total.total());
  const TrafficMatrix sum = ct.combined();
  EXPECT_DOUBLE_EQ(sum.at(1, 2), 20.0);
}

TEST(ClassedTrafficTest, SplitValidation) {
  TrafficMatrix total(2);
  EXPECT_THROW(split_by_class(total, -0.1), std::invalid_argument);
  EXPECT_THROW(split_by_class(total, 1.1), std::invalid_argument);
}

TEST(ClassedTrafficTest, EveryPairHasDelayTraffic) {
  // The paper assumes each SD pair generates delay-sensitive traffic.
  const Graph g = make_rand_topo({10, 4.0, 500.0, 3});
  const TrafficMatrix total = make_gravity_traffic(g, {1.0, 1.0, 4});
  const ClassedTraffic ct = split_by_class(total, 0.30);
  EXPECT_EQ(ct.delay.num_positive_demands(), 10u * 9u);
}

// ------------------------------------------------------- gravity model

TEST(GravityTest, AllPairsPositive) {
  const Graph g = make_rand_topo({12, 4.0, 500.0, 5});
  const TrafficMatrix tm = make_gravity_traffic(g, {1.0, 1.0, 6});
  EXPECT_EQ(tm.num_positive_demands(), 12u * 11u);
}

TEST(GravityTest, DeterministicPerSeed) {
  const Graph g = make_rand_topo({8, 4.0, 500.0, 5});
  const TrafficMatrix a = make_gravity_traffic(g, {1.0, 1.0, 6});
  const TrafficMatrix b = make_gravity_traffic(g, {1.0, 1.0, 6});
  EXPECT_DOUBLE_EQ(a.total(), b.total());
  const TrafficMatrix c = make_gravity_traffic(g, {1.0, 1.0, 7});
  EXPECT_NE(a.total(), c.total());
}

TEST(GravityTest, AlphaScalesLinearly) {
  const Graph g = make_rand_topo({8, 4.0, 500.0, 5});
  const TrafficMatrix a = make_gravity_traffic(g, {1.0, 1.0, 6});
  const TrafficMatrix b = make_gravity_traffic(g, {2.0, 1.0, 6});
  EXPECT_NEAR(b.total(), 2.0 * a.total(), 1e-9);
}

TEST(GravityTest, DistanceDecayReducesFarTraffic) {
  // With much stronger decay, total demand must shrink (same draws).
  const Graph g = make_rand_topo({10, 4.0, 500.0, 5});
  const TrafficMatrix weak = make_gravity_traffic(g, {1.0, 0.5, 6});
  const TrafficMatrix strong = make_gravity_traffic(g, {1.0, 8.0, 6});
  EXPECT_LT(strong.total(), weak.total());
}

TEST(GravityTest, Validation) {
  const Graph g = make_rand_topo({8, 4.0, 500.0, 5});
  EXPECT_THROW(make_gravity_traffic(g, {0.0, 1.0, 1}), std::invalid_argument);
  Graph tiny(1);
  EXPECT_THROW(make_gravity_traffic(tiny, {1.0, 1.0, 1}), std::invalid_argument);
}

// ------------------------------------------------------- scaling

TEST(ScalingTest, HitsAverageUtilizationTarget) {
  const Graph g = make_rand_topo({12, 4.0, 500.0, 8});
  TrafficMatrix tm = make_gravity_traffic(g, {1.0, 1.0, 9});
  scale_to_utilization(g, tm, {UtilizationTarget::Kind::kAverage, 0.43});
  const UtilizationSummary s = min_hop_utilization(g, tm);
  EXPECT_NEAR(s.average, 0.43, 1e-9);
}

TEST(ScalingTest, HitsMaxUtilizationTarget) {
  const Graph g = make_rand_topo({12, 4.0, 500.0, 8});
  TrafficMatrix tm = make_gravity_traffic(g, {1.0, 1.0, 9});
  scale_to_utilization(g, tm, {UtilizationTarget::Kind::kMax, 0.90});
  const UtilizationSummary s = min_hop_utilization(g, tm);
  EXPECT_NEAR(s.max, 0.90, 1e-9);
}

TEST(ScalingTest, ClassedVariantScalesBothClasses) {
  const Graph g = make_rand_topo({10, 4.0, 500.0, 8});
  ClassedTraffic ct = split_by_class(make_gravity_traffic(g, {1.0, 1.0, 9}), 0.3);
  const double delay_before = ct.delay.total();
  const double factor =
      scale_to_utilization(g, ct, {UtilizationTarget::Kind::kAverage, 0.5});
  EXPECT_NEAR(ct.delay.total(), delay_before * factor, 1e-9);
  // Class split ratio preserved.
  EXPECT_NEAR(ct.delay.total() / (ct.delay.total() + ct.throughput.total()), 0.3, 1e-9);
}

TEST(ScalingTest, Validation) {
  const Graph g = make_rand_topo({10, 4.0, 500.0, 8});
  TrafficMatrix empty(g.num_nodes());
  EXPECT_THROW(scale_to_utilization(g, empty, {UtilizationTarget::Kind::kAverage, 0.4}),
               std::invalid_argument);
  TrafficMatrix tm = make_gravity_traffic(g, {1.0, 1.0, 9});
  EXPECT_THROW(scale_to_utilization(g, tm, {UtilizationTarget::Kind::kAverage, 0.0}),
               std::invalid_argument);
}

TEST(ScalingTest, MaxAtLeastAverage) {
  const IspTopology isp = make_isp_backbone();
  TrafficMatrix tm = make_gravity_traffic(isp.graph, {1.0, 1.0, 2});
  const UtilizationSummary s = min_hop_utilization(isp.graph, tm);
  EXPECT_GE(s.max, s.average);
}

}  // namespace
}  // namespace dtr
