#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/json.h"

namespace dtr {
namespace {

TEST(JsonWriterTest, CompactObjectArrayAndScalars) {
  std::ostringstream ss;
  JsonWriter w(ss, 0);
  w.begin_object();
  w.key("a").value(1.5);
  w.key("b").begin_array().value(true).value(false).null().end_array();
  w.key("s").value("x");
  w.key("n").value(42LL);
  w.end_object();
  EXPECT_EQ(ss.str(), R"({"a":1.5,"b":[true,false,null],"s":"x","n":42})");
}

TEST(JsonWriterTest, IndentedLayoutIsStable) {
  std::ostringstream ss;
  JsonWriter w(ss, 2);
  w.begin_object();
  w.key("k").begin_array().value(1LL).value(2LL).end_array();
  w.end_object();
  EXPECT_EQ(ss.str(), "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonWriterTest, EmptyContainers) {
  std::ostringstream ss;
  JsonWriter w(ss, 2);
  w.begin_object();
  w.key("o").begin_object().end_object();
  w.key("a").begin_array().end_array();
  w.end_object();
  EXPECT_EQ(ss.str(), "{\n  \"o\": {},\n  \"a\": []\n}");
}

TEST(JsonWriterTest, StringEscaping) {
  EXPECT_EQ(json_escape("plain"), "\"plain\"");
  EXPECT_EQ(json_escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(json_escape(std::string("ctl\x01", 4)), "\"ctl\\u0001\"");
}

TEST(JsonWriterTest, NumbersAreShortestRoundTrip) {
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(2.0), "2");
  EXPECT_EQ(json_number(-3.25), "-3.25");
  // A value with no short representation must still round-trip exactly.
  const double third = 1.0 / 3.0;
  EXPECT_EQ(std::stod(json_number(third)), third);
  const double big = 6.02214076e23;
  EXPECT_EQ(std::stod(json_number(big)), big);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  std::ostringstream ss;
  JsonWriter w(ss, 0);
  w.begin_array().value(std::nan("")).end_array();
  EXPECT_EQ(ss.str(), "[null]");
}

TEST(JsonWriterTest, MisuseThrows) {
  {
    std::ostringstream ss;
    JsonWriter w(ss, 0);
    w.begin_object();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // member without a key
  }
  {
    std::ostringstream ss;
    JsonWriter w(ss, 0);
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside an array
    EXPECT_THROW(w.end_object(), std::logic_error);
  }
}

}  // namespace
}  // namespace dtr
