#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph_io.h"
#include "graph/isp.h"
#include "graph/topology.h"
#include "routing/weights_io.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace dtr {
namespace {

// ------------------------------------------------------------ graph I/O

TEST(GraphIoTest, RoundTripPreservesStructure) {
  const Graph original = make_rand_topo({12, 4.0, 500.0, 5});
  std::stringstream ss;
  write_graph(ss, original);
  const Graph copy = read_graph(ss);
  ASSERT_EQ(copy.num_nodes(), original.num_nodes());
  ASSERT_EQ(copy.num_links(), original.num_links());
  ASSERT_EQ(copy.num_arcs(), original.num_arcs());
  for (NodeId u = 0; u < original.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(copy.position(u).x, original.position(u).x);
    EXPECT_DOUBLE_EQ(copy.position(u).y, original.position(u).y);
  }
  for (ArcId a = 0; a < original.num_arcs(); ++a) {
    EXPECT_EQ(copy.arc(a).src, original.arc(a).src);
    EXPECT_EQ(copy.arc(a).dst, original.arc(a).dst);
    EXPECT_DOUBLE_EQ(copy.arc(a).capacity, original.arc(a).capacity);
    // max_digits10 output makes the text round-trip exact.
    EXPECT_DOUBLE_EQ(copy.arc(a).prop_delay_ms, original.arc(a).prop_delay_ms);
  }
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# a comment\n\ndtr-graph 1\n# another\nnodes 2\nnode 0 0.0 0.0\n"
      "node 1 1.0 0.0\nlinks 1\n\nlink 0 1 500 3.5\n");
  const Graph g = read_graph(ss);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_DOUBLE_EQ(g.arc(0).prop_delay_ms, 3.5);
}

TEST(GraphIoTest, RejectsMalformedInput) {
  const char* cases[] = {
      "",                                        // empty
      "bogus 1\n",                               // bad magic
      "dtr-graph 2\n",                           // bad version
      "dtr-graph 1\nnodes x\n",                  // bad count
      "dtr-graph 1\nnodes 2\nnode 1 0 0\n",      // out-of-order id
      "dtr-graph 1\nnodes 1\nnode 0 0 0\nlinks 1\nlink 0 5 100 1\n",  // bad endpoint
      "dtr-graph 1\nnodes 2\nnode 0 0 0\nnode 1 1 0\nlinks 1\n",      // missing link
  };
  for (const char* text : cases) {
    std::stringstream ss(text);
    EXPECT_THROW(read_graph(ss), std::runtime_error) << "input: " << text;
  }
}

TEST(GraphIoTest, RejectsOneDirectionalArcsOnWrite) {
  Graph g(2);
  g.add_arc(0, 1, 100.0, 1.0);
  std::stringstream ss;
  EXPECT_THROW(write_graph(ss, g), std::invalid_argument);
}

TEST(GraphIoTest, DotExportMentionsAllNodesAndLinks) {
  const IspTopology isp = make_isp_backbone();
  const std::string dot = to_dot(isp.graph, isp.city_names);
  EXPECT_NE(dot.find("graph dtr {"), std::string::npos);
  EXPECT_NE(dot.find("Seattle"), std::string::npos);
  EXPECT_NE(dot.find("Boston"), std::string::npos);
  std::size_t edges = 0;
  for (std::size_t pos = 0; (pos = dot.find(" -- ", pos)) != std::string::npos; ++pos)
    ++edges;
  EXPECT_EQ(edges, isp.graph.num_links());
}

TEST(GraphIoTest, DotExportValidatesNameCount) {
  const Graph g = test::make_diamond();
  const std::vector<std::string> wrong{"a", "b"};
  EXPECT_THROW(to_dot(g, wrong), std::invalid_argument);
}

// ------------------------------------------------------------ weights I/O

TEST(WeightsIoTest, RoundTrip) {
  WeightSetting original(25);
  Rng rng(7);
  randomize_weights(original, 100, rng);
  std::stringstream ss;
  write_weights(ss, original);
  const WeightSetting copy = read_weights(ss);
  EXPECT_TRUE(copy == original);
}

TEST(WeightsIoTest, RejectsMalformedInput) {
  const char* cases[] = {
      "",
      "dtr-weights 9\n",
      "dtr-weights 1\nlinks 2\n1 1\n",       // truncated
      "dtr-weights 1\nlinks 1\n0 5\n",       // weight < 1
      "dtr-weights 1\nlinks 1\nx y\n",       // non-numeric
  };
  for (const char* text : cases) {
    std::stringstream ss(text);
    EXPECT_THROW(read_weights(ss), std::runtime_error) << "input: " << text;
  }
}

TEST(WeightsIoTest, CommentsAllowed) {
  std::stringstream ss("# exported by dtr\ndtr-weights 1\nlinks 1\n# link 0\n3 9\n");
  const WeightSetting w = read_weights(ss);
  EXPECT_EQ(w.get(TrafficClass::kDelay, 0), 3);
  EXPECT_EQ(w.get(TrafficClass::kThroughput, 0), 9);
}

}  // namespace
}  // namespace dtr
