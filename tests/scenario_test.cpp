/// Scenario-catalog subsystem: generator determinism, SRLG parse round-trip,
/// weighted aggregation, and the PR's acceptance contract — compound / SRLG
/// scenarios evaluate bit-identically on the incremental and full paths
/// across randomized topologies and 1-vs-8 worker threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "experiments/campaign.h"
#include "routing/evaluator.h"
#include "routing/failures.h"
#include "scenarios/scenario_eval.h"
#include "scenarios/scenario_set.h"
#include "scenarios/srlg.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace dtr {
namespace {

using experiments::ScenarioSpec;
using test::expect_results_identical;
using test::make_test_instance;
using test::random_weights;
using test::TestInstance;

std::string catalog_json(const ScenarioSet& set) {
  std::ostringstream os;
  write_scenario_set_json(os, set, "test");
  return os.str();
}

void expect_profile_bytes_identical(const FailureProfile& a, const FailureProfile& b) {
  ASSERT_EQ(a.violations.size(), b.violations.size());
  const auto bytes_equal = [](const std::vector<double>& x, const std::vector<double>& y) {
    return x.size() == y.size() &&
           (x.empty() || std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
  };
  EXPECT_TRUE(bytes_equal(a.violations, b.violations));
  EXPECT_TRUE(bytes_equal(a.lambda, b.lambda));
  EXPECT_TRUE(bytes_equal(a.phi, b.phi));
  EXPECT_EQ(a.phi_uncap, b.phi_uncap);
}

// ------------------------------------------------------------ representation

TEST(ScenarioTest, CompoundCanonicalForm) {
  const FailureScenario a = FailureScenario::compound({5, 1, 5, 3}, {7, 2, 7});
  EXPECT_EQ(a.kind, FailureScenario::Kind::kCompound);
  EXPECT_EQ(a.links, (std::vector<LinkId>{1, 3, 5}));
  EXPECT_EQ(a.nodes, (std::vector<NodeId>{2, 7}));
  // Canonicalization makes equality set equality.
  EXPECT_EQ(a, FailureScenario::compound({3, 5, 1}, {2, 7}));
  EXPECT_NE(a, FailureScenario::compound({3, 5, 1}, {2}));
  EXPECT_EQ(to_string(a), "links#1+3+5|nodes#2+7");
  EXPECT_EQ(to_string(FailureScenario::compound({4, 2})), "links#2+4");
  EXPECT_EQ(to_string(FailureScenario::compound({}, {9})), "nodes#9");
  EXPECT_EQ(to_string(FailureScenario::compound({})), "compound#empty");
}

TEST(ScenarioTest, CompoundAliveMaskKillsLinksAndNodeArcs) {
  const Graph g = test::make_ring(6);
  std::vector<std::uint8_t> mask;
  build_alive_mask(g, FailureScenario::compound({0, 3}, {5}), mask);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    const bool should_die =
        arc.link == 0 || arc.link == 3 || arc.src == 5 || arc.dst == 5;
    EXPECT_EQ(mask[a] == 0, should_die) << "arc " << a;
  }
  EXPECT_THROW(
      build_alive_mask(g, FailureScenario::compound({99}), mask), std::out_of_range);
  EXPECT_THROW(
      build_alive_mask(g, FailureScenario::compound({}, {99}), mask), std::out_of_range);
}

TEST(ScenarioTest, LinkPairFlowsThroughCompoundDispatch) {
  // kLinkPair and its compound equivalent dispatch to the same elements in
  // the same order — one representation internally.
  const Graph g = test::make_ring(5);
  std::vector<ArcId> from_pair, from_compound;
  for_each_failed_arc(g, FailureScenario::link_pair(1, 4),
                      [&](ArcId a) { from_pair.push_back(a); });
  for_each_failed_arc(g, FailureScenario::compound({1, 4}),
                      [&](ArcId a) { from_compound.push_back(a); });
  EXPECT_EQ(from_pair, from_compound);
}

// ------------------------------------------------------------ generators

TEST(ScenarioTest, KLinkEnumerationExactUnderBudget) {
  const Graph g = test::make_ring(6);  // 6 links, C(6,2) = 15
  const ScenarioSet set = enumerate_k_link_failures(g, {2, 20, 1});
  ASSERT_EQ(set.size(), 15u);
  // Lexicographic order, every pair exactly once.
  std::size_t i = 0;
  for (LinkId a = 0; a < 6; ++a) {
    for (LinkId b = a + 1; b < 6; ++b, ++i) {
      EXPECT_EQ(set.scenario(i), FailureScenario::compound({a, b}));
      EXPECT_EQ(set.weight(i), 1.0);
    }
  }
  // k = 3 enumeration: C(6,3) = 20.
  EXPECT_EQ(enumerate_k_link_failures(g, {3, 20, 1}).size(), 20u);
  EXPECT_EQ(enumerate_k_link_failures(g, {6, 20, 1}).size(), 1u);
}

TEST(ScenarioTest, KLinkSamplingDeterministicAndDistinct) {
  const TestInstance inst = make_test_instance(14, 5.0, 3);
  const KLinkSpec spec{3, 25, 77};  // C(35,3) >> 25, so the budget binds
  const ScenarioSet a = enumerate_k_link_failures(inst.graph, spec);
  const ScenarioSet b = enumerate_k_link_failures(inst.graph, spec);
  ASSERT_EQ(a.size(), 25u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(catalog_json(a), catalog_json(b));  // byte-stable catalog
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.scenario(i).links.size(), 3u);
    for (std::size_t j = i + 1; j < a.size(); ++j)
      EXPECT_FALSE(a.scenario(i) == a.scenario(j));
  }
  // A different seed yields a different catalog.
  EXPECT_FALSE(a == enumerate_k_link_failures(inst.graph, {3, 25, 78}));
}

TEST(ScenarioTest, DualLinkShimMatchesHistoricalStream) {
  // The pre-catalog sampler drew (a, b) per attempt, rejected a == b,
  // canonicalized by swap, and deduplicated against the accepted list. The
  // shim must replay that exact RNG stream.
  const TestInstance inst = make_test_instance(10, 4.0, 5);
  const std::size_t count = 15;

  Rng legacy_rng(123);
  std::vector<FailureScenario> legacy;
  std::size_t guard = 64 * count + 64;
  while (legacy.size() < count) {
    ASSERT_GT(guard--, 0u);
    auto a = static_cast<LinkId>(legacy_rng.uniform_index(inst.graph.num_links()));
    auto b = static_cast<LinkId>(legacy_rng.uniform_index(inst.graph.num_links()));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    const FailureScenario s = FailureScenario::link_pair(a, b);
    if (std::find(legacy.begin(), legacy.end(), s) != legacy.end()) continue;
    legacy.push_back(s);
  }

  Rng shim_rng(123);
  const auto shim = sample_dual_link_failures(inst.graph, count, shim_rng);
  ASSERT_EQ(shim.size(), legacy.size());
  for (std::size_t i = 0; i < shim.size(); ++i) {
    EXPECT_EQ(shim[i].kind, FailureScenario::Kind::kLinkPair);
    EXPECT_EQ(shim[i], legacy[i]);
  }
  // Both generators consumed the same number of draws.
  EXPECT_EQ(legacy_rng.uniform_index(1u << 30), shim_rng.uniform_index(1u << 30));
}

// ------------------------------------------------------------ SRLG catalogs

TEST(ScenarioTest, SrlgRoundTrip) {
  std::vector<SrlgGroup> groups;
  groups.push_back({"conduit-a", {3, 7, 12}, {}, 0.01});
  groups.push_back({"metro-ring", {1, 2}, {4, 9}, 1.0 / 3.0});
  groups.push_back({"srlg-2", {}, {5}, 1.0});

  std::ostringstream os;
  write_srlg(os, groups);
  std::istringstream in(os.str());
  EXPECT_EQ(parse_srlg(in), groups);

  // Names the format cannot represent are refused instead of corrupted:
  // '#' would parse as a comment, an empty name as a malformed line.
  std::ostringstream sink;
  const std::vector<SrlgGroup> hash{{"conduit#7", {1}, {}, 1.0}};
  EXPECT_THROW(write_srlg(sink, hash), std::invalid_argument);
  const std::vector<SrlgGroup> unnamed{{"", {1}, {}, 1.0}};
  EXPECT_THROW(write_srlg(sink, unnamed), std::invalid_argument);
}

TEST(ScenarioTest, SrlgParseValidation) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return parse_srlg(in);
  };
  // Defaults: generated name, weight 1.
  const auto groups = parse("# catalog\n[srlg]\nlinks = 2 1\n");
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].name, "srlg-0");
  EXPECT_EQ(groups[0].weight, 1.0);
  EXPECT_EQ(groups[0].links, (std::vector<LinkId>{2, 1}));  // parse keeps order

  EXPECT_THROW(parse("links = 1\n"), std::runtime_error);          // key before section
  EXPECT_THROW(parse("[srlg]\nbogus = 1\n"), std::runtime_error);  // unknown key
  EXPECT_THROW(parse("[srlg]\nlinks = 1x\n"), std::runtime_error); // trailing garbage
  EXPECT_THROW(parse("[srlg]\nlinks = -3\n"), std::runtime_error); // negative id
  EXPECT_THROW(parse("[srlg]\nweight = -1\nlinks = 1\n"), std::runtime_error);
  EXPECT_THROW(parse("[srlg]\nname = empty\n"), std::runtime_error);  // no elements
}

TEST(ScenarioTest, GeoSrlgsDeterministicAndValid) {
  const TestInstance inst = make_test_instance(20, 4.0, 11);
  const GeoSrlgParams params{3, 2, 0.5};
  const auto groups = synthesize_geo_srlgs(inst.graph, params);
  EXPECT_EQ(groups, synthesize_geo_srlgs(inst.graph, params));
  ASSERT_FALSE(groups.empty());
  std::size_t grouped_links = 0;
  for (const SrlgGroup& group : groups) {
    EXPECT_GE(group.links.size(), 2u);
    EXPECT_EQ(group.weight, 0.5);
    EXPECT_TRUE(std::is_sorted(group.links.begin(), group.links.end()));
    for (const LinkId l : group.links) EXPECT_LT(l, inst.graph.num_links());
    grouped_links += group.links.size();
  }
  EXPECT_LE(grouped_links, inst.graph.num_links());

  const ScenarioSet set = srlg_scenario_set(inst.graph, groups);
  ASSERT_EQ(set.size(), groups.size());
  EXPECT_EQ(set.name(0), groups[0].name);
  EXPECT_EQ(set.weight(0), 0.5);

  // Bad ids are rejected with the group named.
  const std::vector<SrlgGroup> bad{{"broken", {static_cast<LinkId>(
                                                  inst.graph.num_links())},
                                    {},
                                    1.0}};
  EXPECT_THROW(srlg_scenario_set(inst.graph, bad), std::out_of_range);
}

// ------------------------------------------------------------ weights

TEST(ScenarioTest, RateWeightsAreElementProducts) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 2.0);
  g.add_link(1, 2, 100.0, 5.0);
  g.add_link(2, 0, 100.0, 1.0);
  const RateModel model{0.001, 0.0002, 0.0005};
  const FailureRates rates = derive_failure_rates(g, model);
  ASSERT_EQ(rates.link.size(), 3u);
  EXPECT_DOUBLE_EQ(rates.link[0], 0.001 + 0.0002 * 2.0);
  EXPECT_DOUBLE_EQ(rates.link[1], 0.001 + 0.0002 * 5.0);
  EXPECT_DOUBLE_EQ(rates.node[2], 0.0005);

  ScenarioSet set;
  set.add(FailureScenario::none());
  set.add(FailureScenario::link(1));
  set.add(FailureScenario::link_pair(0, 2));
  set.add(FailureScenario::compound({0, 1}, {2}), 1.0, "mixed");
  apply_rate_weights(set, rates);
  EXPECT_DOUBLE_EQ(set.weight(0), 1.0);  // empty product
  EXPECT_DOUBLE_EQ(set.weight(1), rates.link[1]);
  EXPECT_DOUBLE_EQ(set.weight(2), rates.link[0] * rates.link[2]);
  EXPECT_DOUBLE_EQ(set.weight(3), rates.link[0] * rates.link[1] * rates.node[2]);
  EXPECT_EQ(set.name(3), "mixed");  // names survive reweighting

  ScenarioSet out_of_range;
  out_of_range.add(FailureScenario::link(7));
  EXPECT_THROW(apply_rate_weights(out_of_range, rates), std::out_of_range);

  set.normalize_weights();
  EXPECT_NEAR(set.total_weight(), 1.0, 1e-12);
}

TEST(ScenarioTest, WeightedPercentileHandChecks) {
  const std::vector<double> values{10.0, 30.0, 20.0, 40.0};
  const std::vector<double> weights{1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(weighted_percentile(values, weights, 0.0), 10.0);
  EXPECT_EQ(weighted_percentile(values, weights, 0.25), 10.0);
  EXPECT_EQ(weighted_percentile(values, weights, 0.5), 20.0);
  EXPECT_EQ(weighted_percentile(values, weights, 0.75), 30.0);
  EXPECT_EQ(weighted_percentile(values, weights, 1.0), 40.0);

  // Skewed weights pull the percentile toward the heavy value.
  const std::vector<double> skew{0.97, 0.01, 0.01, 0.01};
  EXPECT_EQ(weighted_percentile(values, skew, 0.5), 10.0);
  EXPECT_EQ(weighted_percentile(values, skew, 0.99), 30.0);
  EXPECT_EQ(weighted_percentile(values, skew, 1.0), 40.0);

  EXPECT_EQ(weighted_percentile({}, {}, 0.5), 0.0);
  EXPECT_THROW(weighted_percentile(values, skew, 1.5), std::invalid_argument);
  const std::vector<double> one{1.0}, minus{-1.0}, zero{0.0};
  EXPECT_THROW(weighted_percentile(values, one, 0.5), std::invalid_argument);
  EXPECT_THROW(weighted_percentile(one, minus, 0.5), std::invalid_argument);
  EXPECT_THROW(weighted_percentile(one, zero, 0.5), std::invalid_argument);
}

TEST(ScenarioTest, SummarizeScenariosMatchesManualReduction) {
  const TestInstance inst = make_test_instance(10, 4.0, 21);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const WeightSetting w = random_weights(inst.graph, 25, 31);

  ScenarioSet set = enumerate_k_link_failures(inst.graph, {2, 12, 9});
  apply_rate_weights(set, derive_failure_rates(inst.graph));
  const ScenarioSummary summary = summarize_scenarios(ev, w, set, 0.9);

  const std::vector<EvalResult> results = ev.evaluate_failures(w, set.scenarios());
  double total = 0.0, exp_lambda = 0.0, exp_viol = 0.0, worst_phi = 0.0;
  std::vector<double> viol;
  for (std::size_t i = 0; i < results.size(); ++i) {
    total += set.weight(i);
    exp_lambda += set.weight(i) * results[i].lambda;
    exp_viol += set.weight(i) * results[i].sla_violations;
    worst_phi = std::max(worst_phi, results[i].phi);
    viol.push_back(static_cast<double>(results[i].sla_violations));
  }
  EXPECT_EQ(summary.count, set.size());
  EXPECT_EQ(summary.total_weight, total);
  EXPECT_EQ(summary.expected_lambda, exp_lambda / total);
  EXPECT_EQ(summary.expected_violations, exp_viol / total);
  EXPECT_EQ(summary.worst_phi, worst_phi);
  EXPECT_EQ(summary.percentile_violations,
            weighted_percentile(viol, set.weights(), 0.9));

  // The weighted Evaluator::sweep accumulates the same weight * cost terms
  // in the same scenario order, so its sum matches the manual reduction
  // bitwise.
  const SweepResult sweep =
      ev.sweep(w, set.scenarios(), {.scenario_weights = set.weights()});
  EXPECT_EQ(sweep.lambda, exp_lambda);
}

// ------------------------------------------------------------ evaluator identity

TEST(ScenarioTest, CompoundMatchesEquivalentKindsBitwise) {
  const TestInstance inst = make_test_instance(12, 4.0, 41);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const WeightSetting w = random_weights(inst.graph, 30, 43);

  // compound({l}) == link(l), compound({a,b}) == link_pair(a,b),
  // compound({},{v}) == node(v) — including kFull detail.
  expect_results_identical(
      ev.evaluate(w, FailureScenario::compound({3}), EvalDetail::kFull),
      ev.evaluate(w, FailureScenario::link(3), EvalDetail::kFull));
  expect_results_identical(
      ev.evaluate(w, FailureScenario::compound({1, 5}), EvalDetail::kFull),
      ev.evaluate(w, FailureScenario::link_pair(1, 5), EvalDetail::kFull));
  expect_results_identical(
      ev.evaluate(w, FailureScenario::compound({}, {4}), EvalDetail::kFull),
      ev.evaluate(w, FailureScenario::node(4), EvalDetail::kFull));
}

TEST(ScenarioTest, IncrementalMatchesFullOnCompoundCatalogs) {
  // The acceptance contract: compound / SRLG scenarios produce bit-identical
  // FailureProfiles on the incremental and full paths, across randomized
  // topologies, weight settings, and 1 vs 8 worker threads.
  struct Case {
    int nodes;
    double degree;
    std::uint64_t seed;
  };
  for (const Case& c : {Case{10, 4.0, 51}, Case{14, 5.0, 63}, Case{18, 3.0, 85}}) {
    const TestInstance inst = make_test_instance(c.nodes, c.degree, c.seed);
    const Evaluator incremental(inst.graph, inst.traffic, inst.params,
                                {.incremental = true});
    const Evaluator full(inst.graph, inst.traffic, inst.params, {.incremental = false});

    // Mixed catalog: sampled 2- and 3-link compounds, geographic SRLGs,
    // node-failing compounds (full-path fallback), and the legacy kinds.
    std::vector<FailureScenario> scenarios;
    Rng rng(c.seed + 7);
    for (auto& s : sample_k_link_failures(inst.graph, 2, 10, rng))
      scenarios.push_back(std::move(s));
    for (auto& s : sample_k_link_failures(inst.graph, 3, 6, rng))
      scenarios.push_back(std::move(s));
    const ScenarioSet geo = srlg_scenario_set(
        inst.graph, synthesize_geo_srlgs(inst.graph, {3}));
    for (const FailureScenario& s : geo.scenarios()) scenarios.push_back(s);
    scenarios.push_back(FailureScenario::none());
    scenarios.push_back(FailureScenario::link(0));
    scenarios.push_back(FailureScenario::link_pair(0, 1));
    scenarios.push_back(FailureScenario::compound({0, 2}, {1}));
    scenarios.push_back(FailureScenario::compound({}, {0, 3}));

    ThreadPool one(1);
    ThreadPool eight(8);
    for (const std::uint64_t wseed : {c.seed + 1, c.seed + 2}) {
      const WeightSetting w = random_weights(inst.graph, 30, wseed);
      const FailureProfile reference = profile_failures(full, w, scenarios, &one);
      expect_profile_bytes_identical(reference,
                                     profile_failures(incremental, w, scenarios, &one));
      expect_profile_bytes_identical(
          reference, profile_failures(incremental, w, scenarios, &eight));
      expect_profile_bytes_identical(reference,
                                     profile_failures(full, w, scenarios, &eight));
    }
  }
}

TEST(ScenarioTest, CompoundUnavoidableViolationsHandlesNodeSkips) {
  const TestInstance inst = make_test_instance(10, 4.0, 91);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  // compound({},{v}) and node(v) are the same scenario; the floor metric
  // must agree (multi-skip plumbing through metrics.cpp).
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(unavoidable_violations(ev, FailureScenario::compound({}, {v})),
              unavoidable_violations(ev, FailureScenario::node(v)));
  }
}

// ------------------------------------------------------------ campaign surface

TEST(ScenarioTest, CampaignSpecParsesScenarioDirectives) {
  std::istringstream spec(R"(name = scn
effort = smoke
[cell]
id = a
topology = rand
nodes = 10
scenario_set = k_link
k_link = 3
scenario_budget = 17
percentile = 0.9
rate_weights = 1
[cell]
id = b
scenario_set = srlg_file
srlg_file = catalogs/backbone.srlg
[cell]
id = c
scenario_set = geo_srlg
geo_grid = 5
)");
  const experiments::Campaign campaign = experiments::parse_campaign_spec(spec);
  ASSERT_EQ(campaign.cells.size(), 3u);
  EXPECT_EQ(campaign.cells[0].scenario.kind, ScenarioSpec::Kind::kKLink);
  EXPECT_EQ(campaign.cells[0].scenario.k, 3);
  EXPECT_EQ(campaign.cells[0].scenario.budget, 17u);
  EXPECT_EQ(campaign.cells[0].scenario.percentile, 0.9);
  EXPECT_TRUE(campaign.cells[0].scenario.rate_weights);
  EXPECT_EQ(campaign.cells[1].scenario.kind, ScenarioSpec::Kind::kSrlgFile);
  EXPECT_EQ(campaign.cells[1].scenario.srlg_file, "catalogs/backbone.srlg");
  EXPECT_EQ(campaign.cells[2].scenario.kind, ScenarioSpec::Kind::kGeoSrlg);
  EXPECT_EQ(campaign.cells[2].scenario.geo_grid, 5);

  const auto parse_line = [](const std::string& line) {
    std::istringstream in("[cell]\n" + line + "\n");
    return experiments::parse_campaign_spec(in);
  };
  EXPECT_THROW(parse_line("scenario_set = bogus"), std::runtime_error);
  EXPECT_THROW(parse_line("k_link = 0"), std::runtime_error);
  EXPECT_THROW(parse_line("percentile = 1.5"), std::runtime_error);
  EXPECT_THROW(parse_line("scenario_budget = 0"), std::runtime_error);
}

TEST(ScenarioTest, BuildScenarioSetKinds) {
  const TestInstance inst = make_test_instance(12, 4.0, 19);
  ScenarioSpec spec;
  EXPECT_TRUE(experiments::build_scenario_set(spec, inst.graph, 1).empty());

  spec.kind = ScenarioSpec::Kind::kAllLinks;
  EXPECT_EQ(experiments::build_scenario_set(spec, inst.graph, 1).size(),
            inst.graph.num_links());
  spec.kind = ScenarioSpec::Kind::kAllNodes;
  EXPECT_EQ(experiments::build_scenario_set(spec, inst.graph, 1).size(),
            inst.graph.num_nodes());

  spec.kind = ScenarioSpec::Kind::kKLink;
  spec.k = 2;
  spec.budget = 13;
  const ScenarioSet k2 = experiments::build_scenario_set(spec, inst.graph, 5);
  EXPECT_EQ(k2.size(), 13u);
  EXPECT_EQ(k2, experiments::build_scenario_set(spec, inst.graph, 5));

  spec.rate_weights = true;
  const ScenarioSet weighted = experiments::build_scenario_set(spec, inst.graph, 5);
  EXPECT_EQ(weighted.scenarios().size(), k2.scenarios().size());
  EXPECT_LT(weighted.total_weight(), k2.total_weight());  // probabilities << 1

  spec.kind = ScenarioSpec::Kind::kSrlgFile;
  spec.srlg_file = "/nonexistent/missing.srlg";
  EXPECT_THROW(experiments::build_scenario_set(spec, inst.graph, 1),
               std::runtime_error);
}

}  // namespace
}  // namespace dtr
