#include <gtest/gtest.h>

#include <cmath>

#include "core/acceptable_store.h"
#include "core/local_search.h"

namespace dtr {
namespace {

/// Convex separable toy objective: each link has an ideal weight per class;
/// cost = sum of squared distances. Unique global optimum, easy to verify.
class QuadraticObjective final : public SearchObjective {
 public:
  QuadraticObjective(std::vector<int> ideal_delay, std::vector<int> ideal_tput)
      : ideal_delay_(std::move(ideal_delay)), ideal_tput_(std::move(ideal_tput)) {}

  std::optional<CostPair> evaluate(const WeightSetting& w, const CostPair*) override {
    ++calls_;
    double cost = 0.0;
    for (LinkId l = 0; l < w.num_links(); ++l) {
      const double dd = w.get(TrafficClass::kDelay, l) - ideal_delay_[l];
      const double dt = w.get(TrafficClass::kThroughput, l) - ideal_tput_[l];
      cost += dd * dd + dt * dt;
    }
    return CostPair{cost, 0.0};
  }

  long calls() const { return calls_; }

 private:
  std::vector<int> ideal_delay_, ideal_tput_;
  long calls_ = 0;
};

/// Objective infeasible whenever any delay weight exceeds a cap — exercises
/// the constraint path.
class CappedObjective final : public SearchObjective {
 public:
  explicit CappedObjective(int cap) : cap_(cap) {}
  std::optional<CostPair> evaluate(const WeightSetting& w, const CostPair*) override {
    double sum = 0.0;
    for (LinkId l = 0; l < w.num_links(); ++l) {
      const int wd = w.get(TrafficClass::kDelay, l);
      if (wd > cap_) return std::nullopt;
      sum += wd;
    }
    return CostPair{sum, 0.0};
  }

 private:
  int cap_;
};

LocalSearch::Config quick_config(std::uint64_t seed) {
  LocalSearch::Config c;
  c.phase = {5, 3, 0.01, 0};
  c.wmax = 20;
  c.seed = seed;
  return c;
}

TEST(LocalSearchTest, DescendsNearQuadraticOptimum) {
  // Per-link joint random reassignment is hill climbing: the exact optimum
  // needs the exact (delay, tput) pair drawn per link, so we require strong
  // descent rather than zero. Initial cost from all-1 weights is 706.
  QuadraticObjective obj({7, 3, 15, 9}, {2, 18, 5, 11});
  LocalSearch::Config config = quick_config(1);
  config.phase = {20, 6, 0.001, 0};
  LocalSearch search(config);
  const auto result = search.run(obj, WeightSetting(4));
  EXPECT_LT(result.best_cost.lambda, 50.0);
  EXPECT_GT(result.accepted_moves, 0);
}

TEST(LocalSearchTest, NeverWorsensBestCost) {
  QuadraticObjective obj({5, 5, 5}, {5, 5, 5});
  LocalSearch search(quick_config(2));
  std::vector<double> accepted_costs;
  search.set_on_accept([&](const WeightSetting&, const CostPair& c) {
    accepted_costs.push_back(c.lambda);
  });
  const auto result = search.run(obj, WeightSetting(3));
  // Accepted trajectory is monotone within a diversification; the BEST is
  // globally monotone: final best <= initial cost.
  const WeightSetting init(3);
  const auto init_cost = obj.evaluate(init, nullptr);
  EXPECT_LE(result.best_cost.lambda, init_cost->lambda);
}

TEST(LocalSearchTest, DeterministicForSeed) {
  QuadraticObjective obj1({7, 3, 15}, {2, 18, 5});
  QuadraticObjective obj2({7, 3, 15}, {2, 18, 5});
  LocalSearch s1(quick_config(9)), s2(quick_config(9));
  const auto r1 = s1.run(obj1, WeightSetting(3));
  const auto r2 = s2.run(obj2, WeightSetting(3));
  EXPECT_EQ(r1.best_cost.lambda, r2.best_cost.lambda);
  EXPECT_EQ(r1.evaluations, r2.evaluations);
  EXPECT_TRUE(r1.best == r2.best);
}

TEST(LocalSearchTest, ObserverSeesEveryProbe) {
  QuadraticObjective obj({3, 3}, {3, 3});
  LocalSearch search(quick_config(3));
  long events = 0, accepted_events = 0;
  search.set_observer([&](const PerturbationEvent& e) {
    ++events;
    EXPECT_LT(e.link, 2u);
    EXPECT_GE(e.new_weight_delay, 1);
    EXPECT_LE(e.new_weight_delay, 20);
    EXPECT_TRUE(e.cost_after.has_value());
    if (e.accepted) ++accepted_events;
  });
  const auto result = search.run(obj, WeightSetting(2));
  EXPECT_GT(events, 0);
  EXPECT_EQ(accepted_events, result.accepted_moves);
  // Every probe except the initial/restart evaluations fires the observer.
  EXPECT_GE(result.evaluations, events);
}

TEST(LocalSearchTest, InfeasibleCandidatesRejected) {
  CappedObjective obj(10);
  LocalSearch search(quick_config(4));
  const auto result = search.run(obj, WeightSetting(3, 5));
  // All weights must remain within the cap (moves violating it are rejected).
  for (LinkId l = 0; l < 3; ++l)
    EXPECT_LE(result.best.get(TrafficClass::kDelay, l), 10);
  // And the search still improves toward the minimum sum = 3.
  EXPECT_LE(result.best_cost.lambda, 15.0);
}

TEST(LocalSearchTest, ThrowsOnInfeasibleInitial) {
  CappedObjective obj(10);
  LocalSearch search(quick_config(5));
  EXPECT_THROW(search.run(obj, WeightSetting(3, 15)), std::invalid_argument);
}

TEST(LocalSearchTest, RestartHookUsed) {
  QuadraticObjective obj({10, 10, 10, 10, 10}, {10, 10, 10, 10, 10});
  LocalSearch::Config config = quick_config(6);
  config.phase = {2, 2, 0.5, 0};  // diversify fast, stall fast
  LocalSearch search(config);
  int restarts = 0;
  search.set_restart([&](Rng&) {
    ++restarts;
    return WeightSetting(5, 10);  // the optimum
  });
  const auto result = search.run(obj, WeightSetting(5, 1));
  EXPECT_GT(restarts, 0);
  EXPECT_NEAR(result.best_cost.lambda, 0.0, 1e-12);
}

TEST(LocalSearchTest, DiversificationCountedAndBounded) {
  QuadraticObjective obj({1, 1}, {1, 1});
  LocalSearch::Config config = quick_config(7);
  config.phase = {1, 2, 0.9, 0};  // nearly impossible improvement bar
  LocalSearch search(config);
  const auto result = search.run(obj, WeightSetting(2, 1));
  // Starting at the optimum: every diversification stalls; stops after 2.
  EXPECT_EQ(result.diversifications, 2);
}

TEST(LocalSearchTest, HardCapOnDiversifications) {
  QuadraticObjective obj({10, 10}, {10, 10});
  LocalSearch::Config config = quick_config(8);
  config.phase = {1, 1000, 0.0, 3};  // improvement threshold 0: never stalls
  LocalSearch search(config);
  const auto result = search.run(obj, WeightSetting(2, 1));
  EXPECT_LE(result.diversifications, 3);
}

TEST(LocalSearchTest, ConfigValidation) {
  EXPECT_THROW(LocalSearch({{0, 5, 0.1, 0}, 10, 1}), std::invalid_argument);
  EXPECT_THROW(LocalSearch({{5, 0, 0.1, 0}, 10, 1}), std::invalid_argument);
  EXPECT_THROW(LocalSearch({{5, 5, 0.1, 0}, 1, 1}), std::invalid_argument);
  LocalSearch ok({{5, 5, 0.1, 0}, 10, 1});
  QuadraticObjective obj({}, {});
  EXPECT_THROW(ok.run(obj, WeightSetting(0)), std::invalid_argument);
}

// ------------------------------------------------------------ store

TEST(AcceptableStoreTest, KeepsEverythingBelowCapacity) {
  AcceptableStore store(10, 1);
  for (int i = 0; i < 5; ++i)
    store.offer(WeightSetting(2, i + 1), {static_cast<double>(i), 0.0});
  EXPECT_EQ(store.size(), 5u);
}

TEST(AcceptableStoreTest, BoundedByCapacity) {
  AcceptableStore store(8, 2);
  for (int i = 0; i < 100; ++i)
    store.offer(WeightSetting(2, (i % 19) + 1), {static_cast<double>(i), 0.0});
  EXPECT_EQ(store.size(), 8u);
}

TEST(AcceptableStoreTest, ReservoirKeepsOldAndNew) {
  AcceptableStore store(16, 3);
  for (int i = 0; i < 400; ++i)
    store.offer(WeightSetting(1, 1), {static_cast<double>(i), 0.0});
  // With reservoir sampling the retained indices should span early and late
  // offers (probability of all 16 being from one half is astronomically low).
  int early = 0, late = 0;
  for (std::size_t i = 0; i < store.size(); ++i) {
    if (store.entry(i).cost.lambda < 200.0) ++early;
    else ++late;
  }
  EXPECT_GT(early, 0);
  EXPECT_GT(late, 0);
}

TEST(AcceptableStoreTest, FeasibleFilterAppliesConstraints) {
  AcceptableStore store(10, 4);
  store.offer(WeightSetting(1, 1), {0.0, 100.0});   // feasible
  store.offer(WeightSetting(1, 2), {0.0, 119.0});   // feasible (chi=0.2)
  store.offer(WeightSetting(1, 3), {0.0, 121.0});   // Phi too high
  store.offer(WeightSetting(1, 4), {5.0, 100.0});   // Lambda mismatch
  const auto feasible = store.feasible_entries(0.0, 100.0, 0.2);
  EXPECT_EQ(feasible.size(), 2u);
}

TEST(AcceptableStoreTest, SampleFromEmptyThrows) {
  AcceptableStore store(4, 5);
  Rng rng(1);
  EXPECT_THROW(store.sample(rng), std::logic_error);
  store.offer(WeightSetting(1, 1), {0.0, 0.0});
  EXPECT_NO_THROW(store.sample(rng));
}

TEST(AcceptableStoreTest, ZeroCapacityRejected) {
  EXPECT_THROW(AcceptableStore(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace dtr
