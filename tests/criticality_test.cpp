#include <gtest/gtest.h>

#include <algorithm>

#include "core/criticality.h"
#include "core/rank_convergence.h"
#include "util/rng.h"

namespace dtr {
namespace {

// ------------------------------------------------------- RankTracker

TEST(RankTrackerTest, RanksDescendingWithTies) {
  const std::vector<double> v{5.0, 9.0, 1.0, 9.0};
  const auto rank = criticality_ranks(v);
  EXPECT_EQ(rank[1], 0u);  // 9.0, earliest index wins the tie
  EXPECT_EQ(rank[3], 1u);
  EXPECT_EQ(rank[0], 2u);
  EXPECT_EQ(rank[2], 3u);
}

TEST(RankTrackerTest, FirstUpdateIsZero) {
  RankTracker tracker(2.0);
  EXPECT_DOUBLE_EQ(tracker.update(std::vector<double>{3.0, 1.0, 2.0}), 0.0);
  EXPECT_FALSE(tracker.converged());  // needs two updates
}

TEST(RankTrackerTest, StableRanksConverge) {
  RankTracker tracker(2.0);
  const std::vector<double> v{3.0, 1.0, 2.0};
  tracker.update(v);
  const double s = tracker.update(v);
  EXPECT_DOUBLE_EQ(s, 0.0);
  EXPECT_TRUE(tracker.converged());
}

TEST(RankTrackerTest, WeightedIndexFormula) {
  RankTracker tracker(2.0);
  tracker.update(std::vector<double>{4.0, 3.0, 2.0, 1.0});  // ranks 0,1,2,3
  // Swap first and last: rank changes are 3,0,0,3 -> S = (9+9)/(3+3) = 3.
  const double s = tracker.update(std::vector<double>{1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s, 3.0);
  EXPECT_FALSE(tracker.converged());  // 3 > e=2
}

TEST(RankTrackerTest, SmallChurnConverges) {
  RankTracker tracker(2.0);
  tracker.update(std::vector<double>{4.0, 3.0, 2.0, 1.0});
  // Adjacent swap: changes 1,1,0,0 -> S = 2/2 = 1 <= 2.
  const double s = tracker.update(std::vector<double>{3.0, 4.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(s, 1.0);
  EXPECT_TRUE(tracker.converged());
}

TEST(RankTrackerTest, EmphasizesLargeMoves) {
  // One link moving far dominates many links moving slightly: the gamma
  // weighting makes S close to the large move.
  RankTracker tracker(2.0);
  std::vector<double> v(10);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 10.0 - static_cast<double>(i);
  tracker.update(v);
  // Move the last element to the front (rank change 9 for it, 1 for others).
  std::vector<double> shifted = v;
  shifted[9] = 11.0;
  const double s = tracker.update(shifted);
  // Changes: 9 for link 9, 1 for the rest: S = (81+9)/(9+9) = 5.
  EXPECT_DOUBLE_EQ(s, 5.0);
}

TEST(RankTrackerTest, SizeChangeRejected) {
  RankTracker tracker(2.0);
  tracker.update(std::vector<double>{1.0, 2.0});
  EXPECT_THROW(tracker.update(std::vector<double>{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(RankTrackerTest, NegativeThresholdRejected) {
  EXPECT_THROW(RankTracker(-1.0), std::invalid_argument);
}

// ------------------------------------------------------- collector

CriticalityParams quick_params() {
  CriticalityParams p;
  p.tau = 2;
  return p;
}

TEST(CollectorTest, RhoIsMeanMinusLeftTail) {
  CriticalityCollector collector(2, 100, 100.0, quick_params(), 1);
  // Link 0: wide distribution; link 1: narrow (constant).
  for (int i = 1; i <= 20; ++i)
    collector.add_sample(0, {static_cast<double>(10 * i), 0.0});
  for (int i = 0; i < 20; ++i) collector.add_sample(1, {100.0, 0.0});
  const auto est = collector.estimates();
  // Link 0: mean 105, left tail (10%) = {10,20} mean 15 -> rho = 90.
  EXPECT_NEAR(est.mean_lambda[0], 105.0, 1e-9);
  EXPECT_NEAR(est.tail_lambda[0], 15.0, 1e-9);
  EXPECT_NEAR(est.rho_lambda[0], 90.0, 1e-9);
  // Link 1: constant distribution -> rho 0.
  EXPECT_NEAR(est.rho_lambda[1], 0.0, 1e-9);
}

TEST(CollectorTest, WideDistributionMoreCritical) {
  // Fig. 2(b): same mean, wider spread -> more critical.
  CriticalityCollector collector(2, 100, 100.0, quick_params(), 1);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    collector.add_sample(0, {std::max(0.0, rng.normal(100.0, 40.0)), 0.0});
    collector.add_sample(1, {std::max(0.0, rng.normal(100.0, 4.0)), 0.0});
  }
  const auto est = collector.estimates();
  EXPECT_GT(est.rho_lambda[0], 3.0 * est.rho_lambda[1]);
}

TEST(CollectorTest, ObserverFiltersByWeightWindow) {
  CriticalityCollector collector(3, 100, 100.0, quick_params(), 1);
  EXPECT_EQ(collector.emulation_weight_floor(), 70);
  PerturbationEvent inside{1, 80, 95, {0.0, 10.0}, {0.0, 10.0}, CostPair{5.0, 20.0}, false};
  PerturbationEvent below_delay{1, 60, 95, {0.0, 10.0}, {0.0, 10.0}, CostPair{5.0, 20.0}, false};
  PerturbationEvent below_tput{1, 95, 69, {0.0, 10.0}, {0.0, 10.0}, CostPair{5.0, 20.0}, false};
  collector.on_perturbation(inside);
  collector.on_perturbation(below_delay);
  collector.on_perturbation(below_tput);
  EXPECT_EQ(collector.sample_count(1), 1u);
  EXPECT_EQ(collector.total_samples(), 1u);
}

TEST(CollectorTest, ObserverFiltersByAcceptability) {
  CriticalityCollector collector(2, 100, 100.0, quick_params(), 1);
  const CostPair best{10.0, 100.0};
  // Acceptable: Lambda <= 10 + 0.5*100 = 60; Phi <= 1.2*100 = 120.
  PerturbationEvent ok{0, 90, 90, {55.0, 115.0}, best, CostPair{500.0, 500.0}, false};
  PerturbationEvent bad_lambda{0, 90, 90, {61.0, 100.0}, best, CostPair{1.0, 1.0}, false};
  PerturbationEvent bad_phi{0, 90, 90, {10.0, 121.0}, best, CostPair{1.0, 1.0}, false};
  collector.on_perturbation(ok);
  collector.on_perturbation(bad_lambda);
  collector.on_perturbation(bad_phi);
  EXPECT_EQ(collector.sample_count(0), 1u);
  // The recorded sample is the post-perturbation cost.
  const auto est = collector.estimates();
  EXPECT_DOUBLE_EQ(est.mean_lambda[0], 500.0);
}

TEST(CollectorTest, ObserverIgnoresInfeasible) {
  CriticalityCollector collector(2, 100, 100.0, quick_params(), 1);
  PerturbationEvent infeasible{0, 90, 90, {0.0, 0.0}, {0.0, 0.0}, std::nullopt, false};
  collector.on_perturbation(infeasible);
  EXPECT_EQ(collector.total_samples(), 0u);
}

TEST(CollectorTest, ConvergenceAfterStableTauUpdates) {
  CriticalityParams p = quick_params();  // tau=2, 2 links -> update every 4 samples
  CriticalityCollector collector(2, 100, 100.0, p, 1);
  // Deterministic, stable distributions: ranks never move.
  for (int round = 0; round < 4; ++round) {
    collector.add_sample(0, {100.0 + (round % 3), 0.0});
    collector.add_sample(0, {200.0, 0.0});
    collector.add_sample(1, {10.0, 0.0});
    collector.add_sample(1, {11.0, 0.0});
  }
  EXPECT_GE(collector.rank_updates(), 2u);
  EXPECT_TRUE(collector.converged());
}

TEST(CollectorTest, ReservoirCapsMemory) {
  CriticalityParams p = quick_params();
  p.max_samples_per_link = 50;
  CriticalityCollector collector(1, 100, 100.0, p, 1);
  for (int i = 0; i < 500; ++i) collector.add_sample(0, {static_cast<double>(i), 0.0});
  EXPECT_EQ(collector.sample_count(0), 50u);
  EXPECT_EQ(collector.total_samples(), 500u);
}

TEST(CollectorTest, LinksBySampleNeedOrdering) {
  CriticalityCollector collector(3, 100, 100.0, quick_params(), 1);
  collector.add_sample(2, {1.0, 1.0});
  collector.add_sample(2, {1.0, 1.0});
  collector.add_sample(0, {1.0, 1.0});
  const auto order = collector.links_by_sample_need();
  EXPECT_EQ(order[0], 1u);  // zero samples first
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 2u);
}

TEST(CollectorTest, Validation) {
  EXPECT_THROW(CriticalityCollector(0, 100, 100.0, quick_params(), 1),
               std::invalid_argument);
  CriticalityParams bad_q = quick_params();
  bad_q.q = 1.5;
  EXPECT_THROW(CriticalityCollector(2, 100, 100.0, bad_q, 1), std::invalid_argument);
  CriticalityCollector c(2, 100, 100.0, quick_params(), 1);
  EXPECT_THROW(c.add_sample(5, {1.0, 1.0}), std::out_of_range);
}

}  // namespace
}  // namespace dtr
