#include <gtest/gtest.h>

#include <algorithm>

#include "core/critical_selector.h"

namespace dtr {
namespace {

CriticalityEstimates make_estimates(std::vector<double> rho_lambda,
                                    std::vector<double> rho_phi) {
  CriticalityEstimates est;
  est.rho_lambda = std::move(rho_lambda);
  est.rho_phi = std::move(rho_phi);
  const std::size_t n = est.rho_lambda.size();
  // Default tails/means make the normalization denominator 1 per class so the
  // hand-computed expectations below stay legible.
  est.tail_lambda.assign(n, 1.0 / static_cast<double>(n));
  est.tail_phi.assign(n, 1.0 / static_cast<double>(n));
  est.mean_lambda.assign(n, 1.0);
  est.mean_phi.assign(n, 1.0);
  return est;
}

bool contains(const std::vector<LinkId>& v, LinkId l) {
  return std::find(v.begin(), v.end(), l) != v.end();
}

TEST(NormalizeTest, DividesByTailSum) {
  const std::vector<double> rho{2.0, 4.0};
  const std::vector<double> tail{3.0, 5.0};  // sum 8
  const std::vector<double> mean{10.0, 10.0};
  const auto norm = normalize_criticality(rho, tail, mean);
  EXPECT_DOUBLE_EQ(norm[0], 0.25);
  EXPECT_DOUBLE_EQ(norm[1], 0.5);
}

TEST(NormalizeTest, FallsBackToMeanSumThenOne) {
  const std::vector<double> rho{2.0, 4.0};
  const std::vector<double> zero{0.0, 0.0};
  const std::vector<double> mean{1.0, 3.0};  // sum 4
  const auto by_mean = normalize_criticality(rho, zero, mean);
  EXPECT_DOUBLE_EQ(by_mean[0], 0.5);
  EXPECT_DOUBLE_EQ(by_mean[1], 1.0);
  const auto by_one = normalize_criticality(rho, zero, zero);
  EXPECT_DOUBLE_EQ(by_one[0], 2.0);
  EXPECT_DOUBLE_EQ(by_one[1], 4.0);
}

TEST(NormalizeTest, SizeMismatchThrows) {
  EXPECT_THROW(normalize_criticality(std::vector<double>{1.0}, std::vector<double>{},
                                     std::vector<double>{}),
               std::invalid_argument);
}

TEST(SelectorTest, KeepsMostCriticalOfBothClasses) {
  // Link 0 is Lambda-critical only; link 3 is Phi-critical only.
  const auto est = make_estimates({10.0, 1.0, 0.5, 0.1}, {0.1, 0.5, 1.0, 10.0});
  const auto sel = select_critical_links(est, 2);
  EXPECT_LE(sel.critical.size(), 2u);
  EXPECT_TRUE(contains(sel.critical, 0));
  EXPECT_TRUE(contains(sel.critical, 3));
}

TEST(SelectorTest, TargetSizeRespected) {
  const auto est = make_estimates({8.0, 7.0, 6.0, 5.0, 4.0, 3.0},
                                  {3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
  for (std::size_t target = 1; target <= 6; ++target) {
    const auto sel = select_critical_links(est, target);
    EXPECT_LE(sel.critical.size(), target);
    EXPECT_GE(sel.critical.size(), std::min<std::size_t>(target, 1));
  }
}

TEST(SelectorTest, FullTargetKeepsEverything) {
  const auto est = make_estimates({1.0, 2.0, 3.0}, {3.0, 2.0, 1.0});
  const auto sel = select_critical_links(est, 3);
  EXPECT_EQ(sel.critical.size(), 3u);
  EXPECT_EQ(sel.n1, 3u);
  EXPECT_EQ(sel.n2, 3u);
  EXPECT_DOUBLE_EQ(sel.expected_error_lambda, 0.0);
  EXPECT_DOUBLE_EQ(sel.expected_error_phi, 0.0);
}

TEST(SelectorTest, ShrinksListWithSmallerMarginalError) {
  // Lambda criticality is concentrated (dropping its tail costs little);
  // Phi criticality is uniform (every drop costs the same). Algorithm 1
  // should prefer shrinking the Lambda list... carefully: it shrinks the list
  // whose (n-1)-truncation error is SMALLER.
  const auto est = make_estimates({100.0, 0.001, 0.001, 0.001},
                                  {5.0, 5.0, 5.0, 5.0});
  const auto sel = select_critical_links(est, 2);
  // Link 0 (huge Lambda rho) must survive; remaining slot goes to Phi's list,
  // whose order is 0,1,2,3 (ties by id) -> expect {0, 1}.
  EXPECT_TRUE(contains(sel.critical, 0));
  EXPECT_EQ(sel.critical.size(), 2u);
  // The Lambda list should have been truncated aggressively.
  EXPECT_LT(sel.n1, sel.n2);
}

TEST(SelectorTest, OrdersSortedByNormalizedRho) {
  const auto est = make_estimates({1.0, 5.0, 3.0}, {2.0, 0.0, 9.0});
  const auto sel = select_critical_links(est, 3);
  EXPECT_EQ(sel.order_lambda[0], 1u);
  EXPECT_EQ(sel.order_lambda[1], 2u);
  EXPECT_EQ(sel.order_lambda[2], 0u);
  EXPECT_EQ(sel.order_phi[0], 2u);
}

TEST(SelectorTest, ExpectedErrorsAreSuffixSums) {
  const auto est = make_estimates({4.0, 3.0, 2.0, 1.0}, {1.0, 2.0, 3.0, 4.0});
  const auto sel = select_critical_links(est, 2);
  // Whatever n1/n2 the algorithm chose, the reported errors must equal the
  // sum of normalized rho over excluded links.
  double err_lambda = 0.0;
  for (std::size_t i = sel.n1; i < 4; ++i)
    err_lambda += sel.norm_rho_lambda[sel.order_lambda[i]];
  EXPECT_NEAR(sel.expected_error_lambda, err_lambda, 1e-12);
  double err_phi = 0.0;
  for (std::size_t i = sel.n2; i < 4; ++i)
    err_phi += sel.norm_rho_phi[sel.order_phi[i]];
  EXPECT_NEAR(sel.expected_error_phi, err_phi, 1e-12);
}

TEST(SelectorTest, HandlesAllZeroCriticality) {
  const auto est = make_estimates({0.0, 0.0, 0.0}, {0.0, 0.0, 0.0});
  const auto sel = select_critical_links(est, 2);
  EXPECT_LE(sel.critical.size(), 2u);
  EXPECT_GE(sel.critical.size(), 1u);
}

TEST(SelectorTest, SingleTarget) {
  const auto est = make_estimates({1.0, 9.0}, {2.0, 3.0});
  const auto sel = select_critical_links(est, 1);
  EXPECT_EQ(sel.critical.size(), 1u);
  EXPECT_EQ(sel.critical[0], 1u);  // most critical in both orderings
}

TEST(SelectorTest, Validation) {
  CriticalityEstimates empty;
  EXPECT_THROW(select_critical_links(empty, 1), std::invalid_argument);
  const auto est = make_estimates({1.0}, {1.0});
  EXPECT_THROW(select_critical_links(est, 0), std::invalid_argument);
  CriticalityEstimates mismatched = est;
  mismatched.rho_phi.push_back(1.0);
  EXPECT_THROW(select_critical_links(mismatched, 1), std::invalid_argument);
}

TEST(SelectorTest, CriticalListIsSortedUniqueLinkIds) {
  const auto est = make_estimates({5.0, 1.0, 4.0, 2.0, 3.0},
                                  {3.0, 5.0, 1.0, 4.0, 2.0});
  const auto sel = select_critical_links(est, 3);
  EXPECT_TRUE(std::is_sorted(sel.critical.begin(), sel.critical.end()));
  EXPECT_EQ(std::adjacent_find(sel.critical.begin(), sel.critical.end()),
            sel.critical.end());
  for (LinkId l : sel.critical) EXPECT_LT(l, 5u);
}

}  // namespace
}  // namespace dtr
