/// Telemetry subsystem tests: registry/instrument units (counter merges,
/// histogram bucket math, scoped-span nesting), the deterministic-plane
/// contract — counter snapshots byte-identical across 1-vs-8-thread batch
/// evaluation, sequential-vs-parallel aborted sweeps, optimizer thread
/// shapes, and cell-parallel vs inner-parallel campaigns — plus the export
/// writers and the global enable switch. This binary also runs under TSan in
/// CI (concurrent registration/increment/span recording).

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/optimizer.h"
#include "experiments/campaign.h"
#include "experiments/results.h"
#include "routing/failures.h"
#include "telemetry/telemetry.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace {

using namespace dtr;
using namespace dtr::test;
namespace exp = dtr::experiments;

/// Deterministic-plane-only export: the bytes that must match across shapes.
std::string det_json(const telemetry::Registry& reg, std::string_view name) {
  telemetry::TelemetryJsonOptions options;
  options.include_process = false;
  options.include_spans = false;
  std::ostringstream ss;
  write_telemetry_json(ss, reg, name, options);
  return ss.str();
}

TEST(TelemetryRegistryTest, CountersSnapshotNameSortedPerPlane) {
  telemetry::Registry reg;
  reg.counter("zeta").add(3);
  reg.counter("alpha").add(1);
  reg.counter("alpha").add(1);
  reg.counter("mid", telemetry::Plane::kProcess).add(7);

  const telemetry::Snapshot det = reg.snapshot(telemetry::Plane::kDeterministic);
  ASSERT_EQ(det.counters.size(), 2u);
  EXPECT_EQ(det.counters[0].name, "alpha");
  EXPECT_EQ(det.counters[0].value, 2u);
  EXPECT_EQ(det.counters[1].name, "zeta");
  EXPECT_EQ(det.counters[1].value, 3u);
  EXPECT_EQ(det.counter("zeta"), 3u);
  EXPECT_EQ(det.counter("missing"), 0u);  // absent reads as zero

  const telemetry::Snapshot proc = reg.snapshot(telemetry::Plane::kProcess);
  ASSERT_EQ(proc.counters.size(), 1u);
  EXPECT_EQ(proc.counters[0].name, "mid");
  EXPECT_EQ(proc.counters[0].value, 7u);
}

TEST(TelemetryRegistryTest, HistogramBucketEdges) {
  telemetry::Registry reg;
  const std::uint64_t bounds[] = {1, 2, 4};
  telemetry::Histogram& h = reg.histogram("h", bounds);
  // Bucket i counts bounds[i-1] < v <= bounds[i]; v=0 and v=1 share bucket 0,
  // v > bounds.back() lands in the overflow bucket.
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  h.observe(5);
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0, 1
  EXPECT_EQ(counts[1], 1u);  // 2
  EXPECT_EQ(counts[2], 2u);  // 3, 4
  EXPECT_EQ(counts[3], 1u);  // 5 overflows
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 15u);

  // merge_buckets is the pre-binned batch form of the same rule.
  const std::uint64_t binned[] = {1, 0, 2, 1};
  h.merge_buckets(binned, 4, 11);
  EXPECT_EQ(h.counts()[0], 3u);
  EXPECT_EQ(h.counts()[3], 2u);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 26u);
}

TEST(TelemetryRegistryTest, MergeCountersAddsAndGaugesOverwrite) {
  telemetry::Registry a, b;
  a.counter("shared").add(5);
  a.gauge("g").set(1);
  const std::uint64_t bounds[] = {10};
  a.histogram("h", bounds).observe(3);
  b.counter("shared").add(7);
  b.counter("only_b").add(2);
  b.gauge("g", telemetry::Plane::kProcess).set(9);
  b.histogram("h", bounds).observe(30);

  a.merge_counters(b.snapshot(telemetry::Plane::kDeterministic));
  const telemetry::Snapshot det = a.snapshot(telemetry::Plane::kDeterministic);
  EXPECT_EQ(det.counter("shared"), 12u);
  EXPECT_EQ(det.counter("only_b"), 2u);
  ASSERT_EQ(det.histograms.size(), 1u);
  EXPECT_EQ(det.histograms[0].count, 2u);
  EXPECT_EQ(det.histograms[0].sum, 33u);
  EXPECT_EQ(det.histograms[0].counts[0], 1u);
  EXPECT_EQ(det.histograms[0].counts[1], 1u);

  a.merge_counters(b.snapshot(telemetry::Plane::kProcess), telemetry::Plane::kProcess);
  const telemetry::Snapshot proc = a.snapshot(telemetry::Plane::kProcess);
  ASSERT_EQ(proc.gauges.size(), 1u);
  EXPECT_EQ(proc.gauges[0].value, 9u);  // overwrite, not add
}

TEST(TelemetryRegistryTest, ScopedSpanNestingDepthsAndMergeLanes) {
  telemetry::Registry reg;
  {
    telemetry::ScopedSpan outer(&reg, "outer");
    telemetry::ScopedSpan inner(&reg, "inner");
  }
  const std::vector<telemetry::SpanRecord> spans = reg.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first; both are on this thread's lane.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_GE(spans[1].dur_ns, spans[0].dur_ns);
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);

  // Null-registry spans are no-ops; merged spans keep distinct tid lanes.
  { telemetry::ScopedSpan noop(nullptr, "ignored"); }
  telemetry::Registry other;
  { telemetry::ScopedSpan s(&other, "other"); }
  reg.merge_spans(other.spans());
  const std::vector<telemetry::SpanRecord> merged = reg.spans();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_NE(merged[2].tid, merged[0].tid);
}

TEST(TelemetryRegistryTest, EnableSwitchGatesEffective) {
  telemetry::Registry reg;
  ASSERT_TRUE(telemetry::enabled()) << "tests assume DTR_TELEMETRY_OFF is unset";
  EXPECT_EQ(telemetry::effective(&reg), &reg);
  EXPECT_EQ(telemetry::effective(nullptr), nullptr);
  telemetry::set_enabled(false);
  EXPECT_EQ(telemetry::effective(&reg), nullptr);
  telemetry::set_enabled(true);
  EXPECT_EQ(telemetry::effective(&reg), &reg);
}

TEST(TelemetryRegistryTest, ConcurrentRegistrationIncrementAndSpans) {
  telemetry::Registry reg;
  const int kThreads = 8, kIters = 1000;
  const std::uint64_t bounds[] = {4, 16};
  const std::string names[] = {"c0", "c1", "c2", "c3"};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &bounds, &names, t] {
      telemetry::ScopedSpan span(&reg, "worker");
      for (int i = 0; i < kIters; ++i) {
        reg.counter(names[(t + i) % 4]).add(1);
        reg.histogram("h", bounds).observe(static_cast<std::uint64_t>(i % 20));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const telemetry::Snapshot snap = reg.snapshot(telemetry::Plane::kDeterministic);
  std::uint64_t total = 0;
  for (const telemetry::CounterValue& c : snap.counters) total += c.value;
  // 4 counter names + 1 histogram, no increments lost.
  ASSERT_EQ(snap.counters.size(), 4u);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads * kIters));
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(reg.spans().size(), static_cast<std::size_t>(kThreads));
}

TEST(TelemetryExportTest, JsonAndChromeTraceShapes) {
  telemetry::Registry reg;
  reg.counter("eval.scenarios").add(40);
  reg.counter("cache.hits", telemetry::Plane::kProcess).add(3);
  const std::uint64_t bounds[] = {1, 2};
  reg.histogram("region", bounds).observe(2);
  { telemetry::ScopedSpan span(&reg, "phase"); }

  telemetry::TelemetryJsonOptions options;
  options.include_spans = true;
  std::ostringstream full;
  write_telemetry_json(full, reg, "unit", options);
  const std::string text = full.str();
  EXPECT_NE(text.find("\"schema\": \"dtr.telemetry.v1\""), std::string::npos);
  EXPECT_NE(text.find("\"eval.scenarios\": 40"), std::string::npos);
  EXPECT_NE(text.find("\"process\""), std::string::npos);
  EXPECT_NE(text.find("\"spans\""), std::string::npos);
  // The deterministic export carries neither wall-time nor process data.
  const std::string det = det_json(reg, "unit");
  EXPECT_EQ(det.find("\"process\""), std::string::npos);
  EXPECT_EQ(det.find("\"spans\""), std::string::npos);
  EXPECT_NE(det.find("\"region\""), std::string::npos);

  std::ostringstream trace;
  write_chrome_trace(trace, reg);
  const std::string trace_text = trace.str();
  EXPECT_NE(trace_text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"name\": \"phase\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"ph\": \"X\""), std::string::npos);
}

TEST(TelemetryExportTest, ChromeTraceEventContentAndOrdering) {
  telemetry::Registry reg;
  {
    telemetry::ScopedSpan outer(&reg, "phase1a");
    telemetry::ScopedSpan inner(&reg, "spf");
  }
  { telemetry::ScopedSpan later(&reg, "phase2"); }

  std::ostringstream os;
  write_chrome_trace(os, reg);
  const std::string text = os.str();

  // Every span becomes one complete ("X") event with the full key set.
  std::size_t ph_count = 0;
  for (std::size_t at = text.find("\"ph\": \"X\""); at != std::string::npos;
       at = text.find("\"ph\": \"X\"", at + 1))
    ++ph_count;
  EXPECT_EQ(ph_count, 3u);
  for (const char* key : {"\"cat\": \"dtr\"", "\"ts\":", "\"dur\":", "\"pid\": 1",
                          "\"tid\":", "\"displayTimeUnit\": \"ms\""})
    EXPECT_NE(text.find(key), std::string::npos) << key;

  // Records appear in close order (inner before outer before phase2), and
  // timestamps are normalized so the earliest span starts at ts 0 — which is
  // the OUTER span, even though it closed second.
  const std::size_t at_inner = text.find("\"name\": \"spf\"");
  const std::size_t at_outer = text.find("\"name\": \"phase1a\"");
  const std::size_t at_later = text.find("\"name\": \"phase2\"");
  ASSERT_NE(at_inner, std::string::npos);
  ASSERT_NE(at_outer, std::string::npos);
  ASSERT_NE(at_later, std::string::npos);
  EXPECT_LT(at_inner, at_outer);
  EXPECT_LT(at_outer, at_later);
  const std::size_t outer_ts = text.find("\"ts\": 0,", at_outer);
  EXPECT_NE(outer_ts, std::string::npos);
  EXPECT_LT(outer_ts, at_later);
}

// ---------------------------------------------------------------------------
// Deterministic-plane contract across execution shapes.
// ---------------------------------------------------------------------------

TEST(TelemetryDeterminismTest, BatchEvaluationCountersShapeIdentical) {
  const TestInstance inst = make_test_instance(10, 4.0, 7);
  const WeightSetting w = random_weights(inst.graph, 30, 11);
  const std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);

  telemetry::Registry seq_reg, par_reg;
  EvaluatorConfig seq_config, par_config;
  seq_config.telemetry = &seq_reg;
  par_config.telemetry = &par_reg;
  const Evaluator seq(inst.graph, inst.traffic, inst.params, seq_config);
  const Evaluator par(inst.graph, inst.traffic, inst.params, par_config);

  ThreadPool eight(8);
  (void)seq.evaluate_failures(w, scenarios, nullptr);
  (void)par.evaluate_failures(w, scenarios, &eight);

  const std::string seq_bytes = det_json(seq_reg, "sweep");
  EXPECT_EQ(seq_bytes, det_json(par_reg, "sweep"));

  // The counters are real: every scenario was seen, and on this incremental
  // config the delta path fed the affected-region histogram.
  const telemetry::Snapshot snap = seq_reg.snapshot(telemetry::Plane::kDeterministic);
  EXPECT_EQ(snap.counter("eval.scenarios"), scenarios.size());
  EXPECT_EQ(snap.counter("eval.patched") + snap.counter("eval.full") +
                snap.counter("eval.served_none"),
            scenarios.size());
  EXPECT_GT(snap.counter("spf.dests_delta"), 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "spf.affected_region");
  EXPECT_EQ(snap.histograms[0].count, snap.counter("spf.dests_delta"));
  EXPECT_EQ(snap.histograms[0].sum, snap.counter("spf.affected_nodes"));
}

TEST(TelemetryDeterminismTest, AbortedSweepCountsConsumedTermsOnly) {
  const TestInstance inst = make_test_instance(10, 4.0, 13, 0.6);
  const WeightSetting w = random_weights(inst.graph, 30, 17);
  const std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);
  const CostPair tight{0.0, 0.0};

  telemetry::Registry seq_reg, par_reg;
  EvaluatorConfig seq_config, par_config;
  seq_config.telemetry = &seq_reg;
  par_config.telemetry = &par_reg;
  const Evaluator seq(inst.graph, inst.traffic, inst.params, seq_config);
  const Evaluator par(inst.graph, inst.traffic, inst.params, par_config);

  ThreadPool eight(8);
  const SweepResult a = seq.sweep(w, scenarios, {.abort_bound = &tight});
  const SweepResult b = par.sweep(
      w, scenarios, {.abort_bound = &tight, .pool = &eight, .chunk_size = 3});
  ASSERT_TRUE(a.aborted);
  ASSERT_EQ(a.scenarios_evaluated, b.scenarios_evaluated);
  // Parallel rounds overshoot the abort point, but only CONSUMED terms are
  // merged — the deterministic plane must not see the speculative extras.
  EXPECT_EQ(det_json(seq_reg, "abort"), det_json(par_reg, "abort"));
  const telemetry::Snapshot snap = seq_reg.snapshot(telemetry::Plane::kDeterministic);
  EXPECT_EQ(snap.counter("sweep.calls"), 1u);
  EXPECT_EQ(snap.counter("sweep.aborts"), 1u);
  EXPECT_EQ(snap.counter("eval.scenarios"), a.scenarios_evaluated);
}

TEST(TelemetryDeterminismTest, OptimizerCountersThreadShapeIdentical) {
  const TestInstance inst = make_test_instance(8, 4.0, 19);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);

  const auto run = [&](int num_threads, telemetry::Registry* sink) {
    OptimizerConfig config = default_optimizer_config(Effort::kSmoke, 3);
    config.num_threads = num_threads;
    config.telemetry = sink;
    return RobustOptimizer(ev, config).optimize();
  };
  telemetry::Registry one, eight;
  const OptimizeResult r1 = run(1, &one);
  const OptimizeResult r8 = run(8, &eight);

  EXPECT_EQ(det_json(one, "opt"), det_json(eight, "opt"));
  const telemetry::Snapshot snap = one.snapshot(telemetry::Plane::kDeterministic);
  EXPECT_EQ(snap.counter("optimizer.runs"), 1u);
  EXPECT_EQ(snap.counter("optimizer.phase1_evaluations"),
            static_cast<std::uint64_t>(r1.phase1_evaluations));
  EXPECT_EQ(snap.counter("optimizer.critical_links"), r1.critical.size());
  // Sink got the phase spans (1a/1b/1c/2) but NOT the base-cache diff.
  EXPECT_EQ(one.spans().size(), 4u);
  EXPECT_EQ(one.snapshot(telemetry::Plane::kProcess).counters.size(), 0u);

  // The result-embedded snapshots back the compat accessors; both runs used
  // the same (shared-evaluator) cache, so the totals are populated either
  // way, and the deterministic section matches the sink's.
  EXPECT_EQ(r1.counters.counter("optimizer.phase1_evaluations"),
            snap.counter("optimizer.phase1_evaluations"));
  EXPECT_GT(r1.base_cache_hits() + r1.base_cache_misses(), 0u);
  EXPECT_EQ(r8.counters.counter("optimizer.runs"), 1u);
}

TEST(TelemetryDeterminismTest, ResultSnapshotsPopulatedWhenDisabled) {
  const TestInstance inst = make_test_instance(8, 4.0, 23);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  telemetry::Registry sink;
  OptimizerConfig config = default_optimizer_config(Effort::kSmoke, 3);
  config.telemetry = &sink;
  telemetry::set_enabled(false);
  const OptimizeResult result = RobustOptimizer(ev, config).optimize();
  telemetry::set_enabled(true);
  // The kill switch silences the SINK, not the result's own accounting.
  EXPECT_EQ(sink.snapshot(telemetry::Plane::kDeterministic).counters.size(), 0u);
  EXPECT_EQ(sink.spans().size(), 0u);
  EXPECT_EQ(result.counters.counter("optimizer.runs"), 1u);
  EXPECT_GT(result.base_cache_misses(), 0u);
}

// ---------------------------------------------------------------------------
// Campaign integration: spec key, artifact block, shape identity.
// ---------------------------------------------------------------------------

constexpr const char* kTeleSpec = R"(name = tele
effort = smoke
seed = 5
[cell]
id = a
topology = rand
nodes = 8
degree = 4
repeats = 1
telemetry = 1
[cell]
id = b
topology = rand
nodes = 8
degree = 4
seed = 9
repeats = 2
telemetry = 1
)";

TEST(TelemetryCampaignTest, CellBlocksAndSinkShapeIdentical) {
  std::istringstream spec(kTeleSpec);
  const exp::Campaign campaign = exp::parse_campaign_spec(spec);
  ASSERT_EQ(campaign.cells.size(), 2u);
  ASSERT_TRUE(campaign.cells[0].telemetry);

  telemetry::Registry cells_par, inner_par;
  exp::CampaignOptions a{2, 1, {}, &cells_par};
  exp::CampaignOptions b{1, 2, {}, &inner_par};
  const exp::CampaignResult ra = exp::run_campaign(campaign, a);
  const exp::CampaignResult rb = exp::run_campaign(campaign, b);
  ASSERT_TRUE(ra.cells[0].error.empty()) << ra.cells[0].error;

  // The whole artifact — including the embedded per-cell telemetry blocks —
  // and the merged sink are byte-identical across execution shapes.
  EXPECT_EQ(exp::campaign_json(ra), exp::campaign_json(rb));
  EXPECT_EQ(det_json(cells_par, "tele"), det_json(inner_par, "tele"));

  ASSERT_FALSE(ra.cells[0].telemetry.empty());
  EXPECT_NE(exp::campaign_json(ra).find("\"telemetry\""), std::string::npos);
  const telemetry::Snapshot snap = cells_par.snapshot(telemetry::Plane::kDeterministic);
  EXPECT_EQ(snap.counter("campaign.cells"), 2u);
  EXPECT_EQ(snap.counter("campaign.reps"), 3u);
  EXPECT_GT(snap.counter("optimizer.runs"), 0u);
  EXPECT_GT(snap.counter("eval.scenarios"), 0u);
  // One "cell:<id>" span per cell plus the optimizer phase spans.
  EXPECT_GE(cells_par.spans().size(), 2u);
  // The evaluator owners (cell reps) flushed cache totals to the sink.
  EXPECT_GT(cells_par.snapshot(telemetry::Plane::kProcess).counter(
                "evaluator.base_cache.misses"),
            0u);
}

TEST(TelemetryCampaignTest, ArtifactUnchangedWithoutOptIn) {
  // Same spec minus the telemetry keys: attaching a sink must not change the
  // artifact's bytes (that is what lets CI export telemetry from the golden
  // smoke campaign without touching the goldens).
  std::istringstream all(kTeleSpec);
  std::string plain, line;
  while (std::getline(all, line))
    if (line.rfind("telemetry", 0) != 0) plain += line + "\n";
  std::istringstream spec(plain);
  const exp::Campaign campaign = exp::parse_campaign_spec(spec);

  telemetry::Registry sink;
  const exp::CampaignResult with = exp::run_campaign(campaign, {1, 1, {}, &sink});
  const exp::CampaignResult without = exp::run_campaign(campaign, {1, 1, {}});
  EXPECT_EQ(exp::campaign_json(with), exp::campaign_json(without));
  EXPECT_TRUE(with.cells[0].telemetry.empty());
  // The sink still collected the run.
  EXPECT_GT(sink.snapshot(telemetry::Plane::kDeterministic).counter("campaign.cells"),
            0u);
}

TEST(TelemetryCampaignTest, SpecRejectsBadTelemetryValue) {
  std::istringstream spec("[cell]\ntelemetry = maybe\n");
  EXPECT_THROW((void)exp::parse_campaign_spec(spec), std::runtime_error);
}

}  // namespace
