/// Incremental vs full failure evaluation: EvaluatorConfig::incremental is a
/// pure execution knob. These tests enforce the PR's acceptance contract —
/// bit-identical FailureProfile / EvalResult bytes between the delta-SPF
/// fast path and the full recompute, across randomized topologies, weight
/// settings, every single-link failure, and 1 vs 8 worker threads.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/metrics.h"
#include "routing/evaluator.h"
#include "routing/failures.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace dtr {
namespace {

using test::expect_results_identical;
using test::make_test_instance;
using test::random_weights;
using test::TestInstance;

/// Bitwise comparison: double == would accept -0.0 vs 0.0 and miss NaN, so
/// the profile vectors are compared as raw bytes.
void expect_profile_bytes_identical(const FailureProfile& a, const FailureProfile& b) {
  ASSERT_EQ(a.violations.size(), b.violations.size());
  ASSERT_EQ(a.lambda.size(), b.lambda.size());
  ASSERT_EQ(a.phi.size(), b.phi.size());
  const auto bytes_equal = [](const std::vector<double>& x, const std::vector<double>& y) {
    return x.empty() ||
           std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0;
  };
  EXPECT_TRUE(bytes_equal(a.violations, b.violations));
  EXPECT_TRUE(bytes_equal(a.lambda, b.lambda));
  EXPECT_TRUE(bytes_equal(a.phi, b.phi));
  EXPECT_EQ(a.phi_uncap, b.phi_uncap);
}

TEST(IncrementalTest, FailureProfileBytesMatchFullPathAcrossInstances) {
  // Randomized topologies x weight settings x all single-link failures.
  struct Case {
    int nodes;
    double degree;
    std::uint64_t seed;
  };
  for (const Case& c : {Case{10, 4.0, 7}, Case{14, 5.0, 19}, Case{18, 3.0, 31}}) {
    const TestInstance inst = make_test_instance(c.nodes, c.degree, c.seed);
    const Evaluator incremental(inst.graph, inst.traffic, inst.params,
                                {.incremental = true});
    const Evaluator full(inst.graph, inst.traffic, inst.params, {.incremental = false});
    const std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);

    ThreadPool one(1);
    ThreadPool eight(8);
    for (const std::uint64_t wseed : {c.seed + 1, c.seed + 2}) {
      const WeightSetting w = random_weights(inst.graph, 30, wseed);
      const FailureProfile reference = profile_failures(full, w, scenarios, &one);
      expect_profile_bytes_identical(reference,
                                     profile_failures(incremental, w, scenarios, &one));
      expect_profile_bytes_identical(reference,
                                     profile_failures(incremental, w, scenarios, &eight));
      expect_profile_bytes_identical(reference,
                                     profile_failures(full, w, scenarios, &eight));
    }
  }
}

TEST(IncrementalTest, FullDetailMatchesOnBridgeTopology) {
  // Path-like topology: failures disconnect demand, exercising the
  // disconnection replay subtotals at kFull detail.
  Graph g(6);
  for (NodeId u = 0; u + 1 < 6; ++u) g.add_link(u, u + 1, 200.0, 1.0);
  g.add_link(1, 3, 200.0, 1.0);  // one alternative, so not everything severs
  TrafficMatrix total = make_gravity_traffic(g, {1.0, 1.0, 11});
  const ClassedTraffic traffic = split_by_class(total, 0.30);

  const Evaluator incremental(g, traffic, {}, {.incremental = true});
  const Evaluator full(g, traffic, {}, {.incremental = false});
  const std::vector<FailureScenario> scenarios = all_link_failures(g);
  const WeightSetting w = random_weights(g, 20, 5);

  const auto inc = incremental.evaluate_failures(w, scenarios, nullptr, EvalDetail::kFull);
  const auto ref = full.evaluate_failures(w, scenarios, nullptr, EvalDetail::kFull);
  ASSERT_EQ(inc.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) expect_results_identical(inc[i], ref[i]);
}

TEST(IncrementalTest, MixedScenarioKindsMatchFullPath) {
  // Node failures must fall back to the full path inside an otherwise
  // incremental batch; link pairs ride the delta update with 4 dead arcs.
  const TestInstance inst = make_test_instance(12, 4.0, 13);
  const Evaluator incremental(inst.graph, inst.traffic, inst.params,
                              {.incremental = true});
  const Evaluator full(inst.graph, inst.traffic, inst.params, {.incremental = false});

  std::vector<FailureScenario> scenarios;
  scenarios.push_back(FailureScenario::none());
  for (LinkId l = 0; l < inst.graph.num_links(); l += 2)
    scenarios.push_back(FailureScenario::link(l));
  for (NodeId v = 0; v < inst.graph.num_nodes(); v += 3)
    scenarios.push_back(FailureScenario::node(v));
  for (LinkId l = 0; l + 4 < inst.graph.num_links(); l += 5)
    scenarios.push_back(FailureScenario::link_pair(l, l + 4));

  const WeightSetting w = random_weights(inst.graph, 25, 99);
  ThreadPool eight(8);
  const auto inc = incremental.evaluate_failures(w, scenarios, &eight, EvalDetail::kFull);
  const auto ref = full.evaluate_failures(w, scenarios, nullptr, EvalDetail::kFull);
  ASSERT_EQ(inc.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) expect_results_identical(inc[i], ref[i]);
}

TEST(IncrementalTest, SweepMatchesFullPathIncludingEarlyAbort) {
  const TestInstance inst = make_test_instance(12, 4.0, 17);
  const Evaluator incremental(inst.graph, inst.traffic, inst.params,
                              {.incremental = true});
  const Evaluator full(inst.graph, inst.traffic, inst.params, {.incremental = false});
  const std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);
  const WeightSetting w = random_weights(inst.graph, 30, 23);

  ThreadPool eight(8);
  const SweepResult ref = full.sweep(w, scenarios);
  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &eight}) {
    const SweepResult inc = incremental.sweep(w, scenarios, {.pool = pool});
    EXPECT_EQ(ref.lambda, inc.lambda);
    EXPECT_EQ(ref.phi, inc.phi);
    EXPECT_EQ(ref.scenarios_evaluated, inc.scenarios_evaluated);
  }

  const CostPair bound{ref.lambda / 2.0, ref.phi / 2.0};
  const SweepResult ref_aborted = full.sweep(w, scenarios, {.abort_bound = &bound});
  const SweepResult inc_aborted =
      incremental.sweep(w, scenarios, {.abort_bound = &bound, .pool = &eight});
  EXPECT_EQ(ref_aborted.aborted, inc_aborted.aborted);
  EXPECT_EQ(ref_aborted.lambda, inc_aborted.lambda);
  EXPECT_EQ(ref_aborted.phi, inc_aborted.phi);
  EXPECT_EQ(ref_aborted.scenarios_evaluated, inc_aborted.scenarios_evaluated);
}

TEST(IncrementalTest, FallbackFractionIsPureExecutionKnob) {
  // Any fallback threshold — always-delta (1.0), never-delta (0.0), or the
  // default — must yield the same bytes.
  const TestInstance inst = make_test_instance(12, 4.0, 29);
  const std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);
  const WeightSetting w = random_weights(inst.graph, 30, 41);

  const Evaluator full(inst.graph, inst.traffic, inst.params, {.incremental = false});
  const FailureProfile reference = profile_failures(full, w, scenarios);
  for (const double fraction : {0.0, 0.25, 1.0}) {
    const Evaluator ev(
        inst.graph, inst.traffic, inst.params,
        {.incremental = true, .incremental_max_affected_fraction = fraction});
    expect_profile_bytes_identical(reference, profile_failures(ev, w, scenarios));
  }
}

TEST(IncrementalTest, ConfigDefaultsToIncremental) {
  const TestInstance inst = make_test_instance(8, 3.0, 3);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  EXPECT_TRUE(ev.config().incremental);
  EXPECT_GT(ev.config().incremental_max_affected_fraction, 0.0);
  EXPECT_TRUE(ev.config().base_routing_cache);
  EXPECT_TRUE(ev.config().incremental_delay);
  EXPECT_GT(ev.config().base_cache_capacity, 0u);
  EXPECT_EQ(ev.config().weight_delta_max_links, 1u);
}

TEST(IncrementalTest, WeightDeltaDonorBaseMatchesScratchBuild) {
  // Phase-1 probe shape: an incumbent's base is cached, then neighbors
  // differing on one link are evaluated. The donor evaluator patches each
  // probe's base from the incumbent (delta-SPF over the weight change); the
  // reference evaluator builds every base from scratch. Every result —
  // no-failure, every single link, a compound scenario, kFull detail — must
  // be identical field for field.
  const TestInstance inst = make_test_instance(12, 4.0, 57);
  EvaluatorConfig donor_cfg;
  donor_cfg.base_cache_capacity = 64;  // keep the incumbent resident
  EvaluatorConfig scratch_cfg = donor_cfg;
  scratch_cfg.weight_delta_max_links = 0;

  const Evaluator with_donor(inst.graph, inst.traffic, inst.params, donor_cfg);
  const Evaluator reference(inst.graph, inst.traffic, inst.params, scratch_cfg);
  const WeightSetting incumbent = random_weights(inst.graph, 20, 91);
  (void)with_donor.evaluate(incumbent);
  (void)reference.evaluate(incumbent);

  std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);
  scenarios.insert(scenarios.begin(), FailureScenario::none());
  scenarios.push_back(FailureScenario::compound({0, 2, 3}));

  for (LinkId l = 0; l < inst.graph.num_links(); ++l) {
    WeightSetting probe = incumbent;
    // Increases and decreases both ride the donor patch; odd links change
    // both classes (still ONE differing link).
    const int wd = probe.get(TrafficClass::kDelay, l);
    probe.set(TrafficClass::kDelay, l, wd >= 16 ? 1 : wd + 5);
    if (l % 2 == 1) {
      const int wt = probe.get(TrafficClass::kThroughput, l);
      probe.set(TrafficClass::kThroughput, l, wt >= 18 ? 2 : wt + 3);
    }
    for (const FailureScenario& sc : scenarios) {
      expect_results_identical(with_donor.evaluate(probe, sc, EvalDetail::kFull),
                               reference.evaluate(probe, sc, EvalDetail::kFull));
    }
  }
  const EvaluatorCacheStats donor_stats = with_donor.base_cache_stats();
  EXPECT_GT(donor_stats.weight_patched, 0u);
  EXPECT_GT(donor_stats.arcs_updated, 0u);
  EXPECT_EQ(reference.base_cache_stats().weight_patched, 0u);
}

TEST(IncrementalTest, WeightDeltaDonorHandlesMultiLinkProbes) {
  const TestInstance inst = make_test_instance(12, 4.0, 23);
  EvaluatorConfig donor_cfg;
  donor_cfg.weight_delta_max_links = 3;
  EvaluatorConfig scratch_cfg;
  scratch_cfg.weight_delta_max_links = 0;

  const Evaluator with_donor(inst.graph, inst.traffic, inst.params, donor_cfg);
  const Evaluator reference(inst.graph, inst.traffic, inst.params, scratch_cfg);
  const WeightSetting incumbent = random_weights(inst.graph, 20, 5);
  (void)with_donor.evaluate(incumbent);
  (void)reference.evaluate(incumbent);

  const std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);
  WeightSetting probe = incumbent;
  for (const LinkId l : {LinkId{1}, LinkId{4}, LinkId{7}}) {
    probe.set(TrafficClass::kDelay, l, probe.get(TrafficClass::kDelay, l) >= 10 ? 3 : 19);
    probe.set(TrafficClass::kThroughput, l,
              probe.get(TrafficClass::kThroughput, l) >= 10 ? 4 : 17);
  }
  expect_results_identical(with_donor.evaluate(probe, FailureScenario::none(),
                                               EvalDetail::kFull),
                           reference.evaluate(probe, FailureScenario::none(),
                                              EvalDetail::kFull));
  for (const FailureScenario& sc : scenarios) {
    expect_results_identical(with_donor.evaluate(probe, sc, EvalDetail::kFull),
                             reference.evaluate(probe, sc, EvalDetail::kFull));
  }
  EXPECT_GT(with_donor.base_cache_stats().weight_patched, 0u);
}

TEST(IncrementalTest, DelayDpBytesMatchFullDpAcrossInstances) {
  // The incremental end-to-end delay DP sweeps randomized topologies x all
  // single-link failures and must reproduce every SLA term — lambda,
  // violation counts, AND the raw per-pair delay vector — byte for byte.
  struct Case {
    int nodes;
    double degree;
    std::uint64_t seed;
  };
  for (const Case& c : {Case{10, 4.0, 43}, Case{14, 5.0, 57}, Case{18, 3.0, 71}}) {
    const TestInstance inst = make_test_instance(c.nodes, c.degree, c.seed);
    const Evaluator with_dp(inst.graph, inst.traffic, inst.params,
                            {.incremental = true, .incremental_delay = true});
    const Evaluator without_dp(inst.graph, inst.traffic, inst.params,
                               {.incremental = true, .incremental_delay = false});
    const Evaluator full(inst.graph, inst.traffic, inst.params, {.incremental = false});
    const std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);

    const WeightSetting w = random_weights(inst.graph, 30, c.seed + 5);
    const auto ref = full.evaluate_failures(w, scenarios, nullptr, EvalDetail::kFull);
    ThreadPool eight(8);
    for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &eight}) {
      const auto dp = with_dp.evaluate_failures(w, scenarios, pool, EvalDetail::kFull);
      const auto no_dp =
          without_dp.evaluate_failures(w, scenarios, pool, EvalDetail::kFull);
      ASSERT_EQ(dp.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        expect_results_identical(dp[i], ref[i]);
        expect_results_identical(no_dp[i], ref[i]);
        // sd_delay (the DP output) compared as raw bytes: == would accept
        // -0.0 vs 0.0 and the infinities the cap replaces.
        ASSERT_EQ(dp[i].sd_delay_ms.size(), ref[i].sd_delay_ms.size());
        EXPECT_TRUE(dp[i].sd_delay_ms.empty() ||
                    std::memcmp(dp[i].sd_delay_ms.data(), ref[i].sd_delay_ms.data(),
                                ref[i].sd_delay_ms.size() * sizeof(double)) == 0);
      }
    }
  }
}

TEST(IncrementalTest, ConfigCornersProduceIdenticalProfiles) {
  // Every {incremental, base-cache, delay-DP} corner x {1, 8 threads} must
  // produce the same FailureProfile bytes — the campaign/golden contract.
  const TestInstance inst = make_test_instance(14, 4.0, 83);
  const std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);
  const WeightSetting w = random_weights(inst.graph, 30, 97);

  const Evaluator reference_ev(inst.graph, inst.traffic, inst.params,
                               {.incremental = false});
  ThreadPool one(1);
  ThreadPool eight(8);
  const FailureProfile reference = profile_failures(reference_ev, w, scenarios, &one);

  for (const bool incremental : {false, true}) {
    for (const bool base_cache : {false, true}) {
      for (const bool delay_dp : {false, true}) {
        const Evaluator ev(inst.graph, inst.traffic, inst.params,
                           {.incremental = incremental,
                            .base_routing_cache = base_cache,
                            .incremental_delay = delay_dp});
        expect_profile_bytes_identical(reference,
                                       profile_failures(ev, w, scenarios, &one));
        expect_profile_bytes_identical(reference,
                                       profile_failures(ev, w, scenarios, &eight));
        // Repeat through the now-warm cache: same bytes again.
        expect_profile_bytes_identical(reference,
                                       profile_failures(ev, w, scenarios, &eight));
      }
    }
  }
}

TEST(IncrementalTest, SingleEvaluationMatchesAcrossCacheStates) {
  // evaluate() consults the cache: a failure evaluation served via the
  // patched path (warm cache) must match the cold full path bit for bit,
  // including kFull detail.
  const TestInstance inst = make_test_instance(12, 4.0, 101);
  const Evaluator cached(inst.graph, inst.traffic, inst.params, {});
  const Evaluator plain(inst.graph, inst.traffic, inst.params,
                        {.incremental = false, .base_routing_cache = false});
  const WeightSetting w = random_weights(inst.graph, 30, 103);

  // Warm the cache with the no-failure evaluation, then compare every
  // single-link failure and the no-failure evaluation itself.
  expect_results_identical(cached.evaluate(w, FailureScenario::none(), EvalDetail::kFull),
                           plain.evaluate(w, FailureScenario::none(), EvalDetail::kFull));
  EXPECT_GE(cached.base_cache_size(), 1u);
  for (LinkId l = 0; l < inst.graph.num_links(); ++l) {
    const FailureScenario scenario = FailureScenario::link(l);
    expect_results_identical(cached.evaluate(w, scenario, EvalDetail::kFull),
                             plain.evaluate(w, scenario, EvalDetail::kFull));
  }
  EXPECT_GT(cached.base_cache_stats().hits, 0u);
}

}  // namespace
}  // namespace dtr
