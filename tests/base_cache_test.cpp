/// BaseRoutingCache behavior: the weights-keyed LRU cache on the Evaluator
/// is pure acceleration state — these tests pin down its invalidation
/// semantics (value-keyed lookup vs weight mutation, per-instance isolation
/// for topology/TM changes, the LRU eviction bound, explicit invalidation)
/// and that hits never change a single result byte.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "routing/evaluator.h"
#include "routing/failures.h"
#include "test_helpers.h"
#include "traffic/scaling.h"
#include "util/thread_pool.h"

namespace dtr {
namespace {

using test::expect_results_identical;
using test::make_test_instance;
using test::random_weights;
using test::TestInstance;

TEST(BaseCacheTest, RepeatedSweepsReuseOneBase) {
  const TestInstance inst = make_test_instance(12, 4.0, 7);
  const Evaluator ev(inst.graph, inst.traffic, inst.params, {});
  const Evaluator uncached(inst.graph, inst.traffic, inst.params,
                           {.base_routing_cache = false});
  const std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);
  const WeightSetting w = random_weights(inst.graph, 30, 11);

  const SweepResult reference = uncached.sweep(w, scenarios);
  const SweepResult first = ev.sweep(w, scenarios);
  const EvaluatorCacheStats after_first = ev.base_cache_stats();
  EXPECT_EQ(after_first.insertions, 1u);

  // The optimizer's inner-loop pattern: evaluate + repeated sweeps of the
  // same weights. Everything after the first sweep hits.
  const EvalResult normal = ev.evaluate(w);
  const SweepResult second = ev.sweep(w, scenarios);
  const EvaluatorCacheStats after = ev.base_cache_stats();
  EXPECT_GE(after.hits, 2u);
  EXPECT_EQ(after.insertions, 1u);

  EXPECT_EQ(reference.lambda, first.lambda);
  EXPECT_EQ(reference.phi, first.phi);
  EXPECT_EQ(first.lambda, second.lambda);
  EXPECT_EQ(first.phi, second.phi);
  EXPECT_EQ(normal.lambda, uncached.evaluate(w).lambda);
}

TEST(BaseCacheTest, WeightMutationNeverServesStale) {
  // The cache keys on the weight VECTOR, so mutating a caller's setting is
  // a different key — the mutated setting must evaluate fresh, and flipping
  // the weights back must hit the original entry with identical bytes.
  const TestInstance inst = make_test_instance(10, 4.0, 13);
  const Evaluator ev(inst.graph, inst.traffic, inst.params, {});
  const Evaluator plain(inst.graph, inst.traffic, inst.params,
                        {.incremental = false, .base_routing_cache = false});

  WeightSetting w = random_weights(inst.graph, 30, 17);
  const EvalResult before = ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  expect_results_identical(before,
                           plain.evaluate(w, FailureScenario::none(), EvalDetail::kFull));

  const int old_delay = w.get(TrafficClass::kDelay, 0);
  w.set(TrafficClass::kDelay, 0, old_delay == 30 ? 29 : old_delay + 1);
  const EvalResult mutated = ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  expect_results_identical(mutated,
                           plain.evaluate(w, FailureScenario::none(), EvalDetail::kFull));

  w.set(TrafficClass::kDelay, 0, old_delay);
  const EvalResult restored = ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  expect_results_identical(restored, before);
  EXPECT_GE(ev.base_cache_stats().hits, 1u);
  EXPECT_GE(ev.base_cache_stats().insertions, 2u);
}

TEST(BaseCacheTest, TrafficChangeUsesSeparateCache) {
  // The cache lives on the Evaluator, whose graph/traffic are immutable: a
  // topology or TM change means a new Evaluator and therefore a new cache.
  // Same weights on different traffic must produce their own (different)
  // results with independent counters.
  const TestInstance inst = make_test_instance(10, 4.0, 19);
  TestInstance heavier = inst;
  scale_to_utilization(heavier.graph, heavier.traffic,
                       {UtilizationTarget::Kind::kAverage, 0.8});

  const Evaluator light_ev(inst.graph, inst.traffic, inst.params, {});
  const Evaluator heavy_ev(heavier.graph, heavier.traffic, heavier.params, {});
  const WeightSetting w = random_weights(inst.graph, 30, 23);

  const EvalResult light = light_ev.evaluate(w);
  const EvalResult heavy = heavy_ev.evaluate(w);
  EXPECT_NE(light.phi, heavy.phi);  // scaled traffic must change congestion
  EXPECT_EQ(light_ev.base_cache_stats().insertions, 1u);
  EXPECT_EQ(heavy_ev.base_cache_stats().insertions, 1u);
  EXPECT_EQ(light_ev.base_cache_size(), 1u);
  EXPECT_EQ(heavy_ev.base_cache_size(), 1u);
}

TEST(BaseCacheTest, LruEvictionRespectsCapacityBound) {
  const TestInstance inst = make_test_instance(10, 4.0, 29);
  const Evaluator ev(inst.graph, inst.traffic, inst.params,
                     {.base_cache_capacity = 2});

  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    ev.evaluate(random_weights(inst.graph, 30, seed));
  EXPECT_LE(ev.base_cache_size(), 2u);
  const EvaluatorCacheStats stats = ev.base_cache_stats();
  EXPECT_EQ(stats.insertions, 5u);
  EXPECT_EQ(stats.evictions, 3u);

  // LRU: the most recent key must still be resident (a hit, no insertion).
  ev.evaluate(random_weights(inst.graph, 30, 5));
  EXPECT_EQ(ev.base_cache_stats().insertions, 5u);
  EXPECT_GE(ev.base_cache_stats().hits, 1u);

  // The evicted oldest key re-inserts (and evicts again).
  ev.evaluate(random_weights(inst.graph, 30, 1));
  EXPECT_EQ(ev.base_cache_stats().insertions, 6u);
  EXPECT_LE(ev.base_cache_size(), 2u);
}

TEST(BaseCacheTest, ExplicitInvalidationDropsEntries) {
  const TestInstance inst = make_test_instance(10, 4.0, 31);
  const Evaluator ev(inst.graph, inst.traffic, inst.params, {});
  const WeightSetting w = random_weights(inst.graph, 30, 37);

  const EvalResult before = ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  EXPECT_EQ(ev.base_cache_size(), 1u);
  ev.invalidate_base_cache();
  EXPECT_EQ(ev.base_cache_size(), 0u);

  // Fresh rebuild, identical bytes.
  const EvalResult after = ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  expect_results_identical(before, after);
  EXPECT_EQ(ev.base_cache_stats().insertions, 2u);
}

TEST(BaseCacheTest, DisabledCacheKeepsCountersAtZero) {
  const TestInstance inst = make_test_instance(10, 4.0, 41);
  const Evaluator ev(inst.graph, inst.traffic, inst.params,
                     {.base_routing_cache = false});
  const std::vector<FailureScenario> scenarios = all_link_failures(inst.graph);
  const WeightSetting w = random_weights(inst.graph, 30, 43);
  ev.evaluate(w);
  ev.sweep(w, scenarios);
  const EvaluatorCacheStats stats = ev.base_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(ev.base_cache_size(), 0u);
}

TEST(BaseCacheTest, ConcurrentSpeculativeEvaluationsStayConsistent) {
  // The LocalSearch speculative-scoring pattern: many threads evaluate
  // distinct candidates against one shared evaluator, racing on the cache.
  // Every result must match the uncached evaluator bit for bit.
  const TestInstance inst = make_test_instance(12, 4.0, 47);
  const Evaluator ev(inst.graph, inst.traffic, inst.params,
                     {.base_cache_capacity = 4});
  const Evaluator plain(inst.graph, inst.traffic, inst.params,
                        {.incremental = false, .base_routing_cache = false});

  std::vector<WeightSetting> candidates;
  for (std::uint64_t seed = 100; seed < 124; ++seed)
    candidates.push_back(random_weights(inst.graph, 30, seed));

  ThreadPool pool(8);
  std::vector<CostPair> got(candidates.size());
  parallel_for(&pool, candidates.size(), [&](std::size_t, std::size_t i) {
    const FailureScenario scenario =
        i % 3 == 0 ? FailureScenario::link(static_cast<LinkId>(i) %
                                           inst.graph.num_links())
                   : FailureScenario::none();
    got[i] = ev.evaluate(candidates[i], scenario).cost();
  });
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const FailureScenario scenario =
        i % 3 == 0 ? FailureScenario::link(static_cast<LinkId>(i) %
                                           inst.graph.num_links())
                   : FailureScenario::none();
    const CostPair want = plain.evaluate(candidates[i], scenario).cost();
    EXPECT_EQ(want.lambda, got[i].lambda);
    EXPECT_EQ(want.phi, got[i].phi);
  }
  EXPECT_LE(ev.base_cache_size(), 4u);
}

}  // namespace
}  // namespace dtr
