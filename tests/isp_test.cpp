#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/connectivity.h"
#include "graph/graph_io.h"
#include "graph/isp.h"
#include "scenarios/srlg.h"

namespace dtr {
namespace {

IspGenParams smoke_params() {
  IspGenParams p;
  p.num_nodes = 120;
  p.num_pops = 8;
  p.cores_per_pop = 2;
  p.backbone_degree = 3.0;
  p.seed = 7;
  return p;
}

std::string serialize(const Graph& g) {
  std::ostringstream ss;
  write_graph(ss, g);
  return ss.str();
}

TEST(IspGenTest, SeededDeterminismIsByteIdentical) {
  const std::string a = serialize(make_isp_topo(smoke_params()));
  const std::string b = serialize(make_isp_topo(smoke_params()));
  EXPECT_EQ(a, b);

  IspGenParams other = smoke_params();
  other.seed = 8;
  EXPECT_NE(a, serialize(make_isp_topo(other)));
}

TEST(IspGenTest, HasRequestedShape) {
  const IspGenParams p = smoke_params();
  const Graph g = make_isp_topo(p);
  EXPECT_EQ(g.num_nodes(), static_cast<std::size_t>(p.num_nodes));
  // Hierarchy floor: per-PoP core mesh + PoP ring + dual-homed access tier.
  const std::size_t cores =
      static_cast<std::size_t>(p.num_pops) * static_cast<std::size_t>(p.cores_per_pop);
  EXPECT_GE(g.num_links(), static_cast<std::size_t>(p.num_pops) +
                               2 * (static_cast<std::size_t>(p.num_nodes) - cores));
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_two_edge_connected(g));
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Arc& a = g.arc(g.link_arcs(l)[0]);
    EXPECT_GT(a.capacity, 0.0);
    EXPECT_GT(a.prop_delay_ms, 0.0);
  }
}

TEST(IspGenTest, DegreeDistributionIsSkewed) {
  IspGenParams p = smoke_params();
  p.num_nodes = 300;
  p.num_pops = 12;
  const Graph g = make_isp_topo(p);
  // Access routers are dual-homed (degree 2); hub cores aggregate them, so
  // the max degree should tower over the median — the Rocketfuel skew.
  std::vector<std::size_t> degree;
  for (NodeId u = 0; u < g.num_nodes(); ++u) degree.push_back(g.link_degree(u));
  std::sort(degree.begin(), degree.end());
  const std::size_t median = degree[degree.size() / 2];
  const std::size_t max = degree.back();
  EXPECT_EQ(median, 2u);
  EXPECT_GE(max, 4 * median);
}

TEST(IspGenTest, AvgDegreeKnobAddsPeeringChords) {
  IspGenParams p = smoke_params();
  p.avg_degree = 8.0;
  const Graph g = make_isp_topo(p);
  EXPECT_GE(g.average_link_degree(), 7.9);
  EXPECT_TRUE(is_two_edge_connected(g));
}

TEST(IspGenTest, GeoPositionsFeedSrlgSynthesis) {
  const Graph g = make_isp_topo(smoke_params());
  GeoSrlgParams geo;
  geo.grid = 6;
  const auto groups = synthesize_geo_srlgs(g, geo);
  EXPECT_FALSE(groups.empty());
}

TEST(IspGenTest, RejectsInvalidParams) {
  IspGenParams p = smoke_params();
  p.num_pops = 2;
  EXPECT_THROW(make_isp_topo(p), std::invalid_argument);
  p = smoke_params();
  p.cores_per_pop = 1;
  EXPECT_THROW(make_isp_topo(p), std::invalid_argument);
  p = smoke_params();
  p.num_nodes = 5;
  EXPECT_THROW(make_isp_topo(p), std::invalid_argument);
  p = smoke_params();
  p.backbone_degree = 1.0;
  EXPECT_THROW(make_isp_topo(p), std::invalid_argument);
}

TEST(IspLoaderTest, RoundTripsThroughGraphIo) {
  const Graph g = make_isp_topo(smoke_params());
  const std::string path = ::testing::TempDir() + "/isp_roundtrip.graph";
  {
    std::ofstream out(path);
    write_graph(out, g);
  }
  const Graph loaded = load_isp_topo(path);
  EXPECT_EQ(serialize(loaded), serialize(g));
  std::remove(path.c_str());
}

TEST(IspLoaderTest, MissingFileThrows) {
  EXPECT_THROW(load_isp_topo("/nonexistent/isp.graph"), std::runtime_error);
}

}  // namespace
}  // namespace dtr
