/// Parameterized property tests (TEST_P sweeps) over topology families,
/// seeds and load levels: invariants of the routing/cost pipeline that must
/// hold for ANY instance, not just hand-built ones.

#include <gtest/gtest.h>

#include <tuple>

#include "graph/connectivity.h"
#include "graph/isp.h"
#include "graph/topology.h"
#include "routing/evaluator.h"
#include "test_helpers.h"
#include "traffic/gravity.h"
#include "traffic/scaling.h"
#include "util/rng.h"

namespace dtr {
namespace {

enum class Family { kRand, kNear, kPl, kIsp };

std::string family_name(Family f) {
  switch (f) {
    case Family::kRand: return "Rand";
    case Family::kNear: return "Near";
    case Family::kPl: return "Pl";
    case Family::kIsp: return "Isp";
  }
  return "?";
}

Graph build_graph(Family f, std::uint64_t seed) {
  switch (f) {
    case Family::kRand: return make_rand_topo({12, 5.0, 500.0, seed});
    case Family::kNear: return make_near_topo({12, 5.0, 500.0, seed});
    case Family::kPl: return make_pl_topo({12, 3, 500.0, seed});
    case Family::kIsp: return make_isp_backbone().graph;
  }
  throw std::logic_error("unreachable");
}

class PipelineProperty
    : public ::testing::TestWithParam<std::tuple<Family, int, double>> {
 protected:
  void SetUp() override {
    const auto& [family, seed, util] = GetParam();
    graph_ = build_graph(family, static_cast<std::uint64_t>(seed));
    calibrate_delays_to_sla(graph_, params_.sla.theta_ms);
    traffic_ = split_by_class(
        make_gravity_traffic(graph_, {1.0, 1.0, static_cast<std::uint64_t>(seed) + 7}),
        0.30);
    scale_to_utilization(graph_, traffic_,
                         {UtilizationTarget::Kind::kAverage, util});
    evaluator_ = std::make_unique<Evaluator>(graph_, traffic_, params_);
    weights_ = WeightSetting(graph_.num_links());
    Rng rng(static_cast<std::uint64_t>(seed) * 13 + 1);
    randomize_weights(weights_, 60, rng);
  }

  Graph graph_;
  ClassedTraffic traffic_;
  EvalParams params_;
  std::unique_ptr<Evaluator> evaluator_;
  WeightSetting weights_;
};

TEST_P(PipelineProperty, GeneratedTopologySurvivesAnySingleLinkFailure) {
  for (LinkId l = 0; l < graph_.num_links(); ++l)
    EXPECT_TRUE(connected_without_link(graph_, l)) << "link " << l;
}

TEST_P(PipelineProperty, CostsAreNonNegativeAndFinite) {
  const EvalResult normal = evaluator_->evaluate(weights_);
  EXPECT_GE(normal.lambda, 0.0);
  EXPECT_GE(normal.phi, 0.0);
  EXPECT_TRUE(std::isfinite(normal.lambda));
  EXPECT_TRUE(std::isfinite(normal.phi));
}

TEST_P(PipelineProperty, ViolationsBoundedByDemandPairs) {
  const std::size_t pairs = traffic_.delay.num_positive_demands();
  for (LinkId l = 0; l < graph_.num_links(); ++l) {
    const EvalResult r = evaluator_->evaluate(weights_, FailureScenario::link(l));
    EXPECT_LE(static_cast<std::size_t>(r.sla_violations), pairs);
    EXPECT_GE(r.sla_violations, 0);
  }
}

TEST_P(PipelineProperty, LambdaZeroImpliesNoViolations) {
  for (LinkId l = 0; l < graph_.num_links(); ++l) {
    const EvalResult r = evaluator_->evaluate(weights_, FailureScenario::link(l));
    if (r.lambda == 0.0) {
      EXPECT_EQ(r.sla_violations, 0);
    }
    if (r.sla_violations > 0) {
      EXPECT_GE(r.lambda, params_.sla.b1);
    }
  }
}

TEST_P(PipelineProperty, NoFailureScenarioEqualsNormal) {
  const EvalResult a = evaluator_->evaluate(weights_);
  const EvalResult b = evaluator_->evaluate(weights_, FailureScenario::none());
  EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
  EXPECT_DOUBLE_EQ(a.phi, b.phi);
}

TEST_P(PipelineProperty, UniformWeightScalingPreservesRouting) {
  // Shortest paths are invariant under scaling all weights by a constant;
  // ECMP ties are preserved exactly for integer weights.
  WeightSetting scaled = weights_;
  for (TrafficClass c : kBothClasses)
    for (LinkId l = 0; l < scaled.num_links(); ++l)
      scaled.set(c, l, weights_.get(c, l) * 3);
  const EvalResult a = evaluator_->evaluate(weights_, FailureScenario::none());
  const EvalResult b = evaluator_->evaluate(scaled, FailureScenario::none());
  EXPECT_NEAR(a.lambda, b.lambda, 1e-9);
  EXPECT_NEAR(a.phi, b.phi, 1e-9);
  EXPECT_EQ(a.sla_violations, b.sla_violations);
}

TEST_P(PipelineProperty, DelayClassWeightsDoNotMoveThroughputLoad) {
  // Throughput-class routing depends only on W^T: changing W^D must leave
  // the throughput-class arc loads untouched (loads are per class; total
  // delay changes, Phi's load argument for throughput-carrying links can
  // change only via the DELAY class's contribution to total load).
  std::vector<double> costs_t;
  weights_.arc_costs(graph_, TrafficClass::kThroughput, costs_t);
  const ClassRouting before(graph_, costs_t, traffic_.throughput, {});
  WeightSetting perturbed = weights_;
  Rng rng(123);
  for (LinkId l = 0; l < perturbed.num_links(); ++l)
    perturbed.set(TrafficClass::kDelay, l, rng.uniform_int(1, 60));
  perturbed.arc_costs(graph_, TrafficClass::kThroughput, costs_t);
  const ClassRouting after(graph_, costs_t, traffic_.throughput, {});
  for (ArcId a = 0; a < graph_.num_arcs(); ++a)
    EXPECT_DOUBLE_EQ(before.arc_load(a), after.arc_load(a));
}

TEST_P(PipelineProperty, SweepNeverExceedsScenarioCount) {
  const auto scenarios = all_link_failures(graph_);
  const SweepResult sum = evaluator_->sweep(weights_, scenarios);
  EXPECT_EQ(sum.scenarios_evaluated, scenarios.size());
  const CostPair zero{0.0, 0.0};
  const SweepResult bounded =
      evaluator_->sweep(weights_, scenarios, {.abort_bound = &zero});
  EXPECT_LE(bounded.scenarios_evaluated, scenarios.size());
}

INSTANTIATE_TEST_SUITE_P(
    Families, PipelineProperty,
    ::testing::Combine(::testing::Values(Family::kRand, Family::kNear, Family::kPl,
                                         Family::kIsp),
                       ::testing::Values(1, 2),
                       ::testing::Values(0.3, 0.6)),
    [](const auto& info) {
      return family_name(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param)) + "_util" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
    });

}  // namespace
}  // namespace dtr
