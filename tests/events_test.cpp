/// Streaming-events tests: EventBus ring semantics (FIFO, overflow drop
/// accounting, concurrent publishers losing nothing), the dtr.events.v1 line
/// format, the deterministic-plane contract — optimizer event streams and
/// campaign event sinks byte-identical across thread shapes — plus the
/// convergence trace recorded into OptimizeResult and the Prometheus
/// exposer (rendering and a live HTTP scrape). Runs under TSan in CI via the
/// smoke label (concurrent publish against drain).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/optimizer.h"
#include "experiments/campaign.h"
#include "telemetry/events.h"
#include "telemetry/exposer.h"
#include "telemetry/telemetry.h"
#include "test_helpers.h"

namespace {

using namespace dtr;
using namespace dtr::test;
namespace exp = dtr::experiments;
namespace tel = dtr::telemetry;

tel::Event iteration_event(std::uint64_t iter, std::int64_t link) {
  tel::Event e;
  e.kind = tel::EventKind::kIteration;
  e.label = "phase2";
  e.iteration = iter;
  e.evaluations = iter * 10;
  e.link = link;
  e.cost_lambda = 1.5;
  e.cost_phi = 2.5;
  return e;
}

/// Concatenated JSONL of the deterministic-plane events only — the bytes the
/// CI golden gate diffs across shapes.
std::string det_plane_jsonl(const std::vector<tel::Event>& events) {
  std::string out;
  for (const tel::Event& e : events)
    if (e.plane == tel::Plane::kDeterministic) out += tel::event_json_line(e) + "\n";
  return out;
}

TEST(EventBusTest, FifoDrainAndCounts) {
  tel::EventBus bus(8);
  EXPECT_EQ(bus.capacity(), 8u);
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_TRUE(bus.publish(iteration_event(i, static_cast<std::int64_t>(i))));
  EXPECT_EQ(bus.published(), 5u);
  EXPECT_EQ(bus.dropped(), 0u);

  const std::vector<tel::Event> events = bus.drain();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].iteration, i);
    EXPECT_EQ(events[i].link, static_cast<std::int64_t>(i));
    EXPECT_EQ(events[i].label, "phase2");
  }
  EXPECT_TRUE(bus.drain().empty());
}

TEST(EventBusTest, OverflowDropsAreCountedNotSilent) {
  tel::EventBus bus(4);  // capacity rounds to a power of two
  for (std::uint64_t i = 0; i < 10; ++i) (void)bus.publish(iteration_event(i, 0));
  EXPECT_EQ(bus.published(), 4u);
  EXPECT_EQ(bus.dropped(), 6u);
  // The ring kept the OLDEST events (drop-new policy: the publisher backs
  // off, the stream stays contiguous from the front).
  const std::vector<tel::Event> events = bus.drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].iteration, 0u);
  EXPECT_EQ(events[3].iteration, 3u);
  // Slots recycle after a drain; drop counting resumes where it left off.
  ASSERT_TRUE(bus.publish(iteration_event(99, 0)));
  EXPECT_EQ(bus.drain().size(), 1u);
  EXPECT_EQ(bus.dropped(), 6u);
}

TEST(EventBusTest, CapacityRoundsUpToPowerOfTwo) {
  tel::EventBus bus(5);
  EXPECT_EQ(bus.capacity(), 8u);
  tel::EventBus one(1);  // floor of 2: a 1-slot ring cannot distinguish states
  EXPECT_EQ(one.capacity(), 2u);
}

TEST(EventBusTest, ConcurrentPublishersLoseNothingBelowCapacity) {
  const int kThreads = 8, kPerThread = 500;
  tel::EventBus bus(1 << 13);  // 8192 > 4000
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus, t] {
      for (int i = 0; i < kPerThread; ++i)
        (void)bus.publish(iteration_event(static_cast<std::uint64_t>(i),
                                          static_cast<std::int64_t>(t)));
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bus.dropped(), 0u);
  const std::vector<tel::Event> events = bus.drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Per-publisher subsequences stay in order even though the interleaving is
  // arbitrary, and no publisher's events were lost or duplicated.
  std::vector<std::uint64_t> next(kThreads, 0);
  for (const tel::Event& e : events) {
    const auto t = static_cast<std::size_t>(e.link);
    ASSERT_LT(t, next.size());
    EXPECT_EQ(e.iteration, next[t]);
    ++next[t];
  }
}

TEST(EventJsonTest, LineShapesAndPlaneTagging) {
  tel::Event it = iteration_event(3, 7);
  EXPECT_EQ(tel::event_json_line(it),
            "{\"event\":\"iter\",\"plane\":\"det\",\"label\":\"phase2\",\"iter\":3,"
            "\"evals\":30,\"link\":7,\"lambda\":1.5,\"phi\":2.5,\"restart\":false}");

  tel::Event progress;
  progress.kind = tel::EventKind::kProgress;
  progress.plane = tel::Plane::kProcess;
  progress.label = "cell-a";
  progress.done = 1;
  progress.total = 2;
  progress.wall_ms = 42;
  EXPECT_EQ(tel::event_json_line(progress),
            "{\"event\":\"progress\",\"plane\":\"process\",\"label\":\"cell-a\","
            "\"done\":1,\"total\":2,\"wall_ms\":42}");

  std::ostringstream header;
  tel::write_events_header(header);
  EXPECT_EQ(header.str(), "{\"event\":\"schema\",\"plane\":\"det\",\"schema\":\"dtr.events.v1\"}\n");
}

TEST(EventJsonTest, ProducerHelpersStampPlanesAndTolerateNull) {
  tel::publish_process(nullptr, tel::Event{});        // no-op, no crash
  tel::publish_deterministic(nullptr, tel::Event{});  // no-op, no crash

  tel::EventBus bus(8);
  tel::Event hb;
  hb.kind = tel::EventKind::kCellStart;
  hb.label = "cell";
  tel::publish_process(&bus, std::move(hb));
  tel::Event det;
  det.kind = tel::EventKind::kPhaseStart;
  det.label = "phase1a";
  tel::publish_deterministic(&bus, std::move(det));

  const std::vector<tel::Event> events = bus.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].plane, tel::Plane::kProcess);
  const std::string process_line = tel::event_json_line(events[0]);
  EXPECT_NE(process_line.find("\"wall_ms\":"), std::string::npos);
  EXPECT_EQ(events[1].plane, tel::Plane::kDeterministic);
  EXPECT_EQ(events[1].wall_ms, 0u);
}

TEST(EventJsonTest, SnapshotDeltaEmitsOnlyIncreasedCounters) {
  telemetry::Registry reg;
  reg.counter("a").add(2);
  reg.counter("flat").add(1);
  const tel::Snapshot before = reg.snapshot(tel::Plane::kDeterministic);
  reg.counter("a").add(3);
  reg.counter("fresh").add(7);
  const tel::Snapshot now = reg.snapshot(tel::Plane::kDeterministic);

  tel::EventBus bus(8);
  tel::publish_snapshot_delta(&bus, before, now);
  const std::vector<tel::Event> events = bus.drain();
  ASSERT_EQ(events.size(), 2u);  // "a" +3 and "fresh" +7; "flat" unchanged
  EXPECT_EQ(events[0].kind, tel::EventKind::kCounterDelta);
  EXPECT_EQ(events[0].label, "a");
  EXPECT_EQ(events[0].value, 3u);
  EXPECT_EQ(events[1].label, "fresh");
  EXPECT_EQ(events[1].value, 7u);
}

// ---------------------------------------------------------------------------
// Optimizer integration: deterministic stream, convergence trace.
// ---------------------------------------------------------------------------

TEST(OptimizerEventsTest, DetPlaneByteIdenticalAcrossThreadShapes) {
  const TestInstance inst = make_test_instance(8, 4.0, 19);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);

  const auto run = [&](int num_threads, tel::EventBus* bus) {
    OptimizerConfig config = default_optimizer_config(Effort::kSmoke, 3);
    config.num_threads = num_threads;
    config.events = bus;
    return RobustOptimizer(ev, config).optimize();
  };
  tel::EventBus one_bus, eight_bus;
  const OptimizeResult r1 = run(1, &one_bus);
  const OptimizeResult r8 = run(8, &eight_bus);
  ASSERT_EQ(one_bus.dropped(), 0u);
  ASSERT_EQ(eight_bus.dropped(), 0u);

  const std::vector<tel::Event> e1 = one_bus.drain();
  const std::vector<tel::Event> e8 = eight_bus.drain();
  const std::string det1 = det_plane_jsonl(e1);
  EXPECT_EQ(det1, det_plane_jsonl(e8));
  EXPECT_FALSE(det1.empty());

  // One iteration record per accepted move / restart adoption, matching the
  // embedded convergence trace one for one.
  std::size_t iteration_events = 0;
  for (const tel::Event& e : e1)
    if (e.kind == tel::EventKind::kIteration) ++iteration_events;
  EXPECT_EQ(iteration_events, r1.trace.size());
  EXPECT_EQ(r1.trace.size(), r8.trace.size());

  // Phase markers frame the stream: every phase start has a matching end.
  std::size_t starts = 0, ends = 0;
  for (const tel::Event& e : e1) {
    if (e.kind == tel::EventKind::kPhaseStart) ++starts;
    if (e.kind == tel::EventKind::kPhaseEnd) ++ends;
  }
  EXPECT_EQ(starts, 4u);  // phase1a, phase1b, phase1c, phase2
  EXPECT_EQ(ends, 4u);    // phase1a and phase2 additionally carry search totals
}

TEST(OptimizerEventsTest, TraceCostsImproveBetweenRestarts) {
  const TestInstance inst = make_test_instance(8, 4.0, 29);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  OptimizerConfig config = default_optimizer_config(Effort::kSmoke, 7);
  const OptimizeResult result = RobustOptimizer(ev, config).optimize();

  ASSERT_FALSE(result.trace.empty());
  std::size_t phase2_accepts = 0;
  bool have_incumbent = false;
  CostPair incumbent{};
  for (const TraceMove& tm : result.trace) {
    if (tm.phase != 2) continue;
    if (tm.move.restart) {
      // Diversification adopts a perturbed (usually worse) incumbent; the
      // monotonicity clock restarts here.
      incumbent = tm.move.cost;
      have_incumbent = true;
      continue;
    }
    ++phase2_accepts;
    if (have_incumbent) {
      EXPECT_LE(std::tie(tm.move.cost.lambda, tm.move.cost.phi),
                std::tie(incumbent.lambda, incumbent.phi))
          << "accepted move did not improve the incumbent";
    }
    incumbent = tm.move.cost;
    have_incumbent = true;
  }
  EXPECT_GT(phase2_accepts, 0u);
}

TEST(OptimizerEventsTest, LinkChangeAttributionMatchesTrace) {
  const TestInstance inst = make_test_instance(8, 4.0, 31);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  OptimizerConfig config = default_optimizer_config(Effort::kSmoke, 5);
  const OptimizeResult result = RobustOptimizer(ev, config).optimize();

  std::vector<std::uint64_t> tally(inst.graph.num_links(), 0);
  for (const TraceMove& tm : result.trace)
    if (!tm.move.restart && tm.move.link != kInvalidLink) ++tally[tm.move.link];

  ASSERT_FALSE(result.link_changes.empty());
  LinkId prev = 0;
  bool first = true;
  std::uint64_t total = 0;
  for (const auto& [link, count] : result.link_changes) {
    if (!first) {
      EXPECT_GT(link, prev);  // ascending, no duplicates
    }
    first = false;
    prev = link;
    EXPECT_GT(count, 0u);  // zero-change links are omitted
    ASSERT_LT(static_cast<std::size_t>(link), tally.size());
    EXPECT_EQ(count, tally[link]);
    total += count;
  }
  std::uint64_t tally_total = 0;
  for (std::uint64_t c : tally) tally_total += c;
  EXPECT_EQ(total, tally_total);
}

// ---------------------------------------------------------------------------
// Campaign integration: events= spec key, sink shape identity.
// ---------------------------------------------------------------------------

constexpr const char* kEventsSpec = R"(name = ev
effort = smoke
seed = 5
[cell]
id = a
topology = rand
nodes = 8
degree = 4
repeats = 2
events = 1
[cell]
id = b
topology = rand
nodes = 8
degree = 4
seed = 9
repeats = 1
events = 1
)";

TEST(CampaignEventsTest, SinkDetPlaneShapeIdenticalAndArtifactUntouched) {
  std::istringstream spec_a(kEventsSpec), spec_b(kEventsSpec);
  const exp::Campaign campaign = exp::parse_campaign_spec(spec_a);
  ASSERT_EQ(campaign.cells.size(), 2u);
  ASSERT_TRUE(campaign.cells[0].events);

  tel::EventBus cells_par(1 << 15), inner_par(1 << 15);
  exp::CampaignOptions a{2, 1, {}, nullptr, &cells_par};
  exp::CampaignOptions b{1, 2, {}, nullptr, &inner_par};
  const exp::CampaignResult ra = exp::run_campaign(campaign, a);
  const exp::CampaignResult rb = exp::run_campaign(campaign, b);
  ASSERT_TRUE(ra.cells[0].error.empty()) << ra.cells[0].error;
  ASSERT_EQ(cells_par.dropped(), 0u);

  const std::vector<tel::Event> ea = cells_par.drain();
  const std::vector<tel::Event> eb = inner_par.drain();
  const std::string det_a = det_plane_jsonl(ea);
  EXPECT_FALSE(det_a.empty());
  EXPECT_EQ(det_a, det_plane_jsonl(eb));

  // Process-plane heartbeats bracket each cell in campaign (drain) order.
  std::vector<std::string> starts;
  for (const tel::Event& e : ea)
    if (e.kind == tel::EventKind::kCellStart) starts.push_back(e.label);
  EXPECT_EQ(starts, (std::vector<std::string>{"a", "b"}));

  // Attaching the event sink must not change the campaign artifact bytes.
  const exp::CampaignResult plain =
      exp::run_campaign(exp::parse_campaign_spec(spec_b), {2, 1, {}});
  EXPECT_EQ(exp::campaign_json(ra), exp::campaign_json(plain));
}

TEST(CampaignEventsTest, CellsWithoutOptInStaySilent) {
  std::istringstream all(kEventsSpec);
  std::string plain, line;
  while (std::getline(all, line))
    if (line.rfind("events", 0) != 0) plain += line + "\n";
  std::istringstream spec(plain);
  const exp::Campaign campaign = exp::parse_campaign_spec(spec);
  ASSERT_FALSE(campaign.cells[0].events);

  tel::EventBus sink;
  exp::CampaignOptions options{1, 1, {}, nullptr, &sink};
  (void)exp::run_campaign(campaign, options);
  EXPECT_EQ(sink.published(), 0u);
}

TEST(CampaignEventsTest, SpecRejectsBadEventsValue) {
  std::istringstream spec("[cell]\nevents = maybe\n");
  EXPECT_THROW((void)exp::parse_campaign_spec(spec), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Prometheus exposer.
// ---------------------------------------------------------------------------

TEST(ExposerTest, RendersCountersGaugesAndCumulativeHistograms) {
  telemetry::Registry reg;
  reg.counter("eval.scenarios").add(40);
  reg.counter("cache.hits", tel::Plane::kProcess).add(3);
  reg.gauge("optimizer.live.phase").set(2);
  const std::uint64_t bounds[] = {1, 4};
  reg.histogram("spf.region", bounds).observe(0);
  reg.histogram("spf.region", bounds).observe(3);
  reg.histogram("spf.region", bounds).observe(9);

  const std::string text = tel::render_prometheus(reg);
  EXPECT_NE(text.find("# TYPE dtr_eval_scenarios counter"), std::string::npos);
  EXPECT_NE(text.find("dtr_eval_scenarios{plane=\"det\"} 40"), std::string::npos);
  EXPECT_NE(text.find("dtr_cache_hits{plane=\"process\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dtr_optimizer_live_phase gauge"), std::string::npos);
  // Cumulative buckets: le=1 has 1, le=4 has 2, +Inf has all 3.
  EXPECT_NE(text.find("dtr_spf_region_bucket{plane=\"det\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dtr_spf_region_bucket{plane=\"det\",le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dtr_spf_region_bucket{plane=\"det\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("dtr_spf_region_sum{plane=\"det\"} 12"), std::string::npos);
  EXPECT_NE(text.find("dtr_spf_region_count{plane=\"det\"} 3"), std::string::npos);
}

TEST(ExposerTest, ServesLiveRegistryOverHttp) {
  telemetry::Registry reg;
  reg.counter("scrape.me").add(5);
  tel::MetricsExposer exposer(reg, 0);  // ephemeral port
  ASSERT_GT(exposer.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(exposer.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("dtr_scrape_me{plane=\"det\"} 5"), std::string::npos);
  exposer.stop();  // idempotent with the destructor
}

}  // namespace
